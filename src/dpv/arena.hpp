#pragma once
// Scratch arena for the dpv runtime.
//
// Every `dpv::Vec` result of a primitive is a fresh heap allocation, so a
// steady-state batch round over a warm index is malloc-bound before it is
// compute-bound.  `Arena` is an opt-in, size-bucketed free-list allocator:
// buffers released by dying `Vec`s are cached in power-of-two buckets and
// recycled on the next round, so after one warm-up round a batch pipeline
// of stable shape performs zero system allocations.
//
// Mechanics.  `ScratchAllocator<T>` (the allocator of every `Vec`) is
// stateless: it allocates from the calling thread's *active* arena, set for
// the current scope by `ScopedRound` (see `Context::scoped_round()`), and
// falls back to the system heap when no round is active.  Each block -- the
// heap fallback included -- carries a 16-byte header naming its owning
// arena, so deallocation routes correctly no matter when or under which
// (or no) active arena the `Vec` dies.
//
// Invariants:
//  * An arena is *thread-compatible*, not thread-safe: all allocation and
//    deallocation against it must be sequenced (the dpv primitives already
//    guarantee this -- vectors are allocated and destroyed on the algorithm
//    driver thread only, never inside `for_blocks` worker lambdas).  Two
//    driver threads may use two different arenas concurrently; the active
//    arena is thread-local.
//  * No live `Vec` may outlast its arena: blocks are returned through the
//    header's owner pointer, so a `Vec` dying after its arena is destroyed
//    is use-after-free.  Keep scratch vectors inside the round scope and
//    copy anything that escapes into plain (non-`Vec`) storage, as the
//    batch pipelines do.

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace dps::dpv {

struct ArenaStats {
  std::uint64_t mallocs = 0;        // blocks obtained from the system, ever
  std::uint64_t hits = 0;           // allocations served from a free list
  std::uint64_t round_mallocs = 0;  // system blocks since the last round mark
  std::uint64_t rounds = 0;         // round marks seen
  std::uint64_t live_blocks = 0;    // blocks currently owned by live Vecs
  std::uint64_t bytes_reserved = 0; // total bytes held (free lists + live)
};

class Arena {
 public:
  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Smallest block handed out (bytes, header included).
  static constexpr std::size_t kMinBlock = 64;

  /// Allocates `bytes` of payload from this arena's free lists (or the
  /// system on a miss).  Must be sequenced with all other calls.
  void* allocate(std::size_t bytes);

  /// Returns a payload pointer from *any* allocation made through
  /// `ScratchAllocator` -- arena-owned blocks go back to their owner's
  /// free list, heap-fallback blocks to the system.
  static void deallocate(void* payload) noexcept;

  /// Marks a round boundary: zeroes `round_mallocs` so a steady-state
  /// round can be asserted malloc-free.
  void begin_round() noexcept {
    stats_.round_mallocs = 0;
    ++stats_.rounds;
  }

  /// Frees every cached (free-listed) block.  Live blocks are unaffected.
  void release() noexcept;

  const ArenaStats& stats() const noexcept { return stats_; }

  /// The calling thread's active arena (null outside any round scope).
  static Arena* active() noexcept { return active_slot(); }

 private:
  friend class ScopedRound;

  struct Header {
    Arena* owner;        // null => heap fallback block
    std::size_t bucket;  // log2 of the block size (owner != null only)
  };
  static_assert(sizeof(Header) == 16);
  static_assert(alignof(std::max_align_t) >= 16,
                "payload after a 16-byte header must stay max-aligned");

  // log2 buckets 6..47 cover 64 B .. 128 TiB.
  static constexpr std::size_t kMinBucket = 6;
  static constexpr std::size_t kNumBuckets = 42;

  void recycle(Header* h) noexcept;

  std::array<std::vector<void*>, kNumBuckets> free_;
  ArenaStats stats_;

  // Function-local TLS (not a static member): the constant-initialized
  // definition is visible in every TU, so access compiles to a direct
  // TLS load with no cross-TU wrapper indirection.
  static Arena*& active_slot() noexcept {
    static thread_local Arena* slot = nullptr;
    return slot;
  }
};

/// RAII round scope: installs an arena as the calling thread's active
/// scratch arena and marks a round.  A null arena makes it a no-op (the
/// heap fallback stays in effect), so call sites need no branching.
class ScopedRound {
 public:
  explicit ScopedRound(Arena* arena) noexcept
      : arena_(arena), prev_(Arena::active_slot()) {
    if (arena_ != nullptr) {
      Arena::active_slot() = arena_;
      arena_->begin_round();
    }
  }
  ~ScopedRound() {
    if (arena_ != nullptr) Arena::active_slot() = prev_;
  }

  ScopedRound(const ScopedRound&) = delete;
  ScopedRound& operator=(const ScopedRound&) = delete;

 private:
  Arena* arena_;
  Arena* prev_;
};

/// Stateless allocator routing through the thread's active arena (system
/// heap when none).  All specializations compare equal, so containers move
/// and swap freely.
template <typename T>
struct ScratchAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ScratchAllocator() = default;
  template <typename U>
  ScratchAllocator(const ScratchAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= 16,
                  "over-aligned element types need a dedicated allocator");
    const std::size_t bytes = n * sizeof(T);
    if (Arena* a = Arena::active(); a != nullptr) {
      return static_cast<T*>(a->allocate(bytes));
    }
    void* raw = ::operator new(bytes + 16);
    auto* owner = static_cast<Arena**>(raw);
    *owner = nullptr;
    return reinterpret_cast<T*>(static_cast<std::byte*>(raw) + 16);
  }

  void deallocate(T* p, std::size_t) noexcept { Arena::deallocate(p); }

  template <typename U>
  friend bool operator==(const ScratchAllocator&,
                         const ScratchAllocator<U>&) noexcept {
    return true;
  }
};

}  // namespace dps::dpv
