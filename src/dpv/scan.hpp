#pragma once
// Scan primitives (section 3.2.1): up/down x inclusive/exclusive x
// (un)segmented, for any associative operator.
//
// Parallel execution uses the classic three-phase blocked scan:
//   1. each lane scans its block and produces a block summary,
//   2. the block summaries are combined serially (there are at most
//      `lanes()` of them),
//   3. each lane rescans its block seeded with its incoming carry.
// Segmented scans run the same machinery on the operator lifted to
// (value, crossed-a-segment-head) pairs, which keeps phase 2 correct when a
// segment group spans block boundaries.
//
// Down-scans are suffix scans within each group (see Figure 8 of the paper):
// they are executed as an up-scan of the reversed vector with the segment
// heads remapped to the reversed positions of group *tails*.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "dpv/context.hpp"
#include "dpv/ops.hpp"
#include "dpv/simd.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

enum class Dir { kUp, kDown };
enum class Incl { kInclusive, kExclusive };

namespace detail {

// Carry state while scanning left-to-right: the combined value of the
// current run (elements since the most recent segment head) and whether the
// run is non-empty.
template <typename T>
struct Run {
  T value;
  bool nonempty = false;
};

// Segmented up-scan of data[lo, hi) seeded with `carry` (the run flowing in
// from the left).  Writes inclusive or exclusive results into out[lo, hi).
// Returns the run flowing out of the block and whether the block contains a
// segment head (which cuts any incoming run off from later blocks).
template <typename T, typename Op>
std::pair<Run<T>, bool> scan_block(Op op, const Vec<T>& data,
                                   const Flags* flags, std::size_t lo,
                                   std::size_t hi, Run<T> carry, Incl incl,
                                   Vec<T>* out) {
  // Unsegmented u64 +-scans go through the backend kernel table: the output
  // phase is a carry-seeded prefix kernel, the summary phase a reduction.
  // Integer + is exactly associative, so the blocked regrouping is exact.
  // (uint64_t and size_t are listed separately for non-LP64 portability.)
  if constexpr ((std::is_same_v<T, std::uint64_t> ||
                 std::is_same_v<T, std::size_t>) &&
                sizeof(T) == 8 && std::is_same_v<Op, Plus<T>>) {
    if (flags == nullptr && hi > lo) {
      const bool head = (lo == 0);  // i == 0 is always a segment head
      std::uint64_t run = (!head && carry.nonempty)
                              ? static_cast<std::uint64_t>(carry.value)
                              : 0;
      const auto* in = reinterpret_cast<const std::uint64_t*>(data.data() + lo);
      if (out != nullptr) {
        auto* o = reinterpret_cast<std::uint64_t*>(out->data() + lo);
        run = simd::kernels().scan_add_u64(in, o, hi - lo, run,
                                           incl == Incl::kInclusive);
      } else {
        run += simd::kernels().reduce_add_u64(in, hi - lo);
      }
      return {Run<T>{static_cast<T>(run), true}, head};
    }
  }
  bool saw_head = false;
  for (std::size_t i = lo; i < hi; ++i) {
    const bool head = (flags != nullptr && (*flags)[i] != 0) || i == 0;
    if (head) {
      carry = Run<T>{};
      saw_head = true;
    }
    if (out != nullptr && incl == Incl::kExclusive) {
      (*out)[i] = carry.nonempty ? carry.value : Op::identity();
    }
    carry.value = carry.nonempty ? op(carry.value, data[i]) : data[i];
    carry.nonempty = true;
    if (out != nullptr && incl == Incl::kInclusive) (*out)[i] = carry.value;
  }
  return {carry, saw_head};
}

template <typename T, typename Op>
Vec<T> scan_up(Context& ctx, Op op, const Vec<T>& data, const Flags* flags,
               Incl incl) {
  const std::size_t n = data.size();
  Vec<T> out(n);
  const std::size_t k = ctx.block_count(n);
  if (k <= 1) {
    scan_block(op, data, flags, 0, n, Run<T>{}, incl, &out);
    return out;
  }
  // Phase 1: per-block summaries (no output writes).
  Vec<Run<T>> run_out(k);
  Vec<std::uint8_t> has_head(k);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    auto [run, head] = scan_block(op, data, flags, lo, hi, Run<T>{}, incl,
                                  static_cast<Vec<T>*>(nullptr));
    run_out[b] = run;
    has_head[b] = head ? 1 : 0;
  });
  // Phase 2: serial exclusive combine of block summaries into carries.
  Vec<Run<T>> carry_in(k);
  Run<T> acc{};
  for (std::size_t b = 0; b < k; ++b) {
    carry_in[b] = acc;
    if (has_head[b]) {
      acc = run_out[b];
    } else if (run_out[b].nonempty) {
      acc.value = acc.nonempty ? op(acc.value, run_out[b].value)
                               : run_out[b].value;
      acc.nonempty = true;
    }
  }
  // Phase 3: rescan with carries, writing output.
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    scan_block(op, data, flags, lo, hi, carry_in[b], incl, &out);
  });
  return out;
}

// Remaps segment-head flags for the reversed vector: the head of each
// reversed group sits at the reversed position of the original group tail.
inline Flags reverse_flags(Context& ctx, const Flags& flags) {
  const std::size_t n = flags.size();
  Flags rf(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t j = n - 1 - i;  // original index
      rf[i] = (j + 1 == n || flags[j + 1] != 0) ? 1 : 0;
    }
  });
  return rf;
}

template <typename T>
Vec<T> reversed(Context& ctx, const Vec<T>& v) {
  const std::size_t n = v.size();
  Vec<T> out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = v[n - 1 - i];
  });
  return out;
}

}  // namespace detail

/// Unsegmented scan.  Up = prefix, down = suffix.  One scan primitive.
template <typename T, typename Op>
Vec<T> scan(Context& ctx, Op op, const Vec<T>& data, Dir dir = Dir::kUp,
            Incl incl = Incl::kInclusive) {
  ctx.count(Prim::kScan, data.size());
  if (dir == Dir::kUp) return detail::scan_up(ctx, op, data, nullptr, incl);
  Vec<T> rev = detail::reversed(ctx, data);
  Vec<T> scanned = detail::scan_up(ctx, op, rev, nullptr, incl);
  return detail::reversed(ctx, scanned);
}

/// Segmented scan (Figure 8).  `flags` marks the first element of each
/// segment group; groups are independent.  One scan primitive.
template <typename T, typename Op>
Vec<T> seg_scan(Context& ctx, Op op, const Vec<T>& data, const Flags& flags,
                Dir dir = Dir::kUp, Incl incl = Incl::kInclusive) {
  assert(data.size() == flags.size() && "segment flags must match data length");
  ctx.count(Prim::kScan, data.size());
  if (dir == Dir::kUp) return detail::scan_up(ctx, op, data, &flags, incl);
  Vec<T> rev = detail::reversed(ctx, data);
  Flags rflags = detail::reverse_flags(ctx, flags);
  Vec<T> scanned = detail::scan_up(ctx, op, rev, &rflags, incl);
  return detail::reversed(ctx, scanned);
}

/// Broadcast of each group head's value to the whole group: an inclusive
/// segmented up-scan with the copy operator (the [Hung89] broadcast used in
/// section 4.7).
template <typename T>
Vec<T> seg_broadcast(Context& ctx, const Vec<T>& data, const Flags& flags) {
  return seg_scan(ctx, Copy<T>{}, data, flags, Dir::kUp, Incl::kInclusive);
}

}  // namespace dps::dpv
