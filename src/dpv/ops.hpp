#pragma once
// Associative operators for scan/reduce primitives.
//
// Each operator is a stateless functor exposing `operator()(a, b)` plus a
// typed `identity()`.  Scans are defined for any associative operator
// (section 3.2 of the paper); the spatial layer uses +, min, max, logical
// or/and and "copy" (segmented broadcast, section 4.7).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace dps::dpv {

template <typename T>
struct Plus {
  static constexpr T identity() { return T{}; }
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct Min {
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  constexpr T operator()(const T& a, const T& b) const { return std::min(a, b); }
};

template <typename T>
struct Max {
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  constexpr T operator()(const T& a, const T& b) const { return std::max(a, b); }
};

template <typename T>
struct BitOr {
  static constexpr T identity() { return T{0}; }
  constexpr T operator()(const T& a, const T& b) const { return a | b; }
};

template <typename T>
struct LogicalOr {
  static constexpr T identity() { return T{0}; }
  constexpr T operator()(const T& a, const T& b) const { return a || b; }
};

template <typename T>
struct LogicalAnd {
  static constexpr T identity() { return T{1}; }
  constexpr T operator()(const T& a, const T& b) const { return a && b; }
};

/// "copy" scan operator: an inclusive segmented up-scan with Copy broadcasts
/// the first element of each segment group to the whole group (the broadcast
/// of [Hung89] used by the R-tree split of section 4.7).  Associativity:
/// copy(copy(a,b),c) == a == copy(a,copy(b,c)).
///
/// The identity is a sentinel: Copy has no true identity, so exclusive copy
/// scans surface `identity()` in the positions with no predecessor.  Users
/// of exclusive copy scans must treat those slots as undefined, exactly as
/// C* programs did.
template <typename T>
struct Copy {
  static constexpr T identity() { return T{}; }
  constexpr T operator()(const T& a, const T& /*b*/) const { return a; }
};

/// Trait: true when an exclusive scan's identity-filled slots are genuine
/// identities (Plus/Min/Max/or/and) rather than sentinels (Copy).
template <typename Op>
struct has_true_identity : std::true_type {};
template <typename T>
struct has_true_identity<Copy<T>> : std::false_type {};

}  // namespace dps::dpv
