#pragma once
// Execution context for the dpv scan-model runtime.
//
// A Context bundles (a) the execution backend -- serial, or parallel over a
// ThreadPool -- and (b) the primitive-operation counters that reproduce the
// paper's cost model.  The scan model charges unit cost per primitive
// invocation (elementwise / scan / permutation); `Context::counters()`
// exposes exactly those counts so the complexity claims of sections 5.1-5.3
// (O(log n) rounds x O(1) primitives for the quadtrees, O(log^2 n) for the
// R-tree) can be measured rather than assumed.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

#include "dpv/arena.hpp"
#include "dpv/fault.hpp"
#include "dpv/thread_pool.hpp"

namespace dps::dpv {

/// Primitive categories of the scan model (section 3.2 of the paper), plus
/// the derived operations the spatial layer treats as primitives.
enum class Prim : std::size_t {
  kElementwise = 0,  // section 3.2.2
  kScan,             // section 3.2.1 (any direction/segmentation/inclusivity)
  kPermute,          // section 3.2.3 (one-to-one rearrangement)
  kGather,           // read-indirection (a[index[i]])
  kScatter,          // write-indirection, not necessarily one-to-one
  kPack,             // unshuffle/split lower half (built from scans+permute)
  kSortPass,         // one counting/split pass of the radix sort
  kReduce,           // whole-vector reduction
  kCount_,
};

constexpr std::size_t kNumPrims = static_cast<std::size_t>(Prim::kCount_);

/// Human-readable name for a primitive category.
std::string_view prim_name(Prim p) noexcept;

/// Snapshot / accumulator of primitive-invocation counts.
struct PrimCounters {
  std::array<std::uint64_t, kNumPrims> invocations{};
  std::array<std::uint64_t, kNumPrims> elements{};  // total vector elements touched

  std::uint64_t total_invocations() const noexcept;
  PrimCounters& operator+=(const PrimCounters& other) noexcept;
  friend PrimCounters operator-(PrimCounters a, const PrimCounters& b) noexcept;
};

/// Execution + accounting context.  Thread-compatible: a Context may be used
/// from one algorithm driver thread at a time; the primitives it runs fan
/// out over the pool internally.
class Context {
 public:
  /// Serial context: primitives execute on the calling thread.
  Context();
  /// Parallel context over a pool with `num_threads` lanes (0 = hardware).
  explicit Context(std::size_t num_threads);

  /// Number of parallel lanes (1 for a serial context).
  std::size_t lanes() const noexcept { return pool_ ? pool_->size() : 1; }
  bool parallel() const noexcept { return lanes() > 1; }

  /// Splits [0, n) into per-lane blocks and runs `f(lane, begin, end)` on
  /// each.  Blocks are contiguous and cover [0, n) exactly; at most
  /// `lanes()` blocks are created and empty blocks are not invoked.
  template <typename F>
  void for_blocks(std::size_t n, F&& f) const {
    const std::size_t k = block_count(n);
    if (k <= 1) {
      if (n > 0) f(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    pool_->run(k, [&](std::size_t lane) {
      const auto [lo, hi] = block_range(n, k, lane);
      if (lo < hi) f(lane, lo, hi);
    });
  }

  /// Number of blocks `for_blocks` would use for a vector of length n.
  std::size_t block_count(std::size_t n) const noexcept;

  /// The half-open element range of block `b` out of `k` for length n.
  static std::pair<std::size_t, std::size_t> block_range(std::size_t n,
                                                         std::size_t k,
                                                         std::size_t b) noexcept;

  /// Records one invocation of primitive `p` over `n` elements.  When the
  /// context is armed for fault injection, the invocation also asks the
  /// injector whether it should fail; a yes latches `fault_pending` (the
  /// primitive's output is still fully written -- a fault marks the
  /// pipeline's work untrusted, it does not corrupt memory).
  void count(Prim p, std::size_t n) noexcept {
    const auto i = static_cast<std::size_t>(p);
    counters_.invocations[i] += 1;
    counters_.elements[i] += n;
    if (fault_ != nullptr) {
      ++fault_seq_;
      if (!fault_pending_ && fault_->primitive_faults(fault_scope_, fault_seq_)) {
        fault_pending_ = true;
        fault_->note_primitive_fault();
      }
    }
  }

  /// Arms deterministic fault injection: from now on every counted
  /// primitive invocation (1-based, per context) asks `inj` whether to
  /// fail under `scope`.  Decisions depend only on (schedule seed, scope,
  /// invocation index), so a serial context replays bit-identically.
  /// Pass nullptr to disarm.  Not inherited by `fork_serial` children --
  /// the caller arms each fork with its own scope.
  void arm_fault_injection(FaultInjector* inj, std::uint64_t scope) noexcept {
    fault_ = inj;
    fault_scope_ = scope;
    fault_seq_ = 0;
    fault_pending_ = false;
  }

  /// True once an armed primitive invocation faulted.  Pipelines poll this
  /// next to their cancellation control and abort at round granularity.
  bool fault_pending() const noexcept { return fault_pending_; }

  const PrimCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = PrimCounters{}; }

  /// Point-in-time copy of the ledger (use `after - before` to charge a
  /// region of work).
  PrimCounters snapshot() const noexcept { return counters_; }

  /// Serial child context for a worker shard: it shares this context's
  /// grain but starts a fresh, private ledger, so several shards can count
  /// primitives concurrently without racing on one accumulator.  Fold the
  /// shard's ledger back with `merge_counters` when the shard joins.
  Context fork_serial() const noexcept {
    Context child;
    child.grain_ = grain_;
    return child;
  }

  /// Adds a shard ledger (e.g. from a `fork_serial` context) into this
  /// context's counters.  Call from one thread at a time, after the shard
  /// has joined.
  void merge_counters(const PrimCounters& shard) noexcept {
    counters_ += shard;
  }

  /// Minimum elements per lane before a primitive bothers to fork.  Vectors
  /// shorter than `grain() * 2` run serially inside parallel contexts.
  std::size_t grain() const noexcept { return grain_; }
  void set_grain(std::size_t g) noexcept { grain_ = g == 0 ? 1 : g; }

  /// Opt-in scratch arena mode: gives this context an owned `Arena` that
  /// `scoped_round()` installs for the duration of a pipeline, so scratch
  /// `Vec`s recycle their buffers round over round (zero system
  /// allocations in steady state).  Off by default -- without it
  /// `scoped_round()` is a no-op and every `Vec` uses the system heap.
  void enable_arena() {
    if (owned_arena_ == nullptr) owned_arena_ = std::make_shared<Arena>();
  }

  /// Borrows an external arena (e.g. a serving engine's per-shard arena
  /// that must outlive this context's forks).  Overrides the owned arena;
  /// pass nullptr to fall back to it.  The arena must outlive every `Vec`
  /// allocated under it.
  void set_arena(Arena* arena) noexcept { borrowed_arena_ = arena; }

  /// The arena `scoped_round()` installs; null when arena mode is off.
  Arena* arena() const noexcept {
    return borrowed_arena_ != nullptr ? borrowed_arena_ : owned_arena_.get();
  }

  /// Opens one pipeline round scope: installs `arena()` (if any) as the
  /// calling thread's active scratch arena and marks a round boundary for
  /// its malloc-per-round statistic.  A no-op without an arena.  Not
  /// inherited by `fork_serial` children -- the caller routes each fork's
  /// scratch explicitly via `set_arena`.
  [[nodiscard]] ScopedRound scoped_round() const noexcept {
    return ScopedRound(arena());
  }

 private:
  std::shared_ptr<ThreadPool> pool_;  // null => serial
  PrimCounters counters_;
  std::size_t grain_ = 4096;
  std::shared_ptr<Arena> owned_arena_;   // null => arena mode off
  Arena* borrowed_arena_ = nullptr;      // borrowed; overrides owned

  FaultInjector* fault_ = nullptr;  // borrowed; null = no injection
  std::uint64_t fault_scope_ = 0;
  std::uint64_t fault_seq_ = 0;
  bool fault_pending_ = false;
};

}  // namespace dps::dpv
