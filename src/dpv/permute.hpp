#pragma once
// Permutation and indirection primitives (section 3.2.3).
//
// `permute` rearranges data[i] to position index[i]; the index vector must
// be a bijection on [0, n) -- two elements may not target the same slot.
// `gather` and `scatter` are the general read/write indirections; they are
// not in the paper's minimal primitive set but are standard scan-model
// extensions (Blelloch's v-RAM) and the spatial layer uses them only where
// C* used general communication (send/get).

#include <cassert>
#include <cstddef>

#include "dpv/context.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// out[index[i]] = data[i].  `index` must be one-to-one onto [0, out_size);
/// violations are caught by assertions in debug builds.
template <typename T>
Vec<T> permute(Context& ctx, const Vec<T>& data, const Index& index,
               std::size_t out_size) {
  assert(data.size() == index.size());
  Vec<T> out(out_size);
#ifndef NDEBUG
  Vec<std::uint8_t> hit(out_size, 0);
  for (std::size_t i = 0; i < index.size(); ++i) {
    assert(index[i] < out_size && "permute index out of range");
    assert(!hit[index[i]] && "permute index vector is not one-to-one");
    hit[index[i]] = 1;
  }
#endif
  ctx.for_blocks(data.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[index[i]] = data[i];
  });
  ctx.count(Prim::kPermute, data.size());
  return out;
}

/// Same-length permutation (the common case in the paper's figures).
template <typename T>
Vec<T> permute(Context& ctx, const Vec<T>& data, const Index& index) {
  return permute(ctx, data, index, data.size());
}

/// out[i] = data[index[i]].  Indices may repeat (concurrent read).
template <typename T>
Vec<T> gather(Context& ctx, const Vec<T>& data, const Index& index) {
  Vec<T> out(index.size());
  ctx.for_blocks(index.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      assert(index[i] < data.size() && "gather index out of range");
      out[i] = data[index[i]];
    }
  });
  ctx.count(Prim::kGather, index.size());
  return out;
}

/// dest[index[i]] = data[i] for the lanes where mask[i] != 0 (all lanes when
/// mask is empty).  Duplicate targets are a data race; callers must supply
/// one-to-one targets among the selected lanes (this is how the paper's
/// "first line in the segment communicates the count to the node" steps are
/// expressed).  Executed serially when duplicates cannot be excluded cheaply.
template <typename T>
void scatter(Context& ctx, const Vec<T>& data, const Index& index,
             const Flags& mask, Vec<T>& dest) {
  assert(data.size() == index.size());
  assert(mask.empty() || mask.size() == data.size());
  ctx.for_blocks(data.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!mask.empty() && !mask[i]) continue;
      assert(index[i] < dest.size() && "scatter index out of range");
      dest[index[i]] = data[i];
    }
  });
  ctx.count(Prim::kScatter, data.size());
}

}  // namespace dps::dpv
