#pragma once
// Reductions and per-group extraction helpers.
//
// `reduce` combines a whole vector with an associative operator.
// `seg_heads` / `seg_last` extract one value per segment group (the "first
// line in the segment communicates X to the node" pattern of sections 4.4
// and 5.3).  The group-level extraction is the host-side read of a scan
// result and is counted as a pack.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "dpv/context.hpp"
#include "dpv/ops.hpp"
#include "dpv/pack.hpp"
#include "dpv/scan.hpp"
#include "dpv/simd.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// op-combination of all elements; identity for an empty vector.
template <typename T, typename Op>
T reduce(Context& ctx, Op op, const Vec<T>& data) {
  const std::size_t n = data.size();
  ctx.count(Prim::kReduce, n);
  // u64 +/| reductions route through the backend kernel table; both
  // operators are exactly associative so blocked regrouping is exact.
  if constexpr ((std::is_same_v<T, std::uint64_t> ||
                 std::is_same_v<T, std::size_t>) &&
                sizeof(T) == 8 &&
                (std::is_same_v<Op, Plus<T>> || std::is_same_v<Op, BitOr<T>>)) {
    const auto kern = std::is_same_v<Op, Plus<T>>
                          ? simd::kernels().reduce_add_u64
                          : simd::kernels().reduce_or_u64;
    const auto* base = reinterpret_cast<const std::uint64_t*>(data.data());
    const std::size_t kb = ctx.block_count(n);
    if (kb <= 1) return static_cast<T>(kern(base, n));
    Vec<std::uint64_t> partial(kb, 0);
    ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
      partial[b] = kern(base + lo, hi - lo);
    });
    T acc = Op::identity();
    for (const auto& v : partial) acc = op(acc, static_cast<T>(v));
    return acc;
  }
  const std::size_t k = ctx.block_count(n);
  if (k <= 1) {
    T acc = Op::identity();
    for (const auto& v : data) acc = op(acc, v);
    return acc;
  }
  Vec<T> partial(k, Op::identity());
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc = data[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) acc = op(acc, data[i]);
    partial[b] = acc;
  });
  T acc = Op::identity();
  for (const auto& v : partial) acc = op(acc, v);
  return acc;
}

/// One entry per segment group: the value at the group's head element.
template <typename T>
Vec<T> seg_heads(Context& ctx, const Vec<T>& data, const Flags& seg) {
  assert(data.size() == seg.size());
  Flags head = seg;
  if (!head.empty()) head[0] = 1;
  return pack(ctx, data, head);
}

/// One entry per segment group: the value at the group's last element.
/// Combined with an inclusive segmented up-scan this yields the per-group
/// reduction (e.g. group sizes from a +-scan of ones).
template <typename T>
Vec<T> seg_last(Context& ctx, const Vec<T>& data, const Flags& seg) {
  assert(data.size() == seg.size());
  const std::size_t n = data.size();
  Flags tail(n, 0);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      tail[i] = (i + 1 == n || seg[i + 1] != 0) ? 1 : 0;
    }
  });
  ctx.count(Prim::kElementwise, n);
  return pack(ctx, data, tail);
}

/// Per-group op-reduction, one entry per group in group order.
template <typename T, typename Op>
Vec<T> seg_reduce(Context& ctx, Op op, const Vec<T>& data, const Flags& seg) {
  Vec<T> scanned = seg_scan(ctx, op, data, seg, Dir::kUp, Incl::kInclusive);
  return seg_last(ctx, scanned, seg);
}

/// Size of each segment group, one entry per group in group order.
inline Vec<std::size_t> seg_sizes(Context& ctx, const Flags& seg) {
  Vec<std::size_t> ones = constant<std::size_t>(ctx, seg.size(), 1);
  return seg_reduce(ctx, Plus<std::size_t>{}, ones, seg);
}

}  // namespace dps::dpv
