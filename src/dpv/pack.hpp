#pragma once
// Pack / split building blocks.
//
// `pack` keeps the flagged elements, preserving order (the [Krus85]
// "packing").  `split_indices` computes the destination index of every
// element when partitioning a vector into (mask==0 | mask==1) halves --
// Blelloch's "split" -- and `seg_split_indices` is the segmented variant
// that partitions *within each segment group*, which is exactly what the
// paper's unshuffle (section 4.2) does during node splitting.  All are
// compositions of scans and a permutation, and are additionally counted as
// one kPack primitive for the cost model.

#include <cassert>
#include <cstddef>

#include "dpv/context.hpp"
#include "dpv/elementwise.hpp"
#include "dpv/permute.hpp"
#include "dpv/scan.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// Destination indices for a stable whole-vector partition: elements with
/// mask==0 are packed to the front (in order), elements with mask==1 to the
/// back (in order).  Composition: one up-scan + elementwise ops.
inline Index split_indices(Context& ctx, const Flags& mask) {
  const std::size_t n = mask.size();
  // ones_before[i] = number of mask==1 elements in [0, i).
  Vec<std::size_t> ones =
      map(ctx, mask, [](std::uint8_t m) { return std::size_t{m != 0}; });
  Vec<std::size_t> ones_before =
      scan(ctx, Plus<std::size_t>{}, ones, Dir::kUp, Incl::kExclusive);
  const std::size_t total_ones =
      n == 0 ? 0 : ones_before[n - 1] + (mask[n - 1] ? 1 : 0);
  const std::size_t total_zeros = n - total_ones;
  Index out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = mask[i] ? total_zeros + ones_before[i] : i - ones_before[i];
    }
  });
  ctx.count(Prim::kPack, n);
  return out;
}

/// Segmented split: within each segment group, mask==0 elements are packed
/// to the group's front and mask==1 elements to its back, groups staying in
/// place.  This is the paper's unshuffle operation (Figures 15/16) applied
/// per group.  Composition: two segmented scans + elementwise ops, exactly
/// as described in section 4.2.
inline Index seg_split_indices(Context& ctx, const Flags& mask,
                               const Flags& seg) {
  assert(mask.size() == seg.size());
  const std::size_t n = mask.size();
  Vec<std::size_t> ones =
      map(ctx, mask, [](std::uint8_t m) { return std::size_t{m != 0}; });
  Vec<std::size_t> zeros =
      map(ctx, mask, [](std::uint8_t m) { return std::size_t{m == 0}; });
  // Within the group: number of 1s strictly before i (up exclusive), and
  // number of 0s at or after i (down inclusive).
  Vec<std::size_t> ones_before =
      seg_scan(ctx, Plus<std::size_t>{}, ones, seg, Dir::kUp, Incl::kExclusive);
  Vec<std::size_t> zeros_from =
      seg_scan(ctx, Plus<std::size_t>{}, zeros, seg, Dir::kDown, Incl::kInclusive);
  Index out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A 0-element moves left past the 1s before it; a 1-element moves
      // right past the 0s from here to the group end.
      out[i] = mask[i] ? i + zeros_from[i] : i - ones_before[i];
    }
  });
  ctx.count(Prim::kPack, n);
  return out;
}

/// Keeps the elements with keep[i] != 0, preserving order.
template <typename T>
Vec<T> pack(Context& ctx, const Vec<T>& data, const Flags& keep) {
  assert(data.size() == keep.size());
  const std::size_t n = data.size();
  Vec<std::size_t> kept =
      map(ctx, keep, [](std::uint8_t k) { return std::size_t{k != 0}; });
  Vec<std::size_t> pos =
      scan(ctx, Plus<std::size_t>{}, kept, Dir::kUp, Incl::kExclusive);
  const std::size_t out_n = n == 0 ? 0 : pos[n - 1] + (keep[n - 1] ? 1 : 0);
  Vec<T> out(out_n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (keep[i]) out[pos[i]] = data[i];
    }
  });
  ctx.count(Prim::kPack, n);
  return out;
}

}  // namespace dps::dpv
