// AVX2 kernel table.  Compiled with -mavx2 (and only this TU), included in
// the build when DPS_SIMD=ON; selected at runtime via cpuid.
//
// Exactness: every lane performs the same IEEE operations in the same order
// as the scalar kernels in dpv/simd.cpp.  Ternaries become compare+blend
// with the scalar's exact comparison (so NaN and signed-zero behavior
// match), and multiplies/adds are separate intrinsics -- never FMA, which
// the baseline build cannot emit.  Sub-vector tails are delegated to the
// scalar kernels, which are bit-identical by construction.

#include "dpv/simd.hpp"

#if defined(DPS_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace dps::dpv::simd {

namespace {

inline __m256d sel(__m256d mask, __m256d t, __m256d f) {
  return _mm256_blendv_pd(f, t, mask);
}

// std::min: (b < a) ? b : a.
inline __m256d min_std(__m256d a, __m256d b) {
  return sel(_mm256_cmp_pd(b, a, _CMP_LT_OQ), b, a);
}

// std::max: (a < b) ? b : a.
inline __m256d max_std(__m256d a, __m256d b) {
  return sel(_mm256_cmp_pd(a, b, _CMP_LT_OQ), b, a);
}

void a_ew_add_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  scalar_kernels().ew_add_f64(a + i, b + i, out + i, n - i);
}

void a_ew_sub_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  scalar_kernels().ew_sub_f64(a + i, b + i, out + i, n - i);
}

void a_ew_mul_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  scalar_kernels().ew_mul_f64(a + i, b + i, out + i, n - i);
}

void a_ew_min_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, min_std(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  scalar_kernels().ew_min_f64(a + i, b + i, out + i, n - i);
}

void a_ew_max_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, max_std(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  scalar_kernels().ew_max_f64(a + i, b + i, out + i, n - i);
}

// Inclusive prefix sum of the four u64 lanes.
inline __m256i prefix4_u64(__m256i x) {
  // Within each 128-bit half: [a0, a1 | a2, a3] -> [a0, a0+a1 | a2, a2+a3].
  x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
  // Smear lane 1 (a0+a1) over the upper half.
  __m256i s = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 1, 1, 1));
  s = _mm256_blend_epi32(_mm256_setzero_si256(), s, 0xF0);
  return _mm256_add_epi64(x, s);
}

std::uint64_t a_scan_add_u64(const std::uint64_t* in, std::uint64_t* out,
                             std::size_t n, std::uint64_t carry,
                             bool inclusive) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i c = _mm256_set1_epi64x(static_cast<long long>(carry));
    const __m256i inc = _mm256_add_epi64(prefix4_u64(x), c);
    if (inclusive) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), inc);
    } else {
      // [carry, inc0, inc1, inc2].
      __m256i sh = _mm256_permute4x64_epi64(inc, _MM_SHUFFLE(2, 1, 0, 0));
      sh = _mm256_blend_epi32(sh, c, 0x03);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), sh);
    }
    carry = static_cast<std::uint64_t>(_mm256_extract_epi64(inc, 3));
  }
  return scalar_kernels().scan_add_u64(in + i, out + i, n - i, carry,
                                       inclusive);
}

std::uint64_t a_reduce_add_u64(const std::uint64_t* in, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         scalar_kernels().reduce_add_u64(in + i, n - i);
}

std::uint64_t a_reduce_or_u64(const std::uint64_t* in, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] | lanes[1] | lanes[2] | lanes[3] |
         scalar_kernels().reduce_or_u64(in + i, n - i);
}

void a_radix_hist(const std::uint64_t* keys, std::size_t n, unsigned shift,
                  std::size_t* hist256) {
  // Four interleaved sub-histograms avoid the store-to-load stalls of
  // repeated increments on hot buckets; digits are extracted four at a
  // time with vector shifts.
  alignas(32) std::uint32_t sub[4][256] = {};
  const __m256i mask = _mm256_set1_epi64x(0xFF);
  std::size_t i = 0;
  alignas(32) std::uint64_t d[4];
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i dig = _mm256_and_si256(
        _mm256_srli_epi64(x, static_cast<int>(shift)), mask);
    _mm256_store_si256(reinterpret_cast<__m256i*>(d), dig);
    sub[0][d[0]]++;
    sub[1][d[1]]++;
    sub[2][d[2]]++;
    sub[3][d[3]]++;
  }
  for (; i < n; ++i) sub[0][(keys[i] >> shift) & 0xFFu]++;
  for (std::size_t b = 0; b < 256; ++b) {
    hist256[b] += sub[0][b] + sub[1][b] + sub[2][b] + sub[3][b];
  }
}

void a_radix_scatter(const std::uint64_t* keys, const std::size_t* order,
                     std::size_t n, unsigned shift, std::size_t* bucket_pos,
                     std::uint64_t* out_keys, std::size_t* out_order) {
  // Digit extraction is vectorized; the scatter writes stay scalar (the
  // per-bucket positions form a serial dependency chain by design -- the
  // pass must be stable).
  const __m256i mask = _mm256_set1_epi64x(0xFF);
  std::size_t i = 0;
  alignas(32) std::uint64_t d[4];
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i dig = _mm256_and_si256(
        _mm256_srli_epi64(x, static_cast<int>(shift)), mask);
    _mm256_store_si256(reinterpret_cast<__m256i*>(d), dig);
    for (int l = 0; l < 4; ++l) {
      const std::size_t p = bucket_pos[d[l]]++;
      out_keys[p] = keys[i + static_cast<std::size_t>(l)];
      out_order[p] = order[i + static_cast<std::size_t>(l)];
    }
  }
  scalar_kernels().radix_scatter(keys + i, order + i, n - i, shift, bucket_pos,
                                 out_keys, out_order);
}

void a_mindist_point_rect(const double* px, const double* py,
                          const double* xmin, const double* ymin,
                          const double* xmax, const double* ymax, double* out,
                          std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(px + i);
    const __m256d y = _mm256_loadu_pd(py + i);
    const __m256d lo_x = _mm256_loadu_pd(xmin + i);
    const __m256d hi_x = _mm256_loadu_pd(xmax + i);
    const __m256d lo_y = _mm256_loadu_pd(ymin + i);
    const __m256d hi_y = _mm256_loadu_pd(ymax + i);
    // dx = x < lo ? lo - x : (x > hi ? x - hi : 0).
    const __m256d dx =
        sel(_mm256_cmp_pd(x, lo_x, _CMP_LT_OQ), _mm256_sub_pd(lo_x, x),
            sel(_mm256_cmp_pd(x, hi_x, _CMP_GT_OQ), _mm256_sub_pd(x, hi_x),
                zero));
    const __m256d dy =
        sel(_mm256_cmp_pd(y, lo_y, _CMP_LT_OQ), _mm256_sub_pd(lo_y, y),
            sel(_mm256_cmp_pd(y, hi_y, _CMP_GT_OQ), _mm256_sub_pd(y, hi_y),
                zero));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_mul_pd(dx, dx),
                                            _mm256_mul_pd(dy, dy)));
  }
  scalar_kernels().mindist_point_rect(px + i, py + i, xmin + i, ymin + i,
                                      xmax + i, ymax + i, out + i, n - i);
}

void a_dist2_point_segment(const double* px, const double* py,
                           const double* ax, const double* ay,
                           const double* bx, const double* by, double* out,
                           std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(px + i);
    const __m256d y = _mm256_loadu_pd(py + i);
    const __m256d sax = _mm256_loadu_pd(ax + i);
    const __m256d say = _mm256_loadu_pd(ay + i);
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(bx + i), sax);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(by + i), say);
    const __m256d len2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d dot = _mm256_add_pd(
        _mm256_mul_pd(_mm256_sub_pd(x, sax), dx),
        _mm256_mul_pd(_mm256_sub_pd(y, say), dy));
    __m256d u = _mm256_div_pd(dot, len2);
    // u = u < 0 ? 0 : (u > 1 ? 1 : u); then 0 where len2 <= 0.
    u = sel(_mm256_cmp_pd(u, zero, _CMP_LT_OQ), zero,
            sel(_mm256_cmp_pd(u, one, _CMP_GT_OQ), one, u));
    u = sel(_mm256_cmp_pd(len2, zero, _CMP_GT_OQ), u, zero);
    const __m256d ex =
        _mm256_sub_pd(_mm256_add_pd(sax, _mm256_mul_pd(u, dx)), x);
    const __m256d ey =
        _mm256_sub_pd(_mm256_add_pd(say, _mm256_mul_pd(u, dy)), y);
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_mul_pd(ex, ex),
                                            _mm256_mul_pd(ey, ey)));
  }
  scalar_kernels().dist2_point_segment(px + i, py + i, ax + i, ay + i, bx + i,
                                       by + i, out + i, n - i);
}

// Shared Liang-Barsky lane logic: returns the reject mask and leaves the
// final [t0, t1] interval in the output parameters (meaningful on accepted
// lanes only).  One constraint: denom * t <= num, i.e. t = num / denom
// tightens t0 (denom < 0) or t1 (denom > 0); denom == 0 rejects outright
// when num < 0.  The scalar loop's incremental `t0 > t1` rejects are
// equivalent to one final check because t0 only grows and t1 only shrinks.
inline __m256d clip_lanes(__m256d sax, __m256d say, __m256d sbx, __m256d sby,
                          __m256d rlo_x, __m256d rlo_y, __m256d rhi_x,
                          __m256d rhi_y, __m256d& t0, __m256d& t1) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d dx = _mm256_sub_pd(sbx, sax);
  const __m256d dy = _mm256_sub_pd(sby, say);
  t0 = zero;
  t1 = _mm256_set1_pd(1.0);
  __m256d reject = _mm256_or_pd(_mm256_cmp_pd(rlo_x, rhi_x, _CMP_GT_OQ),
                                _mm256_cmp_pd(rlo_y, rhi_y, _CMP_GT_OQ));
  const __m256d denoms[4] = {_mm256_sub_pd(zero, dx), dx,
                             _mm256_sub_pd(zero, dy), dy};
  const __m256d nums[4] = {
      _mm256_sub_pd(sax, rlo_x), _mm256_sub_pd(rhi_x, sax),
      _mm256_sub_pd(say, rlo_y), _mm256_sub_pd(rhi_y, say)};
  for (int k = 0; k < 4; ++k) {
    const __m256d denom = denoms[k];
    const __m256d num = nums[k];
    const __m256d iszero = _mm256_cmp_pd(denom, zero, _CMP_EQ_OQ);
    reject = _mm256_or_pd(
        reject, _mm256_and_pd(iszero, _mm256_cmp_pd(num, zero, _CMP_LT_OQ)));
    const __m256d t = _mm256_div_pd(num, denom);
    // denom < 0 already excludes denom == 0 (and NaN), so no extra mask.
    const __m256d neg = _mm256_cmp_pd(denom, zero, _CMP_LT_OQ);
    t0 = sel(_mm256_and_pd(neg, _mm256_cmp_pd(t, t0, _CMP_GT_OQ)), t, t0);
    const __m256d pos = _mm256_cmp_pd(denom, zero, _CMP_GT_OQ);
    t1 = sel(_mm256_and_pd(pos, _mm256_cmp_pd(t, t1, _CMP_LT_OQ)), t, t1);
  }
  return _mm256_or_pd(reject, _mm256_cmp_pd(t0, t1, _CMP_GT_OQ));
}

void a_segment_intersects_rect(const double* ax, const double* ay,
                               const double* bx, const double* by,
                               const double* rxmin, const double* rymin,
                               const double* rxmax, const double* rymax,
                               std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t0, t1;
    const __m256d reject = clip_lanes(
        _mm256_loadu_pd(ax + i), _mm256_loadu_pd(ay + i),
        _mm256_loadu_pd(bx + i), _mm256_loadu_pd(by + i),
        _mm256_loadu_pd(rxmin + i), _mm256_loadu_pd(rymin + i),
        _mm256_loadu_pd(rxmax + i), _mm256_loadu_pd(rymax + i), t0, t1);
    const int bits = _mm256_movemask_pd(reject);
    out[i + 0] = static_cast<std::uint8_t>(!(bits & 1));
    out[i + 1] = static_cast<std::uint8_t>(!(bits & 2));
    out[i + 2] = static_cast<std::uint8_t>(!(bits & 4));
    out[i + 3] = static_cast<std::uint8_t>(!(bits & 8));
  }
  scalar_kernels().segment_intersects_rect(ax + i, ay + i, bx + i, by + i,
                                           rxmin + i, rymin + i, rxmax + i,
                                           rymax + i, out + i, n - i);
}

void a_clip_segment_rect(const double* ax, const double* ay, const double* bx,
                         const double* by, const double* rxmin,
                         const double* rymin, const double* rxmax,
                         const double* rymax, double* t0, double* t1,
                         std::uint8_t* accept, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v0, v1;
    const __m256d reject = clip_lanes(
        _mm256_loadu_pd(ax + i), _mm256_loadu_pd(ay + i),
        _mm256_loadu_pd(bx + i), _mm256_loadu_pd(by + i),
        _mm256_loadu_pd(rxmin + i), _mm256_loadu_pd(rymin + i),
        _mm256_loadu_pd(rxmax + i), _mm256_loadu_pd(rymax + i), v0, v1);
    _mm256_storeu_pd(t0 + i, v0);
    _mm256_storeu_pd(t1 + i, v1);
    const int bits = _mm256_movemask_pd(reject);
    accept[i + 0] = static_cast<std::uint8_t>(!(bits & 1));
    accept[i + 1] = static_cast<std::uint8_t>(!(bits & 2));
    accept[i + 2] = static_cast<std::uint8_t>(!(bits & 4));
    accept[i + 3] = static_cast<std::uint8_t>(!(bits & 8));
  }
  scalar_kernels().clip_segment_rect(ax + i, ay + i, bx + i, by + i, rxmin + i,
                                     rymin + i, rxmax + i, rymax + i, t0 + i,
                                     t1 + i, accept + i, n - i);
}

void a_point_on_segment(const double* px, const double* py, const double* ax,
                        const double* ay, const double* bx, const double* by,
                        std::uint8_t* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(px + i);
    const __m256d y = _mm256_loadu_pd(py + i);
    const __m256d sax = _mm256_loadu_pd(ax + i);
    const __m256d say = _mm256_loadu_pd(ay + i);
    const __m256d sbx = _mm256_loadu_pd(bx + i);
    const __m256d sby = _mm256_loadu_pd(by + i);
    // cross(a, b, p) = (bx-ax)*(py-ay) - (by-ay)*(px-ax).
    const __m256d v = _mm256_sub_pd(
        _mm256_mul_pd(_mm256_sub_pd(sbx, sax), _mm256_sub_pd(y, say)),
        _mm256_mul_pd(_mm256_sub_pd(sby, say), _mm256_sub_pd(x, sax)));
    const __m256d xlo = min_std(sax, sbx);
    const __m256d xhi = max_std(sax, sbx);
    const __m256d ylo = min_std(say, sby);
    const __m256d yhi = max_std(say, sby);
    // !(v > 0) && !(v < 0): NaN cross products count as collinear, exactly
    // like the scalar orient sign test.
    __m256d ok = _mm256_andnot_pd(
        _mm256_or_pd(_mm256_cmp_pd(v, zero, _CMP_GT_OQ),
                     _mm256_cmp_pd(v, zero, _CMP_LT_OQ)),
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(xlo, x, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(x, xhi, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(ylo, y, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(y, yhi, _CMP_LE_OQ));
    const int bits = _mm256_movemask_pd(ok);
    out[i + 0] = static_cast<std::uint8_t>((bits >> 0) & 1);
    out[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    out[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    out[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
  scalar_kernels().point_on_segment(px + i, py + i, ax + i, ay + i, bx + i,
                                    by + i, out + i, n - i);
}

constexpr Kernels kAvx2Kernels = {
    a_ew_add_f64,       a_ew_sub_f64,
    a_ew_mul_f64,       a_ew_min_f64,
    a_ew_max_f64,       a_scan_add_u64,
    a_reduce_add_u64,   a_reduce_or_u64,
    a_radix_hist,       a_radix_scatter,
    a_mindist_point_rect, a_dist2_point_segment,
    a_segment_intersects_rect, a_clip_segment_rect,
    a_point_on_segment,
};

}  // namespace

const Kernels& avx2_kernels() noexcept { return kAvx2Kernels; }

}  // namespace dps::dpv::simd

#endif  // DPS_SIMD_AVX2 && __AVX2__
