#pragma once
// Umbrella header for the dpv scan-model runtime.
//
// dpv implements the scan model of parallel computation (Blelloch 1989, as
// summarized in section 3.2 of Hoel & Samet, ICPP'95): arbitrarily long
// vectors manipulated exclusively through elementwise operations,
// permutations, and (segmented, directional, in/exclusive) scans, plus the
// standard derived operations (pack/split, radix sort, reductions).  A
// `Context` selects the serial or multicore backend and counts primitive
// invocations, reproducing the CM-5 unit-cost model of the paper.

#include "dpv/arena.hpp"        // IWYU pragma: export
#include "dpv/context.hpp"      // IWYU pragma: export
#include "dpv/cost_model.hpp"   // IWYU pragma: export
#include "dpv/distribute.hpp"   // IWYU pragma: export
#include "dpv/elementwise.hpp"  // IWYU pragma: export
#include "dpv/fault.hpp"        // IWYU pragma: export
#include "dpv/fused.hpp"        // IWYU pragma: export
#include "dpv/machine_model.hpp"  // IWYU pragma: export
#include "dpv/ops.hpp"          // IWYU pragma: export
#include "dpv/simd.hpp"         // IWYU pragma: export
#include "dpv/pack.hpp"         // IWYU pragma: export
#include "dpv/permute.hpp"      // IWYU pragma: export
#include "dpv/reduce.hpp"       // IWYU pragma: export
#include "dpv/scan.hpp"         // IWYU pragma: export
#include "dpv/sort.hpp"         // IWYU pragma: export
#include "dpv/thread_pool.hpp"  // IWYU pragma: export
#include "dpv/vector.hpp"       // IWYU pragma: export
