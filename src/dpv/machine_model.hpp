#pragma once
// Analytic machine-cost model over the primitive counters.
//
// The paper's cost analysis charges unit time per primitive on the CM-5's
// 32 processors; the dpv Context records exactly those invocations.  A
// MachineModel turns the ledger into an estimated wall-clock on a
// P-processor machine:
//
//   T = sum over categories  invocations * startup(P)
//                          + elements / P * per_element * traffic_factor
//
// where startup(P) models the per-launch combine tree (a + c*log2(P)
// term, dominant for scans) and traffic_factor penalizes the categories
// that route data across the machine (permute/gather/scatter/sort) versus
// the purely local ones (elementwise).  The model is deliberately simple
// -- it reproduces the *shape* of the paper's scalability story (speedup
// saturating when per-round startup dominates at O(log n) rounds), not any
// particular machine's absolute numbers.  bench_machine_model sweeps P.

#include <cstddef>

#include "dpv/context.hpp"

namespace dps::dpv {

struct MachineModel {
  std::size_t processors = 32;       // the paper's CM-5 configuration
  double element_ns = 4.0;           // per element of local work
  double launch_ns = 500.0;          // fixed cost to start any primitive
  double combine_ns = 300.0;         // per log2(P) level of a scan/reduce
  double traffic_factor = 4.0;       // remote-routing multiplier

  /// Estimated wall-clock milliseconds to replay `c` on this machine.
  double estimate_ms(const PrimCounters& c) const;

  /// Estimated speedup of this machine over the single-processor instance
  /// of the same model for the ledger `c`.
  double speedup(const PrimCounters& c) const;
};

}  // namespace dps::dpv
