#pragma once
// Online work/span cost model for dp-vs-sequential dispatch.
//
// The paper's scalability argument is a crossover argument: the data-parallel
// primitives win once the per-primitive launch overhead amortizes over a wide
// enough frontier, and lose below it.  The serving engine used to freeze that
// crossover into a hand-set `min_dp_batch` threshold; this class learns it
// online instead, in the style of sptl's oracle-guided granularity control.
//
// Shape of the estimator
//   A *family* is (request kind x index kind x map-density bucket x k
//   bucket); density and k are bucketed by floor(log2).  Within a family the
//   model keeps one cell per (group-size bucket x path), where path is dp or
//   sequential.  Each cell is an EMA of measured microseconds per query plus
//   an EMA of the group sizes that fed it.  Costs come from the engine: the
//   wall-clock of a successful dp pipeline attempt (whose primitive ledger
//   the `dpv::Context` already records) or of a clean sequential sweep.
//
// Decisions
//   - both paths measured: argmin of the two extrapolated costs.  The
//     sequential path is linear in the group size, so it extrapolates as
//     us/query * n from the sample-weighted average over size buckets.  The
//     dp pipeline has a large n-independent launch term, so a same-bucket
//     cell is used directly, two or more buckets fit a T = a + b*n line, and
//     a single out-of-bucket cell extrapolates conservatively (per-query cost
//     held constant going up, total cost held constant going down -- both
//     overestimate dp and so err toward the well-understood sequential path).
//   - one path measured: the bootstrap prior decides, except that every
//     `explore_period`-th decision for the family probes the unmeasured path
//     so the model can never wedge itself one-sided.
//   - neither measured: the bootstrap prior (n >= bootstrap_min_dp_batch,
//     i.e. the demoted `min_dp_batch`), or the analytic `MachineModel` prior
//     when the bootstrap threshold is 0.
//   Every `refresh_period`-th decision re-probes the measured loser so a
//   stale measurement can be overturned.  Both probe counters are
//   deterministic (no RNG, no clock) and can be disabled by setting the
//   period to 0.
//
// Thread safety: all members are guarded by an internal mutex; decide() and
// observe() may race freely across engine shards.
//
// Test hook: force(kDp/kSeq) pins every decision globally (mirroring
// `simd::force()`); the DPS_DISPATCH_FORCE=dp|seq environment variable is
// honored at startup.  warm() installs coefficients outright, which is how
// tests inject forced coefficients and how Cluster replicas share ledgers.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dpv/machine_model.hpp"

namespace dps::dpv {

enum class CostPath : int {
  kSeq = 0,
  kDp = 1,
};

/// The dispatch-relevant shape of one request group.  `kind` / `index` are
/// the serving layer's ordinals (the model never interprets them, they only
/// key families); `mean_k` is 0 for anything but k-nearest groups.
struct GroupShape {
  int kind = 0;
  int index = 0;
  std::size_t group_size = 0;
  std::size_t map_elements = 0;
  std::size_t mean_k = 0;
};

struct CostModelOptions {
  /// The demoted `min_dp_batch`: groups at least this large take the dp
  /// pipeline until measurements exist.  0 switches the unmeasured prior to
  /// the analytic MachineModel.
  std::size_t bootstrap_min_dp_batch = 8;
  /// EMA weight of a new observation against the cell's running estimate.
  double ema_alpha = 0.25;
  /// Cells with fewer samples than this do not count as "measured".
  std::uint32_t min_samples = 3;
  /// Probe the unmeasured path every Nth family decision (0 = never).
  std::uint32_t explore_period = 32;
  /// Re-probe the measured loser every Nth family decision (0 = never).
  std::uint32_t refresh_period = 128;
  /// A sequential k-bucket is peeled out of a hybrid k-nearest group only
  /// when its estimated dp cost exceeds its sequential cost by this factor.
  double hybrid_margin = 1.1;
  /// Analytic prior used when bootstrap_min_dp_batch == 0.
  MachineModel analytic{};
};

/// Serializable coefficients: one entry per (family x size bucket x path)
/// cell.  Snapshots merge by adopting the better-trained entry per key, so
/// repeated warms are idempotent.
struct CostModelSnapshot {
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t samples = 0;
    double us_per_query = 0.0;
    double mean_n = 0.0;
  };
  std::vector<Entry> entries;

  bool empty() const { return entries.empty(); }
};

/// Merge `from` into `into`: per key, the entry with more samples wins.
void merge_snapshot(CostModelSnapshot& into, const CostModelSnapshot& from);

struct CostDecision {
  bool use_dp = false;
  /// True when a deterministic explore/refresh probe, not an argmin or the
  /// prior, produced the decision.
  bool explored = false;
  /// True when both paths had trusted measurements (argmin decision).
  bool measured = false;
  /// Extrapolated estimates in microseconds; < 0 means unmeasured.
  double dp_us = -1.0;
  double seq_us = -1.0;
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions opts = {});

  /// Pick a path for a group of shape `g`.  Bumps the family's decision
  /// counter (the explore/refresh probes key off it).
  CostDecision decide(const GroupShape& g);

  /// Record a measured group: `wall_us` of wall-clock ran `g.group_size`
  /// queries down `path`.  Non-finite / non-positive sizes are ignored.
  void observe(const GroupShape& g, CostPath path, double wall_us);

  /// Extrapolated cost estimate in microseconds, or -1 when the family has
  /// no trusted measurement for `path`.  (Introspection for tests/bench.)
  double estimate_us(const GroupShape& g, CostPath path) const;

  CostModelSnapshot snapshot() const;

  /// Install coefficients: per key, an incoming entry replaces the resident
  /// cell only when it has seen more samples.
  void warm(const CostModelSnapshot& snap);

  const CostModelOptions& options() const { return opts_; }

  // -- Global force hook (test escape hatch, mirrors simd::force). ---------

  /// Pin every decision of every model to `p` until unforce().
  static void force(CostPath p) noexcept;
  static void unforce() noexcept;
  /// -1 when unforced, else the CostPath ordinal.  Honors the
  /// DPS_DISPATCH_FORCE=dp|seq environment variable at startup.
  static int forced_path() noexcept;

  // -- Bucketing (exposed for tests). ---------------------------------------

  /// floor(log2(v)) clamped to [0, 63]; 0 for v == 0.
  static int log2_bucket(std::size_t v) noexcept;
  /// Cell key for shape `g` down `path` (family bits + size bucket + path).
  static std::uint64_t cell_key(const GroupShape& g, CostPath path) noexcept;
  /// Family key: cell key with the size bucket and path bits cleared.
  static std::uint64_t family_key(const GroupShape& g) noexcept;

  /// The analytic MachineModel prior (shape-only, used when the bootstrap
  /// threshold is 0): closed-form replay of a log2(map)-round descent.
  double analytic_us(const GroupShape& g, CostPath path) const;

 private:
  struct Cell {
    std::uint64_t samples = 0;
    double us_per_query = 0.0;
    double mean_n = 0.0;
  };

  double estimate_seq_locked(const GroupShape& g) const;
  double estimate_dp_locked(const GroupShape& g) const;

  CostModelOptions opts_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Cell> cells_;
  std::unordered_map<std::uint64_t, std::uint64_t> decisions_;
};

}  // namespace dps::dpv
