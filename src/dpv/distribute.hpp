#pragma once
// Scan-distributed expansion: the standard scan-model idiom for replacing
// each of k sources with counts[i] consecutive copies of its index.
//
// Mechanics: an exclusive +-scan of the counts yields each source's output
// offset, the indices of the non-empty sources scatter to their run heads,
// and an inclusive max-scan smears each head over its run.  Both batch-query
// translation units use this to expand a frontier of (query, node) pairs
// into per-child / per-entry candidates; dp_spatial_join uses the same
// shape for candidate pair expansion.

#include <cstddef>
#include <cstdint>

#include "dpv/context.hpp"
#include "dpv/elementwise.hpp"
#include "dpv/ops.hpp"
#include "dpv/permute.hpp"
#include "dpv/scan.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// Result of a distribute: src[j] = i for offsets[i] <= j < offsets[i] +
/// counts[i].  `offsets` is the exclusive prefix sum of the counts (the
/// same scan the expansion itself needs, returned so callers translating
/// j -> (source, rank-within-source) do not pay for it twice).
struct Expansion {
  Index src;                 // length total; source index per output slot
  Vec<std::size_t> offsets;  // length k; exclusive +-scan of counts
  std::size_t total = 0;     // sum of counts
};

/// Distributes k sources over sum(counts) slots.
inline Expansion distribute(Context& ctx, const Vec<std::size_t>& counts) {
  const std::size_t k = counts.size();
  Expansion e;
  e.offsets = scan(ctx, Plus<std::size_t>{}, counts, Dir::kUp,
                   Incl::kExclusive);
  e.total = k == 0 ? 0 : e.offsets[k - 1] + counts[k - 1];
  if (e.total == 0) return e;
  Vec<std::size_t> heads = constant<std::size_t>(ctx, e.total, 0);
  Flags nonempty = map(ctx, counts, [](std::size_t c) {
    return static_cast<std::uint8_t>(c > 0);
  });
  scatter(ctx, iota(ctx, k), e.offsets, nonempty, heads);
  e.src = scan(ctx, Max<std::size_t>{}, heads, Dir::kUp, Incl::kInclusive);
  return e;
}

}  // namespace dps::dpv
