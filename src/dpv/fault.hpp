#pragma once
// Deterministic fault injection for the dpv runtime and the serving layer.
//
// A FaultInjector evaluates a seeded FaultSchedule and answers three
// questions at well-defined hook points:
//
//   * does primitive invocation #seq of scope S fail?
//     (`Context::count` asks when the context is armed via
//     `Context::arm_fault_injection`; a yes latches the context's
//     fault-pending flag, which the batch pipelines poll between
//     scan-model rounds exactly like a cancellation control)
//   * is shard-attempt scope S poisoned outright?
//     (the serving engine asks before launching a shard's data-parallel
//     attempt; a poisoned attempt fails before any primitive runs)
//   * should lane L stall at pool launch G, and for how long?
//     (`ThreadPool::run` asks when the pool is armed via
//     `ThreadPool::set_fault_injector`; a stall only delays a lane, it
//     never changes results)
//
// Every answer is a pure function of (seed, coordinates) through
// splitmix64, never of wall clock or call interleaving, so a schedule
// replays bit-identically: chaos tests can assert identical responses and
// identical retry metrics across runs and across serial / thread-pool
// backends.  The atomic tallies exist for observability only and take no
// part in any decision.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace dps::dpv {

/// Stateless 64-bit mixer (splitmix64 finalizer); the uniformity source
/// for every injection decision and for the engine's backoff jitter.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// What to inject.  Rates are probabilities in [0, 1] evaluated
/// independently per decision point; `fail_nth` is the paper-over-chaos
/// deterministic mode ("fail the Nth primitive call of every scope").
struct FaultSchedule {
  std::uint64_t seed = 0;

  // Primitive failures (per armed-context invocation).
  double primitive_fail_rate = 0.0;
  std::uint64_t fail_nth = 0;  // 0 = off; 1-based invocation index per scope

  // Lane stalls (per (lane, pool launch)).
  double lane_stall_rate = 0.0;
  std::chrono::microseconds lane_stall_us{200};

  // Shard poisoning (per shard-attempt scope).
  double shard_poison_rate = 0.0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultSchedule& schedule)
      : schedule_(schedule) {}

  const FaultSchedule& schedule() const noexcept { return schedule_; }

  /// Combines logical coordinates (shard id, attempt number, ...) into one
  /// scope id.  Pure; the same coordinates always name the same scope.
  static std::uint64_t scope(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c = 0) noexcept;

  /// True when primitive invocation `seq` (1-based) under `scope` must
  /// fail.  Pure decision; the caller records the tally.
  bool primitive_faults(std::uint64_t scope, std::uint64_t seq) const noexcept;

  /// True when the shard attempt named by `scope` is poisoned.
  bool shard_poisoned(std::uint64_t scope) const noexcept;

  /// Stall duration for `lane` at pool launch `launch` (zero = no stall).
  std::chrono::microseconds lane_stall(std::size_t lane,
                                       std::uint64_t launch) const noexcept;

  // Observability tallies (no decision reads them).
  void note_primitive_fault() noexcept {
    primitive_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_shard_poisoned() noexcept {
    shards_poisoned_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_lane_stall() noexcept {
    lane_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t primitive_fault_count() const noexcept {
    return primitive_faults_.load(std::memory_order_relaxed);
  }
  std::uint64_t shard_poison_count() const noexcept {
    return shards_poisoned_.load(std::memory_order_relaxed);
  }
  std::uint64_t lane_stall_count() const noexcept {
    return lane_stalls_.load(std::memory_order_relaxed);
  }

 private:
  FaultSchedule schedule_;
  std::atomic<std::uint64_t> primitive_faults_{0};
  std::atomic<std::uint64_t> shards_poisoned_{0};
  std::atomic<std::uint64_t> lane_stalls_{0};
};

}  // namespace dps::dpv
