#pragma once
// Deterministic fault injection for the dpv runtime and the serving layer.
//
// A FaultInjector evaluates a seeded FaultSchedule and answers three
// questions at well-defined hook points:
//
//   * does primitive invocation #seq of scope S fail?
//     (`Context::count` asks when the context is armed via
//     `Context::arm_fault_injection`; a yes latches the context's
//     fault-pending flag, which the batch pipelines poll between
//     scan-model rounds exactly like a cancellation control)
//   * is shard-attempt scope S poisoned outright?
//     (the serving engine asks before launching a shard's data-parallel
//     attempt; a poisoned attempt fails before any primitive runs)
//   * should lane L stall at pool launch G, and for how long?
//     (`ThreadPool::run` asks when the pool is armed via
//     `ThreadPool::set_fault_injector`; a stall only delays a lane, it
//     never changes results)
//   * does replica R misbehave for dispatch scope S, and how?
//     (the cluster's dispatcher asks before handing a subrequest to a
//     replica engine; the answer is one of stall-for-a-duration,
//     stuck-forever -- the reply simply never arrives -- or fail-fast
//     crash.  Failure-domain machinery above the injection point --
//     hedging, circuit breakers, degradation -- turns these into bounded
//     latency, never into wrong answers)
//
// Every answer is a pure function of (seed, coordinates) through
// splitmix64, never of wall clock or call interleaving, so a schedule
// replays bit-identically: chaos tests can assert identical responses and
// identical retry metrics across runs and across serial / thread-pool
// backends.  The atomic tallies exist for observability only and take no
// part in any decision.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace dps::dpv {

/// Stateless 64-bit mixer (splitmix64 finalizer); the uniformity source
/// for every injection decision and for the engine's backoff jitter.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// What to inject.  Rates are probabilities in [0, 1] evaluated
/// independently per decision point; `fail_nth` is the paper-over-chaos
/// deterministic mode ("fail the Nth primitive call of every scope").
struct FaultSchedule {
  std::uint64_t seed = 0;

  // Primitive failures (per armed-context invocation).
  double primitive_fail_rate = 0.0;
  std::uint64_t fail_nth = 0;  // 0 = off; 1-based invocation index per scope

  // Lane stalls (per (lane, pool launch)).
  double lane_stall_rate = 0.0;
  std::chrono::microseconds lane_stall_us{200};

  // Shard poisoning (per shard-attempt scope).
  double shard_poison_rate = 0.0;

  // Replica-level faults (per (replica, dispatch scope)); evaluated by the
  // cluster dispatcher before a subrequest reaches the replica engine.
  // Precedence when several rates fire for one decision point:
  // crash > stuck > stall.  `replica_fault_mask` gates which replicas can
  // misbehave at all (bit r = replica r; default everyone), so a schedule
  // can pin the chaos to one failure domain.
  std::uint64_t replica_fault_mask = ~std::uint64_t{0};
  double replica_stall_rate = 0.0;
  std::chrono::microseconds replica_stall_us{2000};
  double replica_stuck_rate = 0.0;
  double replica_crash_rate = 0.0;
};

/// How a replica misbehaves for one dispatch scope.
enum class ReplicaFaultKind : std::uint8_t {
  kNone = 0,
  kStall,  // delay the subrequest by `stall`, then answer normally
  kStuck,  // the reply never arrives (dropped, not joined on)
  kCrash,  // fail fast: an immediate replica-level failure, no answer
};

struct ReplicaFault {
  ReplicaFaultKind kind = ReplicaFaultKind::kNone;
  std::chrono::microseconds stall{0};  // meaningful for kStall only
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultSchedule& schedule)
      : schedule_(schedule) {}

  const FaultSchedule& schedule() const noexcept { return schedule_; }

  /// Replaces the schedule.  Not synchronized: call while no decision
  /// point is concurrently asking (chaos tests use it between phases, e.g.
  /// to heal a crashing replica and watch a circuit breaker close).
  void set_schedule(const FaultSchedule& schedule) noexcept {
    schedule_ = schedule;
  }

  /// Combines logical coordinates (shard id, attempt number, ...) into one
  /// scope id.  Pure; the same coordinates always name the same scope.
  static std::uint64_t scope(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c = 0) noexcept;

  /// True when primitive invocation `seq` (1-based) under `scope` must
  /// fail.  Pure decision; the caller records the tally.
  bool primitive_faults(std::uint64_t scope, std::uint64_t seq) const noexcept;

  /// True when the shard attempt named by `scope` is poisoned.
  bool shard_poisoned(std::uint64_t scope) const noexcept;

  /// Stall duration for `lane` at pool launch `launch` (zero = no stall).
  std::chrono::microseconds lane_stall(std::size_t lane,
                                       std::uint64_t launch) const noexcept;

  /// How replica `replica` misbehaves for dispatch scope `scope` (kNone =
  /// healthy).  Pure decision -- (seed, replica, scope) only, never wall
  /// clock -- so the *set of faulted subrequests* replays bit-identically
  /// even though hedge timing varies run to run.
  ReplicaFault replica_fault(std::size_t replica,
                             std::uint64_t scope) const noexcept;

  // Observability tallies (no decision reads them).
  void note_primitive_fault() noexcept {
    primitive_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_shard_poisoned() noexcept {
    shards_poisoned_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_lane_stall() noexcept {
    lane_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_replica_fault(ReplicaFaultKind kind) noexcept {
    switch (kind) {
      case ReplicaFaultKind::kNone: break;
      case ReplicaFaultKind::kStall:
        replica_stalls_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplicaFaultKind::kStuck:
        replica_stucks_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplicaFaultKind::kCrash:
        replica_crashes_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  std::uint64_t primitive_fault_count() const noexcept {
    return primitive_faults_.load(std::memory_order_relaxed);
  }
  std::uint64_t shard_poison_count() const noexcept {
    return shards_poisoned_.load(std::memory_order_relaxed);
  }
  std::uint64_t lane_stall_count() const noexcept {
    return lane_stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_stall_count() const noexcept {
    return replica_stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_stuck_count() const noexcept {
    return replica_stucks_.load(std::memory_order_relaxed);
  }
  std::uint64_t replica_crash_count() const noexcept {
    return replica_crashes_.load(std::memory_order_relaxed);
  }

 private:
  FaultSchedule schedule_;
  std::atomic<std::uint64_t> primitive_faults_{0};
  std::atomic<std::uint64_t> shards_poisoned_{0};
  std::atomic<std::uint64_t> lane_stalls_{0};
  std::atomic<std::uint64_t> replica_stalls_{0};
  std::atomic<std::uint64_t> replica_stucks_{0};
  std::atomic<std::uint64_t> replica_crashes_{0};
};

}  // namespace dps::dpv
