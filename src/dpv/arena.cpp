#include "dpv/arena.hpp"

namespace dps::dpv {

Arena::~Arena() { release(); }

void* Arena::allocate(std::size_t bytes) {
  std::size_t need = bytes + sizeof(Header);
  if (need < kMinBlock) need = kMinBlock;
  const auto log2 = static_cast<std::size_t>(std::bit_width(need - 1));
  const std::size_t bucket = log2 - kMinBucket;
  Header* h;
  if (bucket < kNumBuckets && !free_[bucket].empty()) {
    h = static_cast<Header*>(free_[bucket].back());
    free_[bucket].pop_back();
    ++stats_.hits;
  } else {
    h = static_cast<Header*>(::operator new(std::size_t{1} << log2));
    ++stats_.mallocs;
    ++stats_.round_mallocs;
    stats_.bytes_reserved += std::size_t{1} << log2;
  }
  h->owner = this;
  h->bucket = bucket;
  ++stats_.live_blocks;
  return h + 1;
}

void Arena::deallocate(void* payload) noexcept {
  if (payload == nullptr) return;
  auto* h = static_cast<Header*>(payload) - 1;
  if (h->owner == nullptr) {
    ::operator delete(h);
    return;
  }
  h->owner->recycle(h);
}

void Arena::recycle(Header* h) noexcept {
  --stats_.live_blocks;
  if (h->bucket < kNumBuckets) {
    free_[h->bucket].push_back(h);
  } else {
    stats_.bytes_reserved -=
        std::size_t{1} << (h->bucket + kMinBucket);
    ::operator delete(h);
  }
}

void Arena::release() noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    for (void* p : free_[b]) {
      stats_.bytes_reserved -= std::size_t{1} << (b + kMinBucket);
      ::operator delete(p);
    }
    free_[b].clear();
  }
}

}  // namespace dps::dpv
