#pragma once
// Vectorized kernel backend for the dpv runtime.
//
// The scan-model primitives execute their per-block inner loops through a
// kernel table: a struct of plain function pointers with a portable scalar
// implementation and (when the build enables it and the CPU supports it) an
// AVX2 implementation selected at runtime via cpuid.  The batch pipelines
// additionally call the batched geometry kernels (MINDIST, window clip,
// point-on-segment, point-segment distance) on structure-of-arrays tiles so
// leaf tests and frontier pruning run lane-parallel.
//
// Exactness contract: every kernel produces *bitwise identical* results on
// every backend for every input, including +/-inf, signed zeros and
// denormals, with one carve-out: a lane whose result is NaN is NaN on every
// backend, but its sign/payload bits are unspecified (ISO C++ does not pin
// which NaN survives `NaN_a + NaN_b`, and compilers may commute the
// operands).  Float kernels are elementwise (no reassociation) and the AVX2
// variants mirror the scalar operation order per lane with blend-based
// ternaries (e.g. min(a, b) is `(b < a) ? b : a`, exactly std::min).
// Reductions and scans are vectorized only for 64-bit unsigned integers,
// where regrouping is exact; float reductions stay on the scalar fold so
// serial and SIMD ledgers replay identically.  The scalar-vs-SIMD
// differential suite (tests/test_dpv_simd_differential.cpp) enforces the
// contract over lane-boundary sizes, unaligned bases and adversarial
// floats.
//
// Build/dispatch: the AVX2 translation unit (dpv/simd_avx2.cpp) is compiled
// with -mavx2 only when the `DPS_SIMD` CMake switch is ON; everything else
// is built for the baseline architecture, so the binary runs on any x86-64
// (or other) host and upgrades itself when cpuid reports AVX2.  `force()`
// lets tests pin a backend; forcing kAvx2 on an unsupported host is a
// no-op fallback to scalar.

#include <cstddef>
#include <cstdint>

namespace dps::dpv::simd {

enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable backend name ("scalar" / "avx2").
const char* backend_name(Backend b) noexcept;

/// True when this binary contains the AVX2 kernel table (DPS_SIMD=ON and an
/// x86-64 toolchain).
bool avx2_compiled() noexcept;

/// True when the running CPU reports AVX2 support.
bool avx2_supported() noexcept;

/// The backend cpuid dispatch picks on this host: kAvx2 when compiled in
/// and supported, else kScalar.
Backend dispatched() noexcept;

/// The backend currently in effect (dispatched, unless overridden).
Backend active() noexcept;

/// Overrides the active backend (test hook; also honors the
/// DPS_SIMD_BACKEND=scalar environment variable at startup).  Forcing
/// kAvx2 when unavailable falls back to scalar and returns the backend
/// actually installed.
Backend force(Backend b) noexcept;

/// Kernel table.  All pointers are non-null on every backend; buffers may
/// be unaligned; `n` may be 0.  Output buffers must not alias inputs.
struct Kernels {
  // -- Elementwise f64 (per-lane exact; no reassociation). ----------------
  void (*ew_add_f64)(const double* a, const double* b, double* out,
                     std::size_t n);
  void (*ew_sub_f64)(const double* a, const double* b, double* out,
                     std::size_t n);
  void (*ew_mul_f64)(const double* a, const double* b, double* out,
                     std::size_t n);
  // std::min / std::max semantics: min = (b < a) ? b : a.
  void (*ew_min_f64)(const double* a, const double* b, double* out,
                     std::size_t n);
  void (*ew_max_f64)(const double* a, const double* b, double* out,
                     std::size_t n);

  // -- Integer scans / reductions (exactly associative). ------------------
  // +-scan of `in` seeded with `carry`; writes inclusive or exclusive
  // prefixes to `out` and returns the outgoing carry (carry + sum(in)).
  std::uint64_t (*scan_add_u64)(const std::uint64_t* in, std::uint64_t* out,
                                std::size_t n, std::uint64_t carry,
                                bool inclusive);
  std::uint64_t (*reduce_add_u64)(const std::uint64_t* in, std::size_t n);
  std::uint64_t (*reduce_or_u64)(const std::uint64_t* in, std::size_t n);

  // -- Radix sort passes (8-bit digits). ----------------------------------
  // hist256[d] += |{i : digit(keys[i]) == d}| for digit = (k >> shift)&255.
  void (*radix_hist)(const std::uint64_t* keys, std::size_t n, unsigned shift,
                     std::size_t* hist256);
  // Stable scatter of (keys, order) by digit: out[bucket_pos[d]++] = i-th.
  void (*radix_scatter)(const std::uint64_t* keys, const std::size_t* order,
                        std::size_t n, unsigned shift, std::size_t* bucket_pos,
                        std::uint64_t* out_keys, std::size_t* out_order);

  // -- Batched geometry (structure-of-arrays). ----------------------------
  // out[i] = squared distance from point i to closed rect i (MINDIST).
  void (*mindist_point_rect)(const double* px, const double* py,
                             const double* xmin, const double* ymin,
                             const double* xmax, const double* ymax,
                             double* out, std::size_t n);
  // out[i] = squared distance from point i to closed segment i.
  void (*dist2_point_segment)(const double* px, const double* py,
                              const double* ax, const double* ay,
                              const double* bx, const double* by, double* out,
                              std::size_t n);
  // out[i] = 1 iff closed segment i intersects closed rect i (Liang-Barsky
  // accept; matches geom::segment_intersects_rect bit-for-bit).
  void (*segment_intersects_rect)(const double* ax, const double* ay,
                                  const double* bx, const double* by,
                                  const double* rxmin, const double* rymin,
                                  const double* rxmax, const double* rymax,
                                  std::uint8_t* out, std::size_t n);
  // Full parametric clip: accept[i] as above; where accept[i] != 0, the
  // intersection parameter interval is [t0[i], t1[i]] (t0/t1 are undefined
  // on rejected lanes, exactly like geom::clip_segment_to_rect's outputs
  // after an early reject).
  void (*clip_segment_rect)(const double* ax, const double* ay,
                            const double* bx, const double* by,
                            const double* rxmin, const double* rymin,
                            const double* rxmax, const double* rymax,
                            double* t0, double* t1, std::uint8_t* accept,
                            std::size_t n);
  // out[i] = 1 iff point i lies on closed segment i (collinear + bbox).
  void (*point_on_segment)(const double* px, const double* py,
                           const double* ax, const double* ay,
                           const double* bx, const double* by,
                           std::uint8_t* out, std::size_t n);
};

/// The scalar kernel table (always available; the differential oracle).
const Kernels& scalar_kernels() noexcept;

/// The kernel table of the active backend.
const Kernels& kernels() noexcept;

/// The kernel table of a specific backend (kAvx2 falls back to scalar when
/// unavailable).
const Kernels& kernels_for(Backend b) noexcept;

}  // namespace dps::dpv::simd
