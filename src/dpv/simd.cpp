#include "dpv/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dps::dpv::simd {

// ---------------------------------------------------------------------------
// Scalar kernels.  The geometry kernels mirror geom/predicates.cpp and
// geom/rect.hpp operation-for-operation: this translation unit is compiled
// with the same baseline flags, so the results are bitwise identical to the
// sequential oracle the serving differential tests compare against.
// ---------------------------------------------------------------------------

namespace {

void s_ew_add_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void s_ew_sub_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void s_ew_mul_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void s_ew_min_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = b[i] < a[i] ? b[i] : a[i];
}

void s_ew_max_f64(const double* a, const double* b, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] < b[i] ? b[i] : a[i];
}

std::uint64_t s_scan_add_u64(const std::uint64_t* in, std::uint64_t* out,
                             std::size_t n, std::uint64_t carry,
                             bool inclusive) {
  if (inclusive) {
    for (std::size_t i = 0; i < n; ++i) {
      carry += in[i];
      out[i] = carry;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = carry;
      carry += in[i];
    }
  }
  return carry;
}

std::uint64_t s_reduce_add_u64(const std::uint64_t* in, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += in[i];
  return acc;
}

std::uint64_t s_reduce_or_u64(const std::uint64_t* in, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= in[i];
  return acc;
}

void s_radix_hist(const std::uint64_t* keys, std::size_t n, unsigned shift,
                  std::size_t* hist256) {
  for (std::size_t i = 0; i < n; ++i) {
    hist256[(keys[i] >> shift) & 0xFFu]++;
  }
}

void s_radix_scatter(const std::uint64_t* keys, const std::size_t* order,
                     std::size_t n, unsigned shift, std::size_t* bucket_pos,
                     std::uint64_t* out_keys, std::size_t* out_order) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = (keys[i] >> shift) & 0xFFu;
    const std::size_t p = bucket_pos[d]++;
    out_keys[p] = keys[i];
    out_order[p] = order[i];
  }
}

void s_mindist_point_rect(const double* px, const double* py,
                          const double* xmin, const double* ymin,
                          const double* xmax, const double* ymax, double* out,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] < xmin[i] ? xmin[i] - px[i]
                                      : (px[i] > xmax[i] ? px[i] - xmax[i]
                                                         : 0.0);
    const double dy = py[i] < ymin[i] ? ymin[i] - py[i]
                                      : (py[i] > ymax[i] ? py[i] - ymax[i]
                                                         : 0.0);
    out[i] = dx * dx + dy * dy;
  }
}

void s_dist2_point_segment(const double* px, const double* py,
                           const double* ax, const double* ay,
                           const double* bx, const double* by, double* out,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = bx[i] - ax[i], dy = by[i] - ay[i];
    const double len2 = dx * dx + dy * dy;
    double u = 0.0;
    if (len2 > 0.0) {
      u = ((px[i] - ax[i]) * dx + (py[i] - ay[i]) * dy) / len2;
      u = u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
    }
    const double ex = ax[i] + u * dx - px[i];
    const double ey = ay[i] + u * dy - py[i];
    out[i] = ex * ex + ey * ey;
  }
}

// geom::clip_segment_to_rect, one lane.
bool s_clip_one(double ax, double ay, double bx, double by, double rxmin,
                double rymin, double rxmax, double rymax, double& t0,
                double& t1) {
  if (rxmin > rxmax || rymin > rymax) return false;  // Rect::is_empty
  const double dx = bx - ax;
  const double dy = by - ay;
  t0 = 0.0;
  t1 = 1.0;
  const double denom[4] = {-dx, dx, -dy, dy};
  const double num[4] = {ax - rxmin, rxmax - ax, ay - rymin, rymax - ay};
  for (int k = 0; k < 4; ++k) {
    if (denom[k] == 0.0) {
      if (num[k] < 0.0) return false;
      continue;
    }
    const double t = num[k] / denom[k];
    if (denom[k] < 0.0) {
      if (t > t0) t0 = t;
    } else {
      if (t < t1) t1 = t;
    }
    if (t0 > t1) return false;
  }
  return true;
}

void s_segment_intersects_rect(const double* ax, const double* ay,
                               const double* bx, const double* by,
                               const double* rxmin, const double* rymin,
                               const double* rxmax, const double* rymax,
                               std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double t0, t1;
    out[i] = s_clip_one(ax[i], ay[i], bx[i], by[i], rxmin[i], rymin[i],
                        rxmax[i], rymax[i], t0, t1)
                 ? 1
                 : 0;
  }
}

void s_clip_segment_rect(const double* ax, const double* ay, const double* bx,
                         const double* by, const double* rxmin,
                         const double* rymin, const double* rxmax,
                         const double* rymax, double* t0, double* t1,
                         std::uint8_t* accept, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    accept[i] = s_clip_one(ax[i], ay[i], bx[i], by[i], rxmin[i], rymin[i],
                           rxmax[i], rymax[i], t0[i], t1[i])
                    ? 1
                    : 0;
  }
}

void s_point_on_segment(const double* px, const double* py, const double* ax,
                        const double* ay, const double* bx, const double* by,
                        std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // geom::point_on_segment: orient(a, b, p) == 0 and p in bbox(a, b).
    // orient's sign test maps NaN cross products to 0 (collinear), so the
    // mirror is !(v > 0) && !(v < 0) rather than v == 0.
    const double v =
        (bx[i] - ax[i]) * (py[i] - ay[i]) - (by[i] - ay[i]) * (px[i] - ax[i]);
    const double xlo = std::min(ax[i], bx[i]), xhi = std::max(ax[i], bx[i]);
    const double ylo = std::min(ay[i], by[i]), yhi = std::max(ay[i], by[i]);
    out[i] = (!(v > 0.0) && !(v < 0.0) && xlo <= px[i] && px[i] <= xhi &&
              ylo <= py[i] && py[i] <= yhi)
                 ? 1
                 : 0;
  }
}

constexpr Kernels kScalarKernels = {
    s_ew_add_f64,       s_ew_sub_f64,
    s_ew_mul_f64,       s_ew_min_f64,
    s_ew_max_f64,       s_scan_add_u64,
    s_reduce_add_u64,   s_reduce_or_u64,
    s_radix_hist,       s_radix_scatter,
    s_mindist_point_rect, s_dist2_point_segment,
    s_segment_intersects_rect, s_clip_segment_rect,
    s_point_on_segment,
};

}  // namespace

const Kernels& scalar_kernels() noexcept { return kScalarKernels; }

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

#if defined(DPS_SIMD_AVX2)
// Defined in dpv/simd_avx2.cpp (compiled with -mavx2).
const Kernels& avx2_kernels() noexcept;
#endif

bool avx2_compiled() noexcept {
#if defined(DPS_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend dispatched() noexcept {
  return (avx2_compiled() && avx2_supported()) ? Backend::kAvx2
                                               : Backend::kScalar;
}

const char* backend_name(Backend b) noexcept {
  return b == Backend::kAvx2 ? "avx2" : "scalar";
}

const Kernels& kernels_for(Backend b) noexcept {
#if defined(DPS_SIMD_AVX2)
  if (b == Backend::kAvx2 && avx2_supported()) return avx2_kernels();
#else
  (void)b;
#endif
  return kScalarKernels;
}

namespace {

std::atomic<int>& active_slot() noexcept {
  // Initialized from the cpuid dispatch, overridable by environment (for
  // whole-process scalar runs, e.g. the DPS_SIMD=ON CI leg exercising the
  // fallback) and by force() (for in-process differential tests).
  static std::atomic<int> slot = [] {
    Backend b = dispatched();
    if (const char* env = std::getenv("DPS_SIMD_BACKEND")) {
      if (std::strcmp(env, "scalar") == 0) b = Backend::kScalar;
    }
    return static_cast<int>(b);
  }();
  return slot;
}

}  // namespace

Backend active() noexcept {
  return static_cast<Backend>(active_slot().load(std::memory_order_relaxed));
}

Backend force(Backend b) noexcept {
  if (b == Backend::kAvx2 && !(avx2_compiled() && avx2_supported())) {
    b = Backend::kScalar;
  }
  active_slot().store(static_cast<int>(b), std::memory_order_relaxed);
  return b;
}

const Kernels& kernels() noexcept { return kernels_for(active()); }

}  // namespace dps::dpv::simd
