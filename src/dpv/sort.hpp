#pragma once
// Scan-model sorting: a stable LSD radix sort whose passes are split
// operations (Blelloch's split-radix sort, the sort the scan model performs
// in O(log n) primitive steps).
//
// Each pass partitions by one 8-bit digit: per-block digit histograms, an
// exclusive scan over the (block x digit) count matrix, and a permutation.
// `sort_keys_indices` returns the permutation that sorts `keys`; callers
// apply it to their payload vectors with `gather`.
//
// Segmented sorting (sort within each segment group, groups staying in
// place) is obtained by prepending the group ordinal to the key -- the
// composite sort is stable, so groups remain contiguous and internally
// sorted.  This is how the R-tree sweep split (section 4.7) sorts each
// overflowing node's entries simultaneously.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "dpv/context.hpp"
#include "dpv/elementwise.hpp"
#include "dpv/permute.hpp"
#include "dpv/reduce.hpp"
#include "dpv/scan.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// Order-preserving map from double to uint64: flips the sign bit for
/// non-negatives and all bits for negatives so that unsigned comparison of
/// the images matches double comparison (NaNs excluded by precondition).
inline std::uint64_t key_from_double(double d) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  const std::uint64_t mask =
      (bits & 0x8000'0000'0000'0000ull) ? ~0ull : 0x8000'0000'0000'0000ull;
  return bits ^ mask;
}

namespace detail {

inline constexpr std::size_t kRadixBits = 8;
inline constexpr std::size_t kBuckets = std::size_t{1} << kRadixBits;

// One stable counting pass on digit `shift`.  `cur` holds the keys already
// permuted by `order` (so both the histogram and the scatter stream through
// memory sequentially instead of gathering keys[order[i]] twice); the pass
// writes the re-permuted keys to `next_keys` and updates `order` in step.
// The inner loops are backend kernels (dpv/simd.hpp).
inline void radix_pass(Context& ctx, const Vec<std::uint64_t>& cur,
                       Vec<std::uint64_t>& next_keys, Index& order,
                       std::size_t shift) {
  const std::size_t n = order.size();
  assert(cur.size() == n && next_keys.size() == n);
  const std::size_t k = ctx.block_count(n) == 0 ? 1 : ctx.block_count(n);
  const auto& ks = simd::kernels();
  // Per-block histograms.
  Vec<std::size_t> hist(k * kBuckets, 0);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    ks.radix_hist(cur.data() + lo, hi - lo, static_cast<unsigned>(shift),
                  &hist[b * kBuckets]);
  });
  // Exclusive scan in (digit, block) order: all blocks' digit-d counts
  // precede any block's digit-(d+1) counts.
  std::size_t running = 0;
  for (std::size_t d = 0; d < kBuckets; ++d) {
    for (std::size_t b = 0; b < k; ++b) {
      std::size_t& h = hist[b * kBuckets + d];
      const std::size_t c = h;
      h = running;
      running += c;
    }
  }
  // Stable scatter; blocks write disjoint bucket slices.
  Index next(n);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    ks.radix_scatter(cur.data() + lo, order.data() + lo, hi - lo,
                     static_cast<unsigned>(shift), &hist[b * kBuckets],
                     next_keys.data(), next.data());
  });
  order = std::move(next);
  ctx.count(Prim::kSortPass, n);
}

}  // namespace detail

/// Returns `order` such that keys[order[0]] <= keys[order[1]] <= ... and the
/// sort is stable.  `significant_bits` trims passes when high key bits are
/// known zero (e.g. 32-bit quantized coordinates).
///
/// Passes whose digit is zero across every key are elided outright: a pass
/// over an all-zero digit puts every element in bucket 0, and the stable
/// scatter of a single bucket is the identity permutation.  One OR-reduce
/// exposes the populated digits, so sparse composite keys -- e.g. the batch
/// pipelines' (query-row << 32) | line-id pairs, which populate only a few
/// low bytes of each half -- pay ~3 passes instead of 8.
inline Index sort_keys_indices(Context& ctx, const Vec<std::uint64_t>& keys,
                               std::size_t significant_bits = 64) {
  Index order = iota(ctx, keys.size());
  const std::size_t passes =
      (significant_bits + detail::kRadixBits - 1) / detail::kRadixBits;
  const std::uint64_t mask = reduce(ctx, BitOr<std::uint64_t>{}, keys);
  // The first executed pass reads `keys` directly (order is still the
  // identity); later passes read the carried permuted-key buffer.
  Vec<std::uint64_t> cur;
  bool first = true;
  for (std::size_t p = 0; p < passes; ++p) {
    const std::size_t shift = p * detail::kRadixBits;
    if (((mask >> shift) & (detail::kBuckets - 1)) == 0) continue;
    Vec<std::uint64_t> next(keys.size());
    detail::radix_pass(ctx, first ? keys : cur, next, order, shift);
    cur = std::move(next);
    first = false;
  }
  return order;
}

/// Stable sort within each segment group (groups defined by `seg`, which
/// must mark group heads): returns the in-place-by-group permutation order.
/// `keys` need only be comparable within a group.  The group ordinal is
/// packed into the key's high bits, so at most 2^32 groups and 32-bit
/// group-local keys are supported; `key32` provides the group-local key.
inline Index seg_sort_indices(Context& ctx, const Vec<std::uint32_t>& key32,
                              const Flags& seg) {
  assert(key32.size() == seg.size());
  const std::size_t n = key32.size();
  // Group ordinal per element: inclusive +-scan of head flags, minus 1.
  Vec<std::uint64_t> head64 =
      map(ctx, seg, [](std::uint8_t f) { return std::uint64_t{f != 0}; });
  if (n > 0) head64[0] = 1;
  Vec<std::uint64_t> group =
      scan(ctx, Plus<std::uint64_t>{}, head64, Dir::kUp, Incl::kInclusive);
  Vec<std::uint64_t> keys(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      keys[i] = ((group[i] - 1) << 32) | key32[i];
    }
  });
  ctx.count(Prim::kElementwise, n);
  return sort_keys_indices(ctx, keys, 64);
}

/// Stable sort within each segment group on full 64-bit keys: two chained
/// 32-bit segmented passes (LSD), so the composite is exact -- used where
/// quantization collisions would be incorrect (e.g. k-d tree median
/// splits on raw coordinates).
inline Index seg_sort_indices64(Context& ctx, const Vec<std::uint64_t>& key64,
                                const Flags& seg) {
  const std::size_t n = key64.size();
  Vec<std::uint32_t> low(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      low[i] = static_cast<std::uint32_t>(key64[i]);
    }
  });
  ctx.count(Prim::kElementwise, n);
  const Index pass1 = seg_sort_indices(ctx, low, seg);
  Vec<std::uint32_t> high(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      high[i] = static_cast<std::uint32_t>(key64[pass1[i]] >> 32);
    }
  });
  ctx.count(Prim::kElementwise, n);
  const Index pass2 = seg_sort_indices(ctx, high, seg);
  return gather(ctx, pass1, pass2);
}

/// Monotone quantization of `v` in [lo, hi] to 32 bits for use as a sort key.
inline std::uint32_t quantize32(double v, double lo, double hi) noexcept {
  if (hi <= lo) return 0;
  const double t = (v - lo) / (hi - lo);
  const double clamped = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return static_cast<std::uint32_t>(clamped * 4294967295.0);
}

}  // namespace dps::dpv
