#include "dpv/fault.hpp"

namespace dps::dpv {

namespace {

// Bernoulli(rate) from a hashed coordinate tuple: uniform in [0, 1) via the
// top 53 bits, compared against the rate.
bool roll(double rate, std::uint64_t u) noexcept {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;
  return unit < rate;
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t FaultInjector::scope(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) noexcept {
  return mix64(mix64(mix64(a) ^ b) ^ c);
}

bool FaultInjector::primitive_faults(std::uint64_t scope,
                                     std::uint64_t seq) const noexcept {
  if (schedule_.fail_nth != 0 && seq == schedule_.fail_nth) return true;
  return roll(schedule_.primitive_fail_rate,
              mix64(schedule_.seed ^ mix64(scope ^ 0x70726D00ull) ^ seq));
}

bool FaultInjector::shard_poisoned(std::uint64_t scope) const noexcept {
  return roll(schedule_.shard_poison_rate,
              mix64(schedule_.seed ^ mix64(scope ^ 0x73686400ull)));
}

ReplicaFault FaultInjector::replica_fault(std::size_t replica,
                                          std::uint64_t scope) const noexcept {
  ReplicaFault out;
  if (replica < 64 &&
      (schedule_.replica_fault_mask & (std::uint64_t{1} << replica)) == 0) {
    return out;
  }
  const std::uint64_t u = mix64(
      schedule_.seed ^ mix64(std::uint64_t{replica} ^ 0x72706C00ull) ^ scope);
  // One uniform draw per decision point, re-salted per kind, evaluated in
  // severity order so overlapping rates compose predictably.
  if (roll(schedule_.replica_crash_rate, mix64(u ^ 0x63726100ull))) {
    out.kind = ReplicaFaultKind::kCrash;
    return out;
  }
  if (roll(schedule_.replica_stuck_rate, mix64(u ^ 0x73746B00ull))) {
    out.kind = ReplicaFaultKind::kStuck;
    return out;
  }
  if (roll(schedule_.replica_stall_rate, mix64(u ^ 0x73746C00ull))) {
    out.kind = ReplicaFaultKind::kStall;
    out.stall = schedule_.replica_stall_us;
  }
  return out;
}

std::chrono::microseconds FaultInjector::lane_stall(
    std::size_t lane, std::uint64_t launch) const noexcept {
  const bool stall =
      roll(schedule_.lane_stall_rate,
           mix64(schedule_.seed ^ mix64(std::uint64_t{lane} ^ 0x6C616E00ull) ^
                 launch));
  return stall ? schedule_.lane_stall_us : std::chrono::microseconds{0};
}

}  // namespace dps::dpv
