#pragma once
// Vector type and small constructors for the dpv runtime.
//
// The scan model operates on flat, arbitrarily long vectors (section 3.2).
// We use `std::vector` as storage and keep all parallelism inside the
// primitive free functions, so a `Vec<T>` is an ordinary value type.  Its
// allocator routes through the calling thread's active scratch `Arena`
// when a pipeline has opened a round scope (`Context::scoped_round()`),
// and through the system heap otherwise -- see dpv/arena.hpp.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpv/arena.hpp"
#include "dpv/context.hpp"

namespace dps::dpv {

template <typename T>
using Vec = std::vector<T, ScratchAllocator<T>>;

/// Allocator-converting copies for the dpv boundary: public APIs traffic
/// in plain `std::vector`, the scratch pipelines in `Vec`.
template <typename T, typename A>
Vec<T> to_vec(const std::vector<T, A>& v) {
  return Vec<T>(v.begin(), v.end());
}

template <typename T>
std::vector<T> to_std(const Vec<T>& v) {
  return std::vector<T>(v.begin(), v.end());
}

/// Segment flag vector: flags[i] == 1 marks the first element of a segment
/// group (section 3.2.1).  By convention flags[0] is 1 for any non-empty
/// vector; all primitives treat a leading 0 as an implicit group start.
using Flags = Vec<std::uint8_t>;

/// Index vector for permutations / gathers / scatters.
using Index = Vec<std::size_t>;

/// [0, 1, ..., n-1], filled in parallel.
inline Index iota(Context& ctx, std::size_t n) {
  Index out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = i;
  });
  ctx.count(Prim::kElementwise, n);
  return out;
}

/// n copies of `value`, filled in parallel.
template <typename T>
Vec<T> constant(Context& ctx, std::size_t n, const T& value) {
  Vec<T> out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = value;
  });
  ctx.count(Prim::kElementwise, n);
  return out;
}

/// Flags for a single segment group covering the whole vector.
inline Flags single_segment(Context& ctx, std::size_t n) {
  Flags f = constant<std::uint8_t>(ctx, n, 0);
  if (n > 0) f[0] = 1;
  return f;
}

/// Number of segment groups described by `flags` (treats element 0 as a
/// group head whether or not its flag is set).
inline std::size_t num_segments(const Flags& flags) {
  if (flags.empty()) return 0;
  std::size_t n = flags[0] ? 0 : 1;
  for (const auto f : flags) n += (f != 0);
  return n;
}

}  // namespace dps::dpv
