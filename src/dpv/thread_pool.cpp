#include "dpv/thread_pool.hpp"

#include <algorithm>

namespace dps::dpv {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  lanes_ = num_threads;
  threads_.reserve(lanes_ > 0 ? lanes_ - 1 : 0);
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(std::size_t k, const std::function<void(std::size_t)>& f) {
  k = std::min(k, lanes_);
  // Chaos hook: when armed, each lane of this launch asks the injector for
  // a (deterministic) stall before running its task slice.
  FaultInjector* const inj = fault_.load(std::memory_order_acquire);
  const std::uint64_t launch =
      inj != nullptr ? launches_.fetch_add(1, std::memory_order_relaxed) : 0;
  const std::function<void(std::size_t)>* body = &f;
  std::function<void(std::size_t)> stalled;
  if (inj != nullptr) {
    stalled = [inj, launch, &f](std::size_t lane) {
      const auto stall = inj->lane_stall(lane, launch);
      if (stall.count() > 0) {
        inj->note_lane_stall();
        std::this_thread::sleep_for(stall);
      }
      f(lane);
    };
    body = &stalled;
  }
  if (k <= 1) {  // no helpers needed; run inline
    if (k == 1) (*body)(0);
    return;
  }
  // One launch at a time: concurrent callers queue here, so the
  // job_/generation_/outstanding_ handshake below always describes exactly
  // one job.
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = body;
    job_lanes_ = k;
    outstanding_ = k - 1;  // helper lanes 1..k-1
    ++generation_;
  }
  start_cv_.notify_all();
  (*body)(0);  // caller is lane 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation && job_ != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      if (lane >= job_lanes_) continue;  // not participating in this launch
      job = job_;
    }
    (*job)(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

AsyncPool::AsyncPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

AsyncPool::~AsyncPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
    queue_.clear();  // not-yet-started jobs are discarded, never run
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void AsyncPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void AsyncPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace dps::dpv
