#include "dpv/context.hpp"

#include <algorithm>
#include <numeric>

namespace dps::dpv {

std::string_view prim_name(Prim p) noexcept {
  switch (p) {
    case Prim::kElementwise: return "elementwise";
    case Prim::kScan: return "scan";
    case Prim::kPermute: return "permute";
    case Prim::kGather: return "gather";
    case Prim::kScatter: return "scatter";
    case Prim::kPack: return "pack";
    case Prim::kSortPass: return "sort-pass";
    case Prim::kReduce: return "reduce";
    case Prim::kCount_: break;
  }
  return "unknown";
}

std::uint64_t PrimCounters::total_invocations() const noexcept {
  return std::accumulate(invocations.begin(), invocations.end(),
                         std::uint64_t{0});
}

PrimCounters& PrimCounters::operator+=(const PrimCounters& other) noexcept {
  for (std::size_t i = 0; i < kNumPrims; ++i) {
    invocations[i] += other.invocations[i];
    elements[i] += other.elements[i];
  }
  return *this;
}

PrimCounters operator-(PrimCounters a, const PrimCounters& b) noexcept {
  for (std::size_t i = 0; i < kNumPrims; ++i) {
    a.invocations[i] -= b.invocations[i];
    a.elements[i] -= b.elements[i];
  }
  return a;
}

Context::Context() = default;

Context::Context(std::size_t num_threads)
    : pool_(std::make_shared<ThreadPool>(num_threads)) {}

std::size_t Context::block_count(std::size_t n) const noexcept {
  if (!pool_ || n < grain_ * 2) return n == 0 ? 0 : 1;
  const std::size_t by_grain = (n + grain_ - 1) / grain_;
  return std::min(pool_->size(), by_grain);
}

std::pair<std::size_t, std::size_t> Context::block_range(
    std::size_t n, std::size_t k, std::size_t b) noexcept {
  const std::size_t base = n / k;
  const std::size_t rem = n % k;
  const std::size_t lo = b * base + std::min(b, rem);
  const std::size_t hi = lo + base + (b < rem ? 1 : 0);
  return {lo, hi};
}

}  // namespace dps::dpv
