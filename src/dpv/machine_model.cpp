#include "dpv/machine_model.hpp"

#include <cmath>

namespace dps::dpv {

namespace {

// Remote-traffic categories pay the routing multiplier.
bool routes_data(Prim p) {
  switch (p) {
    case Prim::kPermute:
    case Prim::kGather:
    case Prim::kScatter:
    case Prim::kSortPass:
    case Prim::kPack:
      return true;
    default:
      return false;
  }
}

// Tree-combine categories pay the log2(P) term per invocation.
bool combines(Prim p) {
  switch (p) {
    case Prim::kScan:
    case Prim::kReduce:
    case Prim::kPack:  // built on scans
      return true;
    default:
      return false;
  }
}

}  // namespace

double MachineModel::estimate_ms(const PrimCounters& c) const {
  const double P = static_cast<double>(processors < 1 ? 1 : processors);
  const double logp = std::log2(P) + 1.0;
  double ns = 0.0;
  for (std::size_t i = 0; i < kNumPrims; ++i) {
    const auto prim = static_cast<Prim>(i);
    const double inv = static_cast<double>(c.invocations[i]);
    const double elems = static_cast<double>(c.elements[i]);
    double startup = launch_ns;
    if (combines(prim)) startup += combine_ns * logp;
    double per_elem = element_ns;
    if (routes_data(prim)) per_elem *= traffic_factor;
    ns += inv * startup + elems / P * per_elem;
  }
  return ns * 1e-6;
}

double MachineModel::speedup(const PrimCounters& c) const {
  MachineModel uni = *this;
  uni.processors = 1;
  const double t = estimate_ms(c);
  return t > 0.0 ? uni.estimate_ms(c) / t : 1.0;
}

}  // namespace dps::dpv
