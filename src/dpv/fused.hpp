#pragma once
// Fused multi-primitive passes for the hot descent chains.
//
// The batch pipelines spend most of their time in short chains of
// primitives -- mask -> position scan -> K compactions, or head-flags ->
// segmented rank scan -> threshold select -- where every step materializes
// a full arena `Vec` only to be consumed by the next step.  A fused pass
// runs the whole chain in one blocked sweep (the classic three-phase scan
// skeleton), so the chain touches memory once and the intermediates never
// exist.
//
// Invariants:
//  * Counter attribution: a fused pass charges the Context one invocation
//    per constituent primitive category (multi_pack over K vectors is
//    1 elementwise + 1 scan + K packs; fused_group_rank_select is
//    2 elementwise + 1 scan), so the cost-model ledger stays comparable
//    with the unfused composition it replaces.
//  * Fault injection: each charged invocation polls the armed injector via
//    Context::count, so a latch can trip mid-fused-pass exactly as it
//    would mid-chain; pipelines observe it at the same round boundary.
//  * Results are bitwise identical to the unfused composition (enforced by
//    tests/test_dpv_fused.cpp against randomized segment layouts).
//  * Arena discipline is unchanged: outputs are ordinary `Vec`s allocated
//    under the caller's scope; no live Vec outlasts its arena.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>

#include "dpv/context.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// Packs the keep[i] != 0 elements of every input vector in one fused pass:
/// the position scan over `keep` is computed once and shared by all K
/// compactions (the unfused form runs map+scan+compact per vector).
/// Returns the packed vectors in input order.
template <typename... Ts>
std::tuple<Vec<Ts>...> multi_pack(Context& ctx, const Flags& keep,
                                  const Vec<Ts>&... data) {
  static_assert(sizeof...(Ts) > 0, "multi_pack needs at least one vector");
  const std::size_t n = keep.size();
  assert(((data.size() == n) && ...) && "multi_pack vectors must match keep");
  const std::size_t k = std::max<std::size_t>(ctx.block_count(n), 1);
  // Phase 1+2: per-block kept counts, combined into block base offsets.
  Vec<std::size_t> base(k + 1, 0);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += keep[i] != 0 ? 1 : 0;
    base[b + 1] = c;
  });
  for (std::size_t b = 0; b < k; ++b) base[b + 1] += base[b];
  ctx.count(Prim::kElementwise, n);  // the keep -> 0/1 map
  ctx.count(Prim::kScan, n);         // the shared position scan
  // Phase 3: one sweep compacts every vector; blocks write disjoint ranges.
  const std::size_t out_n = base[k];
  std::tuple<Vec<Ts>...> out{Vec<Ts>(out_n)...};
  auto srcs = std::forward_as_tuple(data...);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t p = base[b];
    for (std::size_t i = lo; i < hi; ++i) {
      if (keep[i]) {
        [&]<std::size_t... I>(std::index_sequence<I...>) {
          ((std::get<I>(out)[p] = std::get<I>(srcs)[i]), ...);
        }(std::index_sequence_for<Ts...>{});
        ++p;
      }
    }
  });
  for (std::size_t j = 0; j < sizeof...(Ts); ++j) ctx.count(Prim::kPack, n);
  return out;
}

/// Fused segmented rank + threshold select over contiguous group ids
/// (`gid` must be sorted so equal ids are adjacent -- the state of every
/// post-sort beam/merge step).  For each element: its rank within its
/// group (0-based) and keep[i] = rank[i] < limit(gid[i]).
///
/// Unfused composition this replaces (and is tested against):
///   heads = tabulate(i == 0 || gid[i] != gid[i-1])        (elementwise)
///   rank  = seg_scan(+, ones, heads, up, exclusive)       (scan)
///   keep  = tabulate(rank[i] < limit(gid[i]))             (elementwise)
/// Optional outputs: `rank_out` (the rank vector) and `heads_out` (the
/// group-head flags) cost no extra passes when requested.
template <typename G, typename LimitF>
Flags fused_group_rank_select(Context& ctx, const Vec<G>& gid, LimitF&& limit,
                              Vec<std::size_t>* rank_out = nullptr,
                              Flags* heads_out = nullptr) {
  const std::size_t n = gid.size();
  Flags keep(n);
  if (rank_out != nullptr) rank_out->assign(n, 0);
  if (heads_out != nullptr) heads_out->assign(n, 0);
  const std::size_t k = std::max<std::size_t>(ctx.block_count(n), 1);
  // Phase 1: per-block run summaries -- length of the suffix run of the
  // block's last gid, and whether the whole block is one run.
  Vec<std::size_t> tail(k, 0);
  Flags uniform(k, 1);
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t r = 1;
    for (std::size_t i = hi - 1; i > lo; --i) {
      if (!(gid[i - 1] == gid[hi - 1])) break;
      ++r;
    }
    tail[b] = r;
    uniform[b] = (r == hi - lo) ? 1 : 0;
  });
  // Phase 2: serial combine -- rank carried into each block's first element
  // (0 unless the previous blocks' trailing run continues into it).
  Vec<std::size_t> carry(k, 0);
  {
    std::size_t run = 0;
    bool have = false;
    G cur{};
    for (std::size_t b = 0; b < k; ++b) {
      const auto [lo, hi] = Context::block_range(n, k, b);
      if (lo >= hi) continue;
      const bool cont = have && gid[lo] == cur;
      carry[b] = cont ? run : 0;
      run = (uniform[b] && cont) ? run + (hi - lo) : tail[b];
      cur = gid[hi - 1];
      have = true;
    }
  }
  // Phase 3: rescan with carries, emitting rank/heads/keep in one sweep.
  ctx.for_blocks(n, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t r = carry[b];
    for (std::size_t i = lo; i < hi; ++i) {
      const bool head = i == 0 || !(gid[i] == gid[i - 1]);
      if (head) r = 0;
      if (heads_out != nullptr) (*heads_out)[i] = head ? 1 : 0;
      if (rank_out != nullptr) (*rank_out)[i] = r;
      keep[i] = r < limit(gid[i]) ? 1 : 0;
      ++r;
    }
  });
  ctx.count(Prim::kElementwise, n);  // group-head flags
  ctx.count(Prim::kScan, n);         // segmented rank scan
  ctx.count(Prim::kElementwise, n);  // threshold select
  return keep;
}

}  // namespace dps::dpv
