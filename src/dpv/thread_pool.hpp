#pragma once
// Minimal fork-join thread pool used by the dpv scan-model runtime.
//
// The pool supports exactly the execution shape the scan model needs:
// bulk-synchronous launches of `k` identical tasks (one per worker) with a
// join barrier.  There is deliberately no task queue or futures machinery --
// every dpv primitive is a flat data-parallel step, so the only operation we
// need is "run f(worker_index) on all workers and wait".

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dpv/fault.hpp"

namespace dps::dpv {

/// Fixed-size fork-join worker pool.
///
/// Workers are created once and parked on a condition variable between
/// launches.  `run(k, f)` wakes `k` workers, each executes `f(i)` for its
/// worker index `i in [0, k)`, and `run` returns when all have finished.
/// The calling thread participates as worker 0, so a pool constructed with
/// `n` threads exposes `n` lanes of parallelism using `n - 1` OS threads.
class ThreadPool {
 public:
  /// Creates a pool exposing `num_threads` parallel lanes (>= 1).
  /// `num_threads == 0` selects `std::thread::hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of parallel lanes (including the caller's lane).
  std::size_t size() const noexcept { return lanes_; }

  /// Runs `f(i)` for each lane index `i in [0, k)` and waits for completion.
  /// `k` is clamped to `size()`.  `f` must be safe to invoke concurrently.
  /// Exceptions thrown by `f` terminate (dpv primitives do not throw from
  /// worker bodies; validation happens before the fork).
  ///
  /// `run` may be called from several threads at once (the serving engine
  /// does); concurrent launches serialize, each seeing the full pool.  A
  /// worker body must not call `run` on its own pool -- the nested launch
  /// would wait on the serialization lock its caller holds.
  void run(std::size_t k, const std::function<void(std::size_t)>& f);

  /// Arms deterministic lane-stall injection: each lane of every launch
  /// asks `inj` whether to sleep before running its task.  Stalls delay
  /// lanes (to chaos-test slow-worker schedules); they never change what a
  /// task computes.  Pass nullptr to disarm.  Arm while the pool is idle --
  /// the pointer is read by concurrent launches.
  void set_fault_injector(FaultInjector* inj) noexcept {
    fault_.store(inj, std::memory_order_release);
  }

 private:
  void worker_loop(std::size_t lane);

  std::size_t lanes_;                 // total lanes, caller included
  std::vector<std::thread> threads_;  // lanes_ - 1 helper threads

  std::atomic<FaultInjector*> fault_{nullptr};  // borrowed; null = no chaos
  std::atomic<std::uint64_t> launches_{0};      // stall-decision coordinate

  std::mutex submit_mutex_;  // serializes whole launches across callers
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_lanes_ = 0;     // lanes participating in current job
  std::size_t generation_ = 0;    // bumped per launch; wakes sleepers
  std::size_t outstanding_ = 0;   // helper lanes still running the job
  bool stop_ = false;
};

/// Persistent submit-and-forget worker pool for async fan-out.
///
/// Unlike the fork-join ThreadPool above there is no join: `submit`
/// enqueues a closure and returns immediately, and completion is signalled
/// through state the closure itself owns (the cluster dispatcher shares
/// its per-subrequest state via shared_ptr, so a job outliving the call
/// that submitted it is safe -- that is exactly how a late reply from a
/// stuck replica gets *dropped* instead of joined on).
///
/// Shutdown contract: the destructor discards jobs that have not started
/// and joins the workers.  A long-running job (an injected replica stall
/// or stuck-forever fault) must poll `stopping()` so teardown is never
/// wedged on chaos.
class AsyncPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit AsyncPool(std::size_t num_threads);
  ~AsyncPool();

  AsyncPool(const AsyncPool&) = delete;
  AsyncPool& operator=(const AsyncPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues `job` for execution on some worker, FIFO.  Never blocks on
  /// job execution; jobs submitted after shutdown began are dropped.
  void submit(std::function<void()> job);

  /// True once destruction began; long-running jobs poll this.
  bool stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
};

}  // namespace dps::dpv
