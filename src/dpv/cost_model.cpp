#include "dpv/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace dps::dpv {
namespace {

// Cell key layout (low to high): kind:4 | index:4 | density:6 | k:6 |
// size:6 | path:1.  The family is everything below the size bucket.
constexpr std::uint64_t kKindShift = 0;
constexpr std::uint64_t kIndexShift = 4;
constexpr std::uint64_t kDensityShift = 8;
constexpr std::uint64_t kKShift = 14;
constexpr std::uint64_t kSizeShift = 20;
constexpr std::uint64_t kPathShift = 26;

std::atomic<int>& forced_state() {
  static std::atomic<int> forced{[] {
    const char* env = std::getenv("DPS_DISPATCH_FORCE");
    if (env != nullptr) {
      if (std::strcmp(env, "dp") == 0) return static_cast<int>(CostPath::kDp);
      if (std::strcmp(env, "seq") == 0)
        return static_cast<int>(CostPath::kSeq);
    }
    return -1;
  }()};
  return forced;
}

}  // namespace

void merge_snapshot(CostModelSnapshot& into, const CostModelSnapshot& from) {
  for (const auto& e : from.entries) {
    auto it = std::find_if(into.entries.begin(), into.entries.end(),
                           [&](const auto& r) { return r.key == e.key; });
    if (it == into.entries.end()) {
      into.entries.push_back(e);
    } else if (e.samples > it->samples) {
      *it = e;
    }
  }
  std::sort(into.entries.begin(), into.entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
}

CostModel::CostModel(CostModelOptions opts) : opts_(opts) {}

void CostModel::force(CostPath p) noexcept {
  forced_state().store(static_cast<int>(p), std::memory_order_relaxed);
}

void CostModel::unforce() noexcept {
  forced_state().store(-1, std::memory_order_relaxed);
}

int CostModel::forced_path() noexcept {
  return forced_state().load(std::memory_order_relaxed);
}

int CostModel::log2_bucket(std::size_t v) noexcept {
  if (v == 0) return 0;
  return std::min(63, static_cast<int>(std::bit_width(v)) - 1);
}

std::uint64_t CostModel::family_key(const GroupShape& g) noexcept {
  const auto kind = static_cast<std::uint64_t>(g.kind & 0xF);
  const auto index = static_cast<std::uint64_t>(g.index & 0xF);
  const auto density =
      static_cast<std::uint64_t>(log2_bucket(g.map_elements));
  const auto kb = static_cast<std::uint64_t>(log2_bucket(g.mean_k));
  return (kind << kKindShift) | (index << kIndexShift) |
         (density << kDensityShift) | (kb << kKShift);
}

std::uint64_t CostModel::cell_key(const GroupShape& g,
                                  CostPath path) noexcept {
  const auto size = static_cast<std::uint64_t>(log2_bucket(g.group_size));
  const auto p = static_cast<std::uint64_t>(path);
  return family_key(g) | (size << kSizeShift) | (p << kPathShift);
}

void CostModel::observe(const GroupShape& g, CostPath path, double wall_us) {
  if (g.group_size == 0 || !std::isfinite(wall_us) || wall_us < 0.0) return;
  const double upq = wall_us / static_cast<double>(g.group_size);
  const std::uint64_t key = cell_key(g, path);
  std::lock_guard<std::mutex> lock(mutex_);
  Cell& cell = cells_[key];
  if (cell.samples == 0) {
    cell.us_per_query = upq;
    cell.mean_n = static_cast<double>(g.group_size);
  } else {
    const double a = opts_.ema_alpha;
    cell.us_per_query += a * (upq - cell.us_per_query);
    cell.mean_n += a * (static_cast<double>(g.group_size) - cell.mean_n);
  }
  ++cell.samples;
}

double CostModel::estimate_seq_locked(const GroupShape& g) const {
  // Sequential cost is linear per query, so every size bucket's us/query is
  // an estimate of the same coefficient: take the sample-weighted average.
  double weighted = 0.0;
  std::uint64_t samples = 0;
  GroupShape probe = g;
  for (int b = 0; b < 64; ++b) {
    probe.group_size = std::size_t{1} << b;
    const auto it = cells_.find(cell_key(probe, CostPath::kSeq));
    if (it == cells_.end()) continue;
    weighted += it->second.us_per_query *
                static_cast<double>(it->second.samples);
    samples += it->second.samples;
    if (probe.group_size > (std::size_t{1} << 40)) break;
  }
  if (samples < opts_.min_samples) return -1.0;
  return weighted / static_cast<double>(samples) *
         static_cast<double>(g.group_size);
}

double CostModel::estimate_dp_locked(const GroupShape& g) const {
  const double n = static_cast<double>(g.group_size);
  const auto exact = cells_.find(cell_key(g, CostPath::kDp));
  std::uint64_t samples = exact != cells_.end() ? exact->second.samples : 0;

  // Collect every measured size bucket of the family (totals, not
  // per-query: the dp launch term makes us/query fall with n).
  std::vector<const Cell*> cells;
  GroupShape probe = g;
  for (int b = 0; b < 64; ++b) {
    probe.group_size = std::size_t{1} << b;
    const auto it = cells_.find(cell_key(probe, CostPath::kDp));
    if (it == cells_.end()) continue;
    cells.push_back(&it->second);
    if (it->second.samples > 0 && it != exact) samples += it->second.samples;
    if (probe.group_size > (std::size_t{1} << 40)) break;
  }
  if (samples < opts_.min_samples || cells.empty()) return -1.0;

  if (exact != cells_.end() && exact->second.samples > 0) {
    return exact->second.us_per_query * n;
  }
  if (cells.size() >= 2) {
    // Least-squares T = a + b*n over the buckets' (mean_n, total_us),
    // clamped to non-negative launch and marginal terms.
    double sn = 0.0, st = 0.0, snn = 0.0, snt = 0.0;
    for (const Cell* c : cells) {
      const double total = c->us_per_query * c->mean_n;
      sn += c->mean_n;
      st += total;
      snn += c->mean_n * c->mean_n;
      snt += c->mean_n * total;
    }
    const double m = static_cast<double>(cells.size());
    const double var = snn - sn * sn / m;
    if (var > 1e-9) {
      double b = (snt - sn * st / m) / var;
      b = std::max(b, 0.0);
      const double a = std::max(st / m - b * sn / m, 0.0);
      return a + b * n;
    }
  }
  // One effective bucket: hold us/query constant going up (overestimates the
  // launch share) and total cost constant going down (the launch term does
  // not shrink with n) -- both err toward sequential.
  const Cell* c = cells.front();
  for (const Cell* cand : cells) {
    if (cand->samples > c->samples) c = cand;
  }
  if (n >= c->mean_n) return c->us_per_query * n;
  return c->us_per_query * c->mean_n;
}

double CostModel::estimate_us(const GroupShape& g, CostPath path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path == CostPath::kDp ? estimate_dp_locked(g)
                               : estimate_seq_locked(g);
}

double CostModel::analytic_us(const GroupShape& g, CostPath path) const {
  const MachineModel& m = opts_.analytic;
  const double procs =
      static_cast<double>(std::max<std::size_t>(m.processors, 1));
  const double rounds =
      std::log2(static_cast<double>(std::max<std::size_t>(g.map_elements, 2))) +
      1.0;
  const double n = static_cast<double>(g.group_size);
  if (path == CostPath::kSeq) {
    // A pointer-chasing descent visits ~log2(map) nodes per query; the
    // per-visit constant reproduces the crossover's order of magnitude, not
    // any particular host.
    constexpr double kSeqVisitNs = 800.0;
    return n * rounds * kSeqVisitNs / 1000.0;
  }
  // Per round the descent chains ~a dozen primitives (sort passes dominate),
  // each paying launch + combine-tree startup, plus routed element work over
  // an O(n)-wide frontier.
  constexpr double kPrimsPerRound = 12.0;
  constexpr double kFrontierExpansion = 4.0;
  const double logp = std::log2(procs) + 1.0;
  const double startup_ns =
      rounds * kPrimsPerRound * (m.launch_ns + m.combine_ns * logp);
  const double work_ns = rounds * n * kFrontierExpansion / procs *
                         m.element_ns * m.traffic_factor;
  return (startup_ns + work_ns) / 1000.0;
}

CostDecision CostModel::decide(const GroupShape& g) {
  CostDecision d;
  const int forced = forced_path();
  if (forced >= 0) {
    d.use_dp = forced == static_cast<int>(CostPath::kDp);
    return d;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  d.seq_us = estimate_seq_locked(g);
  d.dp_us = estimate_dp_locked(g);
  const std::uint64_t count = ++decisions_[family_key(g)];

  if (d.seq_us >= 0.0 && d.dp_us >= 0.0) {
    d.measured = true;
    d.use_dp = d.dp_us <= d.seq_us;
    if (opts_.refresh_period != 0 && count % opts_.refresh_period == 0) {
      d.use_dp = !d.use_dp;
      d.explored = true;
    }
    return d;
  }
  if (d.seq_us >= 0.0 || d.dp_us >= 0.0) {
    if (opts_.explore_period != 0 && count % opts_.explore_period == 0) {
      d.use_dp = d.dp_us < 0.0;  // probe the unmeasured path
      d.explored = true;
      return d;
    }
  }
  if (opts_.bootstrap_min_dp_batch > 0) {
    d.use_dp = g.group_size >= opts_.bootstrap_min_dp_batch;
    return d;
  }
  d.use_dp = analytic_us(g, CostPath::kDp) <= analytic_us(g, CostPath::kSeq);
  return d;
}

CostModelSnapshot CostModel::snapshot() const {
  CostModelSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.entries.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    snap.entries.push_back({key, cell.samples, cell.us_per_query,
                            cell.mean_n});
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return snap;
}

void CostModel::warm(const CostModelSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : snap.entries) {
    Cell& cell = cells_[e.key];
    if (e.samples > cell.samples) {
      cell.samples = e.samples;
      cell.us_per_query = e.us_per_query;
      cell.mean_n = e.mean_n;
    }
  }
}

}  // namespace dps::dpv
