#pragma once
// Elementwise primitives (section 3.2.2).
//
// `ew` applies a binary functor lane-by-lane to two equal-length vectors;
// `map` is the unary analogue; `zip_with` generalizes to mixed result types.
// Each call is one scan-model primitive (unit cost per the paper's model)
// and is counted as such on the Context.

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>

#include "dpv/context.hpp"
#include "dpv/ops.hpp"
#include "dpv/simd.hpp"
#include "dpv/vector.hpp"

namespace dps::dpv {

/// result[i] = f(a[i], b[i]).  `a` and `b` must have equal length.
template <typename T, typename U, typename F>
auto zip_with(Context& ctx, const Vec<T>& a, const Vec<U>& b, F&& f)
    -> Vec<decltype(f(a[0], b[0]))> {
  assert(a.size() == b.size() && "elementwise operands must have equal length");
  using R = decltype(f(a[0], b[0]));
  Vec<R> out(a.size());
  ctx.for_blocks(a.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
  });
  ctx.count(Prim::kElementwise, a.size());
  return out;
}

/// result[i] = op(a[i], b[i]) with a same-type result (the paper's ew).
/// f64 Plus/Min/Max route through the backend kernel table (see simd.hpp);
/// the kernels are elementwise-exact, so this changes nothing observable.
template <typename T, typename Op>
Vec<T> ew(Context& ctx, Op op, const Vec<T>& a, const Vec<T>& b) {
  if constexpr (std::is_same_v<T, double> &&
                (std::is_same_v<Op, Plus<double>> ||
                 std::is_same_v<Op, Min<double>> ||
                 std::is_same_v<Op, Max<double>>)) {
    assert(a.size() == b.size() &&
           "elementwise operands must have equal length");
    const auto& ks = simd::kernels();
    const auto kern = std::is_same_v<Op, Plus<double>>  ? ks.ew_add_f64
                      : std::is_same_v<Op, Min<double>> ? ks.ew_min_f64
                                                        : ks.ew_max_f64;
    Vec<double> out(a.size());
    ctx.for_blocks(a.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      kern(a.data() + lo, b.data() + lo, out.data() + lo, hi - lo);
    });
    ctx.count(Prim::kElementwise, a.size());
    return out;
  } else {
    return zip_with(ctx, a, b, op);
  }
}

/// result[i] = f(a[i]).
template <typename T, typename F>
auto map(Context& ctx, const Vec<T>& a, F&& f) -> Vec<decltype(f(a[0]))> {
  using R = decltype(f(a[0]));
  Vec<R> out(a.size());
  ctx.for_blocks(a.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = f(a[i]);
  });
  ctx.count(Prim::kElementwise, a.size());
  return out;
}

/// result[i] = f(i) -- elementwise over the index space.  Used where C*
/// code would read `pcoord` inside an elementwise statement.
template <typename F>
auto tabulate(Context& ctx, std::size_t n, F&& f) -> Vec<decltype(f(std::size_t{0}))> {
  using R = decltype(f(std::size_t{0}));
  Vec<R> out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = f(i);
  });
  ctx.count(Prim::kElementwise, n);
  return out;
}

/// In-place conditional update: where mask[i] != 0, a[i] = f(a[i], i).
/// Models C* `where` blocks over a parallel variable.
template <typename T, typename F>
void update_where(Context& ctx, Vec<T>& a, const Flags& mask, F&& f) {
  assert(a.size() == mask.size());
  ctx.for_blocks(a.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (mask[i]) a[i] = f(a[i], i);
    }
  });
  ctx.count(Prim::kElementwise, a.size());
}

}  // namespace dps::dpv
