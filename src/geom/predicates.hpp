#pragma once
// Geometric predicates used by the quadtree and R-tree layers.
//
// All predicates use closed-region semantics: a segment that merely touches
// a rectangle's boundary intersects it.  This matches the paper's cloning
// rule ("each line segment is inserted into all of the blocks that it
// intersects") where a line lying on a split axis belongs to both halves.
// Vertex-in-block tests, by contrast, use half-open blocks so every vertex
// belongs to exactly one block (see geom::Block).

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/segment.hpp"

namespace dps::geom {

/// Liang-Barsky parametric clip of segment p + t(q - p), t in [0,1], against
/// the closed rectangle.  Returns true when the intersection is non-empty
/// and stores its parameter interval in [t0, t1] (t0 <= t1).
bool clip_segment_to_rect(const Point& p, const Point& q, const Rect& r,
                          double& t0, double& t1);

/// True when the closed segment pq intersects the closed rectangle `r`
/// (shares at least one point).
bool segment_intersects_rect(const Point& p, const Point& q, const Rect& r);

inline bool segment_intersects_rect(const Segment& s, const Rect& r) {
  return segment_intersects_rect(s.a, s.b, r);
}

/// True when the segment's intersection with the closed rectangle has
/// positive length (or the segment is a single point inside the rectangle).
/// This is the q-edge membership test: a corner- or endpoint-touch does not
/// create a q-edge, but a line lying along a block border belongs to both
/// adjacent blocks.
bool segment_properly_intersects_rect(const Point& p, const Point& q,
                                      const Rect& r);

inline bool segment_properly_intersects_rect(const Segment& s, const Rect& r) {
  return segment_properly_intersects_rect(s.a, s.b, r);
}

/// True when the closed segments intersect (share at least one point).
bool segments_intersect(const Segment& s, const Segment& t);

/// True when point `p` lies on the closed segment ab.
bool point_on_segment(const Point& p, const Point& a, const Point& b);

/// True when the open segment pq crosses the vertical line x = x0 strictly,
/// or touches it (closed semantics): min(p.x,q.x) <= x0 <= max(p.x,q.x).
bool segment_meets_vertical(const Point& p, const Point& q, double x0);

/// Closed test against the horizontal line y = y0.
bool segment_meets_horizontal(const Point& p, const Point& q, double y0);

/// Squared Euclidean distance from point `p` to the closed segment ab.
double distance2_point_segment(const Point& p, const Point& a,
                               const Point& b);

}  // namespace dps::geom
