#include "geom/hilbert.hpp"

namespace dps::geom {

namespace {

// One quadrant-rotation/reflection step of the classic iterative mapping.
void rotate(std::uint32_t n, std::uint32_t& x, std::uint32_t& y,
            std::uint32_t rx, std::uint32_t ry) {
  if (ry != 0) return;
  if (rx != 0) {
    x = n - 1 - x;
    y = n - 1 - y;
  }
  const std::uint32_t t = x;
  x = y;
  y = t;
}

}  // namespace

std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y, int order) {
  std::uint64_t d = 0;
  for (std::uint32_t s = std::uint32_t{1} << (order - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1 : 0;
    const std::uint32_t ry = (y & s) ? 1 : 0;
    d += std::uint64_t{s} * s * ((3 * rx) ^ ry);
    rotate(s, x, y, rx, ry);
  }
  return d;
}

void hilbert_xy(std::uint64_t d, int order, std::uint32_t& x,
                std::uint32_t& y) {
  x = 0;
  y = 0;
  for (std::uint32_t s = 1; s < (std::uint32_t{1} << order); s <<= 1) {
    const std::uint32_t rx = 1 & static_cast<std::uint32_t>(d / 2);
    const std::uint32_t ry = 1 & static_cast<std::uint32_t>(d ^ rx);
    rotate(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    d /= 4;
  }
}

}  // namespace dps::geom
