#include "geom/block.hpp"

#include <cstdio>

namespace dps::geom {

bool Block::contains_vertex(const Point& p, double world) const {
  const Rect r = rect(world);
  const std::uint32_t last = cells_per_side() - 1;
  const bool x_ok = p.x >= r.xmin && (p.x < r.xmax || (ix == last && p.x <= r.xmax));
  const bool y_ok = p.y >= r.ymin && (p.y < r.ymax || (iy == last && p.y <= r.ymax));
  return x_ok && y_ok;
}

std::uint64_t interleave2(std::uint32_t x, std::uint32_t y) {
  // Spread the low 29 bits of each input to even bit positions.
  auto spread = [](std::uint64_t v) {
    v &= 0x1FFF'FFFF;  // 29 bits
    v = (v | (v << 16)) & 0x0000'FFFF'0000'FFFFull;
    v = (v | (v << 8)) & 0x00FF'00FF'00FF'00FFull;
    v = (v | (v << 4)) & 0x0F0F'0F0F'0F0F'0F0Full;
    v = (v | (v << 2)) & 0x3333'3333'3333'3333ull;
    v = (v | (v << 1)) & 0x5555'5555'5555'5555ull;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

std::uint64_t Block::morton_key() const {
  return (interleave2(ix, iy) << 6) | depth;
}

std::uint64_t Block::path_key() const {
  std::uint64_t key = 0;
  for (int lvl = 1; lvl <= depth; ++lvl) {
    const int shift = depth - lvl;
    const std::uint32_t qx = (ix >> shift) & 1;
    const std::uint32_t qy = (iy >> shift) & 1;
    const std::uint64_t digit = qy ? qx : 2 + qx;  // NW,NE,SW,SE = 0..3
    key = key * 4 + digit;
  }
  return key << (2 * (kMaxBlockDepth - depth));
}

std::string Block::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u:(%u,%u)", unsigned(depth), ix, iy);
  return buf;
}

}  // namespace dps::geom
