#pragma once
// Axis-aligned rectangle with the interval algebra the R-tree needs:
// intersection/containment tests, union and intersection, area, perimeter,
// and enlargement (Guttman's insertion metric).

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace dps::geom {

/// Closed axis-aligned rectangle [xmin, xmax] x [ymin, ymax].
/// The default-constructed Rect is the *empty* rectangle (inverted bounds),
/// which is the identity for `united` -- convenient for MBR scans.
struct Rect {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  static constexpr Rect empty() { return Rect{}; }

  static constexpr Rect of_point(const Point& p) {
    return Rect{p.x, p.y, p.x, p.y};
  }

  static constexpr Rect of_segment(const Point& a, const Point& b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y)};
  }

  constexpr bool is_empty() const { return xmin > xmax || ymin > ymax; }

  constexpr double width() const { return is_empty() ? 0.0 : xmax - xmin; }
  constexpr double height() const { return is_empty() ? 0.0 : ymax - ymin; }
  constexpr double area() const { return width() * height(); }
  constexpr double perimeter() const { return 2.0 * (width() + height()); }
  constexpr Point center() const {
    return {(xmin + xmax) * 0.5, (ymin + ymax) * 0.5};
  }

  /// True when the closed rectangles share at least a point.
  constexpr bool intersects(const Rect& o) const {
    if (is_empty() || o.is_empty()) return false;
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax && o.ymin <= ymax;
  }

  /// True when `p` lies in the closed rectangle.
  constexpr bool contains(const Point& p) const {
    return !is_empty() && xmin <= p.x && p.x <= xmax && ymin <= p.y &&
           p.y <= ymax;
  }

  /// True when `o` lies entirely within this (closed) rectangle.
  constexpr bool contains(const Rect& o) const {
    if (o.is_empty()) return true;
    return !is_empty() && xmin <= o.xmin && o.xmax <= xmax && ymin <= o.ymin &&
           o.ymax <= ymax;
  }

  /// Smallest rectangle containing both operands (MBR union).  The empty
  /// rectangle is the identity, making this a scan-able associative op.
  constexpr Rect united(const Rect& o) const {
    return Rect{std::min(xmin, o.xmin), std::min(ymin, o.ymin),
                std::max(xmax, o.xmax), std::max(ymax, o.ymax)};
  }

  /// Geometric intersection; empty when the operands do not meet.
  constexpr Rect intersected(const Rect& o) const {
    Rect r{std::max(xmin, o.xmin), std::max(ymin, o.ymin),
           std::min(xmax, o.xmax), std::min(ymax, o.ymax)};
    return r.is_empty() ? Rect::empty() : r;
  }

  /// Area the MBR grows by when enlarged to cover `o` (Guttman's ChooseLeaf
  /// metric).
  constexpr double enlargement(const Rect& o) const {
    return united(o).area() - area();
  }

  /// Area of overlap between the two rectangles (the R*-style split metric
  /// of section 4.7 / Figure 6c).
  constexpr double overlap_area(const Rect& o) const {
    return intersected(o).area();
  }

  /// Squared Euclidean distance from `p` to the closest point of the
  /// rectangle (0 when `p` is inside) -- the MINDIST of best-first
  /// nearest-neighbor search.
  constexpr double distance2(const Point& p) const {
    const double dx = p.x < xmin ? xmin - p.x : (p.x > xmax ? p.x - xmax : 0.0);
    const double dy = p.y < ymin ? ymin - p.y : (p.y > ymax ? p.y - ymax : 0.0);
    return dx * dx + dy * dy;
  }
};

/// Associative MBR-union functor for dpv scans over rectangles.
struct RectUnion {
  static constexpr Rect identity() { return Rect::empty(); }
  constexpr Rect operator()(const Rect& a, const Rect& b) const {
    return a.united(b);
  }
};

}  // namespace dps::geom
