#pragma once
// Regular quadtree block arithmetic.
//
// A Block names one cell of the regular decomposition of the root square
// [0, size) x [0, size): depth d splits the square into 2^d x 2^d congruent
// cells, and (ix, iy) indexes the cell column/row with y growing upward.
// Blocks are value types; the PM1 / bucket PMR builds carry one per q-edge.
//
// Two containment semantics, per DESIGN.md:
//  * q-edge association uses the *closed* cell rectangle (a line on a split
//    axis is cloned into both halves, section 4.6), via `rect()` +
//    geom::segment_intersects_rect;
//  * vertex location uses *half-open* cells [x0,x1) x [y0,y1) -- closed on
//    the root square's top/right border -- so each vertex lies in exactly
//    one cell at every depth (`contains_vertex`).  This makes the PM1
//    split decision (section 4.5) deterministic.

#include <cstdint>
#include <string>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace dps::geom {

/// Child quadrant ordering used everywhere (linear order of children after
/// a node split, and the order of `Block::child`).
enum class Quadrant : std::uint8_t { kNW = 0, kNE = 1, kSW = 2, kSE = 3 };

struct Block {
  std::uint8_t depth = 0;  // 0 = root
  std::uint32_t ix = 0;    // column in [0, 2^depth)
  std::uint32_t iy = 0;    // row in [0, 2^depth), y grows upward

  friend constexpr bool operator==(const Block&, const Block&) = default;

  static constexpr Block root() { return Block{}; }

  /// Number of cells per side at this depth.
  constexpr std::uint32_t cells_per_side() const {
    return std::uint32_t{1} << depth;
  }

  /// Side length of the cell within a root square of side `world`.
  constexpr double side(double world) const {
    return world / static_cast<double>(cells_per_side());
  }

  /// Closed cell rectangle within a root square of side `world`.
  constexpr Rect rect(double world) const {
    const double s = side(world);
    const double x0 = static_cast<double>(ix) * s;
    const double y0 = static_cast<double>(iy) * s;
    return Rect{x0, y0, x0 + s, y0 + s};
  }

  constexpr Point center(double world) const {
    const Rect r = rect(world);
    return r.center();
  }

  /// The child cell in quadrant `q`.
  constexpr Block child(Quadrant q) const {
    const auto qi = static_cast<std::uint8_t>(q);
    const std::uint32_t cx = ix * 2 + (qi & 1);          // NE/SE are east
    const std::uint32_t cy = iy * 2 + ((qi < 2) ? 1 : 0);  // NW/NE are north
    return Block{static_cast<std::uint8_t>(depth + 1), cx, cy};
  }

  constexpr Block parent() const {
    return Block{static_cast<std::uint8_t>(depth - 1), ix / 2, iy / 2};
  }

  /// Which quadrant of its parent this block is.
  constexpr Quadrant quadrant_in_parent() const {
    const bool east = (ix & 1) != 0;
    const bool north = (iy & 1) != 0;
    return north ? (east ? Quadrant::kNE : Quadrant::kNW)
                 : (east ? Quadrant::kSE : Quadrant::kSW);
  }

  /// Half-open vertex containment (closed on the root square's outer
  /// top/right border so no vertex falls off the world).
  bool contains_vertex(const Point& p, double world) const;

  /// Morton (Z-order / Peano-like) locational key: depth in the low 6 bits,
  /// the bit-interleaved (ix, iy) above.  Keys sort blocks of equal depth in
  /// Z order; across depths, parent-relative order is preserved by the
  /// interleave.  Used for linear-quadtree assembly and deduplication.
  std::uint64_t morton_key() const;

  /// "d:(ix,iy)" -- for traces and test failure messages.
  std::string to_string() const;

  /// Left-aligned base-4 path of the block from the root (digits in the
  /// NW, NE, SW, SE child order).  Within any *antichain* of blocks (no
  /// block an ancestor of another), sorting by path key reproduces the
  /// canonical DFS order of the decomposition -- the order quad_split
  /// emits groups in.  58 significant bits.
  std::uint64_t path_key() const;

  /// True when this block lies strictly inside `p`'s region.
  bool strict_descendant_of(const Block& p) const {
    if (depth <= p.depth) return false;
    const int shift = depth - p.depth;
    return (ix >> shift) == p.ix && (iy >> shift) == p.iy;
  }
};

/// Interleaves the low 29 bits of x (even positions) and y (odd positions).
std::uint64_t interleave2(std::uint32_t x, std::uint32_t y);

/// Depth limit implied by the 64-bit morton key layout.
inline constexpr int kMaxBlockDepth = 29;

}  // namespace dps::geom
