#include "geom/predicates.hpp"

#include <algorithm>

namespace dps::geom {

namespace {

// Sign of the orientation of (a, b, c): +1 left turn, -1 right turn, 0
// collinear.  Doubles are exact for the modest coordinates the library's
// root squares use; a robust-arithmetic swap-in would go here.
int orient(const Point& a, const Point& b, const Point& c) {
  const double v = cross(a, b, c);
  return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0);
}

}  // namespace

bool point_on_segment(const Point& p, const Point& a, const Point& b) {
  if (orient(a, b, p) != 0) return false;
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

bool segments_intersect(const Segment& s, const Segment& t) {
  const int o1 = orient(s.a, s.b, t.a);
  const int o2 = orient(s.a, s.b, t.b);
  const int o3 = orient(t.a, t.b, s.a);
  const int o4 = orient(t.a, t.b, s.b);
  if (o1 != o2 && o3 != o4) return true;  // proper crossing
  // Collinear / endpoint-touching cases.
  if (o1 == 0 && point_on_segment(t.a, s.a, s.b)) return true;
  if (o2 == 0 && point_on_segment(t.b, s.a, s.b)) return true;
  if (o3 == 0 && point_on_segment(s.a, t.a, t.b)) return true;
  if (o4 == 0 && point_on_segment(s.b, t.a, t.b)) return true;
  return false;
}

bool clip_segment_to_rect(const Point& p, const Point& q, const Rect& r,
                          double& t0, double& t1) {
  if (r.is_empty()) return false;
  const double dx = q.x - p.x;
  const double dy = q.y - p.y;
  t0 = 0.0;
  t1 = 1.0;
  // Each closed half-plane constraint: denom * t <= num.
  const double denom[4] = {-dx, dx, -dy, dy};
  const double num[4] = {p.x - r.xmin, r.xmax - p.x, p.y - r.ymin,
                         r.ymax - p.y};
  for (int i = 0; i < 4; ++i) {
    if (denom[i] == 0.0) {
      if (num[i] < 0.0) return false;  // parallel and outside
      continue;
    }
    const double t = num[i] / denom[i];
    if (denom[i] < 0.0) {
      if (t > t0) t0 = t;
    } else {
      if (t < t1) t1 = t;
    }
    if (t0 > t1) return false;
  }
  return true;
}

bool segment_intersects_rect(const Point& p, const Point& q, const Rect& r) {
  double t0, t1;
  return clip_segment_to_rect(p, q, r, t0, t1);
}

bool segment_properly_intersects_rect(const Point& p, const Point& q,
                                      const Rect& r) {
  double t0, t1;
  if (!clip_segment_to_rect(p, q, r, t0, t1)) return false;
  if (p.x == q.x && p.y == q.y) return true;  // degenerate point inside
  return t1 > t0;
}

bool segment_meets_vertical(const Point& p, const Point& q, double x0) {
  return std::min(p.x, q.x) <= x0 && x0 <= std::max(p.x, q.x);
}

bool segment_meets_horizontal(const Point& p, const Point& q, double y0) {
  return std::min(p.y, q.y) <= y0 && y0 <= std::max(p.y, q.y);
}

double distance2_point_segment(const Point& p, const Point& a,
                               const Point& b) {
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double u = 0.0;
  if (len2 > 0.0) {
    u = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
    u = u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
  }
  const double px = a.x + u * dx - p.x;
  const double py = a.y + u * dy - p.y;
  return px * px + py * py;
}

}  // namespace dps::geom
