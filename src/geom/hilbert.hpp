#pragma once
// Hilbert curve index.
//
// Section 3.3 of the paper points out that a regular disjoint decomposition
// admits a unique linear ordering "given a particular linear ordering
// methodology such as a Peano curve".  The Hilbert curve is the locality-
// preserving instance used by packed R-trees [Kame92]; `hilbert_d` maps a
// cell of the 2^order x 2^order grid to its distance along the curve.

#include <cstdint>

namespace dps::geom {

/// Curve orders up to 31 fit the 62-bit distance in a uint64.
inline constexpr int kMaxHilbertOrder = 31;

/// Distance along the order-`order` Hilbert curve of cell (x, y);
/// x, y in [0, 2^order).
std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y, int order);

/// Inverse: the cell at distance `d` along the order-`order` curve.
void hilbert_xy(std::uint64_t d, int order, std::uint32_t& x,
                std::uint32_t& y);

}  // namespace dps::geom
