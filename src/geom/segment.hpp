#pragma once
// Line segment type.  The paper's datasets are collections of line segments
// (road/utility/railway maps); each segment carries the stable id of the
// original map line so q-edges (per-block fragments) can be deduplicated.

#include <cstdint>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace dps::geom {

/// Stable identifier of a map line.  q-edges created by cloning during node
/// splits share the id of the original line.
using LineId = std::uint32_t;

struct Segment {
  Point a;
  Point b;
  LineId id = 0;

  friend constexpr bool operator==(const Segment&, const Segment&) = default;

  constexpr Rect bbox() const { return Rect::of_segment(a, b); }
  constexpr Point mid() const { return midpoint(a, b); }
  double length() const { return distance(a, b); }
};

}  // namespace dps::geom
