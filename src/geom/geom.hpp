#pragma once
// Umbrella header for the geometry substrate.

#include "geom/block.hpp"       // IWYU pragma: export
#include "geom/hilbert.hpp"     // IWYU pragma: export
#include "geom/point.hpp"      // IWYU pragma: export
#include "geom/predicates.hpp" // IWYU pragma: export
#include "geom/rect.hpp"       // IWYU pragma: export
#include "geom/segment.hpp"    // IWYU pragma: export
