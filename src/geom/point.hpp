#pragma once
// Planar point type used throughout the library.

#include <cmath>
#include <compare>

namespace dps::geom {

/// A point in the plane.  Coordinates are doubles; the spatial structures
/// operate inside a caller-chosen root square (see geom::Block), typically
/// [0, 2^h) x [0, 2^h) for a quadtree of maximal height h.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
};

/// 2D cross product of (b - a) and (c - a); the signed doubled area of the
/// triangle abc.  Positive when c lies to the left of the directed line ab.
constexpr double cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

constexpr double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

inline double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

constexpr Point midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

}  // namespace dps::geom
