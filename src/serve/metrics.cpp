#include "serve/metrics.hpp"

#include <bit>
#include <cmath>

namespace dps::serve {

void LatencyHistogram::record(double us) noexcept {
  std::size_t b = 0;
  if (us >= 1.0) {
    const auto v = static_cast<std::uint64_t>(us);
    b = static_cast<std::size_t>(std::bit_width(v)) - 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  ++buckets_[b];
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets_) total += c;
  return total;
}

double LatencyHistogram::quantile_upper_us(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank && buckets_[b] > 0) {
      return std::ldexp(1.0, static_cast<int>(b) + 1);
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

LatencyHistogram& LatencyHistogram::operator+=(
    const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  return *this;
}

StageTimes& StageTimes::operator+=(const StageTimes& other) noexcept {
  shard_ms += other.shard_ms;
  window_ms += other.window_ms;
  point_ms += other.point_ms;
  nearest_ms += other.nearest_ms;
  merge_ms += other.merge_ms;
  return *this;
}

ServeMetrics& ServeMetrics::operator+=(const ServeMetrics& other) noexcept {
  batches += other.batches;
  requests += other.requests;
  ok += other.ok;
  expired += other.expired;
  cancelled += other.cancelled;
  rejected += other.rejected;
  shedded += other.shedded;
  invalid += other.invalid;
  window_requests += other.window_requests;
  point_requests += other.point_requests;
  nearest_requests += other.nearest_requests;
  dp_groups += other.dp_groups;
  seq_groups += other.seq_groups;
  retries += other.retries;
  seq_fallbacks += other.seq_fallbacks;
  prims += other.prims;
  stages += other.stages;
  latency += other.latency;
  return *this;
}

}  // namespace dps::serve
