#include "serve/metrics.hpp"

#include <bit>
#include <cmath>

namespace dps::serve {

std::size_t LatencyHistogram::bucket_of(double us) noexcept {
  if (!(us >= 1.0)) return 0;  // sub-microsecond (and NaN) -> bucket 0
  const auto v = static_cast<std::uint64_t>(us);
  if (v < kUnitBuckets) return static_cast<std::size_t>(v);
  auto g = static_cast<std::size_t>(std::bit_width(v)) - 1;  // 2^g <= v
  if (g > kLastOctave) return kBuckets - 1;
  const std::size_t sub =
      static_cast<std::size_t>(v >> (g - kSubBits)) & ((1u << kSubBits) - 1);
  return kUnitBuckets + (g - kFirstOctave) * (std::size_t{1} << kSubBits) + sub;
}

double LatencyHistogram::bucket_lower_us(std::size_t b) noexcept {
  if (b < kUnitBuckets) return static_cast<double>(b);
  const std::size_t k = b - kUnitBuckets;
  const std::size_t g = kFirstOctave + (k >> kSubBits);
  const std::size_t sub = k & ((1u << kSubBits) - 1);
  return std::ldexp(1.0, static_cast<int>(g)) +
         static_cast<double>(sub) *
             std::ldexp(1.0, static_cast<int>(g - kSubBits));
}

double LatencyHistogram::bucket_upper_us(std::size_t b) noexcept {
  if (b < kUnitBuckets) return static_cast<double>(b) + 1.0;
  const std::size_t k = b - kUnitBuckets;
  const std::size_t g = kFirstOctave + (k >> kSubBits);
  return bucket_lower_us(b) + std::ldexp(1.0, static_cast<int>(g - kSubBits));
}

void LatencyHistogram::record(double us) noexcept { ++buckets_[bucket_of(us)]; }

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets_) total += c;
  return total;
}

double LatencyHistogram::quantile_upper_us(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank && buckets_[b] > 0) return bucket_upper_us(b);
  }
  return bucket_upper_us(kBuckets - 1);
}

LatencyHistogram& LatencyHistogram::operator+=(
    const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  return *this;
}

StageTimes& StageTimes::operator+=(const StageTimes& other) noexcept {
  shard_ms += other.shard_ms;
  window_ms += other.window_ms;
  point_ms += other.point_ms;
  nearest_ms += other.nearest_ms;
  merge_ms += other.merge_ms;
  return *this;
}

ServeMetrics& ServeMetrics::operator+=(const ServeMetrics& other) {
  batches += other.batches;
  requests += other.requests;
  ok += other.ok;
  expired += other.expired;
  cancelled += other.cancelled;
  rejected += other.rejected;
  shedded += other.shedded;
  invalid += other.invalid;
  window_requests += other.window_requests;
  point_requests += other.point_requests;
  nearest_requests += other.nearest_requests;
  dp_groups += other.dp_groups;
  seq_groups += other.seq_groups;
  hybrid_groups += other.hybrid_groups;
  retries += other.retries;
  seq_fallbacks += other.seq_fallbacks;
  updates += other.updates;
  update_inserts += other.update_inserts;
  update_deletes += other.update_deletes;
  update_failures += other.update_failures;
  compactions += other.compactions;
  lazy_rtree_rebuilds += other.lazy_rtree_rebuilds;
  lazy_linear_rebuilds += other.lazy_linear_rebuilds;
  prims += other.prims;
  stages += other.stages;
  latency += other.latency;
  dpv::merge_snapshot(cost_model, other.cost_model);
  return *this;
}

}  // namespace dps::serve
