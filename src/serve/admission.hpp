#pragma once
// Admission control for the serving engine: a bounded in-flight budget
// with a priority-aware bounded waiting room.
//
// Every serve() call offers one batch.  The controller admits it when a
// batch concurrency token is free and the in-flight request budget has
// room; otherwise the batch waits in a bounded queue ordered by
// (priority, arrival).  When the queue is full, the lowest-priority
// entrant is shed -- either the arriving batch, or the lowest-priority
// (youngest among ties) waiter when the arrival outranks it.  Shed batches
// answer every request with Status::kShedded and consume no execution
// resources, so under overload the engine keeps bounded latency for the
// work it does admit instead of degrading everyone.
//
// The controller is a pure gate: it never touches responses.  Waiters
// block on their own condition variable; `finish` releases an admitted
// batch's resources and hands freed capacity to the best waiting batch
// (highest priority, earliest arrival -- a large batch at the head blocks
// later arrivals rather than being starved by them).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace dps::serve {

struct AdmissionOptions {
  /// Master switch; disabled (the default) admits everything immediately,
  /// reproducing the pre-admission engine.
  bool enabled = false;
  /// Batches executing at once (concurrency tokens).
  std::size_t max_concurrent_batches = 4;
  /// Admitted-but-unfinished request budget across running batches.  A
  /// batch larger than the whole budget is still admitted when it would
  /// run alone (progress is never wedged on an oversized batch).
  std::size_t max_inflight_requests = 8192;
  /// Waiting-room capacity (batches).  Beyond it, load shedding starts.
  std::size_t max_queued_batches = 8;
};

struct AdmissionStats {
  std::uint64_t offered_batches = 0;
  std::uint64_t admitted_batches = 0;
  std::uint64_t shed_batches = 0;
  std::uint64_t shed_requests = 0;
  std::size_t peak_queue = 0;
};

class AdmissionController {
 public:
  enum class Outcome : std::uint8_t { kAdmitted, kShedded };

  explicit AdmissionController(const AdmissionOptions& opts) : opts_(opts) {}

  /// Offers a batch of `requests` requests at `priority`.  Blocks while
  /// queued; returns kAdmitted once capacity is granted (the caller must
  /// later call `finish`) or kShedded when load shedding dropped it.
  Outcome admit(std::size_t requests, Priority priority);

  /// Releases an admitted batch's token and request budget.
  void finish(std::size_t requests) noexcept;

  AdmissionStats stats() const;

 private:
  struct Waiter;

  bool can_start(std::size_t requests) const noexcept;  // under mutex_
  void grant_waiters() noexcept;                        // under mutex_

  AdmissionOptions opts_;
  mutable std::mutex mutex_;
  std::vector<Waiter*> queue_;  // arrival order; scanned (bounded, small)
  std::uint64_t next_seq_ = 0;
  std::size_t running_batches_ = 0;
  std::size_t inflight_requests_ = 0;
  AdmissionStats stats_;
};

/// RAII admit/finish pairing: construction offers the batch, destruction
/// releases the token and request budget of an admitted one.  A throw
/// anywhere between admission and settle can no longer leak in-flight
/// budget (which would permanently shrink the controller's capacity).
class AdmissionGuard {
 public:
  AdmissionGuard(AdmissionController& controller, std::size_t requests,
                 Priority priority)
      : controller_(controller),
        requests_(requests),
        admitted_(controller.admit(requests, priority) ==
                  AdmissionController::Outcome::kAdmitted) {}

  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

  ~AdmissionGuard() { release(); }

  bool admitted() const noexcept { return admitted_; }

  /// Early release (idempotent); the destructor is the exception backstop.
  void release() noexcept {
    if (admitted_) {
      admitted_ = false;
      controller_.finish(requests_);
    }
  }

 private:
  AdmissionController& controller_;
  std::size_t requests_;
  bool admitted_;
};

}  // namespace dps::serve
