#pragma once
// Per-replica circuit breaker for the cluster's failure-domain dispatch.
//
// Classic three-state machine, tuned for the subrequest granularity the
// cluster dispatches at:
//
//   closed ---- `failure_threshold` consecutive failures ----> open
//   open ------ `cooldown` elapses, next admit() ------------> half-open
//   half-open - the single probe succeeds -------------------> closed
//   half-open - the probe fails -----------------------------> open
//
// While open, admit() answers kSkip and the cluster settles the shard's
// requests without consulting the replica at all (fallback oracle or
// kPartial) -- a crashed or wedged failure domain stops costing dispatch
// budget and hedge traffic.  Half-open admits exactly one probe
// subrequest at a time; regular traffic keeps skipping until the probe
// closes the breaker, so a still-sick replica is re-checked at cooldown
// granularity instead of being hammered.
//
// A "failure" is a replica-level event: a fail-fast crash fault, a
// subrequest abandoned at its deadline budget, or losing to a hedge (the
// replica exceeded its own observed-p99-derived delay).  Engine-level
// non-kOk *statuses* (a request whose deadline expired before dispatch,
// say) are not failures -- the replica answered; the request was just
// dead.
//
// Thread-safety: all methods lock the breaker's own mutex; calls are
// cheap and uncontended (one breaker per replica, touched a handful of
// times per batch).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace dps::serve {

struct BreakerOptions {
  /// Master switch; disabled (the default) admits everything and never
  /// opens, reproducing the pre-breaker cluster.
  bool enabled = false;
  /// Consecutive replica-level failures that trip closed -> open.
  std::size_t failure_threshold = 4;
  /// Open -> half-open quarantine; the first admit() after it elapses
  /// becomes the probe.
  std::chrono::microseconds cooldown{20'000};
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// What the caller should do with a subrequest it is about to dispatch.
  enum class Gate : std::uint8_t {
    kDispatch,  // closed (or breaker disabled): dispatch normally
    kProbe,     // half-open: dispatch as the single recovery probe
    kSkip,      // open (or a probe is already in flight): degrade
  };

  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const BreakerOptions& opts) : opts_(opts) {}

  Gate admit(Clock::time_point now);

  /// Records a successful subrequest.  Returns true when this success
  /// closed the breaker (half-open probe came back healthy).
  bool on_success();

  /// Records a replica-level failure.  Returns true when this failure
  /// tripped the breaker open (from closed or half-open).
  bool on_failure(Clock::time_point now);

  State state() const;
  std::size_t consecutive_failures() const;

 private:
  BreakerOptions opts_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::size_t consecutive_ = 0;
  bool probe_inflight_ = false;
  Clock::time_point opened_at_{};
};

}  // namespace dps::serve
