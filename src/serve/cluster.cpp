#include "serve/cluster.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <thread>
#include <utility>

#include "core/validate.hpp"

namespace dps::serve {

namespace {

double us_since(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

/// Per-request geometry gate, identical to the engine's.
Status validate_request(const Request& rq) noexcept {
  switch (rq.kind) {
    case RequestKind::kWindow:
      return core::validate_window(rq.window) ? Status::kInvalidArgument
                                              : Status::kOk;
    case RequestKind::kPoint:
      return core::validate_point(rq.point) ? Status::kInvalidArgument
                                            : Status::kOk;
    case RequestKind::kNearest:
      return core::validate_nearest(rq.point, rq.k) ? Status::kInvalidArgument
                                                    : Status::kOk;
  }
  return Status::kInvalidArgument;
}

/// Sorted-union duplicate deletion over concatenated per-shard id lists:
/// a segment cloned into several routed shards reports once, like the
/// single-engine answer.  Returns the clones removed.
std::uint64_t merge_ids(std::vector<geom::LineId>& ids) {
  std::sort(ids.begin(), ids.end());
  const auto last = std::unique(ids.begin(), ids.end());
  const auto removed =
      static_cast<std::uint64_t>(std::distance(last, ids.end()));
  ids.erase(last, ids.end());
  return removed;
}

/// Global k-nearest re-rank: duplicate-delete cloned hits by id (keeping
/// each id's smallest distance, matching the single tree that holds every
/// q-edge), then order by (distance^2, id) -- the canonical order
/// core::k_nearest produces -- and truncate to k.
std::uint64_t merge_neighbors(std::vector<core::Neighbor>& pool,
                              std::size_t k) {
  std::sort(pool.begin(), pool.end(),
            [](const core::Neighbor& a, const core::Neighbor& b) {
              return a.id != b.id ? a.id < b.id : a.distance2 < b.distance2;
            });
  const auto last = std::unique(pool.begin(), pool.end(),
                                [](const core::Neighbor& a,
                                   const core::Neighbor& b) {
                                  return a.id == b.id;
                                });
  const auto removed =
      static_cast<std::uint64_t>(std::distance(last, pool.end()));
  pool.erase(last, pool.end());
  std::sort(pool.begin(), pool.end(),
            [](const core::Neighbor& a, const core::Neighbor& b) {
              return a.distance2 != b.distance2 ? a.distance2 < b.distance2
                                                : a.id < b.id;
            });
  if (pool.size() > k) pool.resize(k);
  return removed;
}

}  // namespace

ClusterMetrics& ClusterMetrics::operator+=(
    const ClusterMetrics& other) noexcept {
  batches += other.batches;
  requests += other.requests;
  ok += other.ok;
  expired += other.expired;
  cancelled += other.cancelled;
  rejected += other.rejected;
  shedded += other.shedded;
  invalid += other.invalid;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_bypasses += other.cache_bypasses;
  routed_subrequests += other.routed_subrequests;
  knn_widened_shards += other.knn_widened_shards;
  duplicate_hits_removed += other.duplicate_hits_removed;
  // `cache` is a point-in-time snapshot attached by metrics(), not a
  // foldable counter set.
  return *this;
}

Cluster::Cluster(ClusterOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache), admission_(opts_.admission) {
  shards_ = opts_.shards == 0 ? 1 : opts_.shards;
  engines_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    EngineOptions eo = opts_.engine;
    if (s < opts_.replica_fault_injectors.size()) {
      eo.fault_injector = opts_.replica_fault_injectors[s];
    }
    engines_.push_back(std::make_unique<QueryEngine>(eo));
  }
}

Cluster::~Cluster() = default;

void Cluster::mount(const std::vector<geom::Segment>& lines,
                    const ClusterMountOptions& mopts) {
  // Build outside the lock: serving stays live on the previous generation
  // while the new shard indexes assemble, and only the pointer swap (plus
  // the cache-epoch bump) excludes in-flight batches.
  const geom::Rect extent{0.0, 0.0, mopts.world, mopts.world};
  core::ShardedSegments sharded =
      core::shard_segments(lines, extent, shards_);
  std::vector<ShardIndexes> built(shards_);
  dpv::Context build_ctx;  // serial: deterministic shard builds
  for (std::size_t s = 0; s < shards_; ++s) {
    if (sharded.shards[s].empty()) continue;
    core::PmrBuildOptions po = mopts.quad;
    po.world = mopts.world;
    built[s].quad = core::pmr_build(build_ctx, sharded.shards[s], po).tree;
    built[s].rtree =
        core::rtree_build(build_ctx, sharded.shards[s], mopts.rtree).tree;
    if (mopts.build_linear) {
      built[s].linear = core::LinearQuadTree::from(built[s].quad);
    }
    built[s].empty = false;
  }

  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  sharded_ = std::move(sharded);
  indexes_ = std::move(built);
  for (std::size_t s = 0; s < shards_; ++s) {
    // Remount every replica -- empty shards unmount so a dangling pointer
    // into the previous generation can never be traversed.
    QueryEngine& eng = *engines_[s];
    if (indexes_[s].empty) {
      eng.mount(static_cast<const core::QuadTree*>(nullptr));
      eng.mount(static_cast<const core::RTree*>(nullptr));
      eng.mount(static_cast<const core::LinearQuadTree*>(nullptr));
    } else {
      eng.mount(&indexes_[s].quad);
      eng.mount(&indexes_[s].rtree);
      eng.mount(mopts.build_linear ? &indexes_[s].linear : nullptr);
    }
  }
  mounted_ = true;
  linear_mounted_ = mopts.build_linear;
  mount_epoch_.fetch_add(1, std::memory_order_release);
  // Epoch bump under the exclusive lock: every batch admitted after this
  // point sees only the new generation, so zero stale results.
  cache_.bump_epoch();
}

Status Cluster::pre_status(const Request& rq) const noexcept {
  if (cancel_.load(std::memory_order_relaxed)) return Status::kCancelled;
  if (rq.has_deadline() && Clock::now() >= *rq.deadline) {
    return Status::kDeadlineExpired;
  }
  return Status::kOk;
}

bool Cluster::supported(const Request& rq) const noexcept {
  if (!mounted_) return false;
  if (rq.index == IndexKind::kLinearQuadTree) {
    return linear_mounted_ && rq.kind != RequestKind::kNearest;
  }
  return true;
}

void Cluster::route_window(const geom::Rect& window,
                           std::vector<std::size_t>& out) const {
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!indexes_[s].empty && sharded_.plan.footprints[s].intersects(window)) {
      out.push_back(s);
    }
  }
}

void Cluster::route_point(const geom::Point& p,
                          std::vector<std::size_t>& out) const {
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!indexes_[s].empty && sharded_.plan.footprints[s].contains(p)) {
      out.push_back(s);
    }
  }
}

std::size_t Cluster::primary_knn_shard(const geom::Point& p) const {
  std::size_t best = shards_;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards_; ++s) {
    if (indexes_[s].empty) continue;
    const double d2 = sharded_.plan.footprints[s].distance2(p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = s;
    }
  }
  return best;
}

std::vector<std::vector<Response>> Cluster::dispatch(
    std::vector<std::vector<Request>>& sub) {
  std::vector<std::vector<Response>> out(shards_);
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!sub[s].empty()) busy.push_back(s);
  }
  if (busy.size() == 1) {
    out[busy[0]] = engines_[busy[0]]->serve(sub[busy[0]]);
    return out;
  }
  // Replicas are independent engines with their own pools; one dispatcher
  // thread per busy replica lets them serve concurrently.
  std::vector<std::thread> workers;
  workers.reserve(busy.size());
  for (const std::size_t s : busy) {
    workers.emplace_back(
        [this, &sub, &out, s] { out[s] = engines_[s]->serve(sub[s]); });
  }
  for (auto& w : workers) w.join();
  return out;
}

struct Cluster::Pending {
  std::size_t index = 0;             // into the batch
  ResultCache::Key key;
  bool fill_cache = false;           // missed; memoize on kOk merge
  bool knn = false;
  // (round, shard, position) of every shard-local sub-request.
  std::vector<std::array<std::size_t, 3>> slots;
};

std::vector<Response> Cluster::serve(const std::vector<Request>& batch) {
  const auto t0 = Clock::now();
  const std::size_t n = batch.size();
  std::vector<Response> responses(n);

  ClusterMetrics delta;
  delta.batches = 1;
  delta.requests = n;

  // Geometry gate before admission, like the engine.
  std::vector<Status> gate(n, Status::kOk);
  std::size_t valid = 0;
  Priority priority = Priority::kLow;
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.validate_requests) gate[i] = validate_request(batch[i]);
    if (gate[i] == Status::kOk) {
      ++valid;
      priority = std::max(priority, batch[i].priority);
    }
  }

  bool executed = false;
  if (valid > 0) {
    if (admission_.admit(valid, priority) ==
        AdmissionController::Outcome::kShedded) {
      for (std::size_t i = 0; i < n; ++i) {
        if (gate[i] == Status::kOk) gate[i] = Status::kShedded;
      }
    } else {
      executed = true;
      {
        std::shared_lock<std::shared_mutex> mounts(mount_mutex_);

        // Pass 1: settle dead/unsupported requests, consult the cache,
        // and route the rest into per-shard sub-batches (k-nearest to its
        // nearest-footprint shard only; the widening round follows).
        std::vector<Pending> pending;
        std::vector<std::vector<Request>> round1(shards_);
        std::vector<std::size_t> targets;
        for (std::size_t i = 0; i < n; ++i) {
          if (gate[i] != Status::kOk) {
            responses[i].status = gate[i];
            continue;
          }
          const Request& rq = batch[i];
          const Status s = pre_status(rq);
          if (s != Status::kOk) {
            responses[i].status = s;
            continue;
          }
          if (!supported(rq)) {
            responses[i].status = Status::kRejected;
            continue;
          }

          Pending p;
          p.index = i;
          if (rq.bypass_cache || !cache_.enabled()) {
            if (rq.bypass_cache) ++delta.cache_bypasses;
          } else {
            p.key = ResultCache::canonical_key(rq);
            if (cache_.lookup(p.key, responses[i])) {
              ++delta.cache_hits;
              continue;
            }
            ++delta.cache_misses;
            p.fill_cache = true;
          }

          targets.clear();
          if (rq.kind == RequestKind::kWindow) {
            route_window(rq.window, targets);
          } else if (rq.kind == RequestKind::kPoint) {
            route_point(rq.point, targets);
          } else {
            p.knn = true;
            const std::size_t primary = primary_knn_shard(rq.point);
            if (primary < shards_) targets.push_back(primary);
          }
          for (const std::size_t shard : targets) {
            p.slots.push_back({0, shard, round1[shard].size()});
            round1[shard].push_back(rq);
          }
          pending.push_back(std::move(p));
        }
        for (const auto& sub : round1) {
          delta.routed_subrequests += sub.size();
        }
        const std::vector<std::vector<Response>> r1 = dispatch(round1);

        // Pass 2 (k-nearest only): widen to every shard whose footprint
        // MINDIST beats -- or ties, so equal-distance answers are never
        // pruned -- the primary shard's running kth-best bound.
        std::vector<std::vector<Request>> round2(shards_);
        for (Pending& p : pending) {
          if (!p.knn || p.slots.empty()) continue;
          const Request& rq = batch[p.index];
          // Copy, don't bind: the widening push_back below can reallocate
          // p.slots, which would leave references into front() dangling.
          const std::size_t primary = p.slots.front()[1];
          const std::size_t pos = p.slots.front()[2];
          const Response& first = r1[primary][pos];
          if (first.status != Status::kOk) continue;  // settled in merge
          const double bound =
              first.neighbors.size() >= rq.k
                  ? first.neighbors.back().distance2
                  : std::numeric_limits<double>::infinity();
          for (std::size_t s = 0; s < shards_; ++s) {
            if (s == primary || indexes_[s].empty) continue;
            if (sharded_.plan.footprints[s].distance2(rq.point) <= bound) {
              p.slots.push_back({1, s, round2[s].size()});
              round2[s].push_back(rq);
              ++delta.knn_widened_shards;
            }
          }
        }
        for (const auto& sub : round2) {
          delta.routed_subrequests += sub.size();
        }
        const std::vector<std::vector<Response>> r2 = dispatch(round2);

        // Pass 3: exact merge.  Any non-kOk shard answer settles the
        // request with that status (the replicas' retry + sequential
        // settle makes this rare outside deadlines and cancellation).
        for (const Pending& p : pending) {
          Response& rsp = responses[p.index];
          Status merged = Status::kOk;
          for (const auto& [round, shard, pos] : p.slots) {
            const Response& sub =
                round == 0 ? r1[shard][pos] : r2[shard][pos];
            if (sub.status != Status::kOk) {
              merged = sub.status;
              break;
            }
          }
          if (merged != Status::kOk) {
            rsp.status = merged;
            rsp.ids.clear();
            rsp.neighbors.clear();
            continue;
          }
          if (p.knn) {
            for (const auto& [round, shard, pos] : p.slots) {
              const Response& sub =
                  round == 0 ? r1[shard][pos] : r2[shard][pos];
              rsp.neighbors.insert(rsp.neighbors.end(),
                                   sub.neighbors.begin(),
                                   sub.neighbors.end());
            }
            delta.duplicate_hits_removed +=
                merge_neighbors(rsp.neighbors, batch[p.index].k);
          } else {
            for (const auto& [round, shard, pos] : p.slots) {
              const Response& sub =
                  round == 0 ? r1[shard][pos] : r2[shard][pos];
              rsp.ids.insert(rsp.ids.end(), sub.ids.begin(), sub.ids.end());
            }
            delta.duplicate_hits_removed += merge_ids(rsp.ids);
          }
          rsp.status = Status::kOk;
          if (p.fill_cache) cache_.insert(p.key, rsp);
        }
      }
      admission_.finish(valid);
    }
  }
  if (!executed) {
    for (std::size_t i = 0; i < n; ++i) responses[i].status = gate[i];
  }

  for (std::size_t i = 0; i < n; ++i) {
    responses[i].latency_us = us_since(t0);
    switch (responses[i].status) {
      case Status::kOk: ++delta.ok; break;
      case Status::kDeadlineExpired: ++delta.expired; break;
      case Status::kCancelled: ++delta.cancelled; break;
      case Status::kRejected: ++delta.rejected; break;
      case Status::kShedded: ++delta.shedded; break;
      case Status::kInvalidArgument: ++delta.invalid; break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_ += delta;
  }
  return responses;
}

void Cluster::cancel_all() noexcept {
  cancel_.store(true, std::memory_order_relaxed);
  for (const auto& e : engines_) e->cancel_all();
}

void Cluster::reset_cancel() noexcept {
  cancel_.store(false, std::memory_order_relaxed);
  for (const auto& e : engines_) e->reset_cancel();
}

ClusterMetrics Cluster::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ClusterMetrics out = metrics_;
  out.cache = cache_.stats();
  return out;
}

void Cluster::reset_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = ClusterMetrics{};
}

}  // namespace dps::serve
