#include "serve/cluster.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/nearest.hpp"
#include "core/query.hpp"
#include "core/validate.hpp"

namespace dps::serve {

namespace {

double us_since(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

/// Per-request geometry gate, identical to the engine's.
Status validate_request(const Request& rq) noexcept {
  switch (rq.kind) {
    case RequestKind::kWindow:
      return core::validate_window(rq.window) ? Status::kInvalidArgument
                                              : Status::kOk;
    case RequestKind::kPoint:
      return core::validate_point(rq.point) ? Status::kInvalidArgument
                                            : Status::kOk;
    case RequestKind::kNearest:
      return core::validate_nearest(rq.point, rq.k) ? Status::kInvalidArgument
                                                    : Status::kOk;
  }
  return Status::kInvalidArgument;
}

/// Sorted-union duplicate deletion over concatenated per-shard id lists:
/// a segment cloned into several routed shards reports once, like the
/// single-engine answer.  Returns the clones removed.
std::uint64_t merge_ids(std::vector<geom::LineId>& ids) {
  std::sort(ids.begin(), ids.end());
  const auto last = std::unique(ids.begin(), ids.end());
  const auto removed =
      static_cast<std::uint64_t>(std::distance(last, ids.end()));
  ids.erase(last, ids.end());
  return removed;
}

/// Global k-nearest re-rank: duplicate-delete cloned hits by id (keeping
/// each id's smallest distance, matching the single tree that holds every
/// q-edge), then order by (distance^2, id) -- the canonical order
/// core::k_nearest produces -- and truncate to k.
std::uint64_t merge_neighbors(std::vector<core::Neighbor>& pool,
                              std::size_t k) {
  std::sort(pool.begin(), pool.end(),
            [](const core::Neighbor& a, const core::Neighbor& b) {
              return a.id != b.id ? a.id < b.id : a.distance2 < b.distance2;
            });
  const auto last = std::unique(pool.begin(), pool.end(),
                                [](const core::Neighbor& a,
                                   const core::Neighbor& b) {
                                  return a.id == b.id;
                                });
  const auto removed =
      static_cast<std::uint64_t>(std::distance(last, pool.end()));
  pool.erase(last, pool.end());
  std::sort(pool.begin(), pool.end(),
            [](const core::Neighbor& a, const core::Neighbor& b) {
              return a.distance2 != b.distance2 ? a.distance2 < b.distance2
                                                : a.id < b.id;
            });
  if (pool.size() > k) pool.resize(k);
  return removed;
}

/// Absolute wait budget for a subrequest job: the earliest request
/// deadline minus `reserve` (so the sequential fallback settle still fits
/// inside the deadline; when the deadline is nearer than the reserve the
/// full window is used), further capped by `cap` when set.  The epoch
/// means "no budget: wait for the reply".
Clock::time_point job_budget(const std::vector<Request>& reqs,
                             Clock::time_point now,
                             std::chrono::microseconds reserve,
                             std::chrono::microseconds cap) {
  Clock::time_point budget{};
  for (const Request& rq : reqs) {
    if (!rq.has_deadline()) continue;
    Clock::time_point t = *rq.deadline - reserve;
    if (t <= now) t = *rq.deadline;
    if (budget.time_since_epoch().count() == 0 || t < budget) budget = t;
  }
  if (cap.count() > 0) {
    const Clock::time_point capped = now + cap;
    if (budget.time_since_epoch().count() == 0 || capped < budget) {
      budget = capped;
    }
  }
  return budget;
}

}  // namespace

ClusterMetrics& ClusterMetrics::operator+=(
    const ClusterMetrics& other) noexcept {
  batches += other.batches;
  requests += other.requests;
  ok += other.ok;
  expired += other.expired;
  cancelled += other.cancelled;
  rejected += other.rejected;
  shedded += other.shedded;
  invalid += other.invalid;
  partial += other.partial;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_bypasses += other.cache_bypasses;
  routed_subrequests += other.routed_subrequests;
  knn_widened_shards += other.knn_widened_shards;
  duplicate_hits_removed += other.duplicate_hits_removed;
  hedges_issued += other.hedges_issued;
  hedges_won += other.hedges_won;
  subrequest_timeouts += other.subrequest_timeouts;
  replica_crashes += other.replica_crashes;
  missing_shard_answers += other.missing_shard_answers;
  degraded_fallback += other.degraded_fallback;
  breaker_open_transitions += other.breaker_open_transitions;
  breaker_close_transitions += other.breaker_close_transitions;
  breaker_half_open_probes += other.breaker_half_open_probes;
  breaker_skipped_subrequests += other.breaker_skipped_subrequests;
  updates += other.updates;
  update_inserts += other.update_inserts;
  update_deletes += other.update_deletes;
  update_failures += other.update_failures;
  compactions += other.compactions;
  latency += other.latency;
  // `cache` and `replicas` are point-in-time snapshots attached by
  // metrics(), not foldable counter sets.
  return *this;
}

/// Long-lived per-replica failure-domain state.
struct Cluster::ReplicaState {
  explicit ReplicaState(const BreakerOptions& bo) : breaker(bo) {}

  CircuitBreaker breaker;
  dpv::FaultInjector* injector = nullptr;  // replica-level chaos hook

  mutable std::mutex mutex;  // guards the ledger and counters below
  LatencyHistogram ledger;   // completed subrequest wall time (the hedge
                             // delay derives from its observed quantile)
  std::uint64_t subrequests = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hedges = 0;
  std::uint64_t breaker_skips = 0;
};

/// One dispatched subrequest (primary or hedge).  Held via shared_ptr by
/// both the serving thread and the pool job, so an abandoned job can
/// outlive the batch that issued it: a late reply is dropped, not joined
/// on.
struct Cluster::SubJob {
  QueryEngine* engine = nullptr;
  std::size_t replica = 0;   // owning primary's coordinate
  bool is_primary = true;    // hedges never feed the ledger or faults
  bool whole_map = false;    // fallback-engine hedge: answer is global
  dpv::FaultInjector* injector = nullptr;
  std::uint64_t fault_scope = 0;
  std::vector<Request> reqs;
  std::vector<Response> rsps;  // read only via usable()

  std::atomic<bool> done{false};
  std::atomic<bool> crashed{false};
  std::atomic<bool> abandoned{false};
  std::atomic<bool> cancel{false};  // per-call engine BatchControl hook
  Clock::time_point submitted{};
  Clock::time_point finished{};  // written before done (release/acquire)
  Clock::time_point budget{};    // epoch = none

  bool has_budget() const noexcept {
    return budget.time_since_epoch().count() != 0;
  }

  // Wait-loop bookkeeping; touched by the serving thread only.
  bool resolved = false;
  bool timed_out = false;
  bool lost_hedge = false;

  /// True when the merge may consume this job's responses.  Excludes
  /// answers that landed after abandonment: using them would make the
  /// merge timing-dependent.
  bool usable() const noexcept {
    return resolved && !timed_out && !lost_hedge &&
           done.load(std::memory_order_acquire) &&
           !crashed.load(std::memory_order_relaxed);
  }
};

/// Completion signal shared by a round's jobs and the serving thread.
struct Cluster::Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t events = 0;  // completions published (or dropped early)
};

struct Cluster::RoundSlot {
  std::shared_ptr<SubJob> primary;
  std::shared_ptr<SubJob> hedge;
  bool skipped = false;        // breaker open: never dispatched
  bool hedge_decided = false;  // hedge fired, or ruled out for this slot
};

struct Cluster::Pending {
  std::size_t index = 0;  // into the batch
  ResultCache::Key key;
  bool fill_cache = false;  // missed; memoize on a healthy kOk merge
  bool knn = false;
  bool hedged = false;   // a consumed answer came from a hedge
  bool settled = false;  // answered before the final merge pass
  struct Slot {
    std::size_t round, shard, pos;
  };
  std::vector<Slot> slots;
};

Cluster::Cluster(ClusterOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache), admission_(opts_.admission) {
  shards_ = opts_.shards == 0 ? 1 : opts_.shards;
  shard_lines_.assign(shards_, 0);
  shard_live_ = std::vector<std::atomic<bool>>(shards_);
  engines_.reserve(shards_);
  replica_state_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    EngineOptions eo = opts_.engine;
    if (s < opts_.replica_fault_injectors.size()) {
      eo.fault_injector = opts_.replica_fault_injectors[s];
    }
    engines_.push_back(std::make_unique<QueryEngine>(eo));
    auto state = std::make_unique<ReplicaState>(opts_.breaker);
    state->injector = eo.fault_injector;
    replica_state_.push_back(std::move(state));
  }
  if (opts_.backup_replicas) {
    // Backups run the plain engine template: they are the recovery path,
    // so per-replica chaos hooks never apply to them.
    backups_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      backups_.push_back(std::make_unique<QueryEngine>(opts_.engine));
    }
  }
  if (opts_.fallback_engine) {
    fallback_engine_ = std::make_unique<QueryEngine>(opts_.engine);
  }
  std::size_t workers = opts_.dispatcher_threads;
  if (workers == 0) {
    // Every primary plus every possible hedge can run at once.
    workers = std::min<std::size_t>(2 * shards_ + 2, 32);
  }
  dispatch_pool_ = std::make_unique<dpv::AsyncPool>(workers);
}

Cluster::~Cluster() {
  // Dispatcher first: queued jobs are discarded and running ones joined
  // (stuck-fault jobs poll stopping()), so nothing can reference the
  // engines or mounted indexes destroyed after this.
  dispatch_pool_.reset();
}

void Cluster::mount(const std::vector<geom::Segment>& lines,
                    const ClusterMountOptions& mopts) {
  // Build outside the lock: serving stays live on the previous generation
  // while the new shard indexes assemble.  Heap storage keeps element
  // addresses stable across the swap below.
  const geom::Rect extent{0.0, 0.0, mopts.world, mopts.world};
  core::ShardedSegments sharded =
      core::shard_segments(lines, extent, shards_);
  auto built = std::make_unique<std::vector<ShardIndexes>>(shards_);
  dpv::Context build_ctx;  // serial: deterministic shard builds
  for (std::size_t s = 0; s < shards_; ++s) {
    if (sharded.shards[s].empty()) continue;
    core::PmrBuildOptions po = mopts.quad;
    po.world = mopts.world;
    ShardIndexes& slot = (*built)[s];
    slot.quad = core::pmr_build(build_ctx, sharded.shards[s], po).tree;
    slot.rtree =
        core::rtree_build(build_ctx, sharded.shards[s], mopts.rtree).tree;
    if (mopts.build_linear) {
      slot.linear = core::LinearQuadTree::from(slot.quad);
    }
    slot.empty = false;
  }
  // Whole-map fallback indexes (a 1-shard plan IS the whole map, so shard
  // 0's indexes are reused there).
  std::unique_ptr<ShardIndexes> fb;
  if (fallback_engine_ != nullptr && shards_ > 1 && !lines.empty()) {
    fb = std::make_unique<ShardIndexes>();
    core::PmrBuildOptions po = mopts.quad;
    po.world = mopts.world;
    fb->quad = core::pmr_build(build_ctx, lines, po).tree;
    fb->rtree = core::rtree_build(build_ctx, lines, mopts.rtree).tree;
    if (mopts.build_linear) fb->linear = core::LinearQuadTree::from(fb->quad);
    fb->empty = false;
  }

  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  // Remount every replica onto the *new* storage first.  Each engine's
  // exclusive mount lock waits for that engine's in-flight serves --
  // including abandoned stragglers still draining -- so by the time the
  // old generation is destroyed (the moves below), nothing can traverse
  // it.
  auto remount = [&](QueryEngine& eng, const ShardIndexes* ix) {
    if (ix == nullptr || ix->empty) {
      eng.mount(static_cast<const core::QuadTree*>(nullptr));
      eng.mount(static_cast<const core::RTree*>(nullptr));
      eng.mount(static_cast<const core::LinearQuadTree*>(nullptr));
    } else {
      eng.mount(&ix->quad);
      eng.mount(&ix->rtree);
      eng.mount(mopts.build_linear ? &ix->linear : nullptr);
    }
  };
  for (std::size_t s = 0; s < shards_; ++s) {
    remount(*engines_[s], &(*built)[s]);
    if (!backups_.empty()) remount(*backups_[s], &(*built)[s]);
  }
  const ShardIndexes* fbix =
      fb != nullptr ? fb.get()
                    : (fallback_engine_ != nullptr && shards_ == 1
                           ? &(*built)[0]
                           : nullptr);
  if (fallback_engine_ != nullptr) remount(*fallback_engine_, fbix);
  // Live-update bookkeeping restarts from the freshly mounted map.
  mount_opts_ = mopts;
  live_map_.clear();
  live_map_.reserve(lines.size());
  for (const geom::Segment& seg : lines) live_map_.emplace(seg.id, seg);
  for (std::size_t s = 0; s < shards_; ++s) {
    shard_lines_[s] = sharded.shards[s].size();
    shard_live_[s].store(shard_lines_[s] > 0, std::memory_order_release);
  }
  sharded_ = std::move(sharded);
  indexes_ = std::move(built);  // previous generation destroyed here
  fallback_ = std::move(fb);
  mounted_ = true;
  linear_mounted_ = mopts.build_linear;
  mount_epoch_.fetch_add(1, std::memory_order_release);
  // Epoch bump under the exclusive lock: every batch admitted after this
  // point sees only the new generation, so zero stale results.
  cache_.bump_epoch();
}

Status Cluster::pre_status(const Request& rq) const noexcept {
  if (cancel_.load(std::memory_order_relaxed)) return Status::kCancelled;
  if (rq.has_deadline() && Clock::now() >= *rq.deadline) {
    return Status::kDeadlineExpired;
  }
  return Status::kOk;
}

bool Cluster::supported(const Request& rq) const noexcept {
  if (!mounted_) return false;
  if (rq.index == IndexKind::kLinearQuadTree) {
    return linear_mounted_ && rq.kind != RequestKind::kNearest;
  }
  return true;
}

void Cluster::route_window(const geom::Rect& window,
                           std::vector<std::size_t>& out) const {
  for (std::size_t s = 0; s < shards_; ++s) {
    if (shard_live(s) && sharded_.plan.footprints[s].intersects(window)) {
      out.push_back(s);
    }
  }
}

void Cluster::route_point(const geom::Point& p,
                          std::vector<std::size_t>& out) const {
  for (std::size_t s = 0; s < shards_; ++s) {
    if (shard_live(s) && sharded_.plan.footprints[s].contains(p)) {
      out.push_back(s);
    }
  }
}

std::size_t Cluster::primary_knn_shard(const geom::Point& p) const {
  std::size_t best = shards_;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!shard_live(s)) continue;
    const double d2 = sharded_.plan.footprints[s].distance2(p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = s;
    }
  }
  return best;
}

std::chrono::microseconds Cluster::hedge_delay(std::size_t replica) const {
  const HedgeOptions& h = opts_.hedge;
  const ReplicaState& rs = *replica_state_[replica];
  std::lock_guard<std::mutex> lk(rs.mutex);
  if (rs.ledger.count() < h.min_samples) return h.initial_delay;
  const auto p99 = std::chrono::microseconds(
      static_cast<std::int64_t>(rs.ledger.quantile_upper_us(h.quantile)));
  return std::clamp(p99, h.min_delay, h.max_delay);
}

Status Cluster::run_fallback(const Request& rq, Response& rsp) const {
  // The fallback engine's sequential oracle over its pinned generation:
  // exact, and update-aware (an updated generation lazily rebuilds its
  // sibling indexes on first use, so this path stays exact mid-update).
  if (fallback_engine_ == nullptr) return Status::kRejected;
  return fallback_engine_->run_oracle(rq, rsp);
}

UpdateOptions Cluster::update_options() const {
  UpdateOptions uo;
  uo.build = mount_opts_.quad;
  uo.build.world = mount_opts_.world;
  uo.rtree = mount_opts_.rtree;
  uo.keep_rtree = true;
  uo.keep_linear = mount_opts_.build_linear;
  uo.compact_after = opts_.update_compact_after;
  return uo;
}

UpdateResult Cluster::apply_update(const UpdateBatch& batch) {
  UpdateResult res;
  const auto fail = [this, &res](Status s) {
    res.status = s;
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.update_failures;
    return res;
  };

  // Serialize against sibling updates; the *shared* mount lock lets
  // serve() proceed throughout while excluding a concurrent remount.
  std::lock_guard<std::mutex> up(update_mutex_);
  std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
  if (!mounted_) return fail(Status::kRejected);

  // Whole-map validation at the cluster door: geometry, then id
  // collisions against the live map net of this batch's deletes.
  if (core::validate_segments(batch.inserts, mount_opts_.world).has_value()) {
    return fail(Status::kInvalidArgument);
  }
  const std::unordered_set<geom::LineId> doomed(batch.deletes.begin(),
                                                batch.deletes.end());
  std::unordered_set<geom::LineId> collide;
  collide.reserve(live_map_.size());
  for (const auto& [id, seg] : live_map_) {
    if (doomed.count(id) == 0) collide.insert(id);
  }
  if (core::validate_insert_ids(batch.inserts, collide).has_value()) {
    return fail(Status::kInvalidArgument);
  }

  // Route deltas to owning shards by the exact cloning rule `mount`
  // shards with, so an updated shard holds precisely the segments a
  // from-scratch reshard of the new map would give it.  (The one-shard
  // plan clones nothing: everything lives in shard 0.)
  const auto& footprints = sharded_.plan.footprints;
  std::vector<std::vector<geom::Segment>> shard_inserts(shards_);
  std::vector<std::vector<geom::LineId>> shard_deletes(shards_);
  std::vector<geom::Rect> dirty;
  for (const geom::LineId id : batch.deletes) {
    const auto it = live_map_.find(id);
    if (it == live_map_.end()) {
      ++res.unknown_deletes;  // tolerated, like pmr_delete's contract
      continue;
    }
    ++res.deleted;
    dirty.push_back(it->second.bbox());
    for (std::size_t s = 0; s < shards_; ++s) {
      if (shards_ == 1 ||
          geom::segment_intersects_rect(it->second, footprints[s])) {
        shard_deletes[s].push_back(id);
      }
    }
  }
  for (const geom::Segment& seg : batch.inserts) {
    dirty.push_back(seg.bbox());
    for (std::size_t s = 0; s < shards_; ++s) {
      if (shards_ == 1 ||
          geom::segment_intersects_rect(seg, footprints[s])) {
        shard_inserts[s].push_back(seg);
      }
    }
  }
  res.inserted = batch.inserts.size();
  if (res.inserted == 0 && res.deleted == 0) {
    res.epoch = mount_epoch();
    return res;  // kOk no-op: nothing published, nothing invalidated
  }

  // Phase 1 -- prepare: build every affected replica's shadow generation
  // (and the whole-map fallback's own, when it keeps separate indexes).
  // Any failure abandons every shadow before anything publishes, so a
  // fault mid-update can never leave the shards disagreeing about the
  // map ("mid-swap crash" semantics).
  const UpdateOptions uo = update_options();
  struct ShardPrep {
    std::size_t shard;
    PreparedUpdate prep;
  };
  // Shadow builds fan out data-parallel across the affected shards: each
  // engine prepares (and warms) its own generation on a worker thread, so
  // the cross-shard prepare cost is the slowest shard's, not the sum.
  // Engines are independent objects with engine-local locks, so the only
  // join point is the all-or-nothing status check below.
  std::vector<ShardPrep> preps;
  preps.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    if (shard_inserts[s].empty() && shard_deletes[s].empty()) continue;
    preps.push_back({s, {}});
  }
  {
    const auto prep_one = [this, &shard_inserts, &shard_deletes,
                           &uo](ShardPrep& sp) {
      UpdateBatch sub;
      sub.inserts = std::move(shard_inserts[sp.shard]);
      sub.deletes = std::move(shard_deletes[sp.shard]);
      sp.prep = engines_[sp.shard]->prepare_update(sub, uo);
    };
    // Worker threads run at default scheduling policy, so a caller that
    // demoted itself (e.g. a background maintenance thread on a shared
    // host) must not fan out -- the workers would outrank the read path.
    // Inline on a single hardware thread; fan out otherwise.
    if (preps.size() <= 1 || std::thread::hardware_concurrency() <= 1) {
      for (ShardPrep& sp : preps) prep_one(sp);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(preps.size());
      for (ShardPrep& sp : preps) {
        workers.emplace_back([&prep_one, &sp] { prep_one(sp); });
      }
      for (std::thread& w : workers) w.join();
    }
  }
  for (const ShardPrep& sp : preps) {
    if (!sp.prep.ok()) return fail(sp.prep.status);
  }
  PreparedUpdate fb_prep;
  const bool fb_separate = fallback_engine_ != nullptr && shards_ > 1;
  if (fb_separate) {
    // The fallback only answers degraded requests, so its whole-map
    // sibling rebuilds stay lazy instead of taxing every update.
    UpdateOptions fb_uo = uo;
    fb_uo.warm_siblings = false;
    fb_prep = fallback_engine_->prepare_update(batch, fb_uo);
    if (!fb_prep.ok()) return fail(fb_prep.status);
  }

  // Phase 2 -- publish: back-to-back RCU pointer swaps.  Readers pin a
  // generation per engine batch, so each answer is internally consistent;
  // the cross-shard publication window is only these swaps.
  for (ShardPrep& sp : preps) {
    res.compacted = res.compacted || sp.prep.compacted;
    if (sp.prep.compacted) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.compactions;
    }
    const std::size_t s = sp.shard;
    const std::size_t ins = sp.prep.inserted;
    const std::size_t del = sp.prep.deleted;
    engines_[s]->publish_update(std::move(sp.prep));
    if (!backups_.empty()) backups_[s]->adopt_generation(*engines_[s]);
    shard_lines_[s] += ins;
    shard_lines_[s] -= del;
    shard_live_[s].store(shard_lines_[s] > 0, std::memory_order_release);
  }
  if (fb_separate) {
    fallback_engine_->publish_update(std::move(fb_prep));
  } else if (fallback_engine_ != nullptr) {
    fallback_engine_->adopt_generation(*engines_[0]);
  }

  // Whole-map bookkeeping follows the publications.
  for (const geom::LineId id : doomed) live_map_.erase(id);
  for (const geom::Segment& seg : batch.inserts) {
    live_map_.emplace(seg.id, seg);
  }

  // Cache invalidation last: generations are already published, so a
  // racing fill is either version-rejected here or provably computed
  // against the new map.
  if (opts_.delta_cache_invalidation) {
    cache_.invalidate_delta(dirty);
  } else {
    cache_.bump_epoch();
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.updates;
    metrics_.update_inserts += res.inserted;
    metrics_.update_deletes += res.deleted;
  }
  res.epoch = mount_epoch_.fetch_add(1, std::memory_order_release) + 1;
  return res;
}

void Cluster::submit_job(const std::shared_ptr<SubJob>& job,
                         const std::shared_ptr<Waiter>& waiter) {
  job->submitted = Clock::now();
  dpv::AsyncPool* const pool = dispatch_pool_.get();
  dispatch_pool_->submit([job, waiter, pool] {
    if (!job->abandoned.load(std::memory_order_acquire)) {
      bool vanished = false;
      if (job->injector != nullptr) {
        const dpv::ReplicaFault rf =
            job->injector->replica_fault(job->replica, job->fault_scope);
        if (rf.kind != dpv::ReplicaFaultKind::kNone) {
          job->injector->note_replica_fault(rf.kind);
        }
        if (rf.kind == dpv::ReplicaFaultKind::kCrash) {
          job->crashed.store(true, std::memory_order_relaxed);
        } else if (rf.kind == dpv::ReplicaFaultKind::kStuck) {
          // The reply never arrives.  Park interruptibly: abandonment and
          // pool shutdown must never be wedged on an injected fault.
          while (!job->abandoned.load(std::memory_order_acquire) &&
                 !pool->stopping()) {
            std::this_thread::sleep_for(std::chrono::microseconds{200});
          }
          vanished = true;
        } else if (rf.kind == dpv::ReplicaFaultKind::kStall) {
          const auto until = Clock::now() + rf.stall;
          while (Clock::now() < until &&
                 !job->abandoned.load(std::memory_order_acquire) &&
                 !pool->stopping()) {
            std::this_thread::sleep_for(std::chrono::microseconds{200});
          }
        }
      }
      if (vanished) return;  // stuck: dropped on the floor, no publication
      if (!job->crashed.load(std::memory_order_relaxed) &&
          !job->abandoned.load(std::memory_order_acquire)) {
        job->rsps = job->engine->serve(job->reqs, &job->cancel);
      }
      job->finished = Clock::now();
      job->done.store(true, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lk(waiter->mutex);
    ++waiter->events;
    waiter->cv.notify_all();
  });
}

void Cluster::run_round(std::vector<std::vector<Request>>& sub,
                        std::size_t round, std::uint64_t batch_seq,
                        std::vector<RoundSlot>& slots, ClusterMetrics& delta) {
  auto waiter = std::make_shared<Waiter>();
  const auto now0 = Clock::now();
  bool outstanding = false;
  for (std::size_t s = 0; s < shards_; ++s) {
    if (sub[s].empty()) continue;
    ReplicaState& rs = *replica_state_[s];
    const CircuitBreaker::Gate gate = rs.breaker.admit(now0);
    if (gate == CircuitBreaker::Gate::kSkip) {
      // Open breaker: skip-and-degrade.  The merge settles this shard's
      // requests without ever consulting the replica.
      slots[s].skipped = true;
      delta.breaker_skipped_subrequests += sub[s].size();
      std::lock_guard<std::mutex> lk(rs.mutex);
      rs.breaker_skips += sub[s].size();
      continue;
    }
    if (gate == CircuitBreaker::Gate::kProbe) ++delta.breaker_half_open_probes;
    auto job = std::make_shared<SubJob>();
    job->engine = engines_[s].get();
    job->replica = s;
    job->injector = rs.injector;
    job->fault_scope = dpv::FaultInjector::scope(batch_seq, round, s);
    job->reqs = std::move(sub[s]);
    job->budget = job_budget(job->reqs, now0, opts_.fallback_reserve,
                             opts_.subrequest_timeout);
    {
      std::lock_guard<std::mutex> lk(rs.mutex);
      ++rs.subrequests;
    }
    slots[s].primary = job;
    submit_job(job, waiter);
    outstanding = true;
  }
  if (!outstanding) return;

  // Merge-on-arrival wait loop: resolve completions as they land, fire
  // hedges at each replica's derived delay, abandon at budget.  Scans are
  // cheap (a handful of slots); the cv bounds the idle wait.
  std::uint64_t seen = 0;
  for (;;) {
    const auto now = Clock::now();
    auto next_event = Clock::time_point::max();

    for (std::size_t s = 0; s < shards_; ++s) {
      RoundSlot& sl = slots[s];
      if (!sl.primary) continue;
      SubJob& pj = *sl.primary;
      ReplicaState& rs = *replica_state_[s];

      if (!pj.resolved) {
        if (pj.done.load(std::memory_order_acquire)) {
          pj.resolved = true;
          if (pj.crashed.load(std::memory_order_relaxed)) {
            ++delta.replica_crashes;
            {
              std::lock_guard<std::mutex> lk(rs.mutex);
              ++rs.crashes;
            }
            if (rs.breaker.on_failure(now)) ++delta.breaker_open_transitions;
          } else {
            const double wall =
                std::chrono::duration<double, std::micro>(pj.finished -
                                                          pj.submitted)
                    .count();
            {
              std::lock_guard<std::mutex> lk(rs.mutex);
              rs.ledger.record(wall);
              ++rs.completed;
            }
            if (rs.breaker.on_success()) ++delta.breaker_close_transitions;
            if (sl.hedge && !sl.hedge->resolved) {
              // The primary answered: the hedge lost; cancel it.
              sl.hedge->cancel.store(true, std::memory_order_relaxed);
              sl.hedge->abandoned.store(true, std::memory_order_release);
              sl.hedge->resolved = true;
              sl.hedge->lost_hedge = true;
            }
          }
        } else if (pj.has_budget() && now >= pj.budget) {
          // Out of budget: abandon, never join.  The merge settles these
          // via the fallback oracle / kPartial inside the deadline.
          pj.cancel.store(true, std::memory_order_relaxed);
          pj.abandoned.store(true, std::memory_order_release);
          pj.resolved = true;
          pj.timed_out = true;
          ++delta.subrequest_timeouts;
          {
            std::lock_guard<std::mutex> lk(rs.mutex);
            ++rs.timeouts;
          }
          if (rs.breaker.on_failure(now)) ++delta.breaker_open_transitions;
          if (sl.hedge && !sl.hedge->resolved) {
            sl.hedge->cancel.store(true, std::memory_order_relaxed);
            sl.hedge->abandoned.store(true, std::memory_order_release);
            sl.hedge->resolved = true;
            sl.hedge->timed_out = true;
          }
        } else if (pj.has_budget() && pj.budget < next_event) {
          next_event = pj.budget;
        }
      }

      // Hedge firing: once the primary has been slow for its replica's
      // observed-p99-derived delay -- or crashed outright -- re-issue the
      // same subrequest to the backup replica (same footprint) or the
      // whole-map fallback engine.  One hedge per slot; first kOk wins.
      if (opts_.hedge.enabled && !sl.hedge_decided) {
        const bool in_budget = !pj.has_budget() || now < pj.budget;
        const bool primary_failed = pj.resolved && !pj.usable();
        const auto fire_at = pj.submitted + hedge_delay(s);
        if (!pj.resolved && now < fire_at) {
          if (fire_at < next_event) next_event = fire_at;
        } else if ((primary_failed && in_budget) ||
                   (!pj.resolved && now >= fire_at)) {
          sl.hedge_decided = true;
          QueryEngine* const target = !backups_.empty()
                                          ? backups_[s].get()
                                          : fallback_engine_.get();
          if (target != nullptr) {
            auto hedge = std::make_shared<SubJob>();
            hedge->engine = target;
            hedge->replica = s;
            hedge->is_primary = false;
            hedge->whole_map = backups_.empty();
            hedge->reqs = sl.primary->reqs;  // same footprint, same order
            hedge->budget = pj.budget;
            sl.hedge = hedge;
            ++delta.hedges_issued;
            {
              std::lock_guard<std::mutex> lk(rs.mutex);
              ++rs.hedges;
            }
            submit_job(hedge, waiter);
          }
        } else if (pj.resolved) {
          sl.hedge_decided = true;  // answered in time: no hedge needed
        }
      }

      if (sl.hedge && !sl.hedge->resolved) {
        SubJob& hj = *sl.hedge;
        if (hj.done.load(std::memory_order_acquire)) {
          hj.resolved = true;
          if (!pj.resolved) {
            // Hedge beat the primary: cancel the loser, and count the
            // slowness as a replica failure -- it blew through its own
            // observed-p99 budget and lost the race.
            pj.cancel.store(true, std::memory_order_relaxed);
            pj.abandoned.store(true, std::memory_order_release);
            pj.resolved = true;
            pj.lost_hedge = true;
            if (rs.breaker.on_failure(now)) ++delta.breaker_open_transitions;
          }
        } else if (hj.has_budget() && now >= hj.budget) {
          hj.cancel.store(true, std::memory_order_relaxed);
          hj.abandoned.store(true, std::memory_order_release);
          hj.resolved = true;
          hj.timed_out = true;
        } else if (hj.has_budget() && hj.budget < next_event) {
          next_event = hj.budget;
        }
      }
    }

    // Completion is derived from the post-scan state, never accumulated
    // mid-scan: the hedge-win block above resolves a primary that the
    // primary block of the *same pass* already scanned as pending, and a
    // flag frozen at scan order would read `false` here.  With the stuck
    // primary abandoned -- it exits without ever publishing an event --
    // the unbounded wait below would then never be signalled again and
    // the batch would wedge forever.
    bool all_resolved = true;
    for (std::size_t s = 0; s < shards_; ++s) {
      const RoundSlot& sl = slots[s];
      if (!sl.primary) continue;
      if (!sl.primary->resolved || (sl.hedge && !sl.hedge->resolved)) {
        all_resolved = false;
        break;
      }
    }
    if (all_resolved) return;

    std::unique_lock<std::mutex> lk(waiter->mutex);
    if (waiter->events != seen) {
      seen = waiter->events;
      continue;  // a completion landed since the scan; rescan immediately
    }
    if (next_event == Clock::time_point::max()) {
      waiter->cv.wait(lk);
    } else {
      waiter->cv.wait_until(lk, next_event);
    }
    seen = waiter->events;
  }
}

std::vector<Response> Cluster::serve(const std::vector<Request>& batch) {
  const auto t0 = Clock::now();
  const std::size_t n = batch.size();
  std::vector<Response> responses(n);

  ClusterMetrics delta;
  delta.batches = 1;
  delta.requests = n;

  // Stamp at settle time: a cache hit or gate rejection records its own
  // (short) latency, not the whole batch's wall time.
  auto settle = [&](std::size_t i, Status s) {
    responses[i].status = s;
    responses[i].latency_us = us_since(t0);
  };

  // Geometry gate before admission, like the engine.
  std::vector<Status> gate(n, Status::kOk);
  std::size_t valid = 0;
  Priority priority = Priority::kLow;
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.validate_requests) gate[i] = validate_request(batch[i]);
    if (gate[i] == Status::kOk) {
      ++valid;
      priority = std::max(priority, batch[i].priority);
    }
  }

  bool executed = false;
  if (valid > 0) {
    // RAII admission: the token and budget release on every exit path.
    AdmissionGuard admitted(admission_, valid, priority);
    if (!admitted.admitted()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (gate[i] == Status::kOk) gate[i] = Status::kShedded;
      }
    } else {
      executed = true;
      const std::uint64_t batch_seq =
          batch_seq_.fetch_add(1, std::memory_order_relaxed);
      std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
      // Version fence for cache fills: a concurrent apply_update bumps the
      // cache version after publishing its generations, so any fill
      // guarded by a version captured *before* that bump -- i.e. any fill
      // that might carry a pre-update answer -- is rejected instead of
      // resurrecting stale results the invalidation sweep already judged.
      const std::uint64_t cache_version = cache_.version();

      // Pass 1: settle dead/unsupported requests, consult the cache, and
      // route the rest into per-shard sub-batches (k-nearest to its
      // nearest-footprint shard only; the widening round follows).
      std::vector<Pending> pending;
      std::vector<std::vector<Request>> round1(shards_);
      std::vector<std::size_t> targets;
      for (std::size_t i = 0; i < n; ++i) {
        if (gate[i] != Status::kOk) {
          settle(i, gate[i]);
          continue;
        }
        const Request& rq = batch[i];
        const Status s = pre_status(rq);
        if (s != Status::kOk) {
          settle(i, s);
          continue;
        }
        if (!supported(rq)) {
          settle(i, Status::kRejected);
          continue;
        }

        Pending p;
        p.index = i;
        if (rq.bypass_cache || !cache_.enabled()) {
          if (rq.bypass_cache) ++delta.cache_bypasses;
        } else {
          p.key = ResultCache::canonical_key(rq);
          if (cache_.lookup(p.key, responses[i])) {
            ++delta.cache_hits;
            settle(i, responses[i].status);
            continue;
          }
          ++delta.cache_misses;
          p.fill_cache = true;
        }

        targets.clear();
        if (rq.kind == RequestKind::kWindow) {
          route_window(rq.window, targets);
        } else if (rq.kind == RequestKind::kPoint) {
          route_point(rq.point, targets);
        } else {
          p.knn = true;
          const std::size_t primary = primary_knn_shard(rq.point);
          if (primary < shards_) targets.push_back(primary);
        }
        for (const std::size_t shard : targets) {
          p.slots.push_back({0, shard, round1[shard].size()});
          round1[shard].push_back(rq);
        }
        pending.push_back(std::move(p));
      }
      for (const auto& sub : round1) {
        delta.routed_subrequests += sub.size();
      }
      std::vector<RoundSlot> r1(shards_);
      run_round(round1, 0, batch_seq, r1, delta);

      // Pass 2 (k-nearest only): widen to every shard whose footprint
      // MINDIST beats -- or ties, so equal-distance answers are never
      // pruned -- the primary shard's running kth-best bound.  A primary
      // answered by a whole-map hedge settles right here: that answer is
      // already the exact global top-k.
      std::vector<std::vector<Request>> round2(shards_);
      for (Pending& p : pending) {
        if (!p.knn || p.slots.empty()) continue;
        const Request& rq = batch[p.index];
        const Pending::Slot primary_slot = p.slots.front();
        RoundSlot& sl = r1[primary_slot.shard];
        const Response* first = nullptr;
        if (!sl.skipped) {
          if (sl.primary && sl.primary->usable()) {
            first = &sl.primary->rsps[primary_slot.pos];
          } else if (sl.hedge && sl.hedge->usable()) {
            p.hedged = true;
            first = &sl.hedge->rsps[primary_slot.pos];
            if (sl.hedge->whole_map && first->status == Status::kOk) {
              responses[p.index].neighbors = first->neighbors;
              ++delta.hedges_won;
              settle(p.index, Status::kOk);
              if (p.fill_cache) {
                cache_.insert(p.key, responses[p.index], cache_version);
              }
              p.settled = true;
              continue;
            }
          }
        }
        if (first == nullptr) continue;  // missing: final merge degrades
        if (first->status != Status::kOk) continue;  // settles in merge
        const double bound =
            first->neighbors.size() >= rq.k
                ? first->neighbors.back().distance2
                : std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < shards_; ++s) {
          if (s == primary_slot.shard || !shard_live(s)) continue;
          if (sharded_.plan.footprints[s].distance2(rq.point) <= bound) {
            p.slots.push_back({1, s, round2[s].size()});
            round2[s].push_back(rq);
            ++delta.knn_widened_shards;
          }
        }
      }
      for (const auto& sub : round2) {
        delta.routed_subrequests += sub.size();
      }
      std::vector<RoundSlot> r2(shards_);
      run_round(round2, 1, batch_seq, r2, delta);

      // Pass 3: merge.  Healthy shard answers merge exactly; a missing
      // answer degrades the request (whole-map oracle settle, or kPartial
      // when it opted in) instead of failing it.
      for (Pending& p : pending) {
        if (p.settled) continue;
        const Request& rq = batch[p.index];
        Response& rsp = responses[p.index];
        bool hedged = p.hedged;
        const Response* whole = nullptr;
        std::size_t missing = 0;
        Status dead = Status::kOk;
        std::vector<const Response*> parts;
        parts.reserve(p.slots.size());
        for (const Pending::Slot& slot : p.slots) {
          RoundSlot& sl = (slot.round == 0 ? r1 : r2)[slot.shard];
          const Response* r = nullptr;
          if (!sl.skipped) {
            if (sl.primary && sl.primary->usable()) {
              r = &sl.primary->rsps[slot.pos];
            } else if (sl.hedge && sl.hedge->usable()) {
              hedged = true;
              r = &sl.hedge->rsps[slot.pos];
              if (sl.hedge->whole_map && r->status == Status::kOk) whole = r;
            }
          }
          if (r == nullptr) {
            ++missing;
            continue;
          }
          if (r->status != Status::kOk) {
            // The replica *answered* with a terminal per-request status
            // (deadline expired inside the engine, cancellation): the
            // request's own condition, not a failure domain.
            if (dead == Status::kOk) dead = r->status;
            continue;
          }
          parts.push_back(r);
        }

        auto merge_parts = [&]() {
          if (p.knn) {
            for (const Response* r : parts) {
              rsp.neighbors.insert(rsp.neighbors.end(), r->neighbors.begin(),
                                   r->neighbors.end());
            }
            delta.duplicate_hits_removed += merge_neighbors(rsp.neighbors,
                                                            rq.k);
          } else {
            for (const Response* r : parts) {
              rsp.ids.insert(rsp.ids.end(), r->ids.begin(), r->ids.end());
            }
            delta.duplicate_hits_removed += merge_ids(rsp.ids);
          }
        };

        if (dead != Status::kOk) {
          rsp.ids.clear();
          rsp.neighbors.clear();
          settle(p.index, dead);
          continue;
        }
        if (whole != nullptr) {
          // A whole-map hedge answer subsumes every shard's.
          if (p.knn) {
            rsp.neighbors = whole->neighbors;
          } else {
            rsp.ids = whole->ids;
          }
          ++delta.hedges_won;
          settle(p.index, Status::kOk);
          if (p.fill_cache) cache_.insert(p.key, rsp, cache_version);
          continue;
        }
        if (missing == 0) {
          merge_parts();
          if (hedged) ++delta.hedges_won;
          settle(p.index, Status::kOk);
          if (p.fill_cache) cache_.insert(p.key, rsp, cache_version);
          continue;
        }
        delta.missing_shard_answers += missing;
        if (rq.allow_partial) {
          // Opted-in degradation: the surviving shards' exactly-merged
          // hits.  Never cached (fills happen only on the kOk paths).
          merge_parts();
          rsp.missing_shards = static_cast<std::uint32_t>(missing);
          settle(p.index, Status::kPartial);
          continue;
        }
        // Graceful degradation: the sequential whole-map oracle (exact).
        const Status pre = pre_status(rq);
        if (pre != Status::kOk) {
          rsp.ids.clear();
          rsp.neighbors.clear();
          settle(p.index, pre);
          continue;
        }
        const bool fb_ok = fallback_engine_ != nullptr &&
                           fallback_engine_->mounted_index(rq.index);
        if (!fb_ok) {
          // No fallback indexes mounted: nothing exact left to answer
          // with.
          rsp.ids.clear();
          rsp.neighbors.clear();
          settle(p.index, Status::kRejected);
          continue;
        }
        rsp.ids.clear();
        rsp.neighbors.clear();
        ++delta.degraded_fallback;
        // Degraded answers are exact but never fill the cache: a cache
        // serving traffic for an open breaker must only hold answers the
        // healthy merge path produced.
        settle(p.index, run_fallback(rq, rsp));
      }
    }
  }
  if (!executed) {
    for (std::size_t i = 0; i < n; ++i) settle(i, gate[i]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    switch (responses[i].status) {
      case Status::kOk: ++delta.ok; break;
      case Status::kDeadlineExpired: ++delta.expired; break;
      case Status::kCancelled: ++delta.cancelled; break;
      case Status::kRejected: ++delta.rejected; break;
      case Status::kShedded: ++delta.shedded; break;
      case Status::kInvalidArgument: ++delta.invalid; break;
      case Status::kPartial: ++delta.partial; break;
    }
    delta.latency.record(responses[i].latency_us);
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_ += delta;
  }
  return responses;
}

void Cluster::cancel_all() noexcept {
  cancel_.store(true, std::memory_order_relaxed);
  for (const auto& e : engines_) e->cancel_all();
  for (const auto& e : backups_) e->cancel_all();
  if (fallback_engine_ != nullptr) fallback_engine_->cancel_all();
}

void Cluster::reset_cancel() noexcept {
  cancel_.store(false, std::memory_order_relaxed);
  for (const auto& e : engines_) e->reset_cancel();
  for (const auto& e : backups_) e->reset_cancel();
  if (fallback_engine_ != nullptr) fallback_engine_->reset_cancel();
}

ClusterMetrics Cluster::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ClusterMetrics out = metrics_;
  out.cache = cache_.stats();
  out.replicas.clear();
  out.replicas.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    const ReplicaState& rs = *replica_state_[s];
    ReplicaHealth h;
    h.replica = s;
    {
      std::lock_guard<std::mutex> lk(rs.mutex);
      h.subrequests = rs.subrequests;
      h.completed = rs.completed;
      h.timeouts = rs.timeouts;
      h.crashes = rs.crashes;
      h.hedges = rs.hedges;
      h.breaker_skips = rs.breaker_skips;
      h.p99_us = rs.ledger.quantile_upper_us(0.99);
    }
    h.breaker_state = rs.breaker.state();
    h.consecutive_failures = rs.breaker.consecutive_failures();
    out.replicas.push_back(h);
  }
  return out;
}

void Cluster::reset_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = ClusterMetrics{};
}

dpv::CostModelSnapshot Cluster::share_cost_models() {
  dpv::CostModelSnapshot merged;
  const auto fold = [&merged](QueryEngine& eng) {
    dpv::merge_snapshot(merged, eng.cost_model_snapshot());
  };
  for (const auto& e : engines_) fold(*e);
  for (const auto& e : backups_) fold(*e);
  if (fallback_engine_ != nullptr) fold(*fallback_engine_);
  for (const auto& e : engines_) e->warm_cost_model(merged);
  for (const auto& e : backups_) e->warm_cost_model(merged);
  if (fallback_engine_ != nullptr) fallback_engine_->warm_cost_model(merged);
  return merged;
}

}  // namespace dps::serve
