#include "serve/admission.hpp"

#include <algorithm>
#include <condition_variable>

namespace dps::serve {

std::string_view priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "unknown";
}

struct AdmissionController::Waiter {
  Priority priority;
  std::uint64_t seq;
  std::size_t requests;
  bool shed = false;
  bool granted = false;
  std::condition_variable cv;
};

bool AdmissionController::can_start(std::size_t requests) const noexcept {
  if (running_batches_ >= opts_.max_concurrent_batches) return false;
  // An oversized batch may run alone; otherwise it must fit the budget.
  return inflight_requests_ == 0 ||
         inflight_requests_ + requests <= opts_.max_inflight_requests;
}

void AdmissionController::grant_waiters() noexcept {
  // Grant in (priority desc, arrival asc) order until the best waiter no
  // longer fits; a big batch at the head deliberately holds later arrivals
  // back instead of being starved by smaller ones slipping past it.
  for (;;) {
    Waiter* best = nullptr;
    for (Waiter* w : queue_) {
      if (best == nullptr || w->priority > best->priority ||
          (w->priority == best->priority && w->seq < best->seq)) {
        best = w;
      }
    }
    if (best == nullptr || !can_start(best->requests)) return;
    queue_.erase(std::find(queue_.begin(), queue_.end(), best));
    ++running_batches_;
    inflight_requests_ += best->requests;
    best->granted = true;
    best->cv.notify_one();
  }
}

AdmissionController::Outcome AdmissionController::admit(std::size_t requests,
                                                        Priority priority) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.offered_batches;
  if (!opts_.enabled) {
    ++stats_.admitted_batches;
    ++running_batches_;
    inflight_requests_ += requests;
    return Outcome::kAdmitted;
  }
  if (queue_.empty() && can_start(requests)) {
    ++stats_.admitted_batches;
    ++running_batches_;
    inflight_requests_ += requests;
    return Outcome::kAdmitted;
  }
  if (queue_.size() >= opts_.max_queued_batches) {
    // Waiting room full: shed the lowest-priority entrant.  Victim is the
    // lowest-priority waiter, youngest among ties; the arrival is shed
    // instead unless it strictly outranks that victim.
    Waiter* victim = nullptr;
    for (Waiter* w : queue_) {
      if (victim == nullptr || w->priority < victim->priority ||
          (w->priority == victim->priority && w->seq > victim->seq)) {
        victim = w;
      }
    }
    if (victim == nullptr || victim->priority >= priority) {
      ++stats_.shed_batches;
      stats_.shed_requests += requests;
      return Outcome::kShedded;
    }
    queue_.erase(std::find(queue_.begin(), queue_.end(), victim));
    victim->shed = true;
    ++stats_.shed_batches;
    stats_.shed_requests += victim->requests;
    victim->cv.notify_one();
  }
  Waiter self;
  self.priority = priority;
  self.seq = next_seq_++;
  self.requests = requests;
  queue_.push_back(&self);
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  // The arrival may itself be the best (and fitting) waiter -- e.g. a
  // high-priority batch arriving while a too-large head batch is parked.
  grant_waiters();
  self.cv.wait(lock, [&] { return self.shed || self.granted; });
  if (self.shed) return Outcome::kShedded;
  ++stats_.admitted_batches;
  return Outcome::kAdmitted;
}

void AdmissionController::finish(std::size_t requests) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  --running_batches_;
  inflight_requests_ -= requests;
  grant_waiters();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dps::serve
