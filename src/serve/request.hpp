#pragma once
// Request / response vocabulary for the batch-query serving engine.
//
// A Request names a query kind (window / point / k-nearest), the immutable
// index it should run against, an admission priority, and an optional
// absolute deadline.  The engine answers every request with a Response
// carrying a terminal Status; result payloads are only meaningful for kOk.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/nearest.hpp"
#include "core/pmr_build.hpp"
#include "core/rtree_build.hpp"
#include "geom/geom.hpp"

namespace dps::serve {

using Clock = std::chrono::steady_clock;

enum class RequestKind : std::uint8_t { kWindow, kPoint, kNearest };

enum class IndexKind : std::uint8_t { kQuadTree, kRTree, kLinearQuadTree };

/// Admission priority.  Under overload the engine sheds the
/// lowest-priority waiting work first; a batch's priority is the highest
/// priority of any request in it.
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

std::string_view priority_name(Priority p) noexcept;

enum class Status : std::uint8_t {
  kOk = 0,
  kDeadlineExpired,   // request deadline passed before its answer was final
  kCancelled,         // engine-wide cancel fired while the request was live
  kRejected,          // unsupported (kind, index) combo or index not mounted
  kShedded,           // load-shed by admission control; never executed
  kInvalidArgument,   // malformed geometry (NaN/inf, inverted window, k = 0)
  kPartial,           // opted-in degraded answer: the surviving shards'
                      // exactly-merged hits, with `missing_shards` failure
                      // domains unaccounted for; never cached
};

std::string_view status_name(Status s) noexcept;

struct Request {
  RequestKind kind = RequestKind::kWindow;
  IndexKind index = IndexKind::kQuadTree;
  geom::Rect window{};  // kWindow payload
  geom::Point point{};  // kPoint / kNearest payload
  std::size_t k = 1;    // kNearest answer count
  Priority priority = Priority::kNormal;
  /// Absolute deadline; nullopt = none.  Any concrete time point --
  /// including the epoch -- is a real (expired) deadline.
  std::optional<Clock::time_point> deadline;
  /// Skip the cluster's result cache for this request (both lookup and
  /// fill), so chaos and measurement runs can exercise the routed path on
  /// demand.  Ignored by a bare QueryEngine.
  bool bypass_cache = false;
  /// Opt in to graceful degradation: when a shard answer is unavailable at
  /// merge time (breaker open, replica crashed / timed out with no backup
  /// answer), accept Status::kPartial with the surviving shards' hits
  /// instead of the sequential whole-map settle.  Ignored by a bare
  /// QueryEngine (a single engine has no failure domains to lose).
  bool allow_partial = false;

  bool has_deadline() const noexcept { return deadline.has_value(); }

  static Request window_query(IndexKind idx, const geom::Rect& w) {
    Request r;
    r.kind = RequestKind::kWindow;
    r.index = idx;
    r.window = w;
    return r;
  }
  static Request point_query(IndexKind idx, const geom::Point& p) {
    Request r;
    r.kind = RequestKind::kPoint;
    r.index = idx;
    r.point = p;
    return r;
  }
  static Request nearest_query(IndexKind idx, const geom::Point& p,
                               std::size_t k) {
    Request r;
    r.kind = RequestKind::kNearest;
    r.index = idx;
    r.point = p;
    r.k = k;
    return r;
  }

  Request& with_priority(Priority p) {
    priority = p;
    return *this;
  }
  Request& with_deadline(Clock::time_point d) {
    deadline = d;
    return *this;
  }
  Request& with_bypass_cache(bool bypass = true) {
    bypass_cache = bypass;
    return *this;
  }
  Request& with_allow_partial(bool allow = true) {
    allow_partial = allow;
    return *this;
  }
};

/// One batched live-update delta.  Deletes apply before inserts, so a
/// batch may replace a line (delete id, insert its successor) atomically.
struct UpdateBatch {
  std::vector<geom::Segment> inserts;
  /// Line ids to remove; ids absent from the live map are tolerated (and
  /// reported via UpdateResult::unknown_deletes), matching pmr_delete's
  /// unknown-id-is-identity contract.
  std::vector<geom::LineId> deletes;

  bool empty() const noexcept { return inserts.empty() && deletes.empty(); }
  std::size_t size() const noexcept { return inserts.size() + deletes.size(); }
};

/// Per-update knobs for the live-update path.
struct UpdateOptions {
  /// Bucket-PMR build options of the *mounted* tree.  They must match what
  /// built the current generation: the bucket PMR shape is
  /// history-independent only under a fixed (world, capacity, depth-cap)
  /// rule, which is what makes update-vs-rebuild equivalence hold.
  core::PmrBuildOptions build;
  /// R-tree build options for the lazy sibling rebuild.
  core::RtreeBuildOptions rtree;
  /// Serving-matrix capability for a generation grown from an empty
  /// engine: keep answering R-tree / linear-quadtree requests (via the
  /// lazy per-epoch rebuild).  Generations evolved from a mounted engine
  /// always inherit the capabilities it already served.
  bool keep_rtree = true;
  bool keep_linear = true;
  /// Materialize the stale siblings into the shadow generation *before*
  /// publication (still through the shared lazy slots, so adopters reuse
  /// the builds and the lazy-rebuild counters account for them).  The
  /// update thread pays the sibling rebuilds; readers of a published
  /// generation never do.  Disable for rarely-read replicas (e.g. a
  /// degraded-path fallback) to defer the cost to first use.
  bool warm_siblings = true;
  /// Compaction trigger: once the deltas accumulated since the last full
  /// build exceed this, the update runs a from-scratch data-parallel
  /// rebuild of the surviving lines instead of an incremental
  /// insert/delete pass.  History-independence makes the two results
  /// byte-identical; compaction just resets the delta debt.  0 compacts on
  /// every update.
  std::size_t compact_after = 64;
};

/// Outcome of QueryEngine::apply_update / Cluster::apply_update.  Failed
/// updates (kInvalidArgument, or a fault-aborted shadow build answering
/// kRejected) publish nothing: readers keep the previous generation.
struct UpdateResult {
  Status status = Status::kOk;
  /// Mount epoch serving the update's generation (kOk only).
  std::uint64_t epoch = 0;
  bool compacted = false;
  std::size_t inserted = 0;
  std::size_t deleted = 0;          // known ids removed
  std::size_t unknown_deletes = 0;  // delete ids with no live line

  bool ok() const noexcept { return status == Status::kOk; }
};

struct Response {
  Status status = Status::kOk;
  std::vector<geom::LineId> ids;          // kWindow / kPoint answer
  std::vector<core::Neighbor> neighbors;  // kNearest answer
  double latency_us = 0.0;  // serve() entry -> this request's answer final
  /// Failure domains whose answer is missing from a kPartial payload
  /// (always 0 for every other status).
  std::uint32_t missing_shards = 0;
};

}  // namespace dps::serve
