#pragma once
// Bounded LRU result cache for hot query windows, with epoch-based and
// delta-scoped invalidation.
//
// Serving traffic is heavily repetitive -- the same map windows are
// requested over and over ("hot windows") -- so the cluster caches kOk
// answers keyed on the *canonicalized* request: (kind, index, geometry,
// k), with payload fields the kind does not use zeroed out (a window
// request's point and k never reach the key; -0.0 canonicalizes to 0.0).
// Two geometrically identical requests therefore share one entry no
// matter how their unused fields differ.
//
// Invalidation comes in two granularities:
//
//   * `bump_epoch` (every mount / remount) advances the epoch and drops
//     every entry, so a cached answer can never outlive the index
//     generation that produced it.
//   * `invalidate_delta` (every live update) drops only the entries whose
//     *footprint* intersects the dirty region -- the union of the update's
//     delta MBRs.  An entry's footprint over-approximates the geometry its
//     answer depends on: the window rect itself, the degenerate rect of a
//     point query, and for k-nearest the bounding rect of the disk around
//     the query point whose radius is the cached kth distance (unbounded
//     -- always dropped -- when the map held fewer than k lines).  A
//     changed segment outside the footprint can intersect neither the
//     query region nor the top-k disk, so surviving entries stay exact.
//
// Both paths advance the cache *version*, which closes the stale-fill
// race: a serve() that read the pre-update indexes passes the version it
// started from to `insert`, and the fill is rejected once an update
// intervened (a fill that raced ahead of the sweep would otherwise
// resurrect a pre-update answer inside the dirty region).
//
// The cache is a pure memo: it stores only terminal kOk payloads, never
// statuses that depend on time (deadlines) or engine state.
//
// Thread-safe; every operation takes the cache mutex (entries are small
// and the critical sections are copies, not queries).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/nearest.hpp"
#include "serve/request.hpp"

namespace dps::serve {

struct CacheOptions {
  /// Master switch; a disabled cache never hits and stores nothing.
  bool enabled = true;
  /// Entry budget; inserting beyond it evicts the least recently used
  /// entry.  0 behaves like `enabled = false`.
  std::size_t capacity = 4096;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // LRU capacity evictions
  std::uint64_t invalidations = 0;  // total entries dropped (epoch + delta)
  std::uint64_t epoch = 0;          // current index generation
  std::size_t entries = 0;          // live entries right now
  // The invalidation split the delta-scoped path exists for: entries a
  // full flush dropped vs entries dropped because their footprint met a
  // dirty region.  epoch_flush + delta_scoped == invalidations.
  std::uint64_t epoch_flush = 0;
  std::uint64_t delta_scoped = 0;
  std::uint64_t version = 0;  // bumped by every invalidation event
};

class ResultCache {
 public:
  /// Canonical cache key: the fields of a Request that determine its kOk
  /// answer, and nothing else.  Geometry doubles are carried as bit
  /// patterns (exact match semantics; -0.0 folded to 0.0).
  struct Key {
    std::uint8_t kind = 0;
    std::uint8_t index = 0;
    std::uint64_t k = 0;
    std::uint64_t g0 = 0, g1 = 0, g2 = 0, g3 = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  static Key canonical_key(const Request& rq) noexcept;

  explicit ResultCache(const CacheOptions& opts) : opts_(opts) {}

  /// True when the cache can ever hold an entry (enabled with a nonzero
  /// capacity).  A cluster skips lookup/fill -- and the hit/miss
  /// accounting -- entirely for an unusable cache.
  bool enabled() const noexcept { return usable(); }

  /// Copies the cached kOk payload for `key` into `out` (ids or
  /// neighbors, per the request kind) and refreshes its recency.  False =
  /// miss; `out` is untouched.
  bool lookup(const Key& key, Response& out);

  /// Memoizes a kOk response's payload under `key` at the current epoch.
  /// Re-inserting an existing key refreshes its payload and recency.
  void insert(const Key& key, const Response& rsp);

  /// Version-guarded fill: as `insert`, but a no-op when the cache version
  /// has moved past `if_version` -- the answer was computed against index
  /// generations an update or remount has since replaced, and memoizing it
  /// could resurrect a stale payload the sweep already dropped.
  void insert(const Key& key, const Response& rsp, std::uint64_t if_version);

  /// Advances the epoch and drops every entry of the previous one.  The
  /// cluster calls this under its exclusive mount lock, so a remount can
  /// never serve a stale answer.
  void bump_epoch();

  /// Delta-scoped invalidation: drops exactly the entries whose footprint
  /// intersects any rect of `dirty` (closed-rect semantics, like the rest
  /// of the geometry layer), plus every unbounded k-nearest entry.  Called
  /// by the cluster *after* the updated generations publish, so a
  /// concurrent reader either sees the new indexes or its stale fill is
  /// version-rejected.  Returns the number of entries dropped.  Oversized
  /// dirty lists collapse to their MBR union (still conservative).
  std::size_t invalidate_delta(const std::vector<geom::Rect>& dirty);

  std::uint64_t epoch() const;
  /// Monotonic invalidation-event counter (see the version-guarded
  /// `insert`); advanced by `bump_epoch` and `invalidate_delta`.
  std::uint64_t version() const;
  CacheStats stats() const;

 private:
  struct Entry {
    Key key;
    std::uint64_t epoch = 0;
    std::vector<geom::LineId> ids;
    std::vector<core::Neighbor> neighbors;
  };

  bool usable() const noexcept { return opts_.enabled && opts_.capacity > 0; }

  /// Answer footprint of a cached entry (see the header comment); sets
  /// `*unbounded` for a k-nearest entry holding fewer than k neighbors.
  static geom::Rect entry_footprint(const Entry& e, bool* unbounded) noexcept;

  CacheOptions opts_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // most recent first
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::uint64_t epoch_ = 0;
  std::uint64_t version_ = 0;
  CacheStats stats_;
};

}  // namespace dps::serve
