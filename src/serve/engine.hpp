#pragma once
// QueryEngine: a concurrent batch-query serving layer over the immutable
// built indexes (pointer quadtree, R-tree, linear quadtree).
//
// The engine models the traffic shape the ROADMAP aims at -- many
// independent query batches in flight at once -- on top of the paper's
// single-batch data-parallel pipelines:
//
//   * Sharding.  A served batch is split into up to `shards` contiguous
//     slices.  Each shard is one *worker session*: it runs on its own lane
//     of the engine's ThreadPool with its own serial `dpv::Context`
//     (forked via `Context::fork_serial`), so concurrent shards never race
//     on a primitive ledger.  Within a shard, requests regroup by
//     (kind, index) and each group runs the corresponding batch pipeline
//     (`batch_window_query`, `batch_point_query`) in one data-parallel
//     shot.
//   * Graceful degradation.  Groups smaller than `min_dp_batch` -- and
//     kinds/indexes with no batch pipeline (k-nearest, the linear
//     quadtree, R-tree point queries) -- fall back to per-request
//     sequential traversal; the fixed cost of the scan-model pipeline is
//     not worth paying for a handful of queries.
//   * Deadlines / cancellation.  Every request may carry an absolute
//     deadline, and the engine has a batch-wide kill switch
//     (`cancel_all`).  Both feed the `core::BatchControl` hook polled by
//     the batch pipelines between scan-model rounds.  When a group's
//     pipeline aborts, still-live requests of the group are re-run
//     sequentially so one expired request cannot void its neighbors.
//   * Metrics.  Per-shard ledgers (`PrimCounters`), stage wall-clocks, the
//     dp-vs-sequential path split, and a per-request latency histogram all
//     merge into one session ledger after each batch; `metrics()`
//     snapshots it.  The merged PrimCounters replay through
//     `dpv::MachineModel` like any other ledger.
//
// Thread-safety: `serve` may be called from any number of threads
// concurrently (launches serialize on the pool); mounted indexes must stay
// alive and unmodified while the engine exists.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/batch_query.hpp"
#include "core/linear_quadtree.hpp"
#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace dps::serve {

struct EngineOptions {
  /// Worker sessions a batch is split across (0 = one per pool lane).
  std::size_t shards = 0;
  /// OS-thread lanes of the engine's pool (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Smallest group that still runs the data-parallel batch pipeline;
  /// smaller groups degrade to per-request sequential traversal.
  std::size_t min_dp_batch = 8;
  /// dpv grain for the per-shard contexts.
  std::size_t grain = 4096;
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions opts = {});

  // Mounts an index.  Borrowed, immutable, must outlive the engine;
  // remounting replaces the previous index of that type.  Not
  // thread-safe against concurrent serve() calls -- mount before serving.
  void mount(const core::QuadTree* tree) noexcept { quad_ = tree; }
  void mount(const core::RTree* tree) noexcept { rtree_ = tree; }
  void mount(const core::LinearQuadTree* tree) noexcept { linear_ = tree; }

  std::size_t shards() const noexcept { return shards_; }
  const EngineOptions& options() const noexcept { return opts_; }

  /// Serves one batch; responses[i] answers batch[i].  Thread-safe.
  std::vector<Response> serve(const std::vector<Request>& batch);

  /// Fires the engine-wide kill switch: in-flight batch pipelines abort at
  /// their next control poll and subsequent requests answer kCancelled,
  /// until `reset_cancel`.
  void cancel_all() noexcept { cancel_.store(true, std::memory_order_relaxed); }
  void reset_cancel() noexcept {
    cancel_.store(false, std::memory_order_relaxed);
  }

  /// Snapshot of the session metrics (ledger merged up to the last
  /// completed serve() call).
  ServeMetrics metrics() const;
  void reset_metrics();

 private:
  // Per-shard scratch the worker session fills; folded into the session
  // ledger after the fork joins.
  struct ShardScratch {
    dpv::PrimCounters prims;
    StageTimes stages;
    std::uint64_t dp_groups = 0;
    std::uint64_t seq_groups = 0;
  };

  void execute_shard(const std::vector<Request>& batch,
                     std::vector<Response>& responses, Clock::time_point t0,
                     std::size_t lo, std::size_t hi, ShardScratch& scratch);

  /// kCancelled / kDeadlineExpired / kOk ("runnable") for a request now.
  Status pre_status(const Request& rq) const noexcept;

  /// Runs one request sequentially (host traversal); returns its status.
  Status run_sequential(const Request& rq, Response& rsp) const;

  EngineOptions opts_;
  std::size_t shards_ = 1;
  std::shared_ptr<dpv::ThreadPool> pool_;
  dpv::Context shard_template_;  // serial; forked per worker session

  const core::QuadTree* quad_ = nullptr;
  const core::RTree* rtree_ = nullptr;
  const core::LinearQuadTree* linear_ = nullptr;

  std::atomic<bool> cancel_{false};

  mutable std::mutex metrics_mutex_;
  dpv::Context session_;  // serial; its counters are the session ledger
  ServeMetrics metrics_;
};

}  // namespace dps::serve
