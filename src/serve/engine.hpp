#pragma once
// QueryEngine: a concurrent, overload-safe batch-query serving layer over
// the immutable built indexes (pointer quadtree, R-tree, linear quadtree).
//
// The engine models the traffic shape the ROADMAP aims at -- many
// independent query batches in flight at once -- on top of the paper's
// single-batch data-parallel pipelines:
//
//   * Admission control.  Every serve() call passes an AdmissionController
//     first: a bounded batch-concurrency budget, a bounded in-flight
//     request budget, and a priority-aware bounded waiting room.  Under
//     overload the lowest-priority entrant is load-shed with
//     Status::kShedded (never a wrong answer); admitted work keeps
//     bounded latency.  Disabled by default for drop-in compatibility.
//   * Validation.  Malformed geometry (NaN/inf coordinates, inverted or
//     zero-area windows, k-nearest with k = 0) is rejected per request
//     with Status::kInvalidArgument before admission, via the typed
//     `core::validate_*` boundary checks.
//   * Sharding.  A served batch is split into up to `shards` contiguous
//     slices.  Each shard is one *worker session*: it runs on its own lane
//     of the engine's ThreadPool with its own serial `dpv::Context`
//     (forked via `Context::fork_serial`), so concurrent shards never race
//     on a primitive ledger.  Within a shard, requests regroup by
//     (kind, index) and each group runs the corresponding batch pipeline
//     (`batch_window_query`, `batch_point_query`) in one data-parallel
//     shot.
//   * Retry with backoff.  When a group's data-parallel attempt aborts on
//     an injected fault (or a poisoned shard attempt), surviving requests
//     retry up to `max_retries` more times behind exponential backoff with
//     deterministic jitter; a group that exhausts its attempts degrades to
//     the per-request sequential path, which is fault-free by
//     construction -- answers stay correct under any fault schedule.
//     Deadline / cancellation aborts skip straight to the sequential
//     settle, as before.
//   * Fault injection.  An optional borrowed `dpv::FaultInjector` is
//     threaded into every shard attempt's context (primitive failures,
//     scope = (shard, attempt)) and into the engine pool (lane stalls),
//     so chaos schedules replay bit-identically: same seed, same
//     responses, same retry metrics, on serial and thread-pool backends.
//   * Oracular dispatch.  Every supported (kind, index) combination --
//     (window/point) x (quadtree / linear-quadtree / R-tree) and
//     k-nearest x (quadtree / R-tree) -- has a data-parallel batch
//     pipeline, but whether a group takes it is decided by an online
//     `dpv::CostModel`: measured wall-clock per (kind x index x
//     map-density x batch-size bucket) picks dp vs sequential per group,
//     k-nearest groups may *split* (small-k tail sequential, bulk dp),
//     and `min_dp_batch` survives only as the model's bootstrap prior.
//     `EngineOptions::dispatch` offers escape hatches: the legacy static
//     threshold (fully deterministic) and force-dp / force-seq.
//   * Scratch arenas.  Each shard owns a persistent `dpv::Arena`; the
//     batch pipelines open a round scope on it, so a steady-state shard
//     recycles the previous batch's scratch buffers and allocates nothing
//     (`EngineOptions::scratch_arena`, on by default).
//   * Deadlines / cancellation.  Every request may carry an absolute
//     deadline, and the engine has a batch-wide kill switch
//     (`cancel_all`).  Both feed the `core::BatchControl` hook polled by
//     the batch pipelines between scan-model rounds.
//   * Metrics.  Per-shard ledgers (`PrimCounters`), stage wall-clocks, the
//     dp-vs-sequential path split, retry/fallback counts, and a
//     per-request latency histogram all merge into one session ledger
//     after each batch; `metrics()` snapshots it.
//
// Thread-safety and index generations: the engine serves from an
// immutable *index generation* (IndexGen) -- the active quadtree /
// R-tree / linear-quadtree set -- published through an RCU-style pointer
// swap.  Every serve() pins the current generation (one shared_ptr copy)
// before touching an index and reads only that snapshot for the whole
// batch, so a reader never blocks on a writer and never observes a torn
// index set.  Two kinds of writers publish generations:
//
//   * `mount` -- borrowed, externally built indexes.  Still takes the
//     mount lock exclusively (serve() holds it shared), because a caller
//     that mounts may destroy the *previous* borrowed index immediately
//     after, and every pinned snapshot referencing it must have drained
//     first (asserted in debug builds via an in-flight counter).
//   * `apply_update` -- batched insert/delete deltas applied data-parallel
//     (`pmr_insert` / `pmr_delete`) to a shadow copy of the pinned
//     generation, then published as a pointer swap.  Updated generations
//     own their indexes (shared_ptr), so publication never waits for
//     readers: the old generation is freed when its last pinner drops it.
//     The R-tree and linear quadtree have no update path; an updated
//     generation marks them stale and rebuilds them lazily on first use
//     within that generation (recorded in metrics), keeping the serving
//     matrix complete.  Accumulated deltas past
//     `UpdateOptions::compact_after` trigger a full data-parallel rebuild
//     of the surviving lines -- byte-identical to the incremental result
//     by the bucket PMR's history-independence -- which resets the delta
//     debt.  A fault-aborted shadow build publishes nothing.
//
// Every published generation advances the monotonically increasing
// `mount_epoch()`, which cache layers stacked on top (see serve::Cluster /
// ResultCache) consume to invalidate results produced by older index
// generations.  Mounted (borrowed) indexes must stay alive and unmodified
// while any generation referencing them can be pinned.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/batch_query.hpp"
#include "core/linear_quadtree.hpp"
#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "serve/admission.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace dps::serve {

/// One immutable index generation (defined in engine.cpp): the active
/// index pointers plus ownership, staleness, and lazy-rebuild state.
struct IndexGen;

/// A built-but-unpublished index generation: the outcome of
/// `QueryEngine::prepare_update`.  `publish_update` swaps it in; dropping
/// it abandons the shadow build with no observable effect.  The split
/// exists so a multi-shard caller (serve::Cluster) can build every shard's
/// shadow first and only then publish them back-to-back.
struct PreparedUpdate {
  Status status = Status::kOk;
  bool compacted = false;
  std::size_t inserted = 0;
  std::size_t deleted = 0;          // known ids removed
  std::size_t unknown_deletes = 0;  // delete ids with no live line
  /// MBRs of the applied deltas (inserted segments + removed geometry):
  /// the dirty region delta-scoped cache invalidation sweeps against.
  std::vector<geom::Rect> dirty;
  /// The shadow generation; null when nothing needs publishing (a failed
  /// or no-op update).
  std::shared_ptr<IndexGen> gen;

  bool ok() const noexcept { return status == Status::kOk; }
};

/// How a request group picks the data-parallel pipeline vs the sequential
/// path.
enum class DispatchMode {
  /// Online `dpv::CostModel`: measured per-family coefficients decide, with
  /// `min_dp_batch` as the unmeasured bootstrap prior; k-nearest groups may
  /// split hybrid (small-k tail sequential, bulk dp).
  kModel,
  /// Legacy static threshold: dp iff the group has >= `min_dp_batch` live
  /// requests.  Fully deterministic (chaos replay tests pin this).
  kStatic,
  /// Every group takes the dp pipeline regardless of size.
  kForceDp,
  /// Every group walks the sequential path.
  kForceSeq,
};

struct EngineOptions {
  /// Worker sessions a batch is split across (0 = one per pool lane).
  std::size_t shards = 0;
  /// OS-thread lanes of the engine's pool (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Bootstrap prior of the dispatch cost model (and the exact threshold
  /// under DispatchMode::kStatic): until a family has measurements, groups
  /// at least this large take the data-parallel pipeline.
  std::size_t min_dp_batch = 8;
  /// Dispatch policy; kModel unless a test or A/B needs an escape hatch.
  DispatchMode dispatch = DispatchMode::kModel;
  /// Cost-model tuning.  `bootstrap_min_dp_batch` is overwritten with
  /// `min_dp_batch` at engine construction (one knob, not two).
  dpv::CostModelOptions cost_model;
  /// dpv grain for the per-shard contexts.
  std::size_t grain = 4096;

  /// Overload protection (disabled by default).
  AdmissionOptions admission;

  /// Extra data-parallel attempts after a fault-aborted one, before a
  /// group degrades to the sequential path.
  std::size_t max_retries = 2;
  /// Backoff before retry r sleeps `backoff_base * 2^r`, scaled by a
  /// deterministic jitter in [1 - backoff_jitter, 1 + backoff_jitter)
  /// derived from (retry_seed, shard, attempt).
  std::chrono::microseconds backoff_base{50};
  double backoff_jitter = 0.5;
  std::uint64_t retry_seed = 0;

  /// Reject malformed request geometry with kInvalidArgument (on by
  /// default; turning it off trades safety for a few ns per request).
  bool validate_requests = true;

  /// Persistent per-shard scratch arenas for the batch pipelines (zero
  /// steady-state allocations; off only for A/B measurement).
  bool scratch_arena = true;

  /// Borrowed chaos hook; null = no injection.  Must outlive the engine.
  dpv::FaultInjector* fault_injector = nullptr;
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions opts = {});
  ~QueryEngine();

  // Mounts an index.  Borrowed, immutable, must outlive every generation
  // that references it; remounting replaces the previous index of that
  // type (nullptr unmounts).  Takes the mount lock exclusively: blocks
  // until in-flight serve() calls finish, so the caller may destroy the
  // replaced index as soon as mount() returns (debug builds assert no
  // serve() is in flight once the lock is held).  Mounting a quadtree
  // resets the accumulated update-delta debt; the other two kinds clear
  // their staleness (an explicit mount replaces the lazy rebuild).  Each
  // call advances `mount_epoch()`.
  void mount(const core::QuadTree* tree);
  void mount(const core::RTree* tree);
  void mount(const core::LinearQuadTree* tree);

  /// Applies one insert/delete delta batch to the current generation and
  /// publishes the result as a new generation (see the header comment).
  /// Reads never block: concurrent serve() calls keep answering from
  /// whichever generation they pinned.  Insert ids must not collide with
  /// live lines (net of this batch's deletes) or each other --
  /// `kInvalidArgument` otherwise, like malformed insert geometry.  A
  /// fault-aborted shadow build answers kRejected and publishes nothing.
  /// Concurrent apply_update calls serialize; do not call mount()
  /// concurrently (the cluster serializes the two through its own mount
  /// lock).
  UpdateResult apply_update(const UpdateBatch& batch,
                            const UpdateOptions& opts);

  /// Two-phase form: builds the shadow generation without publishing it.
  /// Between prepare and publish the caller must keep other updates and
  /// mounts off this engine (serve::Cluster's update mutex does).
  PreparedUpdate prepare_update(const UpdateBatch& batch,
                                const UpdateOptions& opts);
  /// Publishes a prepared generation (pointer swap + epoch bump; no-op for
  /// a failed or empty preparation).  Returns the resulting mount epoch.
  std::uint64_t publish_update(PreparedUpdate&& prepared);

  /// Adopts `from`'s current generation as this engine's (shared immutable
  /// storage, including the lazy-rebuild slots) -- how a cluster backup
  /// replica tracks its primary across updates without duplicating the
  /// data-parallel work.  Advances this engine's mount epoch.
  void adopt_generation(const QueryEngine& from);

  /// True when the current generation can answer `index` requests --
  /// mounted, or stale-but-lazily-rebuildable after an update.
  bool mounted_index(IndexKind index) const;

  /// Runs one request sequentially against the current generation (the
  /// exact host-traversal oracle; no admission, validation, or metrics).
  /// The cluster's degraded settle path.  kRejected when the generation
  /// cannot answer the (kind, index) combination.
  Status run_oracle(const Request& rq, Response& rsp) const;

  /// Leaf-decomposition fingerprint of the current generation's quadtree
  /// ("" when none is mounted) -- how the differential suite asserts
  /// update-vs-rebuild history-independence at serve scope.
  std::string quad_fingerprint() const;

  /// Monotonically increasing mount generation: 0 before the first mount,
  /// +1 per mount()/remount.  A result computed at epoch e is stale once
  /// `mount_epoch() != e`; the cluster's ResultCache keys its
  /// invalidation on exactly this counter.
  std::uint64_t mount_epoch() const noexcept {
    return mount_epoch_.load(std::memory_order_acquire);
  }

  std::size_t shards() const noexcept { return shards_; }
  const EngineOptions& options() const noexcept { return opts_; }

  /// Serves one batch; responses[i] answers batch[i].  Thread-safe.
  std::vector<Response> serve(const std::vector<Request>& batch);

  /// As above, with a per-call cancel hook: once `*cancel` turns true the
  /// batch aborts at its next control poll and still-live requests settle
  /// kCancelled, independently of the engine-wide kill switch.  The
  /// cluster's hedged dispatch cancels the losing subrequest through this.
  /// `cancel` must outlive the call; nullptr behaves like the plain
  /// overload.
  std::vector<Response> serve(const std::vector<Request>& batch,
                              const std::atomic<bool>* cancel);

  /// Fires the engine-wide kill switch: in-flight batch pipelines abort at
  /// their next control poll and subsequent requests answer kCancelled,
  /// until `reset_cancel`.
  void cancel_all() noexcept { cancel_.store(true, std::memory_order_relaxed); }
  void reset_cancel() noexcept {
    cancel_.store(false, std::memory_order_relaxed);
  }

  /// Snapshot of the session metrics (ledger merged up to the last
  /// completed serve() call).
  ServeMetrics metrics() const;
  void reset_metrics();

  /// Admission-gate counters (offered / admitted / shed batches).
  AdmissionStats admission_stats() const { return admission_.stats(); }

  /// Learned dispatch coefficients.  The model persists across mount
  /// epochs: cells are keyed by map-density bucket, so a remount of a
  /// different-sized map reads and trains its own cells while the old
  /// epoch's stay warm for a mount back.
  dpv::CostModelSnapshot cost_model_snapshot() const {
    return cost_model_.snapshot();
  }

  /// Installs coefficients (better-trained entry per cell wins) -- how
  /// Cluster replicas warm from each other's ledgers, and how tests force
  /// exact coefficients.
  void warm_cost_model(const dpv::CostModelSnapshot& snap) {
    cost_model_.warm(snap);
  }

  /// Sum of the per-shard scratch-arena statistics (all zero when
  /// `scratch_arena` is off).  Call between batches: the arenas belong to
  /// in-flight shards while a serve() executes.
  dpv::ArenaStats arena_stats() const noexcept {
    dpv::ArenaStats sum;
    for (const auto& a : arenas_) {
      const dpv::ArenaStats& s = a->stats();
      sum.mallocs += s.mallocs;
      sum.hits += s.hits;
      sum.round_mallocs += s.round_mallocs;
      sum.rounds += s.rounds;
      sum.live_blocks += s.live_blocks;
      sum.bytes_reserved += s.bytes_reserved;
    }
    return sum;
  }

 private:
  // Per-shard scratch the worker session fills; folded into the session
  // ledger after the fork joins.
  struct ShardScratch {
    dpv::PrimCounters prims;
    StageTimes stages;
    std::uint64_t dp_groups = 0;
    std::uint64_t seq_groups = 0;
    std::uint64_t hybrid_groups = 0;
    std::uint64_t retries = 0;
    std::uint64_t seq_fallbacks = 0;
  };

  void execute_shard(const IndexGen& gen, const std::vector<Request>& batch,
                     const std::vector<Status>& admitted,
                     std::vector<Response>& responses, Clock::time_point t0,
                     std::size_t shard, std::size_t lo, std::size_t hi,
                     const std::atomic<bool>* xcancel, ShardScratch& scratch);

  /// Routes one live (kind, index) group per `opts_.dispatch`: dp, seq, or
  /// (k-nearest under the model) a hybrid per-k-bucket split.  Feeds the
  /// cost model with measured wall-clock when no fault injector is armed.
  void dispatch_group(const IndexGen& gen, const std::vector<Request>& batch,
                      std::vector<Response>& responses, RequestKind kind,
                      IndexKind index, const std::vector<std::size_t>& live,
                      std::size_t shard, const std::atomic<bool>* xcancel,
                      ShardScratch& scratch);

  /// One (kind, index) group: data-parallel attempts with retry/backoff,
  /// then the sequential settle.  `live` holds batch indexes still
  /// runnable.  Returns counters via `scratch`; when `dp_us` is non-null
  /// and a dp attempt succeeds, writes that attempt's wall-clock
  /// microseconds (marshaling included) for the cost model.
  void run_group(const IndexGen& gen, const std::vector<Request>& batch,
                 std::vector<Response>& responses, RequestKind kind,
                 IndexKind index, const std::vector<std::size_t>& live,
                 std::size_t shard, const std::atomic<bool>* xcancel,
                 ShardScratch& scratch, double* dp_us = nullptr);

  /// Element count (or the best stale-generation estimate) of the index
  /// behind `index` in `gen`; the cost model's map-density input.  Never
  /// forces a lazy rebuild.
  std::size_t index_elements(const IndexGen& gen,
                             IndexKind index) const noexcept;

  /// The cost model's view of a group of `n` requests (mean_k = 0 for
  /// non-k-nearest kinds).
  dpv::GroupShape group_shape(const IndexGen& gen, RequestKind kind,
                              IndexKind index, std::size_t n,
                              std::size_t mean_k) const noexcept;

  /// kCancelled / kDeadlineExpired / kOk ("runnable") for a request now.
  Status pre_status(const Request& rq,
                    const std::atomic<bool>* xcancel) const noexcept;

  /// Runs one request sequentially (host traversal); returns its status.
  Status run_sequential(const IndexGen& gen, const Request& rq,
                        Response& rsp) const;

  /// Deterministic backoff sleep before dp attempt `attempt` of `shard`.
  void backoff(std::size_t shard, std::size_t attempt) const;

  /// Pins the current generation (one shared_ptr copy under gen_mutex_).
  std::shared_ptr<const IndexGen> snapshot_gen() const;
  /// Swaps in `next` and advances the mount epoch; returns the new epoch.
  /// When `park` is set the replaced generation is retired on the writer
  /// side (RCU-style reclamation: the reader that unpins a generation
  /// last must never pay its index destruction); adopt-path publishes
  /// pass false because the owning engine already parked it.
  std::uint64_t publish_gen(std::shared_ptr<const IndexGen> next,
                            bool park = true);

  /// The generation's R-tree / linear quadtree, lazily rebuilt on first
  /// use when the generation marks them stale (counted in metrics);
  /// nullptr when the generation has no such capability.
  const core::RTree* resolve_rtree(const IndexGen& gen) const;
  const core::LinearQuadTree* resolve_linear(const IndexGen& gen) const;

  /// Shadow-build phase of apply_update; caller holds `update_mutex_` and
  /// the shared mount lock.
  PreparedUpdate do_prepare(const UpdateBatch& batch,
                            const UpdateOptions& opts);

  EngineOptions opts_;
  std::size_t shards_ = 1;
  std::shared_ptr<dpv::ThreadPool> pool_;
  dpv::Context shard_template_;  // serial; forked per worker session
  // Persistent per-shard scratch arenas (empty when scratch_arena is off).
  // unique_ptr: blocks reference their arena by address, so an arena must
  // never move.
  std::vector<std::unique_ptr<dpv::Arena>> arenas_;

  // The published index generation, swapped RCU-style: writers build a
  // new IndexGen and swap the pointer; readers pin it with one shared_ptr
  // copy.  gen_mutex_ guards only the pointer (a handful of instructions),
  // so publication never blocks behind an executing batch.
  std::shared_ptr<const IndexGen> gen_;
  mutable std::mutex gen_mutex_;
  // Retired generations parked until every pinned reader drains (swept on
  // each publish; at most the last one lingers until the next publish or
  // engine destruction).
  std::vector<std::shared_ptr<const IndexGen>> retired_;
  std::mutex retired_mutex_;
  // Serializes apply_update callers (two concurrent shadows would race
  // each other's publication and lose one delta).
  std::mutex update_mutex_;
  // Deterministic fault-scope coordinate for update shadow builds.
  std::atomic<std::uint64_t> update_seq_{0};
  // Lazy sibling rebuilds happen on the (const) read path; counted here
  // and surfaced through metrics().
  mutable std::atomic<std::uint64_t> lazy_rtree_builds_{0};
  mutable std::atomic<std::uint64_t> lazy_linear_builds_{0};

  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> mount_epoch_{0};
  // Counts serve() calls holding the shared mount lock; mount() asserts it
  // is zero once it holds the lock exclusively (the serialization
  // contract, made checkable).  Declared unconditionally -- only the
  // updates are NDEBUG-gated -- so the class layout does not depend on the
  // build type: a consumer compiled without NDEBUG against a Release
  // library (or vice versa) must see the same member offsets.
  mutable std::atomic<std::int64_t> debug_in_flight_{0};

  AdmissionController admission_;
  // Online dispatch estimator (internally synchronized; shards decide and
  // observe concurrently).  Outlives every mount epoch.
  dpv::CostModel cost_model_;
  // serve() holds this shared for a batch's execution; mount() holds it
  // exclusive, so index swaps serialize against in-flight batches.
  mutable std::shared_mutex mount_mutex_;

  mutable std::mutex metrics_mutex_;
  dpv::Context session_;  // serial; its counters are the session ledger
  ServeMetrics metrics_;
};

}  // namespace dps::serve
