#pragma once
// serve::Cluster: spatially-sharded multi-engine serving with a
// hot-window result cache.
//
//                      request batch
//                           |
//            validation + cluster-door admission
//          (kShedded is a refusal, never a wrong answer)
//                           |
//                      ResultCache
//        bounded LRU on canonicalized (kind, index, geometry, k);
//          epoch-invalidated on every mount; per-request bypass
//                           |
//                     spatial router
//      window/point -> every shard whose footprint meets the query
//      k-nearest    -> two-phase: nearest footprint first, then every
//                      shard whose MINDIST beats the running kth bound
//               .-----------+-----------.
//               engine 0  engine 1  ...  engine N-1
//        one QueryEngine replica per spatial shard, mounted with the
//        indexes built over that shard's core::shard_segments slice
//        (boundary-crossing segments cloned into every shard touched)
//               '-----------+-----------'
//                      exact merge
//        sorted-union duplicate deletion of cloned-segment hits;
//             global (distance^2, id) re-rank for k-nearest
//
// Correctness bar: the merged answer is *exactly* the single-engine
// answer -- same ids, same distances^2, same tie order -- for every
// request kind, any shard count, cache on or off (the augmented-map
// partition-and-merge exactness of Sun & Blelloch, with Hoel & Samet's
// regular decomposition as the partition).  Why it holds:
//
//   * Window/point: a result segment intersects the query region, so some
//     point of that intersection lies in a routed footprint, and the
//     cloning rule guarantees the segment lives in that footprint's
//     shard.  Per-shard answers are sorted unique id lists; the merge is
//     a sorted union that deletes cloned duplicates.
//   * k-nearest: the closest point of any global top-k segment lies in
//     some footprint F, so MINDIST(F, q) <= that distance <= the running
//     kth bound, and the widening phase (<=, so distance ties are never
//     pruned) consults F.  Per-shard top-k lists re-rank globally by
//     (distance^2, id) -- the same canonical order core::k_nearest
//     produces -- then truncate to k after deleting cloned hits.
//
// Each replica keeps QueryEngine's full PR-2 semantics: per-shard
// retry-with-backoff under injected faults, sequential settle, and
// deterministic chaos replay (poison one replica via
// ClusterOptions::replica_fault_injectors and the cluster still converges
// to exact answers).  Admission happens once at the cluster door, not per
// replica.  Thread-safety matches QueryEngine: serve() from any number of
// threads; mount() serializes against in-flight batches and advances the
// cache epoch before any new request can hit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/linear_quadtree.hpp"
#include "core/pmr_build.hpp"
#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "core/rtree_build.hpp"
#include "core/shard_segments.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"

namespace dps::serve {

struct ClusterOptions {
  /// Spatial shards = QueryEngine replicas (0 is clamped to 1).
  std::size_t shards = 2;
  /// Template for every replica (threads, min_dp_batch, retries, ...).
  /// Replica admission stays whatever the template says -- the cluster
  /// gates at its own door, so leave it disabled unless you want both.
  EngineOptions engine;
  /// Hot-window result cache in front of the router.
  CacheOptions cache;
  /// Cluster-door admission (disabled by default, like the engine's).
  AdmissionOptions admission;
  /// Reject malformed request geometry before admission.
  bool validate_requests = true;
  /// Optional per-replica chaos hooks (index = shard); shorter than
  /// `shards` means the tail gets none.  Overrides `engine.fault_injector`
  /// for the replicas it names; entries may be null.  Must outlive the
  /// cluster.
  std::vector<dpv::FaultInjector*> replica_fault_injectors;
};

struct ClusterMountOptions {
  /// Side of the map square [0, world]^2; also the shard-plan extent.
  double world = 1.0;
  /// Per-shard bucket-PMR build (its `world` is overwritten with `world`).
  core::PmrBuildOptions quad;
  /// Per-shard R-tree build.
  core::RtreeBuildOptions rtree;
  /// Also derive the linear quadtree of every shard (off = linear-quadtree
  /// requests answer kRejected, as on an engine without one mounted).
  bool build_linear = true;
};

struct ClusterMetrics {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;

  // Terminal statuses (same taxonomy as ServeMetrics).
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shedded = 0;
  std::uint64_t invalid = 0;

  // Cache-path split, counted at the cluster door.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;  // requests that asked to skip it

  // Routing accounting.
  std::uint64_t routed_subrequests = 0;   // shard-local requests dispatched
  std::uint64_t knn_widened_shards = 0;   // phase-2 shards consulted
  std::uint64_t duplicate_hits_removed = 0;  // cloned hits merged away

  /// Cache-internal snapshot (evictions, invalidations, current epoch);
  /// taken at metrics() time, not reset by reset_metrics().
  CacheStats cache;

  ClusterMetrics& operator+=(const ClusterMetrics& other) noexcept;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Shards `lines` over the k-way plan of [0, world]^2, builds every
  /// non-empty shard's quadtree / R-tree / linear quadtree, and mounts
  /// them on that shard's replica.  Serializes against in-flight serve()
  /// calls (exclusive mount lock) and advances the cache epoch, so no
  /// answer computed against the previous map survives the remount.
  void mount(const std::vector<geom::Segment>& lines,
             const ClusterMountOptions& opts);

  /// Serves one batch; responses[i] answers batch[i] exactly as a single
  /// engine mounted over the whole map would.  Thread-safe.
  std::vector<Response> serve(const std::vector<Request>& batch);

  std::size_t shards() const noexcept { return shards_; }
  const core::ShardPlan& plan() const noexcept { return sharded_.plan; }
  /// Segments assigned to `shard` (clones included); 0 for empty shards.
  std::size_t shard_segment_count(std::size_t shard) const noexcept {
    return shard < sharded_.shards.size() ? sharded_.shards[shard].size() : 0;
  }
  /// Replica access (per-engine metrics, arena stats, ...).
  QueryEngine& engine(std::size_t shard) { return *engines_[shard]; }
  const QueryEngine& engine(std::size_t shard) const {
    return *engines_[shard];
  }

  /// Cluster-wide mount generation (mirrors the cache epoch).
  std::uint64_t mount_epoch() const noexcept {
    return mount_epoch_.load(std::memory_order_acquire);
  }

  void cancel_all() noexcept;
  void reset_cancel() noexcept;

  ClusterMetrics metrics() const;
  void reset_metrics();
  AdmissionStats admission_stats() const { return admission_.stats(); }

 private:
  struct ShardIndexes {
    core::QuadTree quad;
    core::RTree rtree;
    core::LinearQuadTree linear;
    bool empty = true;
  };

  /// Per-request routing/merging state for one serve() call.
  struct Pending;

  Status pre_status(const Request& rq) const noexcept;
  bool supported(const Request& rq) const noexcept;  // under mount lock

  /// Runs every non-empty per-shard sub-batch on its replica (replicas in
  /// parallel when more than one has work) and returns per-shard
  /// responses.
  std::vector<std::vector<Response>> dispatch(
      std::vector<std::vector<Request>>& sub);

  /// Shards whose footprint the window/point touches.
  void route_window(const geom::Rect& window,
                    std::vector<std::size_t>& out) const;
  void route_point(const geom::Point& p, std::vector<std::size_t>& out) const;
  /// Non-empty shard with the smallest footprint MINDIST to `p` (lowest
  /// index among ties); shards_ when every shard is empty.
  std::size_t primary_knn_shard(const geom::Point& p) const;

  ClusterOptions opts_;
  std::size_t shards_ = 1;
  std::vector<std::unique_ptr<QueryEngine>> engines_;

  // Mounted state, guarded by mount_mutex_ (serve() shared, mount()
  // exclusive -- the same discipline QueryEngine uses).
  core::ShardedSegments sharded_;
  std::vector<ShardIndexes> indexes_;
  bool mounted_ = false;
  bool linear_mounted_ = false;
  mutable std::shared_mutex mount_mutex_;

  ResultCache cache_;
  AdmissionController admission_;
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> mount_epoch_{0};

  mutable std::mutex metrics_mutex_;
  ClusterMetrics metrics_;
};

}  // namespace dps::serve
