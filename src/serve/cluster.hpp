#pragma once
// serve::Cluster: spatially-sharded multi-engine serving with a
// hot-window result cache and failure-domain-aware dispatch.
//
//                      request batch
//                           |
//            validation + cluster-door admission
//          (kShedded is a refusal, never a wrong answer)
//                           |
//                      ResultCache
//        bounded LRU on canonicalized (kind, index, geometry, k);
//          epoch-invalidated on every mount; per-request bypass
//                           |
//                     spatial router
//      window/point -> every shard whose footprint meets the query
//      k-nearest    -> two-phase: nearest footprint first, then every
//                      shard whose MINDIST beats the running kth bound
//                           |
//                async dispatcher (deadline budgets)
//        persistent pool, merge-on-arrival; a subrequest that outlives
//        its budget is abandoned (late replies dropped, never joined on)
//           .-----------.-----+-----.------------.
//           engine 0    engine 1    ...          engine N-1
//             |  hedge    |  hedge                 |  hedge
//             v           v                        v
//           backup 0    backup 1    ...          backup N-1
//            (same footprint; p99-delayed re-issue, first kOk wins)
//               \           |                    /
//                '----- whole-map fallback engine
//          (hedge target when no backup; sequential oracle settle
//           when a shard answer is missing at merge time)
//                           |
//                      exact merge
//        sorted-union duplicate deletion of cloned-segment hits;
//             global (distance^2, id) re-rank for k-nearest
//
// Correctness bar: the merged answer is *exactly* the single-engine
// answer -- same ids, same distances^2, same tie order -- for every
// request kind, any shard count, cache on or off (the augmented-map
// partition-and-merge exactness of Sun & Blelloch, with Hoel & Samet's
// regular decomposition as the partition).  Why it holds:
//
//   * Window/point: a result segment intersects the query region, so some
//     point of that intersection lies in a routed footprint, and the
//     cloning rule guarantees the segment lives in that footprint's
//     shard.  Per-shard answers are sorted unique id lists; the merge is
//     a sorted union that deletes cloned duplicates.
//   * k-nearest: the closest point of any global top-k segment lies in
//     some footprint F, so MINDIST(F, q) <= that distance <= the running
//     kth bound, and the widening phase (<=, so distance ties are never
//     pruned) consults F.  Per-shard top-k lists re-rank globally by
//     (distance^2, id) -- the same canonical order core::k_nearest
//     produces -- then truncate to k after deleting cloned hits.
//
// Failure domains (each shard's replica is one): a replica that stalls,
// wedges, or crashes costs bounded latency, never a wrong answer.
// Hedged answers are exact -- a backup replica is mounted over the same
// shard footprint, and the whole-map fallback engine subsumes every
// footprint -- so hedging never changes a payload, only when it arrives.
// When no answer for a shard exists at merge time (breaker open, crash /
// timeout with no winning hedge), the request settles either via the
// sequential whole-map oracle (still exact) or, when it opted in through
// Request::allow_partial, as Status::kPartial carrying the surviving
// shards' exactly-merged hits plus a missing_shards count.  kPartial and
// fallback-settled responses are never inserted into the ResultCache.
//
// Each replica keeps QueryEngine's full PR-2 semantics: per-shard
// retry-with-backoff under injected faults, sequential settle, and
// deterministic chaos replay.  Replica-level faults (stall / stuck /
// crash, ClusterOptions::replica_fault_injectors) are decided purely from
// (seed, replica, dispatch scope), so the *set* of faulted subrequests
// replays bit-identically even though hedge firing times vary; answers
// are timing-independent because every path is exact.  Admission happens
// once at the cluster door, not per replica.  Thread-safety matches
// QueryEngine: serve() from any number of threads; mount() serializes
// against in-flight batches (replicas are remounted *before* the previous
// index generation is destroyed, so even an abandoned straggler can never
// traverse freed trees) and advances the cache epoch before any new
// request can hit.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/linear_quadtree.hpp"
#include "core/pmr_build.hpp"
#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "core/rtree_build.hpp"
#include "core/shard_segments.hpp"
#include "serve/admission.hpp"
#include "serve/breaker.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace dps::serve {

/// Hedged subrequests: when a replica has not answered within a delay
/// derived from its own observed latency, re-issue the subrequest to that
/// shard's backup replica (or the whole-map fallback engine when no
/// backup is mounted).  First kOk answer wins; the loser is cancelled
/// through the engine's per-call BatchControl hook.
struct HedgeOptions {
  bool enabled = false;
  /// Ledger quantile the hedge delay tracks (the sptl-style measured
  /// control: observed behaviour, not a hand-set constant).
  double quantile = 0.99;
  /// Completed subrequests a replica's ledger needs before its quantile
  /// is trusted; until then `initial_delay` is used.
  std::uint64_t min_samples = 16;
  std::chrono::microseconds initial_delay{2'000};
  /// Clamp on the derived delay (a replica that got very fast must not
  /// hedge on noise; a very slow one must still hedge eventually).
  std::chrono::microseconds min_delay{200};
  std::chrono::microseconds max_delay{100'000};
};

struct ClusterOptions {
  /// Spatial shards = QueryEngine replicas (0 is clamped to 1).
  std::size_t shards = 2;
  /// Template for every replica (threads, min_dp_batch, retries, ...).
  /// Replica admission stays whatever the template says -- the cluster
  /// gates at its own door, so leave it disabled unless you want both.
  EngineOptions engine;
  /// Hot-window result cache in front of the router.
  CacheOptions cache;
  /// Cluster-door admission (disabled by default, like the engine's).
  AdmissionOptions admission;
  /// Reject malformed request geometry before admission.
  bool validate_requests = true;
  /// Delta-scoped cache invalidation: apply_update drops only the cached
  /// entries whose canonical footprint intersects the update's dirty
  /// region (union of delta MBRs), so warm entries over untouched areas
  /// keep hitting.  Off = every update flushes the whole cache
  /// (bump_epoch), the conservative A/B baseline.
  bool delta_cache_invalidation = true;
  /// Per-replica compaction trigger forwarded to UpdateOptions: once a
  /// shard's accumulated deltas exceed this, its next update runs a full
  /// data-parallel rebuild of the surviving lines instead of the
  /// incremental pass.
  std::size_t update_compact_after = 64;
  /// Optional per-replica chaos hooks (index = shard); shorter than
  /// `shards` means the tail gets none.  Overrides `engine.fault_injector`
  /// for the primary replicas it names; entries may be null.  Must
  /// outlive the cluster.  Backup replicas and the fallback engine are
  /// never replica-fault-injected: they are the recovery path.
  std::vector<dpv::FaultInjector*> replica_fault_injectors;

  // --- failure-domain dispatch ---

  /// Hedged subrequests (off by default).
  HedgeOptions hedge;
  /// Per-replica circuit breakers (off by default).
  BreakerOptions breaker;
  /// Mount a backup QueryEngine per shard over the same footprint: the
  /// preferred hedge target (doubles replica count, not index memory --
  /// backups share the shard's built indexes).
  bool backup_replicas = false;
  /// Build whole-map indexes and a fallback engine at mount time: the
  /// hedge target when no backup exists, and the exact sequential settle
  /// for requests whose shard answer went missing.  A 1-shard cluster
  /// reuses shard 0's indexes, so the fallback costs nothing there.
  bool fallback_engine = true;
  /// Dispatcher threads for the async fan-out (0 = 2 * shards + 2,
  /// capped at 32: every primary plus every possible hedge can run).
  std::size_t dispatcher_threads = 0;
  /// Budget slack reserved ahead of a request's deadline: a subrequest is
  /// abandoned this early so the sequential whole-map settle still fits
  /// inside the deadline.  (When the deadline is nearer than the reserve,
  /// the full window is used instead.)
  std::chrono::microseconds fallback_reserve{5'000};
  /// Optional hard per-subrequest wait cap (0 = request deadlines only).
  /// With no deadline, no hedge, and no cap, a stuck replica is waited on
  /// indefinitely -- the pre-failure-domain join semantics.
  std::chrono::microseconds subrequest_timeout{0};
};

struct ClusterMountOptions {
  /// Side of the map square [0, world]^2; also the shard-plan extent.
  double world = 1.0;
  /// Per-shard bucket-PMR build (its `world` is overwritten with `world`).
  core::PmrBuildOptions quad;
  /// Per-shard R-tree build.
  core::RtreeBuildOptions rtree;
  /// Also derive the linear quadtree of every shard (off = linear-quadtree
  /// requests answer kRejected, as on an engine without one mounted).
  bool build_linear = true;
};

/// Point-in-time health of one primary replica (metrics() snapshot).
struct ReplicaHealth {
  std::size_t replica = 0;
  std::uint64_t subrequests = 0;  // jobs dispatched to this replica
  std::uint64_t completed = 0;    // jobs that answered (crashes excluded)
  std::uint64_t timeouts = 0;     // jobs abandoned at their budget
  std::uint64_t crashes = 0;      // fail-fast replica faults observed
  std::uint64_t hedges = 0;       // hedge jobs fired against this replica
  std::uint64_t breaker_skips = 0;  // subrequests skipped while open
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  std::size_t consecutive_failures = 0;
  double p99_us = 0.0;  // observed subrequest wall-clock p99
};

struct ClusterMetrics {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;

  // Terminal statuses (same taxonomy as ServeMetrics, plus kPartial).
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shedded = 0;
  std::uint64_t invalid = 0;
  std::uint64_t partial = 0;

  // Cache-path split, counted at the cluster door.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;  // requests that asked to skip it

  // Routing accounting.
  std::uint64_t routed_subrequests = 0;   // shard-local requests dispatched
  std::uint64_t knn_widened_shards = 0;   // phase-2 shards consulted
  std::uint64_t duplicate_hits_removed = 0;  // cloned hits merged away

  // Failure-domain accounting.
  std::uint64_t hedges_issued = 0;       // hedge jobs fired
  std::uint64_t hedges_won = 0;          // requests settled using a hedge answer
  std::uint64_t subrequest_timeouts = 0;    // jobs abandoned at budget
  std::uint64_t replica_crashes = 0;        // fail-fast jobs observed
  std::uint64_t missing_shard_answers = 0;  // shard answers absent at merge
  std::uint64_t degraded_fallback = 0;   // requests settled by the oracle path
  std::uint64_t breaker_open_transitions = 0;
  std::uint64_t breaker_close_transitions = 0;
  std::uint64_t breaker_half_open_probes = 0;
  std::uint64_t breaker_skipped_subrequests = 0;  // requests skipped while open

  // Live-update accounting (see ServeMetrics for the per-engine view).
  std::uint64_t updates = 0;           // apply_update calls that published
  std::uint64_t update_inserts = 0;
  std::uint64_t update_deletes = 0;    // known ids removed
  std::uint64_t update_failures = 0;   // calls that published nothing
  std::uint64_t compactions = 0;       // shard shadows built by full rebuild

  /// Per-request settle latency (all statuses), stamped when the request
  /// settles -- cache hits and gate rejections record their own (short)
  /// latency, not the batch's.
  LatencyHistogram latency;

  /// Cache-internal snapshot (evictions, invalidations, current epoch);
  /// taken at metrics() time, not reset by reset_metrics().
  CacheStats cache;
  /// Per-replica health snapshot, taken at metrics() time.
  std::vector<ReplicaHealth> replicas;

  ClusterMetrics& operator+=(const ClusterMetrics& other) noexcept;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Shards `lines` over the k-way plan of [0, world]^2, builds every
  /// non-empty shard's quadtree / R-tree / linear quadtree, and mounts
  /// them on that shard's replica (and backup, and the whole-map fallback
  /// engine when configured).  Serializes against in-flight serve() calls
  /// (exclusive mount lock) and advances the cache epoch, so no answer
  /// computed against the previous map survives the remount.
  void mount(const std::vector<geom::Segment>& lines,
             const ClusterMountOptions& opts);

  /// Applies one whole-map insert/delete delta batch to the mounted
  /// cluster.  Deltas route to owning shards by the same closed-rect
  /// cloning rule `mount` shards with (a boundary-crossing insert is
  /// cloned into every footprint it touches), then every affected
  /// replica's shadow generation builds data-parallel (pmr_delete +
  /// pmr_insert, or a compacting full rebuild) and the results publish
  /// back-to-back as RCU pointer swaps: reads never block, and every
  /// engine answer comes from exactly one generation.  Backups adopt
  /// their primary's generation; the whole-map fallback engine takes the
  /// whole batch.  The cache then drops only entries whose footprint
  /// meets the dirty region (`ClusterOptions::delta_cache_invalidation`),
  /// or flushes wholesale when that is off.  Insert ids must not collide
  /// with live lines (net of this batch's deletes) or each other --
  /// kInvalidArgument, nothing published.  A fault-aborted shard shadow
  /// aborts the whole update the same way (kRejected, nothing published
  /// anywhere -- no torn cross-shard state).  Requires a mounted cluster
  /// (kRejected otherwise).  Serializes against concurrent apply_update
  /// and mount calls; concurrent serve() calls proceed untouched.
  UpdateResult apply_update(const UpdateBatch& batch);

  /// Serves one batch; responses[i] answers batch[i] exactly as a single
  /// engine mounted over the whole map would (kPartial excepted, and only
  /// for requests that opted in).  Thread-safe.
  std::vector<Response> serve(const std::vector<Request>& batch);

  std::size_t shards() const noexcept { return shards_; }
  const core::ShardPlan& plan() const noexcept { return sharded_.plan; }
  /// Segments assigned to `shard` (clones included); 0 for empty shards.
  std::size_t shard_segment_count(std::size_t shard) const noexcept {
    return shard < sharded_.shards.size() ? sharded_.shards[shard].size() : 0;
  }
  /// Replica access (per-engine metrics, arena stats, ...).
  QueryEngine& engine(std::size_t shard) { return *engines_[shard]; }
  const QueryEngine& engine(std::size_t shard) const {
    return *engines_[shard];
  }
  /// Backup replica for `shard`; null unless `backup_replicas` is on.
  QueryEngine* backup(std::size_t shard) {
    return shard < backups_.size() ? backups_[shard].get() : nullptr;
  }

  /// Cluster-wide mount generation (mirrors the cache epoch).
  std::uint64_t mount_epoch() const noexcept {
    return mount_epoch_.load(std::memory_order_acquire);
  }

  void cancel_all() noexcept;
  void reset_cancel() noexcept;

  ClusterMetrics metrics() const;
  void reset_metrics();
  AdmissionStats admission_stats() const { return admission_.stats(); }

  /// Merges every replica's learned dispatch-cost ledger (primaries,
  /// backups, and the fallback engine) into one snapshot and warms all of
  /// them with the union, so a replica that has not yet served a shape
  /// dispatches on a sibling's measurements instead of the bootstrap
  /// prior.  Per-cell more-samples-wins, so repeated calls are idempotent
  /// and never erase a better-warmed cell.  Returns the merged snapshot
  /// (e.g. to warm a freshly provisioned cluster).  Thread-safe.
  dpv::CostModelSnapshot share_cost_models();

 private:
  struct ShardIndexes {
    core::QuadTree quad;
    core::RTree rtree;
    core::LinearQuadTree linear;
    bool empty = true;
  };

  /// Per-request routing/merging state for one serve() call.
  struct Pending;
  /// One dispatched subrequest (primary or hedge); shared with its pool
  /// job so an abandoned subrequest can outlive the batch that issued it.
  struct SubJob;
  /// Completion signal shared by a round's jobs and the serving thread.
  struct Waiter;
  /// Per-shard dispatch state for one round: primary job, optional hedge.
  struct RoundSlot;
  /// Long-lived per-replica state: latency ledger, breaker, counters.
  struct ReplicaState;

  Status pre_status(const Request& rq) const noexcept;
  bool supported(const Request& rq) const noexcept;  // under mount lock

  /// UpdateOptions derived from the mounted build configuration.
  UpdateOptions update_options() const;
  /// True when shard `s` currently holds at least one live line (clones
  /// included).  Atomic because apply_update flips it while routing reads
  /// it under the shared mount lock.
  bool shard_live(std::size_t s) const noexcept {
    return shard_live_[s].load(std::memory_order_acquire);
  }

  /// Dispatches every non-empty per-shard sub-batch asynchronously and
  /// waits -- merge-on-arrival with deadline budgets, hedging, and
  /// breaker gating.  On return every slot is resolved (answered,
  /// abandoned, or skipped).
  void run_round(std::vector<std::vector<Request>>& sub, std::size_t round,
                 std::uint64_t batch_seq, std::vector<RoundSlot>& slots,
                 ClusterMetrics& delta);
  void submit_job(const std::shared_ptr<SubJob>& job,
                  const std::shared_ptr<Waiter>& waiter);
  /// Hedge delay for `replica`: its ledger's p99 (clamped) once warmed,
  /// `initial_delay` before that.
  std::chrono::microseconds hedge_delay(std::size_t replica) const;
  /// Sequential whole-map settle on the fallback indexes (exact oracle).
  Status run_fallback(const Request& rq, Response& rsp) const;

  /// Shards whose footprint the window/point touches.
  void route_window(const geom::Rect& window,
                    std::vector<std::size_t>& out) const;
  void route_point(const geom::Point& p, std::vector<std::size_t>& out) const;
  /// Non-empty shard with the smallest footprint MINDIST to `p` (lowest
  /// index among ties); shards_ when every shard is empty.
  std::size_t primary_knn_shard(const geom::Point& p) const;

  ClusterOptions opts_;
  std::size_t shards_ = 1;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<std::unique_ptr<QueryEngine>> backups_;  // empty unless on
  std::unique_ptr<QueryEngine> fallback_engine_;       // whole-map replica
  std::vector<std::unique_ptr<ReplicaState>> replica_state_;

  // Async dispatcher.  Destroyed first in ~Cluster (explicitly), so no
  // job can outlive the engines/indexes it references.
  std::unique_ptr<dpv::AsyncPool> dispatch_pool_;
  std::atomic<std::uint64_t> batch_seq_{0};  // replica-fault scope coordinate

  // Mounted state, guarded by mount_mutex_ (serve() shared, mount()
  // exclusive -- the same discipline QueryEngine uses).  Heap storage so
  // element addresses are stable: a remount mounts the replicas onto the
  // *new* storage before the old generation is destroyed.
  core::ShardedSegments sharded_;
  std::unique_ptr<std::vector<ShardIndexes>> indexes_;
  std::unique_ptr<ShardIndexes> fallback_;  // null when reusing shard 0
  bool mounted_ = false;
  bool linear_mounted_ = false;
  mutable std::shared_mutex mount_mutex_;

  // Live-update state, written only under update_mutex_ (mount() holds
  // the mount lock exclusively, which also excludes updates).
  std::mutex update_mutex_;
  ClusterMountOptions mount_opts_;
  /// Whole-map live lines by id: delete routing needs the doomed
  /// geometry (which shards hold its clones; which cache region dirties).
  std::unordered_map<geom::LineId, geom::Segment> live_map_;
  /// Per-shard live line counts (clones included), maintained by delta.
  std::vector<std::size_t> shard_lines_;
  /// Routing-visible per-shard occupancy (see shard_live()).
  std::vector<std::atomic<bool>> shard_live_;

  ResultCache cache_;
  AdmissionController admission_;
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> mount_epoch_{0};

  mutable std::mutex metrics_mutex_;
  ClusterMetrics metrics_;
};

}  // namespace dps::serve
