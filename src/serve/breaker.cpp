#include "serve/breaker.hpp"

namespace dps::serve {

CircuitBreaker::Gate CircuitBreaker::admit(Clock::time_point now) {
  if (!opts_.enabled) return Gate::kDispatch;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return Gate::kDispatch;
    case State::kOpen:
      if (now - opened_at_ < opts_.cooldown) return Gate::kSkip;
      state_ = State::kHalfOpen;
      probe_inflight_ = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_inflight_) return Gate::kSkip;
      probe_inflight_ = true;
      return Gate::kProbe;
  }
  return Gate::kDispatch;
}

bool CircuitBreaker::on_success() {
  if (!opts_.enabled) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_ = 0;
  probe_inflight_ = false;
  if (state_ == State::kClosed) return false;
  state_ = State::kClosed;
  return true;
}

bool CircuitBreaker::on_failure(Clock::time_point now) {
  if (!opts_.enabled) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_;
  probe_inflight_ = false;
  if (state_ == State::kOpen) {
    // Late failure from a subrequest dispatched before the trip: stays
    // open, restart the quarantine clock.
    opened_at_ = now;
    return false;
  }
  if (state_ == State::kHalfOpen || consecutive_ >= opts_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_;
}

}  // namespace dps::serve
