#include "serve/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "core/nearest.hpp"
#include "core/query.hpp"

namespace dps::serve {

namespace {

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

double us_since(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

constexpr std::size_t kNumKinds = 3;
constexpr std::size_t kNumIndexes = 3;

std::size_t group_id(RequestKind kind, IndexKind index) noexcept {
  return static_cast<std::size_t>(kind) * kNumIndexes +
         static_cast<std::size_t>(index);
}

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kRejected: return "rejected";
  }
  return "unknown";
}

QueryEngine::QueryEngine(EngineOptions opts)
    : opts_(opts), pool_(std::make_shared<dpv::ThreadPool>(opts.threads)) {
  shards_ = opts_.shards == 0 ? pool_->size() : opts_.shards;
  if (shards_ == 0) shards_ = 1;
  shard_template_.set_grain(opts_.grain);
}

Status QueryEngine::pre_status(const Request& rq) const noexcept {
  if (cancel_.load(std::memory_order_relaxed)) return Status::kCancelled;
  if (rq.has_deadline() && Clock::now() >= rq.deadline) {
    return Status::kDeadlineExpired;
  }
  return Status::kOk;
}

Status QueryEngine::run_sequential(const Request& rq, Response& rsp) const {
  switch (rq.kind) {
    case RequestKind::kWindow:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::window_query(*quad_, rq.window);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::window_query(*rtree_, rq.window);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = linear_->window_query(rq.window);
          break;
      }
      return Status::kOk;
    case RequestKind::kPoint:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::point_query(*quad_, rq.point);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::point_query(*rtree_, rq.point);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = linear_->point_query(rq.point);
          break;
      }
      return Status::kOk;
    case RequestKind::kNearest:
      rsp.neighbors = rq.index == IndexKind::kQuadTree
                          ? core::k_nearest(*quad_, rq.point, rq.k)
                          : core::k_nearest(*rtree_, rq.point, rq.k);
      return Status::kOk;
  }
  return Status::kRejected;
}

void QueryEngine::execute_shard(const std::vector<Request>& batch,
                                std::vector<Response>& responses,
                                Clock::time_point t0, std::size_t lo,
                                std::size_t hi, ShardScratch& scratch) {
  dpv::Context ctx = shard_template_.fork_serial();

  // Regroup this shard's slice by (kind, index): each group is one batch
  // pipeline invocation (or one sequential sweep).
  const auto tshard = Clock::now();
  std::array<std::vector<std::size_t>, kNumKinds * kNumIndexes> groups;
  for (std::size_t i = lo; i < hi; ++i) {
    groups[group_id(batch[i].kind, batch[i].index)].push_back(i);
  }
  scratch.stages.shard_ms += ms_since(tshard);

  auto run_seq = [&](const std::vector<std::size_t>& live) {
    ++scratch.seq_groups;
    for (const std::size_t i : live) {
      const Status s = pre_status(batch[i]);
      responses[i].status =
          s == Status::kOk ? run_sequential(batch[i], responses[i]) : s;
    }
  };

  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) continue;
    const auto kind = static_cast<RequestKind>(g / kNumIndexes);
    const auto index = static_cast<IndexKind>(g % kNumIndexes);
    const auto tgroup = Clock::now();

    const bool mounted = (index == IndexKind::kQuadTree && quad_ != nullptr) ||
                         (index == IndexKind::kRTree && rtree_ != nullptr) ||
                         (index == IndexKind::kLinearQuadTree &&
                          linear_ != nullptr);
    const bool supported =
        mounted && !(kind == RequestKind::kNearest &&
                     index == IndexKind::kLinearQuadTree);

    // Settle structurally rejected and already-dead requests up front.
    std::vector<std::size_t> live;
    live.reserve(groups[g].size());
    for (const std::size_t i : groups[g]) {
      if (!supported) {
        responses[i].status = Status::kRejected;
        continue;
      }
      const Status s = pre_status(batch[i]);
      if (s == Status::kOk) {
        live.push_back(i);
      } else {
        responses[i].status = s;
      }
    }

    if (!live.empty()) {
      // The batch pipelines that exist: window queries on the quadtree and
      // the R-tree, point queries on the quadtree.  Everything else -- and
      // any group under the degradation threshold -- walks sequentially.
      const bool has_pipeline =
          (kind == RequestKind::kWindow && index != IndexKind::kLinearQuadTree) ||
          (kind == RequestKind::kPoint && index == IndexKind::kQuadTree);
      if (has_pipeline && live.size() >= opts_.min_dp_batch) {
        // Earliest deadline in the group arms the pipeline's control; the
        // engine kill switch is polled through the same hook.
        core::BatchControl control;
        control.cancel = &cancel_;
        for (const std::size_t i : live) {
          if (batch[i].has_deadline() &&
              (!control.has_deadline() ||
               batch[i].deadline < control.deadline)) {
            control.deadline = batch[i].deadline;
          }
        }
        core::BatchQueryResult result;
        if (kind == RequestKind::kWindow) {
          std::vector<geom::Rect> windows(live.size());
          for (std::size_t j = 0; j < live.size(); ++j) {
            windows[j] = batch[live[j]].window;
          }
          result = index == IndexKind::kQuadTree
                       ? core::batch_window_query(ctx, *quad_, windows, control)
                       : core::batch_window_query(ctx, *rtree_, windows,
                                                  control);
        } else {
          std::vector<geom::Point> points(live.size());
          for (std::size_t j = 0; j < live.size(); ++j) {
            points[j] = batch[live[j]].point;
          }
          result = core::batch_point_query(ctx, *quad_, points, control);
        }
        if (result.aborted) {
          // One fired deadline must not void its group-mates: requests
          // still inside their own deadline re-run sequentially.
          run_seq(live);
        } else {
          ++scratch.dp_groups;
          for (std::size_t j = 0; j < live.size(); ++j) {
            responses[live[j]].ids = std::move(result.results[j]);
            responses[live[j]].status = Status::kOk;
          }
        }
      } else {
        run_seq(live);
      }
    }

    const double group_ms = ms_since(tgroup);
    switch (kind) {
      case RequestKind::kWindow: scratch.stages.window_ms += group_ms; break;
      case RequestKind::kPoint: scratch.stages.point_ms += group_ms; break;
      case RequestKind::kNearest: scratch.stages.nearest_ms += group_ms; break;
    }
    for (const std::size_t i : groups[g]) {
      responses[i].latency_us = us_since(t0);
    }
  }

  scratch.prims = ctx.counters();
}

std::vector<Response> QueryEngine::serve(const std::vector<Request>& batch) {
  const auto t0 = Clock::now();
  const std::size_t n = batch.size();
  std::vector<Response> responses(n);

  ServeMetrics delta;
  delta.batches = 1;
  delta.requests = n;

  std::vector<ShardScratch> scratch;
  if (n > 0) {
    const std::size_t k = std::min(shards_, n);
    scratch.resize(k);
    // Lanes are the physical limit; when the engine is configured with
    // more shards than lanes, each lane drains several shards in turn.
    const std::size_t lanes = std::min(k, pool_->size());
    pool_->run(lanes, [&](std::size_t lane) {
      for (std::size_t s = lane; s < k; s += lanes) {
        const auto [lo, hi] = dpv::Context::block_range(n, k, s);
        if (lo < hi) execute_shard(batch, responses, t0, lo, hi, scratch[s]);
      }
    });

    for (std::size_t i = 0; i < n; ++i) {
      switch (batch[i].kind) {
        case RequestKind::kWindow: ++delta.window_requests; break;
        case RequestKind::kPoint: ++delta.point_requests; break;
        case RequestKind::kNearest: ++delta.nearest_requests; break;
      }
      switch (responses[i].status) {
        case Status::kOk: ++delta.ok; break;
        case Status::kDeadlineExpired: ++delta.expired; break;
        case Status::kCancelled: ++delta.cancelled; break;
        case Status::kRejected: ++delta.rejected; break;
      }
      delta.latency.record(responses[i].latency_us);
    }
    for (const ShardScratch& sc : scratch) {
      delta.stages += sc.stages;
      delta.dp_groups += sc.dp_groups;
      delta.seq_groups += sc.seq_groups;
    }
  }

  {
    const auto tmerge = Clock::now();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const ShardScratch& sc : scratch) session_.merge_counters(sc.prims);
    delta.stages.merge_ms = ms_since(tmerge);
    metrics_ += delta;
  }
  return responses;
}

ServeMetrics QueryEngine::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ServeMetrics out = metrics_;
  out.prims = session_.snapshot();
  return out;
}

void QueryEngine::reset_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = ServeMetrics{};
  session_.reset_counters();
}

}  // namespace dps::serve
