#include "serve/engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <ctime>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/batch_nearest.hpp"
#include "core/nearest.hpp"
#include "core/pmr_update.hpp"
#include "core/query.hpp"
#include "core/validate.hpp"

namespace dps::serve {

/// One immutable index generation.  `quad` / `rtree` / `linear` are the
/// active pointers (null = the generation cannot answer that index kind
/// eagerly); for a mount()ed generation they borrow the caller's
/// structures, for an update-produced one they alias the owned_* storage.
/// An updated generation owns a rebuilt quadtree but marks the siblings
/// *stale*: the R-tree / linear quadtree have no update path, so they are
/// rebuilt lazily on first use within the generation, from `lines` (the
/// generation's surviving segments) under the recorded build options.
struct IndexGen {
  const core::QuadTree* quad = nullptr;
  const core::RTree* rtree = nullptr;
  const core::LinearQuadTree* linear = nullptr;

  std::shared_ptr<const core::QuadTree> owned_quad;
  std::shared_ptr<const core::RTree> owned_rtree;
  std::shared_ptr<const core::LinearQuadTree> owned_linear;

  bool rtree_stale = false;   // capability present, lazily materialized
  bool linear_stale = false;

  /// Surviving lines of an update-produced generation (what the lazy
  /// sibling rebuilds and the next update's live set read); null for a
  /// plain mount (recovered from the quadtree's q-edges on demand).
  std::shared_ptr<const std::vector<geom::Segment>> lines;
  core::PmrBuildOptions quad_opts;
  core::RtreeBuildOptions rtree_opts;
  /// Inserts + deletes accumulated since the last full build; compared
  /// against UpdateOptions::compact_after by the next update.
  std::uint64_t deltas = 0;

  // Lazy-rebuild slots: double-checked (atomic fast path, mutex slow
  // path), shared by every engine serving this generation (a cluster
  // backup adopting its primary's generation reuses the same rebuild).
  mutable std::mutex lazy_mutex;
  mutable std::shared_ptr<const core::RTree> lazy_rtree;
  mutable std::shared_ptr<const core::LinearQuadTree> lazy_linear;
  mutable std::atomic<const core::RTree*> lazy_rtree_ready{nullptr};
  mutable std::atomic<const core::LinearQuadTree*> lazy_linear_ready{nullptr};

  bool has(IndexKind index) const noexcept {
    switch (index) {
      case IndexKind::kQuadTree: return quad != nullptr;
      case IndexKind::kRTree: return rtree != nullptr || rtree_stale;
      case IndexKind::kLinearQuadTree:
        return linear != nullptr || linear_stale;
    }
    return false;
  }

  /// Logical copy for a partial remount: active pointers, ownership, and
  /// staleness carry over, with an already-materialized lazy sibling
  /// settled into the eager slot (the copy must not share the original's
  /// synchronization members).
  static std::shared_ptr<IndexGen> clone(const IndexGen& g) {
    auto out = std::make_shared<IndexGen>();
    out->quad = g.quad;
    out->owned_quad = g.owned_quad;
    out->lines = g.lines;
    out->quad_opts = g.quad_opts;
    out->rtree_opts = g.rtree_opts;
    out->deltas = g.deltas;
    std::lock_guard<std::mutex> lk(g.lazy_mutex);
    if (g.rtree != nullptr) {
      out->rtree = g.rtree;
      out->owned_rtree = g.owned_rtree;
    } else if (g.lazy_rtree != nullptr) {
      out->owned_rtree = g.lazy_rtree;
      out->rtree = out->owned_rtree.get();
    } else {
      out->rtree_stale = g.rtree_stale;
    }
    if (g.linear != nullptr) {
      out->linear = g.linear;
      out->owned_linear = g.owned_linear;
    } else if (g.lazy_linear != nullptr) {
      out->owned_linear = g.lazy_linear;
      out->linear = out->owned_linear.get();
    } else {
      out->linear_stale = g.linear_stale;
    }
    return out;
  }
};

namespace {

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

double us_since(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

/// Observation clock for the dispatch cost model.  On an oversubscribed
/// host a lane's wall-clock mostly measures preemption by its peer lanes,
/// not the work, and the polluted coefficients lock the model into
/// whatever policy it happened to warm up under.  Thread CPU time is
/// scheduler-invariant: it prices the work itself, which is what dispatch
/// minimizes (and on a saturated machine total work *is* wall-clock).
/// Falls back to the wall clock where the POSIX thread clock is absent.
double observe_clock_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kNumKinds = 3;
constexpr std::size_t kNumIndexes = 3;

std::size_t group_id(RequestKind kind, IndexKind index) noexcept {
  return static_cast<std::size_t>(kind) * kNumIndexes +
         static_cast<std::size_t>(index);
}

/// Per-request geometry gate (Status::kOk = well-formed).
Status validate_request(const Request& rq) noexcept {
  switch (rq.kind) {
    case RequestKind::kWindow:
      return core::validate_window(rq.window) ? Status::kInvalidArgument
                                              : Status::kOk;
    case RequestKind::kPoint:
      return core::validate_point(rq.point) ? Status::kInvalidArgument
                                            : Status::kOk;
    case RequestKind::kNearest:
      return core::validate_nearest(rq.point, rq.k) ? Status::kInvalidArgument
                                                    : Status::kOk;
  }
  return Status::kInvalidArgument;
}

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kRejected: return "rejected";
    case Status::kShedded: return "shedded";
    case Status::kInvalidArgument: return "invalid-argument";
    case Status::kPartial: return "partial";
  }
  return "unknown";
}

QueryEngine::QueryEngine(EngineOptions opts)
    : opts_(opts),
      pool_(std::make_shared<dpv::ThreadPool>(opts.threads)),
      admission_(opts.admission),
      cost_model_([&opts] {
        // One knob: `min_dp_batch` is the model's bootstrap prior.
        dpv::CostModelOptions co = opts.cost_model;
        co.bootstrap_min_dp_batch = opts.min_dp_batch;
        return co;
      }()) {
  shards_ = opts_.shards == 0 ? pool_->size() : opts_.shards;
  if (shards_ == 0) shards_ = 1;
  shard_template_.set_grain(opts_.grain);
  if (opts_.scratch_arena) {
    arenas_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      arenas_.push_back(std::make_unique<dpv::Arena>());
    }
  }
  if (opts_.fault_injector != nullptr) {
    pool_->set_fault_injector(opts_.fault_injector);
  }
  gen_ = std::make_shared<IndexGen>();
}

QueryEngine::~QueryEngine() = default;

std::shared_ptr<const IndexGen> QueryEngine::snapshot_gen() const {
  std::lock_guard<std::mutex> lock(gen_mutex_);
  return gen_;
}

std::uint64_t QueryEngine::publish_gen(std::shared_ptr<const IndexGen> next,
                                       bool park) {
  std::shared_ptr<const IndexGen> old;
  {
    std::lock_guard<std::mutex> lock(gen_mutex_);
    old = std::move(gen_);
    gen_ = std::move(next);
  }
  {
    // Writer-side reclamation: parking keeps the replaced generation's
    // refcount above any reader's pin, so unpinning is always a cheap
    // decrement and index destruction happens here, on the publish path.
    // A shared (adopted) generation is parked only by the engine that
    // built it -- a second park would hold it forever.
    std::lock_guard<std::mutex> lock(retired_mutex_);
    if (park && old != nullptr) retired_.push_back(std::move(old));
    std::erase_if(retired_, [](const std::shared_ptr<const IndexGen>& g) {
      return g.use_count() == 1;
    });
  }
  return mount_epoch_.fetch_add(1, std::memory_order_release) + 1;
}

void QueryEngine::mount(const core::QuadTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  auto next = IndexGen::clone(*snapshot_gen());
  next->quad = tree;
  // A fresh borrowed quadtree supersedes everything the update path
  // derived from the old one: owned storage, the surviving-lines cache,
  // and the accumulated delta debt.
  next->owned_quad.reset();
  next->lines.reset();
  next->deltas = 0;
  publish_gen(std::move(next));
}

void QueryEngine::mount(const core::RTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  auto next = IndexGen::clone(*snapshot_gen());
  next->rtree = tree;
  next->owned_rtree.reset();
  next->rtree_stale = false;  // the explicit mount replaces any lazy rebuild
  publish_gen(std::move(next));
}

void QueryEngine::mount(const core::LinearQuadTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  auto next = IndexGen::clone(*snapshot_gen());
  next->linear = tree;
  next->owned_linear.reset();
  next->linear_stale = false;
  publish_gen(std::move(next));
}

void QueryEngine::adopt_generation(const QueryEngine& from) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "adopt_generation must be serialized against in-flight batches");
  publish_gen(from.snapshot_gen(), /*park=*/false);
}

bool QueryEngine::mounted_index(IndexKind index) const {
  return snapshot_gen()->has(index);
}

const core::RTree* QueryEngine::resolve_rtree(const IndexGen& gen) const {
  if (gen.rtree != nullptr) return gen.rtree;
  if (!gen.rtree_stale) return nullptr;
  if (const auto* ready = gen.lazy_rtree_ready.load(std::memory_order_acquire);
      ready != nullptr) {
    return ready;
  }
  std::lock_guard<std::mutex> lock(gen.lazy_mutex);
  if (gen.lazy_rtree == nullptr) {
    assert(gen.lines != nullptr && "stale R-tree requires the line store");
    dpv::Context ctx;  // serial; no faults -- the rebuild must not abort
    ctx.set_grain(opts_.grain);
    auto built = std::make_shared<core::RTree>(
        core::rtree_build(ctx, *gen.lines, gen.rtree_opts).tree);
    gen.lazy_rtree = std::move(built);
    gen.lazy_rtree_ready.store(gen.lazy_rtree.get(),
                               std::memory_order_release);
    lazy_rtree_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  return gen.lazy_rtree.get();
}

const core::LinearQuadTree* QueryEngine::resolve_linear(
    const IndexGen& gen) const {
  if (gen.linear != nullptr) return gen.linear;
  if (!gen.linear_stale) return nullptr;
  if (const auto* ready =
          gen.lazy_linear_ready.load(std::memory_order_acquire);
      ready != nullptr) {
    return ready;
  }
  std::lock_guard<std::mutex> lock(gen.lazy_mutex);
  if (gen.lazy_linear == nullptr) {
    assert(gen.quad != nullptr && "stale linear quadtree requires the quad");
    gen.lazy_linear = std::make_shared<core::LinearQuadTree>(
        core::LinearQuadTree::from(*gen.quad));
    gen.lazy_linear_ready.store(gen.lazy_linear.get(),
                                std::memory_order_release);
    lazy_linear_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  return gen.lazy_linear.get();
}

PreparedUpdate QueryEngine::do_prepare(const UpdateBatch& batch,
                                       const UpdateOptions& opts) {
  PreparedUpdate out;
  const auto base = snapshot_gen();

  if (core::validate_segments(batch.inserts, opts.build.world).has_value()) {
    out.status = Status::kInvalidArgument;
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.update_failures;
    return out;
  }

  // The generation's surviving lines: the update-path store when present,
  // otherwise recovered from the mounted quadtree's q-edges (clone
  // replicates whole segments, so dedup-by-id restores the original map).
  std::vector<geom::Segment> live;
  if (base->lines != nullptr) {
    live = *base->lines;
  } else if (base->quad != nullptr) {
    std::unordered_set<geom::LineId> seen;
    seen.reserve(base->quad->num_qedges());
    for (const geom::Segment& e : base->quad->edges()) {
      if (seen.insert(e.id).second) live.push_back(e);
    }
  }

  std::unordered_set<geom::LineId> live_ids;
  live_ids.reserve(live.size());
  for (const geom::Segment& s : live) live_ids.insert(s.id);
  const std::unordered_set<geom::LineId> doomed(batch.deletes.begin(),
                                                batch.deletes.end());

  // Inserts may not collide with lines that survive this batch's deletes
  // (delete + reinsert of an id in one batch is legal) or with each other.
  std::unordered_set<geom::LineId> collide = live_ids;
  for (const geom::LineId id : doomed) collide.erase(id);
  if (core::validate_insert_ids(batch.inserts, collide).has_value()) {
    out.status = Status::kInvalidArgument;
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.update_failures;
    return out;
  }

  for (const geom::LineId id : doomed) out.deleted += live_ids.count(id);
  out.unknown_deletes = doomed.size() - out.deleted;
  out.inserted = batch.inserts.size();

  // Dirty region: MBRs of the removed geometry plus the inserted segments
  // (what delta-scoped cache invalidation sweeps against).
  for (const geom::Segment& s : live) {
    if (doomed.count(s.id) != 0) out.dirty.push_back(s.bbox());
  }
  for (const geom::Segment& s : batch.inserts) out.dirty.push_back(s.bbox());

  if (out.inserted == 0 && out.deleted == 0) {
    out.dirty.clear();  // nothing changed; nothing to invalidate
    return out;         // kOk, gen = null: a no-op publishes nothing
  }

  const bool fresh = base->quad == nullptr || base->quad->num_nodes() == 0;
  const bool compact =
      !fresh && base->deltas + batch.size() > opts.compact_after;

  auto next_lines = std::make_shared<std::vector<geom::Segment>>();
  next_lines->reserve(live.size() - out.deleted + batch.inserts.size());
  for (const geom::Segment& s : live) {
    if (doomed.count(s.id) == 0) next_lines->push_back(s);
  }
  next_lines->insert(next_lines->end(), batch.inserts.begin(),
                     batch.inserts.end());

  // Shadow build, chaos-visible like any shard attempt: scope coordinate =
  // (update sequence, attempt 0, the update tag).  The build pipelines do
  // not poll faults mid-flight, so a latched fault is checked after the
  // build and the whole shadow is abandoned -- the "crash" happens before
  // publication and readers never see a torn generation.
  dpv::Context ctx = shard_template_.fork_serial();
  const std::uint64_t seq =
      update_seq_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.fault_injector != nullptr) {
    ctx.arm_fault_injection(
        opts_.fault_injector,
        dpv::FaultInjector::scope(seq, 0, 0xD17Aull /* delta */));
  }

  core::QuadBuildResult built;
  if (fresh || compact) {
    built = core::pmr_build(ctx, *next_lines, opts.build);
    out.compacted = !fresh;
  } else if (batch.deletes.empty()) {
    built = core::pmr_insert(ctx, *base->quad, batch.inserts, opts.build);
  } else {
    built = core::pmr_delete(ctx, *base->quad, batch.deletes, opts.build);
    if (!batch.inserts.empty()) {
      built = core::pmr_insert(ctx, built.tree, batch.inserts, opts.build);
    }
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    session_.merge_counters(ctx.counters());  // failed attempts worked too
  }

  if (ctx.fault_pending()) {
    out.status = Status::kRejected;
    out.dirty.clear();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.update_failures;
    return out;
  }

  auto next = std::make_shared<IndexGen>();
  next->owned_quad =
      std::make_shared<const core::QuadTree>(std::move(built.tree));
  next->quad = next->owned_quad.get();
  next->lines = std::move(next_lines);
  next->quad_opts = opts.build;
  next->rtree_opts = opts.rtree;
  // Sibling indexes have no update path: an updated generation keeps the
  // base's capabilities as *stale* (lazily rebuilt on first use).  A
  // generation grown from empty gets whatever UpdateOptions grants.
  next->rtree_stale =
      fresh ? opts.keep_rtree : base->has(IndexKind::kRTree);
  next->linear_stale =
      fresh ? opts.keep_linear : base->has(IndexKind::kLinearQuadTree);
  next->deltas = fresh || compact ? 0 : base->deltas + batch.size();
  // Warm the stale siblings while the generation is still a private
  // shadow: the update thread absorbs the rebuild so the first reader
  // after the swap never blocks on the lazy mutex.
  if (opts.warm_siblings) {
    if (next->rtree_stale) resolve_rtree(*next);
    if (next->linear_stale) resolve_linear(*next);
  }
  out.gen = std::move(next);
  return out;
}

PreparedUpdate QueryEngine::prepare_update(const UpdateBatch& batch,
                                           const UpdateOptions& opts) {
  std::lock_guard<std::mutex> up(update_mutex_);
  std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
  return do_prepare(batch, opts);
}

std::uint64_t QueryEngine::publish_update(PreparedUpdate&& prepared) {
  if (!prepared.ok() || prepared.gen == nullptr) return mount_epoch();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.updates;
    metrics_.update_inserts += prepared.inserted;
    metrics_.update_deletes += prepared.deleted;
    if (prepared.compacted) ++metrics_.compactions;
  }
  return publish_gen(std::move(prepared.gen));
}

UpdateResult QueryEngine::apply_update(const UpdateBatch& batch,
                                       const UpdateOptions& opts) {
  UpdateResult res;
  // Serialize against sibling updates; hold the mount lock *shared* so
  // reads never block on an update while a concurrent mount() still waits
  // for the whole operation.
  std::lock_guard<std::mutex> up(update_mutex_);
  std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
  PreparedUpdate p = do_prepare(batch, opts);
  res.status = p.status;
  res.compacted = p.compacted;
  res.inserted = p.inserted;
  res.deleted = p.deleted;
  res.unknown_deletes = p.unknown_deletes;
  res.epoch =
      p.ok() && p.gen != nullptr ? publish_update(std::move(p)) : mount_epoch();
  return res;
}

Status QueryEngine::pre_status(const Request& rq,
                               const std::atomic<bool>* xcancel) const noexcept {
  if (cancel_.load(std::memory_order_relaxed)) return Status::kCancelled;
  if (xcancel != nullptr && xcancel->load(std::memory_order_relaxed)) {
    return Status::kCancelled;
  }
  if (rq.has_deadline() && Clock::now() >= *rq.deadline) {
    return Status::kDeadlineExpired;
  }
  return Status::kOk;
}

Status QueryEngine::run_sequential(const IndexGen& gen, const Request& rq,
                                   Response& rsp) const {
  switch (rq.kind) {
    case RequestKind::kWindow:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::window_query(*gen.quad, rq.window);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::window_query(*resolve_rtree(gen), rq.window);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = resolve_linear(gen)->window_query(rq.window);
          break;
      }
      return Status::kOk;
    case RequestKind::kPoint:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::point_query(*gen.quad, rq.point);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::point_query(*resolve_rtree(gen), rq.point);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = resolve_linear(gen)->point_query(rq.point);
          break;
      }
      return Status::kOk;
    case RequestKind::kNearest:
      rsp.neighbors = rq.index == IndexKind::kQuadTree
                          ? core::k_nearest(*gen.quad, rq.point, rq.k)
                          : core::k_nearest(*resolve_rtree(gen), rq.point,
                                            rq.k);
      return Status::kOk;
  }
  return Status::kRejected;
}

Status QueryEngine::run_oracle(const Request& rq, Response& rsp) const {
  const auto gen = snapshot_gen();
  if (!gen->has(rq.index) ||
      (rq.kind == RequestKind::kNearest &&
       rq.index == IndexKind::kLinearQuadTree)) {
    rsp.status = Status::kRejected;
    return rsp.status;
  }
  rsp.status = run_sequential(*gen, rq, rsp);
  return rsp.status;
}

std::string QueryEngine::quad_fingerprint() const {
  const auto gen = snapshot_gen();
  return gen->quad != nullptr ? gen->quad->fingerprint() : std::string();
}

void QueryEngine::backoff(std::size_t shard, std::size_t attempt) const {
  if (opts_.backoff_base.count() <= 0 || attempt == 0) return;
  const double steps = static_cast<double>(std::uint64_t{1} << (attempt - 1));
  // Deterministic jitter in [1 - j, 1 + j): replays identically for a
  // given (retry_seed, shard, attempt), like every other chaos decision.
  const std::uint64_t u = dpv::mix64(
      opts_.retry_seed ^ dpv::FaultInjector::scope(shard, attempt, 0xB0FFull));
  const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;
  const double jitter = 1.0 + opts_.backoff_jitter * (2.0 * unit - 1.0);
  const double us =
      static_cast<double>(opts_.backoff_base.count()) * steps * jitter;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

std::size_t QueryEngine::index_elements(const IndexGen& gen,
                                        IndexKind index) const noexcept {
  switch (index) {
    case IndexKind::kQuadTree:
      return gen.quad != nullptr ? gen.quad->num_qedges() : 0;
    case IndexKind::kRTree:
      if (gen.rtree != nullptr) return gen.rtree->entries().size();
      if (const auto* ready =
              gen.lazy_rtree_ready.load(std::memory_order_acquire);
          ready != nullptr) {
        return ready->entries().size();
      }
      // Stale and not yet materialized: estimate density from the line
      // store rather than forcing the rebuild on the cost-model path.
      return gen.rtree_stale && gen.lines != nullptr ? gen.lines->size() : 0;
    case IndexKind::kLinearQuadTree:
      if (gen.linear != nullptr) return gen.linear->edges().size();
      if (const auto* ready =
              gen.lazy_linear_ready.load(std::memory_order_acquire);
          ready != nullptr) {
        return ready->edges().size();
      }
      return gen.linear_stale && gen.quad != nullptr ? gen.quad->num_qedges()
                                                     : 0;
  }
  return 0;
}

dpv::GroupShape QueryEngine::group_shape(const IndexGen& gen, RequestKind kind,
                                         IndexKind index, std::size_t n,
                                         std::size_t mean_k) const noexcept {
  dpv::GroupShape g;
  g.kind = static_cast<int>(kind);
  g.index = static_cast<int>(index);
  g.group_size = n;
  g.map_elements = index_elements(gen, index);
  g.mean_k = mean_k;
  return g;
}

void QueryEngine::run_group(const IndexGen& gen,
                            const std::vector<Request>& batch,
                            std::vector<Response>& responses, RequestKind kind,
                            IndexKind index,
                            const std::vector<std::size_t>& live_in,
                            std::size_t shard,
                            const std::atomic<bool>* xcancel,
                            ShardScratch& scratch, double* dp_us) {
  dpv::FaultInjector* const inj = opts_.fault_injector;
  std::vector<std::size_t> live = live_in;
  const std::size_t g = group_id(kind, index);

  bool control_abort = false;  // cancel / deadline fired mid-pipeline
  for (std::size_t attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (attempt > 0) {
      backoff(shard, attempt);
      // Deadlines may have fired during the backoff; settle the dead so
      // one slow retry cannot void its group-mates.
      std::vector<std::size_t> still;
      still.reserve(live.size());
      for (const std::size_t i : live) {
        const Status s = pre_status(batch[i], xcancel);
        if (s == Status::kOk) {
          still.push_back(i);
        } else {
          responses[i].status = s;
        }
      }
      live.swap(still);
      if (live.empty()) return;
    }

    const std::uint64_t scope = dpv::FaultInjector::scope(shard, attempt, g);
    if (inj != nullptr && inj->shard_poisoned(scope)) {
      // A poisoned shard attempt fails before any primitive runs.
      inj->note_shard_poisoned();
      ++scratch.retries;
      continue;
    }

    // Attempt cost (marshaling included) feeds the dispatch cost model
    // when the attempt lands, priced in thread CPU time so peer-lane
    // preemption cannot skew the coefficients.
    const double tattempt = observe_clock_us();
    dpv::Context ctx = shard_template_.fork_serial();
    if (inj != nullptr) ctx.arm_fault_injection(inj, scope);
    // Persistent per-shard scratch arena: the pipeline's round scope
    // recycles the previous serve()'s buffers, so steady-state groups of
    // stable shape allocate nothing.  Safe without locks: a shard is
    // drained by exactly one lane per batch, and batches on the pool are
    // serialized (launch + join), so arena use is always sequenced.
    if (!arenas_.empty()) ctx.set_arena(arenas_[shard].get());

    // Earliest deadline in the group arms the pipeline's control; the
    // engine kill switch is polled through the same hook.
    core::BatchControl control;
    control.cancel = &cancel_;
    control.cancel2 = xcancel;
    for (const std::size_t i : live) {
      if (batch[i].has_deadline() &&
          (!control.has_deadline() || *batch[i].deadline < control.deadline)) {
        control.deadline = *batch[i].deadline;
      }
    }

    bool pipeline_ok = false;
    if (kind == RequestKind::kNearest) {
      // The serve boundary rejects (kNearest, kLinearQuadTree) before
      // grouping, so only the two tree pipelines can reach here.
      std::vector<geom::Point> points(live.size());
      std::vector<std::size_t> ks(live.size());
      for (std::size_t j = 0; j < live.size(); ++j) {
        points[j] = batch[live[j]].point;
        ks[j] = batch[live[j]].k;
      }
      core::BatchNearestResult nearest =
          index == IndexKind::kQuadTree
              ? core::batch_k_nearest(ctx, *gen.quad, points, ks, control)
              : core::batch_k_nearest(ctx, *resolve_rtree(gen), points, ks,
                                      control);
      pipeline_ok = !nearest.aborted;
      if (pipeline_ok) {
        for (std::size_t j = 0; j < live.size(); ++j) {
          responses[live[j]].neighbors = std::move(nearest.results[j]);
          responses[live[j]].status = Status::kOk;
        }
      }
    } else {
      core::BatchQueryResult result;
      if (kind == RequestKind::kWindow) {
        std::vector<geom::Rect> windows(live.size());
        for (std::size_t j = 0; j < live.size(); ++j) {
          windows[j] = batch[live[j]].window;
        }
        switch (index) {
          case IndexKind::kQuadTree:
            result = core::batch_window_query(ctx, *gen.quad, windows, control);
            break;
          case IndexKind::kRTree:
            result = core::batch_window_query(ctx, *resolve_rtree(gen),
                                              windows, control);
            break;
          case IndexKind::kLinearQuadTree:
            result = core::batch_window_query(ctx, *resolve_linear(gen),
                                              windows, control);
            break;
        }
      } else {
        std::vector<geom::Point> points(live.size());
        for (std::size_t j = 0; j < live.size(); ++j) {
          points[j] = batch[live[j]].point;
        }
        switch (index) {
          case IndexKind::kQuadTree:
            result = core::batch_point_query(ctx, *gen.quad, points, control);
            break;
          case IndexKind::kRTree:
            result = core::batch_point_query(ctx, *resolve_rtree(gen), points,
                                             control);
            break;
          case IndexKind::kLinearQuadTree:
            result = core::batch_point_query(ctx, *resolve_linear(gen),
                                             points, control);
            break;
        }
      }
      pipeline_ok = !result.aborted;
      if (pipeline_ok) {
        for (std::size_t j = 0; j < live.size(); ++j) {
          responses[live[j]].ids = std::move(result.results[j]);
          responses[live[j]].status = Status::kOk;
        }
      }
    }
    // Failed attempts did real primitive work; the ledger records it.
    scratch.prims += ctx.counters();

    if (pipeline_ok) {
      if (dp_us != nullptr) *dp_us = observe_clock_us() - tattempt;
      ++scratch.dp_groups;
      return;
    }
    if (!ctx.fault_pending()) {
      // Cancel / deadline abort: no amount of retrying helps, settle
      // sequentially now (still-live requests keep their answers).
      control_abort = true;
      break;
    }
    ++scratch.retries;  // fault-aborted attempt; backoff then try again
  }

  // Data-parallel attempts exhausted (or a control abort): the sequential
  // path is fault-free by construction, so answers stay correct under any
  // fault schedule.
  if (!control_abort) ++scratch.seq_fallbacks;
  ++scratch.seq_groups;
  for (const std::size_t i : live) {
    const Status s = pre_status(batch[i], xcancel);
    responses[i].status =
        s == Status::kOk ? run_sequential(gen, batch[i], responses[i]) : s;
  }
}

void QueryEngine::dispatch_group(const IndexGen& gen,
                                 const std::vector<Request>& batch,
                                 std::vector<Response>& responses,
                                 RequestKind kind, IndexKind index,
                                 const std::vector<std::size_t>& live,
                                 std::size_t shard,
                                 const std::atomic<bool>* xcancel,
                                 ShardScratch& scratch) {
  // Chaos runs stall lanes and abort attempts; their wall-clocks would
  // poison the estimator, so the model only learns from clean engines.
  const bool observe = opts_.fault_injector == nullptr;

  const auto mean_k = [&batch](const std::vector<std::size_t>& sub) {
    std::size_t sum = 0;
    for (const std::size_t i : sub) sum += batch[i].k;
    return sub.empty() ? std::size_t{0} : sum / sub.size();
  };

  // Sequential sweep; a clean one (every request ran) is a measurement.
  const auto run_seq = [&](const std::vector<std::size_t>& sub,
                           std::size_t mk) {
    ++scratch.seq_groups;
    const double t = observe_clock_us();
    std::size_t executed = 0;
    for (const std::size_t i : sub) {
      const Status s = pre_status(batch[i], xcancel);
      if (s == Status::kOk) {
        responses[i].status = run_sequential(gen, batch[i], responses[i]);
        ++executed;
      } else {
        responses[i].status = s;
      }
    }
    if (observe && executed == sub.size()) {
      cost_model_.observe(group_shape(gen, kind, index, sub.size(), mk),
                          dpv::CostPath::kSeq, observe_clock_us() - t);
    }
  };

  const auto run_dp = [&](const std::vector<std::size_t>& sub,
                          std::size_t mk) {
    double dp_attempt_us = -1.0;
    run_group(gen, batch, responses, kind, index, sub, shard, xcancel, scratch,
              &dp_attempt_us);
    if (observe && dp_attempt_us >= 0.0) {
      cost_model_.observe(group_shape(gen, kind, index, sub.size(), mk),
                          dpv::CostPath::kDp, dp_attempt_us);
    }
  };

  const std::size_t group_k =
      kind == RequestKind::kNearest ? mean_k(live) : 0;
  switch (opts_.dispatch) {
    case DispatchMode::kForceDp:
      run_dp(live, group_k);
      return;
    case DispatchMode::kForceSeq:
      run_seq(live, group_k);
      return;
    case DispatchMode::kStatic:
      if (live.size() >= opts_.min_dp_batch) {
        run_dp(live, group_k);
      } else {
        run_seq(live, group_k);
      }
      return;
    case DispatchMode::kModel:
      break;
  }

  if (kind != RequestKind::kNearest) {
    const dpv::CostDecision d =
        cost_model_.decide(group_shape(gen, kind, index, live.size(), 0));
    if (d.use_dp) {
      run_dp(live, 0);
    } else {
      run_seq(live, 0);
    }
    return;
  }

  // k-nearest groups decide per k bucket, which is where the hybrid split
  // comes from: a small-k (or just small) bucket whose measured sequential
  // cost beats the dp estimate by `hybrid_margin` peels out of the
  // pipeline, the rest run as one dp group.
  std::array<std::vector<std::size_t>, 64> buckets;
  for (const std::size_t i : live) {
    buckets[static_cast<std::size_t>(
                dpv::CostModel::log2_bucket(batch[i].k))]
        .push_back(i);
  }
  std::vector<std::size_t> dp_side;
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> seq_side;
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> dp_probes;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const std::size_t mk = mean_k(bucket);
    const dpv::CostDecision d =
        cost_model_.decide(group_shape(gen, kind, index, bucket.size(), mk));
    bool seq = !d.use_dp;
    if (seq && d.measured && !d.explored) {
      // Peeling shrinks the dp group everyone else amortizes against, so a
      // measured bucket leaves only when sequential wins by a margin.
      seq = d.seq_us * cost_model_.options().hybrid_margin <= d.dp_us;
    }
    if (seq) {
      seq_side.emplace_back(std::move(bucket), mk);
    } else if (d.explored || !d.measured) {
      // Probes and not-yet-measured buckets run alone: merged into the
      // bulk group, their wall-clock would be observed under the *merged*
      // group's (k, size) family, this bucket's own cells would never
      // train, and a bootstrap-dp bucket would stay on the prior forever
      // (a k = 1 sliver never shifts the bulk group's mean-k family).
      dp_probes.emplace_back(std::move(bucket), mk);
    } else {
      dp_side.insert(dp_side.end(), bucket.begin(), bucket.end());
    }
  }
  const bool any_dp = !dp_side.empty() || !dp_probes.empty();
  if (any_dp && !seq_side.empty()) ++scratch.hybrid_groups;
  if (!dp_side.empty()) run_dp(dp_side, mean_k(dp_side));
  for (const auto& [sub, mk] : dp_probes) run_dp(sub, mk);
  for (const auto& [sub, mk] : seq_side) run_seq(sub, mk);
}

void QueryEngine::execute_shard(const IndexGen& gen,
                                const std::vector<Request>& batch,
                                const std::vector<Status>& admitted,
                                std::vector<Response>& responses,
                                Clock::time_point t0, std::size_t shard,
                                std::size_t lo, std::size_t hi,
                                const std::atomic<bool>* xcancel,
                                ShardScratch& scratch) {
  // Regroup this shard's slice by (kind, index): each group is one batch
  // pipeline invocation (or one sequential sweep).  Requests the gate
  // already settled (validation) pass through with their gate status.
  const auto tshard = Clock::now();
  std::array<std::vector<std::size_t>, kNumKinds * kNumIndexes> groups;
  for (std::size_t i = lo; i < hi; ++i) {
    if (admitted[i] != Status::kOk) {
      responses[i].status = admitted[i];
      responses[i].latency_us = us_since(t0);
      continue;
    }
    groups[group_id(batch[i].kind, batch[i].index)].push_back(i);
  }
  scratch.stages.shard_ms += ms_since(tshard);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) continue;
    const auto kind = static_cast<RequestKind>(g / kNumIndexes);
    const auto index = static_cast<IndexKind>(g % kNumIndexes);
    const auto tgroup = Clock::now();

    const bool supported =
        gen.has(index) && !(kind == RequestKind::kNearest &&
                            index == IndexKind::kLinearQuadTree);

    // Settle structurally rejected and already-dead requests up front.
    std::vector<std::size_t> live;
    live.reserve(groups[g].size());
    for (const std::size_t i : groups[g]) {
      if (!supported) {
        responses[i].status = Status::kRejected;
        continue;
      }
      const Status s = pre_status(batch[i], xcancel);
      if (s == Status::kOk) {
        live.push_back(i);
      } else {
        responses[i].status = s;
      }
    }

    if (!live.empty()) {
      // Every supported (kind, index) combo has a batch pipeline; the
      // dispatch policy (cost model by default) picks dp / sequential /
      // hybrid per group.
      dispatch_group(gen, batch, responses, kind, index, live, shard, xcancel,
                     scratch);
    }

    const double group_ms = ms_since(tgroup);
    switch (kind) {
      case RequestKind::kWindow: scratch.stages.window_ms += group_ms; break;
      case RequestKind::kPoint: scratch.stages.point_ms += group_ms; break;
      case RequestKind::kNearest: scratch.stages.nearest_ms += group_ms; break;
    }
    for (const std::size_t i : groups[g]) {
      responses[i].latency_us = us_since(t0);
    }
  }
}

std::vector<Response> QueryEngine::serve(const std::vector<Request>& batch) {
  return serve(batch, nullptr);
}

std::vector<Response> QueryEngine::serve(const std::vector<Request>& batch,
                                         const std::atomic<bool>* xcancel) {
  const auto t0 = Clock::now();
  const std::size_t n = batch.size();
  std::vector<Response> responses(n);

  ServeMetrics delta;
  delta.batches = 1;
  delta.requests = n;

  // Geometry gate: malformed requests settle with kInvalidArgument before
  // they can consume admission budget or reach a pipeline.
  std::vector<Status> gate(n, Status::kOk);
  std::size_t admitted_requests = 0;
  Priority priority = Priority::kLow;
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.validate_requests) gate[i] = validate_request(batch[i]);
    if (gate[i] == Status::kOk) {
      ++admitted_requests;
      priority = std::max(priority, batch[i].priority);
    }
  }

  bool executed = false;
  std::vector<ShardScratch> scratch;
  if (admitted_requests > 0) {
    // RAII admission: the token and request budget release on every exit
    // path, including a throw from the pool body.
    AdmissionGuard admitted(admission_, admitted_requests, priority);
    if (!admitted.admitted()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (gate[i] == Status::kOk) gate[i] = Status::kShedded;
      }
    } else {
      executed = true;
      // Shared mount lock: a concurrent mount() waits for this batch.
      std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
      // Pin the current index generation for the whole batch: every shard
      // reads this snapshot, so a concurrent apply_update (which swaps the
      // generation without taking the mount lock exclusively) can never
      // tear the view mid-batch.
      const std::shared_ptr<const IndexGen> gen = snapshot_gen();
#ifndef NDEBUG
      debug_in_flight_.fetch_add(1, std::memory_order_acq_rel);
#endif
      const std::size_t k = std::min(shards_, n);
      scratch.resize(k);
      // Lanes are the physical limit; when the engine is configured with
      // more shards than lanes, each lane drains several shards in turn.
      const std::size_t lanes = std::min(k, pool_->size());
      pool_->run(lanes, [&](std::size_t lane) {
        for (std::size_t s = lane; s < k; s += lanes) {
          const auto [lo, hi] = dpv::Context::block_range(n, k, s);
          if (lo < hi) {
            execute_shard(*gen, batch, gate, responses, t0, s, lo, hi,
                          xcancel, scratch[s]);
          }
        }
      });
#ifndef NDEBUG
      debug_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
#endif
    }
  }
  if (!executed) {
    // Nothing ran: every request settles with its gate status.
    for (std::size_t i = 0; i < n; ++i) {
      responses[i].status = gate[i];
      responses[i].latency_us = us_since(t0);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    switch (batch[i].kind) {
      case RequestKind::kWindow: ++delta.window_requests; break;
      case RequestKind::kPoint: ++delta.point_requests; break;
      case RequestKind::kNearest: ++delta.nearest_requests; break;
    }
    switch (responses[i].status) {
      case Status::kOk: ++delta.ok; break;
      case Status::kDeadlineExpired: ++delta.expired; break;
      case Status::kCancelled: ++delta.cancelled; break;
      case Status::kRejected: ++delta.rejected; break;
      case Status::kShedded: ++delta.shedded; break;
      case Status::kInvalidArgument: ++delta.invalid; break;
      case Status::kPartial: break;  // cluster-only status; engines never
                                     // produce it
    }
    delta.latency.record(responses[i].latency_us);
  }
  for (const ShardScratch& sc : scratch) {
    delta.stages += sc.stages;
    delta.dp_groups += sc.dp_groups;
    delta.seq_groups += sc.seq_groups;
    delta.hybrid_groups += sc.hybrid_groups;
    delta.retries += sc.retries;
    delta.seq_fallbacks += sc.seq_fallbacks;
  }

  {
    const auto tmerge = Clock::now();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const ShardScratch& sc : scratch) session_.merge_counters(sc.prims);
    delta.stages.merge_ms = ms_since(tmerge);
    metrics_ += delta;
  }
  return responses;
}

ServeMetrics QueryEngine::metrics() const {
  ServeMetrics out;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    out = metrics_;
    out.prims = session_.snapshot();
  }
  out.lazy_rtree_rebuilds = lazy_rtree_builds_.load(std::memory_order_relaxed);
  out.lazy_linear_rebuilds =
      lazy_linear_builds_.load(std::memory_order_relaxed);
  out.cost_model = cost_model_.snapshot();
  return out;
}

void QueryEngine::reset_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = ServeMetrics{};
  session_.reset_counters();
  lazy_rtree_builds_.store(0, std::memory_order_relaxed);
  lazy_linear_builds_.store(0, std::memory_order_relaxed);
}

}  // namespace dps::serve
