#include "serve/engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <ctime>
#include <thread>

#include "core/batch_nearest.hpp"
#include "core/nearest.hpp"
#include "core/query.hpp"
#include "core/validate.hpp"

namespace dps::serve {

namespace {

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

double us_since(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

/// Observation clock for the dispatch cost model.  On an oversubscribed
/// host a lane's wall-clock mostly measures preemption by its peer lanes,
/// not the work, and the polluted coefficients lock the model into
/// whatever policy it happened to warm up under.  Thread CPU time is
/// scheduler-invariant: it prices the work itself, which is what dispatch
/// minimizes (and on a saturated machine total work *is* wall-clock).
/// Falls back to the wall clock where the POSIX thread clock is absent.
double observe_clock_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kNumKinds = 3;
constexpr std::size_t kNumIndexes = 3;

std::size_t group_id(RequestKind kind, IndexKind index) noexcept {
  return static_cast<std::size_t>(kind) * kNumIndexes +
         static_cast<std::size_t>(index);
}

/// Per-request geometry gate (Status::kOk = well-formed).
Status validate_request(const Request& rq) noexcept {
  switch (rq.kind) {
    case RequestKind::kWindow:
      return core::validate_window(rq.window) ? Status::kInvalidArgument
                                              : Status::kOk;
    case RequestKind::kPoint:
      return core::validate_point(rq.point) ? Status::kInvalidArgument
                                            : Status::kOk;
    case RequestKind::kNearest:
      return core::validate_nearest(rq.point, rq.k) ? Status::kInvalidArgument
                                                    : Status::kOk;
  }
  return Status::kInvalidArgument;
}

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kRejected: return "rejected";
    case Status::kShedded: return "shedded";
    case Status::kInvalidArgument: return "invalid-argument";
    case Status::kPartial: return "partial";
  }
  return "unknown";
}

QueryEngine::QueryEngine(EngineOptions opts)
    : opts_(opts),
      pool_(std::make_shared<dpv::ThreadPool>(opts.threads)),
      admission_(opts.admission),
      cost_model_([&opts] {
        // One knob: `min_dp_batch` is the model's bootstrap prior.
        dpv::CostModelOptions co = opts.cost_model;
        co.bootstrap_min_dp_batch = opts.min_dp_batch;
        return co;
      }()) {
  shards_ = opts_.shards == 0 ? pool_->size() : opts_.shards;
  if (shards_ == 0) shards_ = 1;
  shard_template_.set_grain(opts_.grain);
  if (opts_.scratch_arena) {
    arenas_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      arenas_.push_back(std::make_unique<dpv::Arena>());
    }
  }
  if (opts_.fault_injector != nullptr) {
    pool_->set_fault_injector(opts_.fault_injector);
  }
}

void QueryEngine::mount(const core::QuadTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  quad_ = tree;
  mount_epoch_.fetch_add(1, std::memory_order_release);
}

void QueryEngine::mount(const core::RTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  rtree_ = tree;
  mount_epoch_.fetch_add(1, std::memory_order_release);
}

void QueryEngine::mount(const core::LinearQuadTree* tree) {
  std::unique_lock<std::shared_mutex> lock(mount_mutex_);
  assert(debug_in_flight_.load(std::memory_order_acquire) == 0 &&
         "mount must be serialized against in-flight serve() batches");
  linear_ = tree;
  mount_epoch_.fetch_add(1, std::memory_order_release);
}

Status QueryEngine::pre_status(const Request& rq,
                               const std::atomic<bool>* xcancel) const noexcept {
  if (cancel_.load(std::memory_order_relaxed)) return Status::kCancelled;
  if (xcancel != nullptr && xcancel->load(std::memory_order_relaxed)) {
    return Status::kCancelled;
  }
  if (rq.has_deadline() && Clock::now() >= *rq.deadline) {
    return Status::kDeadlineExpired;
  }
  return Status::kOk;
}

Status QueryEngine::run_sequential(const Request& rq, Response& rsp) const {
  switch (rq.kind) {
    case RequestKind::kWindow:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::window_query(*quad_, rq.window);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::window_query(*rtree_, rq.window);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = linear_->window_query(rq.window);
          break;
      }
      return Status::kOk;
    case RequestKind::kPoint:
      switch (rq.index) {
        case IndexKind::kQuadTree:
          rsp.ids = core::point_query(*quad_, rq.point);
          break;
        case IndexKind::kRTree:
          rsp.ids = core::point_query(*rtree_, rq.point);
          break;
        case IndexKind::kLinearQuadTree:
          rsp.ids = linear_->point_query(rq.point);
          break;
      }
      return Status::kOk;
    case RequestKind::kNearest:
      rsp.neighbors = rq.index == IndexKind::kQuadTree
                          ? core::k_nearest(*quad_, rq.point, rq.k)
                          : core::k_nearest(*rtree_, rq.point, rq.k);
      return Status::kOk;
  }
  return Status::kRejected;
}

void QueryEngine::backoff(std::size_t shard, std::size_t attempt) const {
  if (opts_.backoff_base.count() <= 0 || attempt == 0) return;
  const double steps = static_cast<double>(std::uint64_t{1} << (attempt - 1));
  // Deterministic jitter in [1 - j, 1 + j): replays identically for a
  // given (retry_seed, shard, attempt), like every other chaos decision.
  const std::uint64_t u = dpv::mix64(
      opts_.retry_seed ^ dpv::FaultInjector::scope(shard, attempt, 0xB0FFull));
  const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;
  const double jitter = 1.0 + opts_.backoff_jitter * (2.0 * unit - 1.0);
  const double us =
      static_cast<double>(opts_.backoff_base.count()) * steps * jitter;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

std::size_t QueryEngine::index_elements(IndexKind index) const noexcept {
  switch (index) {
    case IndexKind::kQuadTree:
      return quad_ != nullptr ? quad_->num_qedges() : 0;
    case IndexKind::kRTree:
      return rtree_ != nullptr ? rtree_->entries().size() : 0;
    case IndexKind::kLinearQuadTree:
      return linear_ != nullptr ? linear_->edges().size() : 0;
  }
  return 0;
}

dpv::GroupShape QueryEngine::group_shape(RequestKind kind, IndexKind index,
                                         std::size_t n,
                                         std::size_t mean_k) const noexcept {
  dpv::GroupShape g;
  g.kind = static_cast<int>(kind);
  g.index = static_cast<int>(index);
  g.group_size = n;
  g.map_elements = index_elements(index);
  g.mean_k = mean_k;
  return g;
}

void QueryEngine::run_group(const std::vector<Request>& batch,
                            std::vector<Response>& responses, RequestKind kind,
                            IndexKind index,
                            const std::vector<std::size_t>& live_in,
                            std::size_t shard,
                            const std::atomic<bool>* xcancel,
                            ShardScratch& scratch, double* dp_us) {
  dpv::FaultInjector* const inj = opts_.fault_injector;
  std::vector<std::size_t> live = live_in;
  const std::size_t g = group_id(kind, index);

  bool control_abort = false;  // cancel / deadline fired mid-pipeline
  for (std::size_t attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (attempt > 0) {
      backoff(shard, attempt);
      // Deadlines may have fired during the backoff; settle the dead so
      // one slow retry cannot void its group-mates.
      std::vector<std::size_t> still;
      still.reserve(live.size());
      for (const std::size_t i : live) {
        const Status s = pre_status(batch[i], xcancel);
        if (s == Status::kOk) {
          still.push_back(i);
        } else {
          responses[i].status = s;
        }
      }
      live.swap(still);
      if (live.empty()) return;
    }

    const std::uint64_t scope = dpv::FaultInjector::scope(shard, attempt, g);
    if (inj != nullptr && inj->shard_poisoned(scope)) {
      // A poisoned shard attempt fails before any primitive runs.
      inj->note_shard_poisoned();
      ++scratch.retries;
      continue;
    }

    // Attempt cost (marshaling included) feeds the dispatch cost model
    // when the attempt lands, priced in thread CPU time so peer-lane
    // preemption cannot skew the coefficients.
    const double tattempt = observe_clock_us();
    dpv::Context ctx = shard_template_.fork_serial();
    if (inj != nullptr) ctx.arm_fault_injection(inj, scope);
    // Persistent per-shard scratch arena: the pipeline's round scope
    // recycles the previous serve()'s buffers, so steady-state groups of
    // stable shape allocate nothing.  Safe without locks: a shard is
    // drained by exactly one lane per batch, and batches on the pool are
    // serialized (launch + join), so arena use is always sequenced.
    if (!arenas_.empty()) ctx.set_arena(arenas_[shard].get());

    // Earliest deadline in the group arms the pipeline's control; the
    // engine kill switch is polled through the same hook.
    core::BatchControl control;
    control.cancel = &cancel_;
    control.cancel2 = xcancel;
    for (const std::size_t i : live) {
      if (batch[i].has_deadline() &&
          (!control.has_deadline() || *batch[i].deadline < control.deadline)) {
        control.deadline = *batch[i].deadline;
      }
    }

    bool pipeline_ok = false;
    if (kind == RequestKind::kNearest) {
      // The serve boundary rejects (kNearest, kLinearQuadTree) before
      // grouping, so only the two tree pipelines can reach here.
      std::vector<geom::Point> points(live.size());
      std::vector<std::size_t> ks(live.size());
      for (std::size_t j = 0; j < live.size(); ++j) {
        points[j] = batch[live[j]].point;
        ks[j] = batch[live[j]].k;
      }
      core::BatchNearestResult nearest =
          index == IndexKind::kQuadTree
              ? core::batch_k_nearest(ctx, *quad_, points, ks, control)
              : core::batch_k_nearest(ctx, *rtree_, points, ks, control);
      pipeline_ok = !nearest.aborted;
      if (pipeline_ok) {
        for (std::size_t j = 0; j < live.size(); ++j) {
          responses[live[j]].neighbors = std::move(nearest.results[j]);
          responses[live[j]].status = Status::kOk;
        }
      }
    } else {
      core::BatchQueryResult result;
      if (kind == RequestKind::kWindow) {
        std::vector<geom::Rect> windows(live.size());
        for (std::size_t j = 0; j < live.size(); ++j) {
          windows[j] = batch[live[j]].window;
        }
        switch (index) {
          case IndexKind::kQuadTree:
            result = core::batch_window_query(ctx, *quad_, windows, control);
            break;
          case IndexKind::kRTree:
            result = core::batch_window_query(ctx, *rtree_, windows, control);
            break;
          case IndexKind::kLinearQuadTree:
            result = core::batch_window_query(ctx, *linear_, windows, control);
            break;
        }
      } else {
        std::vector<geom::Point> points(live.size());
        for (std::size_t j = 0; j < live.size(); ++j) {
          points[j] = batch[live[j]].point;
        }
        switch (index) {
          case IndexKind::kQuadTree:
            result = core::batch_point_query(ctx, *quad_, points, control);
            break;
          case IndexKind::kRTree:
            result = core::batch_point_query(ctx, *rtree_, points, control);
            break;
          case IndexKind::kLinearQuadTree:
            result = core::batch_point_query(ctx, *linear_, points, control);
            break;
        }
      }
      pipeline_ok = !result.aborted;
      if (pipeline_ok) {
        for (std::size_t j = 0; j < live.size(); ++j) {
          responses[live[j]].ids = std::move(result.results[j]);
          responses[live[j]].status = Status::kOk;
        }
      }
    }
    // Failed attempts did real primitive work; the ledger records it.
    scratch.prims += ctx.counters();

    if (pipeline_ok) {
      if (dp_us != nullptr) *dp_us = observe_clock_us() - tattempt;
      ++scratch.dp_groups;
      return;
    }
    if (!ctx.fault_pending()) {
      // Cancel / deadline abort: no amount of retrying helps, settle
      // sequentially now (still-live requests keep their answers).
      control_abort = true;
      break;
    }
    ++scratch.retries;  // fault-aborted attempt; backoff then try again
  }

  // Data-parallel attempts exhausted (or a control abort): the sequential
  // path is fault-free by construction, so answers stay correct under any
  // fault schedule.
  if (!control_abort) ++scratch.seq_fallbacks;
  ++scratch.seq_groups;
  for (const std::size_t i : live) {
    const Status s = pre_status(batch[i], xcancel);
    responses[i].status =
        s == Status::kOk ? run_sequential(batch[i], responses[i]) : s;
  }
}

void QueryEngine::dispatch_group(const std::vector<Request>& batch,
                                 std::vector<Response>& responses,
                                 RequestKind kind, IndexKind index,
                                 const std::vector<std::size_t>& live,
                                 std::size_t shard,
                                 const std::atomic<bool>* xcancel,
                                 ShardScratch& scratch) {
  // Chaos runs stall lanes and abort attempts; their wall-clocks would
  // poison the estimator, so the model only learns from clean engines.
  const bool observe = opts_.fault_injector == nullptr;

  const auto mean_k = [&batch](const std::vector<std::size_t>& sub) {
    std::size_t sum = 0;
    for (const std::size_t i : sub) sum += batch[i].k;
    return sub.empty() ? std::size_t{0} : sum / sub.size();
  };

  // Sequential sweep; a clean one (every request ran) is a measurement.
  const auto run_seq = [&](const std::vector<std::size_t>& sub,
                           std::size_t mk) {
    ++scratch.seq_groups;
    const double t = observe_clock_us();
    std::size_t executed = 0;
    for (const std::size_t i : sub) {
      const Status s = pre_status(batch[i], xcancel);
      if (s == Status::kOk) {
        responses[i].status = run_sequential(batch[i], responses[i]);
        ++executed;
      } else {
        responses[i].status = s;
      }
    }
    if (observe && executed == sub.size()) {
      cost_model_.observe(group_shape(kind, index, sub.size(), mk),
                          dpv::CostPath::kSeq, observe_clock_us() - t);
    }
  };

  const auto run_dp = [&](const std::vector<std::size_t>& sub,
                          std::size_t mk) {
    double dp_attempt_us = -1.0;
    run_group(batch, responses, kind, index, sub, shard, xcancel, scratch,
              &dp_attempt_us);
    if (observe && dp_attempt_us >= 0.0) {
      cost_model_.observe(group_shape(kind, index, sub.size(), mk),
                          dpv::CostPath::kDp, dp_attempt_us);
    }
  };

  const std::size_t group_k =
      kind == RequestKind::kNearest ? mean_k(live) : 0;
  switch (opts_.dispatch) {
    case DispatchMode::kForceDp:
      run_dp(live, group_k);
      return;
    case DispatchMode::kForceSeq:
      run_seq(live, group_k);
      return;
    case DispatchMode::kStatic:
      if (live.size() >= opts_.min_dp_batch) {
        run_dp(live, group_k);
      } else {
        run_seq(live, group_k);
      }
      return;
    case DispatchMode::kModel:
      break;
  }

  if (kind != RequestKind::kNearest) {
    const dpv::CostDecision d =
        cost_model_.decide(group_shape(kind, index, live.size(), 0));
    if (d.use_dp) {
      run_dp(live, 0);
    } else {
      run_seq(live, 0);
    }
    return;
  }

  // k-nearest groups decide per k bucket, which is where the hybrid split
  // comes from: a small-k (or just small) bucket whose measured sequential
  // cost beats the dp estimate by `hybrid_margin` peels out of the
  // pipeline, the rest run as one dp group.
  std::array<std::vector<std::size_t>, 64> buckets;
  for (const std::size_t i : live) {
    buckets[static_cast<std::size_t>(
                dpv::CostModel::log2_bucket(batch[i].k))]
        .push_back(i);
  }
  std::vector<std::size_t> dp_side;
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> seq_side;
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> dp_probes;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const std::size_t mk = mean_k(bucket);
    const dpv::CostDecision d =
        cost_model_.decide(group_shape(kind, index, bucket.size(), mk));
    bool seq = !d.use_dp;
    if (seq && d.measured && !d.explored) {
      // Peeling shrinks the dp group everyone else amortizes against, so a
      // measured bucket leaves only when sequential wins by a margin.
      seq = d.seq_us * cost_model_.options().hybrid_margin <= d.dp_us;
    }
    if (seq) {
      seq_side.emplace_back(std::move(bucket), mk);
    } else if (d.explored || !d.measured) {
      // Probes and not-yet-measured buckets run alone: merged into the
      // bulk group, their wall-clock would be observed under the *merged*
      // group's (k, size) family, this bucket's own cells would never
      // train, and a bootstrap-dp bucket would stay on the prior forever
      // (a k = 1 sliver never shifts the bulk group's mean-k family).
      dp_probes.emplace_back(std::move(bucket), mk);
    } else {
      dp_side.insert(dp_side.end(), bucket.begin(), bucket.end());
    }
  }
  const bool any_dp = !dp_side.empty() || !dp_probes.empty();
  if (any_dp && !seq_side.empty()) ++scratch.hybrid_groups;
  if (!dp_side.empty()) run_dp(dp_side, mean_k(dp_side));
  for (const auto& [sub, mk] : dp_probes) run_dp(sub, mk);
  for (const auto& [sub, mk] : seq_side) run_seq(sub, mk);
}

void QueryEngine::execute_shard(const std::vector<Request>& batch,
                                const std::vector<Status>& admitted,
                                std::vector<Response>& responses,
                                Clock::time_point t0, std::size_t shard,
                                std::size_t lo, std::size_t hi,
                                const std::atomic<bool>* xcancel,
                                ShardScratch& scratch) {
  // Regroup this shard's slice by (kind, index): each group is one batch
  // pipeline invocation (or one sequential sweep).  Requests the gate
  // already settled (validation) pass through with their gate status.
  const auto tshard = Clock::now();
  std::array<std::vector<std::size_t>, kNumKinds * kNumIndexes> groups;
  for (std::size_t i = lo; i < hi; ++i) {
    if (admitted[i] != Status::kOk) {
      responses[i].status = admitted[i];
      responses[i].latency_us = us_since(t0);
      continue;
    }
    groups[group_id(batch[i].kind, batch[i].index)].push_back(i);
  }
  scratch.stages.shard_ms += ms_since(tshard);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) continue;
    const auto kind = static_cast<RequestKind>(g / kNumIndexes);
    const auto index = static_cast<IndexKind>(g % kNumIndexes);
    const auto tgroup = Clock::now();

    const bool mounted = (index == IndexKind::kQuadTree && quad_ != nullptr) ||
                         (index == IndexKind::kRTree && rtree_ != nullptr) ||
                         (index == IndexKind::kLinearQuadTree &&
                          linear_ != nullptr);
    const bool supported =
        mounted && !(kind == RequestKind::kNearest &&
                     index == IndexKind::kLinearQuadTree);

    // Settle structurally rejected and already-dead requests up front.
    std::vector<std::size_t> live;
    live.reserve(groups[g].size());
    for (const std::size_t i : groups[g]) {
      if (!supported) {
        responses[i].status = Status::kRejected;
        continue;
      }
      const Status s = pre_status(batch[i], xcancel);
      if (s == Status::kOk) {
        live.push_back(i);
      } else {
        responses[i].status = s;
      }
    }

    if (!live.empty()) {
      // Every supported (kind, index) combo has a batch pipeline; the
      // dispatch policy (cost model by default) picks dp / sequential /
      // hybrid per group.
      dispatch_group(batch, responses, kind, index, live, shard, xcancel,
                     scratch);
    }

    const double group_ms = ms_since(tgroup);
    switch (kind) {
      case RequestKind::kWindow: scratch.stages.window_ms += group_ms; break;
      case RequestKind::kPoint: scratch.stages.point_ms += group_ms; break;
      case RequestKind::kNearest: scratch.stages.nearest_ms += group_ms; break;
    }
    for (const std::size_t i : groups[g]) {
      responses[i].latency_us = us_since(t0);
    }
  }
}

std::vector<Response> QueryEngine::serve(const std::vector<Request>& batch) {
  return serve(batch, nullptr);
}

std::vector<Response> QueryEngine::serve(const std::vector<Request>& batch,
                                         const std::atomic<bool>* xcancel) {
  const auto t0 = Clock::now();
  const std::size_t n = batch.size();
  std::vector<Response> responses(n);

  ServeMetrics delta;
  delta.batches = 1;
  delta.requests = n;

  // Geometry gate: malformed requests settle with kInvalidArgument before
  // they can consume admission budget or reach a pipeline.
  std::vector<Status> gate(n, Status::kOk);
  std::size_t admitted_requests = 0;
  Priority priority = Priority::kLow;
  for (std::size_t i = 0; i < n; ++i) {
    if (opts_.validate_requests) gate[i] = validate_request(batch[i]);
    if (gate[i] == Status::kOk) {
      ++admitted_requests;
      priority = std::max(priority, batch[i].priority);
    }
  }

  bool executed = false;
  std::vector<ShardScratch> scratch;
  if (admitted_requests > 0) {
    // RAII admission: the token and request budget release on every exit
    // path, including a throw from the pool body.
    AdmissionGuard admitted(admission_, admitted_requests, priority);
    if (!admitted.admitted()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (gate[i] == Status::kOk) gate[i] = Status::kShedded;
      }
    } else {
      executed = true;
      // Shared mount lock: a concurrent mount() waits for this batch.
      std::shared_lock<std::shared_mutex> mounts(mount_mutex_);
#ifndef NDEBUG
      debug_in_flight_.fetch_add(1, std::memory_order_acq_rel);
#endif
      const std::size_t k = std::min(shards_, n);
      scratch.resize(k);
      // Lanes are the physical limit; when the engine is configured with
      // more shards than lanes, each lane drains several shards in turn.
      const std::size_t lanes = std::min(k, pool_->size());
      pool_->run(lanes, [&](std::size_t lane) {
        for (std::size_t s = lane; s < k; s += lanes) {
          const auto [lo, hi] = dpv::Context::block_range(n, k, s);
          if (lo < hi) {
            execute_shard(batch, gate, responses, t0, s, lo, hi, xcancel,
                          scratch[s]);
          }
        }
      });
#ifndef NDEBUG
      debug_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
#endif
    }
  }
  if (!executed) {
    // Nothing ran: every request settles with its gate status.
    for (std::size_t i = 0; i < n; ++i) {
      responses[i].status = gate[i];
      responses[i].latency_us = us_since(t0);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    switch (batch[i].kind) {
      case RequestKind::kWindow: ++delta.window_requests; break;
      case RequestKind::kPoint: ++delta.point_requests; break;
      case RequestKind::kNearest: ++delta.nearest_requests; break;
    }
    switch (responses[i].status) {
      case Status::kOk: ++delta.ok; break;
      case Status::kDeadlineExpired: ++delta.expired; break;
      case Status::kCancelled: ++delta.cancelled; break;
      case Status::kRejected: ++delta.rejected; break;
      case Status::kShedded: ++delta.shedded; break;
      case Status::kInvalidArgument: ++delta.invalid; break;
      case Status::kPartial: break;  // cluster-only status; engines never
                                     // produce it
    }
    delta.latency.record(responses[i].latency_us);
  }
  for (const ShardScratch& sc : scratch) {
    delta.stages += sc.stages;
    delta.dp_groups += sc.dp_groups;
    delta.seq_groups += sc.seq_groups;
    delta.hybrid_groups += sc.hybrid_groups;
    delta.retries += sc.retries;
    delta.seq_fallbacks += sc.seq_fallbacks;
  }

  {
    const auto tmerge = Clock::now();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const ShardScratch& sc : scratch) session_.merge_counters(sc.prims);
    delta.stages.merge_ms = ms_since(tmerge);
    metrics_ += delta;
  }
  return responses;
}

ServeMetrics QueryEngine::metrics() const {
  ServeMetrics out;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    out = metrics_;
    out.prims = session_.snapshot();
  }
  out.cost_model = cost_model_.snapshot();
  return out;
}

void QueryEngine::reset_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = ServeMetrics{};
  session_.reset_counters();
}

}  // namespace dps::serve
