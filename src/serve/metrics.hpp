#pragma once
// Serving-engine metrics: request accounting, per-stage wall clock, a
// power-of-two latency histogram, and the merged scan-model ledger.
//
// Every shard counts into private copies of these structures while it
// runs; the engine folds them into its session-wide ServeMetrics after the
// fork joins (the same snapshot/merge discipline `dpv::Context` uses for
// its PrimCounters).  The merged ledger is an ordinary PrimCounters, so it
// replays through `dpv::MachineModel` like any build or batch-query
// ledger.

#include <array>
#include <cstddef>
#include <cstdint>

#include "dpv/context.hpp"

namespace dps::serve {

/// Histogram over microsecond latencies with power-of-two buckets:
/// bucket b counts samples in [2^b, 2^(b+1)) us (bucket 0 also takes
/// sub-microsecond samples).  Fixed size, mergeable, no allocation.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double us) noexcept;
  std::uint64_t count() const noexcept;

  /// Upper bound (us) of the bucket holding the q-quantile sample
  /// (0 < q <= 1); 0 when empty.  Coarse by design -- buckets are octaves.
  double quantile_upper_us(double q) const noexcept;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  LatencyHistogram& operator+=(const LatencyHistogram& other) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Wall-clock milliseconds per engine stage, summed over serve() calls.
struct StageTimes {
  double shard_ms = 0.0;    // partition requests into per-shard groups
  double window_ms = 0.0;   // window groups (batch pipeline or sequential)
  double point_ms = 0.0;    // point groups
  double nearest_ms = 0.0;  // k-nearest groups (always sequential)
  double merge_ms = 0.0;    // fold shard ledgers/metrics into the session

  StageTimes& operator+=(const StageTimes& other) noexcept;
};

struct ServeMetrics {
  std::uint64_t batches = 0;   // serve() calls
  std::uint64_t requests = 0;  // individual requests seen

  // Terminal statuses.
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shedded = 0;  // load-shed by admission control
  std::uint64_t invalid = 0;  // malformed geometry rejected at the boundary

  // Request mix.
  std::uint64_t window_requests = 0;
  std::uint64_t point_requests = 0;
  std::uint64_t nearest_requests = 0;

  // Execution-path split: groups that ran the data-parallel pipeline vs
  // groups degraded to per-request sequential traversal (tiny batches,
  // indexes without a batch pipeline, or deadline fallback).
  std::uint64_t dp_groups = 0;
  std::uint64_t seq_groups = 0;

  // Fault-tolerance accounting.  `retries` counts data-parallel attempts
  // that aborted (injected fault or poisoned shard attempt) and were
  // re-tried after backoff; `seq_fallbacks` counts groups that exhausted
  // their dp attempts and completed on the always-correct sequential
  // path.  Both are deterministic for a seeded fault schedule.
  std::uint64_t retries = 0;
  std::uint64_t seq_fallbacks = 0;

  dpv::PrimCounters prims;  // merged per-shard scan-model ledger
  StageTimes stages;
  LatencyHistogram latency;

  ServeMetrics& operator+=(const ServeMetrics& other) noexcept;
};

}  // namespace dps::serve
