#pragma once
// Serving-engine metrics: request accounting, per-stage wall clock, an
// HDR-style latency histogram, and the merged scan-model ledger.
//
// Every shard counts into private copies of these structures while it
// runs; the engine folds them into its session-wide ServeMetrics after the
// fork joins (the same snapshot/merge discipline `dpv::Context` uses for
// its PrimCounters).  The merged ledger is an ordinary PrimCounters, so it
// replays through `dpv::MachineModel` like any build or batch-query
// ledger.

#include <array>
#include <cstddef>
#include <cstdint>

#include "dpv/context.hpp"
#include "dpv/cost_model.hpp"

namespace dps::serve {

/// HDR-style histogram over microsecond latencies: 1us-wide buckets below
/// 32us, then every power-of-two octave [2^g, 2^(g+1)) subdivided into 32
/// equal sub-buckets, so the bucket width is always <= 1/32 (~3.2%) of the
/// latency it brackets -- quantiles stay sharp from microseconds to the
/// ~68s cap instead of rounding to octave edges.  Fixed size, mergeable,
/// no allocation.
class LatencyHistogram {
 public:
  static constexpr std::size_t kUnitBuckets = 32;   // [v, v+1) for v < 32
  static constexpr std::size_t kSubBits = 5;        // 32 sub-buckets/octave
  static constexpr std::size_t kFirstOctave = 5;    // first subdivided: 2^5
  static constexpr std::size_t kLastOctave = 36;    // top octave: [2^36, 2^37)
  static constexpr std::size_t kBuckets =
      kUnitBuckets + (kLastOctave - kFirstOctave + 1) * (1u << kSubBits);

  void record(double us) noexcept;
  std::uint64_t count() const noexcept;

  /// Upper bound (us) of the bucket holding the q-quantile sample
  /// (0 < q <= 1); 0 when empty.  Within 1/32 of the true quantile sample.
  double quantile_upper_us(double q) const noexcept;

  /// Bucket index a latency lands in, and the bucket's [lower, upper) us
  /// bounds -- exposed so tests can assert the resolution contract.
  static std::size_t bucket_of(double us) noexcept;
  static double bucket_lower_us(std::size_t b) noexcept;
  static double bucket_upper_us(std::size_t b) noexcept;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  LatencyHistogram& operator+=(const LatencyHistogram& other) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Wall-clock milliseconds per engine stage, summed over serve() calls.
struct StageTimes {
  double shard_ms = 0.0;    // partition requests into per-shard groups
  double window_ms = 0.0;   // window groups (batch pipeline or sequential)
  double point_ms = 0.0;    // point groups
  double nearest_ms = 0.0;  // k-nearest groups (always sequential)
  double merge_ms = 0.0;    // fold shard ledgers/metrics into the session

  StageTimes& operator+=(const StageTimes& other) noexcept;
};

struct ServeMetrics {
  std::uint64_t batches = 0;   // serve() calls
  std::uint64_t requests = 0;  // individual requests seen

  // Terminal statuses.
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shedded = 0;  // load-shed by admission control
  std::uint64_t invalid = 0;  // malformed geometry rejected at the boundary

  // Request mix.
  std::uint64_t window_requests = 0;
  std::uint64_t point_requests = 0;
  std::uint64_t nearest_requests = 0;

  // Execution-path split: groups that ran the data-parallel pipeline vs
  // groups degraded to per-request sequential traversal (model/prior
  // decision, indexes without a batch pipeline, or deadline fallback).
  // `hybrid_groups` counts k-nearest groups the cost model split -- the
  // small-k tail walked sequentially while the bulk ran the dp pipeline
  // (such a group increments dp_groups, seq_groups, and hybrid_groups).
  std::uint64_t dp_groups = 0;
  std::uint64_t seq_groups = 0;
  std::uint64_t hybrid_groups = 0;

  // Fault-tolerance accounting.  `retries` counts data-parallel attempts
  // that aborted (injected fault or poisoned shard attempt) and were
  // re-tried after backoff; `seq_fallbacks` counts groups that exhausted
  // their dp attempts and completed on the always-correct sequential
  // path.  Both are deterministic for a seeded fault schedule.
  std::uint64_t retries = 0;
  std::uint64_t seq_fallbacks = 0;

  // Live-update accounting.  `updates` counts apply_update calls that
  // published a generation; `update_failures` counts calls that published
  // nothing (validation, or a fault-aborted shadow build); `compactions`
  // counts updates that ran the full dp rebuild instead of the
  // incremental insert/delete pass.  The lazy counters record sibling
  // indexes (R-tree / linear quadtree, which have no update path) rebuilt
  // on first use within an updated generation.
  std::uint64_t updates = 0;
  std::uint64_t update_inserts = 0;
  std::uint64_t update_deletes = 0;
  std::uint64_t update_failures = 0;
  std::uint64_t compactions = 0;
  std::uint64_t lazy_rtree_rebuilds = 0;
  std::uint64_t lazy_linear_rebuilds = 0;

  dpv::PrimCounters prims;  // merged per-shard scan-model ledger
  StageTimes stages;
  LatencyHistogram latency;

  // Learned dispatch coefficients at snapshot time.  Folding two metrics
  // merges the snapshots (better-trained entry per cell wins), which is how
  // Cluster replicas publish their ledgers to each other.
  dpv::CostModelSnapshot cost_model;

  ServeMetrics& operator+=(const ServeMetrics& other);
};

}  // namespace dps::serve
