#include "serve/cache.hpp"

#include <bit>
#include <cmath>

#include "dpv/fault.hpp"  // dpv::mix64

namespace dps::serve {

namespace {

/// Exact-match bit pattern of a coordinate with -0.0 folded to 0.0, so the
/// two representations of zero share one key.
std::uint64_t canon_bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
}

double bits_to_double(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

/// Past this many dirty rects a sweep would test every entry against a
/// long list for little gain; collapse to the MBR union instead (coarser
/// but still conservative).
constexpr std::size_t kMaxDirtyRects = 64;

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = dpv::mix64(
      (static_cast<std::uint64_t>(k.kind) << 8) | k.index);
  h = dpv::mix64(h ^ k.k);
  h = dpv::mix64(h ^ k.g0);
  h = dpv::mix64(h ^ k.g1);
  h = dpv::mix64(h ^ k.g2);
  h = dpv::mix64(h ^ k.g3);
  return static_cast<std::size_t>(h);
}

ResultCache::Key ResultCache::canonical_key(const Request& rq) noexcept {
  Key key;
  key.kind = static_cast<std::uint8_t>(rq.kind);
  key.index = static_cast<std::uint8_t>(rq.index);
  switch (rq.kind) {
    case RequestKind::kWindow:
      key.g0 = canon_bits(rq.window.xmin);
      key.g1 = canon_bits(rq.window.ymin);
      key.g2 = canon_bits(rq.window.xmax);
      key.g3 = canon_bits(rq.window.ymax);
      break;
    case RequestKind::kPoint:
      key.g0 = canon_bits(rq.point.x);
      key.g1 = canon_bits(rq.point.y);
      break;
    case RequestKind::kNearest:
      key.g0 = canon_bits(rq.point.x);
      key.g1 = canon_bits(rq.point.y);
      key.k = rq.k;
      break;
  }
  return key;
}

bool ResultCache::lookup(const Key& key, Response& out) {
  if (!usable()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end() || it->second->epoch != epoch_) {
    // A stale-epoch entry can only exist transiently (bump_epoch drops
    // them eagerly); treat it as a miss either way.
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out.ids = it->second->ids;
  out.neighbors = it->second->neighbors;
  out.status = Status::kOk;
  ++stats_.hits;
  return true;
}

void ResultCache::insert(const Key& key, const Response& rsp) {
  if (!usable() || rsp.status != Status::kOk) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->ids = rsp.ids;
    it->second->neighbors = rsp.neighbors;
    it->second->epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, epoch_, rsp.ids, rsp.neighbors});
  map_[key] = lru_.begin();
  while (map_.size() > opts_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::insert(const Key& key, const Response& rsp,
                         std::uint64_t if_version) {
  if (!usable() || rsp.status != Status::kOk) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (version_ != if_version) return;  // an invalidation intervened
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->ids = rsp.ids;
    it->second->neighbors = rsp.neighbors;
    it->second->epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, epoch_, rsp.ids, rsp.neighbors});
  map_[key] = lru_.begin();
  while (map_.size() > opts_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::bump_epoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  ++version_;
  stats_.invalidations += map_.size();
  stats_.epoch_flush += map_.size();
  map_.clear();
  lru_.clear();
}

geom::Rect ResultCache::entry_footprint(const Entry& e,
                                        bool* unbounded) noexcept {
  *unbounded = false;
  switch (static_cast<RequestKind>(e.key.kind)) {
    case RequestKind::kWindow:
      return geom::Rect{bits_to_double(e.key.g0), bits_to_double(e.key.g1),
                        bits_to_double(e.key.g2), bits_to_double(e.key.g3)};
    case RequestKind::kPoint:
      return geom::Rect::of_point(
          {bits_to_double(e.key.g0), bits_to_double(e.key.g1)});
    case RequestKind::kNearest: {
      if (e.neighbors.size() < e.key.k) {
        // Fewer than k lines existed: any insert anywhere can join the
        // answer, so the entry has no bounded footprint.
        *unbounded = true;
        return geom::Rect::empty();
      }
      // Neighbors are stored in canonical ascending (distance^2, id)
      // order, so the kth (last) one carries the answer's radius.  Any
      // segment affecting the top-k comes within that radius of the query
      // point, and therefore its MBR meets this disk-bounding rect.
      const double x = bits_to_double(e.key.g0);
      const double y = bits_to_double(e.key.g1);
      const double r = std::sqrt(e.neighbors.back().distance2);
      return geom::Rect{x - r, y - r, x + r, y + r};
    }
  }
  *unbounded = true;
  return geom::Rect::empty();
}

std::size_t ResultCache::invalidate_delta(
    const std::vector<geom::Rect>& dirty) {
  if (dirty.empty()) return 0;
  std::vector<geom::Rect> region;
  if (dirty.size() > kMaxDirtyRects) {
    geom::Rect u = geom::Rect::empty();
    for (const geom::Rect& r : dirty) u = u.united(r);
    region.push_back(u);
  } else {
    region = dirty;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;  // even a sweep that drops nothing fences stale fills
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool unbounded = false;
    const geom::Rect fp = entry_footprint(*it, &unbounded);
    bool hit = unbounded;
    for (std::size_t i = 0; !hit && i < region.size(); ++i) {
      hit = fp.intersects(region[i]);
    }
    if (hit) {
      map_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  stats_.delta_scoped += dropped;
  return dropped;
}

std::uint64_t ResultCache::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t ResultCache::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = stats_;
  out.epoch = epoch_;
  out.entries = map_.size();
  out.version = version_;
  return out;
}

}  // namespace dps::serve
