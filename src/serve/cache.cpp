#include "serve/cache.hpp"

#include <bit>

#include "dpv/fault.hpp"  // dpv::mix64

namespace dps::serve {

namespace {

/// Exact-match bit pattern of a coordinate with -0.0 folded to 0.0, so the
/// two representations of zero share one key.
std::uint64_t canon_bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = dpv::mix64(
      (static_cast<std::uint64_t>(k.kind) << 8) | k.index);
  h = dpv::mix64(h ^ k.k);
  h = dpv::mix64(h ^ k.g0);
  h = dpv::mix64(h ^ k.g1);
  h = dpv::mix64(h ^ k.g2);
  h = dpv::mix64(h ^ k.g3);
  return static_cast<std::size_t>(h);
}

ResultCache::Key ResultCache::canonical_key(const Request& rq) noexcept {
  Key key;
  key.kind = static_cast<std::uint8_t>(rq.kind);
  key.index = static_cast<std::uint8_t>(rq.index);
  switch (rq.kind) {
    case RequestKind::kWindow:
      key.g0 = canon_bits(rq.window.xmin);
      key.g1 = canon_bits(rq.window.ymin);
      key.g2 = canon_bits(rq.window.xmax);
      key.g3 = canon_bits(rq.window.ymax);
      break;
    case RequestKind::kPoint:
      key.g0 = canon_bits(rq.point.x);
      key.g1 = canon_bits(rq.point.y);
      break;
    case RequestKind::kNearest:
      key.g0 = canon_bits(rq.point.x);
      key.g1 = canon_bits(rq.point.y);
      key.k = rq.k;
      break;
  }
  return key;
}

bool ResultCache::lookup(const Key& key, Response& out) {
  if (!usable()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end() || it->second->epoch != epoch_) {
    // A stale-epoch entry can only exist transiently (bump_epoch drops
    // them eagerly); treat it as a miss either way.
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out.ids = it->second->ids;
  out.neighbors = it->second->neighbors;
  out.status = Status::kOk;
  ++stats_.hits;
  return true;
}

void ResultCache::insert(const Key& key, const Response& rsp) {
  if (!usable() || rsp.status != Status::kOk) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->ids = rsp.ids;
    it->second->neighbors = rsp.neighbors;
    it->second->epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, epoch_, rsp.ids, rsp.neighbors});
  map_[key] = lru_.begin();
  while (map_.size() > opts_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::bump_epoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  stats_.invalidations += map_.size();
  map_.clear();
  lru_.clear();
}

std::uint64_t ResultCache::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = stats_;
  out.epoch = epoch_;
  out.entries = map_.size();
  return out;
}

}  // namespace dps::serve
