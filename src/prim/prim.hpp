#pragma once
// Umbrella header for the paper's section-4 spatial primitives.

#include "prim/capacity_check.hpp"      // IWYU pragma: export
#include "prim/clone.hpp"               // IWYU pragma: export
#include "prim/duplicate_deletion.hpp"  // IWYU pragma: export
#include "prim/line_set.hpp"            // IWYU pragma: export
#include "prim/pm1_split_test.hpp"      // IWYU pragma: export
#include "prim/pm_split_test.hpp"       // IWYU pragma: export
#include "prim/quad_split.hpp"          // IWYU pragma: export
#include "prim/rtree_split.hpp"         // IWYU pragma: export
#include "prim/unshuffle.hpp"           // IWYU pragma: export
