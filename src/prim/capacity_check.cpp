#include "prim/capacity_check.hpp"

namespace dps::prim {

CapacityCheck capacity_check(dpv::Context& ctx, const dpv::Flags& seg,
                             std::size_t capacity) {
  const std::size_t n = seg.size();
  CapacityCheck out;
  dpv::Vec<std::size_t> ones = dpv::constant<std::size_t>(ctx, n, 1);
  // Figure 19: the downward inclusive segmented scan leaves the group total
  // at the group head.
  out.count_at_elem = dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, ones, seg,
                                    dpv::Dir::kDown, dpv::Incl::kInclusive);
  out.group_counts = dpv::seg_heads(ctx, out.count_at_elem, seg);
  out.group_overflow =
      dpv::map(ctx, out.group_counts, [capacity](std::size_t c) {
        return static_cast<std::uint8_t>(c > capacity);
      });
  // Broadcast the verdict back to every line in the group.
  dpv::Vec<std::size_t> total_bcast =
      dpv::seg_broadcast(ctx, out.count_at_elem, seg);
  out.elem_overflow = dpv::map(ctx, total_bcast, [capacity](std::size_t c) {
    return static_cast<std::uint8_t>(c > capacity);
  });
  return out;
}

}  // namespace dps::prim
