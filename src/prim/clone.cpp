#include "prim/clone.hpp"

namespace dps::prim {

ClonePlan plan_clone(dpv::Context& ctx, const dpv::Flags& clone_flags) {
  const std::size_t n = clone_flags.size();
  // F1 = up-scan(CF, +, ex): how far each element shifts right.
  dpv::Vec<std::size_t> cf = dpv::map(
      ctx, clone_flags, [](std::uint8_t f) { return std::size_t{f != 0}; });
  dpv::Vec<std::size_t> offset =
      dpv::scan(ctx, dpv::Plus<std::size_t>{}, cf, dpv::Dir::kUp,
                dpv::Incl::kExclusive);
  // F2 = ew(+, P, F1).
  dpv::Index dest = dpv::zip_with(
      ctx, offset, dpv::iota(ctx, n),
      [](std::size_t off, std::size_t i) { return i + off; });
  const std::size_t clones =
      n == 0 ? 0 : offset[n - 1] + (clone_flags[n - 1] ? 1 : 0);
  return ClonePlan{std::move(dest), clone_flags, n + clones};
}

dpv::Flags apply_clone_seg_flags(dpv::Context& ctx, const ClonePlan& plan,
                                 const dpv::Flags& seg) {
  dpv::Flags out = dpv::constant<std::uint8_t>(ctx, plan.out_size, 0);
  dpv::scatter(ctx, seg, plan.dest, /*mask=*/dpv::Flags{}, out);
  return out;
}

dpv::Flags clone_markers(dpv::Context& ctx, const ClonePlan& plan) {
  dpv::Flags out = dpv::constant<std::uint8_t>(ctx, plan.out_size, 0);
  dpv::Flags ones = dpv::constant<std::uint8_t>(ctx, plan.dest.size(), 1);
  dpv::scatter(ctx, ones,
               dpv::map(ctx, plan.dest, [](std::size_t d) { return d + 1; }),
               plan.cloned, out);
  return out;
}

}  // namespace dps::prim
