#include "prim/duplicate_deletion.hpp"

#include "geom/segment.hpp"

namespace dps::prim {

// Convenience used by the batch-query layer: sort line ids with the
// scan-model radix sort, then concentrate the unique ones.
dpv::Vec<geom::LineId> sorted_unique_ids(dpv::Context& ctx,
                                         const dpv::Vec<geom::LineId>& ids) {
  dpv::Vec<std::uint64_t> keys =
      dpv::map(ctx, ids, [](geom::LineId id) { return std::uint64_t{id}; });
  dpv::Index order = dpv::sort_keys_indices(ctx, keys, 32);
  dpv::Vec<geom::LineId> sorted = dpv::gather(ctx, ids, order);
  return delete_duplicates(ctx, sorted);
}

}  // namespace dps::prim
