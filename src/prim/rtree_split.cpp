#include "prim/rtree_split.hpp"

#include <cmath>
#include <limits>

namespace dps::prim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Candidate cut for the sweep split: lexicographic (overlap, perimeter)
// score with the group-local rank of the cut; Min over candidates is
// associative, identity = "no candidate".
struct Cand {
  double overlap = kInf;
  double perim = kInf;
  std::uint64_t rank = std::numeric_limits<std::uint64_t>::max();
};

struct CandMin {
  static Cand identity() { return Cand{}; }
  Cand operator()(const Cand& a, const Cand& b) const {
    if (a.overlap != b.overlap) return a.overlap < b.overlap ? a : b;
    if (a.perim != b.perim) return a.perim < b.perim ? a : b;
    return a.rank <= b.rank ? a : b;
  }
};

// Per-element group-local rank and group size, via segmented scans.
struct GroupGeometry {
  dpv::Vec<std::size_t> rank;   // position within the group
  dpv::Vec<std::size_t> count;  // group size, broadcast
};

GroupGeometry group_geometry(dpv::Context& ctx, const dpv::Flags& seg) {
  const std::size_t n = seg.size();
  GroupGeometry g;
  dpv::Vec<std::size_t> ones = dpv::constant<std::size_t>(ctx, n, 1);
  dpv::Vec<std::size_t> before = dpv::seg_scan(
      ctx, dpv::Plus<std::size_t>{}, ones, seg, dpv::Dir::kUp,
      dpv::Incl::kExclusive);
  g.rank = before;
  g.count = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, ones, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  return g;
}

// MBRs of the side-0 and side-1 subsets of each group, broadcast per
// element, plus the per-element overlap area of the pair.
dpv::Vec<double> split_overlap_per_elem(dpv::Context& ctx,
                                        const dpv::Vec<geom::Rect>& boxes,
                                        const dpv::Flags& seg,
                                        const dpv::Flags& side) {
  const std::size_t n = boxes.size();
  dpv::Vec<geom::Rect> left_in = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return side[i] ? geom::Rect::empty() : boxes[i];
  });
  dpv::Vec<geom::Rect> right_in = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return side[i] ? boxes[i] : geom::Rect::empty();
  });
  dpv::Vec<geom::Rect> left = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, geom::RectUnion{}, left_in, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  dpv::Vec<geom::Rect> right = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, geom::RectUnion{}, right_in, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  return dpv::zip_with(ctx, left, right, [](const geom::Rect& l,
                                            const geom::Rect& r) {
    return l.overlap_area(r);
  });
}

// The smallest legal side size for a group of `count` entries: each side
// must receive at least m/M of the entries being redistributed (sec. 4.7).
std::size_t min_side(std::size_t count, std::size_t m, std::size_t M) {
  const std::size_t frac = (count * m) / M;
  return frac == 0 ? 1 : frac;
}

// Mean split on one axis: per-element side plus per-element validity (a
// degenerate axis leaves one side empty).
struct AxisSplit {
  dpv::Flags side;
  dpv::Vec<double> overlap;  // per element, broadcast per group
  dpv::Flags valid;          // per element, broadcast per group
};

AxisSplit mean_split_axis(dpv::Context& ctx, const dpv::Vec<geom::Rect>& boxes,
                          const dpv::Flags& seg, const GroupGeometry& gg,
                          int axis) {
  const std::size_t n = boxes.size();
  dpv::Vec<double> mid = dpv::map(ctx, boxes, [axis](const geom::Rect& b) {
    const geom::Point c = b.center();
    return axis == 0 ? c.x : c.y;
  });
  dpv::Vec<double> mean = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<double>{}, mid, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  AxisSplit out;
  out.side = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const double avg = mean[i] / static_cast<double>(gg.count[i]);
    return static_cast<std::uint8_t>(mid[i] > avg);
  });
  // A side is empty iff every element landed on the other one.
  dpv::Vec<std::size_t> rights = dpv::map(
      ctx, out.side, [](std::uint8_t s) { return std::size_t{s != 0}; });
  dpv::Vec<std::size_t> right_total = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, rights, seg,
                    dpv::Dir::kDown, dpv::Incl::kInclusive),
      seg);
  out.valid = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(right_total[i] > 0 &&
                                     right_total[i] < gg.count[i]);
  });
  out.overlap = split_overlap_per_elem(ctx, boxes, seg, out.side);
  return out;
}

// Sweep split on one axis: sorted-by-min-edge candidate evaluation.
AxisSplit sweep_split_axis(dpv::Context& ctx,
                           const dpv::Vec<geom::Rect>& boxes,
                           const dpv::Flags& seg, const GroupGeometry& gg,
                           std::size_t m, std::size_t M, int axis) {
  const std::size_t n = boxes.size();
  // Sort each group by the bbox minimum on this axis.
  double lo_all = kInf, hi_all = -kInf;
  dpv::Vec<double> minc = dpv::map(ctx, boxes, [axis](const geom::Rect& b) {
    return axis == 0 ? b.xmin : b.ymin;
  });
  lo_all = dpv::reduce(ctx, dpv::Min<double>{}, minc);
  hi_all = dpv::reduce(ctx, dpv::Max<double>{}, minc);
  dpv::Vec<std::uint32_t> key = dpv::map(ctx, minc, [&](double v) {
    return dpv::quantize32(v, lo_all, hi_all);
  });
  dpv::Index order = dpv::seg_sort_indices(ctx, key, seg);
  dpv::Vec<geom::Rect> sorted = dpv::gather(ctx, boxes, order);

  // Figure 29: prefix MBR (inclusive up) = bbox of all entries at or before
  // the cut; suffix MBR (exclusive down) = bbox of all entries after it.
  dpv::Vec<geom::Rect> lbox = dpv::seg_scan(ctx, geom::RectUnion{}, sorted,
                                            seg, dpv::Dir::kUp,
                                            dpv::Incl::kInclusive);
  dpv::Vec<geom::Rect> rbox = dpv::seg_scan(ctx, geom::RectUnion{}, sorted,
                                            seg, dpv::Dir::kDown,
                                            dpv::Incl::kExclusive);
  // Candidate "cut after rank r": legal iff both sides get >= min_side.
  dpv::Vec<Cand> cand = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const std::size_t count = gg.count[i];
    const std::size_t r = gg.rank[i];
    const std::size_t lo = min_side(count, m, M);
    if (r + 1 < lo || count - (r + 1) < lo) return Cand{};
    Cand c;
    c.overlap = lbox[i].overlap_area(rbox[i]);
    c.perim = lbox[i].perimeter() + rbox[i].perimeter();
    c.rank = r;
    return c;
  });
  dpv::Vec<Cand> best = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, CandMin{}, cand, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);

  // Side in sorted space, scattered back to the caller's order.
  dpv::Flags side_sorted = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(gg.rank[i] > best[i].rank);
  });
  AxisSplit out;
  out.side = dpv::constant<std::uint8_t>(ctx, n, 0);
  dpv::scatter(ctx, side_sorted, order, dpv::Flags{}, out.side);
  out.valid = dpv::map(ctx, best, [](const Cand& c) {
    return static_cast<std::uint8_t>(c.rank !=
                                     std::numeric_limits<std::uint64_t>::max());
  });
  out.overlap = dpv::map(ctx, best, [](const Cand& c) { return c.overlap; });
  return out;
}

}  // namespace

RtreeSplitResult rtree_split(dpv::Context& ctx,
                             const dpv::Vec<geom::Rect>& boxes,
                             const dpv::Flags& seg,
                             const dpv::Flags& elem_overflow, std::size_t m,
                             std::size_t M, RtreeSplitAlgo algo) {
  const std::size_t n = boxes.size();
  const GroupGeometry gg = group_geometry(ctx, seg);

  AxisSplit x, y;
  if (algo == RtreeSplitAlgo::kMean) {
    x = mean_split_axis(ctx, boxes, seg, gg, 0);
    y = mean_split_axis(ctx, boxes, seg, gg, 1);
  } else {
    x = sweep_split_axis(ctx, boxes, seg, gg, m, M, 0);
    y = sweep_split_axis(ctx, boxes, seg, gg, m, M, 1);
  }

  // Per group: pick the axis with the smaller resulting overlap among the
  // valid ones; fall back to a balanced rank split when neither axis
  // produced a usable partition (all geometry coincident).
  RtreeSplitResult out;
  out.side = dpv::tabulate(ctx, n, [&](std::size_t i) {
    if (!elem_overflow[i]) return std::uint8_t{0};
    const bool xv = x.valid[i] != 0;
    const bool yv = y.valid[i] != 0;
    if (xv && (!yv || x.overlap[i] <= y.overlap[i])) return x.side[i];
    if (yv) return y.side[i];
    return static_cast<std::uint8_t>(gg.rank[i] >= (gg.count[i] + 1) / 2);
  });
  dpv::Vec<std::uint8_t> axis_elem = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const bool xv = x.valid[i] != 0;
    const bool yv = y.valid[i] != 0;
    return static_cast<std::uint8_t>(
        (xv && (!yv || x.overlap[i] <= y.overlap[i])) ? 0 : 1);
  });
  dpv::Vec<double> overlap_elem =
      split_overlap_per_elem(ctx, boxes, seg, out.side);
  out.group_axis = dpv::seg_heads(ctx, axis_elem, seg);
  out.group_overlap = dpv::seg_heads(ctx, overlap_elem, seg);
  return out;
}

}  // namespace dps::prim
