#pragma once
// The point processor set used by the PR quadtree and k-d tree builds.
//
// Section 1 of the paper situates its contribution next to the scan-model
// k-d tree build [Blel89b] and Bestul's data-parallel PR quadtrees
// [Best92]; both operate on points, one (virtual) processor per point,
// grouped per node exactly like the line processor set.  Points are never
// cloned -- every point lies in exactly one node -- so splits are pure
// segmented unshuffles.

#include <cstddef>
#include <cstdint>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::prim {

/// Stable identifier of a point (mirrors geom::LineId for lines).
using PointId = std::uint32_t;

struct PointSet {
  dpv::Vec<geom::Point> pts;
  dpv::Vec<PointId> ids;
  dpv::Vec<geom::Block> blocks;  // node of each point (PR quadtree only)
  dpv::Flags seg;      // group head flags (one group per tree node)
  double world = 1.0;  // root square side (PR quadtree only)

  std::size_t size() const { return pts.size(); }

  static PointSet initial(dpv::Context& ctx, dpv::Vec<geom::Point> pts,
                          dpv::Vec<PointId> ids, double world);
};

inline PointSet PointSet::initial(dpv::Context& ctx,
                                  dpv::Vec<geom::Point> points,
                                  dpv::Vec<PointId> point_ids, double world) {
  PointSet ps;
  ps.world = world;
  ps.seg = dpv::single_segment(ctx, points.size());
  ps.blocks =
      dpv::constant<geom::Block>(ctx, points.size(), geom::Block::root());
  ps.pts = std::move(points);
  ps.ids = std::move(point_ids);
  return ps;
}

}  // namespace dps::prim
