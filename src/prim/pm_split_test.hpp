#pragma once
// Split determination for the PM quadtree family (sections 2.1 and 4.5).
//
// The three vertex-based PM variants [Same85] differ only in the leaf
// criterion; everything else (q-edge insertion, the two-stage node split)
// is shared:
//
//   PM1 -- a region holds at most one vertex; if it holds a vertex every
//          q-edge in it must be incident on that vertex; if it holds no
//          vertex it may contain at most one q-edge.
//   PM2 -- like PM1, but a vertex-free region may hold several q-edges as
//          long as they are all incident on one common vertex (which lies
//          outside the region).
//   PM3 -- only the vertex bound: at most one vertex per region; vertex-
//          free q-edges are unconstrained.
//
// Each criterion is evaluated for all nodes simultaneously with segmented
// scans: endpoint counts (min/max), the minimum bounding box of the
// in-node endpoints (a trivial box <=> at most one vertex), and, for PM2,
// common-incidence tests against the group head's two endpoints (any
// vertex shared by all lines of a group is in particular an endpoint of
// the group's first line).
//
// PM1 and PM2 require planar input: two segments crossing away from a
// shared vertex violate the criterion at every depth.  PM3 tolerates
// crossings.

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/line_set.hpp"

namespace dps::prim {

enum class PmVariant : std::uint8_t { kPm1 = 1, kPm2 = 2, kPm3 = 3 };

struct PmSplitDecision {
  dpv::Vec<int> eps;       // endpoints of this line inside its node (0..2)
  dpv::Vec<int> min_eps;   // group minimum, broadcast to every line
  dpv::Vec<int> max_eps;   // group maximum, broadcast to every line
  dpv::Flags elem_split;   // per line: this line's node must subdivide
  dpv::Flags group_split;  // per group, in group order
};

PmSplitDecision pm_split_test(dpv::Context& ctx, const LineSet& ls,
                              PmVariant variant);

}  // namespace dps::prim
