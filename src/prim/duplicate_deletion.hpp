#pragma once
// Duplicate deletion (section 4.3, Figures 17/18), a.k.a. concentrate
// [Nass81].
//
// Given a linear ordering sorted by identifier, removes all but the first
// occurrence of each identifier.  Mechanics per Figure 18: mark duplicates
// by comparing with the left neighbor, sum the marks with an exclusive
// upward +-scan, subtract from the position index elementwise, and permute
// the survivors left by that amount.
//
// Quadtree window queries use this to collapse the q-edges of a line that
// was cloned into several blocks back into one result row (section 1).

#include <cstddef>
#include <cstdint>

#include "dpv/dpv.hpp"
#include "geom/segment.hpp"

namespace dps::prim {

/// Radix-sorts `ids` and removes duplicates: the full concentrate pipeline
/// used by batch queries to report each line once.
dpv::Vec<geom::LineId> sorted_unique_ids(dpv::Context& ctx,
                                         const dpv::Vec<geom::LineId>& ids);

struct DupDeletePlan {
  dpv::Flags keep;       // 1 on first occurrences
  dpv::Index dest;       // destination of kept elements (meaningful where keep)
  std::size_t out_size;  // number of survivors
};

/// Plans duplicate deletion over ids that are already sorted (equal ids
/// adjacent).  Ids need only be equality-comparable; the neighbor compare is
/// one elementwise step (a shift is a unit permute in the scan model).
template <typename T>
DupDeletePlan plan_duplicate_deletion(dpv::Context& ctx,
                                      const dpv::Vec<T>& sorted_ids) {
  const std::size_t n = sorted_ids.size();
  DupDeletePlan plan;
  plan.keep = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 || !(sorted_ids[i] == sorted_ids[i - 1]));
  });
  // F1 = up-scan(DF, +, ex); new position = P - F1.
  dpv::Vec<std::size_t> dup = dpv::map(
      ctx, plan.keep, [](std::uint8_t k) { return std::size_t{k == 0}; });
  dpv::Vec<std::size_t> removed_before = dpv::scan(
      ctx, dpv::Plus<std::size_t>{}, dup, dpv::Dir::kUp, dpv::Incl::kExclusive);
  plan.dest = dpv::zip_with(
      ctx, removed_before, dpv::iota(ctx, n),
      [](std::size_t r, std::size_t i) { return i - r; });
  plan.out_size =
      n == 0 ? 0
             : n - removed_before[n - 1] - (plan.keep[n - 1] ? 0 : 1);
  return plan;
}

/// Applies a plan to a payload vector, keeping first occurrences in order.
template <typename T>
dpv::Vec<T> apply_duplicate_deletion(dpv::Context& ctx,
                                     const DupDeletePlan& plan,
                                     const dpv::Vec<T>& data) {
  dpv::Vec<T> out(plan.out_size);
  dpv::scatter(ctx, data, plan.dest, plan.keep, out);
  return out;
}

/// Convenience: sorted ids with duplicates removed.
template <typename T>
dpv::Vec<T> delete_duplicates(dpv::Context& ctx, const dpv::Vec<T>& sorted_ids) {
  return apply_duplicate_deletion(ctx, plan_duplicate_deletion(ctx, sorted_ids),
                                  sorted_ids);
}

}  // namespace dps::prim
