#pragma once
// Unshuffling (section 4.2, Figures 15/16), a.k.a. packing [Krus85] /
// splitting [Blel89].
//
// Unshuffling stably separates two mutually exclusive, collectively
// exhaustive subsets of a linear ordering: side-0 elements concentrate to
// the left, side-1 elements to the right.  Mechanics per Figure 16: an
// upward inclusive scan counts interposed side-1 elements below each
// side-0 element, a downward inclusive scan counts interposed side-0
// elements above each side-1 element, two elementwise ops produce the new
// position indices, and a permutation repositions everything.
//
// The segmented form unshuffles *within each segment group* simultaneously
// -- the workhorse of quadtree node splitting (section 4.6) and R-tree node
// splitting (section 5.3), where every overflowing node partitions its
// lines in one data-parallel step.  `UnshufflePlan` additionally reports
// the new segment-group head flags when each group that actually splits
// (contains both sides) becomes two groups.

#include <cstddef>

#include "dpv/dpv.hpp"

namespace dps::prim {

struct UnshufflePlan {
  dpv::Index dest;     // new position of each element
  dpv::Flags new_seg;  // head flags after splitting each mixed group in two
};

/// Whole-vector unshuffle (one implicit group), as in Figures 15/16.
UnshufflePlan plan_unshuffle(dpv::Context& ctx, const dpv::Flags& side);

/// Segmented unshuffle: partitions within each group delimited by `seg`.
/// `split_group` selects which groups gain a new head flag at their 0|1
/// boundary (normally "groups being split"); pass the side vector's own
/// groups via `seg`.  Groups where all elements share a side keep a single
/// head even when selected (an empty subgroup is not materialized, matching
/// the paper's treatment -- an empty quadrant still becomes a node in the
/// *node* processor set, but owns no line processors).
UnshufflePlan plan_seg_unshuffle(dpv::Context& ctx, const dpv::Flags& side,
                                 const dpv::Flags& seg);

/// Applies the computed permutation to a payload vector.
template <typename T>
dpv::Vec<T> apply_unshuffle(dpv::Context& ctx, const UnshufflePlan& plan,
                            const dpv::Vec<T>& data) {
  return dpv::permute(ctx, data, plan.dest);
}

}  // namespace dps::prim
