#include "prim/pm_split_test.hpp"

namespace dps::prim {

namespace {

bool point_eq(const geom::Point& a, const geom::Point& b) {
  return a.x == b.x && a.y == b.y;
}

}  // namespace

PmSplitDecision pm_split_test(dpv::Context& ctx, const LineSet& ls,
                              PmVariant variant) {
  const std::size_t n = ls.size();
  PmSplitDecision d;

  // Endpoint count per line within its node (Figure 20).
  d.eps = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const geom::Block& b = ls.blocks[i];
    int c = 0;
    if (b.contains_vertex(ls.segs[i].a, ls.world)) ++c;
    if (b.contains_vertex(ls.segs[i].b, ls.world)) ++c;
    return c;
  });
  d.min_eps = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Min<int>{}, d.eps, ls.seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      ls.seg);
  d.max_eps = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Max<int>{}, d.eps, ls.seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      ls.seg);

  // Minimum bounding box of in-node endpoints (Figure 21): empty = no
  // vertex in the node, a point = exactly one, otherwise >= 2 vertices.
  dpv::Vec<geom::Rect> ep_box = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const geom::Block& b = ls.blocks[i];
    geom::Rect r = geom::Rect::empty();
    if (b.contains_vertex(ls.segs[i].a, ls.world)) {
      r = r.united(geom::Rect::of_point(ls.segs[i].a));
    }
    if (b.contains_vertex(ls.segs[i].b, ls.world)) {
      r = r.united(geom::Rect::of_point(ls.segs[i].b));
    }
    return r;
  });
  dpv::Vec<geom::Rect> group_box = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, geom::RectUnion{}, ep_box, ls.seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      ls.seg);

  // Per-node line count (Figure 22).
  dpv::Vec<std::size_t> ones = dpv::constant<std::size_t>(ctx, n, 1);
  dpv::Vec<std::size_t> count = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, ones, ls.seg,
                    dpv::Dir::kDown, dpv::Incl::kInclusive),
      ls.seg);

  // PM2 extras: (a) is every line incident on the node's single vertex v
  // (the trivial MBB corner); (b) do all lines of the group share one of
  // the group head's endpoints.
  dpv::Vec<std::uint8_t> all_incident_v, share_common;
  if (variant == PmVariant::kPm2) {
    dpv::Vec<std::uint8_t> inc_v = dpv::tabulate(ctx, n, [&](std::size_t i) {
      if (d.eps[i] > 0) return std::uint8_t{1};  // endpoint in node = at v
      const geom::Point v{group_box[i].xmin, group_box[i].ymin};
      return static_cast<std::uint8_t>(point_eq(ls.segs[i].a, v) ||
                                       point_eq(ls.segs[i].b, v));
    });
    all_incident_v = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::LogicalAnd<std::uint8_t>{}, inc_v, ls.seg,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        ls.seg);
    // Any vertex common to all lines is an endpoint of the group head.
    dpv::Vec<geom::Point> head_a = dpv::seg_broadcast(
        ctx, dpv::map(ctx, ls.segs, [](const geom::Segment& s) { return s.a; }),
        ls.seg);
    dpv::Vec<geom::Point> head_b = dpv::seg_broadcast(
        ctx, dpv::map(ctx, ls.segs, [](const geom::Segment& s) { return s.b; }),
        ls.seg);
    dpv::Vec<std::uint8_t> inc_p = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return static_cast<std::uint8_t>(point_eq(ls.segs[i].a, head_a[i]) ||
                                       point_eq(ls.segs[i].b, head_a[i]));
    });
    dpv::Vec<std::uint8_t> inc_q = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return static_cast<std::uint8_t>(point_eq(ls.segs[i].a, head_b[i]) ||
                                       point_eq(ls.segs[i].b, head_b[i]));
    });
    dpv::Vec<std::uint8_t> all_p = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::LogicalAnd<std::uint8_t>{}, inc_p, ls.seg,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        ls.seg);
    dpv::Vec<std::uint8_t> all_q = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::LogicalAnd<std::uint8_t>{}, inc_q, ls.seg,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        ls.seg);
    share_common = dpv::zip_with(ctx, all_p, all_q,
                                 [](std::uint8_t p, std::uint8_t q) {
                                   return static_cast<std::uint8_t>(p || q);
                                 });
  }

  d.elem_split = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const geom::Rect& box = group_box[i];
    const bool no_vertex = box.is_empty();
    const bool one_vertex =
        !no_vertex && box.width() == 0.0 && box.height() == 0.0;
    bool split = false;
    switch (variant) {
      case PmVariant::kPm1:
        // One vertex: every line must own it (min EPs >= 1); no vertex:
        // at most one passing line.
        if (!no_vertex && !one_vertex) {
          split = true;
        } else if (one_vertex) {
          split = d.min_eps[i] == 0;
        } else {
          split = count[i] > 1;
        }
        break;
      case PmVariant::kPm2:
        if (!no_vertex && !one_vertex) {
          split = true;
        } else if (one_vertex) {
          split = !all_incident_v[i];
        } else {
          split = count[i] > 1 && !share_common[i];
        }
        break;
      case PmVariant::kPm3:
        split = !no_vertex && !one_vertex;
        break;
    }
    return static_cast<std::uint8_t>(split);
  });
  d.group_split = dpv::seg_heads(ctx, d.elem_split, ls.seg);
  return d;
}

}  // namespace dps::prim
