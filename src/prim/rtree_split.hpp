#pragma once
// R-tree node split selection (section 4.7, Figure 29).
//
// Given bounding-box entries grouped per overflowing R-tree node, selects a
// splitting axis + partition for every overflowing group simultaneously and
// reports each entry's side.  Two algorithms, as in the paper:
//
//  * kMean -- O(1) primitives per build stage: the split coordinate on each
//    axis is the mean of the entry-bbox midpoints (segmented +-scan and
//    broadcast); the axis whose two resulting MBRs overlap least wins.
//
//  * kSweep -- O(log n) per stage: entries are sorted within each group by
//    bbox minimum on the axis (scan-model radix sort); prefix/suffix MBR
//    scans give, for every candidate cut, the left and right bounding boxes
//    (Figure 29); among the legal cuts (each side receives at least m/M of
//    the entries) the one with minimal overlap area is chosen, ties broken
//    by minimal combined perimeter; the better axis wins.
//
// Degenerate mean splits (all midpoints equal, leaving a side empty) fall
// back to a balanced rank split so progress is always made.

#include <cstddef>
#include <cstdint>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::prim {

enum class RtreeSplitAlgo : std::uint8_t {
  kMean = 0,
  kSweep = 1,
};

struct RtreeSplitResult {
  /// Per entry, in the caller's (pre-sort) order: 0 joins the left/low
  /// node, 1 the right/high node.  0 everywhere in non-overflowing groups.
  dpv::Flags side;
  /// Per group (group order): chosen axis, 0 = x, 1 = y.  Meaningful only
  /// for overflowing groups.
  dpv::Vec<std::uint8_t> group_axis;
  /// Per group: overlap area of the two resulting MBRs (quality metric).
  dpv::Vec<double> group_overlap;
};

/// Plans the split of every group flagged in `elem_overflow` (flag constant
/// within each group).  `boxes` are the entry MBRs; `seg` delimits groups;
/// (m, M) is the R-tree order.
RtreeSplitResult rtree_split(dpv::Context& ctx,
                             const dpv::Vec<geom::Rect>& boxes,
                             const dpv::Flags& seg,
                             const dpv::Flags& elem_overflow, std::size_t m,
                             std::size_t M, RtreeSplitAlgo algo);

}  // namespace dps::prim
