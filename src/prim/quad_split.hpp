#pragma once
// Quadtree node splitting (section 4.6, Figures 23-28).
//
// Splits every marked node of a line set into four equal quadrants in two
// data-parallel stages, all marked nodes simultaneously:
//
//   stage 1 -- split each marked node by its horizontal center line: lines
//   with parts in both the top and bottom halves are cloned (section 4.1),
//   then a segmented unshuffle (section 4.2) concentrates the top-half
//   lines before the bottom-half lines and cuts each mixed group in two;
//
//   stage 2 -- the same against the vertical center line inside each half,
//   producing the quadrant order NW, NE, SW, SE per original node.
//
// Membership tests use closed child rectangles (a line on a split axis
// belongs to both sides and is cloned), and a clone is only created when
// the line genuinely intersects both sides *within the node being split*,
// so no spurious q-edges arise for lines whose axis crossing lies outside
// the node.

#include "dpv/dpv.hpp"
#include "prim/line_set.hpp"

namespace dps::prim {

struct QuadSplitStats {
  std::size_t nodes_split = 0;   // marked groups actually processed
  std::size_t clones_made = 0;   // new q-edges created by the two stages
};

/// Splits the nodes whose lines are flagged in `elem_split` (the flag must
/// be constant within each group, as produced by the split-decision
/// primitives).  Returns the new line set; `stats`, when non-null, receives
/// counters for traces and benches.
LineSet quad_split(dpv::Context& ctx, const LineSet& ls,
                   const dpv::Flags& elem_split,
                   QuadSplitStats* stats = nullptr);

}  // namespace dps::prim
