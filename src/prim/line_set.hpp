#pragma once
// The "line processor set" shared by the quadtree build algorithms.
//
// Sections 5.1/5.2 of the paper assign one (virtual) processor per q-edge;
// the processors of lines residing in the same quadtree node form a
// contiguous segment group.  We carry that state as parallel vectors plus a
// segment-flag vector, exactly the C* layout.  Lines cloned during node
// splits duplicate their row; the group a row belongs to is identified by
// its `blocks` entry (all rows of a group share it).

#include <cstddef>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::prim {

struct LineSet {
  dpv::Vec<geom::Segment> segs;  // q-edge geometry (id = original line)
  dpv::Vec<geom::Block> blocks;  // quadtree node each q-edge resides in
  dpv::Flags seg;                // segment-group head flags (one group/node)
  double world = 1.0;            // side of the root square

  std::size_t size() const { return segs.size(); }

  /// Initial configuration (Figures 30/35): every line in the root node,
  /// one segment group.
  static LineSet initial(dpv::Context& ctx, dpv::Vec<geom::Segment> lines,
                         double world);
};

inline LineSet LineSet::initial(dpv::Context& ctx,
                                dpv::Vec<geom::Segment> lines, double world) {
  LineSet ls;
  ls.world = world;
  ls.blocks = dpv::constant<geom::Block>(ctx, lines.size(), geom::Block::root());
  ls.seg = dpv::single_segment(ctx, lines.size());
  ls.segs = std::move(lines);
  return ls;
}

}  // namespace dps::prim
