#pragma once
// PM1 split determination (section 4.5, Figures 20-22): the PM1 instance
// of the generalized PM-family split test in prim/pm_split_test.hpp.

#include "prim/pm_split_test.hpp"

namespace dps::prim {

using Pm1SplitDecision = PmSplitDecision;

inline Pm1SplitDecision pm1_split_test(dpv::Context& ctx, const LineSet& ls) {
  return pm_split_test(ctx, ls, PmVariant::kPm1);
}

}  // namespace dps::prim
