#include "prim/unshuffle.hpp"

namespace dps::prim {

UnshufflePlan plan_unshuffle(dpv::Context& ctx, const dpv::Flags& side) {
  const std::size_t n = side.size();
  UnshufflePlan plan;
  plan.dest = dpv::split_indices(ctx, side);
  plan.new_seg = dpv::constant<std::uint8_t>(ctx, n, 0);
  if (n > 0) {
    plan.new_seg[0] = 1;
    std::size_t zeros = 0;
    for (const auto s : side) zeros += (s == 0);  // host-side scalar
    if (zeros > 0 && zeros < n) plan.new_seg[zeros] = 1;
  }
  return plan;
}

UnshufflePlan plan_seg_unshuffle(dpv::Context& ctx, const dpv::Flags& side,
                                 const dpv::Flags& seg) {
  const std::size_t n = side.size();
  UnshufflePlan plan;
  plan.dest = dpv::seg_split_indices(ctx, side, seg);

  // Per-element group statistics, all via segmented scans (section 4.2).
  dpv::Vec<std::size_t> zeros = dpv::map(
      ctx, side, [](std::uint8_t s) { return std::size_t{s == 0}; });
  dpv::Vec<std::size_t> ones = dpv::map(
      ctx, side, [](std::uint8_t s) { return std::size_t{s != 0}; });
  // Down-inclusive scans put the group totals at the head element;
  // broadcasting with the copy operator spreads them group-wide.
  dpv::Vec<std::size_t> zeros_total = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, zeros, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  dpv::Vec<std::size_t> ones_total = dpv::seg_broadcast(
      ctx,
      dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, ones, seg, dpv::Dir::kDown,
                    dpv::Incl::kInclusive),
      seg);
  dpv::Vec<std::size_t> group_start =
      dpv::seg_broadcast(ctx, dpv::iota(ctx, n), seg);

  // New heads: every original head, plus the 0|1 boundary of each group
  // containing both sides.  Each group's head scatters the boundary flag --
  // targets are distinct across groups, so the scatter is one-to-one.
  plan.new_seg = seg;  // originals stay heads (head positions do not move)
  if (n > 0) plan.new_seg[0] = 1;
  dpv::Flags is_head = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 || seg[i] != 0);
  });
  dpv::Flags boundary_writer = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(is_head[i] && zeros_total[i] > 0 &&
                                     ones_total[i] > 0);
  });
  dpv::Flags one_flags = dpv::constant<std::uint8_t>(ctx, n, 1);
  dpv::Index boundary = dpv::zip_with(
      ctx, group_start, zeros_total,
      [](std::size_t gs, std::size_t z) { return gs + z; });
  dpv::scatter(ctx, one_flags, boundary, boundary_writer, plan.new_seg);
  return plan;
}

}  // namespace dps::prim
