#pragma once
// Cloning (section 4.1, Figures 13/14), a.k.a. generalize [Nass81].
//
// Cloning replicates a flagged subset of elements in place in the linear
// ordering: each flagged element is followed by a fresh copy of itself.
// Mechanics, exactly as Figure 14: an exclusive upward +-scan of the clone
// flags yields the right-shift each element needs, an elementwise add with
// the position index yields destinations, and a permutation repositions the
// elements; each cloning element then copies itself one slot right.
//
// The plan/apply split lets one scan-phase be shared by several payload
// vectors (a line's geometry, block, flags, ... all move identically).

#include <cstddef>

#include "dpv/dpv.hpp"

namespace dps::prim {

/// The result of planning a clone: `dest[i]` is the new position of input
/// element i; the clone of a flagged element lands at `dest[i] + 1`.
struct ClonePlan {
  dpv::Index dest;       // destination of each original element
  dpv::Flags cloned;     // copy of the input clone flags
  std::size_t out_size;  // n + number of clones
};

/// Plans a cloning operation (2 scans-worth of primitives, per Figure 14).
ClonePlan plan_clone(dpv::Context& ctx, const dpv::Flags& clone_flags);

/// Applies a clone plan to one payload vector: out[dest[i]] = data[i], and
/// out[dest[i] + 1] = data[i] for flagged elements.
template <typename T>
dpv::Vec<T> apply_clone(dpv::Context& ctx, const ClonePlan& plan,
                        const dpv::Vec<T>& data) {
  dpv::Vec<T> out = dpv::permute(ctx, data, plan.dest, plan.out_size);
  // The self-copy into the next slot (the curved arrows of Figure 14).
  dpv::scatter(ctx, data,
               dpv::map(ctx, plan.dest, [](std::size_t d) { return d + 1; }),
               plan.cloned, out);
  return out;
}

/// Applies a clone plan to per-element segment-group head flags: clones are
/// members of their original's group, so they carry a 0 head flag.
dpv::Flags apply_clone_seg_flags(dpv::Context& ctx, const ClonePlan& plan,
                                 const dpv::Flags& seg);

/// Marker vector: 1 on every element that is a clone (not an original).
dpv::Flags clone_markers(dpv::Context& ctx, const ClonePlan& plan);

}  // namespace dps::prim
