#pragma once
// Node capacity check (section 4.4, Figure 19).
//
// For bucket-splitting rules that depend only on occupancy (bucket PMR
// quadtree, R-tree), a downward inclusive segmented +-scan of ones leaves
// each segment group's line count at its head element; the head then
// "communicates" the count to the node (here: the per-group extraction),
// and nodes exceeding their capacity are marked for subdivision.

#include <cstddef>

#include "dpv/dpv.hpp"

namespace dps::prim {

struct CapacityCheck {
  dpv::Vec<std::size_t> count_at_elem;  // Figure 19's "count" row (down-scan)
  dpv::Vec<std::size_t> group_counts;   // one count per group, group order
  dpv::Flags group_overflow;            // 1 per group with count > capacity
  dpv::Flags elem_overflow;             // the group verdict broadcast to lines
};

/// Runs the capacity check over the groups delimited by `seg`.
CapacityCheck capacity_check(dpv::Context& ctx, const dpv::Flags& seg,
                             std::size_t capacity);

}  // namespace dps::prim
