#include "prim/quad_split.hpp"

#include "geom/predicates.hpp"
#include "prim/clone.hpp"
#include "prim/unshuffle.hpp"

namespace dps::prim {

namespace {

// Top/bottom halves of a block's closed rectangle.
geom::Rect top_half(const geom::Rect& r) {
  return geom::Rect{r.xmin, (r.ymin + r.ymax) * 0.5, r.xmax, r.ymax};
}
geom::Rect bottom_half(const geom::Rect& r) {
  return geom::Rect{r.xmin, r.ymin, r.xmax, (r.ymin + r.ymax) * 0.5};
}
geom::Rect west_half(const geom::Rect& r) {
  return geom::Rect{r.xmin, r.ymin, (r.xmin + r.xmax) * 0.5, r.ymax};
}
geom::Rect east_half(const geom::Rect& r) {
  return geom::Rect{(r.xmin + r.xmax) * 0.5, r.ymin, r.xmax, r.ymax};
}

}  // namespace

LineSet quad_split(dpv::Context& ctx, const LineSet& ls,
                   const dpv::Flags& elem_split, QuadSplitStats* stats) {
  const std::size_t n0 = ls.size();
  if (stats != nullptr) {
    *stats = QuadSplitStats{};
    dpv::Flags heads = ls.seg;
    if (!heads.empty()) heads[0] = 1;
    for (std::size_t i = 0; i < n0; ++i) {
      if (heads[i] && elem_split[i]) ++stats->nodes_split;
    }
  }

  // ---- Stage 1: horizontal center line; sides are top (0) / bottom (1).
  dpv::Flags in_top = dpv::tabulate(ctx, n0, [&](std::size_t i) {
    if (!elem_split[i]) return std::uint8_t{0};
    const geom::Rect r = ls.blocks[i].rect(ls.world);
    return static_cast<std::uint8_t>(
        geom::segment_properly_intersects_rect(ls.segs[i], top_half(r)));
  });
  dpv::Flags in_bottom = dpv::tabulate(ctx, n0, [&](std::size_t i) {
    if (!elem_split[i]) return std::uint8_t{0};
    const geom::Rect r = ls.blocks[i].rect(ls.world);
    return static_cast<std::uint8_t>(
        geom::segment_properly_intersects_rect(ls.segs[i], bottom_half(r)));
  });
  dpv::Flags clone1 = dpv::zip_with(
      ctx, in_top, in_bottom, [](std::uint8_t t, std::uint8_t b) {
        return static_cast<std::uint8_t>(t && b);
      });

  ClonePlan cp1 = plan_clone(ctx, clone1);
  dpv::Vec<geom::Segment> segs = apply_clone(ctx, cp1, ls.segs);
  dpv::Vec<geom::Block> blocks = apply_clone(ctx, cp1, ls.blocks);
  dpv::Flags seg = apply_clone_seg_flags(ctx, cp1, ls.seg);
  dpv::Flags split = apply_clone(ctx, cp1, elem_split);
  dpv::Flags top = apply_clone(ctx, cp1, in_top);
  dpv::Flags bottom = apply_clone(ctx, cp1, in_bottom);
  dpv::Flags is_clone = clone_markers(ctx, cp1);

  // Side after cloning: a cloned pair's original goes top, the clone goes
  // bottom; an uncloned split line goes wherever it intersects.
  const std::size_t n1 = segs.size();
  dpv::Flags side1 = dpv::tabulate(ctx, n1, [&](std::size_t i) {
    if (!split[i]) return std::uint8_t{0};
    if (top[i] && bottom[i]) return static_cast<std::uint8_t>(is_clone[i]);
    return static_cast<std::uint8_t>(bottom[i] ? 1 : 0);
  });

  UnshufflePlan up1 = plan_seg_unshuffle(ctx, side1, seg);
  segs = apply_unshuffle(ctx, up1, segs);
  blocks = apply_unshuffle(ctx, up1, blocks);
  split = apply_unshuffle(ctx, up1, split);
  dpv::Flags north = apply_unshuffle(
      ctx, up1, dpv::map(ctx, side1, [](std::uint8_t s) {
        return static_cast<std::uint8_t>(s == 0);
      }));
  seg = up1.new_seg;

  // ---- Stage 2: vertical center line inside each half; west (0) / east (1).
  dpv::Flags in_west = dpv::tabulate(ctx, n1, [&](std::size_t i) {
    if (!split[i]) return std::uint8_t{0};
    const geom::Rect r = blocks[i].rect(ls.world);
    const geom::Rect half = north[i] ? top_half(r) : bottom_half(r);
    return static_cast<std::uint8_t>(
        geom::segment_properly_intersects_rect(segs[i], west_half(half)));
  });
  dpv::Flags in_east = dpv::tabulate(ctx, n1, [&](std::size_t i) {
    if (!split[i]) return std::uint8_t{0};
    const geom::Rect r = blocks[i].rect(ls.world);
    const geom::Rect half = north[i] ? top_half(r) : bottom_half(r);
    return static_cast<std::uint8_t>(
        geom::segment_properly_intersects_rect(segs[i], east_half(half)));
  });
  dpv::Flags clone2 = dpv::zip_with(
      ctx, in_west, in_east, [](std::uint8_t w, std::uint8_t e) {
        return static_cast<std::uint8_t>(w && e);
      });

  ClonePlan cp2 = plan_clone(ctx, clone2);
  segs = apply_clone(ctx, cp2, segs);
  blocks = apply_clone(ctx, cp2, blocks);
  seg = apply_clone_seg_flags(ctx, cp2, seg);
  split = apply_clone(ctx, cp2, split);
  north = apply_clone(ctx, cp2, north);
  dpv::Flags west2 = apply_clone(ctx, cp2, in_west);
  dpv::Flags east2 = apply_clone(ctx, cp2, in_east);
  dpv::Flags is_clone2 = clone_markers(ctx, cp2);

  const std::size_t n2 = segs.size();
  dpv::Flags side2 = dpv::tabulate(ctx, n2, [&](std::size_t i) {
    if (!split[i]) return std::uint8_t{0};
    if (west2[i] && east2[i]) return static_cast<std::uint8_t>(is_clone2[i]);
    return static_cast<std::uint8_t>(east2[i] ? 1 : 0);
  });

  UnshufflePlan up2 = plan_seg_unshuffle(ctx, side2, seg);
  segs = apply_unshuffle(ctx, up2, segs);
  blocks = apply_unshuffle(ctx, up2, blocks);
  split = apply_unshuffle(ctx, up2, split);
  north = apply_unshuffle(ctx, up2, north);
  dpv::Flags west = apply_unshuffle(
      ctx, up2, dpv::map(ctx, side2, [](std::uint8_t s) {
        return static_cast<std::uint8_t>(s == 0);
      }));

  // Descend each split line into its quadrant child block.
  dpv::Vec<geom::Block> new_blocks = dpv::tabulate(ctx, n2, [&](std::size_t i) {
    if (!split[i]) return blocks[i];
    const geom::Quadrant q =
        north[i] ? (west[i] ? geom::Quadrant::kNW : geom::Quadrant::kNE)
                 : (west[i] ? geom::Quadrant::kSW : geom::Quadrant::kSE);
    return blocks[i].child(q);
  });

  if (stats != nullptr) stats->clones_made = n2 - n0;

  LineSet out;
  out.world = ls.world;
  out.segs = std::move(segs);
  out.blocks = std::move(new_blocks);
  out.seg = up2.new_seg;
  return out;
}

}  // namespace dps::prim
