#pragma once
// Typed input validation at the build / query boundary.
//
// The builds and query pipelines assume finite, in-world geometry; feeding
// them NaN/inf coordinates or inverted windows yields silent garbage (NaN
// compares false everywhere, so a NaN window "intersects" nothing and a
// NaN segment vanishes from every structure).  These checks reject such
// inputs with *typed* errors instead:
//
//   * `validate_window` / `validate_point` / `validate_nearest` are the
//     per-request query checks (the serving engine runs them on every
//     request and answers Status::kInvalidArgument);
//   * `validate_segments` is the build-boundary sweep (non-finite
//     coordinates, endpoints outside [0, world]^2 when a world is given);
//     the quadtree and R-tree builds call the throwing form up front, so a
//     malformed map fails fast with a GeometryError rather than building a
//     structure that quietly misanswers.
//
// `data::check_map` remains the richer offline linter (duplicate ids,
// planarity); this layer is the cheap always-on gate.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "geom/geom.hpp"

namespace dps::core {

enum class GeometryErrorCode : std::uint8_t {
  kNonFiniteCoordinate,  // NaN or infinity in a coordinate
  kInvertedWindow,       // xmin > xmax or ymin > ymax
  kZeroAreaWindow,       // degenerate window (use a point query instead)
  kOutOfWorldPoint,      // endpoint outside [0, world]^2
  kZeroNearestCount,     // k-nearest with k == 0
  kDuplicateLineId,      // insert id collides with a live (or batch) line
};

std::string_view geometry_error_name(GeometryErrorCode code) noexcept;

struct GeometryIssue {
  GeometryErrorCode code;
  std::size_t index = 0;  // offending element for the vector checks
  std::string describe() const;
};

/// Typed exception thrown by the build-boundary checks.
class GeometryError : public std::invalid_argument {
 public:
  explicit GeometryError(const GeometryIssue& issue);
  const GeometryIssue& issue() const noexcept { return issue_; }

 private:
  GeometryIssue issue_;
};

/// Query-window check: finite, not inverted, not zero-area.
std::optional<GeometryIssue> validate_window(const geom::Rect& w) noexcept;

/// Query-point check: finite coordinates.
std::optional<GeometryIssue> validate_point(const geom::Point& p) noexcept;

/// k-nearest check: finite query point and k >= 1.
std::optional<GeometryIssue> validate_nearest(const geom::Point& p,
                                              std::size_t k) noexcept;

/// Build-boundary sweep over a segment map: every coordinate finite and,
/// when `world > 0`, every endpoint inside [0, world]^2.  Returns the
/// first violation (with its segment index), or nullopt.
std::optional<GeometryIssue> validate_segments(
    const std::vector<geom::Segment>& lines, double world = 0.0) noexcept;

/// Throwing form of `validate_segments` for the build entry points.
void validate_segments_or_throw(const std::vector<geom::Segment>& lines,
                                double world = 0.0);

/// Update-boundary id check: `pmr_insert` requires that inserted ids not
/// collide with existing ones (its contract is otherwise only a comment).
/// Rejects an insert whose id is already in `live` or repeats earlier in
/// the batch.  Returns the first violation (with its index in
/// `new_lines`), or nullopt.
std::optional<GeometryIssue> validate_insert_ids(
    const std::vector<geom::Segment>& new_lines,
    const std::unordered_set<geom::LineId>& live) noexcept;

}  // namespace dps::core
