#pragma once
// Data-parallel linear region quadtree construction.
//
// The paper's related work (section 1) is anchored in region-quadtree
// construction on rasters [Dehn91, Ibar93]; this module builds the linear
// region quadtree bottom-up in the scan model: pixels are laid out in the
// canonical path (NW-first Z) order, and each round an elementwise pass
// marks every aligned run of four same-colored sibling leaves, which a
// pack replaces by their parent -- all merges per round simultaneously,
// O(k) rounds for a 2^k raster.
//
// The result is the pointerless linear quadtree: color leaves sorted by
// path key, partitioning the raster.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

class RegionQuadTree {
 public:
  struct Leaf {
    geom::Block block;
    std::uint8_t color;
  };

  RegionQuadTree() = default;
  RegionQuadTree(std::vector<Leaf> leaves, int order)
      : leaves_(std::move(leaves)), order_(order) {}

  const std::vector<Leaf>& leaves() const { return leaves_; }
  int order() const { return order_; }  // raster is 2^order per side
  std::size_t num_leaves() const { return leaves_.size(); }

  /// Color of the raster cell (x, y).
  std::uint8_t color_at(std::uint32_t x, std::uint32_t y) const;

  /// Leaves of a given color (e.g. the black regions).
  std::size_t count_color(std::uint8_t color) const;

  /// True when no four sibling leaves share a color (canonical minimality).
  bool is_minimal() const;

 private:
  std::vector<Leaf> leaves_;  // sorted by Block::path_key()
  int order_ = 0;
};

struct RegionBuildResult {
  RegionQuadTree tree;
  std::size_t rounds = 0;
  dpv::PrimCounters prims;
};

/// Builds the region quadtree of a 2^order x 2^order raster given in
/// row-major order (raster[y * side + x]).
RegionBuildResult region_build(dpv::Context& ctx,
                               const std::vector<std::uint8_t>& raster,
                               int order);

/// Rasterizes a segment map onto a 2^order grid over [0, world)^2:
/// cells whose closed box a segment passes through become 1 (supercover).
std::vector<std::uint8_t> rasterize_segments(
    const std::vector<geom::Segment>& lines, int order, double world);

}  // namespace dps::core
