#include "core/nearest.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "geom/predicates.hpp"

namespace dps::core {

namespace {

// Queue entry: a node (segment = false) or a candidate line.  Ordered by
// distance; at equal distance nodes pop before segments, so by the time a
// segment at distance d is reported every node with mindist <= d has been
// expanded and all equal-distance rivals are in the queue.  That makes the
// output globally ordered by (distance^2, id) -- the canonical tie order
// the batch pipeline reproduces.
struct Entry {
  double d2;
  bool is_segment;
  std::int32_t node;   // when !is_segment
  geom::LineId id;     // when is_segment
  bool operator>(const Entry& o) const {
    if (d2 != o.d2) return d2 > o.d2;
    if (is_segment != o.is_segment) return is_segment;
    return id > o.id;
  }
};

using Queue = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>;

template <typename ExpandNode>
std::vector<Neighbor> best_first(Queue& queue, std::size_t k,
                                 ExpandNode&& expand) {
  std::vector<Neighbor> out;
  std::unordered_set<geom::LineId> reported;
  while (!queue.empty() && out.size() < k) {
    const Entry e = queue.top();
    queue.pop();
    if (e.is_segment) {
      // A q-edge may surface once per block it was cloned into.
      if (reported.insert(e.id).second) out.push_back({e.id, e.d2});
      continue;
    }
    expand(e.node, queue);
  }
  return out;
}

}  // namespace

std::vector<Neighbor> k_nearest(const QuadTree& tree, const geom::Point& q,
                                std::size_t k) {
  if (tree.num_nodes() == 0 || k == 0) return {};
  Queue queue;
  queue.push({tree.root().block.rect(tree.world()).distance2(q), false, 0, 0});
  return best_first(queue, k, [&](std::int32_t n, Queue& pq) {
    const QuadTree::Node& nd = tree.nodes()[n];
    if (nd.is_leaf) {
      const auto [first, last] = tree.leaf_edges(nd);
      for (const geom::Segment* s = first; s != last; ++s) {
        pq.push({geom::distance2_point_segment(q, s->a, s->b), true, 0,
                 s->id});
      }
      return;
    }
    for (const std::int32_t c : nd.child) {
      if (c == QuadTree::kNoChild) continue;
      pq.push({tree.nodes()[c].block.rect(tree.world()).distance2(q), false,
               c, 0});
    }
  });
}

std::vector<Neighbor> k_nearest(const RTree& tree, const geom::Point& q,
                                std::size_t k) {
  if (tree.empty() || k == 0) return {};
  Queue queue;
  queue.push({tree.root().mbr.distance2(q), false, 0, 0});
  return best_first(queue, k, [&](std::int32_t n, Queue& pq) {
    const RTree::Node& nd = tree.nodes()[n];
    if (nd.is_leaf) {
      for (std::uint32_t i = 0; i < nd.num_entries; ++i) {
        const geom::Segment& s = tree.entries()[nd.first_entry + i];
        pq.push({geom::distance2_point_segment(q, s.a, s.b), true, 0, s.id});
      }
      return;
    }
    for (std::int32_t i = 0; i < nd.num_children; ++i) {
      const std::int32_t c = nd.first_child + i;
      pq.push({tree.nodes()[c].mbr.distance2(q), false, c, 0});
    }
  });
}

}  // namespace dps::core
