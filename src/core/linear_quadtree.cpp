#include "core/linear_quadtree.hpp"

#include <algorithm>

#include "geom/predicates.hpp"

namespace dps::core {

LinearQuadTree LinearQuadTree::from(const QuadTree& tree) {
  LinearQuadTree lq;
  lq.world_ = tree.world();
  for (const auto& nd : tree.nodes()) {
    if (!nd.is_leaf || nd.num_edges == 0) continue;
    Leaf leaf;
    leaf.key = nd.block.path_key();
    leaf.block = nd.block;
    leaf.num_edges = nd.num_edges;
    leaf.first_edge = static_cast<std::uint32_t>(lq.edges_.size());
    for (std::uint32_t i = 0; i < nd.num_edges; ++i) {
      lq.edges_.push_back(tree.edges()[nd.first_edge + i]);
    }
    lq.leaves_.push_back(leaf);
  }
  std::sort(lq.leaves_.begin(), lq.leaves_.end(),
            [](const Leaf& a, const Leaf& b) { return a.key < b.key; });
  return lq;
}

void LinearQuadTree::collect(const geom::Block& block, std::size_t lo,
                             std::size_t hi, const geom::Rect& region,
                             std::vector<geom::LineId>& out,
                             QueryStats* stats) const {
  if (lo >= hi) return;
  if (!block.rect(world_).intersects(region)) return;
  if (stats != nullptr) ++stats->nodes_visited;
  // A block is stored iff its key heads the range and matches exactly.
  if (hi - lo == 1 && leaves_[lo].block == block) {
    const Leaf& leaf = leaves_[lo];
    for (std::uint32_t i = 0; i < leaf.num_edges; ++i) {
      const geom::Segment& s = edges_[leaf.first_edge + i];
      if (stats != nullptr) ++stats->segments_tested;
      if (geom::segment_intersects_rect(s, region)) out.push_back(s.id);
    }
    return;
  }
  // Implicit internal block: partition [lo, hi) by the children's key
  // ranges (descendants of a block occupy a contiguous key interval).
  for (int q = 0; q < 4; ++q) {
    const geom::Block child = block.child(static_cast<geom::Quadrant>(q));
    const std::uint64_t k0 = child.path_key();
    // Width of the child's key interval.
    const std::uint64_t span = std::uint64_t{1}
                               << (2 * (geom::kMaxBlockDepth - child.depth));
    const auto first = std::lower_bound(
        leaves_.begin() + lo, leaves_.begin() + hi, k0,
        [](const Leaf& l, std::uint64_t k) { return l.key < k; });
    const auto last = std::lower_bound(
        first, leaves_.begin() + hi, k0 + span,
        [](const Leaf& l, std::uint64_t k) { return l.key < k; });
    collect(child, static_cast<std::size_t>(first - leaves_.begin()),
            static_cast<std::size_t>(last - leaves_.begin()), region, out,
            stats);
  }
}

std::vector<geom::LineId> LinearQuadTree::window_query(
    const geom::Rect& window, QueryStats* stats) const {
  std::vector<geom::LineId> out;
  collect(geom::Block::root(), 0, leaves_.size(), window, out, stats);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<geom::LineId> LinearQuadTree::point_query(
    const geom::Point& p, QueryStats* stats) const {
  std::vector<geom::LineId> hits =
      window_query(geom::Rect::of_point(p), stats);
  std::vector<geom::LineId> out;
  for (const auto id : hits) out.push_back(id);
  // window_query already tested segment-rect on a degenerate rect, which
  // equals the point-on-segment predicate; ids are sorted unique.
  return out;
}

}  // namespace dps::core
