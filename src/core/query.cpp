#include "core/query.hpp"

#include <algorithm>

#include "geom/predicates.hpp"

namespace dps::core {

namespace {

void dedup(std::vector<geom::LineId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

template <typename Pred>
void quad_collect(const QuadTree& tree, const QuadTree::Node& nd,
                  const geom::Rect& region, Pred&& test,
                  std::vector<geom::LineId>& out, QueryStats* stats) {
  if (stats != nullptr) ++stats->nodes_visited;
  if (nd.is_leaf) {
    const auto [first, last] = tree.leaf_edges(nd);
    for (const geom::Segment* s = first; s != last; ++s) {
      if (stats != nullptr) ++stats->segments_tested;
      if (test(*s)) out.push_back(s->id);
    }
    return;
  }
  for (const std::int32_t c : nd.child) {
    if (c == QuadTree::kNoChild) continue;
    const QuadTree::Node& child = tree.nodes()[c];
    if (child.block.rect(tree.world()).intersects(region)) {
      quad_collect(tree, child, region, test, out, stats);
    }
  }
}

template <typename Pred>
void rtree_collect(const RTree& tree, const RTree::Node& nd,
                   const geom::Rect& region, Pred&& test,
                   std::vector<geom::LineId>& out, QueryStats* stats) {
  if (stats != nullptr) ++stats->nodes_visited;
  if (nd.is_leaf) {
    for (std::uint32_t i = 0; i < nd.num_entries; ++i) {
      const geom::Segment& s = tree.entries()[nd.first_entry + i];
      if (stats != nullptr) ++stats->segments_tested;
      if (s.bbox().intersects(region) && test(s)) out.push_back(s.id);
    }
    return;
  }
  for (std::int32_t i = 0; i < nd.num_children; ++i) {
    const RTree::Node& child = tree.nodes()[nd.first_child + i];
    if (child.mbr.intersects(region)) {
      rtree_collect(tree, child, region, test, out, stats);
    }
  }
}

}  // namespace

std::vector<geom::LineId> window_query(const QuadTree& tree,
                                       const geom::Rect& window,
                                       QueryStats* stats) {
  std::vector<geom::LineId> out;
  if (tree.num_nodes() == 0) return out;
  auto test = [&](const geom::Segment& s) {
    return geom::segment_intersects_rect(s, window);
  };
  if (tree.root().block.rect(tree.world()).intersects(window)) {
    quad_collect(tree, tree.root(), window, test, out, stats);
  }
  dedup(out);
  return out;
}

std::vector<geom::LineId> window_query(const RTree& tree,
                                       const geom::Rect& window,
                                       QueryStats* stats) {
  std::vector<geom::LineId> out;
  if (tree.num_nodes() == 0) return out;
  auto test = [&](const geom::Segment& s) {
    return geom::segment_intersects_rect(s, window);
  };
  if (tree.root().mbr.intersects(window)) {
    rtree_collect(tree, tree.root(), window, test, out, stats);
  }
  dedup(out);
  return out;
}

std::vector<geom::LineId> point_query(const QuadTree& tree,
                                      const geom::Point& p,
                                      QueryStats* stats) {
  std::vector<geom::LineId> out;
  if (tree.num_nodes() == 0) return out;
  const geom::Rect window = geom::Rect::of_point(p);
  auto test = [&](const geom::Segment& s) {
    return geom::point_on_segment(p, s.a, s.b);
  };
  if (tree.root().block.rect(tree.world()).contains(p)) {
    quad_collect(tree, tree.root(), window, test, out, stats);
  }
  dedup(out);
  return out;
}

std::vector<geom::LineId> point_query(const RTree& tree, const geom::Point& p,
                                      QueryStats* stats) {
  std::vector<geom::LineId> out;
  if (tree.num_nodes() == 0) return out;
  const geom::Rect window = geom::Rect::of_point(p);
  auto test = [&](const geom::Segment& s) {
    return geom::point_on_segment(p, s.a, s.b);
  };
  if (tree.root().mbr.contains(p)) {
    rtree_collect(tree, tree.root(), window, test, out, stats);
  }
  dedup(out);
  return out;
}

}  // namespace dps::core
