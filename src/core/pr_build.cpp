#include "core/pr_build.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "prim/capacity_check.hpp"
#include "prim/unshuffle.hpp"

namespace dps::core {

namespace {

// One PR split round: every marked node's points move to their quadrant
// child group via two segmented unshuffles (no cloning -- a point lives in
// exactly one half-open cell).
void pr_split(dpv::Context& ctx, prim::PointSet& ps,
              const dpv::Flags& elem_split) {
  const std::size_t n = ps.size();
  // Stage 1: north (0) before south (1).
  dpv::Flags side1 = dpv::tabulate(ctx, n, [&](std::size_t i) {
    if (!elem_split[i]) return std::uint8_t{0};
    const geom::Point c = ps.blocks[i].center(ps.world);
    return static_cast<std::uint8_t>(ps.pts[i].y < c.y);  // south moves right
  });
  prim::UnshufflePlan up1 = prim::plan_seg_unshuffle(ctx, side1, ps.seg);
  ps.pts = prim::apply_unshuffle(ctx, up1, ps.pts);
  ps.ids = prim::apply_unshuffle(ctx, up1, ps.ids);
  ps.blocks = prim::apply_unshuffle(ctx, up1, ps.blocks);
  dpv::Flags split = prim::apply_unshuffle(ctx, up1, elem_split);
  dpv::Flags north = prim::apply_unshuffle(
      ctx, up1, dpv::map(ctx, side1, [](std::uint8_t s) {
        return static_cast<std::uint8_t>(s == 0);
      }));
  // Stage 2: west (0) before east (1).
  dpv::Flags side2 = dpv::tabulate(ctx, n, [&](std::size_t i) {
    if (!split[i]) return std::uint8_t{0};
    const geom::Point c = ps.blocks[i].center(ps.world);
    return static_cast<std::uint8_t>(ps.pts[i].x >= c.x);
  });
  prim::UnshufflePlan up2 = prim::plan_seg_unshuffle(ctx, side2, up1.new_seg);
  ps.pts = prim::apply_unshuffle(ctx, up2, ps.pts);
  ps.ids = prim::apply_unshuffle(ctx, up2, ps.ids);
  ps.blocks = prim::apply_unshuffle(ctx, up2, ps.blocks);
  split = prim::apply_unshuffle(ctx, up2, split);
  north = prim::apply_unshuffle(ctx, up2, north);
  dpv::Flags west = prim::apply_unshuffle(
      ctx, up2, dpv::map(ctx, side2, [](std::uint8_t s) {
        return static_cast<std::uint8_t>(s == 0);
      }));
  ps.blocks = dpv::tabulate(ctx, n, [&](std::size_t i) {
    if (!split[i]) return ps.blocks[i];
    const geom::Quadrant q =
        north[i] ? (west[i] ? geom::Quadrant::kNW : geom::Quadrant::kNE)
                 : (west[i] ? geom::Quadrant::kSW : geom::Quadrant::kSE);
    return ps.blocks[i].child(q);
  });
  ps.seg = up2.new_seg;
}

geom::Quadrant quadrant_towards(const geom::Block& b,
                                const geom::Block& target) {
  const int shift = target.depth - b.depth - 1;
  const std::uint32_t cx = target.ix >> shift;
  const std::uint32_t cy = target.iy >> shift;
  const bool east = (cx & 1) != 0;
  const bool north = (cy & 1) != 0;
  return north ? (east ? geom::Quadrant::kNE : geom::Quadrant::kNW)
               : (east ? geom::Quadrant::kSE : geom::Quadrant::kSW);
}

}  // namespace

PrQuadTree PrQuadTree::from_point_set(const prim::PointSet& ps) {
  PrQuadTree t;
  t.world_ = ps.world;
  t.nodes_.push_back(Node{geom::Block::root()});
  const std::size_t n = ps.size();
  t.pts_.reserve(n);
  t.ids_.reserve(n);
  std::size_t start = 0;
  while (start < n) {
    std::size_t end = start + 1;
    while (end < n && !ps.seg[end]) ++end;
    const geom::Block leaf_block = ps.blocks[start];
    std::int32_t cur = 0;
    while (t.nodes_[cur].block.depth < leaf_block.depth) {
      const auto q = quadrant_towards(t.nodes_[cur].block, leaf_block);
      const auto qi = static_cast<std::size_t>(q);
      t.nodes_[cur].is_leaf = false;
      std::int32_t next = t.nodes_[cur].child[qi];
      if (next == -1) {
        next = static_cast<std::int32_t>(t.nodes_.size());
        t.nodes_[cur].child[qi] = next;
        t.nodes_.push_back(Node{t.nodes_[cur].block.child(q)});
      }
      cur = next;
    }
    Node& leaf = t.nodes_[cur];
    leaf.first_pt = static_cast<std::uint32_t>(t.pts_.size());
    leaf.num_pts = static_cast<std::uint32_t>(end - start);
    for (std::size_t i = start; i < end; ++i) {
      t.pts_.push_back(ps.pts[i]);
      t.ids_.push_back(ps.ids[i]);
    }
    start = end;
  }
  return t;
}

int PrQuadTree::height() const {
  int h = 0;
  for (const auto& nd : nodes_) h = std::max<int>(h, nd.block.depth);
  return h;
}

std::size_t PrQuadTree::max_leaf_occupancy() const {
  std::size_t m = 0;
  for (const auto& nd : nodes_) {
    if (nd.is_leaf) m = std::max<std::size_t>(m, nd.num_pts);
  }
  return m;
}

std::vector<prim::PointId> PrQuadTree::window_query(
    const geom::Rect& window) const {
  std::vector<prim::PointId> out;
  if (nodes_.empty()) return out;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& nd = nodes_[stack.back()];
    stack.pop_back();
    if (!nd.block.rect(world_).intersects(window)) continue;
    if (nd.is_leaf) {
      for (std::uint32_t i = 0; i < nd.num_pts; ++i) {
        if (window.contains(pts_[nd.first_pt + i])) {
          out.push_back(ids_[nd.first_pt + i]);
        }
      }
      continue;
    }
    for (const std::int32_t c : nd.child) {
      if (c != -1) stack.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string PrQuadTree::fingerprint() const {
  struct LeafInfo {
    std::uint64_t key;
    std::vector<prim::PointId> ids;
  };
  std::vector<LeafInfo> leaves;
  for (const auto& nd : nodes_) {
    if (!nd.is_leaf || nd.num_pts == 0) continue;
    LeafInfo li;
    li.key = nd.block.morton_key();
    for (std::uint32_t i = 0; i < nd.num_pts; ++i) {
      li.ids.push_back(ids_[nd.first_pt + i]);
    }
    std::sort(li.ids.begin(), li.ids.end());
    leaves.push_back(std::move(li));
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) { return a.key < b.key; });
  std::ostringstream os;
  for (const auto& li : leaves) {
    os << li.key << ":";
    for (const auto id : li.ids) os << id << ",";
    os << ";";
  }
  return os.str();
}

PrBuildResult pr_build(dpv::Context& ctx, std::vector<geom::Point> pts,
                       std::vector<prim::PointId> ids,
                       const PrBuildOptions& opts) {
  assert(pts.size() == ids.size());
  const dpv::PrimCounters before = ctx.counters();
  PrBuildResult res;
  prim::PointSet ps = prim::PointSet::initial(ctx, dpv::to_vec(pts),
                                              dpv::to_vec(ids), opts.world);
  for (;;) {
    const prim::CapacityCheck cc =
        prim::capacity_check(ctx, ps.seg, opts.bucket_capacity);
    dpv::Flags want = dpv::tabulate(ctx, ps.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(cc.elem_overflow[i] &&
                                       ps.blocks[i].depth < opts.max_depth);
    });
    const std::size_t capped = dpv::reduce(
        ctx, dpv::Plus<std::size_t>{},
        dpv::tabulate(ctx, ps.size(), [&](std::size_t i) {
          return std::size_t{cc.elem_overflow[i] != 0 &&
                             ps.blocks[i].depth >= opts.max_depth};
        }));
    if (capped > 0) res.depth_limited = true;
    const std::size_t splitters =
        dpv::reduce(ctx, dpv::Plus<std::size_t>{},
                    dpv::map(ctx, want, [](std::uint8_t f) {
                      return std::size_t{f != 0};
                    }));
    if (splitters == 0) break;
    pr_split(ctx, ps, want);
    ++res.rounds;
  }
  res.tree = PrQuadTree::from_point_set(ps);
  res.prims = ctx.counters() - before;
  return res;
}

}  // namespace dps::core
