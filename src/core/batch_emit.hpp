#pragma once
// Emit step shared by the batch-query pipelines: the concentrated
// (query, line) keys come out of duplicate deletion sorted by query row,
// so each row's ids form one contiguous run.  Reserving each row from its
// run length makes the emit a single allocation per row instead of
// push_back doubling growth.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpv/vector.hpp"
#include "geom/geom.hpp"

namespace dps::core {

inline void emit_concentrated(const dpv::Vec<std::uint64_t>& unique,
                              std::vector<std::vector<geom::LineId>>& results) {
  const std::size_t n = unique.size();
  std::size_t i = 0;
  while (i < n) {
    const auto row = static_cast<std::size_t>(unique[i] >> 32);
    std::size_t j = i;
    while (j < n && (unique[j] >> 32) == row) ++j;
    std::vector<geom::LineId>& out = results[row];
    out.reserve(out.size() + (j - i));
    for (; i < j; ++i) {
      out.push_back(static_cast<geom::LineId>(unique[i] & 0xFFFF'FFFFu));
    }
  }
}

}  // namespace dps::core
