#include "core/dp_spatial_join.hpp"

#include <algorithm>
#include <cassert>

#include "core/pmr_update.hpp"  // line_set_from
#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"
#include "prim/quad_split.hpp"

namespace dps::core {

namespace {

// Group-level view of a line set: one row per leaf group, in path order.
struct Groups {
  std::vector<geom::Block> blocks;
  std::vector<std::uint64_t> keys;    // path keys (sorted ascending)
  std::vector<std::size_t> start;     // first line row of the group
  std::vector<std::size_t> count;
};

Groups groups_of(const prim::LineSet& ls) {
  Groups g;
  const std::size_t n = ls.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || ls.seg[i]) {
      g.blocks.push_back(ls.blocks[i]);
      g.keys.push_back(ls.blocks[i].path_key());
      g.start.push_back(i);
      g.count.push_back(0);
    }
    g.count.back()++;
  }
  assert(std::is_sorted(g.keys.begin(), g.keys.end()) &&
         "line-set groups must be in canonical path order");
  return g;
}

std::uint64_t subtree_span(const geom::Block& b) {
  return std::uint64_t{1} << (2 * (geom::kMaxBlockDepth - b.depth));
}

// Marks the lines of every group of `ls` whose block has a strictly deeper
// `other` group inside it.  Returns the number of groups marked.
std::size_t mark_refinement(dpv::Context& ctx, const prim::LineSet& ls,
                            const Groups& mine, const Groups& other,
                            dpv::Flags& elem_split) {
  std::vector<std::uint8_t> split_group(mine.blocks.size(), 0);
  std::size_t marked = 0;
  for (std::size_t g = 0; g < mine.blocks.size(); ++g) {
    const std::uint64_t k0 = mine.keys[g];
    const std::uint64_t k1 = k0 + subtree_span(mine.blocks[g]);
    const auto lo = std::lower_bound(other.keys.begin(), other.keys.end(), k0);
    const auto hi = std::lower_bound(lo, other.keys.end(), k1);
    for (auto it = lo; it != hi; ++it) {
      const std::size_t og = static_cast<std::size_t>(it - other.keys.begin());
      if (other.blocks[og].depth > mine.blocks[g].depth) {
        split_group[g] = 1;
        ++marked;
        break;
      }
    }
  }
  elem_split = dpv::constant<std::uint8_t>(ctx, ls.size(), 0);
  for (std::size_t g = 0; g < mine.blocks.size(); ++g) {
    if (!split_group[g]) continue;
    for (std::size_t i = 0; i < mine.count[g]; ++i) {
      elem_split[mine.start[g] + i] = 1;
    }
  }
  return marked;
}

}  // namespace

std::vector<std::pair<geom::LineId, geom::LineId>> dp_spatial_join(
    dpv::Context& ctx, const QuadTree& a, const QuadTree& b,
    DpJoinStats* stats) {
  std::vector<std::pair<geom::LineId, geom::LineId>> out;
  if (a.num_nodes() == 0 || b.num_nodes() == 0) return out;
  assert(a.world() == b.world() && "joined maps must share the root square");

  prim::LineSet la = line_set_from(a);
  prim::LineSet lb = line_set_from(b);
  if (la.size() == 0 || lb.size() == 0) return out;

  // ---- Refinement to a common decomposition. ----
  for (;;) {
    const Groups ga = groups_of(la);
    const Groups gb = groups_of(lb);
    dpv::Flags split_a, split_b;
    const std::size_t ma = mark_refinement(ctx, la, ga, gb, split_a);
    const std::size_t mb = mark_refinement(ctx, lb, gb, ga, split_b);
    if (ma == 0 && mb == 0) break;
    if (stats != nullptr) {
      ++stats->refine_rounds;
      stats->splits_a += ma;
      stats->splits_b += mb;
    }
    if (ma > 0) la = prim::quad_split(ctx, la, split_a, nullptr);
    if (mb > 0) lb = prim::quad_split(ctx, lb, split_b, nullptr);
  }

  // ---- Candidate expansion over matched (equal) blocks. ----
  const Groups ga = groups_of(la);
  const Groups gb = groups_of(lb);
  struct Match {
    std::size_t a_start, a_count, b_start, b_count;
  };
  std::vector<Match> matches;
  {
    std::size_t i = 0, j = 0;
    while (i < ga.keys.size() && j < gb.keys.size()) {
      if (ga.keys[i] == gb.keys[j]) {
        // Equal keys imply equal blocks for an aligned antichain.
        matches.push_back(
            {ga.start[i], ga.count[i], gb.start[j], gb.count[j]});
        ++i;
        ++j;
      } else if (ga.keys[i] < gb.keys[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  if (stats != nullptr) stats->node_pairs_visited = matches.size();
  if (matches.empty()) return out;

  // Pair counts per match, exclusive scan, then slot -> (lineA, lineB).
  dpv::Vec<std::size_t> counts = dpv::tabulate(
      ctx, matches.size(), [&](std::size_t p) {
        return matches[p].a_count * matches[p].b_count;
      });
  dpv::Vec<std::size_t> offsets = dpv::scan(
      ctx, dpv::Plus<std::size_t>{}, counts, dpv::Dir::kUp,
      dpv::Incl::kExclusive);
  const std::size_t total =
      offsets.back() + counts.back();
  if (stats != nullptr) stats->candidate_pairs = total;
  // Distribute: head markers + max-scan give each slot its match index.
  dpv::Vec<std::size_t> heads = dpv::constant<std::size_t>(ctx, total, 0);
  dpv::Flags nonempty = dpv::map(ctx, counts, [](std::size_t c) {
    return static_cast<std::uint8_t>(c > 0);
  });
  dpv::scatter(ctx, dpv::iota(ctx, matches.size()), offsets, nonempty, heads);
  dpv::Vec<std::size_t> slot_match = dpv::scan(
      ctx, dpv::Max<std::size_t>{}, heads, dpv::Dir::kUp, dpv::Incl::kInclusive);

  dpv::Flags hit = dpv::tabulate(ctx, total, [&](std::size_t s) {
    const Match& mt = matches[slot_match[s]];
    const std::size_t l = s - offsets[slot_match[s]];
    const geom::Segment& sa = la.segs[mt.a_start + l / mt.b_count];
    const geom::Segment& sb = lb.segs[mt.b_start + l % mt.b_count];
    return static_cast<std::uint8_t>(sa.bbox().intersects(sb.bbox()) &&
                                     geom::segments_intersect(sa, sb));
  });
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(ctx, total, [&](std::size_t s) {
    const Match& mt = matches[slot_match[s]];
    const std::size_t l = s - offsets[slot_match[s]];
    const geom::LineId ia = la.segs[mt.a_start + l / mt.b_count].id;
    const geom::LineId ib = lb.segs[mt.b_start + l % mt.b_count].id;
    return (std::uint64_t{ia} << 32) | ib;
  });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> sorted = dpv::gather(ctx, hits, order);
  dpv::Vec<std::uint64_t> unique = prim::delete_duplicates(ctx, sorted);
  out.reserve(unique.size());
  for (const std::uint64_t k : unique) {
    out.emplace_back(static_cast<geom::LineId>(k >> 32),
                     static_cast<geom::LineId>(k & 0xFFFF'FFFFu));
  }
  return out;
}

}  // namespace dps::core
