#pragma once
// Dynamic updates for the bucket PMR quadtree: data-parallel batch insert
// and batch delete.
//
// Section 2.2 defines PMR deletion as removing the line from every block it
// intersects and merging sibling buckets whose combined occupancy drops
// below the threshold, reapplying the merge upward.  For the *bucket* PMR
// quadtree the analogous rule -- merge a sibling set when its distinct
// line count is at most the bucket capacity -- restores the canonical
// decomposition: because the structure's shape is history-independent,
// *insert and delete both leave exactly the tree a from-scratch rebuild of
// the surviving lines would produce* (tested as such).
//
// Both operations run as data-parallel rounds over the line processor set:
// inserts place new q-edges into the leaves they properly intersect and
// re-run the build's split rounds on overflowing buckets; deletes pack the
// doomed q-edges out and run merge rounds (segmented duplicate deletion
// collapses the q-edges of lines cloned into several merged siblings).

#include <vector>

#include "core/pmr_build.hpp"
#include "core/quadtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/line_set.hpp"

namespace dps::core {

/// Reconstructs the line processor set of a built quadtree (groups = the
/// non-empty leaves, in stored leaf order).
prim::LineSet line_set_from(const QuadTree& tree);

/// Inserts `new_lines` (ids must not collide with existing ones) and
/// re-splits overflowing buckets.  Returns the updated tree.
QuadBuildResult pmr_insert(dpv::Context& ctx, const QuadTree& tree,
                           const std::vector<geom::Segment>& new_lines,
                           const PmrBuildOptions& opts);

/// Deletes every line whose id appears in `doomed` and merges underfull
/// sibling sets (rounds run until no merge applies).
QuadBuildResult pmr_delete(dpv::Context& ctx, const QuadTree& tree,
                           const std::vector<geom::LineId>& doomed,
                           const PmrBuildOptions& opts);

/// The build's split loop, exposed for reuse by pmr_insert: repeatedly
/// splits every bucket over capacity (below the depth cap) starting from an
/// arbitrary line set.  Appends per-round statistics to `res`.
void pmr_split_rounds(dpv::Context& ctx, prim::LineSet& ls,
                      const PmrBuildOptions& opts, QuadBuildResult& res);

}  // namespace dps::core
