#pragma once
// Structure-of-arrays tile drivers for the batched geometry kernels.
//
// The batch pipelines score (query, candidate) pairs with scalar geometry
// predicates called one pair at a time through pointer-chasing accessors.
// These drivers gather a tile of pairs into stack-resident SoA buffers and
// run the whole tile through the dpv::simd kernel table, so leaf tests and
// frontier pruning execute lane-parallel under AVX2 while remaining
// bit-identical to the scalar predicates (the kernels mirror
// geom/predicates.cpp operation-for-operation).
//
// Accessor callables are invoked once per element, in order, from inside
// Context::for_blocks -- they must be safe to call concurrently for
// disjoint index ranges (pure reads of the tree/query containers are).
// Each driver is one elementwise primitive on the Context ledger.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "dpv/context.hpp"
#include "dpv/simd.hpp"
#include "dpv/vector.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/segment.hpp"

namespace dps::core {

// Tile width: 6 double columns x 512 lanes x 8B = 24KiB, comfortably L1
// resident alongside the output bytes.
inline constexpr std::size_t kGeomTile = 512;

/// out[i] = segment seg_at(i) intersects rect rect_at(i)
/// (geom::segment_intersects_rect, bit-identical).
template <typename SegAt, typename RectAt>
dpv::Flags tile_segment_intersects_rect(dpv::Context& ctx, std::size_t n,
                                        SegAt&& seg_at, RectAt&& rect_at) {
  dpv::Flags out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    const auto& gk = dpv::simd::kernels();
    double ax[kGeomTile], ay[kGeomTile], bx[kGeomTile], by[kGeomTile];
    double rxmin[kGeomTile], rymin[kGeomTile];
    double rxmax[kGeomTile], rymax[kGeomTile];
    for (std::size_t t = lo; t < hi; t += kGeomTile) {
      const std::size_t w = std::min(kGeomTile, hi - t);
      for (std::size_t j = 0; j < w; ++j) {
        const geom::Segment& s = seg_at(t + j);
        ax[j] = s.a.x;
        ay[j] = s.a.y;
        bx[j] = s.b.x;
        by[j] = s.b.y;
        const geom::Rect& r = rect_at(t + j);
        rxmin[j] = r.xmin;
        rymin[j] = r.ymin;
        rxmax[j] = r.xmax;
        rymax[j] = r.ymax;
      }
      gk.segment_intersects_rect(ax, ay, bx, by, rxmin, rymin, rxmax, rymax,
                                 out.data() + t, w);
    }
  });
  ctx.count(dpv::Prim::kElementwise, n);
  return out;
}

/// out[i] = point point_at(i) lies on segment seg_at(i)
/// (geom::point_on_segment, bit-identical).
template <typename PointAt, typename SegAt>
dpv::Flags tile_point_on_segment(dpv::Context& ctx, std::size_t n,
                                 PointAt&& point_at, SegAt&& seg_at) {
  dpv::Flags out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    const auto& gk = dpv::simd::kernels();
    double px[kGeomTile], py[kGeomTile];
    double ax[kGeomTile], ay[kGeomTile], bx[kGeomTile], by[kGeomTile];
    for (std::size_t t = lo; t < hi; t += kGeomTile) {
      const std::size_t w = std::min(kGeomTile, hi - t);
      for (std::size_t j = 0; j < w; ++j) {
        const geom::Point& p = point_at(t + j);
        px[j] = p.x;
        py[j] = p.y;
        const geom::Segment& s = seg_at(t + j);
        ax[j] = s.a.x;
        ay[j] = s.a.y;
        bx[j] = s.b.x;
        by[j] = s.b.y;
      }
      gk.point_on_segment(px, py, ax, ay, bx, by, out.data() + t, w);
    }
  });
  ctx.count(dpv::Prim::kElementwise, n);
  return out;
}

/// out[i] = MINDIST^2 from point point_at(i) to rect rect_at(i)
/// (Rect::distance2, bit-identical).
template <typename PointAt, typename RectAt>
dpv::Vec<double> tile_mindist_point_rect(dpv::Context& ctx, std::size_t n,
                                         PointAt&& point_at,
                                         RectAt&& rect_at) {
  dpv::Vec<double> out(n);
  ctx.for_blocks(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    const auto& gk = dpv::simd::kernels();
    double px[kGeomTile], py[kGeomTile];
    double xmin[kGeomTile], ymin[kGeomTile];
    double xmax[kGeomTile], ymax[kGeomTile];
    for (std::size_t t = lo; t < hi; t += kGeomTile) {
      const std::size_t w = std::min(kGeomTile, hi - t);
      for (std::size_t j = 0; j < w; ++j) {
        const geom::Point& p = point_at(t + j);
        px[j] = p.x;
        py[j] = p.y;
        const geom::Rect r = rect_at(t + j);
        xmin[j] = r.xmin;
        ymin[j] = r.ymin;
        xmax[j] = r.xmax;
        ymax[j] = r.ymax;
      }
      gk.mindist_point_rect(px, py, xmin, ymin, xmax, ymax, out.data() + t, w);
    }
  });
  ctx.count(dpv::Prim::kElementwise, n);
  return out;
}

}  // namespace dps::core
