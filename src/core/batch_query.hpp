#pragma once
// Data-parallel batch window queries.
//
// Executes many window queries against a quadtree at once, scan-model
// style: candidate (window, q-edge) pairs are generated per window, the
// intersection test runs elementwise, survivors are packed, radix-sorted by
// (window, line id), and the duplicate-deletion primitive (section 4.3)
// collapses the q-edges of a line cloned into several blocks back into one
// result row -- the use case the paper gives for concentrate.

#include <cstddef>
#include <vector>

#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct BatchQueryResult {
  /// results[w] = sorted unique line ids intersecting windows[w].
  std::vector<std::vector<geom::LineId>> results;
  std::size_t candidates = 0;  // (window, q-edge) pairs tested
};

BatchQueryResult batch_window_query(dpv::Context& ctx, const QuadTree& tree,
                                    const std::vector<geom::Rect>& windows);

/// Data-parallel batch point queries: each point descends to its (single)
/// containing leaf, candidates are tested elementwise, and results are
/// concentrated per point.
BatchQueryResult batch_point_query(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points);

/// Data-parallel batch window query over an R-tree (the companion-paper
/// [Hoel93] style): the (window, node) frontier descends one tree level per
/// round -- an elementwise MBR test prunes, a pack concentrates survivors,
/// and a scan-distributed expansion replaces each surviving internal pair
/// with its children.  Leaf pairs expand to (window, entry) candidates,
/// tested elementwise and concentrated through sort + duplicate deletion.
BatchQueryResult batch_window_query(dpv::Context& ctx, const RTree& tree,
                                    const std::vector<geom::Rect>& windows);

}  // namespace dps::core
