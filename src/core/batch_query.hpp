#pragma once
// Data-parallel batch window queries.
//
// Executes many window queries against a quadtree at once, scan-model
// style: candidate (window, q-edge) pairs are generated per window, the
// intersection test runs elementwise, survivors are packed, radix-sorted by
// (window, line id), and the duplicate-deletion primitive (section 4.3)
// collapses the q-edges of a line cloned into several blocks back into one
// result row -- the use case the paper gives for concentrate.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <vector>

#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

/// Cooperative cancellation / deadline control for the batch entry points.
/// The batch pipelines poll it between scan-model rounds -- never inside a
/// primitive -- so an abort costs at most one round of extra work.  A
/// default-constructed control never fires.
struct BatchControl {
  /// External kill switch; null means "cannot be cancelled".
  const std::atomic<bool>* cancel = nullptr;
  /// Second kill switch (same semantics), so a per-call scope can be
  /// cancelled independently of its owner's engine-wide switch -- the
  /// cluster's hedged dispatch aborts the losing subrequest through this
  /// hook without touching the replica's own cancel flag.
  const std::atomic<bool>* cancel2 = nullptr;
  /// Absolute deadline; the epoch (default) means "no deadline".
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const noexcept {
    return deadline.time_since_epoch().count() != 0;
  }
  /// True once the control has fired (checked at round granularity).
  bool fired() const noexcept {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    if (cancel2 != nullptr && cancel2->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

/// The abort poll the batch pipelines run between scan-model rounds: the
/// cooperative control (cancel / deadline) plus the context's injected
/// fault latch (`Context::arm_fault_injection`), so a chaos schedule
/// aborts a pipeline exactly where a deadline would.
inline bool batch_aborting(const dpv::Context& ctx,
                           const BatchControl& control) noexcept {
  return ctx.fault_pending() || control.fired();
}

struct BatchQueryResult {
  /// results[w] = sorted unique line ids intersecting windows[w].
  std::vector<std::vector<geom::LineId>> results;
  std::size_t candidates = 0;  // (window, q-edge) pairs tested
  /// True when the control fired (or an injected fault latched)
  /// mid-pipeline; `results` is then incomplete (some rows may be missing
  /// ids) and must not be trusted.
  bool aborted = false;
};

BatchQueryResult batch_window_query(dpv::Context& ctx, const QuadTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control = {});

/// Data-parallel batch point queries: each point descends to its (single)
/// containing leaf, candidates are tested elementwise, and results are
/// concentrated per point.
BatchQueryResult batch_point_query(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control = {});

/// Data-parallel batch window query over an R-tree (the companion-paper
/// [Hoel93] style): the (window, node) frontier descends one tree level per
/// round -- an elementwise MBR test prunes, a pack concentrates survivors,
/// and a scan-distributed expansion replaces each surviving internal pair
/// with its children.  Leaf pairs expand to (window, entry) candidates,
/// tested elementwise and concentrated through sort + duplicate deletion.
BatchQueryResult batch_window_query(dpv::Context& ctx, const RTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control = {});

/// Data-parallel batch point queries over an R-tree: the same frontier
/// descent as the window pipeline with MBR containment as the prune and
/// point-on-segment as the leaf test.
BatchQueryResult batch_point_query(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control = {});

class LinearQuadTree;

/// Data-parallel batch window query over a linear quadtree: the (window,
/// block, key-interval) frontier descends the *implicit* tree one level per
/// round, locating each child's contiguous key sub-interval with
/// elementwise binary-search ranks; stored-leaf pairs expand to candidates
/// tested elementwise and concentrated through sort + duplicate deletion.
BatchQueryResult batch_window_query(dpv::Context& ctx,
                                    const LinearQuadTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control = {});

/// Data-parallel batch point queries over a linear quadtree (window queries
/// on the points' degenerate rects, like the sequential oracle).
BatchQueryResult batch_point_query(dpv::Context& ctx,
                                   const LinearQuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control = {});

}  // namespace dps::core
