#include "core/polygonize.hpp"

#include <algorithm>
#include <map>

namespace dps::core {

namespace {

// Lexicographic (x, y) order on exact doubles via two stable radix passes.
dpv::Index sort_records_by_endpoint(dpv::Context& ctx,
                                    const dpv::Vec<geom::Point>& pts) {
  const std::size_t m = pts.size();
  dpv::Vec<std::uint64_t> ykey = dpv::map(ctx, pts, [](const geom::Point& p) {
    return dpv::key_from_double(p.y);
  });
  dpv::Index by_y = dpv::sort_keys_indices(ctx, ykey, 64);
  // Stable second pass on x over the y-sorted order.
  dpv::Vec<std::uint64_t> xkey(m);
  ctx.for_blocks(m, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      xkey[i] = dpv::key_from_double(pts[by_y[i]].x);
    }
  });
  ctx.count(dpv::Prim::kElementwise, m);
  dpv::Index by_x = dpv::sort_keys_indices(ctx, xkey, 64);
  return dpv::gather(ctx, by_y, by_x);
}

}  // namespace

PolygonizeResult polygonize(dpv::Context& ctx,
                            const std::vector<geom::Segment>& lines) {
  PolygonizeResult res;
  const std::size_t n = lines.size();
  res.component_of.assign(n, 0);
  if (n == 0) return res;
  const std::size_t m = 2 * n;

  // ---- Step 1: vertex groups over the 2n endpoint records. ----
  dpv::Vec<geom::Point> pts = dpv::tabulate(ctx, m, [&](std::size_t r) {
    const geom::Segment& s = lines[r / 2];
    return (r % 2) == 0 ? s.a : s.b;
  });
  const dpv::Index order = sort_records_by_endpoint(ctx, pts);
  dpv::Vec<geom::Point> sorted_pts = dpv::gather(ctx, pts, order);
  // record_line[j] = line of the j-th sorted record.
  dpv::Vec<std::uint32_t> record_line = dpv::tabulate(
      ctx, m, [&](std::size_t j) {
        return static_cast<std::uint32_t>(order[j] / 2);
      });
  dpv::Flags vseg = dpv::tabulate(ctx, m, [&](std::size_t j) {
    return static_cast<std::uint8_t>(j == 0 ||
                                     !(sorted_pts[j] == sorted_pts[j - 1]));
  });

  // ---- Step 2: hooking + pointer jumping to a label fixpoint. ----
  dpv::Vec<std::uint32_t> label = dpv::tabulate(ctx, n, [](std::size_t i) {
    return static_cast<std::uint32_t>(i);
  });
  for (;;) {
    ++res.rounds;
    // Hook: the minimum label among each vertex's incident lines, broadcast
    // back to every incident line.
    dpv::Vec<std::uint32_t> rec_label = dpv::tabulate(
        ctx, m, [&](std::size_t j) { return label[record_line[j]]; });
    dpv::Vec<std::uint32_t> vmin = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::Min<std::uint32_t>{}, rec_label, vseg,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        vseg);
    dpv::Vec<std::uint32_t> next = label;
    // Each line takes the min over itself and its two records' vertices.
    // Scatter-min: serial per block over records is race-free because we
    // combine into a fresh copy guarded per index via atomic-free two-pass:
    // records of one line are at known positions only after inversion, so
    // do it with a host-style pass (counted as elementwise).
    ctx.count(dpv::Prim::kElementwise, m);
    for (std::size_t j = 0; j < m; ++j) {
      std::uint32_t& slot = next[record_line[j]];
      slot = std::min(slot, vmin[j]);
    }
    // Shortcut: pointer-jump until labels are roots (L == L[L]).
    for (;;) {
      dpv::Vec<std::uint32_t> jumped = dpv::map(
          ctx, next, [&](std::uint32_t l) { return next[l]; });
      const std::size_t moved = dpv::reduce(
          ctx, dpv::Plus<std::size_t>{},
          dpv::zip_with(ctx, jumped, next,
                        [](std::uint32_t a, std::uint32_t b) {
                          return std::size_t{a != b};
                        }));
      next = std::move(jumped);
      if (moved == 0) break;
    }
    const std::size_t changed = dpv::reduce(
        ctx, dpv::Plus<std::size_t>{},
        dpv::zip_with(ctx, label, next,
                      [](std::uint32_t a, std::uint32_t b) {
                        return std::size_t{a != b};
                      }));
    label = std::move(next);
    if (changed == 0) break;
  }
  for (std::size_t i = 0; i < n; ++i) res.component_of[i] = label[i];

  // ---- Step 3: ring detection and extraction (host assembly). ----
  // Vertex degree and per-component tallies from the sorted records.
  struct CompInfo {
    std::size_t lines = 0;
    std::size_t vertices = 0;
    bool all_degree2 = true;
  };
  std::map<std::uint32_t, CompInfo> comps;
  for (std::size_t i = 0; i < n; ++i) comps[label[i]].lines++;
  std::size_t j = 0;
  while (j < m) {
    std::size_t end = j + 1;
    while (end < m && !vseg[end]) ++end;
    CompInfo& ci = comps[label[record_line[j]]];
    ci.vertices++;
    if (end - j != 2) ci.all_degree2 = false;
    j = end;
  }
  res.num_components = comps.size();

  // Walk each degree-2 component into an ordered loop.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::uint32_t>> adjacency;
  auto key_of = [](const geom::Point& p) {
    return std::pair{dpv::key_from_double(p.x), dpv::key_from_double(p.y)};
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!comps[label[i]].all_degree2) continue;
    adjacency[key_of(lines[i].a)].push_back(static_cast<std::uint32_t>(i));
    adjacency[key_of(lines[i].b)].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint8_t> used(n, 0);
  for (const auto& [comp, info] : comps) {
    if (!info.all_degree2 || info.lines < 3 ||
        info.lines != info.vertices) {
      continue;
    }
    // Start from the component's labeled line and follow shared vertices.
    std::vector<geom::Point> ring;
    std::uint32_t cur = comp;
    geom::Point at = lines[cur].a;
    for (std::size_t step = 0; step < info.lines; ++step) {
      used[cur] = 1;
      ring.push_back(at);
      const geom::Point to =
          (at == lines[cur].a) ? lines[cur].b : lines[cur].a;
      // The other incident line at `to`.
      const auto& inc = adjacency[key_of(to)];
      std::uint32_t nxt = cur;
      for (const auto cand : inc) {
        if (cand != cur && !used[cand]) {
          nxt = cand;
          break;
        }
      }
      at = to;
      if (nxt == cur) break;  // loop closes
      cur = nxt;
    }
    if (ring.size() == info.lines) {
      res.ring_component.push_back(comp);
      res.rings.push_back(std::move(ring));
    }
  }
  return res;
}

}  // namespace dps::core
