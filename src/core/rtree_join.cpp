#include "core/rtree_join.hpp"

#include <algorithm>

#include "geom/predicates.hpp"

namespace dps::core {

namespace {

using Pair = std::pair<geom::LineId, geom::LineId>;

void join_rec(const RTree& a, std::int32_t na, const RTree& b,
              std::int32_t nb, std::vector<Pair>& out, JoinStats* stats) {
  const RTree::Node& x = a.nodes()[na];
  const RTree::Node& y = b.nodes()[nb];
  if (!x.mbr.intersects(y.mbr)) return;
  if (stats != nullptr) ++stats->node_pairs_visited;
  if (x.is_leaf && y.is_leaf) {
    for (std::uint32_t i = 0; i < x.num_entries; ++i) {
      const geom::Segment& s = a.entries()[x.first_entry + i];
      for (std::uint32_t j = 0; j < y.num_entries; ++j) {
        const geom::Segment& t = b.entries()[y.first_entry + j];
        if (stats != nullptr) ++stats->candidate_pairs;
        if (s.bbox().intersects(t.bbox()) &&
            geom::segments_intersect(s, t)) {
          out.emplace_back(s.id, t.id);
        }
      }
    }
    return;
  }
  // Descend the taller/internal side (both when both are internal).
  if (!x.is_leaf && (y.is_leaf || x.num_children >= y.num_children)) {
    for (std::int32_t c = 0; c < x.num_children; ++c) {
      join_rec(a, x.first_child + c, b, nb, out, stats);
    }
  } else {
    for (std::int32_t c = 0; c < y.num_children; ++c) {
      join_rec(a, na, b, y.first_child + c, out, stats);
    }
  }
}

}  // namespace

std::vector<Pair> rtree_join(const RTree& a, const RTree& b,
                             JoinStats* stats) {
  std::vector<Pair> out;
  if (a.empty() || b.empty()) return out;
  join_rec(a, 0, b, 0, out, stats);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dps::core
