#include <algorithm>
#include <cstdint>

#include <tuple>

#include "core/batch_emit.hpp"
#include "core/batch_query.hpp"
#include "core/geom_tiles.hpp"
#include "core/linear_quadtree.hpp"
#include "dpv/distribute.hpp"
#include "dpv/fused.hpp"
#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"

namespace dps::core {

namespace {

// Batch descent of the *implicit* tree over the sorted leaf array.  The
// frontier holds (window, block, lo, hi) tuples: block is a cell of the
// regular decomposition and [lo, hi) is the key interval of its stored
// descendants.  Each round prunes by window intersection, peels tuples
// whose interval is exactly their own stored leaf, and expands the rest
// into four children whose sub-intervals come from elementwise binary
// searches on the path keys (descendants of a block occupy a contiguous
// key interval, and the four child intervals tile the parent's, so one
// rank per child suffices: child q's upper bound is child q+1's lower).
BatchQueryResult lqt_batch_window_impl(dpv::Context& ctx,
                                       const LinearQuadTree& tree,
                                       const std::vector<geom::Rect>& windows,
                                       const BatchControl& control) {
  BatchQueryResult out;
  out.results.resize(windows.size());
  const std::vector<LinearQuadTree::Leaf>& leaves = tree.leaves();
  if (leaves.empty() || windows.empty()) return out;
  auto round = ctx.scoped_round();

  const auto rank_of = [&](std::uint64_t key, std::size_t lo,
                           std::size_t hi) {
    const auto it = std::lower_bound(
        leaves.begin() + static_cast<std::ptrdiff_t>(lo),
        leaves.begin() + static_cast<std::ptrdiff_t>(hi), key,
        [](const LinearQuadTree::Leaf& l, std::uint64_t k) {
          return l.key < k;
        });
    return static_cast<std::size_t>(it - leaves.begin());
  };

  dpv::Vec<std::uint32_t> fwin = dpv::tabulate(
      ctx, windows.size(), [](std::size_t i) {
        return static_cast<std::uint32_t>(i);
      });
  dpv::Vec<geom::Block> fblock =
      dpv::constant<geom::Block>(ctx, windows.size(), geom::Block::root());
  dpv::Vec<std::size_t> flo =
      dpv::constant<std::size_t>(ctx, windows.size(), 0);
  dpv::Vec<std::size_t> fhi =
      dpv::constant<std::size_t>(ctx, windows.size(), leaves.size());

  // (window, stored-leaf) pairs accumulate here.
  dpv::Vec<std::uint32_t> lwin;
  dpv::Vec<std::size_t> lleaf;  // index into leaves

  while (!fwin.empty()) {
    // One control poll per descent round (a round is one implicit level).
    if (batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    // Prune: empty key interval, or cell misses the window.
    dpv::Flags live = dpv::tabulate(ctx, fwin.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(
          flo[i] < fhi[i] &&
          fblock[i].rect(tree.world()).intersects(windows[fwin[i]]));
    });
    std::tie(fwin, fblock, flo, fhi) =
        dpv::multi_pack(ctx, live, fwin, fblock, flo, fhi);
    if (fwin.empty()) break;

    // Peel tuples whose interval is exactly their own stored leaf.  (Path
    // keys collide across depths -- a NW child shares its parent's key --
    // so the block must match exactly, as in the sequential descent.)
    dpv::Flags stored = dpv::tabulate(ctx, fwin.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(fhi[i] - flo[i] == 1 &&
                                       leaves[flo[i]].block == fblock[i]);
    });
    dpv::Flags internal = dpv::map(ctx, stored, [](std::uint8_t s) {
      return static_cast<std::uint8_t>(!s);
    });
    auto [leaf_w, leaf_i] = dpv::multi_pack(ctx, stored, fwin, flo);
    lwin.insert(lwin.end(), leaf_w.begin(), leaf_w.end());
    lleaf.insert(lleaf.end(), leaf_i.begin(), leaf_i.end());
    std::tie(fwin, fblock, flo, fhi) =
        dpv::multi_pack(ctx, internal, fwin, fblock, flo, fhi);
    if (fwin.empty()) break;

    // Expand into the four children.  ranks[4i + q] = lower bound of child
    // q's key interval within the parent's [lo, hi).
    const std::size_t k = fwin.size();
    dpv::Vec<std::size_t> ranks = dpv::tabulate(
        ctx, 4 * k, [&](std::size_t j) {
          const std::size_t i = j >> 2;
          const geom::Block child =
              fblock[i].child(static_cast<geom::Quadrant>(j & 3));
          return rank_of(child.path_key(), flo[i], fhi[i]);
        });
    dpv::Vec<std::uint32_t> nwin = dpv::tabulate(
        ctx, 4 * k, [&](std::size_t j) { return fwin[j >> 2]; });
    dpv::Vec<geom::Block> nblock = dpv::tabulate(
        ctx, 4 * k, [&](std::size_t j) {
          return fblock[j >> 2].child(static_cast<geom::Quadrant>(j & 3));
        });
    dpv::Vec<std::size_t> nhi = dpv::tabulate(
        ctx, 4 * k, [&](std::size_t j) {
          return (j & 3) == 3 ? fhi[j >> 2] : ranks[j + 1];
        });
    fwin = std::move(nwin);
    fblock = std::move(nblock);
    flo = std::move(ranks);
    fhi = std::move(nhi);
  }

  // Expand stored-leaf pairs to (window, edge) candidates, test, and
  // concentrate through sort + duplicate deletion.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  dpv::Vec<std::size_t> ecounts = dpv::map(ctx, lleaf, [&](std::size_t l) {
    return static_cast<std::size_t>(leaves[l].num_edges);
  });
  const dpv::Expansion e = dpv::distribute(ctx, ecounts);
  out.candidates = e.total;
  if (e.total == 0) return out;
  dpv::Flags hit = tile_segment_intersects_rect(
      ctx, e.total,
      [&](std::size_t j) -> const geom::Segment& {
        const std::size_t i = e.src[j];
        const LinearQuadTree::Leaf& leaf = leaves[lleaf[i]];
        return tree.edges()[leaf.first_edge + (j - e.offsets[i])];
      },
      [&](std::size_t j) -> const geom::Rect& {
        return windows[lwin[e.src[j]]];
      });
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(
      ctx, e.total, [&](std::size_t j) {
        const std::size_t i = e.src[j];
        const LinearQuadTree::Leaf& leaf = leaves[lleaf[i]];
        const geom::LineId id =
            tree.edges()[leaf.first_edge + (j - e.offsets[i])].id;
        return (std::uint64_t{lwin[i]} << 32) | id;
      });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> sorted = dpv::gather(ctx, hits, order);
  dpv::Vec<std::uint64_t> unique = prim::delete_duplicates(ctx, sorted);
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  emit_concentrated(unique, out.results);
  return out;
}

}  // namespace

BatchQueryResult batch_window_query(dpv::Context& ctx,
                                    const LinearQuadTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control) {
  return lqt_batch_window_impl(ctx, tree, windows, control);
}

BatchQueryResult batch_point_query(dpv::Context& ctx,
                                   const LinearQuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control) {
  // Exactly the sequential semantics: a point query is a window query on
  // the degenerate rect of the point (segment-rect intersection against a
  // degenerate rect *is* the point-on-segment predicate).
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const geom::Point& p : points) rects.push_back(geom::Rect::of_point(p));
  return lqt_batch_window_impl(ctx, tree, rects, control);
}

}  // namespace dps::core
