#include "core/shard_segments.hpp"

namespace dps::core {

namespace {

void bisect(const geom::Rect& r, std::size_t k,
            std::vector<geom::Rect>& out) {
  if (k <= 1) {
    out.push_back(r);
    return;
  }
  const std::size_t k1 = (k + 1) / 2;
  const std::size_t k2 = k - k1;
  const double f = static_cast<double>(k1) / static_cast<double>(k);
  if (r.width() >= r.height()) {
    const double xm = r.xmin + f * (r.xmax - r.xmin);
    bisect({r.xmin, r.ymin, xm, r.ymax}, k1, out);
    bisect({xm, r.ymin, r.xmax, r.ymax}, k2, out);
  } else {
    const double ym = r.ymin + f * (r.ymax - r.ymin);
    bisect({r.xmin, r.ymin, r.xmax, ym}, k1, out);
    bisect({r.xmin, ym, r.xmax, r.ymax}, k2, out);
  }
}

}  // namespace

ShardPlan make_shard_plan(const geom::Rect& extent, std::size_t k) {
  ShardPlan plan;
  plan.extent = extent;
  plan.footprints.reserve(k == 0 ? 1 : k);
  bisect(extent, k == 0 ? 1 : k, plan.footprints);
  return plan;
}

ShardedSegments shard_segments(const std::vector<geom::Segment>& lines,
                               const geom::Rect& extent, std::size_t k) {
  ShardedSegments out;
  out.plan = make_shard_plan(extent, k);
  const std::size_t n = out.plan.footprints.size();
  out.shards.resize(n);
  if (n == 1) {
    // Degenerate single shard: byte-identical to the unsharded input (no
    // intersection filtering, no reordering), so a one-shard build is the
    // single-engine build.
    out.shards[0] = lines;
    out.assigned = lines.size();
    return out;
  }
  for (const geom::Segment& seg : lines) {
    bool anywhere = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (geom::segment_intersects_rect(seg, out.plan.footprints[s])) {
        out.shards[s].push_back(seg);
        anywhere = true;
      }
    }
    if (anywhere) ++out.assigned;
  }
  return out;
}

}  // namespace dps::core
