#include "core/validate.hpp"

#include <cmath>

namespace dps::core {

namespace {

bool finite_point(const geom::Point& p) noexcept {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

}  // namespace

std::string_view geometry_error_name(GeometryErrorCode code) noexcept {
  switch (code) {
    case GeometryErrorCode::kNonFiniteCoordinate: return "non-finite-coordinate";
    case GeometryErrorCode::kInvertedWindow: return "inverted-window";
    case GeometryErrorCode::kZeroAreaWindow: return "zero-area-window";
    case GeometryErrorCode::kOutOfWorldPoint: return "out-of-world-point";
    case GeometryErrorCode::kZeroNearestCount: return "zero-nearest-count";
    case GeometryErrorCode::kDuplicateLineId: return "duplicate-line-id";
  }
  return "unknown";
}

std::string GeometryIssue::describe() const {
  std::string out{geometry_error_name(code)};
  out += " at element ";
  out += std::to_string(index);
  return out;
}

GeometryError::GeometryError(const GeometryIssue& issue)
    : std::invalid_argument(issue.describe()), issue_(issue) {}

std::optional<GeometryIssue> validate_window(const geom::Rect& w) noexcept {
  if (!std::isfinite(w.xmin) || !std::isfinite(w.ymin) ||
      !std::isfinite(w.xmax) || !std::isfinite(w.ymax)) {
    return GeometryIssue{GeometryErrorCode::kNonFiniteCoordinate};
  }
  if (w.xmin > w.xmax || w.ymin > w.ymax) {
    return GeometryIssue{GeometryErrorCode::kInvertedWindow};
  }
  if (w.xmin == w.xmax || w.ymin == w.ymax) {
    return GeometryIssue{GeometryErrorCode::kZeroAreaWindow};
  }
  return std::nullopt;
}

std::optional<GeometryIssue> validate_point(const geom::Point& p) noexcept {
  if (!finite_point(p)) {
    return GeometryIssue{GeometryErrorCode::kNonFiniteCoordinate};
  }
  return std::nullopt;
}

std::optional<GeometryIssue> validate_nearest(const geom::Point& p,
                                              std::size_t k) noexcept {
  if (auto issue = validate_point(p)) return issue;
  if (k == 0) return GeometryIssue{GeometryErrorCode::kZeroNearestCount};
  return std::nullopt;
}

std::optional<GeometryIssue> validate_segments(
    const std::vector<geom::Segment>& lines, double world) noexcept {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const geom::Segment& s = lines[i];
    if (!finite_point(s.a) || !finite_point(s.b)) {
      return GeometryIssue{GeometryErrorCode::kNonFiniteCoordinate, i};
    }
    if (world > 0.0) {
      const bool inside = s.a.x >= 0.0 && s.a.x <= world && s.a.y >= 0.0 &&
                          s.a.y <= world && s.b.x >= 0.0 && s.b.x <= world &&
                          s.b.y >= 0.0 && s.b.y <= world;
      if (!inside) {
        return GeometryIssue{GeometryErrorCode::kOutOfWorldPoint, i};
      }
    }
  }
  return std::nullopt;
}

void validate_segments_or_throw(const std::vector<geom::Segment>& lines,
                                double world) {
  if (auto issue = validate_segments(lines, world)) {
    throw GeometryError(*issue);
  }
}

std::optional<GeometryIssue> validate_insert_ids(
    const std::vector<geom::Segment>& new_lines,
    const std::unordered_set<geom::LineId>& live) noexcept {
  std::unordered_set<geom::LineId> seen;
  seen.reserve(new_lines.size());
  for (std::size_t i = 0; i < new_lines.size(); ++i) {
    const geom::LineId id = new_lines[i].id;
    if (live.count(id) != 0 || !seen.insert(id).second) {
      return GeometryIssue{GeometryErrorCode::kDuplicateLineId, i};
    }
  }
  return std::nullopt;
}

}  // namespace dps::core
