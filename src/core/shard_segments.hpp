#pragma once
// Spatial sharding of a segment map for multi-engine serving.
//
// Hoel & Samet's regular decomposition gives disjoint shard footprints for
// free: a k-way split of the map rectangle by recursive bisection of the
// longest axis yields k closed rectangles that tile the extent exactly
// (interiors disjoint, shared borders only).  Every segment is then cloned
// into each shard whose footprint it touches -- the paper's section-4.1
// cloning rule ("each line segment is inserted into all of the blocks
// that it intersects") lifted from quadtree blocks to shard footprints.
//
// The clone+dupdel invariant the serving cluster relies on: because a
// segment lives in *every* shard its geometry meets, any query whose
// answer includes that segment finds it in at least one of the shards the
// query's own footprint routes to, and duplicate deletion of the cloned
// hits restores the exact single-index answer.  See
// docs/PRIMITIVES.md ("Sharded routing & exact merge").

#include <cstddef>
#include <vector>

#include "geom/geom.hpp"

namespace dps::core {

/// A k-way regular decomposition of a map rectangle.  Footprints are
/// closed, tile `extent` exactly, and have pairwise disjoint interiors
/// (adjacent footprints share only their border).
struct ShardPlan {
  geom::Rect extent;
  std::vector<geom::Rect> footprints;
};

/// Splits `extent` into k footprints by recursive bisection: each step
/// splits the longer axis at the fraction ceil(k/2)/k, so shard areas stay
/// proportional for any k (powers of two give the familiar halving grid).
/// Deterministic; k = 0 is treated as k = 1.
ShardPlan make_shard_plan(const geom::Rect& extent, std::size_t k);

/// The segment set of every shard of a plan.
struct ShardedSegments {
  ShardPlan plan;
  /// shards[i] holds the input segments intersecting plan.footprints[i]
  /// (closed-region test), in input order.  A segment on a shard border is
  /// cloned into every shard it touches; a segment crossing several
  /// footprints appears in each of them.
  std::vector<std::vector<geom::Segment>> shards;

  /// Distinct input segments that landed in at least one shard.
  std::size_t assigned = 0;

  /// Copies across all shards beyond the first home of each segment --
  /// the duplicate-deletion work the serving merge pays for exactness.
  std::size_t clones() const {
    std::size_t total = 0;
    for (const auto& s : shards) total += s.size();
    return total - assigned;
  }
};

/// Partitions `lines` into the k shards of `make_shard_plan(extent, k)`.
/// The k = 1 degenerate returns the input verbatim -- byte-identical to
/// the unsharded build input -- so a one-shard cluster builds exactly the
/// single-engine index.
ShardedSegments shard_segments(const std::vector<geom::Segment>& lines,
                               const geom::Rect& extent, std::size_t k);

}  // namespace dps::core
