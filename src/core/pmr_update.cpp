#include "core/pmr_update.hpp"

#include <unordered_set>

#include "geom/predicates.hpp"
#include "prim/capacity_check.hpp"
#include "prim/quad_split.hpp"

namespace dps::core {

namespace {

// Rebuilds group-head flags from block equality of adjacent rows.
dpv::Flags flags_from_blocks(dpv::Context& ctx,
                             const dpv::Vec<geom::Block>& blocks) {
  return dpv::tabulate(ctx, blocks.size(), [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 || !(blocks[i] == blocks[i - 1]));
  });
}

void finish(dpv::Context& ctx, prim::LineSet& ls, QuadBuildResult& res,
            const dpv::PrimCounters& before) {
  res.tree = QuadTree::from_line_set(ls);
  res.prims = ctx.counters() - before;
}

}  // namespace

prim::LineSet line_set_from(const QuadTree& tree) {
  prim::LineSet ls;
  ls.world = tree.world();
  if (tree.num_nodes() == 0) return ls;
  // DFS in quadrant order so sibling groups stay adjacent.
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const QuadTree::Node& nd = tree.nodes()[stack.back()];
    stack.pop_back();
    if (nd.is_leaf) {
      for (std::uint32_t i = 0; i < nd.num_edges; ++i) {
        ls.segs.push_back(tree.edges()[nd.first_edge + i]);
        ls.blocks.push_back(nd.block);
        ls.seg.push_back(i == 0 ? 1 : 0);
      }
      continue;
    }
    for (int q = 3; q >= 0; --q) {  // reversed: stack pops NW first
      if (nd.child[q] != QuadTree::kNoChild) stack.push_back(nd.child[q]);
    }
  }
  return ls;
}

void pmr_split_rounds(dpv::Context& ctx, prim::LineSet& ls,
                      const PmrBuildOptions& opts, QuadBuildResult& res) {
  for (;;) {
    const prim::CapacityCheck cc =
        prim::capacity_check(ctx, ls.seg, opts.bucket_capacity);
    dpv::Flags want = dpv::tabulate(ctx, ls.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(cc.elem_overflow[i] &&
                                       ls.blocks[i].depth < opts.max_depth);
    });
    const std::size_t capped = dpv::reduce(
        ctx, dpv::Plus<std::size_t>{},
        dpv::tabulate(ctx, ls.size(), [&](std::size_t i) {
          return std::size_t{cc.elem_overflow[i] != 0 &&
                             ls.blocks[i].depth >= opts.max_depth};
        }));
    if (capped > 0) res.depth_limited = true;
    const std::size_t splitters =
        dpv::reduce(ctx, dpv::Plus<std::size_t>{},
                    dpv::map(ctx, want, [](std::uint8_t f) {
                      return std::size_t{f != 0};
                    }));
    if (splitters == 0) break;

    BuildRound round;
    round.line_processors = ls.size();
    round.groups = dpv::num_segments(ls.seg);
    prim::QuadSplitStats stats;
    ls = prim::quad_split(ctx, ls, want, &stats);
    round.nodes_split = stats.nodes_split;
    round.clones_made = stats.clones_made;
    res.trace.push_back(round);
    ++res.rounds;
  }
}

QuadBuildResult pmr_insert(dpv::Context& ctx, const QuadTree& tree,
                           const std::vector<geom::Segment>& new_lines,
                           const PmrBuildOptions& opts) {
  const dpv::PrimCounters before = ctx.counters();
  QuadBuildResult res;
  prim::LineSet ls = line_set_from(tree);

  // Place each new line into every existing leaf -- or unmaterialized empty
  // quadrant -- whose region it properly intersects.
  std::vector<geom::Segment> add_segs;
  std::vector<geom::Block> add_blocks;
  std::vector<std::int32_t> stack;
  for (const auto& line : new_lines) {
    if (tree.num_nodes() == 0) {
      add_segs.push_back(line);
      add_blocks.push_back(geom::Block::root());
      continue;
    }
    stack.assign(1, 0);
    while (!stack.empty()) {
      const QuadTree::Node& nd = tree.nodes()[stack.back()];
      stack.pop_back();
      if (!geom::segment_properly_intersects_rect(
              line, nd.block.rect(tree.world()))) {
        continue;
      }
      if (nd.is_leaf) {
        add_segs.push_back(line);
        add_blocks.push_back(nd.block);
        continue;
      }
      for (int q = 0; q < 4; ++q) {
        if (nd.child[q] != QuadTree::kNoChild) {
          stack.push_back(nd.child[q]);
        } else {
          const geom::Block cb = nd.block.child(static_cast<geom::Quadrant>(q));
          if (geom::segment_properly_intersects_rect(line,
                                                     cb.rect(tree.world()))) {
            add_segs.push_back(line);
            add_blocks.push_back(cb);
          }
        }
      }
    }
  }

  // Append, then restore the canonical group order with a radix sort on the
  // hierarchical path key (the combined blocks remain an antichain, so path
  // keys order them consistently); the sort is stable, so existing rows of
  // a group keep their relative order.
  ls.segs.insert(ls.segs.end(), add_segs.begin(), add_segs.end());
  ls.blocks.insert(ls.blocks.end(), add_blocks.begin(), add_blocks.end());
  dpv::Vec<std::uint64_t> keys = dpv::map(
      ctx, ls.blocks, [](const geom::Block& b) { return b.path_key(); });
  dpv::Index order = dpv::sort_keys_indices(ctx, keys, 58);
  ls.segs = dpv::gather(ctx, ls.segs, order);
  ls.blocks = dpv::gather(ctx, ls.blocks, order);
  ls.seg = flags_from_blocks(ctx, ls.blocks);

  pmr_split_rounds(ctx, ls, opts, res);
  finish(ctx, ls, res, before);
  return res;
}

QuadBuildResult pmr_delete(dpv::Context& ctx, const QuadTree& tree,
                           const std::vector<geom::LineId>& doomed,
                           const PmrBuildOptions& opts) {
  const dpv::PrimCounters before = ctx.counters();
  QuadBuildResult res;
  prim::LineSet ls = line_set_from(tree);

  // Pack the doomed q-edges out.
  const std::unordered_set<geom::LineId> gone(doomed.begin(), doomed.end());
  dpv::Flags keep = dpv::map(ctx, ls.segs, [&](const geom::Segment& s) {
    return static_cast<std::uint8_t>(!gone.count(s.id));
  });
  ls.segs = dpv::pack(ctx, ls.segs, keep);
  ls.blocks = dpv::pack(ctx, ls.blocks, keep);
  ls.seg = flags_from_blocks(ctx, ls.blocks);

  // Merge rounds: a sibling run merges when (a) its immediate parent has no
  // deeper descendants left in the ordering (checked against the runs
  // adjacent to it) and (b) the run's distinct line count is at most the
  // bucket capacity.
  for (;;) {
    const std::size_t n = ls.size();
    if (n == 0) break;
    // Parent block per q-edge; the root leaf never merges.
    dpv::Vec<geom::Block> parent = dpv::map(
        ctx, ls.blocks, [](const geom::Block& b) {
          return b.depth == 0 ? b : b.parent();
        });
    dpv::Flags prun = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return static_cast<std::uint8_t>(i == 0 || !(parent[i] == parent[i - 1]));
    });
    // Distinct line ids within each parent run: sort by id, count firsts.
    dpv::Vec<std::uint32_t> id32 = dpv::map(
        ctx, ls.segs, [](const geom::Segment& s) { return s.id; });
    dpv::Index order = dpv::seg_sort_indices(ctx, id32, prun);
    dpv::Vec<std::uint32_t> sorted_id = dpv::gather(ctx, id32, order);
    dpv::Vec<std::size_t> is_first = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return std::size_t{i == 0 || prun[i] != 0 ||
                         sorted_id[i] != sorted_id[i - 1]};
    });
    dpv::Vec<std::size_t> distinct = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::Plus<std::size_t>{}, is_first, prun,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        prun);
    // Per-element merge verdict (constant within a parent run).
    dpv::Vec<std::size_t> run_start = dpv::seg_broadcast(ctx, dpv::iota(ctx, n), prun);
    dpv::Vec<std::size_t> run_len = dpv::seg_broadcast(
        ctx,
        dpv::seg_scan(ctx, dpv::Plus<std::size_t>{},
                      dpv::constant<std::size_t>(ctx, n, 1), prun,
                      dpv::Dir::kDown, dpv::Incl::kInclusive),
        prun);
    dpv::Flags merge = dpv::tabulate(ctx, n, [&](std::size_t i) {
      const geom::Block& p = parent[i];
      if (ls.blocks[i].depth == 0) return std::uint8_t{0};
      if (distinct[i] > opts.bucket_capacity) return std::uint8_t{0};
      const std::size_t lo = run_start[i];
      const std::size_t hi = lo + run_len[i];
      if (lo > 0 && ls.blocks[lo - 1].strict_descendant_of(p)) {
        return std::uint8_t{0};  // a deeper subtree interrupts on the left
      }
      if (hi < n && ls.blocks[hi].strict_descendant_of(p)) {
        return std::uint8_t{0};  // ... or on the right
      }
      return std::uint8_t{1};
    });
    const std::size_t merging =
        dpv::reduce(ctx, dpv::Plus<std::size_t>{},
                    dpv::zip_with(ctx, merge, prun,
                                  [](std::uint8_t m, std::uint8_t h) {
                                    return std::size_t{m != 0 && h != 0};
                                  }));
    if (merging == 0) break;

    // Apply: bring only the *merging* runs into id order (the radix sort is
    // stable and non-merging rows carry a constant key, so their original
    // group layout is untouched); duplicate q-edges of a line cloned into
    // several merging siblings are then adjacent -- keep the first of each
    // and lift merged rows to the parent block.
    dpv::Vec<std::uint32_t> masked_key = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return merge[i] ? id32[i] : 0u;
    });
    dpv::Index apply_order = dpv::seg_sort_indices(ctx, masked_key, prun);
    dpv::Vec<geom::Segment> sorted_segs = dpv::gather(ctx, ls.segs, apply_order);
    dpv::Vec<geom::Block> sorted_blocks =
        dpv::gather(ctx, ls.blocks, apply_order);
    dpv::Flags merge_sorted = dpv::gather(ctx, merge, apply_order);
    dpv::Vec<std::uint32_t> id_sorted = dpv::gather(ctx, id32, apply_order);
    dpv::Flags keep_sorted = dpv::tabulate(ctx, n, [&](std::size_t i) {
      if (!merge_sorted[i]) return std::uint8_t{1};
      return static_cast<std::uint8_t>(i == 0 || prun[i] != 0 ||
                                       id_sorted[i] != id_sorted[i - 1]);
    });
    dpv::Vec<geom::Block> lifted = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return merge_sorted[i] ? sorted_blocks[i].parent() : sorted_blocks[i];
    });
    ls.segs = dpv::pack(ctx, sorted_segs, keep_sorted);
    ls.blocks = dpv::pack(ctx, lifted, keep_sorted);
    ls.seg = flags_from_blocks(ctx, ls.blocks);
    ++res.rounds;
  }

  finish(ctx, ls, res, before);
  return res;
}

}  // namespace dps::core
