#include "core/pm1_build.hpp"

#include "core/validate.hpp"
#include "prim/pm_split_test.hpp"
#include "prim/quad_split.hpp"

namespace dps::core {

QuadBuildResult pm1_build(dpv::Context& ctx, std::vector<geom::Segment> lines,
                          const QuadBuildOptions& opts) {
  validate_segments_or_throw(lines);  // finite-only; builds clip to world
  const dpv::PrimCounters before = ctx.counters();
  QuadBuildResult res;
  prim::LineSet ls =
      prim::LineSet::initial(ctx, dpv::to_vec(lines), opts.world);

  for (;;) {
    const prim::PmSplitDecision d = prim::pm_split_test(ctx, ls, opts.variant);
    // Depth cap: a node at maximal resolution may not subdivide further.
    dpv::Flags want = dpv::tabulate(ctx, ls.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(d.elem_split[i] &&
                                       ls.blocks[i].depth < opts.max_depth);
    });
    const std::size_t capped_splitters = dpv::reduce(
        ctx, dpv::Plus<std::size_t>{},
        dpv::tabulate(ctx, ls.size(), [&](std::size_t i) {
          return std::size_t{d.elem_split[i] != 0 &&
                             ls.blocks[i].depth >= opts.max_depth};
        }));
    if (capped_splitters > 0) res.depth_limited = true;
    const std::size_t splitters =
        dpv::reduce(ctx, dpv::Plus<std::size_t>{},
                    dpv::map(ctx, want, [](std::uint8_t f) {
                      return std::size_t{f != 0};
                    }));
    if (splitters == 0) break;

    BuildRound round;
    round.line_processors = ls.size();
    round.groups = dpv::num_segments(ls.seg);
    prim::QuadSplitStats stats;
    ls = prim::quad_split(ctx, ls, want, &stats);
    round.nodes_split = stats.nodes_split;
    round.clones_made = stats.clones_made;
    res.trace.push_back(round);
    ++res.rounds;
  }

  res.tree = QuadTree::from_line_set(ls);
  res.prims = ctx.counters() - before;
  return res;
}

}  // namespace dps::core
