#include "core/spatial_join.hpp"

#include <algorithm>
#include <cassert>

#include "geom/predicates.hpp"

namespace dps::core {

namespace {

using Pair = std::pair<geom::LineId, geom::LineId>;

// Tests every edge of leaf `la` (of tree a) against every edge of leaf
// `lb` (of tree b), restricted to candidates whose bboxes meet.
void leaf_vs_leaf(const QuadTree& a, const QuadTree::Node& la,
                  const QuadTree& b, const QuadTree::Node& lb,
                  std::vector<Pair>& out, JoinStats* stats) {
  const auto [af, al] = a.leaf_edges(la);
  const auto [bf, bl] = b.leaf_edges(lb);
  for (const geom::Segment* s = af; s != al; ++s) {
    for (const geom::Segment* t = bf; t != bl; ++t) {
      if (stats != nullptr) ++stats->candidate_pairs;
      if (s->bbox().intersects(t->bbox()) && geom::segments_intersect(*s, *t)) {
        out.emplace_back(s->id, t->id);
      }
    }
  }
}

// Lock-step descent: na and nb cover regions where one contains the other.
void join_rec(const QuadTree& a, const QuadTree::Node& na, const QuadTree& b,
              const QuadTree::Node& nb, std::vector<Pair>& out,
              JoinStats* stats) {
  if (stats != nullptr) ++stats->node_pairs_visited;
  if (na.is_leaf && nb.is_leaf) {
    leaf_vs_leaf(a, na, b, nb, out, stats);
    return;
  }
  if (na.is_leaf) {
    // Descend b towards na's region.
    for (const std::int32_t c : nb.child) {
      if (c == QuadTree::kNoChild) continue;
      const QuadTree::Node& child = b.nodes()[c];
      if (child.block.rect(b.world()).intersects(na.block.rect(a.world()))) {
        join_rec(a, na, b, child, out, stats);
      }
    }
    return;
  }
  if (nb.is_leaf) {
    for (const std::int32_t c : na.child) {
      if (c == QuadTree::kNoChild) continue;
      const QuadTree::Node& child = a.nodes()[c];
      if (child.block.rect(a.world()).intersects(nb.block.rect(b.world()))) {
        join_rec(a, child, b, nb, out, stats);
      }
    }
    return;
  }
  // Both internal over the same block: matched quadrants only.
  assert(na.block == nb.block);
  for (int q = 0; q < 4; ++q) {
    const std::int32_t ca = na.child[q];
    const std::int32_t cb = nb.child[q];
    if (ca == QuadTree::kNoChild || cb == QuadTree::kNoChild) continue;
    join_rec(a, a.nodes()[ca], b, b.nodes()[cb], out, stats);
  }
}

}  // namespace

std::vector<Pair> spatial_join(const QuadTree& a, const QuadTree& b,
                               JoinStats* stats) {
  std::vector<Pair> out;
  if (a.num_nodes() == 0 || b.num_nodes() == 0) return out;
  assert(a.world() == b.world() && "joined maps must share the root square");
  join_rec(a, a.root(), b, b.root(), out, stats);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dps::core
