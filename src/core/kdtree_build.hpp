#pragma once
// Data-parallel k-d tree construction in the scan model.
//
// Section 1 of the paper cites Blelloch's scan-model k-d tree build for
// point collections [Blel89b] as the prior related to its own algorithms;
// this module implements it on the dpv runtime.  All overflowing nodes
// split per round, simultaneously: points are sorted within each node
// group by the round's axis (exact segmented 64-bit radix sort), the
// median rank cuts the group in two (no permutation needed -- the sorted
// prefix IS the left child), and the discriminator value is the largest
// left coordinate.  O(log n) rounds, one sort plus O(1) scans each.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/point_set.hpp"

namespace dps::core {

struct KdBuildOptions {
  std::size_t leaf_capacity = 8;
};

/// Materialized k-d tree.  Left subtree holds coordinates <= split on the
/// node's axis, right subtree >= split (ties may fall on either side).
class KdTree {
 public:
  struct Node {
    std::uint8_t axis = 0;   // 0 = x, 1 = y (internal nodes)
    double split = 0.0;      // discriminator (internal nodes)
    std::int32_t left = -1;
    std::int32_t right = -1;
    bool is_leaf = true;
    std::uint32_t first_pt = 0;
    std::uint32_t num_pts = 0;
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<geom::Point>& points() const { return pts_; }
  const std::vector<prim::PointId>& ids() const { return ids_; }
  bool empty() const { return pts_.empty(); }

  int height() const;
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t max_leaf_occupancy() const;

  /// Ids of the points inside the closed window, sorted.
  std::vector<prim::PointId> window_query(const geom::Rect& window) const;

  /// The k nearest points to `q` (Euclidean), nearest first; ties broken
  /// by id.  Returns fewer when the tree holds fewer than k points.
  std::vector<prim::PointId> k_nearest(const geom::Point& q,
                                       std::size_t k) const;

  /// Leaf contents in DFS order (sorted ids per leaf) -- the structural
  /// fingerprint for cross-validation against the sequential build.
  std::string fingerprint() const;

  /// Checks the k-d invariants (left <= split <= right per node, ranges
  /// consistent); empty string when valid.
  std::string validate() const;

 private:
  friend struct KdBuilderAccess;
  std::vector<Node> nodes_;
  std::vector<geom::Point> pts_;
  std::vector<prim::PointId> ids_;
};

struct KdBuildResult {
  KdTree tree;
  std::size_t rounds = 0;
  dpv::PrimCounters prims;
};

/// Builds the k-d tree of `pts` (ids parallel to pts), alternating x/y
/// discriminators from the root.
KdBuildResult kd_build(dpv::Context& ctx, std::vector<geom::Point> pts,
                       std::vector<prim::PointId> ids,
                       const KdBuildOptions& opts);

}  // namespace dps::core
