#pragma once
// Best-first (incremental) nearest-neighbor search over the line indexes,
// after Hjaltason & Samet: a priority queue ordered by MINDIST holds tree
// nodes and candidate segments; when a segment reaches the front it is a
// confirmed next-nearest answer.  Works unchanged on the disjoint
// quadtrees (q-edge duplicates are skipped on report) and on the R-tree.

#include <cstddef>
#include <vector>

#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct Neighbor {
  geom::LineId id;
  double distance2;  // squared Euclidean distance to the segment
};

/// The k lines nearest to `q`, nearest first (ties by id).
std::vector<Neighbor> k_nearest(const QuadTree& tree, const geom::Point& q,
                                std::size_t k);

std::vector<Neighbor> k_nearest(const RTree& tree, const geom::Point& q,
                                std::size_t k);

}  // namespace dps::core
