#pragma once
// Data-parallel spatial join (map intersection), after [Hoel94a].
//
// The host lock-step join (core/spatial_join.hpp) walks the two trees; this
// version stays in the scan model: both maps' line processor sets are
// *refined to a common decomposition* -- every leaf of one map that has
// deeper leaves of the other inside it is split with the standard quadtree
// node split (section 4.6), all such leaves per round simultaneously --
// after which intersecting content always lives in *equal* blocks.
// Candidate (lineA, lineB) pairs are then expanded per matched block with
// scans, tested elementwise, and concentrated through sort + duplicate
// deletion (a pair can surface in several shared blocks).
//
// Caveat: with the library's proper-intersection q-edge semantics, a pair
// whose ONLY contact is a single point lying exactly on a dyadic block
// boundary, approached end-on from both sides, shares no block and is not
// reported (the host lock-step join in core/spatial_join.hpp has no such
// blind spot).  Any transversal crossing, shared interior vertex, or
// positive-length overlap is always found.

#include <utility>
#include <vector>

#include "core/quadtree.hpp"
#include "core/spatial_join.hpp"  // JoinStats
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct DpJoinStats : JoinStats {
  std::size_t refine_rounds = 0;   // alignment rounds over both maps
  std::size_t splits_a = 0;        // groups split in map A
  std::size_t splits_b = 0;
};

/// All (idA, idB) pairs of intersecting lines, sorted, each pair once.
/// Both trees must share the same world size.
std::vector<std::pair<geom::LineId, geom::LineId>> dp_spatial_join(
    dpv::Context& ctx, const QuadTree& a, const QuadTree& b,
    DpJoinStats* stats = nullptr);

}  // namespace dps::core
