#include "core/region_quadtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dps::core {

namespace {

// The depth-`order` block at position `i` of the canonical path order
// (base-4 digits, NW=0 NE=1 SW=2 SE=3, most significant first).
geom::Block block_at_path_index(std::uint64_t i, int order) {
  std::uint32_t ix = 0, iy = 0;
  for (int lvl = order - 1; lvl >= 0; --lvl) {
    const auto digit = static_cast<std::uint32_t>((i >> (2 * lvl)) & 3);
    const std::uint32_t qx = digit & 1;          // NE, SE are east
    const std::uint32_t qy = digit < 2 ? 1 : 0;  // NW, NE are north
    ix = (ix << 1) | qx;
    iy = (iy << 1) | qy;
  }
  return geom::Block{static_cast<std::uint8_t>(order), ix, iy};
}

}  // namespace

RegionBuildResult region_build(dpv::Context& ctx,
                               const std::vector<std::uint8_t>& raster,
                               int order) {
  const dpv::PrimCounters before = ctx.counters();
  const std::size_t side = std::size_t{1} << order;
  assert(raster.size() == side * side && "raster must be 2^order square");
  RegionBuildResult res;

  // Pixels in canonical path order.
  dpv::Vec<geom::Block> blocks = dpv::tabulate(
      ctx, side * side,
      [&](std::size_t i) { return block_at_path_index(i, order); });
  dpv::Vec<std::uint8_t> colors = dpv::tabulate(
      ctx, side * side, [&](std::size_t i) {
        const geom::Block b = blocks[i];
        return raster[static_cast<std::size_t>(b.iy) * side + b.ix];
      });

  for (;;) {
    const std::size_t n = blocks.size();
    if (n <= 1) break;
    // A merge head: an NW child whose three siblings follow it as leaves
    // with the same color.
    dpv::Flags head = dpv::tabulate(ctx, n, [&](std::size_t i) {
      const geom::Block& b = blocks[i];
      if (b.depth == 0 || i + 3 >= n) return std::uint8_t{0};
      if (b.quadrant_in_parent() != geom::Quadrant::kNW) return std::uint8_t{0};
      const geom::Block p = b.parent();
      if (!(blocks[i + 1] == p.child(geom::Quadrant::kNE)) ||
          !(blocks[i + 2] == p.child(geom::Quadrant::kSW)) ||
          !(blocks[i + 3] == p.child(geom::Quadrant::kSE))) {
        return std::uint8_t{0};
      }
      const std::uint8_t c = colors[i];
      return static_cast<std::uint8_t>(colors[i + 1] == c &&
                                       colors[i + 2] == c &&
                                       colors[i + 3] == c);
    });
    const std::size_t merges = dpv::reduce(
        ctx, dpv::Plus<std::size_t>{},
        dpv::map(ctx, head, [](std::uint8_t h) { return std::size_t{h}; }));
    if (merges == 0) break;
    ++res.rounds;
    dpv::Flags keep = dpv::tabulate(ctx, n, [&](std::size_t i) {
      for (std::size_t back = 1; back <= 3 && back <= i; ++back) {
        if (head[i - back]) return std::uint8_t{0};  // absorbed sibling
      }
      return std::uint8_t{1};
    });
    dpv::Vec<geom::Block> lifted = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return head[i] ? blocks[i].parent() : blocks[i];
    });
    blocks = dpv::pack(ctx, lifted, keep);
    colors = dpv::pack(ctx, colors, keep);
  }

  std::vector<RegionQuadTree::Leaf> leaves(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    leaves[i] = {blocks[i], colors[i]};
  }
  res.tree = RegionQuadTree(std::move(leaves), order);
  res.prims = ctx.counters() - before;
  return res;
}

std::uint8_t RegionQuadTree::color_at(std::uint32_t x,
                                      std::uint32_t y) const {
  assert(!leaves_.empty());
  const geom::Block pixel{static_cast<std::uint8_t>(order_), x, y};
  const std::uint64_t key = pixel.path_key();
  // The containing leaf is the last one with path key <= the pixel's.
  auto it = std::upper_bound(
      leaves_.begin(), leaves_.end(), key,
      [](std::uint64_t k, const Leaf& l) { return k < l.block.path_key(); });
  assert(it != leaves_.begin());
  --it;
  assert(pixel == it->block || pixel.strict_descendant_of(it->block));
  return it->color;
}

std::size_t RegionQuadTree::count_color(std::uint8_t color) const {
  std::size_t c = 0;
  for (const auto& l : leaves_) c += (l.color == color);
  return c;
}

bool RegionQuadTree::is_minimal() const {
  for (std::size_t i = 0; i + 3 < leaves_.size(); ++i) {
    const geom::Block& b = leaves_[i].block;
    if (b.depth == 0) continue;
    if (b.quadrant_in_parent() != geom::Quadrant::kNW) continue;
    const geom::Block p = b.parent();
    if (leaves_[i + 1].block == p.child(geom::Quadrant::kNE) &&
        leaves_[i + 2].block == p.child(geom::Quadrant::kSW) &&
        leaves_[i + 3].block == p.child(geom::Quadrant::kSE) &&
        leaves_[i].color == leaves_[i + 1].color &&
        leaves_[i].color == leaves_[i + 2].color &&
        leaves_[i].color == leaves_[i + 3].color) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> rasterize_segments(
    const std::vector<geom::Segment>& lines, int order, double world) {
  const std::size_t side = std::size_t{1} << order;
  std::vector<std::uint8_t> raster(side * side, 0);
  const double cell = world / static_cast<double>(side);
  auto cell_of = [&](double v) {
    return static_cast<std::int64_t>(
        std::clamp(std::floor(v / cell), 0.0,
                   static_cast<double>(side - 1)));
  };
  auto mark = [&](std::int64_t x, std::int64_t y) {
    if (x >= 0 && y >= 0 && x < std::int64_t(side) && y < std::int64_t(side)) {
      raster[static_cast<std::size_t>(y) * side + x] = 1;
    }
  };
  for (const auto& s : lines) {
    // Amanatides-Woo grid traversal from a to b.
    std::int64_t x = cell_of(s.a.x), y = cell_of(s.a.y);
    const std::int64_t xe = cell_of(s.b.x), ye = cell_of(s.b.y);
    const double dx = s.b.x - s.a.x, dy = s.b.y - s.a.y;
    const int sx = dx > 0 ? 1 : -1, sy = dy > 0 ? 1 : -1;
    double t_max_x = dx != 0.0
                         ? ((static_cast<double>(x + (sx > 0)) * cell) -
                            s.a.x) / dx
                         : std::numeric_limits<double>::infinity();
    double t_max_y = dy != 0.0
                         ? ((static_cast<double>(y + (sy > 0)) * cell) -
                            s.a.y) / dy
                         : std::numeric_limits<double>::infinity();
    const double t_dx = dx != 0.0 ? cell / std::abs(dx)
                                  : std::numeric_limits<double>::infinity();
    const double t_dy = dy != 0.0 ? cell / std::abs(dy)
                                  : std::numeric_limits<double>::infinity();
    mark(x, y);
    std::size_t guard = 4 * side;
    while ((x != xe || y != ye) && guard-- > 0) {
      if (t_max_x < t_max_y) {
        t_max_x += t_dx;
        x += sx;
      } else {
        t_max_y += t_dy;
        y += sy;
      }
      mark(x, y);
    }
  }
  return raster;
}

}  // namespace dps::core
