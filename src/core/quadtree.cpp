#include "core/quadtree.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dps::core {

namespace {

// The quadrant of `b`'s child that contains the depth-`target.depth`
// block `target` (which must be a strict descendant of `b`).
geom::Quadrant quadrant_towards(const geom::Block& b,
                                const geom::Block& target) {
  const int shift = target.depth - b.depth - 1;
  const std::uint32_t cx = target.ix >> shift;
  const std::uint32_t cy = target.iy >> shift;
  const bool east = (cx & 1) != 0;
  const bool north = (cy & 1) != 0;
  return north ? (east ? geom::Quadrant::kNE : geom::Quadrant::kNW)
               : (east ? geom::Quadrant::kSE : geom::Quadrant::kSW);
}

}  // namespace

QuadTree QuadTree::from_line_set(const prim::LineSet& ls) {
  QuadTree t;
  t.world_ = ls.world;
  t.nodes_.push_back(Node{geom::Block::root()});
  const std::size_t n = ls.size();
  t.edges_.reserve(n);

  std::size_t start = 0;
  while (start < n) {
    std::size_t end = start + 1;
    while (end < n && !ls.seg[end]) ++end;
    const geom::Block leaf_block = ls.blocks[start];

    // Descend from the root, creating the path to the leaf block.
    std::int32_t cur = 0;
    while (t.nodes_[cur].block.depth < leaf_block.depth) {
      const auto q = quadrant_towards(t.nodes_[cur].block, leaf_block);
      const auto qi = static_cast<std::size_t>(q);
      t.nodes_[cur].is_leaf = false;
      std::int32_t next = t.nodes_[cur].child[qi];
      if (next == kNoChild) {
        next = static_cast<std::int32_t>(t.nodes_.size());
        t.nodes_[cur].child[qi] = next;
        t.nodes_.push_back(Node{t.nodes_[cur].block.child(q)});
      }
      cur = next;
    }
    assert(t.nodes_[cur].block == leaf_block &&
           "line-set groups must form an antichain of blocks");

    Node& leaf = t.nodes_[cur];
    leaf.is_leaf = true;
    leaf.first_edge = static_cast<std::uint32_t>(t.edges_.size());
    leaf.num_edges = static_cast<std::uint32_t>(end - start);
    for (std::size_t i = start; i < end; ++i) t.edges_.push_back(ls.segs[i]);
    start = end;
  }
  return t;
}

std::size_t QuadTree::num_leaves() const {
  std::size_t c = 0;
  for (const auto& nd : nodes_) c += (nd.is_leaf && nd.num_edges > 0);
  return c;
}

int QuadTree::height() const {
  int h = 0;
  for (const auto& nd : nodes_) h = std::max<int>(h, nd.block.depth);
  return h;
}

std::size_t QuadTree::max_leaf_occupancy() const {
  std::size_t m = 0;
  for (const auto& nd : nodes_) {
    if (nd.is_leaf) m = std::max<std::size_t>(m, nd.num_edges);
  }
  return m;
}

std::string QuadTree::fingerprint() const {
  struct LeafInfo {
    std::uint64_t key;
    std::vector<geom::LineId> ids;
  };
  std::vector<LeafInfo> leaves;
  for (const auto& nd : nodes_) {
    if (!nd.is_leaf || nd.num_edges == 0) continue;
    LeafInfo li;
    li.key = nd.block.morton_key();
    for (std::uint32_t i = 0; i < nd.num_edges; ++i) {
      li.ids.push_back(edges_[nd.first_edge + i].id);
    }
    std::sort(li.ids.begin(), li.ids.end());
    leaves.push_back(std::move(li));
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) { return a.key < b.key; });
  std::ostringstream os;
  for (const auto& li : leaves) {
    os << li.key << ":";
    for (const auto id : li.ids) os << id << ",";
    os << ";";
  }
  return os.str();
}

std::string QuadTree::to_ascii() const {
  struct LeafInfo {
    const Node* node;
    std::uint64_t key;
  };
  std::vector<LeafInfo> leaves;
  for (const auto& nd : nodes_) {
    if (nd.is_leaf) leaves.push_back({&nd, nd.block.morton_key()});
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) { return a.key < b.key; });
  std::ostringstream os;
  for (const auto& li : leaves) {
    os << "  leaf " << li.node->block.to_string() << " lines[";
    std::vector<geom::LineId> ids;
    for (std::uint32_t i = 0; i < li.node->num_edges; ++i) {
      ids.push_back(edges_[li.node->first_edge + i].id);
    }
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      os << (i ? "," : "") << ids[i];
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace dps::core
