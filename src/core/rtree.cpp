#include "core/rtree.hpp"

#include <sstream>

namespace dps::core {

std::size_t RTree::num_leaves() const {
  std::size_t c = 0;
  for (const auto& nd : nodes_) c += nd.is_leaf;
  return c;
}

double RTree::total_coverage() const {
  double a = 0.0;
  for (const auto& nd : nodes_) a += nd.mbr.area();
  return a;
}

double RTree::sibling_overlap() const {
  double total = 0.0;
  for (const auto& nd : nodes_) {
    if (nd.is_leaf) continue;
    for (std::int32_t i = 0; i < nd.num_children; ++i) {
      for (std::int32_t j = i + 1; j < nd.num_children; ++j) {
        total += nodes_[nd.first_child + i].mbr.overlap_area(
            nodes_[nd.first_child + j].mbr);
      }
    }
  }
  return total;
}

std::string RTree::validate() const {
  if (nodes_.empty()) return entries_.empty() ? "" : "entries without nodes";
  std::ostringstream err;
  // Depth-first check of MBRs, fanout bounds, and uniform leaf depth.
  struct Item {
    std::int32_t node;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  int leaf_depth = -1;
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[it.node];
    if (nd.is_leaf) {
      if (leaf_depth == -1) leaf_depth = it.depth;
      if (it.depth != leaf_depth) {
        err << "leaf depth mismatch: node " << it.node << " at depth "
            << it.depth << " vs " << leaf_depth;
        return err.str();
      }
      if (nd.num_entries == 0 && nodes_.size() > 1) {
        err << "empty non-root leaf " << it.node;
        return err.str();
      }
      geom::Rect u = geom::Rect::empty();
      for (std::uint32_t i = 0; i < nd.num_entries; ++i) {
        u = u.united(entries_[nd.first_entry + i].bbox());
      }
      if (!(u == nd.mbr) && nd.num_entries > 0) {
        err << "leaf " << it.node << " MBR is not the union of its entries";
        return err.str();
      }
      const std::size_t occ = nd.num_entries;
      if (it.node != 0 && (occ < m_ || occ > M_)) {
        err << "leaf " << it.node << " occupancy " << occ << " outside ["
            << m_ << "," << M_ << "]";
        return err.str();
      }
    } else {
      if (nd.num_children <= 0) {
        err << "internal node " << it.node << " without children";
        return err.str();
      }
      const std::size_t fan = static_cast<std::size_t>(nd.num_children);
      if (it.node == 0) {
        if (fan < 2) {
          err << "internal root with fanout " << fan;
          return err.str();
        }
      } else if (fan < m_ || fan > M_) {
        err << "node " << it.node << " fanout " << fan << " outside [" << m_
            << "," << M_ << "]";
        return err.str();
      }
      geom::Rect u = geom::Rect::empty();
      for (std::int32_t i = 0; i < nd.num_children; ++i) {
        u = u.united(nodes_[nd.first_child + i].mbr);
        stack.push_back({nd.first_child + i, it.depth + 1});
      }
      if (!(u == nd.mbr)) {
        err << "node " << it.node << " MBR is not the union of its children";
        return err.str();
      }
    }
  }
  return "";
}

}  // namespace dps::core
