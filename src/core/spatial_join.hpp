#pragma once
// Spatial join (map intersection) over two quadtrees.
//
// The paper's conclusion names spatial join as the downstream operation the
// primitives were built for ([Hoel93]/[Hoel94a/b]).  Because the PM-family
// quadtrees decompose both maps over the *same* regular grid, the join
// walks the two trees in lock-step: only block pairs where one block
// contains the other can hold intersecting lines, so candidate pairs come
// from matched leaf regions.  Candidate (lineA, lineB) pairs are then
// tested exactly and deduplicated (a pair can surface in several shared
// blocks).

#include <cstddef>
#include <utility>
#include <vector>

#include "core/quadtree.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct JoinStats {
  std::size_t node_pairs_visited = 0;
  std::size_t candidate_pairs = 0;
};

/// All (idA, idB) pairs where a line of `a` intersects a line of `b`,
/// sorted, each pair once.  Both trees must share the same world size.
std::vector<std::pair<geom::LineId, geom::LineId>> spatial_join(
    const QuadTree& a, const QuadTree& b, JoinStats* stats = nullptr);

}  // namespace dps::core
