#pragma once
// Materialized R-tree (section 2.3): the queryable result of both the
// data-parallel build (section 5.3) and the sequential Guttman baseline.
//
// Nodes are stored level-contiguous with children ranges, leaves own entry
// ranges into a flat segment array.  Invariants checked by `validate()`:
// all leaves at the same level, every node's MBR is the union of its
// children's, and node fanout/occupancy within (m, M) except the root.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace dps::core {

class RTree {
 public:
  struct Node {
    geom::Rect mbr;
    std::int32_t first_child = -1;  // index into nodes(), internal only
    std::int32_t num_children = 0;
    std::uint32_t first_entry = 0;  // index into entries(), leaves only
    std::uint32_t num_entries = 0;
    bool is_leaf = true;
  };

  RTree() = default;
  RTree(std::vector<Node> nodes, std::vector<geom::Segment> entries,
        int height, std::size_t min_fanout, std::size_t max_fanout)
      : nodes_(std::move(nodes)),
        entries_(std::move(entries)),
        height_(height),
        m_(min_fanout),
        M_(max_fanout) {}

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& root() const { return nodes_.front(); }
  const std::vector<geom::Segment>& entries() const { return entries_; }
  bool empty() const { return nodes_.empty() || entries_.empty(); }

  /// Number of levels below the root (a root-only tree has height 0).
  int height() const { return height_; }
  std::size_t order_m() const { return m_; }
  std::size_t order_M() const { return M_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;

  /// Total MBR area over all nodes (coverage) and total pairwise overlap
  /// area between sibling nodes -- the two split-quality metrics of
  /// section 2.3 / Figure 6.
  double total_coverage() const;
  double sibling_overlap() const;

  /// Checks the structural invariants; returns an empty string when valid,
  /// otherwise a description of the first violation.
  std::string validate() const;

 private:
  std::vector<Node> nodes_;  // nodes_[0] = root, children contiguous
  std::vector<geom::Segment> entries_;
  int height_ = 0;
  std::size_t m_ = 1;
  std::size_t M_ = 8;
};

}  // namespace dps::core
