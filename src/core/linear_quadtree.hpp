#pragma once
// Linear quadtree: the pointerless representation section 3.3 alludes to
// ("because of the bucket PMR quadtree's regular decomposition, a unique
// linear ordering may readily be obtained").
//
// The non-empty leaves are stored as a flat array sorted by their
// hierarchical path key; there are no internal nodes.  Queries descend the
// *implicit* tree: the descendants of any block occupy a contiguous key
// range, located by binary search.  This is the classic DF-expression /
// linear quadtree trade: ~40 bytes per stored leaf instead of a pointer
// node per tree node, at the cost of O(log L) searches per descent step
// (bench_linear_quadtree measures the trade against the pointer tree).

#include <cstdint>
#include <vector>

#include "core/quadtree.hpp"
#include "core/query.hpp"
#include "geom/geom.hpp"

namespace dps::core {

class LinearQuadTree {
 public:
  struct Leaf {
    std::uint64_t key;  // Block::path_key(), the sort key
    geom::Block block;
    std::uint32_t first_edge = 0;
    std::uint32_t num_edges = 0;
  };

  LinearQuadTree() = default;

  /// Linearizes a pointer quadtree (only non-empty leaves are kept).
  static LinearQuadTree from(const QuadTree& tree);

  double world() const { return world_; }
  const std::vector<Leaf>& leaves() const { return leaves_; }
  const std::vector<geom::Segment>& edges() const { return edges_; }

  /// Lines intersecting the closed window; ids sorted, each once.
  std::vector<geom::LineId> window_query(const geom::Rect& window,
                                         QueryStats* stats = nullptr) const;

  /// Lines passing through the point; ids sorted, each once.
  std::vector<geom::LineId> point_query(const geom::Point& p,
                                        QueryStats* stats = nullptr) const;

 private:
  void collect(const geom::Block& block, std::size_t lo, std::size_t hi,
               const geom::Rect& region, std::vector<geom::LineId>& out,
               QueryStats* stats) const;

  double world_ = 1.0;
  std::vector<Leaf> leaves_;           // sorted by key
  std::vector<geom::Segment> edges_;   // grouped per leaf
};

}  // namespace dps::core
