#pragma once
// Umbrella header for the core library: the paper's section-5 build
// algorithms, the materialized structures, and the query operations.

#include "core/batch_nearest.hpp"  // IWYU pragma: export
#include "core/batch_query.hpp"   // IWYU pragma: export
#include "core/dp_spatial_join.hpp"  // IWYU pragma: export
#include "core/kdtree_build.hpp"  // IWYU pragma: export
#include "core/linear_quadtree.hpp"  // IWYU pragma: export
#include "core/nearest.hpp"       // IWYU pragma: export
#include "core/pm1_build.hpp"     // IWYU pragma: export
#include "core/pmr_build.hpp"     // IWYU pragma: export
#include "core/pmr_update.hpp"    // IWYU pragma: export
#include "core/polygonize.hpp"    // IWYU pragma: export
#include "core/pr_build.hpp"      // IWYU pragma: export
#include "core/quadtree.hpp"      // IWYU pragma: export
#include "core/query.hpp"         // IWYU pragma: export
#include "core/region_quadtree.hpp"  // IWYU pragma: export
#include "core/rtree.hpp"         // IWYU pragma: export
#include "core/rtree_build.hpp"   // IWYU pragma: export
#include "core/rtree_join.hpp"    // IWYU pragma: export
#include "core/shard_segments.hpp"  // IWYU pragma: export
#include "core/spatial_join.hpp"  // IWYU pragma: export
#include "core/validate.hpp"      // IWYU pragma: export
