#pragma once
// Data-parallel bucket PR quadtree construction.
//
// The PR quadtree [Oren82] decomposes the world until each leaf holds at
// most `bucket_capacity` points; [Best92] (the SAM-model work the paper
// extends) built it data-parallel.  With this library's machinery the
// build is the bucket PMR loop minus cloning: a capacity check marks
// overflowing nodes, and two segmented unshuffles (by the half-open
// north/south then west/east tests) redistribute their points into the
// NW, NE, SW, SE child groups -- every overflowing node per round,
// simultaneously.  Shape is insertion-order independent by construction.

#include <cstddef>
#include <string>
#include <vector>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/point_set.hpp"

namespace dps::core {

struct PrBuildOptions {
  double world = 1.0;
  int max_depth = 24;  // duplicate / ultra-close points stop here
  std::size_t bucket_capacity = 1;  // 1 = the classic PR quadtree
};

/// Materialized PR quadtree: non-empty leaves with point ranges.
class PrQuadTree {
 public:
  struct Node {
    geom::Block block;
    std::int32_t child[4] = {-1, -1, -1, -1};  // Quadrant order
    bool is_leaf = true;
    std::uint32_t first_pt = 0;
    std::uint32_t num_pts = 0;
  };

  PrQuadTree() = default;
  static PrQuadTree from_point_set(const prim::PointSet& ps);

  double world() const { return world_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<geom::Point>& points() const { return pts_; }
  const std::vector<prim::PointId>& ids() const { return ids_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  int height() const;
  std::size_t max_leaf_occupancy() const;

  /// Ids of the points inside the closed window, sorted.
  std::vector<prim::PointId> window_query(const geom::Rect& window) const;

  /// Canonical decomposition fingerprint (leaf morton keys + sorted ids).
  std::string fingerprint() const;

 private:
  double world_ = 1.0;
  std::vector<Node> nodes_;
  std::vector<geom::Point> pts_;
  std::vector<prim::PointId> ids_;
};

struct PrBuildResult {
  PrQuadTree tree;
  std::size_t rounds = 0;
  bool depth_limited = false;
  dpv::PrimCounters prims;
};

/// Builds the bucket PR quadtree of `pts` (ids parallel to pts).
PrBuildResult pr_build(dpv::Context& ctx, std::vector<geom::Point> pts,
                       std::vector<prim::PointId> ids,
                       const PrBuildOptions& opts);

}  // namespace dps::core
