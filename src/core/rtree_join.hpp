#pragma once
// R-tree x R-tree spatial join ([Hoel93]'s data-parallel R-tree work is
// the companion; section 3.3 of the paper argues precisely that joining
// two R-trees is the operation whose irregular, non-unique linear
// orderings make the SAM model -- and cheap alignment generally --
// inapplicable).  This host implementation is the classic synchronized
// MBR-pruned descent; bench_spatial_join compares its node-pair and
// candidate counts against the quadtree joins, quantifying the paper's
// argument: without a shared disjoint decomposition the join must examine
// every overlapping node pair.

#include <utility>
#include <vector>

#include "core/rtree.hpp"
#include "core/spatial_join.hpp"  // JoinStats
#include "geom/geom.hpp"

namespace dps::core {

/// All (idA, idB) pairs of intersecting lines, sorted, each pair once.
std::vector<std::pair<geom::LineId, geom::LineId>> rtree_join(
    const RTree& a, const RTree& b, JoinStats* stats = nullptr);

}  // namespace dps::core
