#pragma once
// Data-parallel batch k-nearest queries.
//
// Replaces the per-query priority queue of `core::k_nearest` with one
// shared frontier of (query, node) pairs processed in scan-model rounds:
//
//   1. MINDIST runs elementwise over the whole frontier and pairs whose
//      node cannot beat the query's running kth-best bound are pruned
//      (`pack`).  Equality survives the prune: a node at exactly the bound
//      may hold a segment that ties the kth distance with a smaller id.
//   2. A beam selection ranks each query's surviving pairs by MINDIST
//      (radix sort by query + segmented sort by distance key) and expands
//      only the max(4, k) closest this round; the rest are deferred to
//      the next round -- never dropped -- so the expansion order mimics
//      sequential best-first and the bound tightens early instead of
//      after a whole breadth-first level.
//   3. Leaf pairs peel off and expand -- via the shared `dpv::distribute`
//      machinery -- into (query, segment) candidates whose distances are
//      scored elementwise.
//   4. The candidates merge into a per-query pool kept sorted by
//      (distance^2, id): a radix sort groups by (query, id), a segmented
//      sort orders each group by distance key, and the duplicate-deletion
//      primitive collapses the q-edge clones of a line (identical
//      (query, id, distance) triples are adjacent after the sort).  A
//      segmented rank scan truncates each group to its best k and the
//      rank-(k-1) element's distance becomes the query's new bound.
//   5. Selected internal pairs expand into their children
//      (`dpv::distribute` again), deferred pairs rejoin them, and the
//      next round begins.
//
// Results are bit-identical to `core::k_nearest`: the same
// `geom::distance2_point_segment` scores, the same deterministic
// (distance^2, id) tie order, each line id reported once.

#include <cstddef>
#include <vector>

#include "core/batch_query.hpp"  // BatchControl / batch_aborting
#include "core/nearest.hpp"
#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

/// A/B switches for the two bound-tightening passes (both on in
/// production; off reproduces the PR 6 descent exactly).  Either setting
/// returns byte-identical results -- the passes only tighten the pruning
/// bounds, never below a query's true kth distance.
struct BatchNearestTuning {
  /// Triangle-inequality bound propagation between queries: a query with a
  /// settled kth-best radius r implies a (r + |pq|) radius for any
  /// neighbor p wanting at most as many answers.  Two Hilbert-ordered
  /// sweeps (forward + backward) carry the best such claim along the
  /// curve, so sparse-seeded queries inherit finite bounds before the
  /// descent rounds instead of surviving unpruned until k candidates
  /// surface.
  bool bound_propagation = true;
  /// Post-merge frontier compaction: after each round's candidate merge
  /// (and propagation) tightens the bounds, selected internal pairs and
  /// deferred pairs are re-pruned against the *new* bounds before the
  /// child expansion / next round, dropping satisfied queries' pairs a
  /// round earlier than the next MINDIST pass would.
  bool frontier_compaction = true;
};

struct BatchNearestResult {
  /// results[q] = the ks[q] lines nearest to points[q], nearest first
  /// (ties by id), exactly as `core::k_nearest` orders them.
  std::vector<std::vector<Neighbor>> results;
  std::size_t candidates = 0;  // (query, segment) pairs scored
  std::size_t rounds = 0;      // frontier descent rounds executed
  std::size_t propagations = 0;  // bounds tightened by neighbor claims
  std::size_t compacted = 0;  // frontier pairs dropped post-merge
  /// True when the control fired (or an injected fault latched)
  /// mid-pipeline; `results` is then incomplete and must not be trusted.
  bool aborted = false;
};

/// Batch k-nearest over the quadtree with a per-query answer count;
/// `ks.size()` must equal `points.size()` (ks[q] == 0 yields an empty row).
BatchNearestResult batch_k_nearest(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const std::vector<std::size_t>& ks,
                                   const BatchControl& control = {},
                                   const BatchNearestTuning& tuning = {});

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const std::vector<std::size_t>& ks,
                                   const BatchControl& control = {},
                                   const BatchNearestTuning& tuning = {});

/// Uniform-k conveniences.
BatchNearestResult batch_k_nearest(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   std::size_t k,
                                   const BatchControl& control = {},
                                   const BatchNearestTuning& tuning = {});

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   std::size_t k,
                                   const BatchControl& control = {},
                                   const BatchNearestTuning& tuning = {});

}  // namespace dps::core
