#pragma once
// Data-parallel R-tree construction (section 5.3, Figures 39-44).
//
// All lines are inserted simultaneously.  State is the line processor set
// (lines in leaf order, segment groups = leaves) plus one node processor
// set per tree level, each carried as segment-group flags that group a
// level's nodes under their parents.  Every round:
//
//   * each overflowing leaf splits once: the node-split selection of
//     section 4.7 assigns sides, a segmented unshuffle concentrates the two
//     new segments, and the new leaf is cloned into the leaf level;
//   * each overflowing internal node splits the same way over its
//     children's MBRs; because that reorders the child level, the
//     reordering cascades down through every lower level to the lines (the
//     "processor reordering" of section 3.3) via stable sorts by new
//     parent ordinal;
//   * a root that gains a sibling gets a fresh root above it.
//
// Rounds repeat until every node has at most M children, giving the
// paper's O(log n) stages of O(log n) primitives each (two sorts plus a
// constant number of scans per stage).

#include <cstddef>
#include <vector>

#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/rtree_split.hpp"

namespace dps::core {

struct RtreeBuildOptions {
  std::size_t m = 2;  // minimum fanout (m <= M/2)
  std::size_t M = 8;  // maximum fanout / leaf capacity
  prim::RtreeSplitAlgo split = prim::RtreeSplitAlgo::kSweep;
};

struct RtreeBuildRound {
  std::size_t leaf_splits = 0;
  std::size_t internal_splits = 0;
  std::size_t leaves = 0;  // after the round
  std::size_t levels = 0;  // after the round
};

struct RtreeBuildResult {
  RTree tree;
  std::size_t rounds = 0;
  std::vector<RtreeBuildRound> trace;
  dpv::PrimCounters prims;
};

/// Builds an order-(m, M) R-tree over `lines` with simultaneous insertion.
/// The mean split cannot guarantee the minimum fanout m, so trees built
/// with it record order (1, M) for validation purposes.
RtreeBuildResult rtree_build(dpv::Context& ctx,
                             std::vector<geom::Segment> lines,
                             const RtreeBuildOptions& opts);

}  // namespace dps::core
