#include "core/pmr_build.hpp"

#include "core/pmr_update.hpp"
#include "core/validate.hpp"

namespace dps::core {

QuadBuildResult pmr_build(dpv::Context& ctx, std::vector<geom::Segment> lines,
                          const PmrBuildOptions& opts) {
  // Finite-only: the quad builds clip lines to the root square, so
  // out-of-world endpoints are legal here (Figure 38's star bursts rely on
  // it); NaN/inf would still poison every comparison.
  validate_segments_or_throw(lines);
  const dpv::PrimCounters before = ctx.counters();
  QuadBuildResult res;
  prim::LineSet ls =
      prim::LineSet::initial(ctx, dpv::to_vec(lines), opts.world);
  pmr_split_rounds(ctx, ls, opts, res);
  res.tree = QuadTree::from_line_set(ls);
  res.prims = ctx.counters() - before;
  return res;
}

}  // namespace dps::core
