#include "core/pmr_build.hpp"

#include "core/pmr_update.hpp"

namespace dps::core {

QuadBuildResult pmr_build(dpv::Context& ctx, std::vector<geom::Segment> lines,
                          const PmrBuildOptions& opts) {
  const dpv::PrimCounters before = ctx.counters();
  QuadBuildResult res;
  prim::LineSet ls =
      prim::LineSet::initial(ctx, std::move(lines), opts.world);
  pmr_split_rounds(ctx, ls, opts, res);
  res.tree = QuadTree::from_line_set(ls);
  res.prims = ctx.counters() - before;
  return res;
}

}  // namespace dps::core
