#include "core/batch_nearest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "dpv/distribute.hpp"
#include "dpv/fused.hpp"
#include "dpv/simd.hpp"
#include "geom/hilbert.hpp"
#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"

namespace dps::core {

namespace {

// Control poll cadence during the host-side seed descent; deadline checks
// read the clock, so per-query polling would dominate.
constexpr std::size_t kControlStride = 64;

// Floor of the per-query beam: each round expands a query's
// max(kMinBeam, k) closest frontier nodes and defers the rest.  Deferral
// (never deletion) keeps the descent exact while the expansion order
// mimics sequential best-first, so the kth-best bound tightens after a
// handful of rounds instead of after a whole breadth-first level.
constexpr std::size_t kMinBeam = 4;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hilbert grid resolution for the bound-propagation sweep order.
constexpr int kPropagationOrder = 16;

// A propagated bound is inflated by this relative slack so the sqrt /
// add / multiply rounding of the carried radius (error <= a few ulp per
// sweep step, so <= ~1e-10 relative even for million-query batches) can
// never push a bound below the query's true kth distance -- the exactness
// invariant the MINDIST prune relies on.
constexpr double kPropagationSlack = 1e-9;

// Structure-of-arrays tile width for the batched geometry kernels: large
// enough to amortize the gather into lane-parallel form, small enough to
// stay in L1 (a 6 x 512 x 8B tile is 24KiB).
constexpr std::size_t kGeomTile = 512;

// Per-query candidate pool: at most ks[q] (id, distance^2) entries per
// query, kept sorted by (query, distance^2, id) between merges.
struct Pool {
  dpv::Vec<std::uint32_t> q;
  dpv::Vec<std::uint32_t> id;
  dpv::Vec<double> d2;

  std::size_t size() const { return q.size(); }
};

// Merges freshly scored candidates into the pool and re-establishes the
// invariant: sorted by (query, distance^2, id), each (query, id) once,
// each query truncated to its best ks[q], and bound[q] refreshed to the
// rank-(k-1) distance (the running kth-best the frontier prunes against).
void merge_candidates(dpv::Context& ctx, Pool& pool,
                      const dpv::Vec<std::uint32_t>& cq,
                      const dpv::Vec<std::uint32_t>& cid,
                      const dpv::Vec<double>& cd2,
                      const std::vector<std::size_t>& ks,
                      dpv::Vec<double>& bound) {
  pool.q.insert(pool.q.end(), cq.begin(), cq.end());
  pool.id.insert(pool.id.end(), cid.begin(), cid.end());
  pool.d2.insert(pool.d2.end(), cd2.begin(), cd2.end());
  const std::size_t n = pool.size();
  if (n == 0) return;

  // Group by query, ids ascending within a group: one radix sort on the
  // composite (query << 32 | id) key.
  dpv::Vec<std::uint64_t> qid = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return (std::uint64_t{pool.q[i]} << 32) | pool.id[i];
  });
  const dpv::Index by_id = dpv::sort_keys_indices(ctx, qid, 64);
  pool.q = dpv::gather(ctx, pool.q, by_id);
  pool.id = dpv::gather(ctx, pool.id, by_id);
  pool.d2 = dpv::gather(ctx, pool.d2, by_id);

  // Segmented sort by distance key within each query group.  The sort is
  // stable, so equal distances keep the id order of the pass above --
  // i.e. each group ends up in exactly `core::k_nearest`'s
  // (distance^2, id) report order.
  dpv::Flags seg = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(i > 0 && pool.q[i] != pool.q[i - 1]);
  });
  dpv::Vec<std::uint64_t> dkey = dpv::map(
      ctx, pool.d2, [](double d) { return dpv::key_from_double(d); });
  const dpv::Index by_dist = dpv::seg_sort_indices64(ctx, dkey, seg);
  pool.q = dpv::gather(ctx, pool.q, by_dist);
  pool.id = dpv::gather(ctx, pool.id, by_dist);
  pool.d2 = dpv::gather(ctx, pool.d2, by_dist);

  // Duplicate suppression (section 4.3): the q-edge clones of a line score
  // identical (query, id, distance) triples, so they are adjacent after
  // the sort and the duplicate-deletion primitive keeps the first.
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return (std::uint64_t{pool.q[i]} << 32) | pool.id[i];
  });
  const prim::DupDeletePlan plan = prim::plan_duplicate_deletion(ctx, pair_key);
  pool.q = prim::apply_duplicate_deletion(ctx, plan, pool.q);
  pool.id = prim::apply_duplicate_deletion(ctx, plan, pool.id);
  pool.d2 = prim::apply_duplicate_deletion(ctx, plan, pool.d2);

  // Rank within each query group, fused with the rank < k select (one
  // blocked pass instead of head-flags + segmented scan + select map);
  // the rank-(k-1) element is the current kth-best, whose distance
  // becomes the query's new frontier bound, and ranks >= k can never
  // reach a final answer (k smaller (d2, id) pairs already exist), so
  // they are truncated to keep the pool linear in sum(ks).
  const std::size_t m = pool.size();
  dpv::Vec<std::size_t> rank;
  dpv::Flags keep = dpv::fused_group_rank_select(
      ctx, pool.q, [&](std::uint32_t q) { return ks[q]; }, &rank);
  dpv::Flags kth = dpv::tabulate(ctx, m, [&](std::size_t i) {
    return static_cast<std::uint8_t>(rank[i] + 1 == ks[pool.q[i]]);
  });
  dpv::Index dest = dpv::map(
      ctx, pool.q, [](std::uint32_t q) { return std::size_t{q}; });
  dpv::scatter(ctx, pool.d2, dest, kth, bound);
  std::tie(pool.q, pool.id, pool.d2) =
      dpv::multi_pack(ctx, keep, pool.q, pool.id, pool.d2);
}

// Shared frontier descent, parameterized over the tree adapter.  `Ops`
// supplies root/mindist/is_leaf/child fan-out/leaf entries plus a host
// `seed` descent that visits each query's home leaf so the kth-best
// bounds tighten before the descent rounds begin (without it every node
// survives the prune until k candidates surface).
template <typename Ops>
BatchNearestResult batch_nearest_descend(dpv::Context& ctx, const Ops& ops,
                                         const std::vector<geom::Point>& points,
                                         const std::vector<std::size_t>& ks,
                                         const BatchControl& control,
                                         const BatchNearestTuning& tuning) {
  const std::size_t nq = points.size();
  BatchNearestResult out;
  out.results.resize(nq);
  if (nq == 0 || ops.empty()) return out;
  auto round_scope = ctx.scoped_round();

  // Running kth-best bound per query: +inf until k distinct candidates
  // are known; k == 0 queries get a negative bound so the frontier prunes
  // them on the first round (every MINDIST is >= 0).
  dpv::Vec<double> bound = dpv::tabulate(ctx, nq, [&](std::size_t q) {
    return ks[q] == 0 ? -1.0 : kInf;
  });

  Pool pool;

  // Bound propagation between queries (triangle inequality): a query q
  // with a finite bound certifies >= ks[q] segments within radius
  // sqrt(bound[q]) of its point, so any query p with ks[p] <= ks[q] is
  // bounded by (sqrt(bound[q]) + |pq|)^2.  Two sweeps along the Hilbert
  // order of the query points carry the best such claim (radius + distance
  // traveled, valid for answer counts up to the claimant's k); locality of
  // the curve keeps the travel short, so clustered queries inherit tight
  // bounds from whichever neighbor settled first.  Runs after every merge
  // -- a merge may overwrite a propagated bound with a (looser) pool kth
  // distance, and the next sweep simply re-tightens it.
  std::vector<std::uint32_t> horder;
  if (tuning.bound_propagation) {
    const geom::Rect world = ops.node_rect(ops.root());
    const double side = static_cast<double>(
        (std::uint32_t{1} << kPropagationOrder) - 1);
    const double sx =
        world.xmax > world.xmin ? side / (world.xmax - world.xmin) : 0.0;
    const double sy =
        world.ymax > world.ymin ? side / (world.ymax - world.ymin) : 0.0;
    std::vector<std::uint64_t> hkey(nq);
    horder.reserve(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      if (ks[q] == 0) continue;  // never a claimant nor a beneficiary
      const double cx =
          std::clamp((points[q].x - world.xmin) * sx, 0.0, side);
      const double cy =
          std::clamp((points[q].y - world.ymin) * sy, 0.0, side);
      hkey[q] = geom::hilbert_d(static_cast<std::uint32_t>(cx),
                                static_cast<std::uint32_t>(cy),
                                kPropagationOrder);
      horder.push_back(static_cast<std::uint32_t>(q));
    }
    std::sort(horder.begin(), horder.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return hkey[a] != hkey[b] ? hkey[a] < hkey[b] : a < b;
              });
  }
  const auto propagate = [&] {
    if (horder.size() < 2) return;
    const auto sweep = [&](std::ptrdiff_t begin, std::ptrdiff_t end,
                           std::ptrdiff_t step) {
      double radius = kInf;    // carried claim, centered on `prev`
      std::size_t claim_k = 0;  // valid for queries wanting <= this many
      bool have = false;
      geom::Point prev{};
      for (std::ptrdiff_t i = begin; i != end; i += step) {
        const std::uint32_t q = horder[static_cast<std::size_t>(i)];
        const geom::Point p = points[q];
        if (have) {
          const double dx = p.x - prev.x;
          const double dy = p.y - prev.y;
          radius += std::sqrt(dx * dx + dy * dy);
          if (ks[q] <= claim_k) {
            const double b2 = radius * radius * (1.0 + kPropagationSlack);
            if (b2 < bound[q]) {
              bound[q] = b2;
              ++out.propagations;
            }
          }
        }
        if (bound[q] >= 0.0 && bound[q] < kInf) {
          const double rq = std::sqrt(bound[q]);
          if (!have || rq < radius ||
              (rq == radius && ks[q] > claim_k)) {
            radius = rq;
            claim_k = ks[q];
            have = true;
          }
        }
        prev = p;
      }
    };
    const auto n = static_cast<std::ptrdiff_t>(horder.size());
    sweep(0, n, 1);
    sweep(n - 1, -1, -1);
    ctx.count(dpv::Prim::kElementwise, 2 * horder.size());
  };

  // Seed: score each query's home leaf (host descent, exactly like the
  // batch window pipeline's candidate generation) so most bounds are
  // finite before round one.  Duplicates with the frontier's own visit of
  // the same leaf are collapsed by the merge's duplicate deletion.
  {
    dpv::Vec<std::uint32_t> cq;
    dpv::Vec<std::uint32_t> cid;
    dpv::Vec<double> cd2;
    for (std::size_t q = 0; q < nq; ++q) {
      if (q % kControlStride == 0 && batch_aborting(ctx, control)) {
        out.aborted = true;
        return out;
      }
      if (ks[q] == 0) continue;
      ops.seed(points[q], [&](std::int32_t leaf) {
        const std::size_t cnt = ops.entry_count(leaf);
        for (std::size_t r = 0; r < cnt; ++r) {
          const geom::Segment& s = ops.entry(leaf, r);
          cq.push_back(static_cast<std::uint32_t>(q));
          cid.push_back(s.id);
          cd2.push_back(geom::distance2_point_segment(points[q], s.a, s.b));
        }
      });
    }
    out.candidates += cq.size();
    merge_candidates(ctx, pool, cq, cid, cd2, ks, bound);
    // The seed propagation is the big one: it hands every clustered query
    // a finite bound even when its own home leaf was sparse (the R-tree
    // seed visits a single leaf), so round one prunes instead of flooding.
    if (tuning.bound_propagation) propagate();
  }

  // Frontier of (query, node) pairs; after the first beam round pairs
  // from different tree levels coexist (children mix with deferrals).
  dpv::Vec<std::uint32_t> fq = dpv::tabulate(ctx, nq, [](std::size_t i) {
    return static_cast<std::uint32_t>(i);
  });
  dpv::Vec<std::int32_t> fnode =
      dpv::constant<std::int32_t>(ctx, nq, ops.root());

  while (!fq.empty()) {
    // One control poll per descent round.
    if (batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    ++out.rounds;

    // MINDIST elementwise on SoA tiles through the batched geometry kernel
    // (bitwise Rect::distance2), fused with the bound prune; the survivors
    // of all three columns compact in one fused pack.
    const std::size_t fn = fq.size();
    dpv::Vec<double> md(fn);
    dpv::Flags live(fn);
    ctx.for_blocks(fn, [&](std::size_t, std::size_t lo, std::size_t hi) {
      const auto& gk = dpv::simd::kernels();
      double px[kGeomTile], py[kGeomTile];
      double xmin[kGeomTile], ymin[kGeomTile];
      double xmax[kGeomTile], ymax[kGeomTile];
      for (std::size_t t = lo; t < hi; t += kGeomTile) {
        const std::size_t w = std::min(kGeomTile, hi - t);
        for (std::size_t j = 0; j < w; ++j) {
          const geom::Point& p = points[fq[t + j]];
          px[j] = p.x;
          py[j] = p.y;
          const geom::Rect r = ops.node_rect(fnode[t + j]);
          xmin[j] = r.xmin;
          ymin[j] = r.ymin;
          xmax[j] = r.xmax;
          ymax[j] = r.ymax;
        }
        gk.mindist_point_rect(px, py, xmin, ymin, xmax, ymax, md.data() + t, w);
        for (std::size_t j = 0; j < w; ++j) {
          live[t + j] = md[t + j] <= bound[fq[t + j]] ? 1 : 0;
        }
      }
    });
    ctx.count(dpv::Prim::kElementwise, fn);  // MINDIST
    ctx.count(dpv::Prim::kElementwise, fn);  // bound prune
    std::tie(fq, fnode, md) = dpv::multi_pack(ctx, live, fq, fnode, md);
    if (fq.empty()) break;

    // Pairs deferred to the next round by the beam selection below (dmd
    // carries their MINDIST when compaction wants to re-prune them against
    // the post-merge bounds).
    dpv::Vec<std::uint32_t> dq;
    dpv::Vec<std::int32_t> dnode;
    dpv::Vec<double> dmd;

    // Beam select: group the frontier by query (appending deferred pairs
    // below breaks q-order), rank each group by MINDIST, and expand only
    // the max(kMinBeam, k) closest pairs this round.  The rest are
    // deferred -- re-pruned next round against the tightened bound, never
    // dropped, so the answer is exact.
    //
    // One radix sort on the composite (query << 32 | top-32-bits-of-
    // MINDIST-key) replaces the previous by-query sort + exact segmented
    // 64-bit sort.  Quantizing MINDIST to 32 bits only affects the order
    // in which near-tied pairs are expanded vs deferred -- deferral is
    // never deletion, so the final answers are unchanged (the property
    // the beam relies on anyway).  The rank + threshold select then runs
    // as one fused pass, and the defer/select compactions share their
    // position scans.
    {
      dpv::Vec<std::uint64_t> bkey =
          dpv::tabulate(ctx, fq.size(), [&](std::size_t i) {
            return (std::uint64_t{fq[i]} << 32) |
                   (dpv::key_from_double(md[i]) >> 32);
          });
      const dpv::Index by_beam = dpv::sort_keys_indices(ctx, bkey, 64);
      fq = dpv::gather(ctx, fq, by_beam);
      fnode = dpv::gather(ctx, fnode, by_beam);
      dpv::Flags sel = dpv::fused_group_rank_select(
          ctx, fq,
          [&](std::uint32_t q) { return std::max(kMinBeam, ks[q]); });
      dpv::Flags defer = dpv::map(ctx, sel, [](std::uint8_t s) {
        return static_cast<std::uint8_t>(!s);
      });
      if (tuning.frontier_compaction) {
        md = dpv::gather(ctx, md, by_beam);
        std::tie(dq, dnode, dmd) = dpv::multi_pack(ctx, defer, fq, fnode, md);
        std::tie(fq, fnode, md) = dpv::multi_pack(ctx, sel, fq, fnode, md);
      } else {
        std::tie(dq, dnode) = dpv::multi_pack(ctx, defer, fq, fnode);
        std::tie(fq, fnode) = dpv::multi_pack(ctx, sel, fq, fnode);
      }
    }

    // Peel off leaf pairs.
    dpv::Flags is_leaf = dpv::map(ctx, fnode, [&](std::int32_t nd) {
      return static_cast<std::uint8_t>(ops.is_leaf(nd));
    });
    dpv::Flags is_internal = dpv::map(ctx, is_leaf, [](std::uint8_t l) {
      return static_cast<std::uint8_t>(!l);
    });
    auto [leaf_q, leaf_n] = dpv::multi_pack(ctx, is_leaf, fq, fnode);
    if (tuning.frontier_compaction) {
      std::tie(fq, fnode, md) = dpv::multi_pack(ctx, is_internal, fq, fnode,
                                                md);
    } else {
      std::tie(fq, fnode) = dpv::multi_pack(ctx, is_internal, fq, fnode);
    }

    // Leaf pairs expand into (query, segment) candidates, scored
    // elementwise, pre-filtered against the (pre-merge) bound, and merged
    // into the pool -- which tightens the bounds for the expansion below.
    if (!leaf_q.empty()) {
      dpv::Vec<std::size_t> counts = dpv::map(
          ctx, leaf_n, [&](std::int32_t nd) { return ops.entry_count(nd); });
      const dpv::Expansion e = dpv::distribute(ctx, counts);
      out.candidates += e.total;
      if (e.total > 0) {
        dpv::Vec<std::uint32_t> cq = dpv::tabulate(
            ctx, e.total, [&](std::size_t j) { return leaf_q[e.src[j]]; });
        dpv::Vec<std::uint32_t> cid = dpv::tabulate(
            ctx, e.total, [&](std::size_t j) {
              const std::size_t i = e.src[j];
              return ops.entry(leaf_n[i], j - e.offsets[i]).id;
            });
        // Point-segment distance on SoA tiles through the batched kernel
        // (bitwise geom::distance2_point_segment), fused with the bound
        // pre-filter; the three surviving columns compact in one pass.
        dpv::Vec<double> cd2(e.total);
        dpv::Flags close(e.total);
        ctx.for_blocks(
            e.total, [&](std::size_t, std::size_t lo, std::size_t hi) {
              const auto& gk = dpv::simd::kernels();
              double px[kGeomTile], py[kGeomTile];
              double sax[kGeomTile], say[kGeomTile];
              double sbx[kGeomTile], sby[kGeomTile];
              for (std::size_t t = lo; t < hi; t += kGeomTile) {
                const std::size_t w = std::min(kGeomTile, hi - t);
                for (std::size_t j = 0; j < w; ++j) {
                  const std::size_t i = e.src[t + j];
                  const geom::Segment& s =
                      ops.entry(leaf_n[i], t + j - e.offsets[i]);
                  const geom::Point& p = points[cq[t + j]];
                  px[j] = p.x;
                  py[j] = p.y;
                  sax[j] = s.a.x;
                  say[j] = s.a.y;
                  sbx[j] = s.b.x;
                  sby[j] = s.b.y;
                }
                gk.dist2_point_segment(px, py, sax, say, sbx, sby,
                                       cd2.data() + t, w);
                for (std::size_t j = 0; j < w; ++j) {
                  close[t + j] = cd2[t + j] <= bound[cq[t + j]] ? 1 : 0;
                }
              }
            });
        ctx.count(dpv::Prim::kElementwise, e.total);  // distance
        ctx.count(dpv::Prim::kElementwise, e.total);  // bound pre-filter
        auto [mq, mid, md2] = dpv::multi_pack(ctx, close, cq, cid, cd2);
        merge_candidates(ctx, pool, mq, mid, md2, ks, bound);
        if (tuning.bound_propagation) propagate();
      }
    }

    // Frontier compaction: the merge (and propagation) above tightened the
    // bounds *after* this round's pairs were selected against the old
    // ones; re-pruning the selected internal pairs before they expand --
    // and the deferred pairs before they rejoin -- drops a satisfied
    // query's pairs a round earlier than the next MINDIST pass would.
    if (tuning.frontier_compaction && !fq.empty()) {
      dpv::Flags still = dpv::tabulate(ctx, fq.size(), [&](std::size_t i) {
        return static_cast<std::uint8_t>(md[i] <= bound[fq[i]]);
      });
      const std::size_t before = fq.size();
      std::tie(fq, fnode) = dpv::multi_pack(ctx, still, fq, fnode);
      out.compacted += before - fq.size();
    }
    if (tuning.frontier_compaction && !dq.empty()) {
      dpv::Flags still = dpv::tabulate(ctx, dq.size(), [&](std::size_t i) {
        return static_cast<std::uint8_t>(dmd[i] <= bound[dq[i]]);
      });
      const std::size_t before = dq.size();
      std::tie(dq, dnode) = dpv::multi_pack(ctx, still, dq, dnode);
      out.compacted += before - dq.size();
    }

    // Expand each selected internal pair into its children; the deferred
    // pairs rejoin them as the next round's frontier.
    dpv::Vec<std::uint32_t> nfq;
    dpv::Vec<std::int32_t> nfnode;
    if (!fq.empty()) {
      dpv::Vec<std::size_t> counts = dpv::map(
          ctx, fnode, [&](std::int32_t nd) { return ops.child_count(nd); });
      const dpv::Expansion e = dpv::distribute(ctx, counts);
      nfq = dpv::tabulate(
          ctx, e.total, [&](std::size_t j) { return fq[e.src[j]]; });
      nfnode = dpv::tabulate(
          ctx, e.total, [&](std::size_t j) {
            const std::size_t i = e.src[j];
            return ops.child(fnode[i], j - e.offsets[i]);
          });
    }
    nfq.insert(nfq.end(), dq.begin(), dq.end());
    nfnode.insert(nfnode.end(), dnode.begin(), dnode.end());
    fq = std::move(nfq);
    fnode = std::move(nfnode);
  }

  // Final poll: a fault injected into the merge primitives above must
  // still mark the whole batch untrusted.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }

  // The pool *is* the answer: sorted by (query, distance^2, id) and
  // truncated to each query's k, so rows are contiguous runs.
  const std::size_t n = pool.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t q = pool.q[i];
    std::size_t j = i;
    while (j < n && pool.q[j] == q) ++j;
    std::vector<Neighbor>& row = out.results[q];
    row.reserve(j - i);
    for (; i < j; ++i) row.push_back({pool.id[i], pool.d2[i]});
  }
  return out;
}

struct QuadOps {
  const QuadTree& tree;

  bool empty() const {
    return tree.num_nodes() == 0 || tree.num_qedges() == 0;
  }
  std::int32_t root() const { return 0; }
  geom::Rect node_rect(std::int32_t n) const {
    return tree.nodes()[n].block.rect(tree.world());
  }
  double mindist(std::int32_t n, const geom::Point& p) const {
    return node_rect(n).distance2(p);
  }
  bool is_leaf(std::int32_t n) const { return tree.nodes()[n].is_leaf; }
  std::size_t child_count(std::int32_t n) const {
    std::size_t c = 0;
    for (const std::int32_t ch : tree.nodes()[n].child) {
      c += ch != QuadTree::kNoChild;
    }
    return c;
  }
  std::int32_t child(std::int32_t n, std::size_t r) const {
    for (const std::int32_t ch : tree.nodes()[n].child) {
      if (ch == QuadTree::kNoChild) continue;
      if (r == 0) return ch;
      --r;
    }
    return QuadTree::kNoChild;  // unreachable: r < child_count(n)
  }
  std::size_t entry_count(std::int32_t n) const {
    return tree.nodes()[n].num_edges;
  }
  const geom::Segment& entry(std::int32_t n, std::size_t r) const {
    return tree.edges()[tree.nodes()[n].first_edge + r];
  }
  // Every leaf whose closed cell contains the point (up to four on cell
  // boundaries); a point outside the world seeds nothing, which only
  // costs that query a slower (unbounded) first descent.
  template <typename Visit>
  void seed(const geom::Point& p, Visit&& visit) const {
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
      const QuadTree::Node& nd = tree.nodes()[stack.back()];
      const std::int32_t n = stack.back();
      stack.pop_back();
      if (!nd.block.rect(tree.world()).contains(p)) continue;
      if (nd.is_leaf) {
        visit(n);
        continue;
      }
      for (const std::int32_t c : nd.child) {
        if (c != QuadTree::kNoChild) stack.push_back(c);
      }
    }
  }
};

struct RtreeOps {
  const RTree& tree;

  bool empty() const { return tree.num_nodes() == 0 || tree.empty(); }
  std::int32_t root() const { return 0; }
  geom::Rect node_rect(std::int32_t n) const { return tree.nodes()[n].mbr; }
  double mindist(std::int32_t n, const geom::Point& p) const {
    return node_rect(n).distance2(p);
  }
  bool is_leaf(std::int32_t n) const { return tree.nodes()[n].is_leaf; }
  std::size_t child_count(std::int32_t n) const {
    return static_cast<std::size_t>(tree.nodes()[n].num_children);
  }
  std::int32_t child(std::int32_t n, std::size_t r) const {
    return tree.nodes()[n].first_child + static_cast<std::int32_t>(r);
  }
  std::size_t entry_count(std::int32_t n) const {
    return static_cast<std::size_t>(tree.nodes()[n].num_entries);
  }
  const geom::Segment& entry(std::int32_t n, std::size_t r) const {
    return tree.entries()[tree.nodes()[n].first_entry + r];
  }
  // Greedy min-MINDIST path to one leaf (MBRs may not contain the query
  // point, so containment descent would often seed nothing).
  template <typename Visit>
  void seed(const geom::Point& p, Visit&& visit) const {
    std::int32_t n = 0;
    while (!tree.nodes()[n].is_leaf) {
      const RTree::Node& nd = tree.nodes()[n];
      std::int32_t best = nd.first_child;
      double best_d = tree.nodes()[best].mbr.distance2(p);
      for (std::int32_t i = 1; i < nd.num_children; ++i) {
        const std::int32_t c = nd.first_child + i;
        const double d = tree.nodes()[c].mbr.distance2(p);
        if (d < best_d) {
          best = c;
          best_d = d;
        }
      }
      n = best;
    }
    visit(n);
  }
};

}  // namespace

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const std::vector<std::size_t>& ks,
                                   const BatchControl& control,
                                   const BatchNearestTuning& tuning) {
  return batch_nearest_descend(ctx, QuadOps{tree}, points, ks, control,
                               tuning);
}

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const std::vector<std::size_t>& ks,
                                   const BatchControl& control,
                                   const BatchNearestTuning& tuning) {
  return batch_nearest_descend(ctx, RtreeOps{tree}, points, ks, control,
                               tuning);
}

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   std::size_t k, const BatchControl& control,
                                   const BatchNearestTuning& tuning) {
  return batch_k_nearest(ctx, tree, points,
                         std::vector<std::size_t>(points.size(), k), control,
                         tuning);
}

BatchNearestResult batch_k_nearest(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   std::size_t k, const BatchControl& control,
                                   const BatchNearestTuning& tuning) {
  return batch_k_nearest(ctx, tree, points,
                         std::vector<std::size_t>(points.size(), k), control,
                         tuning);
}

}  // namespace dps::core
