#pragma once
// Pointer-style quadtree assembled from a final line processor set.
//
// The data-parallel builds (sections 5.1/5.2) finish with a flat line set
// whose segment groups are the non-empty leaves of the decomposition.
// QuadTree materializes the hierarchy those leaf blocks imply -- internal
// nodes down every path, q-edges attached to leaves -- so the structure can
// be queried, printed, and compared against the sequential baselines.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/line_set.hpp"

namespace dps::core {

class QuadTree {
 public:
  static constexpr std::int32_t kNoChild = -1;

  struct Node {
    geom::Block block;
    // Children in Quadrant order (NW, NE, SW, SE); kNoChild = empty leaf.
    std::int32_t child[4] = {kNoChild, kNoChild, kNoChild, kNoChild};
    bool is_leaf = true;
    std::uint32_t first_edge = 0;  // into edges(), leaves only
    std::uint32_t num_edges = 0;

    bool has_children() const {
      return child[0] != kNoChild || child[1] != kNoChild ||
             child[2] != kNoChild || child[3] != kNoChild;
    }
  };

  QuadTree() = default;

  /// Assembles the hierarchy from a final line set (groups = leaves).
  static QuadTree from_line_set(const prim::LineSet& ls);

  double world() const { return world_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& root() const { return nodes_.front(); }
  const std::vector<geom::Segment>& edges() const { return edges_; }

  /// Q-edges stored in leaf `node` (empty span for internal nodes).
  std::pair<const geom::Segment*, const geom::Segment*> leaf_edges(
      const Node& node) const {
    const geom::Segment* base = edges_.data() + node.first_edge;
    return {base, base + node.num_edges};
  }

  // ---- Structure statistics (used by tests, benches, EXPERIMENTS.md). ----
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;       // non-empty leaves
  std::size_t num_qedges() const { return edges_.size(); }
  int height() const;                   // max depth of any node (root = 0)
  std::size_t max_leaf_occupancy() const;

  /// Canonical, insertion-order-independent fingerprint of the
  /// decomposition: the sorted morton keys of the non-empty leaves plus
  /// per-leaf sorted line-id lists.  Equal fingerprints mean equal trees.
  std::string fingerprint() const;

  /// ASCII rendering of the decomposition for traces (Figures 30-33).
  std::string to_ascii() const;

 private:
  double world_ = 1.0;
  std::vector<Node> nodes_;
  std::vector<geom::Segment> edges_;
};

}  // namespace dps::core
