#pragma once
// Data-parallel polygonization.
//
// The paper's conclusion lists polygonization among the operations the
// primitives were built for ([Hoel93]).  Given a planar line map, this
// module assembles its connected components and extracts the closed
// polygon rings, scan-model style:
//
//   1. vertex identification -- the 2n (endpoint, line) records are radix-
//      sorted by exact endpoint coordinates; equal-coordinate runs are the
//      map's vertices (computed once);
//   2. component labeling -- iterated hooking + pointer jumping: each round
//      takes the minimum label across every vertex's incident lines
//      (segmented min-scans over the sorted records) and then shortcuts
//      label chains (L <- L[L]); converges in O(log n) rounds;
//   3. ring extraction -- a component is a closed simple ring iff each of
//      its vertices has degree exactly 2; rings are walked into ordered
//      vertex loops.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct PolygonizeResult {
  /// Component label per input line (by position): the index of the
  /// smallest-indexed line in its connected component.
  std::vector<std::uint32_t> component_of;
  std::size_t num_components = 0;
  /// Outer label-propagation rounds until fixpoint.
  std::size_t rounds = 0;
  /// Index of the component label of each extracted ring, parallel to
  /// `rings`.
  std::vector<std::uint32_t> ring_component;
  /// Closed rings (every vertex of the component has degree 2), as ordered
  /// vertex loops; rings[i][0] is repeated implicitly (not duplicated).
  std::vector<std::vector<geom::Point>> rings;
};

PolygonizeResult polygonize(dpv::Context& ctx,
                            const std::vector<geom::Segment>& lines);

}  // namespace dps::core
