#pragma once
// Data-parallel PM1 quadtree construction (section 5.1, Figures 30-33).
//
// Iterative rounds: every node runs the PM1 split determination (section
// 4.5) simultaneously; nodes that must subdivide split via the two-stage
// quadtree node split (section 4.6); the process repeats until no node
// needs to subdivide (or the depth cap is reached).  Each round costs a
// constant number of scan-model primitives, so the build is O(log n)
// rounds x O(1) primitives for well-separated data -- the counters in the
// result let callers verify exactly that.

#include <cstddef>
#include <vector>

#include "core/quadtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "prim/line_set.hpp"
#include "prim/pm_split_test.hpp"

namespace dps::core {

struct QuadBuildOptions {
  double world = 1.0;  // side of the root square; data must lie within
  int max_depth = 20;  // resolution cap (1x1 cells of a 2^20-side world)
  // PM-family leaf criterion (sections 2.1 / 4.5): PM1 (the default) and
  // PM2 require planar input; PM3 tolerates crossing segments.  Ignored by
  // the bucket PMR build.
  prim::PmVariant variant = prim::PmVariant::kPm1;
};

struct BuildRound {
  std::size_t line_processors = 0;  // q-edges before the round's splits
  std::size_t groups = 0;           // occupied nodes before the splits
  std::size_t nodes_split = 0;
  std::size_t clones_made = 0;
};

struct QuadBuildResult {
  QuadTree tree;
  std::size_t rounds = 0;
  bool depth_limited = false;  // some node still violates the rule at cap
  std::vector<BuildRound> trace;
  dpv::PrimCounters prims;  // primitives consumed by this build
};

/// Builds the PM quadtree of `lines` under `opts.variant` (ids must be
/// unique per line).  Named for the paper's primary variant; pass
/// `opts.variant = prim::PmVariant::kPm2 / kPm3` for the siblings.
QuadBuildResult pm1_build(dpv::Context& ctx, std::vector<geom::Segment> lines,
                          const QuadBuildOptions& opts);

/// Alias stressing that all three PM variants are supported.
inline QuadBuildResult pm_build(dpv::Context& ctx,
                                std::vector<geom::Segment> lines,
                                const QuadBuildOptions& opts) {
  return pm1_build(ctx, std::move(lines), opts);
}

}  // namespace dps::core
