#pragma once
// Data-parallel bucket PMR quadtree construction (section 5.2, Figures
// 35-38).
//
// The bucket PMR quadtree replaces the insertion-order-dependent PMR
// splitting rule with repeated subdivision until every bucket holds at most
// `bucket_capacity` lines or the maximal resolution is reached; its shape
// is therefore independent of insertion order, which is what makes it
// suitable for simultaneous (data-parallel) insertion.  Each round is a
// node capacity check (section 4.4) followed by the quadtree node split
// (section 4.6) on every overflowing node at once.

#include <cstddef>
#include <vector>

#include "core/pm1_build.hpp"  // QuadBuildOptions / BuildRound / QuadBuildResult
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct PmrBuildOptions : QuadBuildOptions {
  std::size_t bucket_capacity = 8;
};

/// Builds the bucket PMR quadtree of `lines`.  Nodes at the depth cap may
/// legally exceed the bucket capacity (the paper's node 9 in Figure 38);
/// `depth_limited` reports when that happened.
QuadBuildResult pmr_build(dpv::Context& ctx, std::vector<geom::Segment> lines,
                          const PmrBuildOptions& opts);

}  // namespace dps::core
