#include "core/batch_query.hpp"

#include "core/batch_emit.hpp"
#include "core/geom_tiles.hpp"
#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"

namespace dps::core {

namespace {

// Control poll cadence during host-side candidate generation; deadline
// checks read the clock, so per-candidate polling would dominate.
constexpr std::size_t kControlStride = 64;

}  // namespace

BatchQueryResult batch_window_query(dpv::Context& ctx, const QuadTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control) {
  BatchQueryResult out;
  out.results.resize(windows.size());
  if (tree.num_nodes() == 0 || windows.empty()) return out;
  auto round = ctx.scoped_round();

  // Candidate generation: per window, the q-edges of every leaf whose block
  // meets the window (host traversal; the flat candidate list is the
  // "virtual processor per (window, q-edge)" assignment).
  std::vector<std::uint32_t> cand_window;
  std::vector<std::uint32_t> cand_edge;
  std::vector<std::int32_t> stack;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (w % kControlStride == 0 && batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    const geom::Rect& win = windows[w];
    stack.assign(1, 0);
    while (!stack.empty()) {
      const QuadTree::Node& nd = tree.nodes()[stack.back()];
      stack.pop_back();
      if (!nd.block.rect(tree.world()).intersects(win)) continue;
      if (nd.is_leaf) {
        for (std::uint32_t e = 0; e < nd.num_edges; ++e) {
          cand_window.push_back(static_cast<std::uint32_t>(w));
          cand_edge.push_back(nd.first_edge + e);
        }
      } else {
        for (const std::int32_t c : nd.child) {
          if (c != QuadTree::kNoChild) stack.push_back(c);
        }
      }
    }
  }
  out.candidates = cand_edge.size();
  const std::size_t n = cand_edge.size();
  if (n == 0) return out;
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }

  // Elementwise intersection test over all candidates at once, on SoA
  // tiles through the batched clip kernel.
  dpv::Flags hit = tile_segment_intersects_rect(
      ctx, n,
      [&](std::size_t i) -> const geom::Segment& {
        return tree.edges()[cand_edge[i]];
      },
      [&](std::size_t i) -> const geom::Rect& {
        return windows[cand_window[i]];
      });

  // Pack survivors, sort by (window, line id), concentrate duplicates.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(ctx, n, [&](std::size_t i) {
    const geom::LineId id = tree.edges()[cand_edge[i]].id;
    return (std::uint64_t{cand_window[i]} << 32) | id;
  });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> sorted = dpv::gather(ctx, hits, order);
  dpv::Vec<std::uint64_t> unique = prim::delete_duplicates(ctx, sorted);

  // Final poll: a fault injected into the concentration primitives above
  // must still mark the whole batch untrusted.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  emit_concentrated(unique, out.results);
  return out;
}

BatchQueryResult batch_point_query(dpv::Context& ctx, const QuadTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control) {
  BatchQueryResult out;
  out.results.resize(points.size());
  if (tree.num_nodes() == 0 || points.empty()) return out;
  auto round = ctx.scoped_round();

  // Host descent to every leaf whose *closed* cell contains the point (up
  // to four when the point sits on cell boundaries), so boundary hits on
  // lines of adjacent cells are not missed.
  std::vector<std::uint32_t> cand_point;
  std::vector<std::uint32_t> cand_edge;
  std::vector<std::int32_t> stack;
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (p % kControlStride == 0 && batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    stack.assign(1, 0);
    while (!stack.empty()) {
      const QuadTree::Node& nd = tree.nodes()[stack.back()];
      stack.pop_back();
      if (!nd.block.rect(tree.world()).contains(points[p])) continue;
      if (nd.is_leaf) {
        for (std::uint32_t e = 0; e < nd.num_edges; ++e) {
          cand_point.push_back(static_cast<std::uint32_t>(p));
          cand_edge.push_back(nd.first_edge + e);
        }
        continue;
      }
      for (const std::int32_t c : nd.child) {
        if (c != QuadTree::kNoChild) stack.push_back(c);
      }
    }
  }
  out.candidates = cand_edge.size();
  const std::size_t n = cand_edge.size();
  if (n == 0) return out;
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }

  dpv::Flags hit = tile_point_on_segment(
      ctx, n,
      [&](std::size_t i) -> const geom::Point& {
        return points[cand_point[i]];
      },
      [&](std::size_t i) -> const geom::Segment& {
        return tree.edges()[cand_edge[i]];
      });
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(ctx, n, [&](std::size_t i) {
    return (std::uint64_t{cand_point[i]} << 32) | tree.edges()[cand_edge[i]].id;
  });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> unique =
      prim::delete_duplicates(ctx, dpv::gather(ctx, hits, order));
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  emit_concentrated(unique, out.results);
  return out;
}

}  // namespace dps::core
