#include "core/kdtree_build.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>
#include <utility>

namespace dps::core {

namespace {

// Host-side frontier bookkeeping: group g of the point set corresponds to
// tree node frontier[g].
struct FrontierEntry {
  std::int32_t node;
  int depth;
};

std::vector<std::size_t> group_starts(const dpv::Flags& seg) {
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < seg.size(); ++i) {
    if (i == 0 || seg[i]) starts.push_back(i);
  }
  return starts;
}

}  // namespace

// Grants kd_build access to the private tree innards during assembly.
struct KdBuilderAccess {
  static std::vector<KdTree::Node>& nodes(KdTree& t) { return t.nodes_; }
  static std::vector<geom::Point>& pts(KdTree& t) { return t.pts_; }
  static std::vector<prim::PointId>& ids(KdTree& t) { return t.ids_; }
};

KdBuildResult kd_build(dpv::Context& ctx, std::vector<geom::Point> pts,
                       std::vector<prim::PointId> ids,
                       const KdBuildOptions& opts) {
  assert(pts.size() == ids.size());
  const dpv::PrimCounters before = ctx.counters();
  KdBuildResult res;
  auto& nodes = KdBuilderAccess::nodes(res.tree);
  const std::size_t n = pts.size();
  const std::size_t cap = opts.leaf_capacity == 0 ? 1 : opts.leaf_capacity;

  nodes.push_back(KdTree::Node{});
  if (n == 0) {
    res.prims = ctx.counters() - before;
    return res;
  }
  dpv::Vec<geom::Point> p = dpv::to_vec(pts);
  dpv::Vec<prim::PointId> pid = dpv::to_vec(ids);
  dpv::Flags seg = dpv::single_segment(ctx, n);
  std::vector<FrontierEntry> frontier{{0, 0}};

  for (;;) {
    const std::vector<std::size_t> starts = group_starts(seg);
    assert(starts.size() == frontier.size());
    // Which groups overflow?
    bool any = false;
    std::vector<std::uint8_t> split_group(frontier.size(), 0);
    for (std::size_t g = 0; g < starts.size(); ++g) {
      const std::size_t end = g + 1 < starts.size() ? starts[g + 1] : n;
      if (end - starts[g] > cap) {
        split_group[g] = 1;
        any = true;
      }
    }
    if (!any) break;
    ++res.rounds;

    // Sort every splitting group by its round axis (exact 64-bit keys; the
    // group's axis depends on its depth, broadcast per element).
    dpv::Vec<std::uint64_t> key(n);
    for (std::size_t g = 0; g < starts.size(); ++g) {
      const std::size_t end = g + 1 < starts.size() ? starts[g + 1] : n;
      const int axis = frontier[g].depth % 2;
      for (std::size_t i = starts[g]; i < end; ++i) {
        key[i] = split_group[g]
                     ? dpv::key_from_double(axis == 0 ? p[i].x : p[i].y)
                     : 0;  // constant key: stable sort leaves the group alone
      }
    }
    ctx.count(dpv::Prim::kElementwise, n);
    const dpv::Index order = dpv::seg_sort_indices64(ctx, key, seg);
    p = dpv::gather(ctx, p, order);
    pid = dpv::gather(ctx, pid, order);

    // Cut each splitting group at the median rank; the sorted prefix is the
    // left child, so only the head flags and the host tree change.
    dpv::Flags new_seg = seg;
    std::vector<FrontierEntry> next_frontier;
    next_frontier.reserve(frontier.size() * 2);
    for (std::size_t g = 0; g < starts.size(); ++g) {
      if (!split_group[g]) {
        next_frontier.push_back(frontier[g]);
        continue;
      }
      const std::size_t end = g + 1 < starts.size() ? starts[g + 1] : n;
      const std::size_t count = end - starts[g];
      const std::size_t left = (count + 1) / 2;
      new_seg[starts[g] + left] = 1;
      const int axis = frontier[g].depth % 2;
      const auto left_child = static_cast<std::int32_t>(nodes.size());
      {
        // Scoped: push_back below may reallocate and invalidate this ref.
        KdTree::Node& nd = nodes[frontier[g].node];
        nd.is_leaf = false;
        nd.axis = static_cast<std::uint8_t>(axis);
        const geom::Point& boundary = p[starts[g] + left - 1];
        nd.split = axis == 0 ? boundary.x : boundary.y;
        nd.left = left_child;
        nd.right = left_child + 1;
      }
      nodes.push_back(KdTree::Node{});
      nodes.push_back(KdTree::Node{});
      next_frontier.push_back({left_child, frontier[g].depth + 1});
      next_frontier.push_back({left_child + 1, frontier[g].depth + 1});
    }
    seg = std::move(new_seg);
    frontier = std::move(next_frontier);
  }

  // Attach leaf ranges.
  const std::vector<std::size_t> starts = group_starts(seg);
  for (std::size_t g = 0; g < starts.size(); ++g) {
    const std::size_t end = g + 1 < starts.size() ? starts[g + 1] : n;
    KdTree::Node& nd = nodes[frontier[g].node];
    nd.first_pt = static_cast<std::uint32_t>(starts[g]);
    nd.num_pts = static_cast<std::uint32_t>(end - starts[g]);
  }
  KdBuilderAccess::pts(res.tree) = dpv::to_std(p);
  KdBuilderAccess::ids(res.tree) = dpv::to_std(pid);
  res.prims = ctx.counters() - before;
  return res;
}

int KdTree::height() const {
  int h = 0;
  struct Item {
    std::int32_t node;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    h = std::max(h, it.depth);
    const Node& nd = nodes_[it.node];
    if (!nd.is_leaf) {
      stack.push_back({nd.left, it.depth + 1});
      stack.push_back({nd.right, it.depth + 1});
    }
  }
  return h;
}

std::size_t KdTree::max_leaf_occupancy() const {
  std::size_t m = 0;
  for (const auto& nd : nodes_) {
    if (nd.is_leaf) m = std::max<std::size_t>(m, nd.num_pts);
  }
  return m;
}

std::vector<prim::PointId> KdTree::window_query(
    const geom::Rect& window) const {
  std::vector<prim::PointId> out;
  if (pts_.empty()) return out;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& nd = nodes_[stack.back()];
    stack.pop_back();
    if (nd.is_leaf) {
      for (std::uint32_t i = 0; i < nd.num_pts; ++i) {
        if (window.contains(pts_[nd.first_pt + i])) {
          out.push_back(ids_[nd.first_pt + i]);
        }
      }
      continue;
    }
    const double wmin = nd.axis == 0 ? window.xmin : window.ymin;
    const double wmax = nd.axis == 0 ? window.xmax : window.ymax;
    if (wmin <= nd.split) stack.push_back(nd.left);
    if (wmax >= nd.split) stack.push_back(nd.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<prim::PointId> KdTree::k_nearest(const geom::Point& q,
                                             std::size_t k) const {
  std::vector<prim::PointId> out;
  if (pts_.empty() || k == 0) return out;
  // Max-heap of the best k (distance^2, id) seen so far.
  using Best = std::pair<double, prim::PointId>;
  std::vector<Best> heap;
  auto dist2 = [&](const geom::Point& p) {
    const double dx = p.x - q.x, dy = p.y - q.y;
    return dx * dx + dy * dy;
  };
  auto worst = [&] {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().first;
  };
  // Depth-first descent, near side first, pruning on the split plane.
  struct Frame {
    std::int32_t node;
    double plane_d2;  // squared distance from q to this subtree's region
  };
  std::vector<Frame> stack{{0, 0.0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.plane_d2 > worst()) continue;
    const Node& nd = nodes_[f.node];
    if (nd.is_leaf) {
      for (std::uint32_t i = 0; i < nd.num_pts; ++i) {
        const Best cand{dist2(pts_[nd.first_pt + i]), ids_[nd.first_pt + i]};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
        } else if (cand < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end());
        }
      }
      continue;
    }
    const double qc = nd.axis == 0 ? q.x : q.y;
    const double gap = qc - nd.split;
    const double far_d2 = std::max(f.plane_d2, gap * gap);
    const std::int32_t near = gap <= 0.0 ? nd.left : nd.right;
    const std::int32_t far = gap <= 0.0 ? nd.right : nd.left;
    stack.push_back({far, far_d2});   // visited after near (LIFO)
    stack.push_back({near, f.plane_d2});
  }
  std::sort(heap.begin(), heap.end());
  out.reserve(heap.size());
  for (const auto& [d, id] : heap) out.push_back(id);
  return out;
}

std::string KdTree::fingerprint() const {
  std::ostringstream os;
  std::vector<std::int32_t> stack{0};
  if (pts_.empty()) return "";
  while (!stack.empty()) {
    const Node& nd = nodes_[stack.back()];
    stack.pop_back();
    if (!nd.is_leaf) {
      stack.push_back(nd.right);  // left visited first
      stack.push_back(nd.left);
      continue;
    }
    std::vector<prim::PointId> ids(ids_.begin() + nd.first_pt,
                                   ids_.begin() + nd.first_pt + nd.num_pts);
    std::sort(ids.begin(), ids.end());
    for (const auto id : ids) os << id << ",";
    os << ";";
  }
  return os.str();
}

std::string KdTree::validate() const {
  if (pts_.empty()) return nodes_.size() == 1 ? "" : "nodes without points";
  // Every internal node: all left-subtree coords <= split <= right coords.
  struct Item {
    std::int32_t node;
  };
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& nd = nodes_[stack.back()];
    stack.pop_back();
    if (nd.is_leaf) continue;
    // Collect subtree leaf ranges (contiguous by construction).
    auto span_of = [&](std::int32_t root) {
      std::uint32_t lo = ~0u, hi = 0;
      std::vector<std::int32_t> st{root};
      while (!st.empty()) {
        const Node& x = nodes_[st.back()];
        st.pop_back();
        if (x.is_leaf) {
          lo = std::min(lo, x.first_pt);
          hi = std::max(hi, x.first_pt + x.num_pts);
        } else {
          st.push_back(x.left);
          st.push_back(x.right);
        }
      }
      return std::pair{lo, hi};
    };
    const auto [llo, lhi] = span_of(nd.left);
    const auto [rlo, rhi] = span_of(nd.right);
    for (std::uint32_t i = llo; i < lhi; ++i) {
      const double v = nd.axis == 0 ? pts_[i].x : pts_[i].y;
      if (v > nd.split) return "left point above the split";
    }
    for (std::uint32_t i = rlo; i < rhi; ++i) {
      const double v = nd.axis == 0 ? pts_[i].x : pts_[i].y;
      if (v < nd.split) return "right point below the split";
    }
    stack.push_back(nd.left);
    stack.push_back(nd.right);
  }
  return "";
}

}  // namespace dps::core
