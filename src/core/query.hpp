#pragma once
// Sequential query operations over the built structures.
//
// Window (rectangle) and point queries for both the quadtrees and the
// R-tree.  Results report each original line once even when it was
// decomposed into several q-edges (the disjoint-decomposition price
// discussed in section 1).  QueryStats counts the nodes visited so the
// R-tree-vs-quadtree motivation of sections 1/2 ("non-disjointness means
// more nodes may need to be checked") can be measured.

#include <cstddef>
#include <vector>

#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "geom/geom.hpp"

namespace dps::core {

struct QueryStats {
  std::size_t nodes_visited = 0;    // tree nodes whose region met the query
  std::size_t segments_tested = 0;  // candidate q-edges / entries examined
};

/// Lines intersecting the closed window, each id reported once, sorted.
std::vector<geom::LineId> window_query(const QuadTree& tree,
                                       const geom::Rect& window,
                                       QueryStats* stats = nullptr);

std::vector<geom::LineId> window_query(const RTree& tree,
                                       const geom::Rect& window,
                                       QueryStats* stats = nullptr);

/// Lines passing through the query point (closed segments), sorted ids.
std::vector<geom::LineId> point_query(const QuadTree& tree,
                                      const geom::Point& p,
                                      QueryStats* stats = nullptr);

std::vector<geom::LineId> point_query(const RTree& tree, const geom::Point& p,
                                      QueryStats* stats = nullptr);

}  // namespace dps::core
