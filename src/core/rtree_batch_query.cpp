#include "core/batch_query.hpp"

#include "core/batch_emit.hpp"
#include "core/geom_tiles.hpp"
#include "dpv/distribute.hpp"
#include "dpv/fused.hpp"
#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"

#include <tuple>

namespace dps::core {

namespace {

// Shared frontier descent for the R-tree batch pipelines.  `prune(q, node)`
// keeps a (query, node) pair alive; `test_batch(ctx, n, q_at, seg_at)` runs
// the leaf test over all n (query, entry) candidates at once (the query
// kinds plug in an SoA tile driver from core/geom_tiles.hpp).  Both query
// kinds descend the same way: one tree level per round, prune / pack / peel
// leaves / scan-distributed child expansion.
template <typename Prune, typename TestBatch>
BatchQueryResult rtree_batch_descend(dpv::Context& ctx, const RTree& tree,
                                     std::size_t num_queries, Prune&& prune,
                                     TestBatch&& test_batch,
                                     const BatchControl& control) {
  BatchQueryResult out;
  out.results.resize(num_queries);
  if (tree.num_nodes() == 0 || tree.empty() || num_queries == 0) return out;
  auto round = ctx.scoped_round();

  // Frontier of (query, node) pairs, all at the same tree level.
  dpv::Vec<std::uint32_t> fq = dpv::tabulate(
      ctx, num_queries, [](std::size_t i) {
        return static_cast<std::uint32_t>(i);
      });
  dpv::Vec<std::int32_t> fnode =
      dpv::constant<std::int32_t>(ctx, num_queries, 0);  // root

  // Pairs that reached leaves accumulate here.
  dpv::Vec<std::uint32_t> lq;
  dpv::Vec<std::int32_t> lnode;

  while (!fq.empty()) {
    // One control poll per descent round (a round is one tree level).
    if (batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    // Prune by MBR.
    dpv::Flags live = dpv::tabulate(ctx, fq.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(prune(fq[i], tree.nodes()[fnode[i]]));
    });
    std::tie(fq, fnode) = dpv::multi_pack(ctx, live, fq, fnode);
    if (fq.empty()) break;

    // Peel off leaf pairs.
    dpv::Flags is_leaf = dpv::map(ctx, fnode, [&](std::int32_t nd) {
      return static_cast<std::uint8_t>(tree.nodes()[nd].is_leaf);
    });
    dpv::Flags is_internal = dpv::map(ctx, is_leaf, [](std::uint8_t l) {
      return static_cast<std::uint8_t>(!l);
    });
    auto [leaf_q, leaf_n] = dpv::multi_pack(ctx, is_leaf, fq, fnode);
    lq.insert(lq.end(), leaf_q.begin(), leaf_q.end());
    lnode.insert(lnode.end(), leaf_n.begin(), leaf_n.end());
    std::tie(fq, fnode) = dpv::multi_pack(ctx, is_internal, fq, fnode);
    if (fq.empty()) break;

    // Expand each surviving internal pair into its children.
    dpv::Vec<std::size_t> counts = dpv::map(ctx, fnode, [&](std::int32_t nd) {
      return static_cast<std::size_t>(tree.nodes()[nd].num_children);
    });
    const dpv::Expansion e = dpv::distribute(ctx, counts);
    dpv::Vec<std::uint32_t> nq = dpv::tabulate(
        ctx, e.total, [&](std::size_t j) { return fq[e.src[j]]; });
    dpv::Vec<std::int32_t> nnode = dpv::tabulate(
        ctx, e.total, [&](std::size_t j) {
          const std::size_t i = e.src[j];
          const RTree::Node& parent = tree.nodes()[fnode[i]];
          return parent.first_child +
                 static_cast<std::int32_t>(j - e.offsets[i]);
        });
    fq = std::move(nq);
    fnode = std::move(nnode);
  }

  // Expand leaf pairs to (query, entry) candidates and test elementwise.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  dpv::Vec<std::size_t> ecounts = dpv::map(ctx, lnode, [&](std::int32_t nd) {
    return static_cast<std::size_t>(tree.nodes()[nd].num_entries);
  });
  const dpv::Expansion e = dpv::distribute(ctx, ecounts);
  out.candidates = e.total;
  if (e.total == 0) return out;
  dpv::Flags hit = test_batch(
      ctx, e.total, [&](std::size_t j) { return lq[e.src[j]]; },
      [&](std::size_t j) -> const geom::Segment& {
        const std::size_t i = e.src[j];
        const RTree::Node& leaf = tree.nodes()[lnode[i]];
        return tree.entries()[leaf.first_entry + (j - e.offsets[i])];
      });
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(
      ctx, e.total, [&](std::size_t j) {
        const std::size_t i = e.src[j];
        const RTree::Node& leaf = tree.nodes()[lnode[i]];
        const geom::LineId id =
            tree.entries()[leaf.first_entry + (j - e.offsets[i])].id;
        return (std::uint64_t{lq[i]} << 32) | id;
      });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> sorted = dpv::gather(ctx, hits, order);
  dpv::Vec<std::uint64_t> unique = prim::delete_duplicates(ctx, sorted);
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  emit_concentrated(unique, out.results);
  return out;
}

}  // namespace

BatchQueryResult batch_window_query(dpv::Context& ctx, const RTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control) {
  return rtree_batch_descend(
      ctx, tree, windows.size(),
      [&](std::uint32_t w, const RTree::Node& nd) {
        return nd.mbr.intersects(windows[w]);
      },
      [&](dpv::Context& c, std::size_t n, auto&& q_at, auto&& seg_at) {
        return tile_segment_intersects_rect(
            c, n, seg_at, [&](std::size_t j) -> const geom::Rect& {
              return windows[q_at(j)];
            });
      },
      control);
}

BatchQueryResult batch_point_query(dpv::Context& ctx, const RTree& tree,
                                   const std::vector<geom::Point>& points,
                                   const BatchControl& control) {
  return rtree_batch_descend(
      ctx, tree, points.size(),
      [&](std::uint32_t p, const RTree::Node& nd) {
        return nd.mbr.contains(points[p]);
      },
      [&](dpv::Context& c, std::size_t n, auto&& q_at, auto&& seg_at) {
        return tile_point_on_segment(
            c, n,
            [&](std::size_t j) -> const geom::Point& {
              return points[q_at(j)];
            },
            seg_at);
      },
      control);
}

}  // namespace dps::core
