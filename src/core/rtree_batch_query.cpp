#include "core/batch_query.hpp"

#include "geom/predicates.hpp"
#include "prim/duplicate_deletion.hpp"

namespace dps::core {

namespace {

// Distributes k sources over sum(counts) slots: out[j] = i for
// offsets[i] <= j < offsets[i] + counts[i].  A scatter of run heads
// followed by an inclusive max-scan -- the standard scan-model expansion.
dpv::Index distribute(dpv::Context& ctx, const dpv::Vec<std::size_t>& counts) {
  const std::size_t k = counts.size();
  dpv::Vec<std::size_t> offsets = dpv::scan(
      ctx, dpv::Plus<std::size_t>{}, counts, dpv::Dir::kUp, dpv::Incl::kExclusive);
  const std::size_t total =
      k == 0 ? 0 : offsets[k - 1] + counts[k - 1];
  if (total == 0) return {};
  dpv::Vec<std::size_t> heads = dpv::constant<std::size_t>(ctx, total, 0);
  dpv::Flags nonempty = dpv::map(ctx, counts, [](std::size_t c) {
    return static_cast<std::uint8_t>(c > 0);
  });
  dpv::scatter(ctx, dpv::iota(ctx, k), offsets, nonempty, heads);
  return dpv::scan(ctx, dpv::Max<std::size_t>{}, heads, dpv::Dir::kUp,
                   dpv::Incl::kInclusive);
}

}  // namespace

BatchQueryResult batch_window_query(dpv::Context& ctx, const RTree& tree,
                                    const std::vector<geom::Rect>& windows,
                                    const BatchControl& control) {
  BatchQueryResult out;
  out.results.resize(windows.size());
  if (tree.num_nodes() == 0 || tree.empty() || windows.empty()) return out;

  // Frontier of (window, node) pairs, all at the same tree level.
  dpv::Vec<std::uint32_t> fwin = dpv::tabulate(
      ctx, windows.size(), [](std::size_t i) {
        return static_cast<std::uint32_t>(i);
      });
  dpv::Vec<std::int32_t> fnode =
      dpv::constant<std::int32_t>(ctx, windows.size(), 0);  // root

  // Pairs that reached leaves accumulate here.
  dpv::Vec<std::uint32_t> lwin;
  dpv::Vec<std::int32_t> lnode;

  while (!fwin.empty()) {
    // One control poll per descent round (a round is one tree level).
    if (batch_aborting(ctx, control)) {
      out.aborted = true;
      return out;
    }
    // Prune by MBR intersection.
    dpv::Flags live = dpv::tabulate(ctx, fwin.size(), [&](std::size_t i) {
      return static_cast<std::uint8_t>(
          tree.nodes()[fnode[i]].mbr.intersects(windows[fwin[i]]));
    });
    fwin = dpv::pack(ctx, fwin, live);
    fnode = dpv::pack(ctx, fnode, live);
    if (fwin.empty()) break;

    // Peel off leaf pairs.
    dpv::Flags is_leaf = dpv::map(ctx, fnode, [&](std::int32_t nd) {
      return static_cast<std::uint8_t>(tree.nodes()[nd].is_leaf);
    });
    dpv::Flags is_internal = dpv::map(ctx, is_leaf, [](std::uint8_t l) {
      return static_cast<std::uint8_t>(!l);
    });
    dpv::Vec<std::uint32_t> leaf_w = dpv::pack(ctx, fwin, is_leaf);
    dpv::Vec<std::int32_t> leaf_n = dpv::pack(ctx, fnode, is_leaf);
    lwin.insert(lwin.end(), leaf_w.begin(), leaf_w.end());
    lnode.insert(lnode.end(), leaf_n.begin(), leaf_n.end());
    fwin = dpv::pack(ctx, fwin, is_internal);
    fnode = dpv::pack(ctx, fnode, is_internal);
    if (fwin.empty()) break;

    // Expand each surviving internal pair into its children.
    dpv::Vec<std::size_t> counts = dpv::map(ctx, fnode, [&](std::int32_t nd) {
      return static_cast<std::size_t>(tree.nodes()[nd].num_children);
    });
    const dpv::Index src = distribute(ctx, counts);
    dpv::Vec<std::size_t> offsets = dpv::scan(ctx, dpv::Plus<std::size_t>{},
                                              counts, dpv::Dir::kUp,
                                              dpv::Incl::kExclusive);
    dpv::Vec<std::uint32_t> nwin = dpv::tabulate(
        ctx, src.size(), [&](std::size_t j) { return fwin[src[j]]; });
    dpv::Vec<std::int32_t> nnode = dpv::tabulate(
        ctx, src.size(), [&](std::size_t j) {
          const std::size_t i = src[j];
          const RTree::Node& parent = tree.nodes()[fnode[i]];
          return parent.first_child +
                 static_cast<std::int32_t>(j - offsets[i]);
        });
    fwin = std::move(nwin);
    fnode = std::move(nnode);
  }

  // Expand leaf pairs to (window, entry) candidates and test elementwise.
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  dpv::Vec<std::size_t> ecounts = dpv::map(ctx, lnode, [&](std::int32_t nd) {
    return static_cast<std::size_t>(tree.nodes()[nd].num_entries);
  });
  const dpv::Index esrc = distribute(ctx, ecounts);
  dpv::Vec<std::size_t> eoffsets = dpv::scan(ctx, dpv::Plus<std::size_t>{},
                                             ecounts, dpv::Dir::kUp,
                                             dpv::Incl::kExclusive);
  out.candidates = esrc.size();
  if (esrc.empty()) return out;
  dpv::Flags hit = dpv::tabulate(ctx, esrc.size(), [&](std::size_t j) {
    const std::size_t i = esrc[j];
    const RTree::Node& leaf = tree.nodes()[lnode[i]];
    const geom::Segment& s =
        tree.entries()[leaf.first_entry + (j - eoffsets[i])];
    return static_cast<std::uint8_t>(
        geom::segment_intersects_rect(s, windows[lwin[i]]));
  });
  dpv::Vec<std::uint64_t> pair_key = dpv::tabulate(
      ctx, esrc.size(), [&](std::size_t j) {
        const std::size_t i = esrc[j];
        const RTree::Node& leaf = tree.nodes()[lnode[i]];
        const geom::LineId id =
            tree.entries()[leaf.first_entry + (j - eoffsets[i])].id;
        return (std::uint64_t{lwin[i]} << 32) | id;
      });
  dpv::Vec<std::uint64_t> hits = dpv::pack(ctx, pair_key, hit);
  dpv::Index order = dpv::sort_keys_indices(ctx, hits, 64);
  dpv::Vec<std::uint64_t> sorted = dpv::gather(ctx, hits, order);
  dpv::Vec<std::uint64_t> unique = prim::delete_duplicates(ctx, sorted);
  if (batch_aborting(ctx, control)) {
    out.aborted = true;
    return out;
  }
  for (const std::uint64_t key : unique) {
    out.results[key >> 32].push_back(
        static_cast<geom::LineId>(key & 0xFFFF'FFFFu));
  }
  return out;
}

}  // namespace dps::core
