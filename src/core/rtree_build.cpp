#include "core/rtree_build.hpp"

#include <cassert>

#include "core/validate.hpp"
#include "prim/capacity_check.hpp"
#include "prim/clone.hpp"
#include "prim/unshuffle.hpp"

namespace dps::core {

namespace {

// Parent ordinal of each element under the grouping `flags` (0-based, in
// group order): inclusive +-scan of head flags minus one.
dpv::Vec<std::size_t> group_ordinals(dpv::Context& ctx,
                                     const dpv::Flags& flags) {
  dpv::Vec<std::size_t> heads = dpv::tabulate(
      ctx, flags.size(), [&](std::size_t i) {
        return std::size_t{i == 0 || flags[i] != 0};
      });
  dpv::Vec<std::size_t> ord = dpv::scan(ctx, dpv::Plus<std::size_t>{}, heads,
                                        dpv::Dir::kUp, dpv::Incl::kInclusive);
  return dpv::map(ctx, ord, [](std::size_t o) { return o - 1; });
}

// Inverse permutation: out[order[r]] = r.
dpv::Index invert_permutation(dpv::Context& ctx, const dpv::Index& order) {
  dpv::Index out(order.size());
  dpv::scatter(ctx, dpv::iota(ctx, order.size()), order, dpv::Flags{}, out);
  return out;
}

// Build state: the line processor set plus per-level parent groupings.
struct BuildState {
  dpv::Vec<geom::Segment> segs;   // lines, leaf-grouped
  dpv::Flags line_seg;            // line groups = leaves (level 0 nodes)
  std::vector<dpv::Flags> levels; // levels[L]: level-L nodes grouped by
                                  // their level-(L+1) parents; the top
                                  // level always holds exactly one node
  std::size_t node_count(std::size_t level) const {
    return levels[level].size();
  }
};

// MBRs of the nodes at `level`, bottom-up from the line geometry.
dpv::Vec<geom::Rect> level_boxes(dpv::Context& ctx, const BuildState& st,
                                 std::size_t level) {
  dpv::Vec<geom::Rect> line_boxes = dpv::map(
      ctx, st.segs, [](const geom::Segment& s) { return s.bbox(); });
  dpv::Vec<geom::Rect> boxes =
      dpv::seg_reduce(ctx, geom::RectUnion{}, line_boxes, st.line_seg);
  for (std::size_t k = 0; k < level; ++k) {
    boxes = dpv::seg_reduce(ctx, geom::RectUnion{}, boxes, st.levels[k]);
  }
  return boxes;
}

// After the nodes of `level` were permuted by `dest` (old position -> new
// position), restore the children-follow-parents layout of every lower
// level (and the lines) with stable sorts by new parent ordinal.
void cascade_reorder(dpv::Context& ctx, BuildState& st, std::size_t level,
                     dpv::Index dest) {
  dpv::Index perm = std::move(dest);
  for (std::ptrdiff_t k = static_cast<std::ptrdiff_t>(level) - 1; k >= -1;
       --k) {
    dpv::Flags& flags = (k >= 0) ? st.levels[k] : st.line_seg;
    const std::size_t n = flags.size();
    dpv::Vec<std::size_t> parent = group_ordinals(ctx, flags);
    dpv::Vec<std::size_t> new_parent = dpv::gather(ctx, perm, parent);
    dpv::Vec<std::uint64_t> keys = dpv::map(
        ctx, new_parent, [](std::size_t p) { return std::uint64_t{p}; });
    dpv::Index order = dpv::sort_keys_indices(ctx, keys, 40);
    dpv::Vec<std::size_t> sorted_parent = dpv::gather(ctx, new_parent, order);
    flags = dpv::tabulate(ctx, n, [&](std::size_t i) {
      return static_cast<std::uint8_t>(i == 0 ||
                                       sorted_parent[i] != sorted_parent[i - 1]);
    });
    if (k == -1) st.segs = dpv::gather(ctx, st.segs, order);
    perm = invert_permutation(ctx, order);
  }
}

// Appends a fresh root level whenever the current top level holds more
// than one node (the root-split completion of Figure 42).
void ensure_single_root(dpv::Context& ctx, BuildState& st) {
  if (st.levels.back().size() > 1) {
    st.levels.push_back(dpv::single_segment(ctx, 1));
  }
}

RTree assemble(dpv::Context& ctx, const BuildState& st,
               const RtreeBuildOptions& opts) {
  const std::size_t num_levels = st.levels.size();
  // Per-level MBRs, bottom-up.
  std::vector<dpv::Vec<geom::Rect>> boxes(num_levels);
  {
    dpv::Vec<geom::Rect> line_boxes = dpv::map(
        ctx, st.segs, [](const geom::Segment& s) { return s.bbox(); });
    boxes[0] = dpv::seg_reduce(ctx, geom::RectUnion{}, line_boxes, st.line_seg);
    for (std::size_t k = 0; k + 1 < num_levels; ++k) {
      boxes[k + 1] = dpv::seg_reduce(ctx, geom::RectUnion{}, boxes[k],
                                     st.levels[k]);
    }
  }

  // Node layout: root first, then level top-1, ..., level 0 (leaves).
  std::vector<std::size_t> level_base(num_levels);
  std::size_t total = 0;
  for (std::size_t l = num_levels; l-- > 0;) {
    level_base[l] = total;
    total += st.node_count(l);
  }
  std::vector<RTree::Node> nodes(total);

  // Group start offsets at each level come from the head flags.
  auto group_starts = [&](const dpv::Flags& flags) {
    std::vector<std::size_t> starts;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (i == 0 || flags[i]) starts.push_back(i);
    }
    return starts;
  };

  // Internal levels: children ranges.
  for (std::size_t l = num_levels; l-- > 1;) {
    const std::vector<std::size_t> starts = group_starts(st.levels[l - 1]);
    const std::size_t child_count = st.node_count(l - 1);
    assert(starts.size() == st.node_count(l) && "level alignment broken");
    for (std::size_t g = 0; g < starts.size(); ++g) {
      RTree::Node& nd = nodes[level_base[l] + g];
      nd.is_leaf = false;
      nd.mbr = boxes[l][g];
      nd.first_child = static_cast<std::int32_t>(level_base[l - 1] + starts[g]);
      const std::size_t end = (g + 1 < starts.size()) ? starts[g + 1]
                                                      : child_count;
      nd.num_children = static_cast<std::int32_t>(end - starts[g]);
    }
  }
  // Leaf level: entry ranges (line groups are leaf-aligned).
  {
    const std::vector<std::size_t> starts = group_starts(st.line_seg);
    assert(starts.size() == st.node_count(0) && "leaf alignment broken");
    for (std::size_t g = 0; g < starts.size(); ++g) {
      RTree::Node& nd = nodes[level_base[0] + g];
      nd.is_leaf = true;
      nd.mbr = boxes[0][g];
      nd.first_entry = static_cast<std::uint32_t>(starts[g]);
      const std::size_t end =
          (g + 1 < starts.size()) ? starts[g + 1] : st.segs.size();
      nd.num_entries = static_cast<std::uint32_t>(end - starts[g]);
    }
  }

  const std::size_t effective_m =
      opts.split == prim::RtreeSplitAlgo::kMean ? 1 : opts.m;
  return RTree(std::move(nodes), dpv::to_std(st.segs),
               static_cast<int>(num_levels) - 1, effective_m, opts.M);
}

}  // namespace

RtreeBuildResult rtree_build(dpv::Context& ctx,
                             std::vector<geom::Segment> lines,
                             const RtreeBuildOptions& opts) {
  // The R-tree has no fixed world square; only finiteness is checkable.
  validate_segments_or_throw(lines);
  const dpv::PrimCounters before = ctx.counters();
  RtreeBuildResult res;

  if (lines.empty()) {
    std::vector<RTree::Node> nodes(1);
    nodes[0].mbr = geom::Rect::empty();
    res.tree = RTree(std::move(nodes), {}, 0, opts.m, opts.M);
    res.prims = ctx.counters() - before;
    return res;
  }

  BuildState st;
  st.line_seg = dpv::single_segment(ctx, lines.size());
  st.segs = dpv::to_vec(lines);
  st.levels.push_back(dpv::single_segment(ctx, 1));

  for (;;) {
    RtreeBuildRound round;

    // ---- Pass A: split overflowing leaves (Figures 39-41).
    {
      const prim::CapacityCheck cc =
          prim::capacity_check(ctx, st.line_seg, opts.M);
      std::size_t overflowing = 0;
      for (const auto f : cc.group_overflow) overflowing += (f != 0);
      if (overflowing > 0) {
        dpv::Vec<geom::Rect> line_boxes = dpv::map(
            ctx, st.segs, [](const geom::Segment& s) { return s.bbox(); });
        const prim::RtreeSplitResult split =
            prim::rtree_split(ctx, line_boxes, st.line_seg, cc.elem_overflow,
                              opts.m, opts.M, opts.split);
        const prim::UnshufflePlan plan =
            prim::plan_seg_unshuffle(ctx, split.side, st.line_seg);
        st.segs = prim::apply_unshuffle(ctx, plan, st.segs);
        st.line_seg = plan.new_seg;
        // The new leaf enters the leaf level right after the one it split
        // from, staying in the same parent's group.
        const prim::ClonePlan cp = prim::plan_clone(ctx, cc.group_overflow);
        st.levels[0] = prim::apply_clone_seg_flags(ctx, cp, st.levels[0]);
        ensure_single_root(ctx, st);
        round.leaf_splits = overflowing;
      }
    }

    // ---- Pass B: split overflowing internal nodes, bottom-up, cascading
    // the child reordering down to the lines.
    for (std::size_t L = 0; L + 1 < st.levels.size(); ++L) {
      const prim::CapacityCheck cc =
          prim::capacity_check(ctx, st.levels[L], opts.M);
      std::size_t overflowing = 0;
      for (const auto f : cc.group_overflow) overflowing += (f != 0);
      if (overflowing == 0) continue;
      dpv::Vec<geom::Rect> boxes = level_boxes(ctx, st, L);
      const prim::RtreeSplitResult split =
          prim::rtree_split(ctx, boxes, st.levels[L], cc.elem_overflow,
                            opts.m, opts.M, opts.split);
      const prim::UnshufflePlan plan =
          prim::plan_seg_unshuffle(ctx, split.side, st.levels[L]);
      st.levels[L] = plan.new_seg;
      cascade_reorder(ctx, st, L, plan.dest);
      const prim::ClonePlan cp = prim::plan_clone(ctx, cc.group_overflow);
      st.levels[L + 1] = prim::apply_clone_seg_flags(ctx, cp, st.levels[L + 1]);
      ensure_single_root(ctx, st);
      round.internal_splits += overflowing;
    }

    assert(dpv::num_segments(st.line_seg) == st.node_count(0) &&
           "line groups must stay aligned with the leaf level");

    if (round.leaf_splits == 0 && round.internal_splits == 0) break;
    round.leaves = st.node_count(0);
    round.levels = st.levels.size();
    res.trace.push_back(round);
    ++res.rounds;
  }

  res.tree = assemble(ctx, st, opts);
  res.prims = ctx.counters() - before;
  return res;
}

}  // namespace dps::core
