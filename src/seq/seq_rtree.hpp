#pragma once
// Sequential R-tree baseline: Guttman's dynamic R-tree [Gutt84] with
// one-at-a-time insertion (section 2.3), plus an R*-style sweep split for
// comparability with the data-parallel build's section 4.7 algorithm.
//
// Node split strategies:
//   kLinear    -- Guttman's linear-cost PickSeeds + arbitrary assignment;
//   kQuadratic -- Guttman's quadratic PickSeeds/PickNext (the classic);
//   kSweep     -- sort by bbox minimum per axis, take the legal cut with
//                 minimal overlap (min perimeter tiebreak), better axis
//                 wins: the same selection rule as the data-parallel sweep.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rtree.hpp"
#include "geom/geom.hpp"

namespace dps::seq {

class SeqRTree {
 public:
  enum class Split : std::uint8_t { kLinear, kQuadratic, kSweep };

  struct Options {
    std::size_t m = 2;  // minimum fill
    std::size_t M = 8;  // maximum fanout / leaf capacity
    Split split = Split::kQuadratic;
  };

  explicit SeqRTree(const Options& opts);

  void insert(const geom::Segment& s);

  /// Guttman deletion: FindLeaf + CondenseTree.  Removes the (single)
  /// entry carrying `id`; underfull nodes are dissolved and their surviving
  /// entries reinserted; a root left with one child is shortened.  Returns
  /// false when no entry carries `id`.
  bool erase(geom::LineId id);

  std::size_t size() const { return count_; }
  int height() const;

  /// Materializes the tree in core::RTree layout (validate()/query reuse).
  core::RTree to_rtree() const;

  /// Splits `boxes` (all |boxes| = overflowing count) into two groups with
  /// strategy `split`; out[i] = 0 or 1.  Exposed for the Figure 6 tests.
  static std::vector<std::uint8_t> split_boxes(
      const std::vector<geom::Rect>& boxes, std::size_t m, Split split);

 private:
  struct Node {
    geom::Rect mbr;
    std::int32_t parent = -1;
    bool is_leaf = true;
    std::vector<std::int32_t> children;   // internal nodes
    std::vector<geom::Segment> entries;   // leaves
    std::size_t fanout() const {
      return is_leaf ? entries.size() : children.size();
    }
  };

  std::int32_t choose_leaf(const geom::Rect& box) const;
  void adjust_upward(std::int32_t node);
  void split_node(std::int32_t node);
  void recompute_mbr(std::int32_t node);
  std::int32_t find_leaf(std::int32_t node, geom::LineId id) const;
  void collect_entries(std::int32_t node, std::vector<geom::Segment>& out);
  void condense(std::int32_t node);

  Options opts_;
  std::vector<Node> nodes_;
  std::int32_t root_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dps::seq
