#include "seq/seq_rtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace dps::seq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Guttman's quadratic split.
std::vector<std::uint8_t> quadratic_split(const std::vector<geom::Rect>& boxes,
                                          std::size_t m) {
  const std::size_t n = boxes.size();
  std::vector<std::uint8_t> side(n, 2);  // 2 = unassigned
  // PickSeeds: the pair wasting the most area if grouped together.
  std::size_t s0 = 0, s1 = 1;
  double worst = -kInf;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d =
          boxes[i].united(boxes[j]).area() - boxes[i].area() - boxes[j].area();
      if (d > worst) {
        worst = d;
        s0 = i;
        s1 = j;
      }
    }
  }
  side[s0] = 0;
  side[s1] = 1;
  geom::Rect g0 = boxes[s0], g1 = boxes[s1];
  std::size_t c0 = 1, c1 = 1, assigned = 2;
  while (assigned < n) {
    // Force-assign when one group needs all remaining to reach m.
    const std::size_t remaining = n - assigned;
    if (c0 + remaining == m) {
      for (std::size_t i = 0; i < n; ++i) {
        if (side[i] == 2) {
          side[i] = 0;
          g0 = g0.united(boxes[i]);
          ++c0;
          ++assigned;
        }
      }
      break;
    }
    if (c1 + remaining == m) {
      for (std::size_t i = 0; i < n; ++i) {
        if (side[i] == 2) {
          side[i] = 1;
          g1 = g1.united(boxes[i]);
          ++c1;
          ++assigned;
        }
      }
      break;
    }
    // PickNext: the entry with the greatest preference for one group.
    std::size_t pick = n;
    double best_diff = -kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (side[i] != 2) continue;
      const double d0 = g0.enlargement(boxes[i]);
      const double d1 = g1.enlargement(boxes[i]);
      const double diff = std::abs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    assert(pick < n);
    const double d0 = g0.enlargement(boxes[pick]);
    const double d1 = g1.enlargement(boxes[pick]);
    bool to0;
    if (d0 != d1) {
      to0 = d0 < d1;
    } else if (g0.area() != g1.area()) {
      to0 = g0.area() < g1.area();
    } else {
      to0 = c0 <= c1;
    }
    if (to0) {
      side[pick] = 0;
      g0 = g0.united(boxes[pick]);
      ++c0;
    } else {
      side[pick] = 1;
      g1 = g1.united(boxes[pick]);
      ++c1;
    }
    ++assigned;
  }
  return side;
}

// Guttman's linear split.
std::vector<std::uint8_t> linear_split(const std::vector<geom::Rect>& boxes,
                                       std::size_t m) {
  const std::size_t n = boxes.size();
  // LinearPickSeeds: per dimension, the highest low side and the lowest
  // high side; separation normalized by the spread of the dimension.
  auto pick_dim = [&](int axis, std::size_t& a, std::size_t& b) {
    double lo_all = kInf, hi_all = -kInf;
    double best_lo = -kInf, best_hi = kInf;
    a = 0;
    b = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = axis == 0 ? boxes[i].xmin : boxes[i].ymin;
      const double hi = axis == 0 ? boxes[i].xmax : boxes[i].ymax;
      lo_all = std::min(lo_all, lo);
      hi_all = std::max(hi_all, hi);
      if (lo > best_lo) {
        best_lo = lo;
        a = i;
      }
      if (hi < best_hi) {
        best_hi = hi;
        b = i;
      }
    }
    const double width = hi_all - lo_all;
    const double sep = best_lo - best_hi;
    return width > 0.0 ? sep / width : -kInf;
  };
  std::size_t xa, xb, ya, yb;
  const double nx = pick_dim(0, xa, xb);
  const double ny = pick_dim(1, ya, yb);
  std::size_t s0 = nx >= ny ? xb : yb;
  std::size_t s1 = nx >= ny ? xa : ya;
  if (s0 == s1) s1 = (s0 + 1) % n;  // degenerate data: any distinct pair

  std::vector<std::uint8_t> side(n, 2);
  side[s0] = 0;
  side[s1] = 1;
  geom::Rect g0 = boxes[s0], g1 = boxes[s1];
  std::size_t c0 = 1, c1 = 1, assigned = 2;
  for (std::size_t i = 0; i < n && assigned < n; ++i) {
    if (side[i] != 2) continue;
    const std::size_t remaining = n - assigned;
    bool to0;
    if (c0 + remaining == m) {
      to0 = true;
    } else if (c1 + remaining == m) {
      to0 = false;
    } else {
      const double d0 = g0.enlargement(boxes[i]);
      const double d1 = g1.enlargement(boxes[i]);
      to0 = d0 != d1 ? d0 < d1 : c0 <= c1;
    }
    if (to0) {
      side[i] = 0;
      g0 = g0.united(boxes[i]);
      ++c0;
    } else {
      side[i] = 1;
      g1 = g1.united(boxes[i]);
      ++c1;
    }
    ++assigned;
  }
  return side;
}

// Sweep split: same selection rule as the data-parallel section 4.7 sweep.
std::vector<std::uint8_t> sweep_split(const std::vector<geom::Rect>& boxes,
                                      std::size_t m) {
  const std::size_t n = boxes.size();
  std::vector<std::uint8_t> best_side(n, 0);
  double best_overlap = kInf, best_perim = kInf;
  bool found = false;
  for (int axis = 0; axis < 2; ++axis) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const double ka = axis == 0 ? boxes[a].xmin
                                                   : boxes[a].ymin;
                       const double kb = axis == 0 ? boxes[b].xmin
                                                   : boxes[b].ymin;
                       return ka < kb;
                     });
    std::vector<geom::Rect> prefix(n), suffix(n);
    geom::Rect acc = geom::Rect::empty();
    for (std::size_t i = 0; i < n; ++i) {
      acc = acc.united(boxes[order[i]]);
      prefix[i] = acc;
    }
    acc = geom::Rect::empty();
    for (std::size_t i = n; i-- > 0;) {
      suffix[i] = acc;  // exclusive: boxes strictly after i
      acc = acc.united(boxes[order[i]]);
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {  // left = order[0..k]
      const std::size_t left = k + 1;
      if (left < m || n - left < m) continue;
      const double ov = prefix[k].overlap_area(suffix[k]);
      const double pe = prefix[k].perimeter() + suffix[k].perimeter();
      if (!found || ov < best_overlap ||
          (ov == best_overlap && pe < best_perim)) {
        found = true;
        best_overlap = ov;
        best_perim = pe;
        for (std::size_t i = 0; i < n; ++i) {
          best_side[order[i]] = static_cast<std::uint8_t>(i > k);
        }
      }
    }
  }
  if (!found) {  // n < 2m: balanced fallback
    for (std::size_t i = 0; i < n; ++i) {
      best_side[i] = static_cast<std::uint8_t>(i >= (n + 1) / 2);
    }
  }
  return best_side;
}

}  // namespace

std::vector<std::uint8_t> SeqRTree::split_boxes(
    const std::vector<geom::Rect>& boxes, std::size_t m, Split split) {
  assert(boxes.size() >= 2);
  switch (split) {
    case Split::kLinear: return linear_split(boxes, m);
    case Split::kQuadratic: return quadratic_split(boxes, m);
    case Split::kSweep: return sweep_split(boxes, m);
  }
  return {};
}

SeqRTree::SeqRTree(const Options& opts) : opts_(opts) {
  Node root;
  root.mbr = geom::Rect::empty();
  nodes_.push_back(std::move(root));
}

std::int32_t SeqRTree::choose_leaf(const geom::Rect& box) const {
  std::int32_t cur = root_;
  while (!nodes_[cur].is_leaf) {
    const Node& nd = nodes_[cur];
    std::int32_t best = nd.children.front();
    double best_enl = kInf, best_area = kInf;
    for (const auto c : nd.children) {
      const double enl = nodes_[c].mbr.enlargement(box);
      const double area = nodes_[c].mbr.area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = c;
        best_enl = enl;
        best_area = area;
      }
    }
    cur = best;
  }
  return cur;
}

void SeqRTree::insert(const geom::Segment& s) {
  const std::int32_t leaf = choose_leaf(s.bbox());
  nodes_[leaf].entries.push_back(s);
  ++count_;
  if (nodes_[leaf].fanout() > opts_.M) {
    split_node(leaf);
  } else {
    adjust_upward(leaf);
  }
}

void SeqRTree::recompute_mbr(std::int32_t node) {
  Node& nd = nodes_[node];
  geom::Rect u = geom::Rect::empty();
  if (nd.is_leaf) {
    for (const auto& e : nd.entries) u = u.united(e.bbox());
  } else {
    for (const auto c : nd.children) u = u.united(nodes_[c].mbr);
  }
  nd.mbr = u;
}

void SeqRTree::adjust_upward(std::int32_t node) {
  for (std::int32_t cur = node; cur != -1; cur = nodes_[cur].parent) {
    recompute_mbr(cur);
  }
}

void SeqRTree::split_node(std::int32_t node) {
  // Collect member boxes and split them.
  std::vector<geom::Rect> boxes;
  if (nodes_[node].is_leaf) {
    for (const auto& e : nodes_[node].entries) boxes.push_back(e.bbox());
  } else {
    for (const auto c : nodes_[node].children) boxes.push_back(nodes_[c].mbr);
  }
  const std::vector<std::uint8_t> side =
      split_boxes(boxes, opts_.m, opts_.split);

  const auto sibling = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[sibling].is_leaf = nodes_[node].is_leaf;

  if (nodes_[node].is_leaf) {
    std::vector<geom::Segment> keep, move;
    for (std::size_t i = 0; i < side.size(); ++i) {
      (side[i] ? move : keep).push_back(nodes_[node].entries[i]);
    }
    nodes_[node].entries = std::move(keep);
    nodes_[sibling].entries = std::move(move);
  } else {
    std::vector<std::int32_t> keep, move;
    for (std::size_t i = 0; i < side.size(); ++i) {
      (side[i] ? move : keep).push_back(nodes_[node].children[i]);
    }
    nodes_[node].children = std::move(keep);
    nodes_[sibling].children = std::move(move);
    for (const auto c : nodes_[sibling].children) nodes_[c].parent = sibling;
  }
  recompute_mbr(node);
  recompute_mbr(sibling);

  const std::int32_t parent = nodes_[node].parent;
  if (parent == -1) {
    // Root split: grow the tree (Figure 42's analogue).
    const auto new_root = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[new_root].is_leaf = false;
    nodes_[new_root].children = {node, sibling};
    nodes_[node].parent = new_root;
    nodes_[sibling].parent = new_root;
    recompute_mbr(new_root);
    root_ = new_root;
    return;
  }
  nodes_[sibling].parent = parent;
  nodes_[parent].children.push_back(sibling);
  if (nodes_[parent].fanout() > opts_.M) {
    split_node(parent);
  } else {
    adjust_upward(parent);
  }
}

std::int32_t SeqRTree::find_leaf(std::int32_t node, geom::LineId id) const {
  const Node& nd = nodes_[node];
  if (nd.is_leaf) {
    for (const auto& e : nd.entries) {
      if (e.id == id) return node;
    }
    return -1;
  }
  for (const auto c : nd.children) {
    const std::int32_t hit = find_leaf(c, id);
    if (hit != -1) return hit;
  }
  return -1;
}

void SeqRTree::collect_entries(std::int32_t node,
                               std::vector<geom::Segment>& out) {
  Node& nd = nodes_[node];
  if (nd.is_leaf) {
    out.insert(out.end(), nd.entries.begin(), nd.entries.end());
    nd.entries.clear();
    return;
  }
  for (const auto c : nd.children) collect_entries(c, out);
  nd.children.clear();
}

void SeqRTree::condense(std::int32_t node) {
  // Walk up from `node`, dissolving underfull non-root nodes; reinsert the
  // surviving entries afterwards, then shorten a chain root.
  std::vector<geom::Segment> orphans;
  std::int32_t cur = node;
  while (cur != root_) {
    const std::int32_t parent = nodes_[cur].parent;
    if (nodes_[cur].fanout() < opts_.m) {
      auto& siblings = nodes_[parent].children;
      siblings.erase(std::find(siblings.begin(), siblings.end(), cur));
      collect_entries(cur, orphans);
    } else {
      recompute_mbr(cur);
    }
    cur = parent;
  }
  recompute_mbr(root_);
  while (!nodes_[root_].is_leaf && nodes_[root_].children.size() == 1) {
    root_ = nodes_[root_].children.front();
    nodes_[root_].parent = -1;
  }
  count_ -= orphans.size();  // insert() re-adds them
  for (const auto& e : orphans) insert(e);
}

bool SeqRTree::erase(geom::LineId id) {
  const std::int32_t leaf = find_leaf(root_, id);
  if (leaf == -1) return false;
  auto& entries = nodes_[leaf].entries;
  entries.erase(std::find_if(entries.begin(), entries.end(),
                             [id](const geom::Segment& e) {
                               return e.id == id;
                             }));
  --count_;
  condense(leaf);
  return true;
}

int SeqRTree::height() const {
  int h = 0;
  std::int32_t cur = root_;
  while (!nodes_[cur].is_leaf) {
    cur = nodes_[cur].children.front();
    ++h;
  }
  return h;
}

core::RTree SeqRTree::to_rtree() const {
  // Breadth-first layout with children contiguous per parent.
  std::vector<core::RTree::Node> out;
  std::vector<geom::Segment> entries;
  std::vector<std::int32_t> frontier{root_};
  std::vector<std::size_t> frontier_out{0};
  out.emplace_back();
  std::size_t head = 0;
  while (head < frontier.size()) {
    const std::int32_t src = frontier[head];
    const std::size_t dst = frontier_out[head];
    ++head;
    const Node& nd = nodes_[src];
    core::RTree::Node rec;
    rec.mbr = nd.mbr;
    rec.is_leaf = nd.is_leaf;
    if (nd.is_leaf) {
      rec.first_entry = static_cast<std::uint32_t>(entries.size());
      rec.num_entries = static_cast<std::uint32_t>(nd.entries.size());
      entries.insert(entries.end(), nd.entries.begin(), nd.entries.end());
    } else {
      rec.first_child = static_cast<std::int32_t>(out.size());
      rec.num_children = static_cast<std::int32_t>(nd.children.size());
      for (const auto c : nd.children) {
        frontier.push_back(c);
        frontier_out.push_back(out.size());
        out.emplace_back();
      }
    }
    out[dst] = rec;
  }
  return core::RTree(std::move(out), std::move(entries), height(), opts_.m,
                     opts_.M);
}

}  // namespace dps::seq
