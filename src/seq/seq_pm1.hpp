#pragma once
// Sequential PM1 quadtree baseline (section 2.1).
//
// Classic pointer-based PM1 quadtree with one-at-a-time insertion.  The PM1
// splitting rule is monotone in the line set (a node violating it keeps
// violating it as lines are added), so the final decomposition is unique
// and insertion-order independent -- which makes this baseline an exact
// cross-check for the data-parallel build of section 5.1: both must produce
// identical leaf decompositions (compared via fingerprints).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "geom/geom.hpp"
#include "prim/pm_split_test.hpp"  // PmVariant

namespace dps::seq {

class SeqPm1 {
 public:
  struct Options {
    double world = 1.0;
    int max_depth = 20;
    prim::PmVariant variant = prim::PmVariant::kPm1;
  };

  explicit SeqPm1(const Options& opts) : opts_(opts) {
    Node root;
    root.block = geom::Block::root();
    nodes_.push_back(std::move(root));
  }

  /// Inserts one line; splits every violated leaf it lands in.
  void insert(const geom::Segment& s);

  /// True when some node at the depth cap still violates the PM1 rule.
  bool depth_limited() const { return depth_limited_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_qedges() const;
  int height() const;

  /// Same format as core::QuadTree::fingerprint() -- non-empty leaves as
  /// sorted morton keys with sorted line-id lists.
  std::string fingerprint() const;

  /// The PM-family split decision shared with the tests: should a node
  /// holding `edges` over `block` subdivide under `variant`?
  static bool violates_rule(const geom::Block& block,
                            const std::vector<geom::Segment>& edges,
                            double world,
                            prim::PmVariant variant = prim::PmVariant::kPm1);

 private:
  struct Node {
    geom::Block block;
    std::int32_t child[4] = {-1, -1, -1, -1};
    bool is_leaf = true;
    std::vector<geom::Segment> edges;  // leaves only
  };

  void insert_into(std::int32_t node, const geom::Segment& s);
  void split(std::int32_t node);

  Options opts_;
  std::vector<Node> nodes_;
  bool depth_limited_ = false;
};

}  // namespace dps::seq
