#pragma once
// Hilbert-packed R-tree bulk loading [Kame92] -- the parallel-R-tree
// lineage the paper cites in its related work.
//
// Entries are sorted by the Hilbert-curve index of their bbox center and
// chunked M at a time into leaves; each upper level chunks the level below.
// Packing yields near-100% occupancy and, thanks to the curve's locality,
// low sibling overlap -- the strongest sequential comparator for the
// data-parallel build's split-quality numbers (bench_rtree_split).

#include <cstddef>
#include <vector>

#include "core/rtree.hpp"
#include "geom/geom.hpp"

namespace dps::seq {

/// Packs `lines` into an R-tree with fanout/leaf capacity `M` over the
/// square [0, world)^2 (used to quantize the Hilbert key).
core::RTree hilbert_pack_rtree(std::vector<geom::Segment> lines,
                               std::size_t M, double world);

}  // namespace dps::seq
