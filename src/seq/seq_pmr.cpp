#include "seq/seq_pmr.hpp"

#include <algorithm>
#include <sstream>

#include "geom/predicates.hpp"

namespace dps::seq {

void SeqPmr::insert(const geom::Segment& s) { insert_into(0, s); }

void SeqPmr::insert_into(std::int32_t node, const geom::Segment& s) {
  if (!geom::segment_properly_intersects_rect(
          s, nodes_[node].block.rect(opts_.world))) {
    return;
  }
  if (!nodes_[node].is_leaf) {
    for (int q = 0; q < 4; ++q) {
      std::int32_t c = nodes_[node].child[q];
      if (c == -1) {
        const geom::Block cb =
            nodes_[node].block.child(static_cast<geom::Quadrant>(q));
        if (!geom::segment_properly_intersects_rect(s,
                                                    cb.rect(opts_.world))) {
          continue;
        }
        c = static_cast<std::int32_t>(nodes_.size());
        Node child;
        child.block = cb;
        child.parent = node;
        nodes_.push_back(std::move(child));
        nodes_[node].child[q] = c;
      }
      insert_into(c, s);
    }
    return;
  }
  nodes_[node].edges.push_back(s);
  // The PMR rule: split once -- and only once -- when the insertion pushes
  // the block past the threshold (children are not re-checked).
  if (nodes_[node].edges.size() > opts_.threshold &&
      nodes_[node].block.depth < opts_.max_depth) {
    split_once(node);
  }
}

void SeqPmr::split_once(std::int32_t node) {
  std::vector<geom::Segment> edges = std::move(nodes_[node].edges);
  nodes_[node].edges.clear();
  nodes_[node].is_leaf = false;
  const geom::Block block = nodes_[node].block;
  for (int q = 0; q < 4; ++q) {
    const geom::Block cb = block.child(static_cast<geom::Quadrant>(q));
    const geom::Rect cr = cb.rect(opts_.world);
    std::vector<geom::Segment> sub;
    for (const auto& s : edges) {
      if (geom::segment_properly_intersects_rect(s, cr)) sub.push_back(s);
    }
    if (sub.empty()) continue;
    const auto c = static_cast<std::int32_t>(nodes_.size());
    Node child;
    child.block = cb;
    child.parent = node;
    nodes_.push_back(std::move(child));
    nodes_[node].child[q] = c;
    nodes_[c].edges = std::move(sub);
  }
}

void SeqPmr::erase(geom::LineId id) {
  // Remove the id's q-edges everywhere, collecting affected parents.
  std::vector<std::int32_t> affected_parents;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& nd = nodes_[i];
    if (nd.dead || !nd.is_leaf || nd.edges.empty()) continue;
    const auto old = nd.edges.size();
    nd.edges.erase(std::remove_if(nd.edges.begin(), nd.edges.end(),
                                  [id](const geom::Segment& s) {
                                    return s.id == id;
                                  }),
                   nd.edges.end());
    if (nd.edges.size() != old && nd.parent != -1) {
      affected_parents.push_back(nd.parent);
    }
  }
  std::sort(affected_parents.begin(), affected_parents.end());
  affected_parents.erase(
      std::unique(affected_parents.begin(), affected_parents.end()),
      affected_parents.end());
  for (const auto p : affected_parents) try_merge(p);
}

void SeqPmr::try_merge(std::int32_t parent) {
  for (;;) {
    Node& p = nodes_[parent];
    if (p.dead || p.is_leaf) return;
    // All children must be live leaves; count distinct lines across them.
    std::vector<geom::Segment> merged;
    for (int q = 0; q < 4; ++q) {
      const std::int32_t c = p.child[q];
      if (c == -1) continue;
      const Node& ch = nodes_[c];
      if (!ch.is_leaf || ch.dead) return;
      merged.insert(merged.end(), ch.edges.begin(), ch.edges.end());
    }
    // A line may appear in several children; merging keeps it once.
    std::sort(merged.begin(), merged.end(),
              [](const geom::Segment& a, const geom::Segment& b) {
                return a.id < b.id;
              });
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const geom::Segment& a,
                                const geom::Segment& b) {
                               return a.id == b.id;
                             }),
                 merged.end());
    // Merge when the threshold exceeds the combined occupancy (sec. 2.2).
    if (merged.size() >= opts_.threshold) return;
    for (int q = 0; q < 4; ++q) {
      const std::int32_t c = p.child[q];
      if (c != -1) nodes_[c].dead = true;
      p.child[q] = -1;
    }
    p.is_leaf = true;
    p.edges = std::move(merged);
    if (p.parent == -1) return;
    parent = p.parent;  // the paper: reapply merging recursively upward
  }
}

void SeqPmr::for_each_live_leaf(
    const std::function<void(const Node&)>& f) const {
  for (const auto& nd : nodes_) {
    if (!nd.dead && nd.is_leaf) f(nd);
  }
}

std::size_t SeqPmr::num_nodes() const {
  std::size_t c = 0;
  for (const auto& nd : nodes_) c += !nd.dead;
  return c;
}

std::size_t SeqPmr::num_qedges() const {
  std::size_t c = 0;
  for_each_live_leaf([&](const Node& nd) { c += nd.edges.size(); });
  return c;
}

int SeqPmr::height() const {
  int h = 0;
  for (const auto& nd : nodes_) {
    if (!nd.dead) h = std::max<int>(h, nd.block.depth);
  }
  return h;
}

std::size_t SeqPmr::max_leaf_occupancy() const {
  std::size_t m = 0;
  for_each_live_leaf(
      [&](const Node& nd) { m = std::max(m, nd.edges.size()); });
  return m;
}

std::size_t SeqPmr::max_occupancy_minus_depth() const {
  std::size_t m = 0;
  for_each_live_leaf([&](const Node& nd) {
    if (nd.block.depth >= opts_.max_depth) return;  // cap excluded
    const std::size_t occ = nd.edges.size();
    const std::size_t depth = nd.block.depth;
    m = std::max(m, occ > depth ? occ - depth : 0);
  });
  return m;
}

std::string SeqPmr::fingerprint() const {
  struct LeafInfo {
    std::uint64_t key;
    std::vector<geom::LineId> ids;
  };
  std::vector<LeafInfo> leaves;
  for_each_live_leaf([&](const Node& nd) {
    if (nd.edges.empty()) return;
    LeafInfo li;
    li.key = nd.block.morton_key();
    for (const auto& s : nd.edges) li.ids.push_back(s.id);
    std::sort(li.ids.begin(), li.ids.end());
    leaves.push_back(std::move(li));
  });
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) { return a.key < b.key; });
  std::ostringstream os;
  for (const auto& li : leaves) {
    os << li.key << ":";
    for (const auto id : li.ids) os << id << ",";
    os << ";";
  }
  return os.str();
}

}  // namespace dps::seq
