#include "seq/hilbert_rtree.hpp"

#include <algorithm>
#include <cmath>

#include "geom/hilbert.hpp"

namespace dps::seq {

namespace {

constexpr int kOrder = 16;  // 2^16 x 2^16 Hilbert grid

std::uint32_t quantize(double v, double world) {
  const double t = v / world * static_cast<double>(std::uint32_t{1} << kOrder);
  const double hi = static_cast<double>((std::uint32_t{1} << kOrder) - 1);
  return static_cast<std::uint32_t>(std::clamp(t, 0.0, hi));
}

}  // namespace

core::RTree hilbert_pack_rtree(std::vector<geom::Segment> lines,
                               std::size_t M, double world) {
  if (lines.empty()) {
    std::vector<core::RTree::Node> nodes(1);
    return core::RTree(std::move(nodes), {}, 0, 1, M);
  }
  std::sort(lines.begin(), lines.end(),
            [&](const geom::Segment& a, const geom::Segment& b) {
              const geom::Point ca = a.mid(), cb = b.mid();
              return geom::hilbert_d(quantize(ca.x, world),
                                     quantize(ca.y, world), kOrder) <
                     geom::hilbert_d(quantize(cb.x, world),
                                     quantize(cb.y, world), kOrder);
            });

  // Pack bottom-up: level 0 = leaves over entry chunks, then chunk each
  // level until a single root remains.
  struct Level {
    std::vector<geom::Rect> mbr;        // one per node of this level
    std::vector<std::size_t> first;     // first child / entry index
    std::vector<std::size_t> count;
  };
  std::vector<Level> levels;
  {
    Level leaves;
    for (std::size_t i = 0; i < lines.size(); i += M) {
      const std::size_t end = std::min(i + M, lines.size());
      geom::Rect u = geom::Rect::empty();
      for (std::size_t j = i; j < end; ++j) u = u.united(lines[j].bbox());
      leaves.mbr.push_back(u);
      leaves.first.push_back(i);
      leaves.count.push_back(end - i);
    }
    levels.push_back(std::move(leaves));
  }
  while (levels.back().mbr.size() > 1) {
    const Level& below = levels.back();
    Level up;
    for (std::size_t i = 0; i < below.mbr.size(); i += M) {
      const std::size_t end = std::min(i + M, below.mbr.size());
      geom::Rect u = geom::Rect::empty();
      for (std::size_t j = i; j < end; ++j) u = u.united(below.mbr[j]);
      up.mbr.push_back(u);
      up.first.push_back(i);
      up.count.push_back(end - i);
    }
    levels.push_back(std::move(up));
  }

  // Lay out root-first, children contiguous per parent (core::RTree form).
  std::vector<std::size_t> base(levels.size());
  std::size_t total = 0;
  for (std::size_t l = levels.size(); l-- > 0;) {
    base[l] = total;
    total += levels[l].mbr.size();
  }
  std::vector<core::RTree::Node> nodes(total);
  for (std::size_t l = levels.size(); l-- > 0;) {
    const Level& lv = levels[l];
    for (std::size_t g = 0; g < lv.mbr.size(); ++g) {
      core::RTree::Node& nd = nodes[base[l] + g];
      nd.mbr = lv.mbr[g];
      if (l == 0) {
        nd.is_leaf = true;
        nd.first_entry = static_cast<std::uint32_t>(lv.first[g]);
        nd.num_entries = static_cast<std::uint32_t>(lv.count[g]);
      } else {
        nd.is_leaf = false;
        nd.first_child = static_cast<std::int32_t>(base[l - 1] + lv.first[g]);
        nd.num_children = static_cast<std::int32_t>(lv.count[g]);
      }
    }
  }
  // Packing cannot promise a minimum fill in the final chunk of each level.
  return core::RTree(std::move(nodes), std::move(lines),
                     static_cast<int>(levels.size()) - 1, 1, M);
}

}  // namespace dps::seq
