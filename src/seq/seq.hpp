#pragma once
// Umbrella header for the sequential baselines.

#include "seq/hilbert_rtree.hpp"  // IWYU pragma: export
#include "seq/seq_pm1.hpp"    // IWYU pragma: export
#include "seq/seq_pmr.hpp"    // IWYU pragma: export
#include "seq/seq_rtree.hpp"  // IWYU pragma: export
