#pragma once
// Sequential PMR quadtree baseline (section 2.2).
//
// The conventional PMR quadtree with the probabilistic splitting rule: a
// line is inserted into every block it intersects; a block whose occupancy
// then exceeds the splitting threshold is split once -- and only once --
// even if children still exceed the threshold.  Deletion removes a line
// from every block and merges sibling leaves whose combined occupancy drops
// below the threshold (note the asymmetry the paper points out).
//
// This baseline exists to demonstrate the insertion-order dependence
// (Figure 34) that motivates the bucket PMR quadtree, and to check the
// occupancy bound of section 2.2: occupancy <= threshold + depth for
// blocks above the depth cap.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace dps::seq {

class SeqPmr {
 public:
  struct Options {
    double world = 1.0;
    int max_depth = 20;
    std::size_t threshold = 8;  // the splitting threshold
  };

  explicit SeqPmr(const Options& opts) : opts_(opts) {
    Node root;
    root.block = geom::Block::root();
    nodes_.push_back(std::move(root));
  }

  void insert(const geom::Segment& s);

  /// Removes every q-edge with this id; merges underflowing sibling sets.
  void erase(geom::LineId id);

  std::size_t num_nodes() const;  // live nodes (erase may orphan records)
  std::size_t num_qedges() const;
  int height() const;
  std::size_t max_leaf_occupancy() const;

  /// Max over leaves of (occupancy - depth); the section 2.2 bound says
  /// this never exceeds the threshold for leaves above the depth cap.
  std::size_t max_occupancy_minus_depth() const;

  /// Same leaf-decomposition format as core::QuadTree::fingerprint().
  std::string fingerprint() const;

 private:
  struct Node {
    geom::Block block;
    std::int32_t parent = -1;
    std::int32_t child[4] = {-1, -1, -1, -1};
    bool is_leaf = true;
    bool dead = false;  // removed by a merge
    std::vector<geom::Segment> edges;
  };

  void insert_into(std::int32_t node, const geom::Segment& s);
  void split_once(std::int32_t node);
  void try_merge(std::int32_t parent);
  void for_each_live_leaf(const std::function<void(const Node&)>& f) const;

  Options opts_;
  std::vector<Node> nodes_;
};

}  // namespace dps::seq
