#include "seq/seq_pm1.hpp"

#include <algorithm>
#include <sstream>

#include "geom/predicates.hpp"

namespace dps::seq {

bool SeqPm1::violates_rule(const geom::Block& block,
                           const std::vector<geom::Segment>& edges,
                           double world, prim::PmVariant variant) {
  if (edges.empty()) return false;
  int min_eps = 2;
  geom::Rect ep_box = geom::Rect::empty();
  for (const auto& s : edges) {
    int eps = 0;
    if (block.contains_vertex(s.a, world)) {
      ++eps;
      ep_box = ep_box.united(geom::Rect::of_point(s.a));
    }
    if (block.contains_vertex(s.b, world)) {
      ++eps;
      ep_box = ep_box.united(geom::Rect::of_point(s.b));
    }
    min_eps = std::min(min_eps, eps);
  }
  const bool no_vertex = ep_box.is_empty();
  const bool one_vertex =
      !no_vertex && ep_box.width() == 0.0 && ep_box.height() == 0.0;
  if (!no_vertex && !one_vertex) return true;  // >= 2 vertices: all variants

  auto incident = [](const geom::Segment& s, const geom::Point& v) {
    return (s.a.x == v.x && s.a.y == v.y) || (s.b.x == v.x && s.b.y == v.y);
  };
  switch (variant) {
    case prim::PmVariant::kPm1:
      if (one_vertex) return min_eps == 0;
      return edges.size() > 1;  // vertex-free: at most one passing q-edge
    case prim::PmVariant::kPm2: {
      if (one_vertex) {
        const geom::Point v{ep_box.xmin, ep_box.ymin};
        for (const auto& s : edges) {
          if (!incident(s, v)) return true;
        }
        return false;
      }
      if (edges.size() <= 1) return false;
      // Vertex-free: all q-edges must share a vertex, which is then in
      // particular an endpoint of the first edge.
      for (const geom::Point cand : {edges[0].a, edges[0].b}) {
        bool all = true;
        for (const auto& s : edges) {
          if (!incident(s, cand)) {
            all = false;
            break;
          }
        }
        if (all) return false;
      }
      return true;
    }
    case prim::PmVariant::kPm3:
      return false;  // at most one vertex is all PM3 asks
  }
  return false;
}

void SeqPm1::insert(const geom::Segment& s) { insert_into(0, s); }

void SeqPm1::insert_into(std::int32_t node, const geom::Segment& s) {
  // Descend into every region of the node the segment properly intersects.
  if (!geom::segment_properly_intersects_rect(
          s, nodes_[node].block.rect(opts_.world))) {
    return;
  }
  if (!nodes_[node].is_leaf) {
    for (int q = 0; q < 4; ++q) {
      std::int32_t c = nodes_[node].child[q];
      if (c == -1) {
        // Materialize the empty quadrant lazily if the segment enters it.
        const geom::Block cb =
            nodes_[node].block.child(static_cast<geom::Quadrant>(q));
        if (!geom::segment_properly_intersects_rect(s,
                                                    cb.rect(opts_.world))) {
          continue;
        }
        c = static_cast<std::int32_t>(nodes_.size());
        nodes_[node].child[q] = c;
        Node child;
        child.block = cb;
        nodes_.push_back(std::move(child));
      }
      insert_into(c, s);
    }
    return;
  }
  nodes_[node].edges.push_back(s);
  // Split while the PM1 rule is violated (split() recursively re-checks).
  if (violates_rule(nodes_[node].block, nodes_[node].edges, opts_.world, opts_.variant)) {
    if (nodes_[node].block.depth >= opts_.max_depth) {
      depth_limited_ = true;
    } else {
      split(node);
    }
  }
}

void SeqPm1::split(std::int32_t node) {
  std::vector<geom::Segment> edges = std::move(nodes_[node].edges);
  nodes_[node].edges.clear();
  nodes_[node].is_leaf = false;
  const geom::Block block = nodes_[node].block;
  for (int q = 0; q < 4; ++q) {
    const geom::Block cb = block.child(static_cast<geom::Quadrant>(q));
    const geom::Rect cr = cb.rect(opts_.world);
    std::vector<geom::Segment> sub;
    for (const auto& s : edges) {
      if (geom::segment_properly_intersects_rect(s, cr)) sub.push_back(s);
    }
    if (sub.empty()) continue;
    const auto c = static_cast<std::int32_t>(nodes_.size());
    nodes_[node].child[q] = c;
    Node child;
    child.block = cb;
    nodes_.push_back(std::move(child));
    nodes_[c].edges = std::move(sub);
    if (violates_rule(cb, nodes_[c].edges, opts_.world, opts_.variant)) {
      if (cb.depth >= opts_.max_depth) {
        depth_limited_ = true;
      } else {
        split(c);
      }
    }
  }
}

std::size_t SeqPm1::num_qedges() const {
  std::size_t n = 0;
  for (const auto& nd : nodes_) n += nd.edges.size();
  return n;
}

int SeqPm1::height() const {
  int h = 0;
  for (const auto& nd : nodes_) h = std::max<int>(h, nd.block.depth);
  return h;
}

std::string SeqPm1::fingerprint() const {
  struct LeafInfo {
    std::uint64_t key;
    std::vector<geom::LineId> ids;
  };
  std::vector<LeafInfo> leaves;
  for (const auto& nd : nodes_) {
    if (!nd.is_leaf || nd.edges.empty()) continue;
    LeafInfo li;
    li.key = nd.block.morton_key();
    for (const auto& s : nd.edges) li.ids.push_back(s.id);
    std::sort(li.ids.begin(), li.ids.end());
    leaves.push_back(std::move(li));
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) { return a.key < b.key; });
  std::ostringstream os;
  for (const auto& li : leaves) {
    os << li.key << ":";
    for (const auto id : li.ids) os << id << ",";
    os << ";";
  }
  return os.str();
}

}  // namespace dps::seq
