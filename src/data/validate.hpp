#pragma once
// Input validation for segment maps.
//
// The builds assume: finite coordinates inside the world square, unique
// line ids, and -- for PM1/PM2 -- planarity (no two segments crossing away
// from a shared vertex).  `check_map` reports violations of the cheap
// invariants; `is_planar` runs the (grid-accelerated) pairwise crossing
// check.  Run these before handing untrusted data to the builds; the
// builds themselves do not re-validate on their hot paths.

#include <cstddef>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace dps::data {

struct MapIssue {
  enum class Kind {
    kNonFinite,       // NaN or infinity in a coordinate
    kOutOfWorld,      // endpoint outside [0, world]^2
    kDuplicateId,     // two lines share an id
    kZeroLength,      // degenerate point segment (legal but noteworthy)
    kCrossing,        // non-planar contact (PM1/PM2 cannot represent it)
  };
  Kind kind;
  geom::LineId line;        // offending line (first of the pair for pairs)
  geom::LineId other = 0;   // the partner for kDuplicateId / kCrossing
  std::string describe() const;
};

/// Checks the cheap per-line invariants (finiteness, bounds, id
/// uniqueness, degeneracy).  Returns every violation found.
std::vector<MapIssue> check_map(const std::vector<geom::Segment>& lines,
                                double world);

/// True when no two segments cross away from a shared endpoint.  On a
/// violation, `first_issue` (when non-null) receives the offending pair.
/// Grid-accelerated: ~O(n) for maps with bounded local density.
bool is_planar(const std::vector<geom::Segment>& lines, double world,
               MapIssue* first_issue = nullptr);

}  // namespace dps::data
