#include "data/mapgen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "geom/predicates.hpp"

namespace dps::data {

namespace {

// Clamps a point strictly inside the world square (keeps generators from
// producing vertices exactly on the outer border).
geom::Point clamp_in(geom::Point p, double world) {
  const double margin = world * 1e-6;
  p.x = std::clamp(p.x, margin, world - margin);
  p.y = std::clamp(p.y, margin, world - margin);
  return p;
}

}  // namespace

std::vector<geom::Segment> planar_segments(std::size_t n, double world,
                                           double mean_len,
                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, world);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  std::exponential_distribution<double> len(1.0 / mean_len);

  // Uniform-grid index over accepted segments for the crossing test.
  const double max_len = std::min(mean_len * 6.0, world * 0.25);
  const std::size_t cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(world / max_len));
  const double cell = world / static_cast<double>(cells);
  std::vector<std::vector<std::uint32_t>> grid(cells * cells);
  std::vector<geom::Segment> out;
  out.reserve(n);
  auto cell_range = [&](double lo, double hi) {
    const auto a = static_cast<std::size_t>(
        std::clamp(lo / cell, 0.0, double(cells - 1)));
    const auto b = static_cast<std::size_t>(
        std::clamp(hi / cell, 0.0, double(cells - 1)));
    return std::pair{a, b};
  };

  std::size_t attempts = 0;
  const std::size_t max_attempts = n * 64 + 1024;
  while (out.size() < n && attempts++ < max_attempts) {
    const geom::Point mid{pos(rng), pos(rng)};
    const double a = ang(rng);
    const double l = std::min(len(rng), max_len) * 0.5;
    const geom::Segment cand{
        clamp_in(mid - geom::Point{std::cos(a) * l, std::sin(a) * l}, world),
        clamp_in(mid + geom::Point{std::cos(a) * l, std::sin(a) * l}, world),
        static_cast<geom::LineId>(out.size())};
    const geom::Rect bb = cand.bbox();
    const auto [x0, x1] = cell_range(bb.xmin, bb.xmax);
    const auto [y0, y1] = cell_range(bb.ymin, bb.ymax);
    bool crosses = false;
    for (std::size_t cy = y0; cy <= y1 && !crosses; ++cy) {
      for (std::size_t cx = x0; cx <= x1 && !crosses; ++cx) {
        for (const auto idx : grid[cy * cells + cx]) {
          if (geom::segments_intersect(cand, out[idx])) {
            crosses = true;
            break;
          }
        }
      }
    }
    if (crosses) continue;
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        grid[cy * cells + cx].push_back(
            static_cast<std::uint32_t>(out.size()));
      }
    }
    out.push_back(cand);
  }
  return out;
}

std::vector<geom::Segment> planar_roads(std::size_t n, double world,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Coarse grid sized so highways take ~25% of the budget.
  std::size_t coarse = 2;
  while (2 * (coarse + 1) * (coarse + 1) < n / 4) ++coarse;
  const double spacing = world / static_cast<double>(coarse + 1);
  std::vector<geom::Segment> out =
      road_grid(coarse, coarse, world, spacing * 0.2, seed);

  // Local grids strictly inside random coarse cells (the regions between
  // adjacent junction rows/columns; the margin keeps them clear of the
  // jittered coarse streets).  Each cell hosts at most one local grid so
  // local grids cannot cross each other.
  std::uniform_int_distribution<std::size_t> pick(0, coarse - 1);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<std::uint8_t> used(coarse * coarse, 0);
  std::size_t used_count = 0;
  geom::LineId id = static_cast<geom::LineId>(out.size());
  while (out.size() < n && used_count < coarse * coarse) {
    const std::size_t gx = pick(rng);
    const std::size_t gy = pick(rng);
    if (used[gy * coarse + gx]) continue;
    used[gy * coarse + gx] = 1;
    ++used_count;
    const double cx = (static_cast<double>(gx) + 1.0) * spacing;
    const double cy = (static_cast<double>(gy) + 1.0) * spacing;
    const double margin = spacing * 0.28;
    const double x0 = cx - spacing * 0.5 + margin;
    const double y0 = cy - spacing * 0.5 + margin;
    const double span = spacing - 2.0 * margin;
    const std::size_t k = 2 + static_cast<std::size_t>(u01(rng) * 3.0);
    const double step = span / static_cast<double>(k);
    // A small (k+1)^2 jittered lattice of local streets.
    std::vector<geom::Point> pts((k + 1) * (k + 1));
    std::uniform_real_distribution<double> jit(-step * 0.2, step * 0.2);
    for (std::size_t r = 0; r <= k; ++r) {
      for (std::size_t c = 0; c <= k; ++c) {
        pts[r * (k + 1) + c] =
            geom::Point{x0 + static_cast<double>(c) * step + jit(rng),
                        y0 + static_cast<double>(r) * step + jit(rng)};
      }
    }
    for (std::size_t r = 0; r <= k; ++r) {
      for (std::size_t c = 0; c <= k; ++c) {
        if (c < k) {
          out.push_back(
              geom::Segment{pts[r * (k + 1) + c], pts[r * (k + 1) + c + 1],
                            id++});
        }
        if (r < k) {
          out.push_back(
              geom::Segment{pts[r * (k + 1) + c], pts[(r + 1) * (k + 1) + c],
                            id++});
        }
      }
    }
  }
  return out;
}

void reassign_ids(std::vector<geom::Segment>& segs) {
  for (std::size_t i = 0; i < segs.size(); ++i) {
    segs[i].id = static_cast<geom::LineId>(i);
  }
}

std::vector<geom::Segment> uniform_segments(std::size_t n, double world,
                                            double mean_len,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, world);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  std::exponential_distribution<double> len(1.0 / mean_len);
  std::vector<geom::Segment> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point mid{pos(rng), pos(rng)};
    const double a = ang(rng);
    const double l = std::min(len(rng), world * 0.5) * 0.5;
    const geom::Point d{std::cos(a) * l, std::sin(a) * l};
    out.push_back(geom::Segment{clamp_in(mid - d, world),
                                clamp_in(mid + d, world),
                                static_cast<geom::LineId>(i)});
  }
  return out;
}

std::vector<geom::Segment> road_grid(std::size_t rows, std::size_t cols,
                                     double world, double jitter,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jit(-jitter, jitter);
  const double dx = world / static_cast<double>(cols + 1);
  const double dy = world / static_cast<double>(rows + 1);
  // Jittered junction lattice.
  std::vector<geom::Point> junction((rows + 1) * (cols + 1));
  for (std::size_t r = 0; r <= rows; ++r) {
    for (std::size_t c = 0; c <= cols; ++c) {
      junction[r * (cols + 1) + c] = clamp_in(
          geom::Point{(static_cast<double>(c) + 0.5) * dx + jit(rng),
                      (static_cast<double>(r) + 0.5) * dy + jit(rng)},
          world);
    }
  }
  std::vector<geom::Segment> out;
  geom::LineId id = 0;
  for (std::size_t r = 0; r <= rows; ++r) {
    for (std::size_t c = 0; c <= cols; ++c) {
      const geom::Point& p = junction[r * (cols + 1) + c];
      if (c < cols) {
        out.push_back(geom::Segment{p, junction[r * (cols + 1) + c + 1], id++});
      }
      if (r < rows) {
        out.push_back(
            geom::Segment{p, junction[(r + 1) * (cols + 1) + c], id++});
      }
    }
  }
  return out;
}

std::vector<geom::Segment> hierarchical_roads(std::size_t n, double world,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, world * 0.02);
  std::vector<geom::Segment> out;
  geom::LineId id = 0;

  // Highways: polylines crossing the world, ~10% of the segment budget.
  const std::size_t highway_segments = std::max<std::size_t>(4, n / 10);
  const std::size_t per_highway = 16;
  const std::size_t highways =
      std::max<std::size_t>(1, highway_segments / per_highway);
  std::vector<geom::Point> junctions;
  for (std::size_t h = 0; h < highways; ++h) {
    const bool horizontal = (h % 2) == 0;
    const double lane = world * u01(rng);
    geom::Point prev = horizontal ? geom::Point{0.0, lane}
                                  : geom::Point{lane, 0.0};
    prev = clamp_in(prev, world);
    for (std::size_t s = 1; s <= per_highway; ++s) {
      const double t = static_cast<double>(s) / per_highway * world;
      geom::Point next = horizontal
                             ? geom::Point{t, lane + gauss(rng)}
                             : geom::Point{lane + gauss(rng), t};
      next = clamp_in(next, world);
      out.push_back(geom::Segment{prev, next, id++});
      junctions.push_back(next);
      prev = next;
    }
  }

  // Local streets: short segments clustered around highway junctions, with
  // ~30% chance of chaining off the previous street's endpoint (shared
  // vertices, as in real street networks).
  std::uniform_int_distribution<std::size_t> pick(0, junctions.size() - 1);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  geom::Point chain{};
  bool have_chain = false;
  while (out.size() < n) {
    geom::Point from;
    if (have_chain && u01(rng) < 0.3) {
      from = chain;
    } else {
      const geom::Point j = junctions[pick(rng)];
      from = clamp_in(geom::Point{j.x + gauss(rng) * 4.0,
                                  j.y + gauss(rng) * 4.0},
                      world);
    }
    const double a = ang(rng);
    const double len = world * (0.002 + 0.01 * u01(rng));
    const geom::Point to = clamp_in(
        geom::Point{from.x + std::cos(a) * len, from.y + std::sin(a) * len},
        world);
    out.push_back(geom::Segment{from, to, id++});
    chain = to;
    have_chain = true;
  }
  return out;
}

std::vector<geom::Segment> clustered_segments(std::size_t n, std::size_t k,
                                              double sigma, double world,
                                              double mean_len,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(world * 0.1, world * 0.9);
  std::normal_distribution<double> off(0.0, sigma);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  std::exponential_distribution<double> len(1.0 / mean_len);
  std::vector<geom::Point> centers(std::max<std::size_t>(k, 1));
  for (auto& c : centers) c = geom::Point{pos(rng), pos(rng)};
  std::uniform_int_distribution<std::size_t> pick(0, centers.size() - 1);
  std::vector<geom::Segment> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point& c = centers[pick(rng)];
    const geom::Point mid =
        clamp_in(geom::Point{c.x + off(rng), c.y + off(rng)}, world);
    const double a = ang(rng);
    const double l = std::min(len(rng), world * 0.25) * 0.5;
    out.push_back(geom::Segment{
        clamp_in(geom::Point{mid.x - std::cos(a) * l, mid.y - std::sin(a) * l},
                 world),
        clamp_in(geom::Point{mid.x + std::cos(a) * l, mid.y + std::sin(a) * l},
                 world),
        static_cast<geom::LineId>(i)});
  }
  return out;
}

std::vector<geom::Segment> star_burst(std::size_t k, geom::Point center,
                                      double radius, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jitter(0.7, 1.0);
  std::vector<geom::Segment> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double a =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(k);
    const double r = radius * jitter(rng);
    out.push_back(geom::Segment{
        center,
        geom::Point{center.x + std::cos(a) * r, center.y + std::sin(a) * r},
        static_cast<geom::LineId>(i)});
  }
  return out;
}

std::vector<geom::Segment> polygon_ring(std::size_t n, geom::Point center,
                                        double radius) {
  std::vector<geom::Segment> out;
  out.reserve(n);
  auto vertex = [&](std::size_t i) {
    const double a =
        2.0 * std::numbers::pi * static_cast<double>(i % n) / static_cast<double>(n);
    return geom::Point{center.x + std::cos(a) * radius,
                       center.y + std::sin(a) * radius};
  };
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        geom::Segment{vertex(i), vertex(i + 1), static_cast<geom::LineId>(i)});
  }
  return out;
}

std::vector<geom::Segment> close_vertices_pair(double world, double eps) {
  // Line a spans the lower-left region; line b's vertex sits `eps` away
  // from one of a's vertices (Figure 2b).
  const geom::Point pa1{world * 0.20, world * 0.30};
  const geom::Point pa2{world * 0.45, world * 0.55};
  const geom::Point pb1{pa2.x + eps, pa2.y - eps};
  const geom::Point pb2{world * 0.80, world * 0.25};
  return {geom::Segment{pa1, pa2, 0}, geom::Segment{pb1, pb2, 1}};
}

}  // namespace dps::data
