#include "data/validate.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geom/predicates.hpp"

namespace dps::data {

std::string MapIssue::describe() const {
  switch (kind) {
    case Kind::kNonFinite:
      return "line " + std::to_string(line) + ": non-finite coordinate";
    case Kind::kOutOfWorld:
      return "line " + std::to_string(line) + ": endpoint outside the world";
    case Kind::kDuplicateId:
      return "lines share id " + std::to_string(line);
    case Kind::kZeroLength:
      return "line " + std::to_string(line) + ": zero-length segment";
    case Kind::kCrossing:
      return "lines " + std::to_string(line) + " and " +
             std::to_string(other) + " cross away from a shared vertex";
  }
  return "unknown issue";
}

std::vector<MapIssue> check_map(const std::vector<geom::Segment>& lines,
                                double world) {
  std::vector<MapIssue> issues;
  std::unordered_map<geom::LineId, std::size_t> seen;
  for (const auto& s : lines) {
    const double coords[] = {s.a.x, s.a.y, s.b.x, s.b.y};
    bool finite = true;
    for (const double c : coords) finite &= std::isfinite(c);
    if (!finite) {
      issues.push_back({MapIssue::Kind::kNonFinite, s.id});
      continue;
    }
    const geom::Rect w{0.0, 0.0, world, world};
    if (!w.contains(s.a) || !w.contains(s.b)) {
      issues.push_back({MapIssue::Kind::kOutOfWorld, s.id});
    }
    if (s.a == s.b) {
      issues.push_back({MapIssue::Kind::kZeroLength, s.id});
    }
    const auto [it, inserted] = seen.try_emplace(s.id, 0);
    if (!inserted) {
      issues.push_back({MapIssue::Kind::kDuplicateId, s.id, s.id});
    }
  }
  return issues;
}

bool is_planar(const std::vector<geom::Segment>& lines, double world,
               MapIssue* first_issue) {
  // Uniform grid over segment bboxes; compare only within shared cells.
  double max_len = world / 64.0;
  for (const auto& s : lines) max_len = std::max(max_len, s.length());
  const std::size_t cells = std::max<std::size_t>(
      1, static_cast<std::size_t>(world / std::max(max_len, 1e-9)));
  const double cell = world / static_cast<double>(cells);
  std::vector<std::vector<std::uint32_t>> grid(cells * cells);
  auto clamp_cell = [&](double v) {
    return static_cast<std::size_t>(
        std::clamp(v / cell, 0.0, static_cast<double>(cells - 1)));
  };
  auto shares_vertex = [](const geom::Segment& s, const geom::Segment& t) {
    return s.a == t.a || s.a == t.b || s.b == t.a || s.b == t.b;
  };
  for (std::uint32_t i = 0; i < lines.size(); ++i) {
    const geom::Rect bb = lines[i].bbox();
    const std::size_t x0 = clamp_cell(bb.xmin), x1 = clamp_cell(bb.xmax);
    const std::size_t y0 = clamp_cell(bb.ymin), y1 = clamp_cell(bb.ymax);
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        for (const auto j : grid[cy * cells + cx]) {
          if (!geom::segments_intersect(lines[i], lines[j])) continue;
          if (shares_vertex(lines[i], lines[j])) continue;
          if (first_issue != nullptr) {
            *first_issue = {MapIssue::Kind::kCrossing, lines[j].id,
                            lines[i].id};
          }
          return false;
        }
      }
    }
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        grid[cy * cells + cx].push_back(i);
      }
    }
  }
  return true;
}

}  // namespace dps::data
