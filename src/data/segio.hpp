#pragma once
// Plain-text segment map IO.
//
// Format: one segment per line, `id x1 y1 x2 y2`, '#' comments and blank
// lines ignored.  Round-trips through doubles with %.17g precision.

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace dps::data {

/// Writes `segs` to `os`; throws std::runtime_error on stream failure.
void write_segments(std::ostream& os, const std::vector<geom::Segment>& segs);

/// Parses a segment map; throws std::runtime_error with a line number on
/// malformed input.
std::vector<geom::Segment> read_segments(std::istream& is);

/// File convenience wrappers.
void save_segments(const std::string& path,
                   const std::vector<geom::Segment>& segs);
std::vector<geom::Segment> load_segments(const std::string& path);

}  // namespace dps::data
