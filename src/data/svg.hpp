#pragma once
// SVG export of maps and decompositions.
//
// Renders what the paper's figures show: the line map, quadtree block
// boundaries, and R-tree bounding rectangles (nested, semi-transparent).
// Output is plain SVG 1.1; world coordinates are flipped so y grows
// upward, matching the library's convention.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/quadtree.hpp"
#include "core/rtree.hpp"
#include "geom/geom.hpp"

namespace dps::data {

struct SvgOptions {
  double pixels = 800.0;        // rendered size of the world square
  bool draw_blocks = true;      // quadtree leaf boundaries
  bool draw_segments = true;
  bool label_leaves = false;    // block depth:(x,y) labels
};

/// The raw segment map over a world square.
void write_svg(std::ostream& os, const std::vector<geom::Segment>& lines,
               double world, const SvgOptions& opts = {});

/// A quadtree decomposition (leaf block outlines) with its q-edges.
void write_svg(std::ostream& os, const core::QuadTree& tree,
               const SvgOptions& opts = {});

/// An R-tree: nested node MBRs (opacity by depth) plus the entries.
void write_svg(std::ostream& os, const core::RTree& tree, double world,
               const SvgOptions& opts = {});

/// File convenience wrappers (throw std::runtime_error on IO failure).
void save_svg(const std::string& path,
              const std::vector<geom::Segment>& lines, double world,
              const SvgOptions& opts = {});
void save_svg(const std::string& path, const core::QuadTree& tree,
              const SvgOptions& opts = {});
void save_svg(const std::string& path, const core::RTree& tree, double world,
              const SvgOptions& opts = {});

}  // namespace dps::data
