#pragma once
// The canonical 9-segment example dataset.
//
// The paper's running example (Figures 1, 3, 4, 5, 30-33, 35-38, 39-44) is
// a map of nine line segments labeled a-i on an 8x8 world in which segments
// c, d and i share a common endpoint and segment i spans the map
// diagonally.  The original coordinates were never published, so this is a
// faithful reconstruction with the same qualitative features; the
// experiment index (EXPERIMENTS.md) records the decompositions our
// coordinates produce.  Ids 0..8 correspond to labels a..i.

#include <vector>

#include "geom/geom.hpp"

namespace dps::data {

inline constexpr double kCanonicalWorld = 8.0;
inline constexpr int kCanonicalMaxDepth = 3;  // 8x8 world, 1x1 cells

/// The nine segments a..i (ids 0..8).
std::vector<geom::Segment> canonical_dataset();

/// Label of a canonical line id: 0 -> 'a', ..., 8 -> 'i'.
char canonical_label(geom::LineId id);

}  // namespace dps::data
