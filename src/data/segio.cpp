#include "data/segio.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dps::data {

void write_segments(std::ostream& os, const std::vector<geom::Segment>& segs) {
  os << "# dpspatial segment map: id x1 y1 x2 y2\n";
  char buf[160];
  for (const auto& s : segs) {
    std::snprintf(buf, sizeof(buf), "%u %.17g %.17g %.17g %.17g\n", s.id,
                  s.a.x, s.a.y, s.b.x, s.b.y);
    os << buf;
  }
  if (!os) throw std::runtime_error("write_segments: stream failure");
}

std::vector<geom::Segment> read_segments(std::istream& is) {
  std::vector<geom::Segment> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    geom::Segment s;
    if (!(ls >> s.id >> s.a.x >> s.a.y >> s.b.x >> s.b.y)) {
      throw std::runtime_error("read_segments: malformed line " +
                               std::to_string(lineno));
    }
    out.push_back(s);
  }
  return out;
}

void save_segments(const std::string& path,
                   const std::vector<geom::Segment>& segs) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_segments: cannot open " + path);
  write_segments(f, segs);
}

std::vector<geom::Segment> load_segments(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_segments: cannot open " + path);
  return read_segments(f);
}

}  // namespace dps::data
