#include "data/canonical.hpp"

namespace dps::data {

std::vector<geom::Segment> canonical_dataset() {
  // Reconstructed on the 8x8 world:
  //  * a crosses the NW/NE boundary high in the map;
  //  * b descends through the NE quadrant across the center horizontal;
  //  * c, d, i share the junction vertex J = (2.1, 4.9) in the NW quadrant;
  //  * i runs from J across the center to the SE quadrant;
  //  * e, f populate the SW quadrant; g, h the SE quadrant.
  const geom::Point j{2.1, 4.9};
  return {
      geom::Segment{{1.2, 7.5}, {4.6, 6.0}, 0},  // a
      geom::Segment{{5.2, 7.2}, {6.8, 3.4}, 1},  // b
      geom::Segment{{0.6, 5.4}, j, 2},           // c
      geom::Segment{j, {3.4, 5.8}, 3},           // d
      geom::Segment{{0.8, 2.9}, {2.2, 1.5}, 4},  // e
      geom::Segment{{3.1, 2.4}, {3.9, 0.6}, 5},  // f
      geom::Segment{{5.1, 2.6}, {6.1, 3.4}, 6},  // g
      geom::Segment{{6.4, 1.9}, {7.5, 1.1}, 7},  // h
      geom::Segment{j, {6.9, 0.8}, 8},           // i
  };
}

char canonical_label(geom::LineId id) {
  return id <= 8 ? static_cast<char>('a' + id) : '?';
}

}  // namespace dps::data
