#pragma once
// Umbrella header for the dataset generators and IO.

#include "data/canonical.hpp"  // IWYU pragma: export
#include "data/mapgen.hpp"     // IWYU pragma: export
#include "data/segio.hpp"      // IWYU pragma: export
#include "data/svg.hpp"        // IWYU pragma: export
#include "data/validate.hpp"   // IWYU pragma: export
