#include "data/svg.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace dps::data {

namespace {

class SvgWriter {
 public:
  SvgWriter(std::ostream& os, double world, double pixels)
      : os_(os), scale_(pixels / world), world_(world), pixels_(pixels) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
                  "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
                  pixels_, pixels_, pixels_, pixels_);
    os_ << buf
        << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  }

  double x(double v) const { return v * scale_; }
  double y(double v) const { return pixels_ - v * scale_; }  // y grows up

  void line(const geom::Point& a, const geom::Point& b, const char* stroke,
            double width) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" "
                  "stroke=\"%s\" stroke-width=\"%.2f\"/>\n",
                  x(a.x), y(a.y), x(b.x), y(b.y), stroke, width);
    os_ << buf;
  }

  void rect(const geom::Rect& r, const char* stroke, const char* fill,
            double width, double fill_opacity) {
    char buf[260];
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"%.2f\" stroke=\"%s\" fill=\"%s\" "
                  "stroke-width=\"%.2f\" fill-opacity=\"%.2f\"/>\n",
                  x(r.xmin), y(r.ymax), (r.xmax - r.xmin) * scale_,
                  (r.ymax - r.ymin) * scale_, stroke, fill, width,
                  fill_opacity);
    os_ << buf;
  }

  void text(const geom::Point& at, const std::string& s) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "<text x=\"%.2f\" y=\"%.2f\" font-size=\"9\" "
                  "fill=\"gray\">%s</text>\n",
                  x(at.x), y(at.y), s.c_str());
    os_ << buf;
  }

  void finish() { os_ << "</svg>\n"; }

 private:
  std::ostream& os_;
  double scale_;
  double world_;
  double pixels_;
};

void draw_segments(SvgWriter& w, const std::vector<geom::Segment>& lines) {
  for (const auto& s : lines) w.line(s.a, s.b, "crimson", 1.2);
}

}  // namespace

void write_svg(std::ostream& os, const std::vector<geom::Segment>& lines,
               double world, const SvgOptions& opts) {
  SvgWriter w(os, world, opts.pixels);
  if (opts.draw_segments) draw_segments(w, lines);
  w.finish();
}

void write_svg(std::ostream& os, const core::QuadTree& tree,
               const SvgOptions& opts) {
  SvgWriter w(os, tree.world(), opts.pixels);
  if (opts.draw_blocks) {
    for (const auto& nd : tree.nodes()) {
      if (!nd.is_leaf) continue;
      w.rect(nd.block.rect(tree.world()), "steelblue", "none", 0.6, 0.0);
      if (opts.label_leaves) {
        w.text(nd.block.center(tree.world()), nd.block.to_string());
      }
    }
  }
  if (opts.draw_segments) {
    for (const auto& s : tree.edges()) w.line(s.a, s.b, "crimson", 1.2);
  }
  w.finish();
}

void write_svg(std::ostream& os, const core::RTree& tree, double world,
               const SvgOptions& opts) {
  SvgWriter w(os, world, opts.pixels);
  if (opts.draw_blocks) {
    for (const auto& nd : tree.nodes()) {
      w.rect(nd.mbr, nd.is_leaf ? "seagreen" : "darkorange", "none",
             nd.is_leaf ? 0.6 : 1.0, 0.0);
    }
  }
  if (opts.draw_segments) {
    for (const auto& s : tree.entries()) w.line(s.a, s.b, "crimson", 1.0);
  }
  w.finish();
}

namespace {

template <typename F>
void save_with(const std::string& path, F&& write) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_svg: cannot open " + path);
  write(f);
  if (!f) throw std::runtime_error("save_svg: write failure on " + path);
}

}  // namespace

void save_svg(const std::string& path,
              const std::vector<geom::Segment>& lines, double world,
              const SvgOptions& opts) {
  save_with(path, [&](std::ostream& os) { write_svg(os, lines, world, opts); });
}

void save_svg(const std::string& path, const core::QuadTree& tree,
              const SvgOptions& opts) {
  save_with(path, [&](std::ostream& os) { write_svg(os, tree, opts); });
}

void save_svg(const std::string& path, const core::RTree& tree, double world,
              const SvgOptions& opts) {
  save_with(path, [&](std::ostream& os) { write_svg(os, tree, world, opts); });
}

}  // namespace dps::data
