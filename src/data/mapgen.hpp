#pragma once
// Deterministic synthetic map generators.
//
// The paper's companion evaluations used GIS line maps (roads, utilities,
// railways).  Those datasets are not available offline, so these generators
// synthesize maps with the statistical properties the spatial structures
// react to: mostly short edges, spatially varying density, and shared
// endpoints (polylines/junctions) that exercise the PM1 vertex rule.  All
// generators are pure functions of their seed.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace dps::data {

/// n independent segments: uniform midpoint, uniform direction, exponential
/// length around `mean_len`, clipped to lie strictly inside (0, world).
std::vector<geom::Segment> uniform_segments(std::size_t n, double world,
                                            double mean_len,
                                            std::uint64_t seed);

/// A perturbed street grid: (rows+1) x (cols+1) jittered junctions joined by
/// horizontal and vertical street segments.  Adjacent streets share their
/// junction vertices -- the common-vertex case of the PM1 rule.
std::vector<geom::Segment> road_grid(std::size_t rows, std::size_t cols,
                                     double world, double jitter,
                                     std::uint64_t seed);

/// TIGER-like hierarchical road map: a few long polyline "highways" spanning
/// the world plus short local streets clustered around highway vertices.
/// Produces roughly `n` segments.
std::vector<geom::Segment> hierarchical_roads(std::size_t n, double world,
                                              std::uint64_t seed);

/// Segments whose midpoints form `k` Gaussian clusters (sigma in world
/// units); models the dense-downtown / sparse-rural mix of real maps.
std::vector<geom::Segment> clustered_segments(std::size_t n, std::size_t k,
                                              double sigma, double world,
                                              double mean_len,
                                              std::uint64_t seed);

/// k segments sharing one common endpoint (a junction star): the
/// max==min==1, single-vertex case the PM1 rule must NOT split.
std::vector<geom::Segment> star_burst(std::size_t k, geom::Point center,
                                      double radius, std::uint64_t seed);

/// A closed ring of `n` connected segments around `center`.
std::vector<geom::Segment> polygon_ring(std::size_t n, geom::Point center,
                                        double radius);

/// The Figure 2 pathology: two segments whose endpoints are `eps` apart,
/// forcing deep PM1 subdivision.
std::vector<geom::Segment> close_vertices_pair(double world, double eps);

/// n pairwise NON-CROSSING segments (rejection-sampled with a uniform-grid
/// index).  PM1 quadtrees require planar input: two segments crossing away
/// from a shared vertex violate the vertex rule at every depth.  May
/// return fewer than n segments if the density is unsatisfiable; for
/// mean_len << world / sqrt(n) it always reaches n.
std::vector<geom::Segment> planar_segments(std::size_t n, double world,
                                           double mean_len,
                                           std::uint64_t seed);

/// Planar road network: a jittered coarse street grid plus fine local
/// street grids nested strictly inside a fraction of the coarse cells.
/// All contacts are shared junction vertices; no crossings, so the map is
/// valid PM1 input.  Produces roughly `n` segments.
std::vector<geom::Segment> planar_roads(std::size_t n, double world,
                                        std::uint64_t seed);

/// Renumbers ids 0..n-1 (generators compose; call after concatenation).
void reassign_ids(std::vector<geom::Segment>& segs);

}  // namespace dps::data
