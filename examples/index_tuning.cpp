// Index tuning: which structure and parameters fit a workload?
//
// Builds all three structures over the same map at several parameter
// settings and prints a comparison a practitioner could act on: build
// cost, memory proxy (nodes + q-edges), and query cost.  This is the
// section 2.2 threshold trade-off plus the section 1 disjoint-vs-
// non-disjoint trade-off in one table.

#include <chrono>
#include <cstdio>

#include "core/core.hpp"
#include "data/data.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename Tree>
double query_cost_us(const Tree& tree, double world) {
  using namespace dps;
  const int probes = 128;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < probes; ++i) {
    const double x = (i % 12) * world / 12.0 + 1.0;
    const double y = (i / 12) * world / 12.0 + 1.0;
    core::window_query(tree, geom::Rect{x, y, x + world / 80.0,
                                        y + world / 80.0});
  }
  return ms_since(t0) * 1000.0 / probes;
}

}  // namespace

int main() {
  using namespace dps;
  const double world = 2048.0;
  dpv::Context ctx(0);
  const auto map = data::planar_roads(15000, world, 31);
  std::printf("map: %zu road segments\n\n", map.size());
  std::printf("%-22s %10s %8s %9s %10s\n", "index", "build(ms)", "nodes",
              "q-edges", "qry(us)");

  for (const std::size_t cap : {4u, 16u}) {
    core::PmrBuildOptions o;
    o.world = world;
    o.max_depth = 15;
    o.bucket_capacity = cap;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = core::pmr_build(ctx, map, o);
    const double build = ms_since(t0);
    char name[32];
    std::snprintf(name, sizeof(name), "bucket PMR (cap %zu)", cap);
    std::printf("%-22s %10.1f %8zu %9zu %10.1f\n", name, build,
                r.tree.num_nodes(), r.tree.num_qedges(),
                query_cost_us(r.tree, world));
  }
  {
    core::QuadBuildOptions o;
    o.world = world;
    o.max_depth = 20;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = core::pm1_build(ctx, map, o);
    const double build = ms_since(t0);
    std::printf("%-22s %10.1f %8zu %9zu %10.1f\n", "PM1", build,
                r.tree.num_nodes(), r.tree.num_qedges(),
                query_cost_us(r.tree, world));
  }
  for (const std::size_t M : {8u, 32u}) {
    core::RtreeBuildOptions o;
    o.m = M / 4;
    o.M = M;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = core::rtree_build(ctx, map, o);
    const double build = ms_since(t0);
    char name[32];
    std::snprintf(name, sizeof(name), "R-tree (M=%zu)", M);
    std::printf("%-22s %10.1f %8zu %9zu %10.1f\n", name, build,
                r.tree.num_nodes(), r.tree.entries().size(),
                query_cost_us(r.tree, world));
  }
  return 0;
}
