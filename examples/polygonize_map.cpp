// Polygonization: recover polygon boundaries from a bag of line segments.
//
// A cartographic pipeline often receives a map as an unordered segment
// soup.  This example scatters several polygon boundaries and road chains
// into one dataset, shuffles it, and uses the data-parallel polygonization
// (connected components via hooking + pointer jumping) to recover each
// polygon as an ordered vertex ring.

#include <algorithm>
#include <cstdio>
#include <random>

#include "core/polygonize.hpp"
#include "data/data.hpp"
#include "dpv/dpv.hpp"

int main() {
  using namespace dps;
  dpv::Context ctx(0);

  // Compose the scene: five polygon rings of varying size plus road chains.
  std::vector<geom::Segment> scene;
  const struct {
    std::size_t sides;
    geom::Point center;
    double radius;
  } polys[] = {{5, {120, 120}, 40},
               {8, {400, 150}, 60},
               {16, {150, 420}, 55},
               {32, {420, 420}, 70},
               {64, {280, 280}, 35}};
  for (const auto& p : polys) {
    auto ring = data::polygon_ring(p.sides, p.center, p.radius);
    scene.insert(scene.end(), ring.begin(), ring.end());
  }
  const auto roads = data::road_grid(3, 3, 512.0, 2.0, 9);
  scene.insert(scene.end(), roads.begin(), roads.end());
  data::reassign_ids(scene);
  std::shuffle(scene.begin(), scene.end(), std::mt19937_64{42});
  data::reassign_ids(scene);  // ids follow the shuffled order

  std::printf("scene: %zu segments (5 polygons + a street grid), shuffled\n",
              scene.size());

  const core::PolygonizeResult r = core::polygonize(ctx, scene);
  std::printf("connected components: %zu (in %zu label rounds)\n",
              r.num_components, r.rounds);
  std::printf("closed polygon rings recovered: %zu\n", r.rings.size());
  std::vector<std::size_t> sizes;
  for (const auto& ring : r.rings) sizes.push_back(ring.size());
  std::sort(sizes.begin(), sizes.end());
  std::printf("ring sizes:");
  for (const auto s : sizes) std::printf(" %zu", s);
  std::printf(" (expected 5 8 16 32 64)\n");

  const bool ok = sizes == std::vector<std::size_t>{5, 8, 16, 32, 64};
  std::printf("%s\n", ok ? "all polygon boundaries recovered"
                         : "MISMATCH in recovered rings");
  return ok ? 0 : 1;
}
