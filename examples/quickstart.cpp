// Quickstart: build each spatial structure over a synthetic road map and
// run a window query.  This is the 60-second tour of the public API.

#include <cstdio>

#include "core/core.hpp"   // builds, trees, queries
#include "data/data.hpp"   // synthetic map generators
#include "dpv/dpv.hpp"     // the scan-model runtime

int main() {
  using namespace dps;

  // 1. An execution context: serial, or parallel over all hardware lanes.
  dpv::Context ctx(/*num_threads=*/0);

  // 2. A dataset: 5000 road-like line segments in a 1024 x 1024 world.
  const double world = 1024.0;
  const auto roads = data::planar_roads(5000, world, /*seed=*/42);
  std::printf("dataset: %zu segments\n", roads.size());

  // 3. Bucket PMR quadtree -- the paper's workhorse structure.
  core::PmrBuildOptions pmr_opts;
  pmr_opts.world = world;
  pmr_opts.max_depth = 14;
  pmr_opts.bucket_capacity = 8;
  const core::QuadBuildResult pmr = core::pmr_build(ctx, roads, pmr_opts);
  std::printf("bucket PMR: %zu nodes, height %d, %zu q-edges, built in %zu "
              "data-parallel rounds\n",
              pmr.tree.num_nodes(), pmr.tree.height(), pmr.tree.num_qedges(),
              pmr.rounds);

  // 4. PM1 quadtree -- the vertex-based variant.
  core::QuadBuildOptions pm1_opts;
  pm1_opts.world = world;
  pm1_opts.max_depth = 20;
  const core::QuadBuildResult pm1 = core::pm1_build(ctx, roads, pm1_opts);
  std::printf("PM1: %zu nodes, height %d, %zu q-edges\n",
              pm1.tree.num_nodes(), pm1.tree.height(), pm1.tree.num_qedges());

  // 5. R-tree, order (2, 8), with the sweep split of section 4.7.
  core::RtreeBuildOptions rt_opts;
  rt_opts.m = 2;
  rt_opts.M = 8;
  const core::RtreeBuildResult rt = core::rtree_build(ctx, roads, rt_opts);
  std::printf("R-tree: %zu nodes, height %d, valid: %s\n",
              rt.tree.num_nodes(), rt.tree.height(),
              rt.tree.validate().empty() ? "yes" : "NO");

  // 6. The same window query against all three structures.
  const geom::Rect window{200, 200, 360, 320};
  const auto a = core::window_query(pmr.tree, window);
  const auto b = core::window_query(pm1.tree, window);
  const auto c = core::window_query(rt.tree, window);
  std::printf("window [200,200]-[360,320]: %zu lines (all structures agree: "
              "%s)\n",
              a.size(), (a == b && b == c) ? "yes" : "NO");

  // 7. The scan-model cost ledger the builds consumed.
  const dpv::PrimCounters& prims = ctx.counters();
  std::printf("primitive invocations this session: %llu\n",
              static_cast<unsigned long long>(prims.total_invocations()));
  return 0;
}
