// GIS window queries: an interactive-map style workload -- a viewport pans
// across a large line map and every frame asks "which lines are visible?".
//
// Demonstrates the single-window query API, the query statistics, and the
// data-parallel batch query (all frames at once through the scan-model
// duplicate-deletion pipeline of section 4.3).

#include <cstdio>
#include <vector>

#include "core/core.hpp"
#include "data/data.hpp"

int main() {
  using namespace dps;
  const double world = 4096.0;
  dpv::Context ctx(0);

  const auto map = data::clustered_segments(30000, 12, world / 50.0, world,
                                            world / 120.0, 7);
  core::PmrBuildOptions opts;
  opts.world = world;
  opts.max_depth = 15;
  opts.bucket_capacity = 8;
  const core::QuadTree index = core::pmr_build(ctx, map, opts).tree;
  std::printf("indexed %zu segments: %zu nodes, height %d\n", map.size(),
              index.num_nodes(), index.height());

  // A viewport panning diagonally across the map.
  const double view = world / 20.0;
  std::vector<geom::Rect> frames;
  for (int f = 0; f < 60; ++f) {
    const double x = f * (world - view) / 60.0;
    frames.push_back({x, x, x + view, x + view});
  }

  // Per-frame sequential queries with stats.
  std::size_t total_hits = 0, visited = 0;
  for (const auto& frame : frames) {
    core::QueryStats st;
    total_hits += core::window_query(index, frame, &st).size();
    visited += st.nodes_visited;
  }
  std::printf("sequential: %zu frames, %.1f visible lines/frame, "
              "%.1f nodes visited/frame\n",
              frames.size(), double(total_hits) / frames.size(),
              double(visited) / frames.size());

  // The same frames as one data-parallel batch.
  const core::BatchQueryResult batch =
      core::batch_window_query(ctx, index, frames);
  std::size_t batch_hits = 0;
  for (const auto& r : batch.results) batch_hits += r.size();
  std::printf("batch: %zu candidate pairs, %zu hits (%s)\n",
              batch.candidates, batch_hits,
              batch_hits == total_hits ? "matches sequential" : "MISMATCH");
  return batch_hits == total_hits ? 0 : 1;
}
