// Visualization: export a map and its three decompositions as SVG files --
// the closest thing to regenerating the paper's Figures 1, 4 and 5 as
// actual pictures.  Writes four files into the working directory.

#include <cstdio>

#include "core/core.hpp"
#include "data/data.hpp"

int main() {
  using namespace dps;
  dpv::Context ctx(0);
  const double world = 512.0;
  const auto map = data::planar_roads(600, world, 77);
  std::printf("map: %zu segments\n", map.size());

  data::SvgOptions opts;
  opts.pixels = 900.0;

  data::save_svg("map.svg", map, world, opts);

  core::PmrBuildOptions po;
  po.world = world;
  po.max_depth = 10;
  po.bucket_capacity = 6;
  const core::QuadTree pmr = core::pmr_build(ctx, map, po).tree;
  data::save_svg("bucket_pmr.svg", pmr, opts);

  core::QuadBuildOptions qo;
  qo.world = world;
  qo.max_depth = 14;
  const core::QuadTree pm1 = core::pm1_build(ctx, map, qo).tree;
  data::save_svg("pm1.svg", pm1, opts);

  core::RtreeBuildOptions ro;
  const core::RTree rt = core::rtree_build(ctx, map, ro).tree;
  data::save_svg("rtree.svg", rt, world, opts);

  std::printf(
      "wrote map.svg (raw segments), bucket_pmr.svg (%zu nodes),\n"
      "      pm1.svg (%zu nodes), rtree.svg (%zu MBRs)\n",
      pmr.num_nodes(), pm1.num_nodes(), rt.num_nodes());
  return 0;
}
