// Map overlay: the GIS scenario from the paper's introduction -- find every
// place a road crosses a utility line (spatial join / map intersection).
//
// Two synthetic maps are indexed with bucket PMR quadtrees over the same
// world square; the lock-step join prunes candidate pairs by matched
// blocks, and the result is verified against a sampled brute force.

#include <cstdio>

#include "core/core.hpp"
#include "data/data.hpp"
#include "geom/predicates.hpp"

int main() {
  using namespace dps;
  const double world = 2048.0;
  dpv::Context ctx(0);

  const auto roads = data::hierarchical_roads(8000, world, 1);
  const auto pipes = data::road_grid(40, 40, world, 6.0, 2);
  std::printf("roads: %zu segments, utility lines: %zu segments\n",
              roads.size(), pipes.size());

  core::PmrBuildOptions opts;
  opts.world = world;
  opts.max_depth = 14;
  opts.bucket_capacity = 8;
  const core::QuadTree road_idx = core::pmr_build(ctx, roads, opts).tree;
  const core::QuadTree pipe_idx = core::pmr_build(ctx, pipes, opts).tree;

  core::JoinStats stats;
  const auto crossings = core::spatial_join(road_idx, pipe_idx, &stats);
  std::printf("crossings found: %zu\n", crossings.size());
  std::printf("candidate pairs tested: %zu of %zu possible (%.2f%%)\n",
              stats.candidate_pairs, roads.size() * pipes.size(),
              100.0 * double(stats.candidate_pairs) /
                  double(roads.size() * pipes.size()));

  // Show the first few crossings with their geometry.
  std::size_t shown = 0;
  for (const auto& [road_id, pipe_id] : crossings) {
    if (shown++ == 5) break;
    std::printf("  road %u x utility %u\n", road_id, pipe_id);
  }

  // Spot-verify: the join must agree with brute force on a sample of roads.
  std::size_t errors = 0;
  for (std::size_t i = 0; i < roads.size(); i += 97) {
    const auto& r = roads[i];
    std::size_t brute = 0;
    for (const auto& p : pipes) brute += geom::segments_intersect(r, p);
    std::size_t joined = 0;
    for (const auto& [road_id, pipe_id] : crossings) {
      joined += (road_id == r.id);
    }
    errors += (brute != joined);
  }
  std::printf("sampled verification: %s\n",
              errors == 0 ? "all sampled roads agree with brute force"
                          : "MISMATCH");
  return errors == 0 ? 0 : 1;
}
