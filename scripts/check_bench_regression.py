#!/usr/bin/env python3
"""Gate benchmark records produced by the bench binaries.

Batch mode (two args): compares a freshly produced BENCH_batch.json against
the repository's checked-in one on the `seq_over_dp_p50` table (sequential
p50 / data-parallel p50 per kind x index combo -- higher means the dp
pipeline is winning by more).  CI machines are noisy, so only a >25%
relative drop on a combo fails; that is far outside run-to-run jitter and
has only ever meant a real pipeline regression.  Also asserts the fresh
run's `window_rtree_parity_ok` flag, which pins the batch R-tree window
pipeline at >= 0.95x sequential.

Serve mode (one arg, record's "bench" key == "serve"): asserts the S7
mixed read/update acceptance flags computed by bench_serve itself --
`s7.p99_ok` (read p99 under a sustained update stream within 2x of the
read-only baseline, with a small absolute-slack allowance for
scheduler-noise on shared hosts) and `s7.cache_ab.hit_rate_kept_ok`
(delta-scoped invalidation keeps >= 50% of unaffected warm-cache hits;
the full-flush baseline keeps none).  No baseline record is needed: the
bars are absolute properties of the update path, not machine-relative
throughput ratios.

Usage: check_bench_regression.py <fresh.json> [<baseline.json>]
"""

import json
import sys

# A batch-mode combo fails when fresh_ratio < baseline_ratio * (1 - TOLERANCE).
TOLERANCE = 0.25


def check_serve(fresh):
    s7 = fresh.get("s7", {})
    ab = s7.get("cache_ab", {})
    failures = []

    print(f"  s7 read-only p99: {s7.get('read_only_p99_us')} us")
    print(f"  s7 with-updates p99: {s7.get('with_updates_p99_us')} us "
          f"(ratio {s7.get('p99_ratio')})")
    if s7.get("p99_ok") is not True:
        print("  s7.p99_ok: false (want true)")
        failures.append("s7.p99_ok")
    else:
        print("  s7.p99_ok: true")

    if not s7.get("updates_published", 0):
        print("  s7.updates_published: 0 (update stream never ran)")
        failures.append("s7.updates_published")

    print(f"  s7 cache A/B: delta-scoped {ab.get('delta_hit_rate')} vs "
          f"full-flush {ab.get('full_flush_hit_rate')}")
    if ab.get("hit_rate_kept_ok") is not True:
        print("  s7.cache_ab.hit_rate_kept_ok: false (want true)")
        failures.append("s7.cache_ab.hit_rate_kept_ok")
    else:
        print("  s7.cache_ab.hit_rate_kept_ok: true")

    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("OK: serve update-path bars hold")
    return 0


def check_batch(fresh, baseline):
    fresh_ratios = fresh.get("seq_over_dp_p50", {})
    base_ratios = baseline.get("seq_over_dp_p50", {})
    if not fresh_ratios:
        print("FAIL: fresh record has no seq_over_dp_p50 table")
        return 1

    failures = []
    for combo, base in sorted(base_ratios.items()):
        got = fresh_ratios.get(combo)
        if got is None:
            # The baseline may predate a combo rename; a missing combo is
            # reported but the floor only applies to ones both records have.
            print(f"  skip {combo}: not in fresh record")
            continue
        floor = base * (1.0 - TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"  {combo}: fresh {got:.3f} vs baseline {base:.3f} "
              f"(floor {floor:.3f}) {verdict}")
        if got < floor:
            failures.append(combo)

    parity = fresh.get("window_rtree_parity_ok")
    if parity is not True:
        print(f"  window_rtree_parity_ok: {parity!r} (want true)")
        failures.append("window_rtree_parity_ok")
    else:
        print("  window_rtree_parity_ok: true")

    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("OK: no combo regressed beyond tolerance")
    return 0


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        fresh = json.load(f)

    if fresh.get("bench") == "serve":
        if len(argv) == 3:
            print("FAIL: serve mode takes no baseline record")
            return 2
        return check_serve(fresh)

    if len(argv) != 3:
        print("FAIL: batch mode needs <fresh.json> <baseline.json>")
        return 2
    with open(argv[2]) as f:
        baseline = json.load(f)
    return check_batch(fresh, baseline)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
