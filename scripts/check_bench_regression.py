#!/usr/bin/env python3
"""Gate dispatch-relevant benchmark ratios against the checked-in record.

Compares a freshly produced BENCH_batch.json against the repository's
checked-in one on the `seq_over_dp_p50` table (sequential p50 / data-parallel
p50 per kind x index combo -- higher means the dp pipeline is winning by
more).  CI machines are noisy, so only a >25% relative drop on a combo
fails; that is far outside run-to-run jitter and has only ever meant a real
pipeline regression.  Also asserts the fresh run's `window_rtree_parity_ok`
flag, which pins the batch R-tree window pipeline at >= 0.95x sequential.

Usage: check_bench_regression.py <fresh.json> <baseline.json>
"""

import json
import sys

# A combo fails when fresh_ratio < baseline_ratio * (1 - TOLERANCE).
TOLERANCE = 0.25


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        fresh = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    fresh_ratios = fresh.get("seq_over_dp_p50", {})
    base_ratios = baseline.get("seq_over_dp_p50", {})
    if not fresh_ratios:
        print("FAIL: fresh record has no seq_over_dp_p50 table")
        return 1

    failures = []
    for combo, base in sorted(base_ratios.items()):
        got = fresh_ratios.get(combo)
        if got is None:
            # The baseline may predate a combo rename; a missing combo is
            # reported but the floor only applies to ones both records have.
            print(f"  skip {combo}: not in fresh record")
            continue
        floor = base * (1.0 - TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"  {combo}: fresh {got:.3f} vs baseline {base:.3f} "
              f"(floor {floor:.3f}) {verdict}")
        if got < floor:
            failures.append(combo)

    parity = fresh.get("window_rtree_parity_ok")
    if parity is not True:
        print(f"  window_rtree_parity_ok: {parity!r} (want true)")
        failures.append("window_rtree_parity_ok")
    else:
        print("  window_rtree_parity_ok: true")

    if failures:
        print(f"FAIL: {', '.join(failures)}")
        return 1
    print("OK: no combo regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
