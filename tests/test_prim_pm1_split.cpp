// PM1 split-determination tests (section 4.5, Figures 20-22).

#include "prim/pm1_split_test.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dps::prim {
namespace {

// Builds a line set over the four depth-1 quadrants of an 8x8 world,
// reproducing the four cases of Figures 20-22:
//   node NW -- every line has exactly one endpoint inside, endpoints
//              distinct (endpoint MBB is not a point)       -> split;
//   node NE -- a line with both endpoints inside (max EPs 2) -> split;
//   node SW -- a single passing line, no endpoints inside    -> no split;
//   node SE -- three lines sharing the single vertex Z       -> no split.
LineSet figure20_dataset(dpv::Context& ctx) {
  LineSet ls;
  ls.world = 8.0;
  const geom::Block nw{1, 0, 1}, ne{1, 1, 1}, sw{1, 0, 0}, se{1, 1, 0};
  const geom::Point z{6.0, 2.0};  // the shared vertex in SE
  ls.segs = {
      // NW group: endpoints W=(1,5) and X=(2,6) inside, partners outside.
      {{1.0, 5.0}, {5.0, 5.0}, 0},
      {{2.0, 6.0}, {6.0, 6.5}, 1},
      // NE group: both endpoints inside.
      {{5.2, 5.2}, {6.0, 6.8}, 2},
      // SW group: one line passing through, endpoints in NW and SE.
      {{1.0, 4.5}, {4.5, 1.0}, 3},
      // SE group: three lines from Z into other quadrants.
      {z, {5.0, 6.0}, 4},
      {z, {2.0, 3.5}, 5},
      {z, {7.5, 5.0}, 6},
  };
  ls.blocks = {nw, nw, ne, sw, se, se, se};
  ls.seg = {1, 0, 1, 1, 1, 0, 0};
  (void)ctx;
  return ls;
}

TEST(Pm1SplitFigures20to22, FourCasesDecideCorrectly) {
  dpv::Context ctx;
  const LineSet ls = figure20_dataset(ctx);
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  // Endpoint counts per line (Figure 20's EPs row).
  EXPECT_EQ(d.eps, (dpv::Vec<int>{1, 1, 2, 0, 1, 1, 1}));
  // Group verdicts: NW split, NE split, SW keep, SE keep.
  EXPECT_EQ(d.group_split, (dpv::Flags{1, 1, 0, 0}));
  // Broadcast per line.
  EXPECT_EQ(d.elem_split, (dpv::Flags{1, 1, 1, 0, 0, 0, 0}));
}

TEST(Pm1Split, MaxMinBroadcasts) {
  dpv::Context ctx;
  const LineSet ls = figure20_dataset(ctx);
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  EXPECT_EQ(d.max_eps, (dpv::Vec<int>{1, 1, 2, 0, 1, 1, 1}));
  EXPECT_EQ(d.min_eps, (dpv::Vec<int>{1, 1, 2, 0, 1, 1, 1}));
}

TEST(Pm1Split, TwoPassingLinesMustSplit) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block sw{1, 0, 0};
  // Two q-edges passing through SW with no endpoints inside it.
  ls.segs = {{{1.0, 4.5}, {4.5, 1.0}, 0}, {{0.5, 4.2}, {4.2, 0.5}, 1}};
  ls.blocks = {sw, sw};
  ls.seg = {1, 0};
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  EXPECT_EQ(d.group_split, (dpv::Flags{1}));
}

TEST(Pm1Split, VertexPlusPassingLineMustSplit) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block sw{1, 0, 0};
  ls.segs = {{{2.0, 2.0}, {6.0, 2.0}, 0},   // endpoint (2,2) inside SW
             {{0.5, 4.2}, {4.2, 0.5}, 1}};  // passes through
  ls.blocks = {sw, sw};
  ls.seg = {1, 0};
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  EXPECT_EQ(d.max_eps[0], 1);
  EXPECT_EQ(d.min_eps[0], 0);
  EXPECT_EQ(d.group_split, (dpv::Flags{1}));
}

TEST(Pm1Split, SharedVertexStarDoesNotSplit) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block root = geom::Block::root();
  const geom::Point c{3.0, 3.0};
  ls.segs = {{c, {7.0, 3.0}, 0}, {c, {3.0, 7.0}, 1}, {c, {6.5, 6.5}, 2}};
  ls.blocks = {root, root, root};
  ls.seg = {1, 0, 0};
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  // All lines have exactly one endpoint in the node... except both of each
  // line's endpoints are in the root.  eps = 2 -> must split.
  EXPECT_EQ(d.group_split, (dpv::Flags{1}));
}

TEST(Pm1Split, SharedVertexStarAtDepthDoesNotSplit) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block sw{1, 0, 0};  // [0,4) x [0,4)
  const geom::Point c{3.0, 3.0};
  // Far endpoints outside SW; shared vertex inside.
  ls.segs = {{c, {7.0, 3.0}, 0}, {c, {3.0, 7.0}, 1}, {c, {6.5, 6.5}, 2}};
  ls.blocks = {sw, sw, sw};
  ls.seg = {1, 0, 0};
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  EXPECT_EQ(d.group_split, (dpv::Flags{0}));
}

TEST(Pm1Split, SingleLineWithOneEndpointDoesNotSplit) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block sw{1, 0, 0};
  ls.segs = {{{2.0, 2.0}, {6.0, 6.0}, 0}};
  ls.blocks = {sw};
  ls.seg = {1};
  const Pm1SplitDecision d = pm1_split_test(ctx, ls);
  EXPECT_EQ(d.group_split, (dpv::Flags{0}));
}

}  // namespace
}  // namespace dps::prim
