// R-tree split-selection tests (section 4.7, Figures 6 and 29).

#include "prim/rtree_split.hpp"

#include <gtest/gtest.h>

#include "dpv/dpv.hpp"
#include "test_util.hpp"

namespace dps::prim {
namespace {

// Figure 29's four boxes A-D, sorted by left edge: x extents
// A=[10,30] B=[20,50] C=[40,70] D=[60,80].  The y extents separate the
// pairs so the minimal-overlap cut falls between B and C.
dpv::Vec<geom::Rect> figure29_boxes() {
  return {{10, 0, 30, 4}, {20, 0, 50, 4}, {40, 6, 70, 10}, {60, 6, 80, 10}};
}

TEST(RtreeSplitFigure29, PrefixSuffixScansProduceTheFigureRows) {
  dpv::Context ctx;
  const dpv::Vec<geom::Rect> boxes = figure29_boxes();
  dpv::Vec<double> ls = dpv::map(ctx, boxes, [](const geom::Rect& b) {
    return b.xmin;
  });
  dpv::Vec<double> rs = dpv::map(ctx, boxes, [](const geom::Rect& b) {
    return b.xmax;
  });
  // L Bbox left side: upward min inclusive scan of ls = [10 10 10 10].
  EXPECT_EQ(dpv::scan(ctx, dpv::Min<double>{}, ls),
            (dpv::Vec<double>{10, 10, 10, 10}));
  // L Bbox right side: upward max inclusive scan of rs = [30 50 70 80].
  EXPECT_EQ(dpv::scan(ctx, dpv::Max<double>{}, rs),
            (dpv::Vec<double>{30, 50, 70, 80}));
  // R Bbox left side: downward min exclusive scan of ls = [20 40 60 inf].
  const dpv::Vec<double> rleft =
      dpv::scan(ctx, dpv::Min<double>{}, ls, dpv::Dir::kDown,
                dpv::Incl::kExclusive);
  EXPECT_EQ(rleft[0], 20);
  EXPECT_EQ(rleft[1], 40);
  EXPECT_EQ(rleft[2], 60);
  // R Bbox right side: downward max exclusive scan of rs = [80 80 80 -inf].
  const dpv::Vec<double> rright =
      dpv::scan(ctx, dpv::Max<double>{}, rs, dpv::Dir::kDown,
                dpv::Incl::kExclusive);
  EXPECT_EQ(rright[0], 80);
  EXPECT_EQ(rright[1], 80);
  EXPECT_EQ(rright[2], 80);
  // Figure 29's example row for node B: L Bbox = [10, 50], R Bbox = [40, 80].
}

TEST(RtreeSplitSweep, PicksMinimalOverlapCut) {
  dpv::Context ctx;
  const dpv::Vec<geom::Rect> boxes = figure29_boxes();
  const dpv::Flags seg{1, 0, 0, 0};
  const dpv::Flags overflow{1, 1, 1, 1};
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, /*m=*/1,
                                         /*M=*/3, RtreeSplitAlgo::kSweep);
  // {A,B} vs {C,D}: the y-separation makes that cut's overlap zero.
  EXPECT_EQ(r.side, (dpv::Flags{0, 0, 1, 1}));
  ASSERT_EQ(r.group_overlap.size(), 1u);
  EXPECT_DOUBLE_EQ(r.group_overlap[0], 0.0);
}

TEST(RtreeSplitMean, SplitsAtTheMidpointMean) {
  dpv::Context ctx;
  const dpv::Vec<geom::Rect> boxes = figure29_boxes();
  const dpv::Flags seg{1, 0, 0, 0};
  const dpv::Flags overflow{1, 1, 1, 1};
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 1, 3,
                                         RtreeSplitAlgo::kMean);
  // Midpoints 20,35,55,70; mean 45: A,B left, C,D right (x axis); the
  // y axis gives the same partition; either way the sides match.
  EXPECT_EQ(r.side, (dpv::Flags{0, 0, 1, 1}));
}

TEST(RtreeSplitMean, DegenerateGeometryFallsBackToRankSplit) {
  dpv::Context ctx;
  // All boxes identical: means equal midpoints, both axes invalid.
  const dpv::Vec<geom::Rect> boxes(4, geom::Rect{1, 1, 2, 2});
  const dpv::Flags seg{1, 0, 0, 0};
  const dpv::Flags overflow{1, 1, 1, 1};
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 1, 3,
                                         RtreeSplitAlgo::kMean);
  // Balanced rank split: both sides non-empty.
  int left = 0, right = 0;
  for (const auto s : r.side) (s ? right : left)++;
  EXPECT_EQ(left, 2);
  EXPECT_EQ(right, 2);
}

TEST(RtreeSplit, OnlyOverflowingGroupsAreTouched) {
  dpv::Context ctx;
  dpv::Vec<geom::Rect> boxes = figure29_boxes();
  boxes.push_back({0, 0, 1, 1});
  boxes.push_back({2, 2, 3, 3});
  const dpv::Flags seg{1, 0, 0, 0, 1, 0};
  const dpv::Flags overflow{1, 1, 1, 1, 0, 0};
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 1, 3,
                                         RtreeSplitAlgo::kSweep);
  EXPECT_EQ(r.side[4], 0);
  EXPECT_EQ(r.side[5], 0);
}

TEST(RtreeSplitSweep, RespectsMinimumSideFraction) {
  dpv::Context ctx;
  // Nine collinear boxes; with m=2, M=4 each side must get >= 9*2/4 = 4.
  dpv::Vec<geom::Rect> boxes;
  for (int i = 0; i < 9; ++i) {
    boxes.push_back({i * 10.0, 0, i * 10.0 + 5, 5});
  }
  const dpv::Flags seg = dpv::Flags{1, 0, 0, 0, 0, 0, 0, 0, 0};
  const dpv::Flags overflow(9, 1);
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 2, 4,
                                         RtreeSplitAlgo::kSweep);
  int left = 0, right = 0;
  for (const auto s : r.side) (s ? right : left)++;
  EXPECT_GE(left, 4);
  EXPECT_GE(right, 4);
}

TEST(RtreeSplit, MultipleGroupsSplitSimultaneously) {
  dpv::Context ctx = test::make_parallel_context();
  // Group 1: Figure 29's boxes (x-separable).  Group 2: boxes whose x-order
  // interleaves the two y-clusters, so only the y-axis sweep finds the
  // zero-overlap cut {b0, b2} | {b1, b3}.
  dpv::Vec<geom::Rect> boxes = figure29_boxes();
  boxes.push_back({0, 0, 100, 4});
  boxes.push_back({1, 10, 101, 14});
  boxes.push_back({2, 2, 102, 6});
  boxes.push_back({3, 12, 103, 16});
  dpv::Flags seg(8, 0);
  seg[0] = seg[4] = 1;
  const dpv::Flags overflow(8, 1);
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 1, 3,
                                         RtreeSplitAlgo::kSweep);
  EXPECT_EQ(r.side, (dpv::Flags{0, 0, 1, 1, 0, 1, 0, 1}));
  ASSERT_EQ(r.group_axis.size(), 2u);
  EXPECT_EQ(r.group_axis[0], 0);  // x split for Figure 29's boxes
  EXPECT_EQ(r.group_axis[1], 1);  // y split for the interleaved group
  ASSERT_EQ(r.group_overlap.size(), 2u);
  EXPECT_DOUBLE_EQ(r.group_overlap[0], 0.0);
  EXPECT_DOUBLE_EQ(r.group_overlap[1], 0.0);
}

// Figure 6: splits are judged by two different goals -- total covering
// area (coverage) and area common to both nodes (overlap).  We verify both
// metrics are computed as the figure defines them on a concrete partition,
// and that they genuinely measure different things (equal coverage,
// different overlap).
TEST(RtreeSplitFigure6, CoverageAndOverlapMeasureDifferentGoals) {
  // Two long bars stacked with a 0.2 vertical overlap, split either by row
  // or by column.
  const geom::Rect a{0, 0, 10, 1}, b{10, 0, 20, 1};
  const geom::Rect c{0, 0.8, 10, 1.8}, d{10, 0.8, 20, 1.8};
  // Row split {a,b} | {c,d}: coverage 2 x 20, overlap 20 x 0.2.
  const geom::Rect row_lo = a.united(b), row_hi = c.united(d);
  EXPECT_DOUBLE_EQ(row_lo.area() + row_hi.area(), 40.0);
  EXPECT_DOUBLE_EQ(row_lo.overlap_area(row_hi), 4.0);
  // Column split {a,c} | {b,d}: coverage 2 x 18, zero overlap.
  const geom::Rect col_l = a.united(c), col_r = b.united(d);
  EXPECT_DOUBLE_EQ(col_l.area() + col_r.area(), 36.0);
  EXPECT_DOUBLE_EQ(col_l.overlap_area(col_r), 0.0);
  // The section 4.7 sweep chooses by overlap: it must take the column cut.
  dpv::Context ctx;
  const dpv::Vec<geom::Rect> boxes{a, b, c, d};
  const dpv::Flags seg{1, 0, 0, 0};
  const dpv::Flags overflow{1, 1, 1, 1};
  const RtreeSplitResult r = rtree_split(ctx, boxes, seg, overflow, 1, 3,
                                         RtreeSplitAlgo::kSweep);
  EXPECT_EQ(r.side, (dpv::Flags{0, 1, 0, 1}));
  EXPECT_DOUBLE_EQ(r.group_overlap[0], 0.0);
}

}  // namespace
}  // namespace dps::prim
