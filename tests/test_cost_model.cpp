// dpv::CostModel: bucketing, bootstrap priors, convergence, exploration,
// forced coefficients, snapshot/warm round-trips, and the global force
// hook.  Everything here is synthetic -- observations are hand-fed
// microsecond figures, never wall-clock -- so the tests are exact and
// deterministic.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "dpv/cost_model.hpp"

namespace {

using dps::dpv::CostDecision;
using dps::dpv::CostModel;
using dps::dpv::CostModelOptions;
using dps::dpv::CostModelSnapshot;
using dps::dpv::CostPath;
using dps::dpv::GroupShape;
using dps::dpv::merge_snapshot;

GroupShape shape(std::size_t n, std::size_t k = 0) {
  GroupShape g;
  g.kind = 2;
  g.index = 1;
  g.group_size = n;
  g.map_elements = 20000;
  g.mean_k = k;
  return g;
}

/// Options with the deterministic probes disabled, so decisions are pure
/// argmin / prior and the assertions below cannot be perturbed by an
/// explore or refresh tick.
CostModelOptions no_probe_options() {
  CostModelOptions co;
  co.explore_period = 0;
  co.refresh_period = 0;
  return co;
}

/// Feeds `model` enough samples of `path` at size `n` to clear min_samples,
/// each reporting `us_per_query` microseconds per query.
void teach(CostModel& model, const GroupShape& g, CostPath path,
           double us_per_query, int reps = 4) {
  for (int i = 0; i < reps; ++i) {
    model.observe(g, path, us_per_query * static_cast<double>(g.group_size));
  }
}

TEST(CostModel, Log2BucketFloorsAndClamps) {
  EXPECT_EQ(CostModel::log2_bucket(0), 0);
  EXPECT_EQ(CostModel::log2_bucket(1), 0);
  EXPECT_EQ(CostModel::log2_bucket(2), 1);
  EXPECT_EQ(CostModel::log2_bucket(3), 1);
  EXPECT_EQ(CostModel::log2_bucket(4), 2);
  EXPECT_EQ(CostModel::log2_bucket(1023), 9);
  EXPECT_EQ(CostModel::log2_bucket(1024), 10);
  EXPECT_EQ(CostModel::log2_bucket(~std::size_t{0}), 63);
}

TEST(CostModel, CellKeySeparatesFamiliesSizesAndPaths) {
  const GroupShape a = shape(512, 8);
  GroupShape b = a;
  b.index = 2;  // different index kind -> different family
  GroupShape c = a;
  c.group_size = 1024;  // different size bucket, same family
  GroupShape d = a;
  d.mean_k = 32;  // different k bucket -> different family

  EXPECT_NE(CostModel::family_key(a), CostModel::family_key(b));
  EXPECT_NE(CostModel::family_key(a), CostModel::family_key(d));
  EXPECT_EQ(CostModel::family_key(a), CostModel::family_key(c));
  EXPECT_NE(CostModel::cell_key(a, CostPath::kDp),
            CostModel::cell_key(c, CostPath::kDp));
  EXPECT_NE(CostModel::cell_key(a, CostPath::kDp),
            CostModel::cell_key(a, CostPath::kSeq));
  // Same-bucket sizes share a cell (257 and 260 both floor to bucket 8).
  GroupShape e = a;
  e.group_size = 257;
  GroupShape f = a;
  f.group_size = 260;
  EXPECT_EQ(CostModel::cell_key(e, CostPath::kSeq),
            CostModel::cell_key(f, CostPath::kSeq));
}

TEST(CostModel, BootstrapPriorReproducesStaticThreshold) {
  CostModelOptions co = no_probe_options();
  co.bootstrap_min_dp_batch = 8;
  CostModel model(co);
  EXPECT_FALSE(model.decide(shape(7)).use_dp);
  EXPECT_TRUE(model.decide(shape(8)).use_dp);
  EXPECT_TRUE(model.decide(shape(500)).use_dp);
}

TEST(CostModel, AnalyticPriorTakesOverWhenBootstrapIsZero) {
  CostModelOptions co = no_probe_options();
  co.bootstrap_min_dp_batch = 0;
  CostModel model(co);
  // The analytic prior must agree with its own closed form, whatever side
  // that lands on, and monotonically favor dp as groups widen.
  const GroupShape tiny = shape(1);
  const GroupShape huge = shape(100000);
  EXPECT_EQ(model.decide(tiny).use_dp,
            model.analytic_us(tiny, CostPath::kDp) <=
                model.analytic_us(tiny, CostPath::kSeq));
  EXPECT_EQ(model.decide(huge).use_dp,
            model.analytic_us(huge, CostPath::kDp) <=
                model.analytic_us(huge, CostPath::kSeq));
  // A 1-wide group pays the full launch tax per query; it must not beat
  // sequential under the paper's own constants.
  EXPECT_FALSE(model.decide(tiny).use_dp);
}

TEST(CostModel, ConvergesToDpWhenDpMeasuresFaster) {
  CostModel model(no_probe_options());
  const GroupShape g = shape(256);
  teach(model, g, CostPath::kSeq, 10.0);
  teach(model, g, CostPath::kDp, 2.0);
  const CostDecision d = model.decide(g);
  EXPECT_TRUE(d.measured);
  EXPECT_TRUE(d.use_dp);
  EXPECT_LT(d.dp_us, d.seq_us);
}

TEST(CostModel, ConvergesToSeqWhenSeqMeasuresFaster) {
  CostModel model(no_probe_options());
  // Sub-threshold group: the bootstrap prior alone would say sequential,
  // but the point is that measurements override the prior in *both*
  // directions -- here a 64-wide group where dp measured 5x slower.
  const GroupShape g = shape(64);
  teach(model, g, CostPath::kSeq, 2.0);
  teach(model, g, CostPath::kDp, 10.0);
  const CostDecision d = model.decide(g);
  EXPECT_TRUE(d.measured);
  EXPECT_FALSE(d.use_dp);
  EXPECT_LT(d.seq_us, d.dp_us);
}

TEST(CostModel, SequentialEstimateExtrapolatesLinearly) {
  CostModel model(no_probe_options());
  teach(model, shape(64), CostPath::kSeq, 3.0);
  // Never measured at 1024, but sequential cost is linear per query.
  const double est = model.estimate_us(shape(1024), CostPath::kSeq);
  EXPECT_NEAR(est, 3.0 * 1024.0, 1e-6);
}

TEST(CostModel, DpEstimateFitsLaunchPlusMarginalAcrossBuckets) {
  CostModel model(no_probe_options());
  // T = 1000 + 1*n: 1064us at n=64, 1512us at n=512.
  const auto total = [](double n) { return 1000.0 + n; };
  for (int i = 0; i < 4; ++i) {
    model.observe(shape(64), CostPath::kDp, total(64));
    model.observe(shape(512), CostPath::kDp, total(512));
  }
  // The two-bucket least-squares line recovers the launch term, so the
  // unmeasured 4096 bucket extrapolates near 1000 + 4096.
  const double est = model.estimate_us(shape(4096), CostPath::kDp);
  EXPECT_GT(est, 0.8 * total(4096));
  EXPECT_LT(est, 1.2 * total(4096));
}

TEST(CostModel, SingleBucketDpExtrapolationErrsTowardSequential) {
  CostModel model(no_probe_options());
  teach(model, shape(256), CostPath::kDp, 4.0);  // 1024us total at n=256
  // Going down, the launch term cannot shrink: total cost holds.
  EXPECT_NEAR(model.estimate_us(shape(16), CostPath::kDp), 4.0 * 256.0, 1e-6);
  // Going up, per-query cost holds (overestimates the amortized launch).
  EXPECT_NEAR(model.estimate_us(shape(2048), CostPath::kDp), 4.0 * 2048.0,
              1e-6);
}

TEST(CostModel, UnmeasuredPathReportsNegativeEstimate) {
  CostModel model(no_probe_options());
  EXPECT_LT(model.estimate_us(shape(128), CostPath::kDp), 0.0);
  teach(model, shape(128), CostPath::kDp, 1.0, 2);  // below min_samples
  EXPECT_LT(model.estimate_us(shape(128), CostPath::kDp), 0.0);
  model.observe(shape(128), CostPath::kDp, 128.0);  // third sample clears it
  EXPECT_GT(model.estimate_us(shape(128), CostPath::kDp), 0.0);
}

TEST(CostModel, ExplorationProbesTheUnmeasuredSide) {
  CostModelOptions co = no_probe_options();
  co.explore_period = 4;
  CostModel model(co);
  const GroupShape g = shape(500);  // prior says dp
  teach(model, g, CostPath::kDp, 2.0);
  int seq_probes = 0;
  for (int i = 0; i < 16; ++i) {
    const CostDecision d = model.decide(g);
    if (!d.use_dp) {
      EXPECT_TRUE(d.explored);
      ++seq_probes;
    }
  }
  EXPECT_EQ(seq_probes, 4);  // every 4th family decision
}

TEST(CostModel, RefreshReprobesTheMeasuredLoser) {
  CostModelOptions co = no_probe_options();
  co.refresh_period = 8;
  CostModel model(co);
  const GroupShape g = shape(256);
  teach(model, g, CostPath::kSeq, 9.0);
  teach(model, g, CostPath::kDp, 1.0);
  int flips = 0;
  for (int i = 0; i < 16; ++i) {
    const CostDecision d = model.decide(g);
    if (!d.use_dp) {
      EXPECT_TRUE(d.explored);
      ++flips;
    }
  }
  EXPECT_EQ(flips, 2);  // every 8th decision re-runs the loser
}

TEST(CostModel, WarmedCoefficientsDriveDecisions) {
  // Forced-coefficients hook: build a snapshot by training a donor model,
  // then warm a fresh one and check it decides identically with no
  // observations of its own.
  CostModel donor(no_probe_options());
  const GroupShape g = shape(32);
  teach(donor, g, CostPath::kSeq, 1.0);
  teach(donor, g, CostPath::kDp, 50.0);
  ASSERT_FALSE(donor.decide(g).use_dp);

  CostModel fresh(no_probe_options());
  EXPECT_TRUE(fresh.decide(g).use_dp);  // prior: 32 >= 8
  fresh.warm(donor.snapshot());
  const CostDecision d = fresh.decide(g);
  EXPECT_TRUE(d.measured);
  EXPECT_FALSE(d.use_dp);
}

TEST(CostModel, SnapshotRoundTripPreservesEstimates) {
  CostModel a(no_probe_options());
  teach(a, shape(64), CostPath::kSeq, 3.0);
  teach(a, shape(64), CostPath::kDp, 7.0);
  teach(a, shape(1024, 8), CostPath::kDp, 0.5);
  const CostModelSnapshot snap = a.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);

  CostModel b(no_probe_options());
  b.warm(snap);
  for (const auto& g : {shape(64), shape(1024, 8)}) {
    for (const auto p : {CostPath::kSeq, CostPath::kDp}) {
      EXPECT_DOUBLE_EQ(b.estimate_us(g, p), a.estimate_us(g, p));
    }
  }
  // Snapshot keys are sorted (stable serialization).
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].key, snap.entries[i].key);
  }
}

TEST(CostModel, WarmKeepsTheBetterTrainedCell) {
  CostModel model(no_probe_options());
  const GroupShape g = shape(64);
  teach(model, g, CostPath::kSeq, 3.0, 8);  // 8 samples say 3us/q

  CostModelSnapshot stale;
  stale.entries.push_back(
      {CostModel::cell_key(g, CostPath::kSeq), 4, 99.0, 64.0});
  model.warm(stale);  // fewer samples: must not clobber
  EXPECT_NEAR(model.estimate_us(g, CostPath::kSeq), 3.0 * 64.0, 1e-6);

  CostModelSnapshot better;
  better.entries.push_back(
      {CostModel::cell_key(g, CostPath::kSeq), 100, 5.0, 64.0});
  model.warm(better);
  EXPECT_NEAR(model.estimate_us(g, CostPath::kSeq), 5.0 * 64.0, 1e-6);
}

TEST(CostModel, MergeSnapshotIsMoreSamplesWins) {
  CostModelSnapshot a, b;
  a.entries.push_back({1, 10, 2.0, 64.0});
  a.entries.push_back({2, 5, 3.0, 64.0});
  b.entries.push_back({2, 50, 4.0, 128.0});
  b.entries.push_back({3, 1, 9.0, 8.0});
  merge_snapshot(a, b);
  ASSERT_EQ(a.entries.size(), 3u);
  EXPECT_EQ(a.entries[0].key, 1u);
  EXPECT_EQ(a.entries[1].key, 2u);
  EXPECT_EQ(a.entries[1].samples, 50u);  // b's better-trained cell won
  EXPECT_DOUBLE_EQ(a.entries[1].us_per_query, 4.0);
  EXPECT_EQ(a.entries[2].key, 3u);
}

TEST(CostModel, GlobalForcePinsEveryDecision) {
  CostModel model(no_probe_options());
  const GroupShape g = shape(500);
  teach(model, g, CostPath::kSeq, 1.0);
  teach(model, g, CostPath::kDp, 50.0);
  ASSERT_FALSE(model.decide(g).use_dp);

  CostModel::force(CostPath::kDp);
  EXPECT_EQ(CostModel::forced_path(), static_cast<int>(CostPath::kDp));
  EXPECT_TRUE(model.decide(g).use_dp);
  CostModel::force(CostPath::kSeq);
  EXPECT_FALSE(model.decide(shape(100000)).use_dp);
  CostModel::unforce();
  EXPECT_EQ(CostModel::forced_path(), -1);
  EXPECT_FALSE(model.decide(g).use_dp);  // back to the measurements
}

TEST(CostModel, ObserveIgnoresDegenerateSamples) {
  CostModel model(no_probe_options());
  const GroupShape g = shape(64);
  model.observe(shape(0), CostPath::kSeq, 100.0);
  model.observe(g, CostPath::kSeq, -5.0);
  model.observe(g, CostPath::kSeq, std::numeric_limits<double>::quiet_NaN());
  model.observe(g, CostPath::kSeq, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(model.snapshot().empty());
}

}  // namespace
