// Differential serving harness: every answer the QueryEngine produces --
// and every row of the underlying data-parallel batch pipelines -- must be
// byte-identical to the per-request sequential core queries, on seeded
// random workloads across generators, shard counts, thread counts, and
// degradation thresholds (a parameterized sweep in the style of
// Maps/CrossValidate).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "core/core.hpp"
#include "data/data.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace dps {
namespace {

struct ServeCase {
  const char* generator;
  std::size_t n_lines;
  std::size_t n_requests;
  std::uint64_t seed;
  std::size_t shards;
  std::size_t threads;
  std::size_t min_dp_batch;
};

constexpr double kWorld = 1024.0;

std::vector<geom::Segment> make_map(const ServeCase& c) {
  const std::string g = c.generator;
  if (g == "roads") return data::hierarchical_roads(c.n_lines, kWorld, c.seed);
  if (g == "clustered") {
    return data::clustered_segments(c.n_lines, 5, kWorld / 30.0, kWorld, 12.0,
                                    c.seed);
  }
  return data::uniform_segments(c.n_lines, kWorld, 18.0, c.seed);
}

class ServeDifferential : public ::testing::TestWithParam<ServeCase> {
 protected:
  void SetUp() override {
    const ServeCase& c = GetParam();
    lines_ = make_map(c);
    dpv::Context ctx;
    core::PmrBuildOptions po;
    po.world = kWorld;
    po.max_depth = 12;
    po.bucket_capacity = 6;
    quad_ = core::pmr_build(ctx, lines_, po).tree;
    core::RtreeBuildOptions ro;
    ro.m = 2;
    ro.M = 8;
    rtree_ = core::rtree_build(ctx, lines_, ro).tree;
    linear_ = core::LinearQuadTree::from(quad_);
  }

  std::vector<serve::Request> random_requests(std::size_t n,
                                              std::uint64_t seed) const {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
    std::uniform_real_distribution<double> extent(2.0, kWorld / 6.0);
    std::uniform_int_distribution<std::size_t> kdist(1, 8);
    std::uniform_int_distribution<int> kind(0, 9);
    std::uniform_int_distribution<int> index(0, 2);
    std::vector<serve::Request> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto idx = static_cast<serve::IndexKind>(index(rng));
      const int roll = kind(rng);
      if (roll < 5) {  // half the traffic: windows
        const double x = pos(rng), y = pos(rng);
        batch.push_back(serve::Request::window_query(
            idx, {x, y, std::min(kWorld, x + extent(rng)),
                  std::min(kWorld, y + extent(rng))}));
      } else if (roll < 8) {  // points: half on segments, half free
        const geom::Point p = (roll == 5 && !lines_.empty())
                                  ? lines_[i % lines_.size()].mid()
                                  : geom::Point{pos(rng), pos(rng)};
        batch.push_back(serve::Request::point_query(idx, p));
      } else {  // nearest (not supported on the linear quadtree)
        batch.push_back(serve::Request::nearest_query(
            idx == serve::IndexKind::kLinearQuadTree
                ? serve::IndexKind::kRTree
                : idx,
            {pos(rng), pos(rng)}, kdist(rng)));
      }
    }
    return batch;
  }

  std::vector<geom::LineId> sequential_ids(const serve::Request& rq) const {
    if (rq.kind == serve::RequestKind::kWindow) {
      switch (rq.index) {
        case serve::IndexKind::kQuadTree:
          return core::window_query(quad_, rq.window);
        case serve::IndexKind::kRTree:
          return core::window_query(rtree_, rq.window);
        case serve::IndexKind::kLinearQuadTree:
          return linear_.window_query(rq.window);
      }
    }
    switch (rq.index) {
      case serve::IndexKind::kQuadTree:
        return core::point_query(quad_, rq.point);
      case serve::IndexKind::kRTree:
        return core::point_query(rtree_, rq.point);
      case serve::IndexKind::kLinearQuadTree:
        return linear_.point_query(rq.point);
    }
    return {};
  }

  std::vector<geom::Segment> lines_;
  core::QuadTree quad_;
  core::RTree rtree_;
  core::LinearQuadTree linear_;
};

// The engine, sharded and threaded per the case, must answer exactly what
// one-request-at-a-time sequential traversal answers.
TEST_P(ServeDifferential, EngineMatchesSequential) {
  const ServeCase& c = GetParam();
  serve::EngineOptions opts;
  opts.shards = c.shards;
  opts.threads = c.threads;
  // The sweep's min_dp_batch cases ("always sequential", "always dp") are
  // about the *threshold*; pin the static policy so the cost model cannot
  // re-route them.  Model-driven dispatch has its own suite.
  opts.dispatch = serve::DispatchMode::kStatic;
  opts.min_dp_batch = c.min_dp_batch;
  serve::QueryEngine engine(opts);
  engine.mount(&quad_);
  engine.mount(&rtree_);
  engine.mount(&linear_);

  const auto batch = random_requests(c.n_requests, c.seed * 7919 + 13);
  const auto responses = engine.serve(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(responses[i].status, serve::Status::kOk) << "request " << i;
    if (batch[i].kind == serve::RequestKind::kNearest) {
      const auto want = batch[i].index == serve::IndexKind::kQuadTree
                            ? core::k_nearest(quad_, batch[i].point, batch[i].k)
                            : core::k_nearest(rtree_, batch[i].point,
                                              batch[i].k);
      ASSERT_EQ(responses[i].neighbors.size(), want.size()) << "request " << i;
      for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(responses[i].neighbors[j].id, want[j].id)
            << "request " << i << " neighbor " << j;
        EXPECT_DOUBLE_EQ(responses[i].neighbors[j].distance2,
                         want[j].distance2);
      }
    } else {
      EXPECT_EQ(responses[i].ids, sequential_ids(batch[i]))
          << "request " << i;
    }
  }
  const serve::ServeMetrics m = engine.metrics();
  EXPECT_EQ(m.ok, c.n_requests);
  EXPECT_EQ(m.latency.count(), c.n_requests);
}

// The raw batch pipelines, run directly (serial and parallel backends),
// must match per-window / per-point sequential queries on the same
// workloads the engine sees.
TEST_P(ServeDifferential, BatchPipelinesMatchSequential) {
  const ServeCase& c = GetParam();
  std::mt19937_64 rng(c.seed * 104729 + 7);
  std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
  std::uniform_real_distribution<double> extent(2.0, kWorld / 5.0);
  std::vector<geom::Rect> windows;
  std::vector<geom::Point> points;
  const std::size_t n = std::min<std::size_t>(c.n_requests, 200);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = pos(rng), y = pos(rng);
    windows.push_back({x, y, std::min(kWorld, x + extent(rng)),
                       std::min(kWorld, y + extent(rng))});
    points.push_back(i % 2 == 0 && !lines_.empty()
                         ? lines_[i % lines_.size()].mid()
                         : geom::Point{pos(rng), pos(rng)});
  }

  dpv::Context serial;
  dpv::Context parallel = test::make_parallel_context();
  for (dpv::Context* ctx : {&serial, &parallel}) {
    const auto quad_batch = core::batch_window_query(*ctx, quad_, windows);
    const auto rtree_batch = core::batch_window_query(*ctx, rtree_, windows);
    ASSERT_EQ(quad_batch.results.size(), windows.size());
    ASSERT_EQ(rtree_batch.results.size(), windows.size());
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const auto want = core::window_query(quad_, windows[w]);
      EXPECT_EQ(quad_batch.results[w], want) << "window " << w;
      EXPECT_EQ(rtree_batch.results[w],
                core::window_query(rtree_, windows[w]))
          << "window " << w;
    }
    const auto linear_batch = core::batch_window_query(*ctx, linear_, windows);
    ASSERT_EQ(linear_batch.results.size(), windows.size());
    for (std::size_t w = 0; w < windows.size(); ++w) {
      EXPECT_EQ(linear_batch.results[w], linear_.window_query(windows[w]))
          << "window " << w;
    }
    const auto point_batch = core::batch_point_query(*ctx, quad_, points);
    const auto rtree_points = core::batch_point_query(*ctx, rtree_, points);
    const auto linear_points = core::batch_point_query(*ctx, linear_, points);
    ASSERT_EQ(point_batch.results.size(), points.size());
    ASSERT_EQ(rtree_points.results.size(), points.size());
    ASSERT_EQ(linear_points.results.size(), points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      EXPECT_EQ(point_batch.results[p], core::point_query(quad_, points[p]))
          << "point " << p;
      EXPECT_EQ(rtree_points.results[p], core::point_query(rtree_, points[p]))
          << "point " << p;
      EXPECT_EQ(linear_points.results[p], linear_.point_query(points[p]))
          << "point " << p;
    }
  }
}

// With the threshold at 1, every group -- all eight supported
// (kind, index) combinations, k-nearest included -- must take the
// data-parallel path: the engine may not silently fall back to
// sequential traversal.
TEST_P(ServeDifferential, AllCombosExecuteDataParallel) {
  const ServeCase& c = GetParam();
  serve::EngineOptions opts;
  opts.shards = c.shards;
  opts.threads = c.threads;
  // This test's contract is "every group takes the dp pipeline"; say so
  // directly instead of relying on the threshold-1 prior.
  opts.dispatch = serve::DispatchMode::kForceDp;
  opts.min_dp_batch = 1;
  serve::QueryEngine engine(opts);
  engine.mount(&quad_);
  engine.mount(&rtree_);
  engine.mount(&linear_);

  // Every supported combo in rotation: windows and points on all three
  // indexes, k-nearest on the two tree indexes.
  std::mt19937_64 rng(c.seed * 6151 + 3);
  std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
  std::uniform_int_distribution<std::size_t> kdist(1, 8);
  std::vector<serve::Request> batch;
  for (std::size_t i = 0; i < std::min<std::size_t>(c.n_requests, 300); ++i) {
    const auto idx = static_cast<serve::IndexKind>(i % 3);
    const double x = pos(rng), y = pos(rng);
    switch (i % 8) {
      case 0:
      case 3:
      case 5:
        batch.push_back(serve::Request::window_query(
            idx,
            {x, y, std::min(kWorld, x + 40.0), std::min(kWorld, y + 30.0)}));
        break;
      case 1:
      case 4:
      case 7:
        batch.push_back(serve::Request::point_query(
            idx, !lines_.empty() ? lines_[i % lines_.size()].mid()
                                 : geom::Point{x, y}));
        break;
      default:
        batch.push_back(serve::Request::nearest_query(
            i % 8 == 2 ? serve::IndexKind::kQuadTree : serve::IndexKind::kRTree,
            {x, y}, kdist(rng)));
        break;
    }
  }
  const auto responses = engine.serve(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(responses[i].status, serve::Status::kOk) << "request " << i;
    if (batch[i].kind == serve::RequestKind::kNearest) {
      const auto want =
          batch[i].index == serve::IndexKind::kQuadTree
              ? core::k_nearest(quad_, batch[i].point, batch[i].k)
              : core::k_nearest(rtree_, batch[i].point, batch[i].k);
      ASSERT_EQ(responses[i].neighbors.size(), want.size()) << "request " << i;
      for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(responses[i].neighbors[j].id, want[j].id)
            << "request " << i << " neighbor " << j;
        EXPECT_DOUBLE_EQ(responses[i].neighbors[j].distance2,
                         want[j].distance2);
      }
    } else {
      EXPECT_EQ(responses[i].ids, sequential_ids(batch[i])) << "request " << i;
    }
  }
  const serve::ServeMetrics m = engine.metrics();
  EXPECT_EQ(m.seq_groups, 0u)
      << "a group (k-nearest included) silently degraded to sequential "
         "traversal";
  EXPECT_EQ(m.seq_fallbacks, 0u)
      << "a fault-free dp pipeline burned its retries and fell back";
  EXPECT_GT(m.dp_groups, 0u);
  // The shard arenas did real work and nothing leaked past a round scope.
  const dpv::ArenaStats arena = engine.arena_stats();
  EXPECT_GT(arena.rounds, 0u);
  EXPECT_EQ(arena.live_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ServeDifferential,
    ::testing::Values(
        // generator, lines, requests, seed, shards, threads, min_dp_batch
        ServeCase{"uniform", 300, 400, 1, 1, 1, 8},
        ServeCase{"uniform", 400, 600, 2, 4, 2, 4},
        ServeCase{"uniform", 400, 500, 3, 4, 4, 1},      // always data-parallel
        ServeCase{"clustered", 500, 600, 4, 4, 2, 8},
        ServeCase{"clustered", 350, 400, 5, 2, 2, 4096}, // always sequential
        ServeCase{"roads", 450, 500, 6, 3, 2, 8},
        ServeCase{"roads", 350, 450, 7, 6, 2, 4},        // shards > lanes
        // Acceptance-scale: >= 10k mixed queries over >= 4 shards.
        ServeCase{"uniform", 800, 10000, 8, 4, 4, 8}),
    [](const ::testing::TestParamInfo<ServeCase>& info) {
      const ServeCase& c = info.param;
      return std::string(c.generator) + std::to_string(c.n_requests) + "_s" +
             std::to_string(c.seed) + "_sh" + std::to_string(c.shards) +
             "_t" + std::to_string(c.threads) + "_b" +
             std::to_string(c.min_dp_batch);
    });

}  // namespace
}  // namespace dps
