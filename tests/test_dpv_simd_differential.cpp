// Scalar-vs-SIMD differential suite for the dpv kernel backend.
//
// The exactness contract (dpv/simd.hpp) promises bitwise-identical results
// from every kernel on every backend for every input.  This suite runs each
// kernel through the scalar table and the AVX2 table over lane-boundary
// sizes {0, 1, 7, 8, 9, 31, 32, 33, large}, unaligned base pointers, and
// adversarial floats (NaN, +/-inf, signed zeros, denormals, huge
// magnitudes), comparing outputs bit-for-bit.  The geometry kernels are
// additionally checked against the geom:: scalar predicates, so the chain
// geom == scalar kernel == AVX2 kernel is pinned at both links.
//
// On hosts without AVX2, kernels_for(kAvx2) falls back to the scalar table
// and the comparisons are trivially true -- the suite stays green
// everywhere while testing the real thing wherever the dispatcher would
// pick AVX2.

#include "dpv/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include "geom/predicates.hpp"
#include "geom/rect.hpp"

namespace dps::dpv::simd {
namespace {

constexpr std::size_t kSizes[] = {0, 1, 7, 8, 9, 31, 32, 33, 1027};
constexpr std::size_t kOffsets[] = {0, 1, 3};

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Adversarial double source: uniform reals salted with every special value
// class the contract names.
class DoubleSource {
 public:
  explicit DoubleSource(std::uint64_t seed) : rng_(seed) {}

  double next() {
    if (pick_(rng_) == 0) {
      static const double kSpecials[] = {
          0.0,
          -0.0,
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::min(),
          std::numeric_limits<double>::max(),
          -std::numeric_limits<double>::max(),
          1.0e300,
          -1.0e300,
          1.0e-300,
      };
      return kSpecials[idx_(rng_) % (sizeof(kSpecials) / sizeof(double))];
    }
    return real_(rng_);
  }

  std::vector<double> vec(std::size_t n, std::size_t pad) {
    std::vector<double> v(n + pad);
    for (double& d : v) d = next();
    return v;
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_int_distribution<int> pick_{0, 3};  // 25% specials
  std::uniform_int_distribution<std::size_t> idx_{0, 1u << 20};
  std::uniform_real_distribution<double> real_{-2048.0, 2048.0};
};

// Bitwise equality, except that NaN matches any NaN: the contract pins
// every non-NaN bit pattern but leaves NaN sign/payload unspecified (see
// dpv/simd.hpp).
void expect_same_double(double a, double b, std::size_t i, const char* what) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_TRUE(std::isnan(a) && std::isnan(b))
        << what << ": one backend NaN, the other " << (std::isnan(a) ? b : a)
        << " at i=" << i;
    return;
  }
  EXPECT_EQ(bits(a), bits(b))
      << what << " diverges at i=" << i << " (" << a << " vs " << b << ")";
}

void expect_same_f64(const std::vector<double>& a, const std::vector<double>& b,
                     std::size_t off, std::size_t n, const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    expect_same_double(a[off + i], b[off + i], i, what);
  }
}

TEST(SimdDispatch, DispatchIsConsistent) {
  if (avx2_compiled() && avx2_supported()) {
    EXPECT_EQ(dispatched(), Backend::kAvx2);
  } else {
    EXPECT_EQ(dispatched(), Backend::kScalar);
  }
  // CI pins the native Release leg with DPS_REQUIRE_AVX2=1: the build must
  // have compiled the AVX2 table and the dispatcher must have picked it.
  if (std::getenv("DPS_REQUIRE_AVX2") != nullptr) {
    EXPECT_TRUE(avx2_compiled());
    EXPECT_TRUE(avx2_supported());
    EXPECT_EQ(dispatched(), Backend::kAvx2);
  }
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
}

TEST(SimdDispatch, ForceOverridesAndRestores) {
  const Backend before = active();
  EXPECT_EQ(force(Backend::kScalar), Backend::kScalar);
  EXPECT_EQ(active(), Backend::kScalar);
  EXPECT_EQ(&kernels(), &scalar_kernels());
  const Backend got = force(Backend::kAvx2);
  // Forcing AVX2 on a host without it falls back to scalar.
  EXPECT_EQ(got, avx2_compiled() && avx2_supported() ? Backend::kAvx2
                                                     : Backend::kScalar);
  force(before);
  EXPECT_EQ(active(), before);
}

TEST(SimdDifferential, ElementwiseF64) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  using EwFn = void (*)(const double*, const double*, double*, std::size_t);
  struct Case {
    const char* name;
    EwFn scalar;
    EwFn simd;
  };
  const Case cases[] = {
      {"ew_add_f64", s.ew_add_f64, v.ew_add_f64},
      {"ew_sub_f64", s.ew_sub_f64, v.ew_sub_f64},
      {"ew_mul_f64", s.ew_mul_f64, v.ew_mul_f64},
      {"ew_min_f64", s.ew_min_f64, v.ew_min_f64},
      {"ew_max_f64", s.ew_max_f64, v.ew_max_f64},
  };
  DoubleSource src(0xD1FF001);
  for (const Case& c : cases) {
    for (const std::size_t n : kSizes) {
      for (const std::size_t off : kOffsets) {
        const std::vector<double> a = src.vec(n, off);
        const std::vector<double> b = src.vec(n, off);
        std::vector<double> so(n + off, 0.0), vo(n + off, 0.0);
        c.scalar(a.data() + off, b.data() + off, so.data() + off, n);
        c.simd(a.data() + off, b.data() + off, vo.data() + off, n);
        expect_same_f64(so, vo, off, n, c.name);
      }
    }
  }
}

TEST(SimdDifferential, MinMaxKeepStdSemanticsOnTies) {
  // min = (b < a) ? b : a, so min(-0.0, +0.0) returns the *first* argument
  // (+0.0 when a=+0.0) and min(NaN, x) returns NaN only in the `a` slot --
  // exactly std::min.  Pin these bit patterns on both backends.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double a[] = {0.0, -0.0, nan, 1.0};
  const double b[] = {-0.0, 0.0, 1.0, nan};
  for (const Backend be : {Backend::kScalar, Backend::kAvx2}) {
    const Kernels& k = kernels_for(be);
    double mn[4], mx[4];
    k.ew_min_f64(a, b, mn, 4);
    k.ew_max_f64(a, b, mx, 4);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(bits(mn[i]), bits(std::min(a[i], b[i]))) << "min lane " << i;
      EXPECT_EQ(bits(mx[i]), bits(std::max(a[i], b[i]))) << "max lane " << i;
    }
  }
}

TEST(SimdDifferential, ScanAddU64) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  std::mt19937_64 rng(0x5CA9);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      for (const bool inclusive : {false, true}) {
        std::vector<std::uint64_t> in(n + off);
        // Huge values exercise wrap-around (mod-2^64 addition is exact).
        for (auto& x : in) x = rng();
        const std::uint64_t carry = rng();
        std::vector<std::uint64_t> so(n + off, 0), vo(n + off, 0);
        const std::uint64_t sc =
            s.scan_add_u64(in.data() + off, so.data() + off, n, carry,
                           inclusive);
        const std::uint64_t vc =
            v.scan_add_u64(in.data() + off, vo.data() + off, n, carry,
                           inclusive);
        EXPECT_EQ(sc, vc) << "carry n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(so[off + i], vo[off + i])
              << "scan_add_u64 incl=" << inclusive << " i=" << i << " n=" << n;
        }
        // Oracle: direct serial prefix.
        std::uint64_t acc = carry;
        for (std::size_t i = 0; i < n; ++i) {
          if (inclusive) {
            acc += in[off + i];
            EXPECT_EQ(so[off + i], acc);
          } else {
            EXPECT_EQ(so[off + i], acc);
            acc += in[off + i];
          }
        }
        EXPECT_EQ(sc, acc);
      }
    }
  }
}

TEST(SimdDifferential, ReduceU64) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  std::mt19937_64 rng(0x2ED0CE);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      std::vector<std::uint64_t> in(n + off);
      for (auto& x : in) x = rng();
      EXPECT_EQ(s.reduce_add_u64(in.data() + off, n),
                v.reduce_add_u64(in.data() + off, n))
          << "reduce_add n=" << n;
      EXPECT_EQ(s.reduce_or_u64(in.data() + off, n),
                v.reduce_or_u64(in.data() + off, n))
          << "reduce_or n=" << n;
      std::uint64_t add = 0, orr = 0;
      for (std::size_t i = 0; i < n; ++i) {
        add += in[off + i];
        orr |= in[off + i];
      }
      EXPECT_EQ(s.reduce_add_u64(in.data() + off, n), add);
      EXPECT_EQ(s.reduce_or_u64(in.data() + off, n), orr);
    }
  }
}

TEST(SimdDifferential, RadixHistAndScatter) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  std::mt19937_64 rng(0xBADD16);
  for (const std::size_t n : kSizes) {
    for (const unsigned shift : {0u, 8u, 24u, 56u}) {
      std::vector<std::uint64_t> keys(n);
      for (auto& k : keys) k = rng();
      // Salt with duplicate digits so stability is actually observable.
      if (n > 4) {
        keys[1] = keys[0];
        keys[n / 2] = keys[0] ^ (std::uint64_t{1} << ((shift + 13) % 64));
      }
      std::size_t sh[256] = {}, vh[256] = {};
      s.radix_hist(keys.data(), n, shift, sh);
      v.radix_hist(keys.data(), n, shift, vh);
      for (int d = 0; d < 256; ++d) {
        EXPECT_EQ(sh[d], vh[d]) << "hist digit " << d << " n=" << n;
      }
      std::size_t total = 0;
      for (const std::size_t c : sh) total += c;
      EXPECT_EQ(total, n);

      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::size_t spos[256], vpos[256];
      std::size_t run = 0;
      for (int d = 0; d < 256; ++d) {
        spos[d] = vpos[d] = run;
        run += sh[d];
      }
      std::vector<std::uint64_t> sk(n), vk(n);
      std::vector<std::size_t> so(n), vo(n);
      s.radix_scatter(keys.data(), order.data(), n, shift, spos, sk.data(),
                      so.data());
      v.radix_scatter(keys.data(), order.data(), n, shift, vpos, vk.data(),
                      vo.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sk[i], vk[i]) << "scatter key i=" << i << " n=" << n;
        EXPECT_EQ(so[i], vo[i]) << "scatter order i=" << i << " n=" << n;
      }
      // Stability oracle: within a digit, source order is preserved.
      for (std::size_t i = 1; i < n; ++i) {
        const auto digit = [&](std::uint64_t k) { return (k >> shift) & 255u; };
        if (digit(sk[i - 1]) == digit(sk[i])) {
          EXPECT_LT(so[i - 1], so[i]) << "stability broken at " << i;
        }
      }
    }
  }
}

TEST(SimdDifferential, MindistPointRect) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  DoubleSource src(0x111D157);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto px = src.vec(n, off), py = src.vec(n, off);
      const auto xmin = src.vec(n, off), ymin = src.vec(n, off);
      const auto xmax = src.vec(n, off), ymax = src.vec(n, off);
      std::vector<double> so(n + off, 0.0), vo(n + off, 0.0);
      s.mindist_point_rect(px.data() + off, py.data() + off, xmin.data() + off,
                           ymin.data() + off, xmax.data() + off,
                           ymax.data() + off, so.data() + off, n);
      v.mindist_point_rect(px.data() + off, py.data() + off, xmin.data() + off,
                           ymin.data() + off, xmax.data() + off,
                           ymax.data() + off, vo.data() + off, n);
      expect_same_f64(so, vo, off, n, "mindist_point_rect");
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Rect r{xmin[off + i], ymin[off + i], xmax[off + i],
                           ymax[off + i]};
        expect_same_double(so[off + i], r.distance2({px[off + i], py[off + i]}),
                           i, "scalar kernel vs geom::Rect::distance2");
      }
    }
  }
}

TEST(SimdDifferential, Dist2PointSegment) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  DoubleSource src(0xD1575E6);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto px = src.vec(n, off), py = src.vec(n, off);
      const auto ax = src.vec(n, off), ay = src.vec(n, off);
      const auto bx = src.vec(n, off), by = src.vec(n, off);
      std::vector<double> so(n + off, 0.0), vo(n + off, 0.0);
      s.dist2_point_segment(px.data() + off, py.data() + off, ax.data() + off,
                            ay.data() + off, bx.data() + off, by.data() + off,
                            so.data() + off, n);
      v.dist2_point_segment(px.data() + off, py.data() + off, ax.data() + off,
                            ay.data() + off, bx.data() + off, by.data() + off,
                            vo.data() + off, n);
      expect_same_f64(so, vo, off, n, "dist2_point_segment");
      for (std::size_t i = 0; i < n; ++i) {
        expect_same_double(
            so[off + i],
            geom::distance2_point_segment({px[off + i], py[off + i]},
                                          {ax[off + i], ay[off + i]},
                                          {bx[off + i], by[off + i]}),
            i, "scalar kernel vs geom::distance2_point_segment");
      }
    }
  }
}

TEST(SimdDifferential, SegmentIntersectsRectAndClip) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  DoubleSource src(0xC11BB);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto ax = src.vec(n, off), ay = src.vec(n, off);
      const auto bx = src.vec(n, off), by = src.vec(n, off);
      const auto rxmin = src.vec(n, off), rymin = src.vec(n, off);
      const auto rxmax = src.vec(n, off), rymax = src.vec(n, off);
      std::vector<std::uint8_t> shit(n + off, 0), vhit(n + off, 0);
      s.segment_intersects_rect(ax.data() + off, ay.data() + off,
                                bx.data() + off, by.data() + off,
                                rxmin.data() + off, rymin.data() + off,
                                rxmax.data() + off, rymax.data() + off,
                                shit.data() + off, n);
      v.segment_intersects_rect(ax.data() + off, ay.data() + off,
                                bx.data() + off, by.data() + off,
                                rxmin.data() + off, rymin.data() + off,
                                rxmax.data() + off, rymax.data() + off,
                                vhit.data() + off, n);
      std::vector<double> st0(n + off), st1(n + off), vt0(n + off),
          vt1(n + off);
      std::vector<std::uint8_t> sacc(n + off, 0), vacc(n + off, 0);
      s.clip_segment_rect(ax.data() + off, ay.data() + off, bx.data() + off,
                          by.data() + off, rxmin.data() + off,
                          rymin.data() + off, rxmax.data() + off,
                          rymax.data() + off, st0.data() + off,
                          st1.data() + off, sacc.data() + off, n);
      v.clip_segment_rect(ax.data() + off, ay.data() + off, bx.data() + off,
                          by.data() + off, rxmin.data() + off,
                          rymin.data() + off, rxmax.data() + off,
                          rymax.data() + off, vt0.data() + off,
                          vt1.data() + off, vacc.data() + off, n);
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Point p{ax[off + i], ay[off + i]};
        const geom::Point q{bx[off + i], by[off + i]};
        const geom::Rect r{rxmin[off + i], rymin[off + i], rxmax[off + i],
                           rymax[off + i]};
        EXPECT_EQ(shit[off + i] != 0, vhit[off + i] != 0)
            << "segment_intersects_rect i=" << i << " n=" << n;
        EXPECT_EQ(shit[off + i] != 0, geom::segment_intersects_rect(p, q, r))
            << "scalar kernel vs geom i=" << i;
        EXPECT_EQ(sacc[off + i] != 0, vacc[off + i] != 0)
            << "clip accept i=" << i;
        double gt0 = 0.0, gt1 = 0.0;
        const bool gacc = geom::clip_segment_to_rect(p, q, r, gt0, gt1);
        EXPECT_EQ(sacc[off + i] != 0, gacc) << "clip vs geom i=" << i;
        if (sacc[off + i] && vacc[off + i] && gacc) {
          expect_same_double(st0[off + i], vt0[off + i], i, "clip t0");
          expect_same_double(st1[off + i], vt1[off + i], i, "clip t1");
          expect_same_double(st0[off + i], gt0, i, "clip t0 vs geom");
          expect_same_double(st1[off + i], gt1, i, "clip t1 vs geom");
        }
      }
    }
  }
}

TEST(SimdDifferential, PointOnSegment) {
  const Kernels& s = scalar_kernels();
  const Kernels& v = kernels_for(Backend::kAvx2);
  DoubleSource src(0x90153);
  std::mt19937_64 rng(0x90154);
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      auto px = src.vec(n, off), py = src.vec(n, off);
      auto ax = src.vec(n, off), ay = src.vec(n, off);
      auto bx = src.vec(n, off), by = src.vec(n, off);
      // Random p is almost never collinear; plant exact on-segment hits
      // (and endpoint/degenerate cases) so the accept path is exercised.
      for (std::size_t i = 0; i < n; ++i) {
        switch (rng() % 4) {
          case 0:  // midpoint of an axis-aligned segment (exact in fp)
            ax[off + i] = 2.0;
            ay[off + i] = 8.0;
            bx[off + i] = 10.0;
            by[off + i] = 8.0;
            px[off + i] = 6.0;
            py[off + i] = 8.0;
            break;
          case 1:  // endpoint hit
            px[off + i] = ax[off + i];
            py[off + i] = ay[off + i];
            break;
          case 2:  // degenerate segment, p on / off it
            bx[off + i] = ax[off + i];
            by[off + i] = ay[off + i];
            break;
          default:  // leave fully random (adversarial)
            break;
        }
      }
      std::vector<std::uint8_t> so(n + off, 0), vo(n + off, 0);
      s.point_on_segment(px.data() + off, py.data() + off, ax.data() + off,
                         ay.data() + off, bx.data() + off, by.data() + off,
                         so.data() + off, n);
      v.point_on_segment(px.data() + off, py.data() + off, ax.data() + off,
                         ay.data() + off, bx.data() + off, by.data() + off,
                         vo.data() + off, n);
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Point p{px[off + i], py[off + i]};
        const geom::Point a{ax[off + i], ay[off + i]};
        const geom::Point b{bx[off + i], by[off + i]};
        EXPECT_EQ(so[off + i] != 0, vo[off + i] != 0)
            << "point_on_segment i=" << i << " n=" << n;
        EXPECT_EQ(so[off + i] != 0, geom::point_on_segment(p, a, b))
            << "scalar kernel vs geom i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace dps::dpv::simd
