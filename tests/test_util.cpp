#include "test_util.hpp"

#include <cstdlib>
#include <random>

#include "dpv/fault.hpp"

namespace dps::test {

dpv::Context make_parallel_context() {
  dpv::Context ctx(4);
  ctx.set_grain(8);  // force multi-block execution on small vectors
  return ctx;
}

dpv::Vec<int> random_ints(std::size_t n, int range, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> d(0, range - 1);
  dpv::Vec<int> out(n);
  for (auto& v : out) v = d(rng);
  return out;
}

dpv::Flags random_flags(std::size_t n, std::size_t avg_group,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> d(0, avg_group - 1);
  dpv::Flags out(n, 0);
  if (n > 0) out[0] = 1;
  for (std::size_t i = 1; i < n; ++i) out[i] = d(rng) == 0 ? 1 : 0;
  return out;
}

std::uint64_t chaos_seed(std::uint64_t base) {
  const char* env = std::getenv("DPS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return base;
  const std::uint64_t salt =
      std::strtoull(env, nullptr, 10);
  if (salt == 0) return base;
  return dpv::mix64(base ^ dpv::mix64(salt));
}

}  // namespace dps::test
