// Admission control: the AdmissionController gate (tokens, in-flight
// budget, priority-aware bounded queue, load shedding) and the engine-level
// overload behaviour -- shed batches answer kShedded and nothing else,
// admitted batches always match the sequential oracle.

#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "data/mapgen.hpp"
#include "serve/engine.hpp"

namespace dps::serve {
namespace {

using namespace std::chrono_literals;

// Spin until `pred` holds (bounded); returns whether it did.
template <class Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(100us);
  }
  return true;
}

TEST(AdmissionController, DisabledAdmitsEverythingImmediately) {
  AdmissionOptions opts;  // enabled = false
  opts.max_concurrent_batches = 1;
  AdmissionController gate(opts);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(gate.admit(100, Priority::kLow),
              AdmissionController::Outcome::kAdmitted);
  }
  const AdmissionStats st = gate.stats();
  EXPECT_EQ(st.offered_batches, 8u);
  EXPECT_EQ(st.admitted_batches, 8u);
  EXPECT_EQ(st.shed_batches, 0u);
  for (int i = 0; i < 8; ++i) gate.finish(100);
}

TEST(AdmissionController, SecondBatchWaitsForTheToken) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 1;
  opts.max_queued_batches = 4;
  AdmissionController gate(opts);

  ASSERT_EQ(gate.admit(10, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  std::atomic<int> outcome{-1};
  std::thread waiter([&] {
    outcome.store(static_cast<int>(gate.admit(10, Priority::kNormal)));
  });
  ASSERT_TRUE(eventually([&] { return gate.stats().peak_queue >= 1; }));
  EXPECT_EQ(outcome.load(), -1);  // still parked
  gate.finish(10);
  waiter.join();
  EXPECT_EQ(outcome.load(),
            static_cast<int>(AdmissionController::Outcome::kAdmitted));
  gate.finish(10);
  EXPECT_EQ(gate.stats().admitted_batches, 2u);
}

TEST(AdmissionController, InflightBudgetGatesButNeverWedgesOversized) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 4;
  opts.max_inflight_requests = 10;
  opts.max_queued_batches = 4;
  AdmissionController gate(opts);

  // An oversized batch is admitted when it would run alone.
  ASSERT_EQ(gate.admit(100, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  gate.finish(100);

  ASSERT_EQ(gate.admit(8, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  std::atomic<int> outcome{-1};
  std::thread waiter([&] {
    outcome.store(static_cast<int>(gate.admit(8, Priority::kNormal)));
  });
  ASSERT_TRUE(eventually([&] { return gate.stats().peak_queue >= 1; }));
  EXPECT_EQ(outcome.load(), -1);  // 8 + 8 > 10: parked despite a free token
  gate.finish(8);
  waiter.join();
  EXPECT_EQ(outcome.load(),
            static_cast<int>(AdmissionController::Outcome::kAdmitted));
  gate.finish(8);
}

TEST(AdmissionController, FullQueueShedsArrivalThatDoesNotOutrank) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 1;
  opts.max_queued_batches = 1;
  AdmissionController gate(opts);

  ASSERT_EQ(gate.admit(1, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  std::atomic<int> outcome{-1};
  std::thread waiter([&] {
    outcome.store(static_cast<int>(gate.admit(1, Priority::kNormal)));
  });
  ASSERT_TRUE(eventually([&] { return gate.stats().peak_queue >= 1; }));

  // Equal and lower priorities do not outrank the waiter: arrival is shed.
  EXPECT_EQ(gate.admit(1, Priority::kNormal),
            AdmissionController::Outcome::kShedded);
  EXPECT_EQ(gate.admit(1, Priority::kLow),
            AdmissionController::Outcome::kShedded);
  EXPECT_EQ(outcome.load(), -1);  // the waiter was untouched

  gate.finish(1);
  waiter.join();
  EXPECT_EQ(outcome.load(),
            static_cast<int>(AdmissionController::Outcome::kAdmitted));
  gate.finish(1);
  const AdmissionStats st = gate.stats();
  EXPECT_EQ(st.shed_batches, 2u);
  EXPECT_EQ(st.shed_requests, 2u);
}

TEST(AdmissionController, HigherPriorityArrivalEvictsTheLowestWaiter) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 1;
  opts.max_queued_batches = 1;
  AdmissionController gate(opts);

  ASSERT_EQ(gate.admit(1, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  std::atomic<int> low_outcome{-1};
  std::thread low([&] {
    low_outcome.store(static_cast<int>(gate.admit(1, Priority::kLow)));
  });
  ASSERT_TRUE(eventually([&] { return gate.stats().peak_queue >= 1; }));

  std::atomic<int> high_outcome{-1};
  std::thread high([&] {
    high_outcome.store(static_cast<int>(gate.admit(1, Priority::kHigh)));
  });
  // The high-priority arrival evicts the low-priority waiter and takes its
  // seat; the evicted waiter unblocks with kShedded.
  low.join();
  EXPECT_EQ(low_outcome.load(),
            static_cast<int>(AdmissionController::Outcome::kShedded));
  EXPECT_EQ(high_outcome.load(), -1);  // queued, not shed

  gate.finish(1);
  high.join();
  EXPECT_EQ(high_outcome.load(),
            static_cast<int>(AdmissionController::Outcome::kAdmitted));
  gate.finish(1);
}

TEST(AdmissionController, GrantsByPriorityThenArrival) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 1;
  opts.max_queued_batches = 4;
  AdmissionController gate(opts);

  ASSERT_EQ(gate.admit(1, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  const Priority prio[3] = {Priority::kNormal, Priority::kHigh,
                            Priority::kNormal};
  for (int id = 0; id < 3; ++id) {
    waiters.emplace_back([&, id] {
      const auto got = gate.admit(1, prio[id]);
      ASSERT_EQ(got, AdmissionController::Outcome::kAdmitted);
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(id);
    });
    // Enqueue strictly in id order so arrival ranks are deterministic.
    ASSERT_TRUE(eventually(
        [&] { return gate.stats().peak_queue >= static_cast<std::size_t>(id) + 1; }));
  }
  for (int round = 0; round < 3; ++round) {
    gate.finish(1);
    ASSERT_TRUE(eventually([&] {
      std::lock_guard<std::mutex> lock(order_mutex);
      return order.size() == static_cast<std::size_t>(round) + 1;
    }));
  }
  for (auto& t : waiters) t.join();
  gate.finish(1);
  // High first, then the two normals in arrival order.
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

// ---------------------------------------------------------------------------
// Engine-level overload behaviour.

class EngineAdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lines_ = data::uniform_segments(800, 1024.0, 25.0, 77);
    dpv::Context ctx;
    core::PmrBuildOptions po;
    po.world = 1024.0;
    po.max_depth = 10;
    po.bucket_capacity = 4;
    quad_ = core::pmr_build(ctx, lines_, po).tree;
    core::RtreeBuildOptions ro;
    rtree_ = core::rtree_build(ctx, lines_, ro).tree;
  }

  std::vector<Request> small_batch(std::size_t n, Priority p) const {
    std::vector<Request> batch;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>((i * 131) % 900);
      batch.push_back(Request::window_query(IndexKind::kQuadTree,
                                            {x, x, x + 60.0, x + 60.0})
                          .with_priority(p));
    }
    return batch;
  }

  // A batch heavy enough to keep the engine busy for many milliseconds:
  // k-nearest has no dp pipeline, so every request walks sequentially.
  std::vector<Request> heavy_batch(std::size_t n) const {
    std::vector<Request> batch;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>((i * 37) % 1000);
      const double y = static_cast<double>((i * 53) % 1000);
      batch.push_back(Request::nearest_query(IndexKind::kRTree, {x, y}, 4));
    }
    return batch;
  }

  void expect_ok_matches_oracle(const std::vector<Request>& batch,
                                const std::vector<Response>& rsp) const {
    ASSERT_EQ(rsp.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (rsp[i].status != Status::kOk) continue;
      if (batch[i].kind == RequestKind::kWindow) {
        EXPECT_EQ(rsp[i].ids, core::window_query(quad_, batch[i].window))
            << "request " << i;
      }
    }
  }

  std::vector<geom::Segment> lines_;
  core::QuadTree quad_;
  core::RTree rtree_;
};

TEST_F(EngineAdmissionTest, OverloadedEngineShedsWholeBatchesWithKShedded) {
  EngineOptions opts;
  opts.threads = 1;
  opts.shards = 1;
  opts.admission.enabled = true;
  opts.admission.max_concurrent_batches = 1;
  opts.admission.max_queued_batches = 0;  // no waiting room: shed on overlap
  QueryEngine engine(opts);
  engine.mount(&quad_);
  engine.mount(&rtree_);

  const auto heavy = heavy_batch(30000);
  std::atomic<bool> done{false};
  std::thread server([&] {
    const auto rsp = engine.serve(heavy);
    done.store(true);
    EXPECT_EQ(rsp.size(), heavy.size());
  });
  // Wait until the heavy batch holds the concurrency token, then offer a
  // small batch: with zero waiting room it must be shed, not blocked.
  ASSERT_TRUE(eventually(
      [&] { return engine.admission_stats().admitted_batches >= 1; }));
  const auto small = small_batch(16, Priority::kNormal);
  const auto rsp = engine.serve(small);
  const bool raced_past = done.load();  // heavy batch finished already?
  server.join();

  ASSERT_EQ(rsp.size(), small.size());
  if (!raced_past) {
    for (std::size_t i = 0; i < rsp.size(); ++i) {
      EXPECT_EQ(rsp[i].status, Status::kShedded) << "request " << i;
      EXPECT_TRUE(rsp[i].ids.empty());  // shed means shed: no partial answer
      EXPECT_TRUE(rsp[i].neighbors.empty());
    }
    EXPECT_EQ(engine.admission_stats().shed_batches, 1u);
    EXPECT_EQ(engine.admission_stats().shed_requests, small.size());
    EXPECT_EQ(engine.metrics().shedded, small.size());
  }
  expect_ok_matches_oracle(small, rsp);
}

TEST_F(EngineAdmissionTest, QueuedBatchRunsAfterTheHeavyOneAndIsCorrect) {
  EngineOptions opts;
  opts.threads = 1;
  opts.shards = 1;
  opts.admission.enabled = true;
  opts.admission.max_concurrent_batches = 1;
  opts.admission.max_queued_batches = 1;  // room to wait instead of shedding
  QueryEngine engine(opts);
  engine.mount(&quad_);
  engine.mount(&rtree_);

  const auto heavy = heavy_batch(20000);
  std::thread server([&] { engine.serve(heavy); });
  ASSERT_TRUE(eventually(
      [&] { return engine.admission_stats().admitted_batches >= 1; }));
  const auto small = small_batch(16, Priority::kHigh);
  const auto rsp = engine.serve(small);  // waits for the token, then runs
  server.join();

  ASSERT_EQ(rsp.size(), small.size());
  for (std::size_t i = 0; i < rsp.size(); ++i) {
    ASSERT_EQ(rsp[i].status, Status::kOk) << "request " << i;
    EXPECT_EQ(rsp[i].ids, core::window_query(quad_, small[i].window));
  }
  EXPECT_EQ(engine.admission_stats().shed_batches, 0u);
}

TEST_F(EngineAdmissionTest, ConcurrentHammerNeverProducesAWrongAnswer) {
  EngineOptions opts;
  opts.threads = 2;
  opts.shards = 2;
  opts.admission.enabled = true;
  opts.admission.max_concurrent_batches = 2;
  opts.admission.max_inflight_requests = 64;
  opts.admission.max_queued_batches = 1;
  QueryEngine engine(opts);
  engine.mount(&quad_);
  engine.mount(&rtree_);

  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 10;
  std::atomic<std::uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const Priority p = t % 3 == 0   ? Priority::kHigh
                         : t % 3 == 1 ? Priority::kNormal
                                      : Priority::kLow;
      for (int b = 0; b < kBatchesPerThread; ++b) {
        const auto batch = small_batch(24, p);
        const auto rsp = engine.serve(batch);
        ASSERT_EQ(rsp.size(), batch.size());
        // Shedding is per batch: responses are status-uniform.
        for (std::size_t i = 0; i < rsp.size(); ++i) {
          EXPECT_EQ(rsp[i].status, rsp[0].status);
          if (rsp[i].status == Status::kOk) {
            EXPECT_EQ(rsp[i].ids,
                      core::window_query(quad_, batch[i].window));
            ++ok;
          } else {
            ASSERT_EQ(rsp[i].status, Status::kShedded);
            EXPECT_TRUE(rsp[i].ids.empty());
            ++shed;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(other.load(), 0u);

  const AdmissionStats st = engine.admission_stats();
  EXPECT_EQ(st.offered_batches,
            static_cast<std::uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_EQ(st.admitted_batches + st.shed_batches, st.offered_batches);
  EXPECT_EQ(st.shed_requests, shed.load());
  const ServeMetrics m = engine.metrics();
  EXPECT_EQ(m.ok, ok.load());
  EXPECT_EQ(m.shedded, shed.load());
  EXPECT_EQ(m.requests, ok.load() + shed.load());
}

// The RAII guard pairs admit with finish on every exit path, so a throw
// (or an early return) between admission and settle can no longer leak
// in-flight budget.
TEST(AdmissionGuard, ReleasesOnScopeExitAndOnlyWhenAdmitted) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_concurrent_batches = 1;
  opts.max_queued_batches = 0;  // overflow sheds immediately (no parking)
  AdmissionController gate(opts);

  {
    AdmissionGuard guard(gate, 5, Priority::kNormal);
    ASSERT_TRUE(guard.admitted());
    // The token is held: a second offer sheds rather than queues.
    AdmissionGuard crowded(gate, 5, Priority::kNormal);
    EXPECT_FALSE(crowded.admitted());
    // A shed guard must NOT call finish (that would free a token it never
    // held); `guard` still owns the only one.
  }
  // Scope exit released the admitted guard's token: capacity is back.
  AdmissionGuard again(gate, 5, Priority::kNormal);
  EXPECT_TRUE(again.admitted());
  again.release();
  again.release();  // idempotent
  EXPECT_TRUE(again.admitted() == false);

  const AdmissionStats st = gate.stats();
  EXPECT_EQ(st.offered_batches, 3u);
  EXPECT_EQ(st.admitted_batches, 2u);
  EXPECT_EQ(st.shed_batches, 1u);
  // One more admit/finish round-trip proves no budget leaked anywhere.
  ASSERT_EQ(gate.admit(5, Priority::kNormal),
            AdmissionController::Outcome::kAdmitted);
  gate.finish(5);
}

}  // namespace
}  // namespace dps::serve
