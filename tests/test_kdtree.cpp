// Data-parallel k-d tree tests: invariants, sequential cross-validation,
// query correctness.

#include "core/kdtree_build.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "test_util.hpp"

namespace dps::core {
namespace {

std::vector<geom::Point> random_points(std::size_t n, double world,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0.0, world);
  std::vector<geom::Point> out(n);
  for (auto& p : out) p = {d(rng), d(rng)};
  return out;
}

std::vector<prim::PointId> iota_ids(std::size_t n) {
  std::vector<prim::PointId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<prim::PointId>(i);
  return ids;
}

// Sequential reference: recursive median build with the same split rule
// (left gets ceil(count/2), discriminator = max left coordinate).
void seq_kd(std::vector<std::pair<geom::Point, prim::PointId>>& items,
            std::size_t lo, std::size_t hi, int depth, std::size_t cap,
            std::ostringstream& fp) {
  const std::size_t count = hi - lo;
  if (count <= cap) {
    std::vector<prim::PointId> ids;
    for (std::size_t i = lo; i < hi; ++i) ids.push_back(items[i].second);
    std::sort(ids.begin(), ids.end());
    for (const auto id : ids) fp << id << ",";
    fp << ";";
    return;
  }
  const int axis = depth % 2;
  std::sort(items.begin() + lo, items.begin() + hi,
            [axis](const auto& a, const auto& b) {
              return (axis == 0 ? a.first.x : a.first.y) <
                     (axis == 0 ? b.first.x : b.first.y);
            });
  const std::size_t left = (count + 1) / 2;
  seq_kd(items, lo, lo + left, depth + 1, cap, fp);
  seq_kd(items, lo + left, hi, depth + 1, cap, fp);
}

TEST(KdBuild, EmptyAndTiny) {
  dpv::Context ctx;
  const KdBuildResult empty = kd_build(ctx, {}, {}, {});
  EXPECT_TRUE(empty.tree.empty());
  EXPECT_EQ(empty.tree.validate(), "");
  const KdBuildResult one = kd_build(ctx, {{1, 2}}, {0}, {});
  EXPECT_EQ(one.tree.height(), 0);
  EXPECT_EQ(one.tree.validate(), "");
}

TEST(KdBuild, InvariantsHoldOnRandomPoints) {
  dpv::Context ctx;
  KdBuildOptions o;
  o.leaf_capacity = 4;
  const auto pts = random_points(700, 1024.0, 911);
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(700), o);
  EXPECT_EQ(r.tree.validate(), "");
  EXPECT_LE(r.tree.max_leaf_occupancy(), 4u);
  // Median splits keep the tree balanced: height ~ log2(700/4) + 1.
  EXPECT_LE(r.tree.height(), 9);
  EXPECT_GE(r.tree.height(), 7);
  EXPECT_EQ(r.rounds, static_cast<std::size_t>(r.tree.height()));
}

TEST(KdBuild, MatchesSequentialMedianBuild) {
  dpv::Context ctx;
  KdBuildOptions o;
  o.leaf_capacity = 3;
  const auto pts = random_points(300, 1024.0, 912);
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(300), o);
  std::vector<std::pair<geom::Point, prim::PointId>> items;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    items.emplace_back(pts[i], static_cast<prim::PointId>(i));
  }
  std::ostringstream fp;
  seq_kd(items, 0, items.size(), 0, o.leaf_capacity, fp);
  EXPECT_EQ(r.tree.fingerprint(), fp.str());
}

TEST(KdBuild, WindowQueryMatchesBruteForce) {
  dpv::Context ctx = test::make_parallel_context();
  KdBuildOptions o;
  o.leaf_capacity = 8;
  const auto pts = random_points(500, 1024.0, 913);
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(500), o);
  for (int i = 0; i < 12; ++i) {
    const double x = (i * 89) % 880, y = (i * 53) % 880;
    const geom::Rect w{x, y, x + 130.0, y + 90.0};
    std::vector<prim::PointId> expect;
    for (std::size_t k = 0; k < pts.size(); ++k) {
      if (w.contains(pts[k])) expect.push_back(static_cast<prim::PointId>(k));
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(r.tree.window_query(w), expect) << "window " << i;
  }
  // Degenerate and miss windows.
  EXPECT_TRUE(r.tree.window_query({-5, -5, -1, -1}).empty());
  EXPECT_EQ(r.tree.window_query({0, 0, 1024, 1024}).size(), 500u);
}

TEST(KdBuild, DuplicatePointsTerminate) {
  dpv::Context ctx;
  KdBuildOptions o;
  o.leaf_capacity = 1;
  std::vector<geom::Point> pts(16, geom::Point{3.5, 3.5});
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(16), o);
  EXPECT_EQ(r.tree.validate(), "");
  // Rank splits keep halving even with equal keys.
  EXPECT_LE(r.tree.max_leaf_occupancy(), 1u);
  EXPECT_EQ(r.tree.window_query({3.5, 3.5, 3.5, 3.5}).size(), 16u);
}

TEST(KdKnn, MatchesBruteForce) {
  dpv::Context ctx;
  KdBuildOptions o;
  o.leaf_capacity = 4;
  const auto pts = random_points(400, 1024.0, 914);
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(400), o);
  for (int i = 0; i < 10; ++i) {
    const geom::Point q{(i * 131.0) + 7.0, 1000.0 - i * 97.0};
    for (const std::size_t k : {1u, 5u, 17u}) {
      // Brute force: sort by (dist2, id).
      std::vector<std::pair<double, prim::PointId>> all;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        const double dx = pts[j].x - q.x, dy = pts[j].y - q.y;
        all.emplace_back(dx * dx + dy * dy,
                         static_cast<prim::PointId>(j));
      }
      std::sort(all.begin(), all.end());
      std::vector<prim::PointId> expect;
      for (std::size_t j = 0; j < k; ++j) expect.push_back(all[j].second);
      EXPECT_EQ(r.tree.k_nearest(q, k), expect) << "probe " << i << " k=" << k;
    }
  }
}

TEST(KdKnn, EdgeCases) {
  dpv::Context ctx;
  const auto pts = random_points(10, 100.0, 915);
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(10), {});
  EXPECT_TRUE(r.tree.k_nearest({5, 5}, 0).empty());
  EXPECT_EQ(r.tree.k_nearest({5, 5}, 100).size(), 10u);  // k > n
  const KdBuildResult empty = kd_build(ctx, {}, {}, {});
  EXPECT_TRUE(empty.tree.k_nearest({5, 5}, 3).empty());
}

TEST(KdBuild, TieOnSplitValueIsFoundOnBothSides) {
  dpv::Context ctx;
  KdBuildOptions o;
  o.leaf_capacity = 1;
  // Three points sharing x = 5: the x-split lands on the tie.
  std::vector<geom::Point> pts{{5, 1}, {5, 2}, {5, 3}, {1, 1}, {9, 9}};
  const KdBuildResult r = kd_build(ctx, pts, iota_ids(5), o);
  EXPECT_EQ(r.tree.validate(), "");
  const auto hits = r.tree.window_query({5, 0, 5, 10});
  EXPECT_EQ(hits, (std::vector<prim::PointId>{0, 1, 2}));
}

}  // namespace
}  // namespace dps::core
