// Failure-domain dispatch: hedged subrequests, deadline-budgeted
// abandonment, and graceful degradation (whole-map oracle settle or
// opted-in kPartial).  The bar everywhere: a replica that stalls, wedges,
// or crashes costs bounded latency, never a wrong answer -- and seeded
// chaos replays bit-identically across runs and engine backends.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "data/mapgen.hpp"
#include "serve/cluster.hpp"
#include "test_util.hpp"

namespace dps::serve {
namespace {

constexpr double kWorld = 1024.0;

ClusterMountOptions mount_options() {
  ClusterMountOptions mo;
  mo.world = kWorld;
  mo.quad.max_depth = 10;
  mo.quad.bucket_capacity = 4;
  mo.rtree.m = 2;
  mo.rtree.M = 8;
  return mo;
}

/// Whole-map quadtree/rtree oracle over the same build options.
struct Oracle {
  core::QuadTree quad;
  core::RTree rtree;

  explicit Oracle(const std::vector<geom::Segment>& lines) {
    dpv::Context ctx;
    const ClusterMountOptions mo = mount_options();
    core::PmrBuildOptions po = mo.quad;
    po.world = mo.world;
    quad = core::pmr_build(ctx, lines, po).tree;
    rtree = core::rtree_build(ctx, lines, mo.rtree).tree;
  }
};

/// Deterministic mixed batch (windows, points, k-nearest on both trees).
std::vector<Request> mixed_batch(const std::vector<geom::Segment>& lines,
                                 std::size_t n) {
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>((i * 131) % 900);
    const double y = static_cast<double>((i * 71) % 900);
    switch (i % 4) {
      case 0:
        batch.push_back(Request::window_query(IndexKind::kQuadTree,
                                              {x, y, x + 90.0, y + 60.0}));
        break;
      case 1:
        batch.push_back(Request::window_query(IndexKind::kRTree,
                                              {x, y, x + 50.0, y + 80.0}));
        break;
      case 2:
        batch.push_back(Request::point_query(
            IndexKind::kQuadTree, lines[(i * 13) % lines.size()].mid()));
        break;
      default:
        batch.push_back(
            Request::nearest_query(IndexKind::kRTree, {x, y}, 1 + i % 5));
        break;
    }
  }
  return batch;
}

void expect_exact(const Request& rq, const Response& got, const Oracle& o,
                  std::size_t i, const char* label) {
  ASSERT_EQ(got.status, Status::kOk) << label << " request " << i;
  EXPECT_EQ(got.missing_shards, 0u) << label << " request " << i;
  if (rq.kind == RequestKind::kNearest) {
    const auto want = rq.index == IndexKind::kQuadTree
                          ? core::k_nearest(o.quad, rq.point, rq.k)
                          : core::k_nearest(o.rtree, rq.point, rq.k);
    ASSERT_EQ(got.neighbors.size(), want.size()) << label << " request " << i;
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got.neighbors[j].id, want[j].id) << label << " request " << i;
      EXPECT_DOUBLE_EQ(got.neighbors[j].distance2, want[j].distance2)
          << label << " request " << i;
    }
  } else {
    const auto want = rq.kind == RequestKind::kWindow
                          ? (rq.index == IndexKind::kQuadTree
                                 ? core::window_query(o.quad, rq.window)
                                 : core::window_query(o.rtree, rq.window))
                          : (rq.index == IndexKind::kQuadTree
                                 ? core::point_query(o.quad, rq.point)
                                 : core::point_query(o.rtree, rq.point));
    EXPECT_EQ(got.ids, want) << label << " request " << i;
  }
}

/// Schedule pinning a chaos kind to replica 0 only.
dpv::FaultSchedule replica0_schedule(std::uint64_t seed) {
  dpv::FaultSchedule s;
  s.seed = seed;
  s.replica_fault_mask = 1u;  // replica 0 only
  return s;
}

ClusterOptions base_options(std::size_t shards) {
  ClusterOptions co;
  co.shards = shards;
  co.cache.enabled = false;
  co.engine.shards = 2;
  co.engine.threads = 1;  // keep the 1-core CI box honest
  return co;
}

// A replica wedged forever (the reply never arrives) is rescued by a
// hedge to the whole-map fallback engine: every answer exact, no request
// waits on the stuck job.
TEST(ClusterHedge, WholeMapHedgeRescuesStuckReplica) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 901);
  const Oracle oracle(lines);

  dpv::FaultSchedule s = replica0_schedule(test::chaos_seed(71));
  s.replica_stuck_rate = 1.0;
  dpv::FaultInjector inject(s);

  ClusterOptions co = base_options(4);
  co.replica_fault_injectors = {&inject};
  co.hedge.enabled = true;
  co.hedge.initial_delay = std::chrono::microseconds(500);
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());

  const auto batch = mixed_batch(lines, 48);
  const auto responses = cluster.serve(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_exact(batch[i], responses[i], oracle, i, "stuck+hedge");
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.ok, batch.size());
  EXPECT_GT(m.hedges_issued, 0u);
  EXPECT_GT(m.hedges_won, 0u);
  EXPECT_GT(inject.replica_stuck_count(), 0u)
      << "the schedule must actually have wedged subrequests";
  EXPECT_GT(m.replicas.at(0).hedges, 0u);
  EXPECT_EQ(m.replicas.at(1).hedges, 0u) << "chaos was pinned to replica 0";
}

// With backup replicas mounted, the hedge goes to the same-footprint
// backup instead of the whole-map engine -- and the merged answer is
// still exactly the single-engine answer.
TEST(ClusterHedge, BackupReplicaHedgeStaysExact) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 902);
  const Oracle oracle(lines);

  dpv::FaultSchedule s = replica0_schedule(test::chaos_seed(72));
  s.replica_stuck_rate = 1.0;
  dpv::FaultInjector inject(s);

  ClusterOptions co = base_options(4);
  co.replica_fault_injectors = {&inject};
  co.hedge.enabled = true;
  co.hedge.initial_delay = std::chrono::microseconds(500);
  co.backup_replicas = true;
  co.fallback_engine = false;  // force the backup path
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());
  ASSERT_NE(cluster.backup(0), nullptr);

  const auto batch = mixed_batch(lines, 48);
  const auto responses = cluster.serve(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_exact(batch[i], responses[i], oracle, i, "backup-hedge");
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.ok, batch.size());
  EXPECT_GT(m.hedges_issued, 0u);
  EXPECT_GT(m.hedges_won, 0u);
}

// A crashing replica (fail-fast, no hedging configured) degrades to the
// sequential whole-map oracle: still exact, counted as degraded, and
// never memoized -- replaying the same batch degrades again instead of
// hitting the cache.
TEST(ClusterDegrade, CrashDegradesToFallbackOracleAndSkipsCache) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 903);
  const Oracle oracle(lines);

  dpv::FaultSchedule s = replica0_schedule(test::chaos_seed(73));
  s.replica_crash_rate = 1.0;
  dpv::FaultInjector inject(s);

  ClusterOptions co = base_options(4);
  co.replica_fault_injectors = {&inject};
  co.cache.enabled = true;
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());

  // Every request strictly inside replica 0's footprint: all of them lose
  // their only shard answer to the crash.
  const geom::Rect f0 = cluster.plan().footprints[0];
  const geom::Point c = f0.center();
  std::vector<Request> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(Request::window_query(
        IndexKind::kQuadTree,
        {c.x - 10.0 - i, c.y - 10.0, c.x + 10.0, c.y + 10.0 + i}));
  }

  for (int pass = 0; pass < 2; ++pass) {
    const auto responses = cluster.serve(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_exact(batch[i], responses[i], oracle, i, "crash-degrade");
    }
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.ok, 2 * batch.size());
  EXPECT_EQ(m.degraded_fallback, 2 * batch.size())
      << "degraded answers must not have been served from the cache";
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.cache.entries, 0u) << "degraded answers are never memoized";
  EXPECT_GT(m.replica_crashes, 0u);
  EXPECT_GT(m.missing_shard_answers, 0u);
  EXPECT_EQ(m.replicas.at(0).crashes, m.replica_crashes)
      << "all crashes belong to replica 0";
}

// allow_partial: when the shard answer is gone and the request opted in,
// it settles as kPartial -- surviving shards' exactly-merged hits, the
// missing domains counted -- inside the deadline budget, and the entry
// never reaches the cache.
TEST(ClusterDegrade, AllowPartialSettlesInBudgetAndIsNeverCached) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 904);
  const Oracle oracle(lines);

  dpv::FaultSchedule s = replica0_schedule(test::chaos_seed(74));
  s.replica_stuck_rate = 1.0;
  dpv::FaultInjector inject(s);

  ClusterOptions co = base_options(4);
  co.replica_fault_injectors = {&inject};
  co.cache.enabled = true;
  co.fallback_engine = false;  // no oracle: degradation must use kPartial
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());

  // One whole-map window (touches every footprint, so replica 0's wedge
  // always bites) with a real deadline; opted in to partial answers.
  auto rq = Request::window_query(IndexKind::kQuadTree,
                                  {1.0, 1.0, kWorld - 1.0, kWorld - 1.0})
                .with_allow_partial();
  const auto whole = core::window_query(oracle.quad, rq.window);

  for (int pass = 0; pass < 2; ++pass) {
    rq.with_deadline(Clock::now() + std::chrono::milliseconds(60));
    const auto responses = cluster.serve({rq});
    ASSERT_EQ(responses.size(), 1u);
    const Response& rsp = responses[0];
    ASSERT_EQ(rsp.status, Status::kPartial) << "pass " << pass;
    EXPECT_EQ(rsp.missing_shards, 1u) << "only replica 0 was wedged";
    // The surviving hits are an exactly-merged subset of the whole-map
    // answer (sorted unique ids, each present in the oracle's).
    EXPECT_TRUE(std::is_sorted(rsp.ids.begin(), rsp.ids.end()));
    for (const geom::LineId id : rsp.ids) {
      EXPECT_TRUE(std::binary_search(whole.begin(), whole.end(), id));
    }
    EXPECT_LT(rsp.ids.size(), whole.size())
        << "replica 0's hits should be missing from the partial answer";
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.partial, 2u);
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.cache.entries, 0u) << "kPartial is never admitted to the cache";
  EXPECT_GT(m.subrequest_timeouts, 0u)
      << "the wedged subrequest was abandoned at its budget";

  // Same configuration, no opt-in, no fallback indexes: nothing exact
  // left to answer with, so the request is refused rather than guessed.
  auto strict = Request::window_query(IndexKind::kQuadTree,
                                      {1.0, 1.0, kWorld - 1.0, kWorld - 1.0})
                    .with_deadline(Clock::now() + std::chrono::milliseconds(60));
  EXPECT_EQ(cluster.serve({strict})[0].status, Status::kRejected);
}

// The acceptance bar from the issue: a seeded stuck-forever replica under
// deadlines -- every affected request settles within its budget as kOk
// (hedge / fallback), bit-identically across replays and across the
// serial and thread-pool engine backends, and the chaos decision set
// itself replays exactly.
TEST(ClusterChaosAcceptance, StuckReplicaReplaysBitIdentically) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 905);
  const Oracle oracle(lines);
  const auto batch = mixed_batch(lines, 40);

  struct Run {
    std::vector<Response> responses;
    std::uint64_t stucks = 0;
  };
  auto run_once = [&](std::size_t threads) {
    dpv::FaultSchedule s = replica0_schedule(test::chaos_seed(75));
    s.replica_stuck_rate = 1.0;
    dpv::FaultInjector inject(s);
    ClusterOptions co = base_options(4);
    co.engine.threads = threads;
    co.replica_fault_injectors = {&inject};
    co.hedge.enabled = true;
    co.hedge.initial_delay = std::chrono::microseconds(500);
    serve::Cluster cluster(co);
    cluster.mount(lines, mount_options());

    auto timed = batch;
    for (auto& rq : timed) {
      rq.with_deadline(Clock::now() + std::chrono::milliseconds(250));
    }
    Run run;
    run.responses = cluster.serve(timed);
    run.stucks = inject.replica_stuck_count();
    return run;
  };

  const Run first = run_once(1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_exact(batch[i], first.responses[i], oracle, i, "acceptance");
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const Run replay = run_once(threads);
    ASSERT_EQ(replay.responses.size(), first.responses.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Response& a = first.responses[i];
      const Response& b = replay.responses[i];
      EXPECT_EQ(a.status, b.status) << "threads " << threads;
      EXPECT_EQ(a.ids, b.ids) << "threads " << threads << " request " << i;
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
      for (std::size_t j = 0; j < a.neighbors.size(); ++j) {
        EXPECT_EQ(a.neighbors[j].id, b.neighbors[j].id);
        EXPECT_EQ(a.neighbors[j].distance2, b.neighbors[j].distance2);
      }
    }
    EXPECT_EQ(replay.stucks, first.stucks)
        << "the set of faulted subrequests must replay exactly";
  }
}

// Hedging can be on for a healthy cluster without changing anything: no
// hedges fire ahead of the (warmup) delay on a fast replica, and every
// answer stays exact.
TEST(ClusterHedge, HealthyClusterHedgesRarelyAndStaysExact) {
  const auto lines = data::uniform_segments(300, kWorld, 22.0, 906);
  const Oracle oracle(lines);

  ClusterOptions co = base_options(2);
  co.hedge.enabled = true;
  co.hedge.initial_delay = std::chrono::milliseconds(250);  // generous
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());

  const auto batch = mixed_batch(lines, 48);
  const auto responses = cluster.serve(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_exact(batch[i], responses[i], oracle, i, "healthy");
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.ok, batch.size());
  EXPECT_EQ(m.subrequest_timeouts, 0u);
  EXPECT_EQ(m.degraded_fallback, 0u);
  EXPECT_EQ(m.partial, 0u);
}

// Every settled response carries its own latency stamp, and the cluster
// histogram records one sample per request -- cache hits and invalid
// requests included.
TEST(ClusterLatency, EveryResponseStampedAtSettleTime) {
  const auto lines = data::uniform_segments(250, kWorld, 22.0, 907);
  ClusterOptions co = base_options(2);
  co.cache.enabled = true;
  serve::Cluster cluster(co);
  cluster.mount(lines, mount_options());

  std::vector<Request> batch = mixed_batch(lines, 16);
  batch.push_back(Request::nearest_query(IndexKind::kQuadTree, {1, 1}, 0));
  cluster.serve(batch);                          // cold pass fills the cache
  const auto responses = cluster.serve(batch);   // warm pass hits it
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_GT(responses[i].latency_us, 0.0) << "request " << i;
  }
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.cache_hits, 0u);
  EXPECT_EQ(m.latency.count(), m.requests)
      << "one latency sample per request, stamped when it settles";
}

}  // namespace
}  // namespace dps::serve
