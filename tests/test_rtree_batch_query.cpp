// Data-parallel R-tree batch window query tests.

#include <gtest/gtest.h>

#include "core/batch_query.hpp"
#include "core/query.hpp"
#include "core/rtree_build.hpp"
#include "data/mapgen.hpp"
#include "seq/hilbert_rtree.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

TEST(RtreeBatchQuery, MatchesSequentialQueries) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(400, 1024.0, 20.0, 501);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  std::vector<geom::Rect> windows;
  for (int i = 0; i < 20; ++i) {
    const double x = (i * 83) % 900, y = (i * 59) % 900;
    windows.push_back({x, y, x + 70.0, y + 55.0});
  }
  const BatchQueryResult batch = batch_window_query(ctx, tree, windows);
  ASSERT_EQ(batch.results.size(), windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(batch.results[w], window_query(tree, windows[w]))
        << "window " << w;
  }
}

TEST(RtreeBatchQuery, WorksOnPackedTree) {
  dpv::Context ctx = test::make_parallel_context();
  const auto lines = data::hierarchical_roads(600, 1024.0, 502);
  const RTree tree = seq::hilbert_pack_rtree(lines, 16, 1024.0);
  std::vector<geom::Rect> windows{{0, 0, 1024, 1024},
                                  {100, 100, 150, 150},
                                  {-10, -10, -1, -1},
                                  {512, 0, 1024, 512}};
  const BatchQueryResult batch = batch_window_query(ctx, tree, windows);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(batch.results[w], window_query(tree, windows[w]))
        << "window " << w;
  }
}

TEST(RtreeBatchQuery, EmptyCases) {
  dpv::Context ctx;
  const RTree empty = rtree_build(ctx, {}, RtreeBuildOptions{}).tree;
  const auto r = batch_window_query(ctx, empty, {geom::Rect{0, 0, 5, 5}});
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_TRUE(r.results[0].empty());
  const auto lines = data::uniform_segments(50, 1024.0, 20.0, 503);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  EXPECT_TRUE(batch_window_query(ctx, tree, {}).results.empty());
}

TEST(RtreeBatchQuery, FiredControlAbortsDescent) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(120, 1024.0, 20.0, 505);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  std::atomic<bool> cancel{true};
  BatchControl control;
  control.cancel = &cancel;
  const auto r = batch_window_query(ctx, tree, {geom::Rect{0, 0, 900, 900}},
                                    control);
  EXPECT_TRUE(r.aborted);
}

TEST(RtreeBatchPointQuery, MatchesSequentialQueries) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(400, 1024.0, 20.0, 507);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  std::vector<geom::Point> points;
  for (std::size_t i = 0; i < 60; ++i) {
    // Half on segments (hits), half arbitrary (mostly misses).
    points.push_back(i % 2 == 0 ? lines[i % lines.size()].mid()
                                : geom::Point{(i * 97.0) + 0.5,
                                              1024.0 - i * 13.0});
  }
  const BatchQueryResult batch = batch_point_query(ctx, tree, points);
  ASSERT_EQ(batch.results.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(batch.results[p], point_query(tree, points[p])) << "point " << p;
  }
}

TEST(RtreeBatchPointQuery, ParallelBackendAndPackedTree) {
  dpv::Context ctx = test::make_parallel_context();
  ctx.enable_arena();
  const auto lines = data::hierarchical_roads(600, 1024.0, 508);
  const RTree tree = seq::hilbert_pack_rtree(lines, 16, 1024.0);
  std::vector<geom::Point> points;
  for (std::size_t i = 0; i < 80; ++i) {
    points.push_back(i % 2 == 0 ? lines[i % lines.size()].a
                                : geom::Point{(i * 61.0) * 0.7, i * 11.0});
  }
  const BatchQueryResult batch = batch_point_query(ctx, tree, points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(batch.results[p], point_query(tree, points[p])) << "point " << p;
  }
}

TEST(RtreeBatchPointQuery, EmptyAndAbortCases) {
  dpv::Context ctx;
  const RTree empty = rtree_build(ctx, {}, RtreeBuildOptions{}).tree;
  const auto r = batch_point_query(ctx, empty, {geom::Point{1, 1}});
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_TRUE(r.results[0].empty());

  const auto lines = data::uniform_segments(120, 1024.0, 20.0, 509);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  EXPECT_TRUE(batch_point_query(ctx, tree, {}).results.empty());

  std::atomic<bool> cancel{true};
  BatchControl control;
  control.cancel = &cancel;
  const auto aborted =
      batch_point_query(ctx, tree, {lines[0].mid()}, control);
  EXPECT_TRUE(aborted.aborted);
}

TEST(RtreeBatchQuery, AllWindowsMissEveryNode) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(60, 1024.0, 20.0, 504);
  const RTree tree = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  std::vector<geom::Rect> windows(5, geom::Rect{-100, -100, -50, -50});
  const BatchQueryResult batch = batch_window_query(ctx, tree, windows);
  for (const auto& r : batch.results) EXPECT_TRUE(r.empty());
  EXPECT_EQ(batch.candidates, 0u);
}

}  // namespace
}  // namespace dps::core
