// Coverage for corners the focused suites do not reach: logical/copy scan
// operators, geometric distance helpers, RTree::validate's rejection
// paths, and the Context block partitioner.

#include <gtest/gtest.h>

#include "core/rtree.hpp"
#include "dpv/dpv.hpp"
#include "geom/geom.hpp"
#include "test_util.hpp"

namespace dps {
namespace {

TEST(MiscScanOps, LogicalAndOrScans) {
  dpv::Context ctx;
  const dpv::Vec<std::uint8_t> bits{1, 1, 0, 1, 1, 1};
  const dpv::Flags seg{1, 0, 0, 1, 0, 0};
  EXPECT_EQ(dpv::seg_scan(ctx, dpv::LogicalAnd<std::uint8_t>{}, bits, seg),
            (dpv::Vec<std::uint8_t>{1, 1, 0, 1, 1, 1}));
  const dpv::Vec<std::uint8_t> any{0, 0, 1, 0, 0, 0};
  EXPECT_EQ(dpv::seg_scan(ctx, dpv::LogicalOr<std::uint8_t>{}, any, seg),
            (dpv::Vec<std::uint8_t>{0, 0, 1, 0, 0, 0}));
  // Down-inclusive OR leaves "does any element from here on" per position.
  EXPECT_EQ(dpv::seg_scan(ctx, dpv::LogicalOr<std::uint8_t>{}, any, seg,
                          dpv::Dir::kDown),
            (dpv::Vec<std::uint8_t>{1, 1, 1, 0, 0, 0}));
}

TEST(MiscScanOps, CopyExclusiveMarksHeadsWithIdentity) {
  dpv::Context ctx;
  const dpv::Vec<int> data{7, 1, 2, 9, 3};
  const dpv::Flags seg{1, 0, 0, 1, 0};
  const dpv::Vec<int> ex = dpv::seg_scan(ctx, dpv::Copy<int>{}, data, seg,
                                         dpv::Dir::kUp, dpv::Incl::kExclusive);
  // Heads carry the sentinel identity (0), the rest the group head's value.
  EXPECT_EQ(ex, (dpv::Vec<int>{0, 7, 7, 0, 9}));
  EXPECT_FALSE(dpv::has_true_identity<dpv::Copy<int>>::value);
  EXPECT_TRUE(dpv::has_true_identity<dpv::Plus<int>>::value);
}

TEST(MiscGeom, PointSegmentDistance) {
  using geom::distance2_point_segment;
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(distance2_point_segment({5, 3}, {0, 0}, {10, 0}), 9.0);
  // Beyond the ends: distance to the endpoint.
  EXPECT_DOUBLE_EQ(distance2_point_segment({-3, 4}, {0, 0}, {10, 0}), 25.0);
  EXPECT_DOUBLE_EQ(distance2_point_segment({13, 4}, {0, 0}, {10, 0}), 25.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(distance2_point_segment({3, 4}, {0, 0}, {0, 0}), 25.0);
  // On the segment.
  EXPECT_DOUBLE_EQ(distance2_point_segment({5, 0}, {0, 0}, {10, 0}), 0.0);
}

TEST(MiscGeom, RectPointDistance2) {
  const geom::Rect r{2, 3, 6, 8};
  EXPECT_DOUBLE_EQ(r.distance2({4, 5}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.distance2({0, 5}), 4.0);   // left
  EXPECT_DOUBLE_EQ(r.distance2({4, 10}), 4.0);  // above
  EXPECT_DOUBLE_EQ(r.distance2({0, 0}), 13.0);  // corner: 2^2 + 3^2
}

TEST(MiscRtree, ValidateRejectsCorruption) {
  using Node = core::RTree::Node;
  // A root leaf whose MBR does not cover its entry.
  std::vector<Node> nodes(1);
  nodes[0].is_leaf = true;
  nodes[0].first_entry = 0;
  nodes[0].num_entries = 1;
  nodes[0].mbr = geom::Rect{0, 0, 1, 1};
  std::vector<geom::Segment> entries{{{5, 5}, {6, 6}, 0}};
  const core::RTree bad(std::move(nodes), std::move(entries), 0, 1, 4);
  EXPECT_NE(bad.validate(), "");

  // An internal root with a single child (must have >= 2).
  std::vector<Node> nodes2(2);
  nodes2[0].is_leaf = false;
  nodes2[0].first_child = 1;
  nodes2[0].num_children = 1;
  nodes2[0].mbr = geom::Rect{0, 0, 1, 1};
  nodes2[1].is_leaf = true;
  nodes2[1].num_entries = 1;
  nodes2[1].mbr = geom::Rect{0, 0, 1, 1};
  std::vector<geom::Segment> entries2{{{0, 0}, {1, 1}, 0}};
  const core::RTree bad2(std::move(nodes2), std::move(entries2), 1, 1, 4);
  EXPECT_NE(bad2.validate(), "");
}

TEST(MiscContext, BlockRangesPartitionExactly) {
  for (const std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (const std::size_t k : {1u, 2u, 3u, 7u}) {
      std::size_t covered = 0, prev_hi = 0;
      for (std::size_t b = 0; b < k; ++b) {
        const auto [lo, hi] = dpv::Context::block_range(n, k, b);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_LE(hi - lo, n / k + 1);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(MiscContext, GrainControlsForking) {
  dpv::Context ctx(4);
  ctx.set_grain(100);
  EXPECT_EQ(ctx.block_count(50), 1u);    // below 2x grain: serial
  EXPECT_GE(ctx.block_count(400), 2u);   // forks
  EXPECT_LE(ctx.block_count(400), 4u);
  ctx.set_grain(0);                      // clamps to 1
  EXPECT_EQ(ctx.grain(), 1u);
}

TEST(MiscCounters, ArithmeticAndNames) {
  dpv::PrimCounters a{}, b{};
  a.invocations[0] = 5;
  a.elements[0] = 100;
  b.invocations[0] = 2;
  b.elements[0] = 30;
  dpv::PrimCounters c = a;
  c += b;
  EXPECT_EQ(c.invocations[0], 7u);
  EXPECT_EQ((c - b).invocations[0], 5u);
  EXPECT_EQ(c.total_invocations(), 7u);
  EXPECT_EQ(dpv::prim_name(dpv::Prim::kScan), "scan");
  EXPECT_EQ(dpv::prim_name(dpv::Prim::kSortPass), "sort-pass");
}

}  // namespace
}  // namespace dps
