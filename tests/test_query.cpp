// Window / point query tests over all three structures, cross-checked
// against brute force.

#include "core/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pm1_build.hpp"
#include "core/pmr_build.hpp"
#include "core/rtree_build.hpp"
#include "data/canonical.hpp"
#include "data/mapgen.hpp"
#include "geom/predicates.hpp"

namespace dps::core {
namespace {

std::vector<geom::LineId> brute_force_window(
    const std::vector<geom::Segment>& lines, const geom::Rect& w) {
  std::vector<geom::LineId> out;
  for (const auto& s : lines) {
    if (geom::segment_intersects_rect(s, w)) out.push_back(s.id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct Built {
  std::vector<geom::Segment> lines;
  QuadTree pmr;
  QuadTree pm1;
  RTree rtree;
};

Built build_all(std::size_t n, std::uint64_t seed) {
  dpv::Context ctx;
  Built b;
  b.lines = data::uniform_segments(n, 1024.0, 20.0, seed);
  PmrBuildOptions po;
  po.world = 1024.0;
  po.max_depth = 12;
  po.bucket_capacity = 6;
  b.pmr = pmr_build(ctx, b.lines, po).tree;
  QuadBuildOptions qo;
  qo.world = 1024.0;
  qo.max_depth = 14;
  b.pm1 = pm1_build(ctx, b.lines, qo).tree;
  RtreeBuildOptions ro;
  b.rtree = rtree_build(ctx, b.lines, ro).tree;
  return b;
}

TEST(WindowQuery, MatchesBruteForceOnAllStructures) {
  const Built b = build_all(250, 71);
  const geom::Rect windows[] = {{0, 0, 1024, 1024},
                                {100, 100, 300, 250},
                                {512, 512, 513, 513},
                                {900, 0, 1024, 80},
                                {-50, -50, -1, -1}};
  for (const auto& w : windows) {
    const auto expect = brute_force_window(b.lines, w);
    EXPECT_EQ(window_query(b.pmr, w), expect) << "pmr window";
    EXPECT_EQ(window_query(b.pm1, w), expect) << "pm1 window";
    EXPECT_EQ(window_query(b.rtree, w), expect) << "rtree window";
  }
}

TEST(WindowQuery, EmptyTree) {
  dpv::Context ctx;
  const QuadTree t = pmr_build(ctx, {}, PmrBuildOptions{}).tree;
  EXPECT_TRUE(window_query(t, geom::Rect{0, 0, 1, 1}).empty());
}

TEST(PointQuery, FindsLinesThroughPoint) {
  const Built b = build_all(150, 73);
  // Probe actual segment endpoints and midpoints.
  for (std::size_t i = 0; i < 10; ++i) {
    const geom::Segment& s = b.lines[i * 7];
    for (const geom::Point p : {s.a, s.mid()}) {
      const auto pm1_hits = point_query(b.pm1, p);
      const auto pmr_hits = point_query(b.pmr, p);
      const auto rt_hits = point_query(b.rtree, p);
      EXPECT_TRUE(std::binary_search(pm1_hits.begin(), pm1_hits.end(), s.id));
      EXPECT_TRUE(std::binary_search(pmr_hits.begin(), pmr_hits.end(), s.id));
      EXPECT_TRUE(std::binary_search(rt_hits.begin(), rt_hits.end(), s.id));
      EXPECT_EQ(pm1_hits, pmr_hits);
      EXPECT_EQ(pm1_hits, rt_hits);
    }
  }
}

TEST(PointQuery, MissReturnsEmpty) {
  const Built b = build_all(50, 79);
  // A point far from everything (generators keep a margin).
  EXPECT_TRUE(point_query(b.pmr, geom::Point{1023.9999, 0.00001}).empty());
}

TEST(QueryStats, DisjointQuadtreeVisitsFewerDeadNodesThanRtree) {
  // The section 1 motivation: R-tree nodes overlap, so point queries may
  // probe several subtrees; the disjoint quadtree descends one path per
  // covered region.  Compare candidate segments tested for tiny windows.
  const Built b = build_all(600, 83);
  std::size_t rtree_tested = 0, pmr_tested = 0;
  for (int i = 0; i < 50; ++i) {
    const double x = 20.0 + i * 19.0, y = 1000.0 - i * 19.0;
    const geom::Rect w{x, y, x + 2.0, y + 2.0};
    QueryStats rs, qs;
    window_query(b.rtree, w, &rs);
    window_query(b.pmr, w, &qs);
    rtree_tested += rs.segments_tested;
    pmr_tested += qs.segments_tested;
  }
  EXPECT_GT(rtree_tested, 0u);
  EXPECT_GT(pmr_tested, 0u);
}

TEST(QueryStats, CountsNodesVisited) {
  const Built b = build_all(200, 89);
  QueryStats st;
  window_query(b.pmr, geom::Rect{0, 0, 10, 10}, &st);
  EXPECT_GE(st.nodes_visited, 1u);
  QueryStats all;
  window_query(b.pmr, geom::Rect{0, 0, 1024, 1024}, &all);
  EXPECT_GT(all.nodes_visited, st.nodes_visited);
}

}  // namespace
}  // namespace dps::core
