// Input-validation tests: malformed-map detection (failure injection).

#include "data/validate.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "data/mapgen.hpp"

namespace dps::data {
namespace {

bool has_kind(const std::vector<MapIssue>& issues, MapIssue::Kind k) {
  for (const auto& i : issues) {
    if (i.kind == k) return true;
  }
  return false;
}

TEST(Validate, CleanMapHasNoIssues) {
  const auto lines = planar_segments(100, 512.0, 10.0, 801);
  EXPECT_TRUE(check_map(lines, 512.0).empty());
  EXPECT_TRUE(is_planar(lines, 512.0));
}

TEST(Validate, DetectsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<geom::Segment> bad{{{nan, 1}, {2, 2}, 0},
                                 {{1, 1}, {inf, 2}, 1}};
  const auto issues = check_map(bad, 512.0);
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_TRUE(has_kind(issues, MapIssue::Kind::kNonFinite));
  EXPECT_NE(issues[0].describe().find("non-finite"), std::string::npos);
}

TEST(Validate, DetectsOutOfWorld) {
  std::vector<geom::Segment> bad{{{-1, 5}, {2, 2}, 0},
                                 {{1, 1}, {600, 2}, 1}};
  const auto issues = check_map(bad, 512.0);
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_TRUE(has_kind(issues, MapIssue::Kind::kOutOfWorld));
}

TEST(Validate, DetectsDuplicateIdsAndZeroLength) {
  std::vector<geom::Segment> bad{{{1, 1}, {2, 2}, 7},
                                 {{3, 3}, {4, 4}, 7},
                                 {{5, 5}, {5, 5}, 8}};
  const auto issues = check_map(bad, 512.0);
  EXPECT_TRUE(has_kind(issues, MapIssue::Kind::kDuplicateId));
  EXPECT_TRUE(has_kind(issues, MapIssue::Kind::kZeroLength));
}

TEST(Validate, PlanarityAcceptsSharedVertices) {
  // A star and a grid touch only at shared endpoints.
  auto lines = star_burst(8, {100, 100}, 30.0, 802);
  auto grid = road_grid(3, 3, 512.0, 2.0, 803);
  lines.insert(lines.end(), grid.begin(), grid.end());
  reassign_ids(lines);
  EXPECT_TRUE(is_planar(lines, 512.0));
}

TEST(Validate, PlanarityRejectsCrossing) {
  std::vector<geom::Segment> lines{{{10, 10}, {100, 100}, 0},
                                   {{10, 100}, {100, 10}, 1},
                                   {{200, 200}, {210, 210}, 2}};
  MapIssue issue{};
  EXPECT_FALSE(is_planar(lines, 512.0, &issue));
  EXPECT_EQ(issue.kind, MapIssue::Kind::kCrossing);
  const auto pair = std::minmax(issue.line, issue.other);
  EXPECT_EQ(pair.first, 0u);
  EXPECT_EQ(pair.second, 1u);
}

TEST(Validate, PlanarityOnGeneratedCrossingMap) {
  // uniform_segments at this density virtually always crosses somewhere.
  const auto lines = uniform_segments(500, 512.0, 40.0, 804);
  EXPECT_FALSE(is_planar(lines, 512.0));
}

}  // namespace
}  // namespace dps::data
