// Data-parallel PM1 build tests (section 5.1, Figures 30-33).

#include "core/pm1_build.hpp"

#include <gtest/gtest.h>

#include "data/canonical.hpp"
#include "data/mapgen.hpp"
#include "geom/predicates.hpp"
#include "seq/seq_pm1.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

QuadBuildOptions canonical_opts() {
  QuadBuildOptions o;
  o.world = data::kCanonicalWorld;
  o.max_depth = 6;
  return o;
}

TEST(Pm1Build, EmptyInputGivesRootLeaf) {
  dpv::Context ctx;
  const QuadBuildResult r = pm1_build(ctx, {}, canonical_opts());
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.tree.num_nodes(), 1u);
  EXPECT_TRUE(r.tree.root().is_leaf);
}

TEST(Pm1Build, SingleLineStaysAtRoot) {
  dpv::Context ctx;
  // One line: its two endpoints violate the vertex rule at the root, so a
  // few subdivisions happen, then each endpoint has its own region.
  std::vector<geom::Segment> lines{{{1.0, 1.0}, {6.5, 6.5}, 0}};
  const QuadBuildResult r = pm1_build(ctx, std::move(lines), canonical_opts());
  EXPECT_GE(r.rounds, 1u);
  EXPECT_FALSE(r.depth_limited);
  // Every leaf holds at most one vertex of the line.
  for (const auto& nd : r.tree.nodes()) {
    if (!nd.is_leaf || nd.num_edges == 0) continue;
    EXPECT_FALSE(seq::SeqPm1::violates_rule(
        nd.block,
        {r.tree.edges().begin() + nd.first_edge,
         r.tree.edges().begin() + nd.first_edge + nd.num_edges},
        data::kCanonicalWorld));
  }
}

TEST(Pm1Build, CanonicalDatasetSatisfiesRuleEverywhere) {
  dpv::Context ctx;
  const QuadBuildResult r =
      pm1_build(ctx, data::canonical_dataset(), canonical_opts());
  EXPECT_FALSE(r.depth_limited);
  EXPECT_GE(r.rounds, 2u);
  for (const auto& nd : r.tree.nodes()) {
    if (!nd.is_leaf || nd.num_edges == 0) continue;
    const std::vector<geom::Segment> edges(
        r.tree.edges().begin() + nd.first_edge,
        r.tree.edges().begin() + nd.first_edge + nd.num_edges);
    EXPECT_FALSE(
        seq::SeqPm1::violates_rule(nd.block, edges, data::kCanonicalWorld))
        << "leaf " << nd.block.to_string();
  }
}

TEST(Pm1Build, MatchesSequentialBaselineOnCanonicalDataset) {
  dpv::Context ctx;
  const QuadBuildResult r =
      pm1_build(ctx, data::canonical_dataset(), canonical_opts());
  seq::SeqPm1 s({data::kCanonicalWorld, 6});
  for (const auto& seg : data::canonical_dataset()) s.insert(seg);
  EXPECT_EQ(r.tree.fingerprint(), s.fingerprint());
}

TEST(Pm1Build, RoundTraceShrinksAndCounts) {
  dpv::Context ctx;
  const QuadBuildResult r =
      pm1_build(ctx, data::canonical_dataset(), canonical_opts());
  ASSERT_EQ(r.trace.size(), r.rounds);
  // The first round splits exactly the root.
  EXPECT_EQ(r.trace[0].nodes_split, 1u);
  EXPECT_EQ(r.trace[0].groups, 1u);
  EXPECT_EQ(r.trace[0].line_processors, 9u);
  // Line processors only grow (clones), never shrink.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].line_processors, r.trace[i - 1].line_processors);
  }
}

TEST(Pm1Build, Figure2PathologyForcesDeepSubdivision) {
  dpv::Context ctx;
  QuadBuildOptions o;
  o.world = 8.0;
  o.max_depth = 12;
  const double eps = 8.0 / (1 << 9);  // vertices ~2 cells apart at depth 9
  const QuadBuildResult r =
      pm1_build(ctx, data::close_vertices_pair(8.0, eps), o);
  // Separating the close vertices needs depth around 9-ish; far deeper
  // than the 2 lines alone would suggest.
  EXPECT_GE(r.tree.height(), 8);
  EXPECT_FALSE(r.depth_limited);
}

TEST(Pm1Build, DepthCapReportsLimited) {
  dpv::Context ctx;
  QuadBuildOptions o;
  o.world = 8.0;
  o.max_depth = 3;
  const QuadBuildResult r =
      pm1_build(ctx, data::close_vertices_pair(8.0, 1e-5), o);
  EXPECT_TRUE(r.depth_limited);
  EXPECT_LE(r.tree.height(), 3);
}

TEST(Pm1Build, SharedVertexStarNeedsNoDeepSplit) {
  dpv::Context ctx;
  QuadBuildOptions o;
  o.world = 8.0;
  o.max_depth = 16;
  // 12 lines all sharing one vertex: PM1 keeps them together wherever the
  // vertex's region is; depth stays small.
  const QuadBuildResult r = pm1_build(
      ctx, data::star_burst(12, {3.3, 3.3}, 2.0, /*seed=*/5), o);
  EXPECT_FALSE(r.depth_limited);
  EXPECT_LE(r.tree.height(), 6);
}

TEST(Pm1Build, ParallelBackendProducesIdenticalTree) {
  dpv::Context serial;
  dpv::Context par = test::make_parallel_context();
  QuadBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 20;
  const auto lines = data::planar_segments(400, o.world, 10.0, 77);
  const QuadBuildResult a = pm1_build(serial, lines, o);
  const QuadBuildResult b = pm1_build(par, lines, o);
  EXPECT_EQ(a.tree.fingerprint(), b.tree.fingerprint());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Pm1Build, PrimitiveCountPerRoundIsBoundedConstant) {
  // Section 5.1: each subdivision stage costs O(1) primitives.  Measure
  // invocations per round at two sizes and check they are equal.
  QuadBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 20;
  auto per_round = [&](std::size_t n) {
    dpv::Context ctx;
    const auto lines = data::planar_segments(n, o.world, 8.0, 9);
    const QuadBuildResult r = pm1_build(ctx, lines, o);
    return static_cast<double>(r.prims.total_invocations()) /
           static_cast<double>(r.rounds + 1);
  };
  const double small = per_round(100);
  const double large = per_round(2000);
  EXPECT_LT(large, small * 1.5)
      << "per-round primitive count must not grow with n";
}

}  // namespace
}  // namespace dps::core
