// Quadtree node-split tests (section 4.6, Figures 23-28).

#include "prim/quad_split.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "geom/predicates.hpp"
#include "test_util.hpp"

namespace dps::prim {
namespace {

// Checks the structural invariants every quad_split result must satisfy:
// groups are contiguous runs of a single block, every q-edge properly
// intersects its block, and every (line, child-block) incidence of the
// input is present exactly once.
void check_split_invariants(const LineSet& before, const LineSet& after,
                            const dpv::Flags& split) {
  // 1. Within each group all blocks are equal; group head flags are sane.
  ASSERT_EQ(after.segs.size(), after.blocks.size());
  ASSERT_EQ(after.segs.size(), after.seg.size());
  for (std::size_t i = 1; i < after.size(); ++i) {
    if (!after.seg[i]) {
      EXPECT_EQ(after.blocks[i], after.blocks[i - 1]) << "at " << i;
    }
  }
  // 2. Membership: every q-edge properly intersects its block.
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_TRUE(geom::segment_properly_intersects_rect(
        after.segs[i], after.blocks[i].rect(after.world)))
        << "q-edge " << i << " not in block " << after.blocks[i].to_string();
  }
  // 3. Exactness: for each split input line, its q-edges afterwards are
  // exactly the child quadrants it properly intersects.
  std::map<std::pair<geom::LineId, std::uint64_t>, int> got;
  for (std::size_t i = 0; i < after.size(); ++i) {
    got[{after.segs[i].id, after.blocks[i].morton_key()}]++;
  }
  std::map<std::pair<geom::LineId, std::uint64_t>, int> want;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!split[i]) {
      want[{before.segs[i].id, before.blocks[i].morton_key()}]++;
      continue;
    }
    for (int q = 0; q < 4; ++q) {
      const geom::Block cb =
          before.blocks[i].child(static_cast<geom::Quadrant>(q));
      if (geom::segment_properly_intersects_rect(before.segs[i],
                                                 cb.rect(before.world))) {
        want[{before.segs[i].id, cb.morton_key()}]++;
      }
    }
  }
  EXPECT_EQ(got, want);
}

// The Figures 23-28 scenario: one node with five lines, capacity exceeded.
TEST(QuadSplitFigures23to28, SplitsRootIntoQuadrantOrderedGroups) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  ls.segs = {
      {{1.0, 6.5}, {3.0, 2.5}, 0},  // a: crosses the horizontal axis (W half)
      {{3.0, 5.5}, {5.5, 3.0}, 1},  // b: crosses both axes near center
      {{5.0, 6.0}, {7.0, 6.5}, 2},  // c: NE only
      {{1.0, 1.0}, {3.0, 1.5}, 3},  // d: SW only
      {{5.0, 1.5}, {7.0, 2.5}, 4},  // e: SE only
  };
  ls.blocks.assign(5, geom::Block::root());
  ls.seg = {1, 0, 0, 0, 0};
  const dpv::Flags split{1, 1, 1, 1, 1};

  QuadSplitStats stats;
  const LineSet out = quad_split(ctx, ls, split, &stats);
  EXPECT_EQ(stats.nodes_split, 1u);
  check_split_invariants(ls, out, split);

  // a appears in NW and SW; b in NW, NE, SW and SE (through the center);
  // c, d, e in single quadrants: 5 lines -> 9 q-edges, 4 clones.
  EXPECT_EQ(stats.clones_made, out.size() - 5);
  // Quadrant order NW, NE, SW, SE along the linear ordering.
  std::vector<std::uint64_t> group_keys;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i == 0 || out.seg[i]) group_keys.push_back(out.blocks[i].morton_key());
  }
  const geom::Block root = geom::Block::root();
  const std::vector<std::uint64_t> expect{
      root.child(geom::Quadrant::kNW).morton_key(),
      root.child(geom::Quadrant::kNE).morton_key(),
      root.child(geom::Quadrant::kSW).morton_key(),
      root.child(geom::Quadrant::kSE).morton_key()};
  EXPECT_EQ(group_keys, expect);
}

TEST(QuadSplit, NonSplitGroupsPassThroughUntouched) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  const geom::Block nw{1, 0, 1}, se{1, 1, 0};
  ls.segs = {{{1.0, 6.0}, {3.0, 7.0}, 0},   // NW, stays
             {{5.0, 1.0}, {7.0, 3.0}, 1},   // SE, splits
             {{4.5, 0.5}, {5.5, 1.5}, 2}};  // SE, splits
  ls.blocks = {nw, se, se};
  ls.seg = {1, 1, 0};
  const dpv::Flags split{0, 1, 1};
  QuadSplitStats stats;
  const LineSet out = quad_split(ctx, ls, split, &stats);
  EXPECT_EQ(stats.nodes_split, 1u);
  check_split_invariants(ls, out, split);
  // The NW line is still first and still at depth 1.
  EXPECT_EQ(out.segs[0].id, 0u);
  EXPECT_EQ(out.blocks[0], nw);
}

TEST(QuadSplit, LineOnSplitAxisGoesToBothSides) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  // Lies exactly on the horizontal center line of the root.
  ls.segs = {{{1.0, 4.0}, {3.0, 4.0}, 0}};
  ls.blocks = {geom::Block::root()};
  ls.seg = {1};
  const dpv::Flags split{1};
  const LineSet out = quad_split(ctx, ls, split, nullptr);
  // Present in NW and SW (closed-halves), i.e. two q-edges.
  EXPECT_EQ(out.size(), 2u);
  check_split_invariants(ls, out, split);
}

TEST(QuadSplit, EmptyQuadrantsProduceNoGroups) {
  dpv::Context ctx;
  LineSet ls;
  ls.world = 8.0;
  ls.segs = {{{1.0, 6.0}, {2.0, 7.0}, 0}};  // strictly inside NW
  ls.blocks = {geom::Block::root()};
  ls.seg = {1};
  const dpv::Flags split{1};
  const LineSet out = quad_split(ctx, ls, split, nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(dpv::num_segments(out.seg), 1u);
  EXPECT_EQ(out.blocks[0], geom::Block::root().child(geom::Quadrant::kNW));
}

TEST(QuadSplit, ManyNodesSplitSimultaneously) {
  dpv::Context ctx = test::make_parallel_context();
  LineSet ls;
  ls.world = 16.0;
  // Two depth-1 nodes each with lines crossing their own centers.
  const geom::Block sw{1, 0, 0}, ne{1, 1, 1};
  ls.segs = {{{2.0, 2.0}, {6.0, 6.0}, 0},    // SW, through its center (4,4)
             {{1.0, 3.0}, {3.0, 3.0}, 1},    // SW, lower-left region
             {{10.0, 10.0}, {14.0, 14.0}, 2},  // NE, through its center
             {{13.0, 9.0}, {15.0, 11.0}, 3}};  // NE, east half
  ls.blocks = {sw, sw, ne, ne};
  ls.seg = {1, 0, 1, 0};
  const dpv::Flags split{1, 1, 1, 1};
  QuadSplitStats stats;
  const LineSet out = quad_split(ctx, ls, split, &stats);
  EXPECT_EQ(stats.nodes_split, 2u);
  check_split_invariants(ls, out, split);
}

// Randomized sweep: the split invariants must hold for arbitrary line sets
// at arbitrary depths, serial and parallel.
struct SplitSweepCase {
  std::size_t n;
  std::uint64_t seed;
  bool parallel;
  bool split_all;
};

class QuadSplitSweep : public ::testing::TestWithParam<SplitSweepCase> {};

TEST_P(QuadSplitSweep, InvariantsHold) {
  const SplitSweepCase& c = GetParam();
  dpv::Context ctx = c.parallel ? test::make_parallel_context()
                                : dpv::Context{};
  // Build a line set over the four depth-1 quadrants of a 64-world: each
  // segment is assigned to every quadrant it properly intersects.
  const double world = 64.0;
  std::mt19937_64 rng(c.seed);
  std::uniform_real_distribution<double> pos(0.5, 63.5);
  LineSet ls;
  ls.world = world;
  for (std::uint32_t qx = 0; qx < 2; ++qx) {
    for (std::uint32_t qy = 0; qy < 2; ++qy) {
      const geom::Block b{1, qx, qy};
      const geom::Rect r = b.rect(world);
      bool head = true;
      for (std::size_t i = 0; i < c.n; ++i) {
        const geom::Segment s{{pos(rng), pos(rng)},
                              {pos(rng), pos(rng)},
                              static_cast<geom::LineId>(i)};
        if (!geom::segment_properly_intersects_rect(s, r)) continue;
        ls.segs.push_back(s);
        ls.blocks.push_back(b);
        ls.seg.push_back(head ? 1 : 0);
        head = false;
      }
    }
  }
  if (ls.size() == 0) return;
  dpv::Flags split(ls.size());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    // Split either everything or only the groups in the west quadrants;
    // the flag must be group-constant.
    split[i] = c.split_all || ls.blocks[i].ix == 0;
  }
  QuadSplitStats stats;
  const LineSet out = quad_split(ctx, ls, split, &stats);
  check_split_invariants(ls, out, split);
}

INSTANTIATE_TEST_SUITE_P(
    Random, QuadSplitSweep,
    ::testing::Values(SplitSweepCase{10, 1, false, true},
                      SplitSweepCase{10, 2, true, true},
                      SplitSweepCase{60, 3, false, false},
                      SplitSweepCase{60, 4, true, false},
                      SplitSweepCase{250, 5, false, true},
                      SplitSweepCase{250, 6, true, false}));

}  // namespace
}  // namespace dps::prim
