#include "dpv/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dps::dpv {
namespace {

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int hits = 0;
  pool.run(1, [&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, AllLanesParticipate) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](std::size_t lane) { hits[lane]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LaneCountClampedToPoolSize) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.run(100, [&](std::size_t lane) {
    EXPECT_LT(lane, 3u);
    total++;
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PartialLaunchLeavesOtherLanesIdle) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.run(2, [&](std::size_t lane) {
    EXPECT_LT(lane, 2u);
    total++;
  });
  EXPECT_EQ(total.load(), 2);
}

TEST(ThreadPool, ManySequentialLaunches) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(4, [&](std::size_t lane) { sum += static_cast<int>(lane) + 1; });
  }
  EXPECT_EQ(sum.load(), 200 * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, ZeroLaneRunIsNoop) {
  ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "no lane should run"; });
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;  // smoke: constructs, runs, destructs
  std::atomic<int> total{0};
  pool.run(pool.size(), [&](std::size_t) { total++; });
  EXPECT_EQ(static_cast<std::size_t>(total.load()), pool.size());
}

}  // namespace
}  // namespace dps::dpv
