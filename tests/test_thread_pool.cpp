#include "dpv/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace dps::dpv {
namespace {

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int hits = 0;
  pool.run(1, [&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, AllLanesParticipate) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](std::size_t lane) { hits[lane]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LaneCountClampedToPoolSize) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.run(100, [&](std::size_t lane) {
    EXPECT_LT(lane, 3u);
    total++;
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PartialLaunchLeavesOtherLanesIdle) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.run(2, [&](std::size_t lane) {
    EXPECT_LT(lane, 2u);
    total++;
  });
  EXPECT_EQ(total.load(), 2);
}

TEST(ThreadPool, ManySequentialLaunches) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(4, [&](std::size_t lane) { sum += static_cast<int>(lane) + 1; });
  }
  EXPECT_EQ(sum.load(), 200 * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, ZeroLaneRunIsNoop) {
  ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "no lane should run"; });
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;  // smoke: constructs, runs, destructs
  std::atomic<int> total{0};
  pool.run(pool.size(), [&](std::size_t) { total++; });
  EXPECT_EQ(static_cast<std::size_t>(total.load()), pool.size());
}

TEST(ThreadPool, SingleLanePoolClampsOversizedLaunch) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.run(64, [&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    total++;
  });
  EXPECT_EQ(total.load(), 1);
}

// The serving engine issues launches from several driver threads at once;
// concurrent run() callers must serialize, each seeing a complete launch.
TEST(ThreadPool, ConcurrentRunCallersSerializeCorrectly) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 100;
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        pool.run(4, [&](std::size_t lane) {
          sum += static_cast<std::int64_t>(lane) + 1;
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(sum.load(), std::int64_t{kCallers} * kRounds * (1 + 2 + 3 + 4));
}

// Concurrent callers with *different* lane counts: each launch must see
// exactly its own k, never a neighbor's.
TEST(ThreadPool, ConcurrentMixedWidthLaunches) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> narrow{0}, wide{0};
  std::thread a([&] {
    for (int r = 0; r < 150; ++r) {
      pool.run(2, [&](std::size_t lane) {
        EXPECT_LT(lane, 2u);
        narrow++;
      });
    }
  });
  std::thread b([&] {
    for (int r = 0; r < 150; ++r) {
      pool.run(4, [&](std::size_t lane) {
        EXPECT_LT(lane, 4u);
        wide++;
      });
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(narrow.load(), 150 * 2);
  EXPECT_EQ(wide.load(), 150 * 4);
}

TEST(ThreadPool, DestructionWhileWorkersParked) {
  // Workers that have never run, and workers parked after a launch, must
  // both shut down cleanly.
  { ThreadPool pool(4); }  // never launched
  {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.run(4, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 4);
    // Give a worker a chance to be mid-repark when the destructor fires.
    std::this_thread::yield();
  }
  // Rapid create/launch/destroy churn.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.run(3, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 3);
  }
}

TEST(AsyncPool, RunsEverySubmittedJob) {
  AsyncPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() < 32 && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(AsyncPool, ZeroThreadsClampsToOne) {
  AsyncPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!ran.load() && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(ran.load());
}

// The destructor discards jobs still waiting in the queue and only joins
// the running ones -- a wedged-looking job that polls stopping() cannot
// wedge shutdown, and nothing queued behind it ever starts.
TEST(AsyncPool, DestructorDiscardsQueueAndInterruptsViaStopping) {
  std::atomic<bool> queued_ran{false};
  std::atomic<bool> long_job_started{false};
  {
    AsyncPool pool(1);
    pool.submit([&] {
      long_job_started.store(true);
      while (!pool.stopping()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    while (!long_job_started.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] { queued_ran.store(true); });
    }
    // ~AsyncPool: clears the queue, flips stopping(), joins the worker.
  }
  EXPECT_FALSE(queued_ran.load())
      << "jobs still queued at shutdown must be dropped, not run";
}

TEST(ThreadPool, UnevenLaneDurationsStillJoin) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.run(4, [&](std::size_t lane) {
    if (lane == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    done++;
  });
  // run() returning proves the join barrier held for the slow lane.
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace dps::dpv
