// Data-parallel bucket PMR build tests (section 5.2, Figures 35-38).

#include "core/pmr_build.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "data/canonical.hpp"
#include "data/mapgen.hpp"
#include "geom/predicates.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

PmrBuildOptions canonical_opts() {
  PmrBuildOptions o;
  o.world = data::kCanonicalWorld;
  o.max_depth = data::kCanonicalMaxDepth;
  o.bucket_capacity = 2;
  return o;
}

TEST(PmrBuild, EmptyAndTiny) {
  dpv::Context ctx;
  EXPECT_EQ(pmr_build(ctx, {}, canonical_opts()).tree.num_nodes(), 1u);
  std::vector<geom::Segment> one{{{1, 1}, {2, 2}, 0}};
  const QuadBuildResult r = pmr_build(ctx, std::move(one), canonical_opts());
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_TRUE(r.tree.root().is_leaf);
  EXPECT_EQ(r.tree.num_qedges(), 1u);
}

TEST(PmrBuild, CanonicalDatasetFigure4) {
  dpv::Context ctx;
  const QuadBuildResult r =
      pmr_build(ctx, data::canonical_dataset(), canonical_opts());
  // Capacity 2, nine lines: the root and several children must subdivide;
  // the tree reaches the maximal height 3 around line i's vertices.
  EXPECT_GE(r.rounds, 2u);
  EXPECT_LE(r.tree.height(), data::kCanonicalMaxDepth);
  // Every leaf above the depth cap respects the bucket capacity.
  for (const auto& nd : r.tree.nodes()) {
    if (!nd.is_leaf || nd.block.depth >= data::kCanonicalMaxDepth) continue;
    EXPECT_LE(nd.num_edges, 2u) << "leaf " << nd.block.to_string();
  }
}

TEST(PmrBuild, LeavesAtDepthCapMayOverflow) {
  dpv::Context ctx;
  // Many lines through one tiny region force cap-depth leaves above
  // capacity (the paper's node 9 in Figure 38).
  const auto lines = data::star_burst(9, {1.02, 1.02}, 4.0, 3);
  PmrBuildOptions o = canonical_opts();
  const QuadBuildResult r = pmr_build(ctx, lines, o);
  EXPECT_TRUE(r.depth_limited);
  EXPECT_GT(r.tree.max_leaf_occupancy(), o.bucket_capacity);
  EXPECT_LE(r.tree.height(), o.max_depth);
}

TEST(PmrBuild, QEdgeMembershipInvariant) {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 12;
  o.bucket_capacity = 4;
  const auto lines = data::uniform_segments(300, o.world, 20.0, 11);
  const QuadBuildResult r = pmr_build(ctx, lines, o);
  std::size_t edges = 0;
  for (const auto& nd : r.tree.nodes()) {
    if (!nd.is_leaf) continue;
    for (std::uint32_t i = 0; i < nd.num_edges; ++i) {
      const geom::Segment& s = r.tree.edges()[nd.first_edge + i];
      EXPECT_TRUE(geom::segment_properly_intersects_rect(
          s, nd.block.rect(o.world)));
      ++edges;
    }
  }
  EXPECT_EQ(edges, r.tree.num_qedges());
  EXPECT_GE(edges, 300u);  // every input line appears at least once
}

TEST(PmrBuild, ShapeIsInsertionOrderIndependent) {
  // The defining property of the bucket PMR quadtree (section 2.2.1): the
  // input order cannot change the result.  (In the data-parallel build the
  // initial vector order is the "insertion order".)
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 10;
  o.bucket_capacity = 4;
  auto lines = data::clustered_segments(200, 5, 30.0, o.world, 15.0, 21);
  dpv::Context ctx;
  const std::string fp1 = pmr_build(ctx, lines, o).tree.fingerprint();
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    std::shuffle(lines.begin(), lines.end(), rng);
    EXPECT_EQ(pmr_build(ctx, lines, o).tree.fingerprint(), fp1)
        << "shuffle " << trial;
  }
}

TEST(PmrBuild, HigherCapacityGivesSmallerTree) {
  // Section 2.2: increasing the threshold decreases storage (fewer nodes).
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 12;
  const auto lines = data::uniform_segments(500, o.world, 15.0, 31);
  std::size_t prev_nodes = std::numeric_limits<std::size_t>::max();
  for (const std::size_t cap : {2u, 8u, 32u}) {
    o.bucket_capacity = cap;
    const QuadBuildResult r = pmr_build(ctx, lines, o);
    EXPECT_LT(r.tree.num_nodes(), prev_nodes) << "capacity " << cap;
    prev_nodes = r.tree.num_nodes();
  }
}

TEST(PmrBuild, ParallelBackendProducesIdenticalTree) {
  dpv::Context serial;
  dpv::Context par = test::make_parallel_context();
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 12;
  o.bucket_capacity = 8;
  const auto lines = data::hierarchical_roads(600, o.world, 41);
  EXPECT_EQ(pmr_build(serial, lines, o).tree.fingerprint(),
            pmr_build(par, lines, o).tree.fingerprint());
}

TEST(PmrBuild, RoundsGrowLogarithmically) {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = 4096.0;
  o.max_depth = 16;
  o.bucket_capacity = 8;
  const auto small = data::uniform_segments(100, o.world, 30.0, 51);
  const auto large = data::uniform_segments(3200, o.world, 30.0, 51);
  const std::size_t r_small = pmr_build(ctx, small, o).rounds;
  const std::size_t r_large = pmr_build(ctx, large, o).rounds;
  // 32x the data should cost only ~log2(32) = 5 extra rounds (plus slack).
  EXPECT_LE(r_large, r_small + 8);
}

}  // namespace
}  // namespace dps::core
