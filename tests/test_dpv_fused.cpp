// Fused-pass property tests (dpv/fused.hpp).
//
// Each fused pass promises bitwise-identical results to the unfused
// primitive composition it replaces, plus exact counter attribution (one
// invocation per constituent primitive category).  Seeded randomized
// layouts cover empty inputs, single elements, all-kept / all-dropped
// masks, single-element groups, long uniform runs, and runs that straddle
// block boundaries.

#include "dpv/fused.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "dpv/dpv.hpp"

namespace dps::dpv {
namespace {

// Unfused oracle for multi_pack on one vector: the map+scan+compact chain
// pack() runs internally.
template <typename T>
std::vector<T> pack_oracle(const Flags& keep, const Vec<T>& data) {
  std::vector<T> out;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) out.push_back(data[i]);
  }
  return out;
}

TEST(MultiPack, MatchesPerVectorPackAcrossRandomMasks) {
  std::mt19937_64 rng(20260809);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{33},
        std::size_t{4096}, std::size_t{4097}, std::size_t{20000}}) {
    for (const double density : {0.0, 0.03, 0.5, 1.0}) {
      Context ctx;
      std::bernoulli_distribution keep_p(density);
      Flags keep = tabulate(ctx, n, [&](std::size_t) {
        return static_cast<std::uint8_t>(keep_p(rng) ? 1 : 0);
      });
      Vec<std::uint32_t> a = tabulate(ctx, n, [&](std::size_t i) {
        return static_cast<std::uint32_t>(i * 2654435761u);
      });
      Vec<double> b = tabulate(ctx, n, [&](std::size_t i) {
        return static_cast<double>(i) * 0.5 - 17.0;
      });
      Vec<std::size_t> c = tabulate(ctx, n, [&](std::size_t i) { return ~i; });

      // Oracle via the unfused primitive (and a plain serial loop).
      Vec<std::uint32_t> pa = pack(ctx, a, keep);
      Vec<double> pb = pack(ctx, b, keep);
      Vec<std::size_t> pc = pack(ctx, c, keep);

      auto [fa, fb, fc] = multi_pack(ctx, keep, a, b, c);
      ASSERT_EQ(fa.size(), pa.size()) << "n=" << n << " d=" << density;
      ASSERT_EQ(fb.size(), pb.size());
      ASSERT_EQ(fc.size(), pc.size());
      for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i], pa[i]) << i;
        EXPECT_EQ(fb[i], pb[i]) << i;
        EXPECT_EQ(fc[i], pc[i]) << i;
      }
      const std::vector<std::uint32_t> serial = pack_oracle(keep, a);
      ASSERT_EQ(fa.size(), serial.size());
      for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], serial[i]);
    }
  }
}

TEST(MultiPack, CountsOneMapOneScanAndKPacks) {
  Context ctx;
  const std::size_t n = 1000;
  Flags keep = tabulate(ctx, n, [](std::size_t i) {
    return static_cast<std::uint8_t>(i % 3 == 0);
  });
  Vec<std::size_t> a = iota(ctx, n);
  Vec<std::size_t> b = iota(ctx, n);
  const PrimCounters before = ctx.snapshot();
  auto [fa, fb] = multi_pack(ctx, keep, a, b);
  const PrimCounters d = ctx.snapshot() - before;
  EXPECT_EQ(d.invocations[static_cast<std::size_t>(Prim::kElementwise)], 1u);
  EXPECT_EQ(d.invocations[static_cast<std::size_t>(Prim::kScan)], 1u);
  EXPECT_EQ(d.invocations[static_cast<std::size_t>(Prim::kPack)], 2u);
  EXPECT_EQ(d.total_invocations(), 4u);
}

TEST(MultiPack, SelfAssignmentThroughTieIsSafe) {
  Context ctx;
  const std::size_t n = 5000;
  Vec<std::uint32_t> a = tabulate(ctx, n, [](std::size_t i) {
    return static_cast<std::uint32_t>(i);
  });
  Vec<std::uint32_t> expect_a;
  Flags keep = tabulate(ctx, n, [](std::size_t i) {
    return static_cast<std::uint8_t>((i * i) % 7 < 3);
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) expect_a.push_back(a[i]);
  }
  // The pipelines overwrite the inputs in place: tie(a) = multi_pack(.., a).
  std::tie(a) = multi_pack(ctx, keep, a);
  ASSERT_EQ(a.size(), expect_a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], expect_a[i]);
}

// Unfused composition fused_group_rank_select documents and replaces.
template <typename G, typename LimitF>
Flags group_rank_select_oracle(Context& ctx, const Vec<G>& gid, LimitF&& limit,
                               Vec<std::size_t>* rank_out,
                               Flags* heads_out) {
  const std::size_t n = gid.size();
  Flags heads = tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(i == 0 || !(gid[i] == gid[i - 1]));
  });
  Vec<std::size_t> ones = constant<std::size_t>(ctx, n, 1);
  Vec<std::size_t> rank = seg_scan(ctx, Plus<std::size_t>{}, ones, heads,
                                   Dir::kUp, Incl::kExclusive);
  Flags keep = tabulate(ctx, n, [&](std::size_t i) {
    return static_cast<std::uint8_t>(rank[i] < limit(gid[i]) ? 1 : 0);
  });
  if (rank_out != nullptr) *rank_out = std::move(rank);
  if (heads_out != nullptr) *heads_out = std::move(heads);
  return keep;
}

// Random sorted group layout: group ids increase, run lengths drawn from a
// mix of 1s, small runs, and occasional very long runs (so some groups span
// many scheduler blocks).
Vec<std::uint32_t> random_groups(Context& ctx, std::mt19937_64& rng,
                                 std::size_t target_n) {
  std::vector<std::uint32_t> gid;
  std::uint32_t g = 0;
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_int_distribution<std::size_t> small(1, 7);
  std::uniform_int_distribution<std::size_t> big(500, 9000);
  while (gid.size() < target_n) {
    const std::size_t len = kind(rng) == 0 ? big(rng) : small(rng);
    for (std::size_t i = 0; i < len && gid.size() < target_n; ++i) {
      gid.push_back(g);
    }
    g += 1 + static_cast<std::uint32_t>(kind(rng) == 1);  // sometimes skip ids
  }
  return tabulate(ctx, gid.size(), [&](std::size_t i) { return gid[i]; });
}

TEST(FusedGroupRankSelect, MatchesUnfusedCompositionOnRandomLayouts) {
  std::mt19937_64 rng(0xF05ED);
  for (int trial = 0; trial < 8; ++trial) {
    Context ctx;
    const std::size_t n = trial == 0   ? 0
                          : trial == 1 ? 1
                                       : 1000 * static_cast<std::size_t>(trial);
    Vec<std::uint32_t> gid = random_groups(ctx, rng, n);
    const auto limit = [&](std::uint32_t g) -> std::size_t {
      return (g % 5 == 0) ? 0 : (g % 3) + 1;  // some groups keep nothing
    };
    Vec<std::size_t> orank;
    Flags oheads;
    Flags okeep = group_rank_select_oracle(ctx, gid, limit, &orank, &oheads);
    Vec<std::size_t> frank;
    Flags fheads;
    Flags fkeep = fused_group_rank_select(ctx, gid, limit, &frank, &fheads);
    ASSERT_EQ(fkeep.size(), okeep.size()) << "trial " << trial;
    for (std::size_t i = 0; i < fkeep.size(); ++i) {
      EXPECT_EQ(fkeep[i], okeep[i]) << "keep i=" << i << " trial " << trial;
      EXPECT_EQ(frank[i], orank[i]) << "rank i=" << i << " trial " << trial;
      EXPECT_EQ(fheads[i], oheads[i]) << "head i=" << i << " trial " << trial;
    }
  }
}

TEST(FusedGroupRankSelect, SingleGroupSpanningAllBlocks) {
  Context ctx;
  const std::size_t n = 50000;  // >> grain, so one run crosses every block
  Vec<std::uint32_t> gid = constant<std::uint32_t>(ctx, n, 7);
  Vec<std::size_t> rank;
  Flags keep = fused_group_rank_select(
      ctx, gid, [](std::uint32_t) -> std::size_t { return 3; }, &rank);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(rank[i], i) << i;
    ASSERT_EQ(keep[i] != 0, i < 3) << i;
  }
}

TEST(FusedGroupRankSelect, CountsTwoElementwiseOneScan) {
  Context ctx;
  Vec<std::uint32_t> gid = tabulate(ctx, 256, [](std::size_t i) {
    return static_cast<std::uint32_t>(i / 4);
  });
  const PrimCounters before = ctx.snapshot();
  fused_group_rank_select(ctx, gid,
                          [](std::uint32_t) -> std::size_t { return 2; });
  const PrimCounters d = ctx.snapshot() - before;
  EXPECT_EQ(d.invocations[static_cast<std::size_t>(Prim::kElementwise)], 2u);
  EXPECT_EQ(d.invocations[static_cast<std::size_t>(Prim::kScan)], 1u);
  EXPECT_EQ(d.total_invocations(), 3u);
}

}  // namespace
}  // namespace dps::dpv
