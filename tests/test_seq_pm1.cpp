// Sequential PM1 baseline tests.

#include "seq/seq_pm1.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "data/canonical.hpp"
#include "data/mapgen.hpp"

namespace dps::seq {
namespace {

TEST(SeqPm1, RuleDecisions) {
  const double w = 8.0;
  const geom::Block root = geom::Block::root();
  // One vertex-free passing q-edge: fine.
  EXPECT_FALSE(SeqPm1::violates_rule(geom::Block{1, 0, 0},
                                     {{{1, 4.5}, {4.5, 1}, 0}}, w));
  // Both endpoints inside: two vertices.
  EXPECT_TRUE(SeqPm1::violates_rule(root, {{{1, 1}, {2, 2}, 0}}, w));
  // Two lines sharing one vertex inside a sub-block.
  EXPECT_FALSE(SeqPm1::violates_rule(
      geom::Block{1, 0, 0}, {{{2, 2}, {6, 2}, 0}, {{2, 2}, {2, 6}, 1}}, w));
  // Two lines with distinct vertices inside.
  EXPECT_TRUE(SeqPm1::violates_rule(
      geom::Block{1, 0, 0}, {{{1, 1}, {6, 2}, 0}, {{2, 2}, {2, 6}, 1}}, w));
  // Empty node.
  EXPECT_FALSE(SeqPm1::violates_rule(root, {}, w));
}

TEST(SeqPm1, InsertionOrderIndependence) {
  // PM1's rule is monotone, so the decomposition is unique; shuffling the
  // input cannot change the fingerprint.
  auto lines = data::canonical_dataset();
  SeqPm1::Options o{data::kCanonicalWorld, 8};
  SeqPm1 first(o);
  for (const auto& s : lines) first.insert(s);
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 4; ++trial) {
    std::shuffle(lines.begin(), lines.end(), rng);
    SeqPm1 t(o);
    for (const auto& s : lines) t.insert(s);
    EXPECT_EQ(t.fingerprint(), first.fingerprint()) << "trial " << trial;
  }
}

TEST(SeqPm1, AllLeavesSatisfyTheRule) {
  // PM1 requires planar input (crossing segments violate the vertex rule
  // at every depth); depth 22 covers random close endpoint pairs.
  SeqPm1::Options o{1024.0, 22};
  SeqPm1 t(o);
  for (const auto& s : data::planar_segments(300, 1024.0, 15.0, 8)) {
    t.insert(s);
  }
  EXPECT_FALSE(t.depth_limited());
  EXPECT_GT(t.num_qedges(), 0u);
}

TEST(SeqPm1, CrossingSegmentsAreUnrepresentable) {
  // Two segments crossing away from any shared vertex: every cell around
  // the crossing holds two vertex-free lines, so the build runs to the
  // depth cap -- the documented planarity precondition.
  // The crossing point must not be a dyadic lattice point, or the grid
  // eventually separates the lines at a cell corner.
  SeqPm1::Options o{8.0, 10};
  SeqPm1 t(o);
  t.insert({{1, 1}, {7, 6.1}, 0});
  t.insert({{1, 6.9}, {7, 1.3}, 1});
  EXPECT_TRUE(t.depth_limited());
}

TEST(SeqPm1, DepthCapFlagsViolation) {
  SeqPm1::Options o{8.0, 3};
  SeqPm1 t(o);
  for (const auto& s : data::close_vertices_pair(8.0, 1e-6)) t.insert(s);
  EXPECT_TRUE(t.depth_limited());
  EXPECT_LE(t.height(), 3);
}

}  // namespace
}  // namespace dps::seq
