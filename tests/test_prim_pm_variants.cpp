// PM-family variant tests (sections 2.1/4.5): PM1 vs PM2 vs PM3 split
// criteria, data-parallel vs sequential rule agreement, and the
// permissiveness hierarchy PM3 <= PM2 <= PM1 (in node counts).

#include "prim/pm_split_test.hpp"

#include <gtest/gtest.h>

#include "core/pm1_build.hpp"
#include "data/mapgen.hpp"
#include "seq/seq_pm1.hpp"
#include "test_util.hpp"

namespace dps::prim {
namespace {

// One node holding a configurable line set over an 8x8 world.  The default
// block is the depth-2 cell [2,3) x [2,3), small enough that lines can pass
// through it with both endpoints outside.
LineSet one_node(std::vector<geom::Segment> segs,
                 geom::Block block = geom::Block{2, 1, 1}) {
  LineSet ls;
  ls.world = 8.0;
  ls.seg = dpv::Flags(segs.size(), 0);
  if (!segs.empty()) ls.seg[0] = 1;
  ls.blocks.assign(segs.size(), block);
  ls.segs = dpv::to_vec(segs);
  return ls;
}

std::uint8_t decide(const LineSet& ls, PmVariant v) {
  dpv::Context ctx;
  const PmSplitDecision d = pm_split_test(ctx, ls, v);
  return d.group_split.at(0);
}

TEST(PmVariants, TwoPassingLinesSharingAnOutsideVertex) {
  // Both lines cross the cell [2,3)x[2,3) with endpoints outside it; they
  // share the vertex w = (5,5) beyond the cell.
  const geom::Point w{5.0, 5.0};
  const LineSet ls =
      one_node({{w, {0.5, 0.5}, 0}, {w, {1.4, 0.2}, 1}});
  EXPECT_EQ(decide(ls, PmVariant::kPm1), 1);  // PM1: >1 passing line
  EXPECT_EQ(decide(ls, PmVariant::kPm2), 0);  // PM2: common outside vertex
  EXPECT_EQ(decide(ls, PmVariant::kPm3), 0);  // PM3: no vertex at all
}

TEST(PmVariants, TwoUnrelatedPassingLines) {
  const LineSet ls = one_node(
      {{{5.0, 5.0}, {0.5, 0.5}, 0}, {{0.2, 4.8}, {4.8, 0.2}, 1}});
  EXPECT_EQ(decide(ls, PmVariant::kPm1), 1);
  EXPECT_EQ(decide(ls, PmVariant::kPm2), 1);  // no common vertex
  EXPECT_EQ(decide(ls, PmVariant::kPm3), 0);  // still no vertex inside
}

TEST(PmVariants, VertexPlusUnrelatedPassingLine) {
  const LineSet ls = one_node(
      {{{2.2, 2.2}, {6.0, 2.2}, 0},    // vertex (2.2, 2.2) inside the cell
       {{0.2, 4.8}, {4.8, 0.2}, 1}});  // passes, not incident on it
  EXPECT_EQ(decide(ls, PmVariant::kPm1), 1);
  EXPECT_EQ(decide(ls, PmVariant::kPm2), 1);
  EXPECT_EQ(decide(ls, PmVariant::kPm3), 0);  // only one vertex
}

TEST(PmVariants, VertexWithAllLinesIncident) {
  const geom::Point v{2.2, 2.2};
  const LineSet ls = one_node(
      {{v, {6.0, 2.2}, 0}, {v, {2.2, 6.0}, 1}, {v, {5.5, 5.5}, 2}});
  EXPECT_EQ(decide(ls, PmVariant::kPm1), 0);
  EXPECT_EQ(decide(ls, PmVariant::kPm2), 0);
  EXPECT_EQ(decide(ls, PmVariant::kPm3), 0);
}

TEST(PmVariants, TwoVerticesSplitEverywhere) {
  const LineSet ls = one_node(
      {{{2.1, 2.1}, {6.0, 2.0}, 0}, {{2.8, 2.5}, {2.5, 6.0}, 1}});
  EXPECT_EQ(decide(ls, PmVariant::kPm1), 1);
  EXPECT_EQ(decide(ls, PmVariant::kPm2), 1);
  EXPECT_EQ(decide(ls, PmVariant::kPm3), 1);
}

TEST(PmVariants, SequentialRuleAgreesWithDataParallel) {
  // Sweep all the node configurations above through both rule engines.
  const std::vector<std::vector<geom::Segment>> cases = {
      {{{5.0, 5.0}, {0.5, 0.5}, 0}, {{5.0, 5.0}, {1.4, 0.2}, 1}},
      {{{5.0, 5.0}, {0.5, 0.5}, 0}, {{0.2, 4.8}, {4.8, 0.2}, 1}},
      {{{2.2, 2.2}, {6.0, 2.2}, 0}, {{0.2, 4.8}, {4.8, 0.2}, 1}},
      {{{2.2, 2.2}, {6.0, 2.2}, 0}, {{2.2, 2.2}, {2.2, 6.0}, 1}},
      {{{2.1, 2.1}, {6.0, 2.0}, 0}, {{2.8, 2.5}, {2.5, 6.0}, 1}},
      {{{2.1, 2.1}, {2.5, 6.0}, 0}},
      {{{0.5, 0.5}, {5.0, 5.0}, 0}},
  };
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const LineSet ls = one_node(cases[c]);
    for (const auto v :
         {PmVariant::kPm1, PmVariant::kPm2, PmVariant::kPm3}) {
      EXPECT_EQ(decide(ls, v) != 0,
                seq::SeqPm1::violates_rule(geom::Block{2, 1, 1}, cases[c],
                                           8.0, v))
          << "case " << c << " variant " << int(v);
    }
  }
}

TEST(PmVariants, HierarchyOfNodeCounts) {
  // PM3 is the most permissive rule, PM1 the strictest: node counts obey
  // PM3 <= PM2 <= PM1 on the same (planar) map.
  dpv::Context ctx;
  const auto lines = data::planar_roads(500, 1024.0, 17);
  core::QuadBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 20;
  std::size_t nodes[4] = {};
  for (const auto v : {PmVariant::kPm1, PmVariant::kPm2, PmVariant::kPm3}) {
    o.variant = v;
    nodes[int(v)] = core::pm1_build(ctx, lines, o).tree.num_nodes();
  }
  EXPECT_LE(nodes[3], nodes[2]);
  EXPECT_LE(nodes[2], nodes[1]);
  EXPECT_LT(nodes[3], nodes[1]);  // strict somewhere on a road map
}

TEST(PmVariants, Pm3ToleratesCrossingSegments) {
  dpv::Context ctx;
  core::QuadBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 16;
  o.variant = PmVariant::kPm3;
  const auto lines = data::uniform_segments(300, 1024.0, 25.0, 12);
  const core::QuadBuildResult r = core::pm1_build(ctx, lines, o);
  EXPECT_FALSE(r.depth_limited);
  // And it matches the sequential PM3 build exactly.
  seq::SeqPm1 s({1024.0, 16, PmVariant::kPm3});
  for (const auto& seg : lines) s.insert(seg);
  EXPECT_EQ(r.tree.fingerprint(), s.fingerprint());
}

TEST(PmVariants, Pm2MatchesSequentialOnPlanarRoads) {
  dpv::Context ctx = test::make_parallel_context();
  core::QuadBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 20;
  o.variant = PmVariant::kPm2;
  const auto lines = data::planar_roads(400, 1024.0, 23);
  const core::QuadBuildResult r = core::pm1_build(ctx, lines, o);
  seq::SeqPm1 s({1024.0, 20, PmVariant::kPm2});
  for (const auto& seg : lines) s.insert(seg);
  EXPECT_EQ(r.tree.fingerprint(), s.fingerprint());
  EXPECT_EQ(r.depth_limited, s.depth_limited());
}

}  // namespace
}  // namespace dps::prim
