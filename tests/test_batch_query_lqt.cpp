// Data-parallel linear-quadtree batch pipelines vs the sequential descent.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>

#include "core/batch_query.hpp"
#include "core/linear_quadtree.hpp"
#include "core/pmr_build.hpp"
#include "data/mapgen.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

constexpr double kWorld = 1024.0;

struct LqtCase {
  const char* generator;
  std::size_t n_lines;
  std::size_t n_queries;
  std::uint64_t seed;
  bool parallel;
};

std::vector<geom::Segment> make_map(const LqtCase& c) {
  const std::string g = c.generator;
  if (g == "roads") return data::hierarchical_roads(c.n_lines, kWorld, c.seed);
  if (g == "clustered") {
    return data::clustered_segments(c.n_lines, 5, kWorld / 30.0, kWorld, 12.0,
                                    c.seed);
  }
  return data::uniform_segments(c.n_lines, kWorld, 18.0, c.seed);
}

class LqtBatchQuery : public ::testing::TestWithParam<LqtCase> {
 protected:
  void SetUp() override {
    const LqtCase& c = GetParam();
    lines_ = make_map(c);
    dpv::Context ctx;
    PmrBuildOptions po;
    po.world = kWorld;
    po.max_depth = 12;
    po.bucket_capacity = 6;
    tree_ = LinearQuadTree::from(pmr_build(ctx, lines_, po).tree);
  }

  std::vector<geom::Segment> lines_;
  LinearQuadTree tree_;
};

TEST_P(LqtBatchQuery, WindowsMatchSequentialDescent) {
  const LqtCase& c = GetParam();
  std::mt19937_64 rng(c.seed * 31 + 5);
  std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
  std::uniform_real_distribution<double> extent(2.0, kWorld / 5.0);
  std::vector<geom::Rect> windows;
  for (std::size_t i = 0; i < c.n_queries; ++i) {
    const double x = pos(rng), y = pos(rng);
    windows.push_back({x, y, std::min(kWorld, x + extent(rng)),
                       std::min(kWorld, y + extent(rng))});
  }
  windows.push_back({0, 0, kWorld, kWorld});      // everything
  windows.push_back({-50, -50, -1, -1});          // nothing
  dpv::Context ctx =
      c.parallel ? test::make_parallel_context() : dpv::Context{};
  ctx.enable_arena();
  const BatchQueryResult batch = batch_window_query(ctx, tree_, windows);
  ASSERT_EQ(batch.results.size(), windows.size());
  EXPECT_FALSE(batch.aborted);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(batch.results[w], tree_.window_query(windows[w]))
        << "window " << w;
  }
}

TEST_P(LqtBatchQuery, PointsMatchSequentialDescent) {
  const LqtCase& c = GetParam();
  std::mt19937_64 rng(c.seed * 53 + 11);
  std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
  std::vector<geom::Point> points;
  for (std::size_t i = 0; i < c.n_queries; ++i) {
    // Half on segments (guaranteed hits), half free (mostly misses).
    points.push_back(i % 2 == 0 && !lines_.empty()
                         ? lines_[i % lines_.size()].mid()
                         : geom::Point{pos(rng), pos(rng)});
  }
  dpv::Context ctx =
      c.parallel ? test::make_parallel_context() : dpv::Context{};
  const BatchQueryResult batch = batch_point_query(ctx, tree_, points);
  ASSERT_EQ(batch.results.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(batch.results[p], tree_.point_query(points[p]))
        << "point " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LqtBatchQuery,
    ::testing::Values(LqtCase{"uniform", 300, 60, 1, false},
                      LqtCase{"uniform", 500, 80, 2, true},
                      LqtCase{"clustered", 400, 60, 3, false},
                      LqtCase{"clustered", 400, 60, 4, true},
                      LqtCase{"roads", 450, 60, 5, false},
                      LqtCase{"roads", 450, 60, 6, true}),
    [](const ::testing::TestParamInfo<LqtCase>& info) {
      const LqtCase& c = info.param;
      return std::string(c.generator) + std::to_string(c.n_lines) + "_s" +
             std::to_string(c.seed) + (c.parallel ? "_pool" : "_serial");
    });

TEST(LqtBatchQueryEdge, EmptyTreeAndEmptyBatch) {
  dpv::Context ctx;
  const LinearQuadTree empty;
  const auto r = batch_window_query(ctx, empty, {geom::Rect{0, 0, 5, 5}});
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_TRUE(r.results[0].empty());
  EXPECT_EQ(r.candidates, 0u);

  const auto lines = data::uniform_segments(50, kWorld, 20.0, 71);
  PmrBuildOptions po;
  po.world = kWorld;
  const LinearQuadTree tree =
      LinearQuadTree::from(pmr_build(ctx, lines, po).tree);
  EXPECT_TRUE(batch_window_query(ctx, tree, {}).results.empty());
  EXPECT_TRUE(batch_point_query(ctx, tree, {}).results.empty());
}

TEST(LqtBatchQueryEdge, FiredControlAbortsDescent) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(120, kWorld, 20.0, 72);
  PmrBuildOptions po;
  po.world = kWorld;
  const LinearQuadTree tree =
      LinearQuadTree::from(pmr_build(ctx, lines, po).tree);
  std::atomic<bool> cancel{true};
  BatchControl control;
  control.cancel = &cancel;
  const auto r =
      batch_window_query(ctx, tree, {geom::Rect{0, 0, 900, 900}}, control);
  EXPECT_TRUE(r.aborted);
}

TEST(LqtBatchQueryEdge, BoundaryPointsSeeNeighborCells) {
  // A point on a cell border must report lines of every touching cell,
  // exactly like the sequential degenerate-window descent.
  dpv::Context ctx;
  const auto lines = data::hierarchical_roads(300, kWorld, 73);
  PmrBuildOptions po;
  po.world = kWorld;
  po.max_depth = 10;
  po.bucket_capacity = 4;
  const LinearQuadTree tree =
      LinearQuadTree::from(pmr_build(ctx, lines, po).tree);
  std::vector<geom::Point> points;
  for (int i = 1; i < 8; ++i) {
    const double cell = kWorld / 8.0 * i;  // depth-3 grid lines
    points.push_back({cell, cell});
    points.push_back({cell, kWorld / 2.0});
  }
  const auto batch = batch_point_query(ctx, tree, points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_EQ(batch.results[p], tree.point_query(points[p])) << "point " << p;
  }
}

}  // namespace
}  // namespace dps::core
