// QuadTree assembly and accessor tests (the structure shared by the PM and
// bucket PMR builds).

#include "core/quadtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/pmr_build.hpp"
#include "data/canonical.hpp"
#include "data/mapgen.hpp"

namespace dps::core {
namespace {

QuadTree canonical_tree() {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = data::kCanonicalWorld;
  o.max_depth = data::kCanonicalMaxDepth;
  o.bucket_capacity = 2;
  return pmr_build(ctx, data::canonical_dataset(), o).tree;
}

TEST(QuadTreeStructure, RootAndChildLinksAreConsistent) {
  const QuadTree t = canonical_tree();
  EXPECT_EQ(t.root().block, geom::Block::root());
  std::set<std::int32_t> seen{0};
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const QuadTree::Node& nd = t.nodes()[i];
    for (int q = 0; q < 4; ++q) {
      const std::int32_t c = nd.child[q];
      if (c == QuadTree::kNoChild) continue;
      EXPECT_FALSE(nd.is_leaf) << "leaf with children at " << i;
      EXPECT_TRUE(seen.insert(c).second) << "node " << c << " linked twice";
      // The child covers the right quadrant.
      EXPECT_EQ(t.nodes()[c].block,
                nd.block.child(static_cast<geom::Quadrant>(q)));
    }
  }
  EXPECT_EQ(seen.size(), t.num_nodes()) << "orphan nodes exist";
}

TEST(QuadTreeStructure, LeafEdgeRangesPartitionTheEdgeArray) {
  const QuadTree t = canonical_tree();
  std::size_t covered = 0;
  for (const auto& nd : t.nodes()) {
    if (!nd.is_leaf) {
      EXPECT_EQ(nd.num_edges, 0u);
      continue;
    }
    covered += nd.num_edges;
    EXPECT_LE(nd.first_edge + nd.num_edges, t.edges().size());
    const auto [first, last] = t.leaf_edges(nd);
    EXPECT_EQ(static_cast<std::size_t>(last - first), nd.num_edges);
  }
  EXPECT_EQ(covered, t.edges().size());
  EXPECT_EQ(covered, t.num_qedges());
}

TEST(QuadTreeStructure, StatsAndAscii) {
  const QuadTree t = canonical_tree();
  EXPECT_EQ(t.height(), data::kCanonicalMaxDepth);
  EXPECT_GT(t.num_leaves(), 4u);
  EXPECT_GE(t.max_leaf_occupancy(), 2u);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("leaf"), std::string::npos);
  // Every non-empty leaf appears in the rendering.
  EXPECT_GE(std::count(ascii.begin(), ascii.end(), '\n'),
            static_cast<std::ptrdiff_t>(t.num_leaves()));
}

TEST(QuadTreeStructure, FingerprintDistinguishesTrees) {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 10;
  o.bucket_capacity = 4;
  const auto a = data::uniform_segments(100, o.world, 20.0, 1);
  const auto b = data::uniform_segments(100, o.world, 20.0, 2);
  const std::string fa = pmr_build(ctx, a, o).tree.fingerprint();
  const std::string fb = pmr_build(ctx, b, o).tree.fingerprint();
  EXPECT_NE(fa, fb);
  EXPECT_EQ(fa, pmr_build(ctx, a, o).tree.fingerprint());
}

TEST(QuadTreeStructure, EmptyTreeHasSingleRootLeaf) {
  dpv::Context ctx;
  const QuadTree t = pmr_build(ctx, {}, PmrBuildOptions{}).tree;
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.root().is_leaf);
  EXPECT_EQ(t.num_qedges(), 0u);
  EXPECT_EQ(t.num_leaves(), 0u);  // counts non-empty leaves
  EXPECT_EQ(t.height(), 0);
}

}  // namespace
}  // namespace dps::core
