// Sequential Guttman R-tree baseline tests.

#include "seq/seq_rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/canonical.hpp"
#include "data/mapgen.hpp"

namespace dps::seq {
namespace {

TEST(SeqRTree, CanonicalOrder23GrowsToHeightOne) {
  // Figure 5's setting: M = 3, m = 2 over the nine canonical lines.
  SeqRTree t({2, 3, SeqRTree::Split::kQuadratic});
  for (const auto& s : data::canonical_dataset()) t.insert(s);
  EXPECT_EQ(t.size(), 9u);
  EXPECT_GE(t.height(), 2);
  const core::RTree r = t.to_rtree();
  EXPECT_EQ(r.validate(), "");
  EXPECT_EQ(r.entries().size(), 9u);
}

TEST(SeqRTree, AllSplitStrategiesProduceValidTrees) {
  const auto lines = data::uniform_segments(400, 1024.0, 12.0, 3);
  for (const auto split : {SeqRTree::Split::kLinear,
                           SeqRTree::Split::kQuadratic,
                           SeqRTree::Split::kSweep}) {
    SeqRTree t({2, 8, split});
    for (const auto& s : lines) t.insert(s);
    const core::RTree r = t.to_rtree();
    EXPECT_EQ(r.validate(), "") << "split " << int(split);
    EXPECT_EQ(r.entries().size(), 400u);
  }
}

TEST(SeqRTree, SplitBoxesRespectsMinimumFill) {
  std::vector<geom::Rect> boxes;
  for (int i = 0; i < 9; ++i) {
    boxes.push_back({i * 10.0, 0.0, i * 10.0 + 5.0, 5.0});
  }
  for (const auto split : {SeqRTree::Split::kLinear,
                           SeqRTree::Split::kQuadratic,
                           SeqRTree::Split::kSweep}) {
    const auto side = SeqRTree::split_boxes(boxes, 3, split);
    int left = 0, right = 0;
    for (const auto s : side) (s ? right : left)++;
    EXPECT_GE(left, 3) << "split " << int(split);
    EXPECT_GE(right, 3) << "split " << int(split);
  }
}

TEST(SeqRTree, SweepSplitMinimizesOverlapOnSeparatedClusters) {
  // Two clearly separated clusters: the sweep must cut between them.
  std::vector<geom::Rect> boxes{{0, 0, 1, 1},     {1, 1, 2, 2},
                                {0.5, 0.5, 1.5, 1.5}, {10, 10, 11, 11},
                                {11, 11, 12, 12}};
  const auto side = SeqRTree::split_boxes(boxes, 2, SeqRTree::Split::kSweep);
  EXPECT_EQ(side[0], side[1]);
  EXPECT_EQ(side[0], side[2]);
  EXPECT_EQ(side[3], side[4]);
  EXPECT_NE(side[0], side[3]);
}

TEST(SeqRTree, InsertionOrderChangesStructureButNotContents) {
  auto lines = data::uniform_segments(200, 1024.0, 15.0, 55);
  SeqRTree a({2, 4, SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) a.insert(s);
  std::reverse(lines.begin(), lines.end());
  SeqRTree b({2, 4, SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) b.insert(s);
  // Section 2.3: "the R-tree is not unique ... depends heavily on order".
  // Contents are identical either way.
  auto ids = [](const core::RTree& t) {
    std::vector<geom::LineId> v;
    for (const auto& e : t.entries()) v.push_back(e.id);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(ids(a.to_rtree()), ids(b.to_rtree()));
}

TEST(SeqRTree, EraseRemovesAndCondenses) {
  const auto lines = data::uniform_segments(300, 1024.0, 15.0, 57);
  SeqRTree t({2, 6, SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) t.insert(s);
  // Delete two thirds; validate after every 50 deletions.
  std::size_t deleted = 0;
  for (const auto& s : lines) {
    if (s.id % 3 == 2) continue;
    ASSERT_TRUE(t.erase(s.id)) << s.id;
    ++deleted;
    if (deleted % 50 == 0) {
      EXPECT_EQ(t.to_rtree().validate(), "") << "after " << deleted;
    }
  }
  EXPECT_EQ(t.size(), lines.size() - deleted);
  EXPECT_EQ(t.to_rtree().validate(), "");
  // Remaining ids are exactly those congruent to 2 mod 3.
  std::vector<geom::LineId> ids;
  const core::RTree remaining = t.to_rtree();  // keep the temporary alive
  for (const auto& e : remaining.entries()) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), lines.size() - deleted);
  for (const auto id : ids) EXPECT_EQ(id % 3, 2u);
}

TEST(SeqRTree, EraseToEmptyAndMissingId) {
  SeqRTree t({1, 3, SeqRTree::Split::kQuadratic});
  t.insert({{1, 1}, {2, 2}, 0});
  t.insert({{3, 3}, {4, 4}, 1});
  EXPECT_FALSE(t.erase(99));
  EXPECT_TRUE(t.erase(0));
  EXPECT_TRUE(t.erase(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.erase(0));
  t.insert({{5, 5}, {6, 6}, 2});  // still usable after emptying
  EXPECT_EQ(t.size(), 1u);
}

TEST(SeqRTree, EraseShortensTallTree) {
  const auto lines = data::uniform_segments(200, 1024.0, 10.0, 58);
  SeqRTree t({1, 3, SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) t.insert(s);
  const int tall = t.height();
  ASSERT_GE(tall, 3);
  for (std::size_t i = 0; i < lines.size() - 2; ++i) t.erase(lines[i].id);
  EXPECT_LT(t.height(), tall);
  EXPECT_EQ(t.to_rtree().validate(), "");
}

TEST(SeqRTree, QuadraticVsLinearQuality) {
  // Guttman reports quadratic >= linear in split quality; check coverage is
  // not wildly worse (sanity of both implementations).
  const auto lines = data::clustered_segments(500, 5, 30.0, 1024.0, 10.0, 61);
  SeqRTree lin({2, 8, SeqRTree::Split::kLinear});
  SeqRTree quad({2, 8, SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) {
    lin.insert(s);
    quad.insert(s);
  }
  const double cov_lin = lin.to_rtree().total_coverage();
  const double cov_quad = quad.to_rtree().total_coverage();
  EXPECT_LT(cov_quad, cov_lin * 1.5);
}

}  // namespace
}  // namespace dps::seq
