// Bucket PMR dynamic update tests: batch insert and delete must restore
// exactly the tree a from-scratch rebuild of the surviving lines produces
// (the shape of a bucket PMR quadtree is history-independent).

#include "core/pmr_update.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/query.hpp"
#include "data/mapgen.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

PmrBuildOptions opts(std::size_t cap = 4) {
  PmrBuildOptions o;
  o.world = 1024.0;
  o.max_depth = 12;
  o.bucket_capacity = cap;
  return o;
}

TEST(PmrUpdate, LineSetRoundTrip) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(200, 1024.0, 20.0, 31);
  const QuadTree tree = pmr_build(ctx, lines, opts()).tree;
  const prim::LineSet ls = line_set_from(tree);
  EXPECT_EQ(ls.size(), tree.num_qedges());
  EXPECT_EQ(QuadTree::from_line_set(ls).fingerprint(), tree.fingerprint());
}

TEST(PmrUpdate, InsertEqualsRebuild) {
  dpv::Context ctx;
  auto lines = data::uniform_segments(300, 1024.0, 20.0, 33);
  const std::vector<geom::Segment> first(lines.begin(), lines.begin() + 200);
  const std::vector<geom::Segment> extra(lines.begin() + 200, lines.end());
  const QuadTree base = pmr_build(ctx, first, opts()).tree;
  const QuadBuildResult updated = pmr_insert(ctx, base, extra, opts());
  const QuadBuildResult rebuilt = pmr_build(ctx, lines, opts());
  EXPECT_EQ(updated.tree.fingerprint(), rebuilt.tree.fingerprint());
}

TEST(PmrUpdate, InsertIntoEmptyQuadrantMaterializesLeaf) {
  dpv::Context ctx;
  // All initial lines live in the SW corner; the insert lands far NE.
  std::vector<geom::Segment> lines;
  for (int i = 0; i < 12; ++i) {
    lines.push_back({{5.0 + i, 5.0}, {20.0 + i, 30.0},
                     static_cast<geom::LineId>(i)});
  }
  const QuadTree base = pmr_build(ctx, lines, opts()).tree;
  const std::vector<geom::Segment> extra{{{900, 900}, {950, 960}, 100}};
  const QuadBuildResult updated = pmr_insert(ctx, base, extra, opts());
  lines.push_back(extra[0]);
  EXPECT_EQ(updated.tree.fingerprint(),
            pmr_build(ctx, lines, opts()).tree.fingerprint());
  EXPECT_EQ(window_query(updated.tree, geom::Rect{880, 880, 1000, 1000}),
            (std::vector<geom::LineId>{100}));
}

TEST(PmrUpdate, DeleteEqualsRebuild) {
  dpv::Context ctx;
  const auto lines = data::clustered_segments(400, 5, 30.0, 1024.0, 15.0, 35);
  const QuadTree base = pmr_build(ctx, lines, opts()).tree;
  // Delete every third line.
  std::vector<geom::LineId> doomed;
  std::vector<geom::Segment> survivors;
  for (const auto& s : lines) {
    if (s.id % 3 == 0) {
      doomed.push_back(s.id);
    } else {
      survivors.push_back(s);
    }
  }
  const QuadBuildResult updated = pmr_delete(ctx, base, doomed, opts());
  EXPECT_EQ(updated.tree.fingerprint(),
            pmr_build(ctx, survivors, opts()).tree.fingerprint());
  EXPECT_GT(updated.rounds, 0u);  // something merged
}

TEST(PmrUpdate, DeleteEverythingCollapsesToRoot) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(100, 1024.0, 20.0, 37);
  const QuadTree base = pmr_build(ctx, lines, opts()).tree;
  std::vector<geom::LineId> all;
  for (const auto& s : lines) all.push_back(s.id);
  const QuadBuildResult updated = pmr_delete(ctx, base, all, opts());
  EXPECT_EQ(updated.tree.num_qedges(), 0u);
  EXPECT_LE(updated.tree.num_nodes(), 1u);
}

TEST(PmrUpdate, DeleteOfUnknownIdsIsIdentity) {
  dpv::Context ctx;
  const auto lines = data::uniform_segments(80, 1024.0, 20.0, 39);
  const QuadTree base = pmr_build(ctx, lines, opts()).tree;
  const QuadBuildResult updated = pmr_delete(ctx, base, {9999, 10000}, opts());
  EXPECT_EQ(updated.tree.fingerprint(), base.fingerprint());
  EXPECT_EQ(updated.rounds, 0u);
}

TEST(PmrUpdate, InterleavedInsertDeleteConvergesToRebuild) {
  dpv::Context ctx = test::make_parallel_context();
  auto lines = data::hierarchical_roads(350, 1024.0, 41);
  const PmrBuildOptions o = opts(6);
  QuadTree tree = pmr_build(ctx, {}, o).tree;
  // Insert in three waves, deleting a slice between waves.
  std::vector<geom::Segment> live;
  std::size_t next = 0;
  std::mt19937_64 rng(7);
  for (int wave = 0; wave < 3; ++wave) {
    const std::size_t take = lines.size() / 3;
    std::vector<geom::Segment> batch(
        lines.begin() + next,
        lines.begin() + std::min(next + take, lines.size()));
    next += batch.size();
    tree = pmr_insert(ctx, tree, batch, o).tree;
    live.insert(live.end(), batch.begin(), batch.end());
    // Delete a random 20% of the live lines.
    std::shuffle(live.begin(), live.end(), rng);
    const std::size_t cut = live.size() / 5;
    std::vector<geom::LineId> doomed;
    for (std::size_t i = 0; i < cut; ++i) doomed.push_back(live[i].id);
    live.erase(live.begin(), live.begin() + cut);
    tree = pmr_delete(ctx, tree, doomed, o).tree;
  }
  EXPECT_EQ(tree.fingerprint(), pmr_build(ctx, live, o).tree.fingerprint());
}

TEST(PmrUpdate, DeleteKeepsDepthLimitedBucketsIntact) {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = 8.0;
  o.max_depth = 3;
  o.bucket_capacity = 2;
  const auto star = data::star_burst(9, {1.02, 1.02}, 4.0, 3);
  const QuadTree base = pmr_build(ctx, star, o).tree;
  const QuadBuildResult updated = pmr_delete(ctx, base, {0}, o);
  std::vector<geom::Segment> survivors(star.begin() + 1, star.end());
  EXPECT_EQ(updated.tree.fingerprint(),
            pmr_build(ctx, survivors, o).tree.fingerprint());
}

}  // namespace
}  // namespace dps::core
