// Oracle-differential suite for the data-parallel batch k-nearest
// pipeline: every row `batch_k_nearest` emits must agree exactly -- ids,
// squared distances, and tie order -- with the sequential best-first
// `core::k_nearest`, across map generators, both tree indexes, k from 1
// to beyond the segment count, and both dpv backends.  Edge cases cover
// k = 0 (serve boundary + pipeline), points on segments, coincident
// segments, empty trees, and mid-round BatchControl aborts.

#include "core/batch_nearest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <vector>

#include "core/nearest.hpp"
#include "core/pmr_build.hpp"
#include "core/rtree_build.hpp"
#include "data/mapgen.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

constexpr double kWorld = 1024.0;

struct NearestCase {
  const char* generator;
  std::size_t n_lines;
  std::size_t n_queries;
  std::uint64_t seed;
};

std::vector<geom::Segment> make_map(const NearestCase& c) {
  const std::string g = c.generator;
  if (g == "roads") return data::hierarchical_roads(c.n_lines, kWorld, c.seed);
  if (g == "clustered") {
    return data::clustered_segments(c.n_lines, 5, kWorld / 30.0, kWorld, 12.0,
                                    c.seed);
  }
  return data::uniform_segments(c.n_lines, kWorld, 18.0, c.seed);
}

void expect_rows_equal(const std::vector<Neighbor>& got,
                       const std::vector<Neighbor>& want, const char* tree,
                       std::size_t q, std::size_t k) {
  ASSERT_EQ(got.size(), want.size())
      << tree << " query " << q << " k " << k;
  for (std::size_t j = 0; j < want.size(); ++j) {
    EXPECT_EQ(got[j].id, want[j].id)
        << tree << " query " << q << " k " << k << " rank " << j;
    EXPECT_DOUBLE_EQ(got[j].distance2, want[j].distance2)
        << tree << " query " << q << " k " << k << " rank " << j;
  }
}

class BatchNearestDifferential : public ::testing::TestWithParam<NearestCase> {
 protected:
  void SetUp() override {
    const NearestCase& c = GetParam();
    lines_ = make_map(c);
    dpv::Context ctx;
    PmrBuildOptions po;
    po.world = kWorld;
    po.max_depth = 12;
    po.bucket_capacity = 6;
    quad_ = pmr_build(ctx, lines_, po).tree;
    RtreeBuildOptions ro;
    ro.m = 2;
    ro.M = 8;
    rtree_ = rtree_build(ctx, lines_, ro).tree;

    std::mt19937_64 rng(c.seed * 2654435761u + 17);
    std::uniform_real_distribution<double> pos(0.0, kWorld - 1.0);
    queries_.reserve(c.n_queries);
    for (std::size_t i = 0; i < c.n_queries; ++i) {
      if (i % 5 == 1 && !lines_.empty()) {
        // On a segment: the nearest distance is exactly zero.
        queries_.push_back(lines_[i % lines_.size()].mid());
      } else if (i % 11 == 3) {
        // Outside the world square (no containing quadtree leaf).
        queries_.push_back({kWorld + 50.0 + pos(rng), -30.0 - 0.1 * pos(rng)});
      } else {
        queries_.push_back({pos(rng), pos(rng)});
      }
    }
  }

  template <typename Tree>
  void check_tree(dpv::Context& ctx, const Tree& tree, const char* label) {
    const std::size_t n = lines_.size();
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{32}, n, n + 5}) {
      const BatchNearestResult batch = batch_k_nearest(ctx, tree, queries_, k);
      ASSERT_FALSE(batch.aborted) << label << " k " << k;
      ASSERT_EQ(batch.results.size(), queries_.size()) << label << " k " << k;
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        expect_rows_equal(batch.results[q], k_nearest(tree, queries_[q], k),
                          label, q, k);
      }
    }
  }

  std::vector<geom::Segment> lines_;
  QuadTree quad_;
  RTree rtree_;
  std::vector<geom::Point> queries_;
};

// Exact (id, distance^2) agreement with the sequential oracle, including
// tie order, for k in {1, 4, 32, N, N + 5} on both backends.
TEST_P(BatchNearestDifferential, MatchesSequentialOracleOnBothTrees) {
  dpv::Context serial;
  dpv::Context parallel = test::make_parallel_context();
  for (dpv::Context* ctx : {&serial, &parallel}) {
    check_tree(*ctx, quad_, "quadtree");
    check_tree(*ctx, rtree_, "rtree");
  }
}

// Per-query k vectors (including zeros mixed in) agree with per-request
// sequential answers; k = 0 rows come back empty.
TEST_P(BatchNearestDifferential, PerQueryCountsMatchOracle) {
  dpv::Context ctx;
  std::vector<std::size_t> ks(queries_.size());
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    ks[q] = (q % 7 == 2) ? 0 : 1 + (q * 13) % 9;
  }
  const BatchNearestResult quad_batch = batch_k_nearest(ctx, quad_, queries_, ks);
  const BatchNearestResult rt_batch = batch_k_nearest(ctx, rtree_, queries_, ks);
  ASSERT_FALSE(quad_batch.aborted);
  ASSERT_FALSE(rt_batch.aborted);
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    if (ks[q] == 0) {
      EXPECT_TRUE(quad_batch.results[q].empty()) << "query " << q;
      EXPECT_TRUE(rt_batch.results[q].empty()) << "query " << q;
      continue;
    }
    expect_rows_equal(quad_batch.results[q], k_nearest(quad_, queries_[q], ks[q]),
                      "quadtree", q, ks[q]);
    expect_rows_equal(rt_batch.results[q], k_nearest(rtree_, queries_[q], ks[q]),
                      "rtree", q, ks[q]);
  }
}

// The two bound-tightening passes (neighbor bound propagation, post-merge
// frontier compaction) are pure optimizations: switching them off must
// reproduce byte-identical rows, and switching them on must never score
// *more* candidates.  On these workloads they must also do real work --
// the counters stay zero only if a pass silently stopped firing.
TEST_P(BatchNearestDifferential, TuningPassesAreExactAndOnlyPrune) {
  dpv::Context ctx;
  BatchNearestTuning off;
  off.bound_propagation = false;
  off.frontier_compaction = false;
  std::uint64_t quad_tightened = 0;
  std::uint64_t rt_tightened = 0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{8}}) {
    const BatchNearestResult quad_on = batch_k_nearest(ctx, quad_, queries_, k);
    const BatchNearestResult quad_off =
        batch_k_nearest(ctx, quad_, queries_, k, {}, off);
    const BatchNearestResult rt_on = batch_k_nearest(ctx, rtree_, queries_, k);
    const BatchNearestResult rt_off =
        batch_k_nearest(ctx, rtree_, queries_, k, {}, off);
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      expect_rows_equal(quad_on.results[q], quad_off.results[q], "quadtree",
                        q, k);
      expect_rows_equal(rt_on.results[q], rt_off.results[q], "rtree", q, k);
    }
    EXPECT_LE(quad_on.candidates, quad_off.candidates) << "k " << k;
    EXPECT_LE(rt_on.candidates, rt_off.candidates) << "k " << k;
    EXPECT_EQ(quad_off.propagations, 0u);
    EXPECT_EQ(quad_off.compacted, 0u);
    EXPECT_EQ(rt_off.propagations, 0u);
    EXPECT_EQ(rt_off.compacted, 0u);
    quad_tightened += quad_on.propagations + quad_on.compacted;
    rt_tightened += rt_on.propagations + rt_on.compacted;
  }
  // A shallow descent (e.g. R-tree at k = 1) can settle every bound before
  // either pass has anything to tighten, so the liveness check is per tree
  // across the k sweep, not per (tree, k).
  EXPECT_GT(quad_tightened, 0u);
  EXPECT_GT(rt_tightened, 0u);
}

// Each pass alone is also exact (they compose but do not depend on each
// other).
TEST_P(BatchNearestDifferential, EachTuningPassAloneIsExact) {
  dpv::Context ctx;
  for (const bool propagation : {false, true}) {
    BatchNearestTuning t;
    t.bound_propagation = propagation;
    t.frontier_compaction = !propagation;
    const BatchNearestResult quad_batch =
        batch_k_nearest(ctx, quad_, queries_, 8, {}, t);
    const BatchNearestResult rt_batch =
        batch_k_nearest(ctx, rtree_, queries_, 8, {}, t);
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      expect_rows_equal(quad_batch.results[q],
                        k_nearest(quad_, queries_[q], 8), "quadtree", q, 8);
      expect_rows_equal(rt_batch.results[q], k_nearest(rtree_, queries_[q], 8),
                        "rtree", q, 8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BatchNearestDifferential,
    ::testing::Values(NearestCase{"uniform", 240, 48, 11},
                      NearestCase{"clustered", 300, 40, 12},
                      NearestCase{"roads", 260, 40, 13}),
    [](const ::testing::TestParamInfo<NearestCase>& info) {
      return std::string(info.param.generator) +
             std::to_string(info.param.n_lines) + "_s" +
             std::to_string(info.param.seed);
    });

// ---- Edge cases ---------------------------------------------------------

class BatchNearestEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    lines_ = data::uniform_segments(30, kWorld, 20.0, 991);
    dpv::Context ctx;
    PmrBuildOptions po;
    po.world = kWorld;
    quad_ = pmr_build(ctx, lines_, po).tree;
    rtree_ = rtree_build(ctx, lines_, RtreeBuildOptions{}).tree;
  }

  std::vector<geom::Segment> lines_;
  QuadTree quad_;
  RTree rtree_;
};

// k = 0 is malformed at the serve boundary: the validation gate answers
// kInvalidArgument before any pipeline (or admission budget) is touched.
TEST_F(BatchNearestEdge, ZeroKRejectedAtServeBoundary) {
  serve::QueryEngine engine;
  engine.mount(&quad_);
  engine.mount(&rtree_);
  const std::vector<serve::Request> batch{
      serve::Request::nearest_query(serve::IndexKind::kQuadTree, {5, 5}, 0),
      serve::Request::nearest_query(serve::IndexKind::kRTree, {5, 5}, 0),
      serve::Request::nearest_query(serve::IndexKind::kRTree, {5, 5}, 2)};
  const auto responses = engine.serve(batch);
  EXPECT_EQ(responses[0].status, serve::Status::kInvalidArgument);
  EXPECT_EQ(responses[1].status, serve::Status::kInvalidArgument);
  EXPECT_EQ(responses[2].status, serve::Status::kOk);
  EXPECT_EQ(responses[2].neighbors.size(), 2u);
}

// k at or beyond the segment count returns every distinct line, still in
// (distance^2, id) order.
TEST_F(BatchNearestEdge, KBeyondSegmentCountReturnsAll) {
  dpv::Context ctx;
  const std::vector<geom::Point> pts{{3.0, 7.0}, {800.0, 444.0}};
  for (const std::size_t k : {lines_.size(), lines_.size() + 17}) {
    for (const auto& [label, rows] :
         {std::pair{"quadtree", batch_k_nearest(ctx, quad_, pts, k).results},
          std::pair{"rtree", batch_k_nearest(ctx, rtree_, pts, k).results}}) {
      for (std::size_t q = 0; q < pts.size(); ++q) {
        ASSERT_EQ(rows[q].size(), lines_.size()) << label;
        for (std::size_t j = 1; j < rows[q].size(); ++j) {
          EXPECT_TRUE(rows[q][j - 1].distance2 < rows[q][j].distance2 ||
                      (rows[q][j - 1].distance2 == rows[q][j].distance2 &&
                       rows[q][j - 1].id < rows[q][j].id))
              << label << " order at rank " << j;
        }
      }
    }
  }
}

// A query point lying on a segment reports that segment first with an
// exactly-zero squared distance.
TEST_F(BatchNearestEdge, PointOnSegmentScoresExactlyZero) {
  dpv::Context ctx;
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < 6; ++i) pts.push_back(lines_[i * 3].mid());
  const BatchNearestResult quad_batch = batch_k_nearest(ctx, quad_, pts, 1);
  const BatchNearestResult rt_batch = batch_k_nearest(ctx, rtree_, pts, 1);
  for (std::size_t q = 0; q < pts.size(); ++q) {
    ASSERT_EQ(quad_batch.results[q].size(), 1u);
    ASSERT_EQ(rt_batch.results[q].size(), 1u);
    EXPECT_DOUBLE_EQ(quad_batch.results[q][0].distance2, 0.0) << "query " << q;
    EXPECT_DOUBLE_EQ(rt_batch.results[q][0].distance2, 0.0) << "query " << q;
  }
}

// Coincident segments (identical geometry, distinct ids) tie on distance
// and are reported in ascending id order; duplicate q-edge clones of one
// line are still reported once.
TEST_F(BatchNearestEdge, CoincidentSegmentsTieBreakById) {
  std::vector<geom::Segment> lines{
      {{100, 100}, {200, 100}, 7},
      {{100, 100}, {200, 100}, 3},  // same geometry, smaller id
      {{100, 100}, {200, 100}, 5},
      {{600, 600}, {700, 620}, 1}};
  dpv::Context ctx;
  PmrBuildOptions po;
  po.world = kWorld;
  po.bucket_capacity = 1;
  po.max_depth = 8;
  const QuadTree qt = pmr_build(ctx, lines, po).tree;
  const RTree rt = rtree_build(ctx, lines, RtreeBuildOptions{}).tree;
  const std::vector<geom::Point> pts{{150.0, 90.0}};
  for (const auto& [label, rows] :
       {std::pair{"quadtree", batch_k_nearest(ctx, qt, pts, 3).results},
        std::pair{"rtree", batch_k_nearest(ctx, rt, pts, 3).results}}) {
    ASSERT_EQ(rows[0].size(), 3u) << label;
    EXPECT_EQ(rows[0][0].id, 3u) << label;
    EXPECT_EQ(rows[0][1].id, 5u) << label;
    EXPECT_EQ(rows[0][2].id, 7u) << label;
    EXPECT_DOUBLE_EQ(rows[0][0].distance2, rows[0][2].distance2) << label;
  }
}

// Empty trees and empty query batches exit on the empty frontier without
// running a descent round.
TEST_F(BatchNearestEdge, EmptyFrontierExitsEarly) {
  dpv::Context ctx;
  const QuadTree empty_quad = pmr_build(ctx, {}, PmrBuildOptions{}).tree;
  const RTree empty_rtree = rtree_build(ctx, {}, RtreeBuildOptions{}).tree;
  const std::vector<geom::Point> pts{{1.0, 2.0}, {3.0, 4.0}};

  const BatchNearestResult eq = batch_k_nearest(ctx, empty_quad, pts, 3);
  const BatchNearestResult er = batch_k_nearest(ctx, empty_rtree, pts, 3);
  for (const BatchNearestResult* r : {&eq, &er}) {
    ASSERT_EQ(r->results.size(), 2u);
    EXPECT_TRUE(r->results[0].empty());
    EXPECT_TRUE(r->results[1].empty());
    EXPECT_EQ(r->rounds, 0u);
    EXPECT_FALSE(r->aborted);
  }

  const BatchNearestResult nq = batch_k_nearest(ctx, quad_, {}, 3);
  EXPECT_TRUE(nq.results.empty());
  EXPECT_EQ(nq.rounds, 0u);

  // All-zero k prunes the whole frontier on the first round.
  const BatchNearestResult zk = batch_k_nearest(ctx, quad_, pts, 0);
  ASSERT_EQ(zk.results.size(), 2u);
  EXPECT_TRUE(zk.results[0].empty());
  EXPECT_TRUE(zk.results[1].empty());
  EXPECT_EQ(zk.candidates, 0u);
}

// A control that fires mid-descent sets `aborted`; the caller must not
// trust the partial rows.
TEST_F(BatchNearestEdge, BatchControlAbortSetsAbortedFlag) {
  dpv::Context ctx;
  const std::vector<geom::Point> pts{{10.0, 10.0}, {500.0, 500.0}};

  std::atomic<bool> cancel{true};  // fires at the very first poll
  BatchControl cancelled;
  cancelled.cancel = &cancel;
  EXPECT_TRUE(batch_k_nearest(ctx, quad_, pts, 4, cancelled).aborted);
  EXPECT_TRUE(batch_k_nearest(ctx, rtree_, pts, 4, cancelled).aborted);

  BatchControl expired;  // deadline already in the past
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  EXPECT_TRUE(batch_k_nearest(ctx, quad_, pts, 4, expired).aborted);

  // The same calls with a never-firing control complete normally.
  EXPECT_FALSE(batch_k_nearest(ctx, quad_, pts, 4).aborted);
  EXPECT_FALSE(batch_k_nearest(ctx, rtree_, pts, 4).aborted);
}

}  // namespace
}  // namespace dps::core
