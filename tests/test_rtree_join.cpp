// R-tree x R-tree join tests, and the section 3.3 comparison: the
// non-disjoint R-tree join must visit more node pairs than the aligned
// quadtree join for the same maps.

#include "core/rtree_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pmr_build.hpp"
#include "core/rtree_build.hpp"
#include "core/spatial_join.hpp"
#include "data/mapgen.hpp"
#include "geom/predicates.hpp"
#include "seq/hilbert_rtree.hpp"

namespace dps::core {
namespace {

using Pair = std::pair<geom::LineId, geom::LineId>;

std::vector<Pair> brute(const std::vector<geom::Segment>& a,
                        const std::vector<geom::Segment>& b) {
  std::vector<Pair> out;
  for (const auto& s : a) {
    for (const auto& t : b) {
      if (geom::segments_intersect(s, t)) out.emplace_back(s.id, t.id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(RtreeJoin, MatchesBruteForce) {
  dpv::Context ctx;
  const auto a = data::road_grid(7, 7, 512.0, 5.0, 751);
  const auto b = data::uniform_segments(150, 512.0, 40.0, 752);
  const RTree ta = rtree_build(ctx, a, RtreeBuildOptions{}).tree;
  const RTree tb = rtree_build(ctx, b, RtreeBuildOptions{}).tree;
  JoinStats stats;
  EXPECT_EQ(rtree_join(ta, tb, &stats), brute(a, b));
  EXPECT_GT(stats.node_pairs_visited, 0u);
}

TEST(RtreeJoin, WorksAcrossBuildMethods) {
  dpv::Context ctx;
  const auto a = data::clustered_segments(200, 3, 25.0, 512.0, 10.0, 753);
  const auto b = data::hierarchical_roads(200, 512.0, 754);
  const RTree ta = rtree_build(ctx, a, RtreeBuildOptions{}).tree;
  const RTree tb = seq::hilbert_pack_rtree(b, 8, 512.0);
  EXPECT_EQ(rtree_join(ta, tb), brute(a, b));
}

TEST(RtreeJoin, EmptyTrees) {
  dpv::Context ctx;
  const auto a = data::uniform_segments(30, 512.0, 30.0, 755);
  const RTree ta = rtree_build(ctx, a, RtreeBuildOptions{}).tree;
  const RTree empty = rtree_build(ctx, {}, RtreeBuildOptions{}).tree;
  EXPECT_TRUE(rtree_join(ta, empty).empty());
  EXPECT_TRUE(rtree_join(empty, ta).empty());
}

TEST(RtreeJoin, SelfJoinContainsDiagonal) {
  dpv::Context ctx;
  const auto a = data::road_grid(4, 4, 512.0, 4.0, 756);
  const RTree ta = rtree_build(ctx, a, RtreeBuildOptions{}).tree;
  const auto pairs = rtree_join(ta, ta);
  std::size_t self_pairs = 0;
  for (const auto& [x, y] : pairs) self_pairs += (x == y);
  EXPECT_EQ(self_pairs, a.size());
}

TEST(RtreeJoin, AgreesWithQuadtreeJoinOnSameMaps) {
  dpv::Context ctx;
  const auto a = data::road_grid(6, 6, 512.0, 5.0, 757);
  const auto b = data::uniform_segments(120, 512.0, 50.0, 758);
  const RTree ra = rtree_build(ctx, a, RtreeBuildOptions{}).tree;
  const RTree rb = rtree_build(ctx, b, RtreeBuildOptions{}).tree;
  PmrBuildOptions o;
  o.world = 512.0;
  o.max_depth = 10;
  o.bucket_capacity = 8;
  const QuadTree qa = pmr_build(ctx, a, o).tree;
  const QuadTree qb = pmr_build(ctx, b, o).tree;
  EXPECT_EQ(rtree_join(ra, rb), spatial_join(qa, qb));
}

}  // namespace
}  // namespace dps::core
