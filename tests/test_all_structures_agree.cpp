// The capstone integration property: every index structure in the library
// answers the same window queries with the same results -- the five
// line-segment indexes (bucket PMR, PM1, linear quadtree, data-parallel
// R-tree, Hilbert-packed R-tree, sequential Guttman R-tree) against brute
// force, across workloads and backends.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/core.hpp"
#include "data/data.hpp"
#include "geom/predicates.hpp"
#include "seq/seq.hpp"
#include "test_util.hpp"

namespace dps {
namespace {

struct AgreeCase {
  const char* generator;
  std::size_t n;
  std::uint64_t seed;
};

class AllStructuresAgree : public ::testing::TestWithParam<AgreeCase> {};

TEST_P(AllStructuresAgree, WindowQueries) {
  const AgreeCase& c = GetParam();
  const double world = 1024.0;
  std::vector<geom::Segment> lines;
  if (std::string(c.generator) == "roads") {
    lines = data::planar_roads(c.n, world, c.seed);
  } else if (std::string(c.generator) == "clustered") {
    lines = data::clustered_segments(c.n, 4, 30.0, world, 12.0, c.seed);
  } else {
    lines = data::uniform_segments(c.n, world, 18.0, c.seed);
  }

  dpv::Context ctx = test::make_parallel_context();
  core::PmrBuildOptions po;
  po.world = world;
  po.max_depth = 12;
  po.bucket_capacity = 6;
  const core::QuadTree pmr = core::pmr_build(ctx, lines, po).tree;
  const core::LinearQuadTree lq = core::LinearQuadTree::from(pmr);
  const core::RTree dp_rt =
      core::rtree_build(ctx, lines, core::RtreeBuildOptions{}).tree;
  const core::RTree packed = seq::hilbert_pack_rtree(lines, 8, world);
  seq::SeqRTree gutt({2, 8, seq::SeqRTree::Split::kQuadratic});
  for (const auto& s : lines) gutt.insert(s);
  const core::RTree gutt_rt = gutt.to_rtree();

  for (int i = 0; i < 8; ++i) {
    const double x = (i * 113) % 880, y = (i * 241) % 880;
    const geom::Rect w{x, y, x + 140.0, y + 95.0};
    std::vector<geom::LineId> expect;
    for (const auto& s : lines) {
      if (geom::segment_intersects_rect(s, w)) expect.push_back(s.id);
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());

    EXPECT_EQ(core::window_query(pmr, w), expect) << "pmr w" << i;
    EXPECT_EQ(lq.window_query(w), expect) << "linear w" << i;
    EXPECT_EQ(core::window_query(dp_rt, w), expect) << "dp rtree w" << i;
    EXPECT_EQ(core::window_query(packed, w), expect) << "packed w" << i;
    EXPECT_EQ(core::window_query(gutt_rt, w), expect) << "guttman w" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllStructuresAgree,
    ::testing::Values(AgreeCase{"uniform", 200, 21},
                      AgreeCase{"uniform", 600, 22},
                      AgreeCase{"roads", 400, 23},
                      AgreeCase{"clustered", 500, 24}),
    [](const ::testing::TestParamInfo<AgreeCase>& info) {
      return std::string(info.param.generator) +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace dps
