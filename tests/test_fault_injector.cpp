// dpv::FaultInjector: decision determinism, the Context primitive-fault
// latch, the ThreadPool lane-stall hook, and fault-aborted batch pipelines.

#include "dpv/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/batch_query.hpp"
#include "core/pmr_build.hpp"
#include "data/mapgen.hpp"
#include "dpv/dpv.hpp"

namespace dps::dpv {
namespace {

TEST(FaultInjector, DecisionsArePureFunctionsOfSeedAndCoordinates) {
  FaultSchedule s;
  s.seed = 42;
  s.primitive_fail_rate = 0.25;
  s.shard_poison_rate = 0.25;
  s.lane_stall_rate = 0.25;
  const FaultInjector a(s), b(s);
  for (std::uint64_t scope = 0; scope < 64; ++scope) {
    for (std::uint64_t seq = 1; seq <= 16; ++seq) {
      EXPECT_EQ(a.primitive_faults(scope, seq), b.primitive_faults(scope, seq));
    }
    EXPECT_EQ(a.shard_poisoned(scope), b.shard_poisoned(scope));
    EXPECT_EQ(a.lane_stall(scope % 8, scope), b.lane_stall(scope % 8, scope));
  }
}

TEST(FaultInjector, SeedChangesTheSchedule) {
  FaultSchedule s;
  s.primitive_fail_rate = 0.5;
  s.seed = 1;
  const FaultInjector a(s);
  s.seed = 2;
  const FaultInjector b(s);
  int differ = 0;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    differ += a.primitive_faults(7, seq) != b.primitive_faults(7, seq);
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, RatesHitTheirExpectedFrequency) {
  FaultSchedule s;
  s.seed = 9;
  s.primitive_fail_rate = 0.3;
  const FaultInjector inj(s);
  int hits = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    hits += inj.primitive_faults(static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.05);
}

TEST(FaultInjector, ZeroAndOneRatesAreDegenerate) {
  FaultSchedule off;
  const FaultInjector none(off);
  FaultSchedule all;
  all.primitive_fail_rate = 1.0;
  all.shard_poison_rate = 1.0;
  const FaultInjector sure(all);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(none.primitive_faults(i, i + 1));
    EXPECT_FALSE(none.shard_poisoned(i));
    EXPECT_EQ(none.lane_stall(i, i).count(), 0);
    EXPECT_TRUE(sure.primitive_faults(i, i + 1));
    EXPECT_TRUE(sure.shard_poisoned(i));
  }
}

TEST(FaultInjector, FailNthFiresExactlyOnTheNthCall) {
  FaultSchedule s;
  s.fail_nth = 5;
  const FaultInjector inj(s);
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    EXPECT_EQ(inj.primitive_faults(0, seq), seq == 5) << "seq " << seq;
  }
}

TEST(FaultInjector, ContextLatchesTheNthPrimitive) {
  FaultSchedule s;
  s.fail_nth = 3;
  FaultInjector inj(s);
  Context ctx;
  ctx.arm_fault_injection(&inj, FaultInjector::scope(0, 0));
  auto v = dpv::iota(ctx, 64);                      // primitive 1
  EXPECT_FALSE(ctx.fault_pending());
  v = dpv::map(ctx, v, [](std::size_t x) { return x + 1; });  // primitive 2
  EXPECT_FALSE(ctx.fault_pending());
  v = dpv::map(ctx, v, [](std::size_t x) { return x * 2; });  // primitive 3
  EXPECT_TRUE(ctx.fault_pending());
  EXPECT_EQ(inj.primitive_fault_count(), 1u);
  // The faulting primitive still produced a complete (usable) output.
  EXPECT_EQ(v[5], 12u);
  // Disarmed fork starts clean.
  Context child = ctx.fork_serial();
  EXPECT_FALSE(child.fault_pending());
}

// A fused pass charges one invocation per constituent primitive, and each
// charge polls the armed injector -- so a latch scheduled for the chain's
// 2nd or 3rd primitive trips *inside* the fused pass, exactly as it would
// mid-chain in the unfused composition, and the pass still produces its
// complete (correct) output.
TEST(FaultInjector, LatchTripsMidFusedMultiPack) {
  for (std::uint64_t nth = 1; nth <= 3; ++nth) {
    FaultSchedule s;
    s.fail_nth = nth;  // multi_pack of 2 vectors = map, scan, pack, pack
    FaultInjector inj(s);
    Context ctx;
    ctx.arm_fault_injection(&inj, FaultInjector::scope(0, 0));
    // Raw buffers (no primitives charged yet): the fused pass makes the
    // 1st, 2nd and 3rd charges itself.
    Vec<std::size_t> a(512);
    Flags keep(512);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = i;
      keep[i] = i % 2;
    }
    EXPECT_FALSE(ctx.fault_pending());
    auto [pa] = multi_pack(ctx, keep, a);
    // All of multi_pack's charges (1 ew + 1 scan + 1 pack >= 3) have run,
    // so any of the first three latches has tripped by now.
    EXPECT_TRUE(ctx.fault_pending()) << "fail_nth=" << nth;
    EXPECT_EQ(inj.primitive_fault_count(), 1u);
    // The faulted pass still produced complete output (fail-stop at round
    // boundaries, not mid-write).
    ASSERT_EQ(pa.size(), 256u);
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], 2 * i + 1);
  }
}

TEST(FaultInjector, LatchTripsMidFusedGroupRankSelect) {
  FaultSchedule s;
  s.fail_nth = 2;  // trips on the fused pass's 2nd charge (the rank scan)
  FaultInjector inj(s);
  Context ctx;
  ctx.arm_fault_injection(&inj, FaultInjector::scope(0, 0));
  Vec<std::uint32_t> gid(100);
  for (std::size_t i = 0; i < gid.size(); ++i) {
    gid[i] = static_cast<std::uint32_t>(i / 10);
  }
  Vec<std::size_t> rank;
  Flags keep = fused_group_rank_select(
      ctx, gid, [](std::uint32_t) -> std::size_t { return 4; }, &rank);
  EXPECT_TRUE(ctx.fault_pending());
  EXPECT_EQ(inj.primitive_fault_count(), 1u);
  for (std::size_t i = 0; i < gid.size(); ++i) {
    ASSERT_EQ(rank[i], i % 10);
    ASSERT_EQ(keep[i] != 0, i % 10 < 4);
  }
  // A pipeline polling at the next round boundary aborts; the latch clears
  // on a disarmed fork exactly as for unfused primitives.
  EXPECT_FALSE(ctx.fork_serial().fault_pending());
}

TEST(FaultInjector, ThreadPoolStallsDelayButDoNotChangeResults) {
  FaultSchedule s;
  s.lane_stall_rate = 1.0;
  s.lane_stall_us = std::chrono::microseconds(100);
  FaultInjector inj(s);
  ThreadPool pool(4);
  pool.set_fault_injector(&inj);
  std::vector<int> out(pool.size(), 0);
  pool.run(pool.size(), [&](std::size_t lane) {
    out[lane] = static_cast<int>(lane) + 1;
  });
  for (std::size_t lane = 0; lane < pool.size(); ++lane) {
    EXPECT_EQ(out[lane], static_cast<int>(lane) + 1);
  }
  EXPECT_GE(inj.lane_stall_count(), pool.size());
  pool.set_fault_injector(nullptr);
}

TEST(FaultInjector, BatchPipelineAbortsOnInjectedFault) {
  Context build;
  const auto lines = data::uniform_segments(500, 1024.0, 25.0, 3);
  core::PmrBuildOptions po;
  po.world = 1024.0;
  po.max_depth = 10;
  po.bucket_capacity = 4;
  const core::QuadTree tree = core::pmr_build(build, lines, po).tree;
  std::vector<geom::Rect> windows;
  for (int i = 0; i < 32; ++i) {
    const double x = 30.0 * i;
    windows.push_back({x, x, x + 90.0, x + 70.0});
  }

  FaultSchedule s;
  s.fail_nth = 1;  // first primitive of the pipeline fails
  FaultInjector inj(s);
  Context ctx;
  ctx.arm_fault_injection(&inj, 0);
  const auto res = core::batch_window_query(ctx, tree, windows);
  EXPECT_TRUE(res.aborted);

  // Same pipeline, no injector: completes and matches per-window truth.
  Context clean;
  const auto ok = core::batch_window_query(clean, tree, windows);
  EXPECT_FALSE(ok.aborted);
  EXPECT_EQ(ok.results.size(), windows.size());
}

TEST(FaultInjector, ReplicaFaultDecisionsArePure) {
  FaultSchedule s;
  s.seed = 77;
  s.replica_stall_rate = 0.2;
  s.replica_stuck_rate = 0.2;
  s.replica_crash_rate = 0.2;
  const FaultInjector a(s), b(s);
  int faulted = 0;
  for (std::size_t replica = 0; replica < 4; ++replica) {
    for (std::uint64_t scope = 0; scope < 64; ++scope) {
      const ReplicaFault fa = a.replica_fault(replica, scope);
      const ReplicaFault fb = b.replica_fault(replica, scope);
      EXPECT_EQ(fa.kind, fb.kind) << "replica " << replica;
      EXPECT_EQ(fa.stall, fb.stall);
      faulted += fa.kind != ReplicaFaultKind::kNone;
    }
  }
  EXPECT_GT(faulted, 0) << "the rates should actually fire somewhere";
}

TEST(FaultInjector, ReplicaFaultMaskPinsChaosToNamedReplicas) {
  FaultSchedule s;
  s.seed = 78;
  s.replica_fault_mask = 0b101;  // replicas 0 and 2 only
  s.replica_stuck_rate = 1.0;
  const FaultInjector inj(s);
  for (std::uint64_t scope = 0; scope < 16; ++scope) {
    EXPECT_EQ(inj.replica_fault(0, scope).kind, ReplicaFaultKind::kStuck);
    EXPECT_EQ(inj.replica_fault(1, scope).kind, ReplicaFaultKind::kNone);
    EXPECT_EQ(inj.replica_fault(2, scope).kind, ReplicaFaultKind::kStuck);
    EXPECT_EQ(inj.replica_fault(3, scope).kind, ReplicaFaultKind::kNone);
  }
}

TEST(FaultInjector, ReplicaFaultPrecedenceIsCrashStuckStall) {
  FaultSchedule s;
  s.seed = 79;
  s.replica_crash_rate = 1.0;
  s.replica_stuck_rate = 1.0;
  s.replica_stall_rate = 1.0;
  EXPECT_EQ(FaultInjector(s).replica_fault(0, 5).kind,
            ReplicaFaultKind::kCrash);
  s.replica_crash_rate = 0.0;
  EXPECT_EQ(FaultInjector(s).replica_fault(0, 5).kind,
            ReplicaFaultKind::kStuck);
  s.replica_stuck_rate = 0.0;
  s.replica_stall_us = std::chrono::microseconds(1234);
  const ReplicaFault f = FaultInjector(s).replica_fault(0, 5);
  EXPECT_EQ(f.kind, ReplicaFaultKind::kStall);
  EXPECT_EQ(f.stall, std::chrono::microseconds(1234));
  s.replica_stall_rate = 0.0;
  EXPECT_EQ(FaultInjector(s).replica_fault(0, 5).kind,
            ReplicaFaultKind::kNone);
}

TEST(FaultInjector, ReplicaFaultTalliesAreObservationalOnly) {
  FaultInjector inj;
  inj.note_replica_fault(ReplicaFaultKind::kStall);
  inj.note_replica_fault(ReplicaFaultKind::kStuck);
  inj.note_replica_fault(ReplicaFaultKind::kStuck);
  inj.note_replica_fault(ReplicaFaultKind::kCrash);
  inj.note_replica_fault(ReplicaFaultKind::kNone);  // no-op
  EXPECT_EQ(inj.replica_stall_count(), 1u);
  EXPECT_EQ(inj.replica_stuck_count(), 2u);
  EXPECT_EQ(inj.replica_crash_count(), 1u);
}

}  // namespace
}  // namespace dps::dpv
