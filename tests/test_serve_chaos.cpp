// Chaos suite: seeded fault schedules (primitive failures, lane stalls,
// shard poisoning) swept across shard counts and backends.  Under every
// schedule the engine must answer every admitted request exactly like the
// sequential oracle (retry + sequential degradation guarantee), and
// replaying a seed must reproduce identical responses and identical retry
// metrics -- on the serial and the thread-pool backend alike.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/core.hpp"
#include "data/mapgen.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace dps::serve {
namespace {

struct ChaosRun {
  std::vector<Response> responses;
  ServeMetrics metrics;
};

bool same_answers(const Response& a, const Response& b) {
  if (a.status != b.status || a.ids != b.ids) return false;
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (std::size_t j = 0; j < a.neighbors.size(); ++j) {
    if (a.neighbors[j].id != b.neighbors[j].id ||
        a.neighbors[j].distance2 != b.neighbors[j].distance2) {
      return false;
    }
  }
  return true;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lines_ = data::uniform_segments(600, kWorld, 25.0, 1234);
    dpv::Context ctx;
    core::PmrBuildOptions po;
    po.world = kWorld;
    po.max_depth = 10;
    po.bucket_capacity = 4;
    quad_ = core::pmr_build(ctx, lines_, po).tree;
    core::RtreeBuildOptions ro;
    ro.m = 2;
    ro.M = 8;
    rtree_ = core::rtree_build(ctx, lines_, ro).tree;
    linear_ = core::LinearQuadTree::from(quad_);
    batch_ = make_batch(240);
    oracle_ = oracle(batch_);
  }

  std::vector<Request> make_batch(std::size_t n) const {
    std::vector<Request> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>((i * 97) % 900);
      const double y = static_cast<double>((i * 61) % 900);
      switch (i % 8) {
        case 0:
          batch.push_back(Request::window_query(IndexKind::kQuadTree,
                                                {x, y, x + 70.0, y + 50.0}));
          break;
        case 1:
          batch.push_back(Request::window_query(IndexKind::kRTree,
                                                {x, y, x + 90.0, y + 40.0}));
          break;
        case 2:
          batch.push_back(Request::point_query(
              IndexKind::kQuadTree, lines_[(i * 7) % lines_.size()].mid()));
          break;
        case 3:
          batch.push_back(Request::window_query(IndexKind::kLinearQuadTree,
                                                {x, y, x + 30.0, y + 30.0}));
          break;
        case 4:
          batch.push_back(
              Request::point_query(IndexKind::kRTree, {x + 0.5, y + 0.5}));
          break;
        case 5:
          batch.push_back(Request::point_query(
              IndexKind::kLinearQuadTree,
              lines_[(i * 11) % lines_.size()].mid()));
          break;
        case 6:
          batch.push_back(Request::nearest_query(IndexKind::kRTree,
                                                 {x, y}, 1 + i % 4));
          break;
        default:
          batch.push_back(Request::nearest_query(IndexKind::kQuadTree,
                                                 {x + 0.25, y}, 1 + (i * 5) % 9));
          break;
      }
    }
    return batch;
  }

  std::vector<Response> oracle(const std::vector<Request>& batch) const {
    std::vector<Response> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Request& rq = batch[i];
      Response& rsp = out[i];
      switch (rq.kind) {
        case RequestKind::kWindow:
          rsp.ids = rq.index == IndexKind::kQuadTree
                        ? core::window_query(quad_, rq.window)
                        : rq.index == IndexKind::kRTree
                              ? core::window_query(rtree_, rq.window)
                              : linear_.window_query(rq.window);
          break;
        case RequestKind::kPoint:
          rsp.ids = rq.index == IndexKind::kQuadTree
                        ? core::point_query(quad_, rq.point)
                        : rq.index == IndexKind::kRTree
                              ? core::point_query(rtree_, rq.point)
                              : linear_.point_query(rq.point);
          break;
        case RequestKind::kNearest:
          rsp.neighbors = rq.index == IndexKind::kQuadTree
                              ? core::k_nearest(quad_, rq.point, rq.k)
                              : core::k_nearest(rtree_, rq.point, rq.k);
          break;
      }
    }
    return out;
  }

  ChaosRun run_once(const dpv::FaultSchedule& schedule, std::size_t shards,
                    std::size_t threads) const {
    dpv::FaultInjector inj(schedule);
    EngineOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    // Chaos replay asserts bit-identical retry metrics across runs; the
    // static threshold keeps dispatch a pure function of the batch.
    opts.dispatch = DispatchMode::kStatic;
    opts.min_dp_batch = 4;
    opts.max_retries = 2;
    opts.backoff_base = std::chrono::microseconds(5);
    opts.fault_injector = &inj;
    QueryEngine engine(opts);
    engine.mount(&quad_);
    engine.mount(&rtree_);
    engine.mount(&linear_);
    ChaosRun run;
    run.responses = engine.serve(batch_);
    run.metrics = engine.metrics();
    return run;
  }

  void expect_matches_oracle(const ChaosRun& run, const char* label) const {
    ASSERT_EQ(run.responses.size(), oracle_.size()) << label;
    for (std::size_t i = 0; i < oracle_.size(); ++i) {
      ASSERT_EQ(run.responses[i].status, Status::kOk)
          << label << " request " << i;
      EXPECT_TRUE(same_answers(run.responses[i], oracle_[i]))
          << label << " request " << i;
    }
  }

  static std::vector<dpv::FaultSchedule> schedules() {
    std::vector<dpv::FaultSchedule> out;
    {
      dpv::FaultSchedule s;  // fail the very first primitive everywhere
      s.seed = test::chaos_seed(1);
      s.fail_nth = 1;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // fail a mid-pipeline primitive
      s.seed = test::chaos_seed(2);
      s.fail_nth = 7;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // sparse random primitive failures
      s.seed = test::chaos_seed(3);
      s.primitive_fail_rate = 0.05;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // heavy random primitive failures
      s.seed = test::chaos_seed(4);
      s.primitive_fail_rate = 0.5;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // half the shard attempts poisoned
      s.seed = test::chaos_seed(5);
      s.shard_poison_rate = 0.5;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // every dp attempt poisoned: pure fallback
      s.seed = test::chaos_seed(6);
      s.shard_poison_rate = 1.0;
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // slow lanes only
      s.seed = test::chaos_seed(7);
      s.lane_stall_rate = 0.5;
      s.lane_stall_us = std::chrono::microseconds(100);
      out.push_back(s);
    }
    {
      dpv::FaultSchedule s;  // everything at once
      s.seed = test::chaos_seed(8);
      s.primitive_fail_rate = 0.2;
      s.shard_poison_rate = 0.2;
      s.lane_stall_rate = 0.2;
      s.lane_stall_us = std::chrono::microseconds(50);
      out.push_back(s);
    }
    return out;
  }

  static constexpr double kWorld = 1024.0;
  std::vector<geom::Segment> lines_;
  core::QuadTree quad_;
  core::RTree rtree_;
  core::LinearQuadTree linear_;
  std::vector<Request> batch_;
  std::vector<Response> oracle_;
};

TEST_F(ServeChaosTest, EveryScheduleEveryShardCountEveryBackendMatchesOracle) {
  int idx = 0;
  for (const dpv::FaultSchedule& s : schedules()) {
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const std::size_t threads : {1u, 4u}) {
        char label[64];
        std::snprintf(label, sizeof label, "schedule %d shards %zu threads %zu",
                      idx, shards, threads);
        expect_matches_oracle(run_once(s, shards, threads), label);
      }
    }
    ++idx;
  }
}

TEST_F(ServeChaosTest, FaultsActuallyTriggerRetriesAndFallbacks) {
  dpv::FaultSchedule s;
  s.seed = test::chaos_seed(21);
  s.fail_nth = 1;  // every dp attempt dies immediately
  const ChaosRun run = run_once(s, 4, 4);
  expect_matches_oracle(run, "fail-first");
  // Every pipeline group burned all its retries and fell back.
  EXPECT_GT(run.metrics.retries, 0u);
  EXPECT_GT(run.metrics.seq_fallbacks, 0u);
  EXPECT_EQ(run.metrics.dp_groups, 0u);
  // A clean engine on the same batch does use the dp path.
  const ChaosRun clean = run_once(dpv::FaultSchedule{}, 4, 4);
  EXPECT_GT(clean.metrics.dp_groups, 0u);
  EXPECT_EQ(clean.metrics.retries, 0u);
  EXPECT_EQ(clean.metrics.seq_fallbacks, 0u);
}

TEST_F(ServeChaosTest, ReplayingASeedIsBitIdentical) {
  for (const dpv::FaultSchedule& s : schedules()) {
    for (const std::size_t threads : {1u, 4u}) {
      const ChaosRun a = run_once(s, 4, threads);
      const ChaosRun b = run_once(s, 4, threads);
      ASSERT_EQ(a.responses.size(), b.responses.size());
      for (std::size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_TRUE(same_answers(a.responses[i], b.responses[i]))
            << "seed " << s.seed << " threads " << threads << " request " << i;
      }
      EXPECT_EQ(a.metrics.retries, b.metrics.retries) << "seed " << s.seed;
      EXPECT_EQ(a.metrics.seq_fallbacks, b.metrics.seq_fallbacks);
      EXPECT_EQ(a.metrics.dp_groups, b.metrics.dp_groups);
      EXPECT_EQ(a.metrics.seq_groups, b.metrics.seq_groups);
      EXPECT_EQ(a.metrics.prims.total_invocations(),
                b.metrics.prims.total_invocations());
    }
  }
}

TEST_F(ServeChaosTest, SerialAndThreadPoolBackendsAgreeOnRetryMetrics) {
  // Same seed, same shard count: the backend (1 lane vs 4 lanes) must not
  // change what work happened -- responses, retry counts, and the merged
  // scan-model ledger are all identical; only wall-clock may differ.
  for (const dpv::FaultSchedule& s : schedules()) {
    const ChaosRun serial = run_once(s, 4, 1);
    const ChaosRun pooled = run_once(s, 4, 4);
    ASSERT_EQ(serial.responses.size(), pooled.responses.size());
    for (std::size_t i = 0; i < serial.responses.size(); ++i) {
      EXPECT_TRUE(same_answers(serial.responses[i], pooled.responses[i]))
          << "seed " << s.seed << " request " << i;
    }
    EXPECT_EQ(serial.metrics.retries, pooled.metrics.retries)
        << "seed " << s.seed;
    EXPECT_EQ(serial.metrics.seq_fallbacks, pooled.metrics.seq_fallbacks);
    EXPECT_EQ(serial.metrics.dp_groups, pooled.metrics.dp_groups);
    EXPECT_EQ(serial.metrics.seq_groups, pooled.metrics.seq_groups);
    EXPECT_EQ(serial.metrics.prims.total_invocations(),
              pooled.metrics.prims.total_invocations());
  }
}

}  // namespace
}  // namespace dps::serve
