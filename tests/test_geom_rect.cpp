// Rectangle algebra tests.

#include "geom/rect.hpp"

#include <gtest/gtest.h>

namespace dps::geom {
namespace {

TEST(Rect, EmptyIsUnionIdentity) {
  const Rect e = Rect::empty();
  const Rect r{1, 2, 3, 4};
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.united(r), r);
  EXPECT_EQ(r.united(e), r);
  EXPECT_EQ(e.area(), 0.0);
  EXPECT_EQ(e.perimeter(), 0.0);
}

TEST(Rect, AreaPerimeterCenter) {
  const Rect r{1, 2, 4, 6};
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.perimeter(), 14.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
}

TEST(Rect, IntersectionClosedSemantics) {
  const Rect a{0, 0, 2, 2};
  const Rect b{2, 2, 4, 4};  // touches at one corner
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(a.intersected(b).is_empty() ||
              a.intersected(b).area() == 0.0);
  const Rect c{2.1, 0, 4, 2};
  EXPECT_FALSE(a.intersects(c));
}

TEST(Rect, IntersectedGeometry) {
  const Rect a{0, 0, 3, 3};
  const Rect b{1, 1, 5, 2};
  EXPECT_EQ(a.intersected(b), (Rect{1, 1, 3, 2}));
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 2.0);
}

TEST(Rect, Containment) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.contains(Point{0, 0}));
  EXPECT_TRUE(a.contains(Point{4, 4}));
  EXPECT_FALSE(a.contains(Point{4.0001, 4}));
  EXPECT_TRUE(a.contains(Rect(1, 1, 2, 2)));
  EXPECT_FALSE(a.contains(Rect(1, 1, 5, 2)));
  EXPECT_TRUE(a.contains(Rect::empty()));
}

TEST(Rect, Enlargement) {
  const Rect a{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(a.enlargement(Rect(1, 1, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.enlargement(Rect(0, 0, 4, 2)), 4.0);
}

TEST(Rect, OfSegmentNormalizesCorners) {
  const Rect r = Rect::of_segment(Point{3, 1}, Point{1, 4});
  EXPECT_EQ(r, (Rect{1, 1, 3, 4}));
}

TEST(Rect, EmptyDoesNotIntersectAnything) {
  EXPECT_FALSE(Rect::empty().intersects(Rect(0, 0, 10, 10)));
  EXPECT_FALSE(Rect(0, 0, 10, 10).intersects(Rect::empty()));
}

}  // namespace
}  // namespace dps::geom
