// Data-parallel spatial join tests: equivalence with the host lock-step
// join and with brute force, plus refinement behaviour.

#include "core/dp_spatial_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pmr_build.hpp"
#include "data/mapgen.hpp"
#include "geom/predicates.hpp"
#include "test_util.hpp"

namespace dps::core {
namespace {

QuadTree build(const std::vector<geom::Segment>& lines, double world,
               std::size_t cap = 4) {
  dpv::Context ctx;
  PmrBuildOptions o;
  o.world = world;
  o.max_depth = 10;
  o.bucket_capacity = cap;
  return pmr_build(ctx, lines, o).tree;
}

TEST(DpSpatialJoin, MatchesHostJoinOnRandomMaps) {
  dpv::Context ctx;
  const auto roads = data::road_grid(8, 8, 512.0, 6.0, 701);
  const auto utils = data::uniform_segments(150, 512.0, 50.0, 702);
  const QuadTree ta = build(roads, 512.0);
  const QuadTree tb = build(utils, 512.0);
  DpJoinStats stats;
  EXPECT_EQ(dp_spatial_join(ctx, ta, tb, &stats), spatial_join(ta, tb));
  EXPECT_GT(stats.node_pairs_visited, 0u);
}

TEST(DpSpatialJoin, RefinesMismatchedDecompositions) {
  dpv::Context ctx;
  // Map A is sparse (coarse leaves); map B is dense in one corner (deep
  // leaves): alignment must split A's coarse leaves down to B's depth.
  std::vector<geom::Segment> sparse{{{10, 10}, {500, 480}, 0}};
  const auto dense = data::clustered_segments(200, 1, 12.0, 512.0, 8.0, 703);
  const QuadTree ta = build(sparse, 512.0, 2);
  const QuadTree tb = build(dense, 512.0, 2);
  DpJoinStats stats;
  const auto pairs = dp_spatial_join(ctx, ta, tb, &stats);
  EXPECT_GT(stats.refine_rounds, 0u);
  EXPECT_GT(stats.splits_a, 0u);
  EXPECT_EQ(pairs, spatial_join(ta, tb));
}

TEST(DpSpatialJoin, SelfJoinAndEmpty) {
  dpv::Context ctx;
  const auto map = data::road_grid(4, 4, 512.0, 4.0, 704);
  const QuadTree t = build(map, 512.0);
  EXPECT_EQ(dp_spatial_join(ctx, t, t), spatial_join(t, t));
  const QuadTree empty = build({}, 512.0);
  EXPECT_TRUE(dp_spatial_join(ctx, t, empty).empty());
  EXPECT_TRUE(dp_spatial_join(ctx, empty, t).empty());
}

TEST(DpSpatialJoin, BruteForceAgreement) {
  dpv::Context ctx = test::make_parallel_context();
  const auto a = data::clustered_segments(150, 3, 20.0, 512.0, 10.0, 705);
  const auto b = data::hierarchical_roads(150, 512.0, 706);
  const auto pairs =
      dp_spatial_join(ctx, build(a, 512.0), build(b, 512.0));
  std::vector<std::pair<geom::LineId, geom::LineId>> expect;
  for (const auto& s : a) {
    for (const auto& t : b) {
      if (geom::segments_intersect(s, t)) expect.emplace_back(s.id, t.id);
    }
  }
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(pairs, expect);
}

TEST(DpSpatialJoin, PrunesCandidates) {
  dpv::Context ctx;
  const auto a = data::clustered_segments(300, 2, 10.0, 512.0, 6.0, 707);
  const auto b = data::clustered_segments(300, 2, 10.0, 512.0, 6.0, 708);
  DpJoinStats stats;
  dp_spatial_join(ctx, build(a, 512.0), build(b, 512.0), &stats);
  EXPECT_LT(stats.candidate_pairs, 300u * 300u);
}

}  // namespace
}  // namespace dps::core
